wl 2
dag 4
arc 2 3
arc 3 0
arc 3 1
arc 0 1
path 0 1
path 3 1
path 2 3 0 1
path 2 3 1
