open Wl_digraph
open Wl_core
module Engine = Wl_engine.Engine
module Script = Wl_engine.Script
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng
module Classify = Wl_dag.Classify
module Sweeps = Wl_validate.Sweeps
module Client = Wl_serve.Client
module Proto = Wl_serve.Proto
module Wire = Wl_serve.Wire
module Ctx = Wl_obs.Ctx

type t = {
  name : string;
  doc : string;
  generate : int -> Subject.t;
  check : Subject.t -> string option;
}

(* --- shared generator pieces ------------------------------------------------ *)

let dedup paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    paths

(* Random engine op mix (same shape as the PR-3 equivalence property):
   mostly path insertions via short random walks, some removals by raw
   handle, some arc insertions by raw endpoints — including ops the engine
   must reject, since rejection is part of the behavior under test. *)
let random_ops rng g ~n_initial ~count =
  let n = Digraph.n_vertices g in
  let next = ref n_initial in
  List.init count (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 ->
        if !next = 0 then Engine.Add_arc (Prng.int rng n, Prng.int rng n)
        else Engine.Remove_path (Prng.int rng !next)
      | 2 -> Engine.Add_arc (Prng.int rng n, Prng.int rng n)
      | _ ->
        let rec go v acc len =
          let succs = Digraph.succ g v in
          if succs = [] || len >= 5 || (len >= 1 && Prng.bernoulli rng 0.3) then
            List.rev acc
          else
            let w = Prng.choose_list rng succs in
            go w (w :: acc) (len + 1)
        in
        let v0 = Prng.int rng n in
        incr next;
        Engine.Add_path (go v0 [ v0 ] 0))

let distinct_paths inst =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun p ->
      let key = Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (Instance.paths_list inst)

let same_instance a b =
  let ga = Instance.graph a and gb = Instance.graph b in
  Digraph.n_vertices ga = Digraph.n_vertices gb
  && Digraph.arcs ga = Digraph.arcs gb
  && List.map Dipath.vertices (Instance.paths_list a)
     = List.map Dipath.vertices (Instance.paths_list b)

(* --- thm1_dsatur ------------------------------------------------------------ *)

let thm1_dsatur =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 14 0.25 in
    Subject.make (Path_gen.random_instance rng dag 8)
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    if Wl_dag.Internal_cycle.has_internal_cycle (Instance.dag inst) then None
    else begin
      let pi = Load.pi inst in
      match Theorem1.color_result inst with
      | Error _ -> Some "theorem 1 hit case C without an internal cycle"
      | Ok a ->
        if not (Assignment.is_valid inst a) then
          Some "theorem 1 produced an invalid assignment"
        else begin
          let w1 = Assignment.n_wavelengths (Assignment.normalize a) in
          if w1 <> pi then
            Some
              (Printf.sprintf "theorem 1 used %d wavelengths, load is %d" w1 pi)
          else begin
            let cg = Conflict_of.build inst in
            let d = Wl_conflict.Coloring.dsatur cg in
            if not (Wl_conflict.Coloring.is_valid cg d) then
              Some "DSATUR produced an invalid coloring"
            else begin
              let wd =
                Wl_conflict.Coloring.n_colors (Wl_conflict.Coloring.normalize d)
              in
              if wd < pi then
                Some
                  (Printf.sprintf "DSATUR used %d colors, below the load %d" wd
                     pi)
              else None
            end
          end
        end
    end
  in
  {
    name = "thm1_dsatur";
    doc = "Theorem 1 (w = pi) vs an independent DSATUR arm, both audited";
    generate;
    check;
  }

(* --- solver_exact ----------------------------------------------------------- *)

let solver_exact =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_dag rng 10 0.3 in
    Subject.make (Path_gen.random_instance rng dag 6)
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    if Instance.n_paths inst > 12 then None
    else begin
      let report = Solver.solve inst in
      let chi = Bounds.chromatic_exact inst in
      if not (Assignment.is_valid inst report.Solver.assignment) then
        Some "solver produced an invalid assignment"
      else if report.Solver.n_wavelengths < chi then
        Some
          (Printf.sprintf "solver used %d wavelengths, chromatic number is %d"
             report.Solver.n_wavelengths chi)
      else if report.Solver.lower_bound > chi then
        Some
          (Printf.sprintf "lower bound %d exceeds the chromatic number %d"
             report.Solver.lower_bound chi)
      else if Load.pi inst > chi then
        Some
          (Printf.sprintf "load %d exceeds the chromatic number %d"
             (Load.pi inst) chi)
      else if report.Solver.optimal && report.Solver.n_wavelengths <> chi then
        Some
          (Printf.sprintf
             "optimal report used %d wavelengths, chromatic number is %d"
             report.Solver.n_wavelengths chi)
      else None
    end
  in
  {
    name = "solver_exact";
    doc = "Solver dispatch vs the exact chromatic number on small instances";
    generate;
    check;
  }

(* --- engine ----------------------------------------------------------------- *)

(* Side channel for the engine oracle's flight dump: the last failing
   check leaves its session's (jsonl, chrome) renderings here, and the
   fuzz driver collects them right after a sequential (re-)check, so the
   dump always matches the reproducer it is attached to.  Racy under
   parallel waves by design — only the sequential post-shrink re-check
   reads it. *)
let flight_box : (string * string) option ref = ref None

let take_flight () =
  let v = !flight_box in
  flight_box := None;
  v

let stash_flight sess =
  let fl = Engine.flight sess in
  flight_box :=
    Some (Wl_obs.Flight.to_jsonl fl, Wl_obs.Flight.to_chrome fl)

let engine =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 12 0.25 in
    let inst = Path_gen.random_instance rng dag 5 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:12
    in
    Subject.make ~ops inst
  in
  let check (s : Subject.t) =
    let sess = Engine.create s.Subject.inst in
    let compare_with_fresh step =
      let r = Engine.report sess in
      let inst = Engine.instance sess in
      let fresh = Solver.solve inst in
      if not (Assignment.is_valid inst r.Solver.assignment) then
        Some (Printf.sprintf "engine assignment invalid after op %d" step)
      else if r.Solver.n_wavelengths <> fresh.Solver.n_wavelengths then
        Some
          (Printf.sprintf
             "engine reported %d wavelengths, fresh solve %d, after op %d"
             r.Solver.n_wavelengths fresh.Solver.n_wavelengths step)
      else if r.Solver.optimal <> fresh.Solver.optimal then
        Some (Printf.sprintf "optimality flag diverged after op %d" step)
      else
        match Engine.audit sess with
        | Ok () -> None
        | Error msg -> Some (Printf.sprintf "audit after op %d: %s" step msg)
    in
    let rec go step = function
      | [] -> None
      | op :: rest -> (
        ignore (Engine.submit sess [ op ]);
        match compare_with_fresh step with
        | Some _ as failure -> failure
        | None -> go (step + 1) rest)
    in
    let result =
      match compare_with_fresh (-1) with
      | Some _ as failure -> failure
      | None -> go 0 s.Subject.ops
    in
    if result <> None then stash_flight sess;
    result
  in
  {
    name = "engine";
    doc = "Warm incremental sessions vs a fresh solve after every op";
    generate;
    check;
  }

(* --- serial ----------------------------------------------------------------- *)

let serial =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_dag rng 12 0.25 in
    let inst = Path_gen.random_instance rng dag 6 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:6
    in
    Subject.make ~ops inst
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    let text = Serial.to_string inst in
    match Serial.of_string text with
    | Error e -> Some ("v2 parse failed: " ^ Error.to_string e)
    | Ok inst2 ->
      if Serial.to_string inst2 <> text then Some "v2 re-render not byte-stable"
      else if not (same_instance inst inst2) then
        Some "v2 round-trip changed the instance"
      else begin
        let v1 = Serial.to_string ~version:1 inst in
        match Serial.of_string v1 with
        | Error e -> Some ("v1 parse failed: " ^ Error.to_string e)
        | Ok inst1 ->
          if not (same_instance inst inst1) then
            Some "v1 round-trip changed the instance"
          else begin
            match Serial.of_json (Serial.to_json inst) with
            | Error e -> Some ("json parse failed: " ^ Error.to_string e)
            | Ok instj ->
              if not (same_instance inst instj) then
                Some "json round-trip changed the instance"
              else begin
                match Serial.of_json (Serial.to_json ~pretty:true inst) with
                | Error e ->
                  Some ("pretty json parse failed: " ^ Error.to_string e)
                | Ok instp ->
                  if not (same_instance inst instp) then
                    Some "pretty json round-trip changed the instance"
                  else begin
                    let ops = s.Subject.ops in
                    match Script.of_string (Script.to_string ops) with
                    | Error e ->
                      Some ("ops text parse failed: " ^ Error.to_string e)
                    | Ok ops' when ops' <> ops ->
                      Some "ops text round-trip changed the script"
                    | Ok _ -> (
                      match Script.of_json (Script.to_json ops) with
                      | Error e ->
                        Some ("ops json parse failed: " ^ Error.to_string e)
                      | Ok ops' when ops' <> ops ->
                        Some "ops json round-trip changed the script"
                      | Ok _ -> None)
                  end
              end
          end
      end
  in
  {
    name = "serial";
    doc = "Text v1/v2 and JSON round-trips of instances and op scripts";
    generate;
    check;
  }

(* --- invariants ------------------------------------------------------------- *)

let invariants =
  let generate seed =
    let rng = Prng.create seed in
    match seed mod 4 with
    | 0 ->
      let dag = Generators.gnp_no_internal_cycle rng 12 0.25 in
      Subject.make (Path_gen.random_instance rng dag 8)
    | 1 ->
      let dag = Generators.gnp_dag rng 12 0.3 in
      Subject.make (Path_gen.random_instance rng dag 8)
    | 2 ->
      let dag = Generators.upp_one_internal_cycle rng () in
      Subject.make (Instance.make dag (dedup (Path_gen.random_family rng dag 10)))
    | _ ->
      let dag = Generators.upp_internal_cycles rng ~cycles:(1 + (seed mod 3)) () in
      Subject.make (Instance.make dag (dedup (Path_gen.random_family rng dag 10)))
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    let report = Solver.solve inst in
    let pi = Load.pi inst in
    let c = report.Solver.classification in
    if not (Assignment.is_valid inst report.Solver.assignment) then
      Some "invalid assignment"
    else if report.Solver.pi <> pi then
      Some
        (Printf.sprintf "report load %d, recomputed load %d" report.Solver.pi
           pi)
    else if report.Solver.n_wavelengths < pi then
      Some
        (Printf.sprintf "pi <= w violated: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else if
      c.Classify.n_internal_cycles = 0 && report.Solver.n_wavelengths <> pi
    then
      Some
        (Printf.sprintf
           "w = pi violated without internal cycle: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else if
      c.Classify.is_upp
      && Wl_conflict.Graph_props.has_k23 (Conflict_of.build inst)
    then Some "induced K_{2,3} in a UPP conflict graph (Corollary 5)"
    else if
      report.Solver.method_used = Solver.Theorem_6
      && distinct_paths inst
      && report.Solver.n_wavelengths > Theorem6.upper_bound pi
    then
      Some
        (Printf.sprintf "Theorem 6 ceiling violated: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else
      match Certificate.audit inst report with
      | [] -> None
      | issue :: _ -> Some ("certificate: " ^ issue)
  in
  {
    name = "invariants";
    doc =
      "Paper invariants on mixed classes: validity, pi <= w, w = pi without \
       internal cycles, UPP K_{2,3}-freeness, Theorem 6 ceiling, certificate \
       audit";
    generate;
    check;
  }

(* --- routing_packing ---------------------------------------------------------

   The requests live inside the subject as routed dipaths (one per request,
   endpoints = the request), so the stock shrinker applies: dropping paths
   drops requests, and the reproducer is a plain instance file.  The check
   re-derives the request multiset from the endpoints and runs the full
   routing stage on it. *)

let routing_packing =
  let generate seed =
    let rng = Prng.create seed in
    let module Traffic = Wl_netgen.Traffic in
    let dag, requests =
      match seed mod 3 with
      | 0 ->
        let dag = Generators.gnp_dag rng 12 0.3 in
        (dag, Traffic.uniform rng dag 10)
      | 1 ->
        let dag = Generators.layered rng ~layers:4 ~width:3 ~p:0.5 in
        (dag, Traffic.hotspot rng dag ~hubs:2 ~bias:0.7 12)
      | _ ->
        let dag = Generators.gnp_no_internal_cycle rng 14 0.25 in
        (dag, Traffic.uniform rng dag 8)
    in
    let paths =
      match Routing.route_shortest dag requests with Ok ps -> ps | Error _ -> []
    in
    Subject.make (Instance.make dag paths)
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    if Instance.n_paths inst = 0 then None
    else begin
      let dag = Instance.dag inst in
      let requests =
        List.map (fun p -> (Dipath.src p, Dipath.dst p)) (Instance.paths_list inst)
      in
      match Routing.select ~k:4 dag requests with
      | Error e ->
        Some ("select failed on routable requests: " ^ Error.to_string e)
      | Ok sel ->
        let routed = Routing.instance_of_selection dag sel in
        let pi = Load.pi routed in
        let w = (Solver.solve routed).Solver.n_wavelengths in
        if sel.Routing.max_load > sel.Routing.seed_load then
          Some
            (Printf.sprintf
               "local search worsened the seed: max load %d, seed %d"
               sel.Routing.max_load sel.Routing.seed_load)
        else if pi <> sel.Routing.max_load then
          Some
            (Printf.sprintf "reported max load %d, instance load %d"
               sel.Routing.max_load pi)
        else if sel.Routing.lower_bound > pi then
          Some
            (Printf.sprintf "packing lower bound %d exceeds achieved load %d"
               sel.Routing.lower_bound pi)
        else if pi > w then
          Some (Printf.sprintf "load %d exceeds wavelength count %d" pi w)
        else if sel.Routing.lower_bound > w then
          Some
            (Printf.sprintf "packing lower bound %d exceeds wavelengths %d"
               sel.Routing.lower_bound w)
        else None
    end
  in
  {
    name = "routing_packing";
    doc =
      "Full routing stage on fuzzed request sets: packing-number lower \
       bound <= achieved load <= w, local search never above the greedy \
       seed";
    generate;
    check;
  }

(* --- client_vs_engine -------------------------------------------------------- *)

let errs = Error.to_string

let rec first f = function
  | [] -> None
  | x :: rest -> ( match f x with Some _ as s -> s | None -> first f rest)

(* An engine batch as the client sees it across the wire. *)
let wire_outcomes (b : Engine.batch) =
  Array.map (Result.map Proto.outcome_of_engine) b.Engine.outcomes

let client_vs_engine =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 12 0.25 in
    let inst = Path_gen.random_instance rng dag 5 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:12
    in
    Subject.make ~ops inst
  in
  (* One loopback client (sync shard, full codec round trip on every call)
     against one bare engine session, op for op.  Statistics must agree
     exactly: the sync shard batches nothing, so the service boundary adds
     no observable behavior of its own. *)
  let check_encoding ~json (s : Subject.t) =
    let inst = s.Subject.inst in
    let tag = if json then "json" else "text" in
    let fail fmt = Printf.ksprintf Option.some fmt in
    let c = Client.local ~json () in
    Fun.protect ~finally:(fun () -> try Client.close c with _ -> ())
    @@ fun () ->
    match Client.session c ~tenant:"no spaces!" with
    | Ok _ -> fail "%s: invalid tenant id accepted" tag
    | Error e when (match e with Error.Precondition _ -> false | _ -> true) ->
      fail "%s: invalid tenant rejected with %s, want Precondition" tag
        (errs e)
    | Error _ -> (
      match Client.open_session c ~tenant:"oracle" inst with
      | Error e -> fail "%s: open failed: %s" tag (errs e)
      | Ok csess ->
        let eng = Engine.create inst in
        (* [Open] replies with a report, so the service session has seen
           one [Engine.report] before any op; keep the arms aligned. *)
        ignore (Engine.report eng);
        let rec steps step = function
          | [] -> None
          | op :: rest -> (
            let b = Engine.submit eng [ op ] in
            match Client.submit csess [ op ] with
            | Error e ->
              fail "%s: submit failed at op %d: %s" tag step (errs e)
            | Ok r ->
              if r.Client.outcomes <> wire_outcomes b then
                fail "%s: outcomes diverged at op %d" tag step
              else if
                r.Client.after <> Proto.report_of_solver b.Engine.batch_report
              then fail "%s: batch report diverged at op %d" tag step
              else if Client.stats csess <> Ok (Engine.stats eng) then
                fail "%s: stats diverged at op %d" tag step
              else steps (step + 1) rest)
        in
        let colors () =
          (* One id past anything live: dead-handle errors must round-trip
             identically too. *)
          let n_ids = Instance.n_paths inst + List.length s.Subject.ops + 1 in
          let rec go i =
            if i >= n_ids then None
            else if Client.color_of csess i <> Engine.color_of eng i then
              fail "%s: color_of %d diverged" tag i
            else go (i + 1)
          in
          go 0
        in
        let finale () =
          if
            Client.report csess
            <> Ok (Proto.report_of_solver (Engine.report eng))
          then fail "%s: final report diverged" tag
          else if Client.pi csess <> Ok (Engine.pi eng) then
            fail "%s: pi diverged" tag
          else
            match Client.snapshot csess with
            | Error e -> fail "%s: snapshot failed: %s" tag (errs e)
            | Ok snap ->
              if not (same_instance snap (Engine.instance eng)) then
                fail "%s: snapshot instance diverged" tag
              else (
                match Client.health csess with
                | Error e -> fail "%s: health failed: %s" tag (errs e)
                | Ok _ -> (
                  match Client.evict csess with
                  | Error e -> fail "%s: evict failed: %s" tag (errs e)
                  | Ok () -> (
                    match Client.pi csess with
                    | Error (Error.Invalid_op _) -> None
                    | Ok _ -> fail "%s: evicted session still answers" tag
                    | Error e ->
                      fail "%s: evicted session answered %s, want Invalid_op"
                        tag (errs e))))
        in
        first
          (fun f -> f ())
          [ (fun () -> steps 0 s.Subject.ops); colors; finale ])
  in
  let check s =
    match check_encoding ~json:false s with
    | Some _ as failure -> failure
    | None -> check_encoding ~json:true s
  in
  {
    name = "client_vs_engine";
    doc =
      "Loopback service client (full wlrpc/1 codec, text and JSON) vs a \
       bare engine session, op for op";
    generate = generate;
    check;
  }

(* --- wlrpc_frame ------------------------------------------------------------- *)

(* Instances are abstract, so requests/replies carrying one get structural
   comparison everywhere else and [same_instance] there. *)
let req_equal (a : Proto.req) (b : Proto.req) =
  match (a, b) with
  | ( Proto.Open { tenant = t1; instance = i1 },
      Proto.Open { tenant = t2; instance = i2 } ) ->
    t1 = t2 && same_instance i1 i2
  | Proto.Open _, _ | _, Proto.Open _ -> false
  | a, b -> a = b

let reply_equal (a : Proto.reply) (b : Proto.reply) =
  match (a, b) with
  | Ok (Proto.R_snapshot i1), Ok (Proto.R_snapshot i2) -> same_instance i1 i2
  | Ok (Proto.R_snapshot _), _ | _, Ok (Proto.R_snapshot _) -> false
  | a, b -> a = b

(* Every [Error.t] constructor, with payloads that stress the escaping
   (embedded newline and backslash survive the line-oriented text form). *)
let every_error =
  [
    Error.Parse { line = 3; msg = "unexpected token \\ and\nan embedded newline" };
    Error.Invalid_path "not a dipath";
    Error.Cyclic "back arc 4 -> 1";
    Error.Bad_index { what = "path"; index = 41 };
    Error.Invalid_op "remove of a dead path";
    Error.Precondition "tenant id must match [A-Za-z0-9_.-]";
    Error.Unsupported_version 9;
    Error.Io "connection reset by peer";
  ]

let wlrpc_frame =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_dag rng 10 0.3 in
    let inst = Path_gen.random_instance rng dag 5 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:8
    in
    Subject.make ~ops inst
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    let t = "t0" in
    let fail fmt = Printf.ksprintf Option.some fmt in
    let req_of_op : Engine.op -> Proto.req = function
      | Engine.Add_path vs -> Proto.Add_path { tenant = t; vertices = vs }
      | Engine.Remove_path id -> Proto.Remove_path { tenant = t; id }
      | Engine.Add_arc (a, b) -> Proto.Add_arc { tenant = t; tail = a; head = b }
    in
    let reqs =
      [
        Proto.Hello Proto.version;
        Proto.Ping;
        Proto.Shutdown;
        Proto.Open { tenant = t; instance = inst };
        Proto.Submit { tenant = t; ops = s.Subject.ops };
        Proto.Report { tenant = t };
        Proto.Pi { tenant = t };
        Proto.Color_of { tenant = t; id = 2 };
        Proto.Stats { tenant = t };
        Proto.Health { tenant = t };
        Proto.Snapshot { tenant = t };
        Proto.Evict { tenant = t };
        Proto.Dstats;
        Proto.Dhealth;
        Proto.Trace_dump { last = 0 };
        Proto.Trace_dump { last = 64 };
      ]
      @ List.map req_of_op s.Subject.ops
    in
    let eng = Engine.create inst in
    let b = Engine.submit eng s.Subject.ops in
    let rep = Proto.report_of_solver b.Engine.batch_report in
    (* Dyadic rates so float round-trip exactness is never in question;
       the latency fields are plain ints. *)
    let health =
      {
        Proto.healthy = true;
        add_p50 = 120;
        add_p99 = 3400;
        remove_p50 = 5;
        remove_p99 = 97;
        warm_hit_recent = 0.5;
        warm_hit_lifetime = 0.25;
        fallback_streak = 1;
      }
    in
    (* Introspection payloads: one rollup with an exemplar latched, one
       without; tenant ids stressing the full [tenant_ok] alphabet; a
       multi-line trace document (body round-trips byte-exactly, like
       [R_snapshot]'s instance). *)
    let rollup_ex =
      {
        Proto.l_count = 158;
        l_p50 = 640;
        l_p90 = 1800;
        l_p99 = 4200;
        l_p999 = 9000;
        l_max = 8800;
        l_ex_ns = 8800;
        l_ex_trace = 0x2bad5eed;
      }
    in
    let rollup_empty =
      {
        Proto.l_count = 0;
        l_p50 = 0;
        l_p90 = 0;
        l_p99 = 0;
        l_p999 = 0;
        l_max = 0;
        l_ex_ns = 0;
        l_ex_trace = 0;
      }
    in
    let tenant_rows =
      [
        {
          Proto.r_tenant = "t0";
          r_shard = 0;
          r_paths = 5;
          r_pi = 2;
          r_ops = 9;
          r_add_p50 = 500;
          r_add_p99 = 900;
          r_healthy = true;
        };
        {
          Proto.r_tenant = "b.2_x-Y";
          r_shard = 3;
          r_paths = 0;
          r_pi = 0;
          r_ops = 1;
          r_add_p50 = 0;
          r_add_p99 = 0;
          r_healthy = false;
        };
      ]
    in
    let replies : Proto.reply list =
      [
        Ok (Proto.R_hello Proto.version);
        Ok Proto.R_pong;
        Ok Proto.R_bye;
        Ok (Proto.R_open rep);
        Ok (Proto.R_path 7);
        Ok (Proto.R_removed 0);
        Ok (Proto.R_arc 3);
        Ok (Proto.R_report rep);
        Ok (Proto.R_pi rep.Proto.pi);
        Ok (Proto.R_color 1);
        Ok (Proto.R_stats (Engine.stats eng));
        Ok (Proto.R_health health);
        Ok (Proto.R_outcomes { outcomes = wire_outcomes b; after = rep });
        Ok
          (Proto.R_outcomes
             {
               outcomes =
                 Array.of_list (List.map (fun e -> Error e) every_error);
               after = rep;
             });
        Ok (Proto.R_snapshot (Engine.instance eng));
        Ok Proto.R_evicted;
        Ok
          (Proto.R_dstats
             {
               Proto.d_shards = 4;
               d_sessions = 2;
               d_add = rollup_ex;
               d_remove = rollup_empty;
               d_tenants = tenant_rows;
             });
        Ok
          (Proto.R_dstats
             {
               Proto.d_shards = 1;
               d_sessions = 0;
               d_add = rollup_empty;
               d_remove = rollup_empty;
               d_tenants = [];
             });
        Ok
          (Proto.R_dhealth
             { Proto.dh_healthy = false; dh_sessions = 2; dh_unhealthy = [ "a"; "b.2_x-Y" ] });
        Ok (Proto.R_dhealth { Proto.dh_healthy = true; dh_sessions = 0; dh_unhealthy = [] });
        Ok (Proto.R_trace "{\"traceEvents\": [\n  {\"ph\": \"X\"}\n]}\n");
      ]
      @ List.map (fun e -> (Error e : Proto.reply)) every_error
    in
    let encodings = [ false; true ] in
    let round_trip_req json r =
      let tag = if json then "json" else "text" in
      let enc = Proto.encode_request ~json r in
      match Proto.decode_request enc with
      | exception e ->
        fail "request decode raised (%s): %s" tag (Printexc.to_string e)
      | Error e -> fail "request decode failed (%s): %s" tag (errs e)
      | Ok r' when not (req_equal r r') ->
        fail "request round trip changed the message (%s)" tag
      | Ok _ -> (
        let f = Wire.frame enc in
        match Wire.unframe f 0 with
        | Ok (p, off) when p = enc && off = String.length f -> None
        | Ok _ -> fail "frame round trip changed the payload (%s)" tag
        | Error e -> fail "frame round trip failed (%s): %s" tag (errs e))
    in
    let round_trip_reply json r =
      let tag = if json then "json" else "text" in
      let enc = Proto.encode_reply ~json r in
      match Proto.decode_reply enc with
      | exception e ->
        fail "reply decode raised (%s): %s" tag (Printexc.to_string e)
      | Error e -> fail "reply decode failed (%s): %s" tag (errs e)
      | Ok d when not (reply_equal r d) ->
        fail "reply round trip changed the message (%s)" tag
      | Ok _ -> None
    in
    (* Trace-context field: a carried ctx round-trips (trace and span id;
       the parent id is deliberately not wire-carried), and an absent ctx
       leaves the frame byte-identical to the pre-context protocol —
       that byte-equality IS the old-peer interoperability guarantee. *)
    let ctx_round_trip () =
      let g = Ctx.generator 42 in
      let root = Ctx.root g in
      let ctx = Ctx.child g root in
      let per_encoding json =
        let tag = if json then "json" else "text" in
        let req = Proto.Submit { tenant = t; ops = s.Subject.ops } in
        let enc = Proto.encode_request ~json ~ctx req in
        match Proto.decode_request_ctx enc with
        | exception e ->
          fail "ctx decode raised (%s): %s" tag (Printexc.to_string e)
        | Error e -> fail "ctx decode failed (%s): %s" tag (errs e)
        | Ok (req', ctx') ->
          if not (req_equal req req') then
            fail "ctx-carrying request changed the message (%s)" tag
          else if ctx'.Ctx.trace_id <> ctx.Ctx.trace_id then
            fail "trace id did not survive the wire (%s)" tag
          else if ctx'.Ctx.span_id <> ctx.Ctx.span_id then
            fail "span id did not survive the wire (%s)" tag
          else if ctx'.Ctx.parent_id <> 0 then
            fail "parent id leaked onto the wire (%s)" tag
          else begin
            let rep : Proto.reply = Ok Proto.R_pong in
            let renc = Proto.encode_reply ~json ~ctx rep in
            match Proto.decode_reply_ctx renc with
            | exception e ->
              fail "reply ctx decode raised (%s): %s" tag (Printexc.to_string e)
            | Error e -> fail "reply ctx decode failed (%s): %s" tag (errs e)
            | Ok (rep', rctx) ->
              if not (reply_equal rep rep') then
                fail "ctx-carrying reply changed the message (%s)" tag
              else if rctx.Ctx.trace_id <> ctx.Ctx.trace_id then
                fail "reply trace id did not survive the wire (%s)" tag
              else if
                Proto.encode_request ~json ~ctx:Ctx.none req
                <> Proto.encode_request ~json req
              then fail "Ctx.none changed the encoding (%s)" tag
              else begin
                match Proto.decode_request_ctx (Proto.encode_request ~json req) with
                | Ok (_, c) when Ctx.is_none c -> None
                | Ok _ -> fail "absent ctx decoded as a real context (%s)" tag
                | Error e -> fail "untraced frame rejected (%s): %s" tag (errs e)
                | exception e ->
                  fail "untraced decode raised (%s): %s" tag (Printexc.to_string e)
              end
          end
      in
      first per_encoding encodings
    in
    (* Hand-built frames with a damaged ctx field: every one is a protocol
       error (decoders stay total), never an [Ok] and never an exception. *)
    let ctx_corruptions () =
      let cases =
        [
          ("non-hex trace id", "wlrpc 1 ctx=zz:1 ping\n");
          ("zero trace id", "wlrpc 1 ctx=0:5 ping\n");
          ("missing span id", "wlrpc 1 ctx=12 ping\n");
          ("empty span id", "wlrpc 1 ctx=12: ping\n");
          ("empty value", "wlrpc 1 ctx= ping\n");
          ("three fields", "wlrpc 1 ctx=1:2:3 ping\n");
          ("oversized id", "wlrpc 1 ctx=12345678123456781:2 ping\n");
          ("signed id", "wlrpc 1 ctx=-1:2 ping\n");
          ("duplicate ctx", "wlrpc 1 ctx=1:2 ctx=3:4 ping\n");
          ("ctx after verb", "wlrpc 1 ping ctx=1:2\n");
          ("json non-string ctx", "{\"wlrpc\": 1, \"ctx\": 5, \"verb\": \"ping\"}");
          ("json malformed ctx", "{\"wlrpc\": 1, \"ctx\": \"junk\", \"verb\": \"ping\"}");
          ("json empty ctx", "{\"wlrpc\": 1, \"ctx\": \"\", \"verb\": \"ping\"}");
          ("json zero trace", "{\"wlrpc\": 1, \"ctx\": \"0:5\", \"verb\": \"ping\"}");
        ]
      in
      first
        (fun (name, payload) ->
          let via what decode =
            match decode payload with
            | exception e ->
              fail "ctx corruption %s: %s raised %s" name what
                (Printexc.to_string e)
            | Error _ -> None
            | Ok _ -> fail "ctx corruption %s: %s accepted the frame" name what
          in
          match via "decode_request_ctx" Proto.decode_request_ctx with
          | Some _ as failure -> failure
          | None -> via "decode_request" Proto.decode_request)
        cases
    in
    let base =
      Wire.frame
        (Proto.encode_request (Proto.Open { tenant = t; instance = inst }))
    in
    let n = String.length base in
    let expect_frame_error name buf =
      match Wire.unframe buf 0 with
      | exception e ->
        fail "%s: unframe raised %s" name (Printexc.to_string e)
      | Error (Error.Parse _) -> None
      | Error e -> fail "%s: want Parse error, got %s" name (errs e)
      | Ok _ -> fail "%s: corrupt frame decoded" name
    in
    let corruptions =
      [
        ("empty buffer", "");
        ("truncated prefix (1)", String.sub base 0 1);
        ("truncated prefix (3)", String.sub base 0 3);
        ("truncated payload", String.sub base 0 (n - 1));
        ("half payload", String.sub base 0 (4 + ((n - 4) / 2)));
        ("zero length", "\000\000\000\000" ^ String.sub base 4 (n - 4));
        ("oversized length", "\255\255\255\255" ^ String.sub base 4 (n - 4));
        ("garbage prefix", "garbage!" ^ base);
      ]
    in
    let flipped_payload () =
      (* A flipped byte keeps the frame well-formed: unframe must succeed
         and the payload decoder must stay total on the damaged bytes. *)
      let buf = Bytes.of_string base in
      let i = 4 + ((Bytes.length buf - 4) / 2) in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0xff));
      match Wire.unframe (Bytes.to_string buf) 0 with
      | exception e -> fail "flipped byte: unframe raised %s" (Printexc.to_string e)
      | Error e -> fail "flipped byte: unframe failed: %s" (errs e)
      | Ok (p, _) -> (
        match Proto.decode_request p with
        | Ok _ | Error _ -> None
        | exception e ->
          fail "flipped byte: decode raised %s" (Printexc.to_string e))
    in
    let truncated_payloads () =
      let enc = Proto.encode_request (Proto.Submit { tenant = t; ops = s.Subject.ops }) in
      let m = String.length enc in
      let rec go k =
        if k >= m then None
        else
          match Proto.decode_request (String.sub enc 0 k) with
          | Ok _ | Error _ -> go (k + (1 + (m / 7)))
          | exception e ->
            fail "truncated payload at %d: decode raised %s" k
              (Printexc.to_string e)
      in
      go 0
    in
    let stream () =
      (* Consecutive frames in one buffer come back as the same payloads. *)
      let payloads = List.map (fun r -> Proto.encode_request r) reqs in
      match Wire.unframe_all (String.concat "" (List.map Wire.frame payloads)) with
      | Ok ps when ps = payloads -> None
      | Ok _ -> fail "unframe_all changed the payload stream"
      | Error e -> fail "unframe_all failed on a valid stream: %s" (errs e)
    in
    first
      (fun f -> f ())
      ([
         (fun () ->
           first
             (fun json -> first (round_trip_req json) reqs)
             encodings);
         (fun () ->
           first
             (fun json -> first (round_trip_reply json) replies)
             encodings);
         ctx_round_trip;
         ctx_corruptions;
         (fun () ->
           first (fun (name, buf) -> expect_frame_error name buf) corruptions);
         flipped_payload;
         truncated_payloads;
         stream;
       ])
  in
  {
    name = "wlrpc_frame";
    doc =
      "wlrpc/1 codec round trips (both encodings, every error constructor, \
       trace-context field) and totality on truncated/oversized/garbage \
       frames and mutated ctx tokens";
    generate;
    check;
  }

(* --- lifted sweeps and the self-test ---------------------------------------- *)

let of_sweep (sw : Sweeps.sweep) =
  {
    name = sw.Sweeps.name;
    doc = "validation sweep " ^ sw.Sweeps.name ^ " (see Wl_validate.Sweeps)";
    generate = (fun seed -> Subject.make (sw.Sweeps.generate seed));
    check = (fun s -> sw.Sweeps.property s.Subject.inst);
  }

let selftest =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 6 0.5 in
    Subject.make (Path_gen.random_instance rng dag 4)
  in
  let check (s : Subject.t) =
    let pi = Load.pi s.Subject.inst in
    if pi >= 2 then
      Some (Printf.sprintf "load %d >= 2 (deliberate self-test failure)" pi)
    else None
  in
  {
    name = "selftest";
    doc =
      "Deliberately false claim (load < 2) exercising the shrink pipeline; \
       not part of the default set";
    generate;
    check;
  }

let all =
  [
    thm1_dsatur;
    solver_exact;
    engine;
    serial;
    invariants;
    routing_packing;
    client_vs_engine;
    wlrpc_frame;
  ]
  @ List.map of_sweep Sweeps.sweeps

let find name = List.find_opt (fun o -> o.name = name) (all @ [ selftest ])

let run oracle seed =
  match oracle.check (oracle.generate seed) with
  | None -> None
  | Some reason -> Some (seed, reason)
  | exception e -> Some (seed, Printexc.to_string e)
