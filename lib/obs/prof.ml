(* Per-span GC/allocation telemetry, implemented as a Trace probe.

   On span entry we push a [Gc.quick_stat] reading onto a per-domain
   stack; on exit we pop it, delta against a fresh reading, and

   - attach the deltas (plus the span's self-time) to the Trace event,
   - fold them into a per-span-name aggregation table, and
   - mirror them into [prof.<span>.*] Metrics counters so they ride
     along in every Metrics snapshot (and hence in bench counter
     embeddings).

   Deltas are inclusive of children: a parent span's minor_words counts
   what its callees allocated too, exactly like its duration.  Self-time
   is the one exclusive figure (computed by Trace).  [Gc.quick_stat]
   reads per-domain accumulators without forcing a collection, so the
   probe itself is cheap — but it does allocate the stat record, which
   is why profiling is opt-in and bench loops keep it off while timing. *)

module Metrics = Metrics

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero_gc =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

type row = {
  span : string;
  calls : int;
  total_us : float;
  self_us : float;
  gc : gc_delta;
}

(* Aggregation cell per span name.  Mutated under [lock]; spans wrap
   whole algorithm phases, so the rate is far too low for the mutex to
   matter.  The Metrics counters are resolved once per name and cached
   here so the hot path never touches the registry lock. *)
type cell = {
  mutable c_calls : int;
  mutable c_total_us : float;
  mutable c_self_us : float;
  mutable c_minor_w : float;
  mutable c_major_w : float;
  mutable c_promoted_w : float;
  mutable c_minor_gcs : int;
  mutable c_major_gcs : int;
  m_minor_w : Metrics.counter;
  m_major_w : Metrics.counter;
  m_promoted_w : Metrics.counter;
  m_minor_gcs : Metrics.counter;
  m_major_gcs : Metrics.counter;
  m_self_ns : Metrics.counter;
  m_calls : Metrics.counter;
}

let lock = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 32

let cell_of name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some c -> c
      | None ->
        let counter field = Metrics.counter ("prof." ^ name ^ "." ^ field) in
        let c =
          {
            c_calls = 0;
            c_total_us = 0.;
            c_self_us = 0.;
            c_minor_w = 0.;
            c_major_w = 0.;
            c_promoted_w = 0.;
            c_minor_gcs = 0;
            c_major_gcs = 0;
            m_minor_w = counter "minor_words";
            m_major_w = counter "major_words";
            m_promoted_w = counter "promoted_words";
            m_minor_gcs = counter "minor_gcs";
            m_major_gcs = counter "major_gcs";
            m_self_ns = counter "self_ns";
            m_calls = counter "calls";
          }
        in
        Hashtbl.add table name c;
        c)

(* Per-domain stack of span-entry readings, parallel to Trace's span
   nesting on that domain.  Minor words come from [Gc.minor_words]
   rather than the quick_stat record: on OCaml 5.1 the record's
   [minor_words] field only advances at minor collections, so a span
   that allocates without triggering one would read as zero, while
   [Gc.minor_words ()] includes the current allocation pointer.

   The stack is a set of preallocated parallel arrays, not a list of
   reading records: pushing and popping must not allocate, or every
   span would report the probe's own minor words.  Float payloads live
   in float arrays (unboxed storage — [Gc.minor_words] is an unboxed
   [@@noalloc] external, so the store never materializes a box), int
   counts in int arrays.  Start readings order the captures so the
   [Gc.quick_stat] record itself is excluded: quick_stat first, minor
   words LAST in [on_start]; minor words FIRST in [on_stop], quick_stat
   after (its record is then charged to the enclosing span — probe cost
   is always attributed to the parent, never the measured span).
   Growth only happens the first time a new nesting depth is reached,
   inside the parent's window; steady state never grows. *)
type dstack = {
  mutable len : int;
  mutable minor0 : float array;  (* start readings, indexed by depth *)
  mutable major0 : float array;
  mutable prom0 : float array;
  mutable mgc0 : int array;
  mutable jgc0 : int array;
  mutable minor1 : float array;  (* end readings: on_stop -> on_emit *)
  mutable major1 : float array;
  mutable prom1 : float array;
  mutable mgc1 : int array;
  mutable jgc1 : int array;
}

let new_dstack () =
  let fa () = Array.make 16 0. and ia () = Array.make 16 0 in
  {
    len = 0;
    minor0 = fa ();
    major0 = fa ();
    prom0 = fa ();
    mgc0 = ia ();
    jgc0 = ia ();
    minor1 = fa ();
    major1 = fa ();
    prom1 = fa ();
    mgc1 = ia ();
    jgc1 = ia ();
  }

let grow_dstack s =
  let gf a = let b = Array.make (2 * Array.length a) 0. in Array.blit a 0 b 0 (Array.length a); b
  and gi a = let b = Array.make (2 * Array.length a) 0 in Array.blit a 0 b 0 (Array.length a); b in
  s.minor0 <- gf s.minor0;
  s.major0 <- gf s.major0;
  s.prom0 <- gf s.prom0;
  s.mgc0 <- gi s.mgc0;
  s.jgc0 <- gi s.jgc0;
  s.minor1 <- gf s.minor1;
  s.major1 <- gf s.major1;
  s.prom1 <- gf s.prom1;
  s.mgc1 <- gi s.mgc1;
  s.jgc1 <- gi s.jgc1

let stack_key = Domain.DLS.new_key new_dstack

let on = Atomic.make false
let enabled () = Atomic.get on

let on_start () =
  let s = Domain.DLS.get stack_key in
  let i = s.len in
  if i = Array.length s.minor0 then grow_dstack s;
  s.len <- i + 1;
  let st = Gc.quick_stat () in
  s.major0.(i) <- st.Gc.major_words;
  s.prom0.(i) <- st.Gc.promoted_words;
  s.mgc0.(i) <- st.Gc.minor_collections;
  s.jgc0.(i) <- st.Gc.major_collections;
  (* Last, so the quick_stat record above is outside the window. *)
  s.minor0.(i) <- Gc.minor_words ()

let on_stop () =
  let s = Domain.DLS.get stack_key in
  if s.len > 0 then begin
    let i = s.len - 1 in
    (* First, before anything here can allocate. *)
    s.minor1.(i) <- Gc.minor_words ();
    let st = Gc.quick_stat () in
    s.major1.(i) <- st.Gc.major_words;
    s.prom1.(i) <- st.Gc.promoted_words;
    s.mgc1.(i) <- st.Gc.minor_collections;
    s.jgc1.(i) <- st.Gc.major_collections
  end

let on_emit ~name ~dur_us ~self_us =
  let s = Domain.DLS.get stack_key in
  if s.len = 0 then [] (* probe installed mid-span; nothing to delta *)
  else begin
    let i = s.len - 1 in
    s.len <- i;
    let d =
      {
        minor_words = s.minor1.(i) -. s.minor0.(i);
        major_words = s.major1.(i) -. s.major0.(i);
        promoted_words = s.prom1.(i) -. s.prom0.(i);
        minor_collections = s.mgc1.(i) - s.mgc0.(i);
        major_collections = s.jgc1.(i) - s.jgc0.(i);
      }
    in
    let c = cell_of name in
    Mutex.protect lock (fun () ->
        c.c_calls <- c.c_calls + 1;
        c.c_total_us <- c.c_total_us +. dur_us;
        c.c_self_us <- c.c_self_us +. self_us;
        c.c_minor_w <- c.c_minor_w +. d.minor_words;
        c.c_major_w <- c.c_major_w +. d.major_words;
        c.c_promoted_w <- c.c_promoted_w +. d.promoted_words;
        c.c_minor_gcs <- c.c_minor_gcs + d.minor_collections;
        c.c_major_gcs <- c.c_major_gcs + d.major_collections);
    Metrics.add c.m_minor_w (int_of_float d.minor_words);
    Metrics.add c.m_major_w (int_of_float d.major_words);
    Metrics.add c.m_promoted_w (int_of_float d.promoted_words);
    Metrics.add c.m_minor_gcs d.minor_collections;
    Metrics.add c.m_major_gcs d.major_collections;
    Metrics.add c.m_self_ns (int_of_float (self_us *. 1e3));
    Metrics.incr c.m_calls;
    [
      ("self_us", Trace.Float self_us);
      ("gc.minor_w", Trace.Float d.minor_words);
      ("gc.major_w", Trace.Float d.major_words);
      ("gc.promoted_w", Trace.Float d.promoted_words);
      ("gc.minor_gcs", Trace.Int d.minor_collections);
      ("gc.major_gcs", Trace.Int d.major_collections);
    ]
  end

let enable () =
  if not (Atomic.get on) then begin
    Atomic.set on true;
    Trace.set_probe (Some { Trace.on_start; on_stop; on_emit })
  end

let disable () =
  Atomic.set on false;
  Trace.set_probe None

let reset () =
  Mutex.protect lock (fun () -> Hashtbl.reset table)

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold
        (fun span c acc ->
          if c.c_calls = 0 then acc
          else
            {
              span;
              calls = c.c_calls;
              total_us = c.c_total_us;
              self_us = c.c_self_us;
              gc =
                {
                  minor_words = c.c_minor_w;
                  major_words = c.c_major_w;
                  promoted_words = c.c_promoted_w;
                  minor_collections = c.c_minor_gcs;
                  major_collections = c.c_major_gcs;
                };
            }
            :: acc)
        table [])
  |> List.sort (fun a b -> String.compare a.span b.span)

let pp_summary ppf () =
  let rows = snapshot () in
  if rows = [] then Format.fprintf ppf "(no profiled spans)"
  else begin
    Format.fprintf ppf "@[<v>%-28s %8s %12s %12s %14s %8s %8s" "span" "calls"
      "total ms" "self ms" "minor words" "min.gcs" "maj.gcs";
    List.iter
      (fun r ->
        Format.fprintf ppf "@,%-28s %8d %12.2f %12.2f %14.0f %8d %8d" r.span
          r.calls (r.total_us /. 1e3) (r.self_us /. 1e3) r.gc.minor_words
          r.gc.minor_collections r.gc.major_collections)
      rows;
    Format.fprintf ppf "@]"
  end

(* --- Parallel.map_array utilization ----------------------------------- *)

type parallel_rollup = {
  maps : int;
  workers_spawned : int;
  wall_ns : int;
  busy_ns : int;
  utilization : float;
}

let parallel_rollup () =
  match
    ( Metrics.find_histogram "parallel.map_wall_ns",
      Metrics.find_histogram "parallel.domain_busy_ns" )
  with
  | Some wall, Some busy when wall.Metrics.count > 0 ->
    let maps = wall.Metrics.count in
    let workers =
      Option.value ~default:0 (Metrics.find_counter "parallel.workers_spawned")
    in
    (* The calling domain works alongside the spawned ones, so each map
       has (workers/maps + 1) domains live on average. *)
    let avg_domains = float_of_int (workers + maps) /. float_of_int maps in
    (* Clamp to [0, 1]: clock granularity can report zero-duration spans
       (busy > 0 with wall = 0) and a 1-domain run books the caller's own
       work as both wall and busy — either shows up as > 100% otherwise. *)
    let utilization =
      if wall.Metrics.sum = 0 then 0.
      else
        Float.min 1.
          (Float.max 0.
             (float_of_int busy.Metrics.sum
             /. (float_of_int wall.Metrics.sum *. avg_domains)))
    in
    Some
      {
        maps;
        workers_spawned = workers;
        wall_ns = wall.Metrics.sum;
        busy_ns = busy.Metrics.sum;
        utilization;
      }
  | _ -> None
