(** The conflict graph of an instance.

    Vertices are family indices; an edge joins two indices whose dipaths
    share an arc.  [w(G,P)] is its chromatic number and the paper's UPP
    analysis (Property 3, Corollary 5) is about the structure of this
    graph. *)

val build : Instance.t -> Wl_conflict.Ugraph.t
(** O(sum over arcs of load^2) construction via the per-arc occupancy
    lists. *)

val helly_witness : Instance.t -> int list option
(** Searches for a set of pairwise-conflicting dipaths with {e no} common
    arc — a violation of the Helly property.  Returns such a set of family
    indices if one exists (checks all pairwise-conflicting triples; by the
    paper's Property 3 proof, a triple suffices to witness failure on
    UPP-DAGs... and on general DAGs a failing triple is what Figure 3
    exhibits).  [None] means every pairwise-conflicting triple shares an
    arc. *)

val clique_lower_bound : Instance.t -> int
(** [pi] is always a clique of the conflict graph (the paths through a
    max-load arc); this returns that bound, i.e. [Load.pi]. *)
