(* Contract tests: every documented precondition violation raises, and with
   the documented message where one is promised. *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_prng_contracts () =
  let rng = Prng.create 1 in
  check "int bound 0" true (raises_invalid (fun () -> Prng.int rng 0));
  check "int_in empty" true (raises_invalid (fun () -> Prng.int_in rng 3 2));
  check "choose empty" true (raises_invalid (fun () -> Prng.choose rng [||]));
  check "choose_list empty" true (raises_invalid (fun () -> Prng.choose_list rng []));
  check "sample bad k" true
    (raises_invalid (fun () -> Prng.sample_without_replacement rng 5 3))

let test_permutation_contracts () =
  check "compose mismatch" true
    (raises_invalid (fun () ->
         Wl_util.Permutation.compose
           (Wl_util.Permutation.identity 2)
           (Wl_util.Permutation.identity 3)));
  check "bijections mismatch" true
    (raises_invalid (fun () ->
         Wl_util.Permutation.of_two_bijections [| 1; 1 |] [| 1; 2 |]))

let line n = Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_dipath_contracts () =
  let g = line 5 in
  let p = Dipath.make g [ 0; 1; 2 ] in
  check "sub bad indices" true (raises_invalid (fun () -> Dipath.sub g p 2 1));
  check "sub out of range" true (raises_invalid (fun () -> Dipath.sub g p 0 9));
  check "sub_between wrong order" true
    (raises_invalid (fun () -> Dipath.sub_between g p 2 0))

let test_instance_contracts () =
  let g = line 4 in
  let dag = Dag.of_digraph_exn g in
  let inst = Instance.make dag [ Dipath.make g [ 0; 1 ] ] in
  check "path index" true (raises_invalid (fun () -> Instance.path inst 1));
  check "paths_through bad arc" true
    (raises_invalid (fun () -> Instance.paths_through inst 99));
  check "arc_load bad arc" true (raises_invalid (fun () -> Load.arc_load inst (-1)));
  check "max_load_arc_among empty" true
    (raises_invalid (fun () -> Load.max_load_arc_among inst []))

let test_grooming_contracts () =
  let g = line 4 in
  let dag = Dag.of_digraph_exn g in
  let inst = Instance.make dag [ Dipath.make g [ 0; 1 ] ] in
  check "greedy negative w" true (raises_invalid (fun () -> Grooming.greedy inst ~w:(-1)));
  check "exact negative w" true (raises_invalid (fun () -> Grooming.exact inst ~w:(-1)));
  check "satisfy negative w is None" true (Grooming.satisfy inst ~w:(-1) = None)

let test_replication_contracts () =
  check "no sets" true
    (raises_invalid (fun () ->
         Replication.covering_coloring ~n_base:3 ~sets:[||] ~h:1 ~n_colors:3));
  check "set element range" true
    (raises_invalid (fun () ->
         Replication.covering_coloring ~n_base:2 ~sets:[| [ 5 ] |] ~h:1 ~n_colors:2));
  check "ceil_div zero" true (raises_invalid (fun () -> Replication.ceil_div 3 0));
  check "theorem6_upper negative" true
    (raises_invalid (fun () -> Bounds.theorem6_upper ~n_internal_cycles:(-1) 2))

let test_generator_contracts () =
  let rng = Prng.create 1 in
  let module G = Wl_netgen.Generators in
  check "layered bad" true
    (raises_invalid (fun () -> G.layered rng ~layers:0 ~width:3 ~p:0.5));
  check "tree bad" true (raises_invalid (fun () -> G.random_rooted_tree rng 0));
  check "cycles bad" true
    (raises_invalid (fun () -> G.upp_internal_cycles rng ~cycles:0 ()));
  check "backbone bad" true
    (raises_invalid (fun () -> G.backbone rng ~pops:0 ~levels:3));
  check "hotspot bad" true
    (raises_invalid (fun () ->
         Wl_netgen.Traffic.hotspot rng (G.random_rooted_tree rng 5) ~hubs:0
           ~bias:0.5 3))

let test_exact_contracts () =
  let g = Wl_conflict.Ugraph.create 3 in
  check "k_colorable negative" true
    (raises_invalid (fun () -> Wl_conflict.Exact.k_colorable g (-1)))

let test_baselines_contracts () =
  let g = line 4 in
  let dag = Dag.of_digraph_exn g in
  let inst = Instance.make dag [ Dipath.make g [ 0; 1 ] ] in
  check "best_of tries 0" true
    (raises_invalid (fun () ->
         Baselines.best_of_random_orders (Prng.create 1) ~tries:0 inst))

(* The CLI dispatches on these, so every constructor must keep a distinct
   sysexits-style code and a printable message. *)
let test_error_exit_codes () =
  let samples =
    [
      Error.Parse { line = 3; msg = "boom" };
      Error.Invalid_path "p";
      Error.Cyclic "c";
      Error.Bad_index { what = "path"; index = 7 };
      Error.Invalid_op "op";
      Error.Precondition "pre";
      Error.Unsupported_version 9;
      Error.Io "io";
    ]
  in
  let codes = List.map Error.exit_code samples in
  check_int "all codes distinct" (List.length samples)
    (List.length (List.sort_uniq compare codes));
  List.iter2
    (fun e code ->
      check "sysexits range" true (code >= 64 && code <= 78);
      check "message nonempty" true (String.length (Error.to_string e) > 0))
    samples codes;
  (* get_exn mirrors raise_error *)
  check_int "get_exn ok" 5 (Error.get_exn (Ok 5));
  check "get_exn raises" true
    (match Error.get_exn (Error (Error.Io "x")) with
    | exception Error.Error (Error.Io "x") -> true
    | _ -> false)

(* Exhaustive wire-code round-trip: to_code must agree with exit_code on
   every constructor, and of_code over the stable rendering must recover
   the constructor — the contract that keeps wire error frames, CLI exit
   statuses and library errors in one namespace. *)
let test_error_wire_codes () =
  let samples =
    [
      Error.Parse { line = 3; msg = "boom" };
      Error.Parse { line = 0; msg = "headerless" };
      Error.Invalid_path "p not a dipath";
      Error.Cyclic "cycle through 3";
      Error.Bad_index { what = "path"; index = 7 };
      Error.Bad_index { what = "tenant: shard"; index = 12 };
      Error.Invalid_op "dead handle";
      Error.Precondition "pre";
      Error.Unsupported_version 9;
      Error.Io "read failed";
    ]
  in
  List.iter
    (fun e ->
      check_int "to_code = exit_code" (Error.exit_code e) (Error.to_code e);
      match Error.of_code (Error.to_code e) (Error.to_string e) with
      | None -> Alcotest.failf "of_code %d returned None" (Error.to_code e)
      | Some e' ->
        Alcotest.(check string)
          "of_code round-trip" (Error.to_string e) (Error.to_string e');
        check "same constructor" true (Error.to_code e = Error.to_code e'))
    samples;
  (* the round-trip is exact, not just rendering-equal *)
  List.iter
    (fun e ->
      check "structural round-trip" true
        (Error.of_code (Error.to_code e) (Error.to_string e) = Some e))
    samples;
  check "unknown code" true (Error.of_code 63 "x" = None);
  check "unknown code high" true (Error.of_code 99 "x" = None)

let suite =
  [
    ( "contracts",
      [
        Alcotest.test_case "prng" `Quick test_prng_contracts;
        Alcotest.test_case "permutation" `Quick test_permutation_contracts;
        Alcotest.test_case "dipath" `Quick test_dipath_contracts;
        Alcotest.test_case "instance and load" `Quick test_instance_contracts;
        Alcotest.test_case "grooming" `Quick test_grooming_contracts;
        Alcotest.test_case "replication and bounds" `Quick test_replication_contracts;
        Alcotest.test_case "generators" `Quick test_generator_contracts;
        Alcotest.test_case "exact coloring" `Quick test_exact_contracts;
        Alcotest.test_case "baselines" `Quick test_baselines_contracts;
        Alcotest.test_case "error exit codes" `Quick test_error_exit_codes;
        Alcotest.test_case "error wire codes" `Quick test_error_wire_codes;
      ] );
  ]
