(** Fixed-capacity bitsets over [0 .. n-1], packed into [int] words.

    Used by the coloring and clique algorithms where dense set operations
    dominate the running time. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int

val copy : t -> t

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val cardinal : t -> int
(** Population count, O(words). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all elements. *)

val fill : t -> unit
(** Add all elements of [0 .. capacity-1]. *)

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. Capacities must agree. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val equal : t -> t -> bool
val subset : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val iter_ge : (int -> unit) -> t -> int -> unit
(** [iter_ge f t lo]: like {!iter} but only over elements [>= lo]
    ([lo >= 0]); whole words below [lo] are skipped, so iterating an
    upper triangle costs half of filtering inside [f]. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list

val first : t -> int option
(** Smallest element, if any. *)

val first_absent : t -> int
(** Smallest [i >= 0] not in the set ([capacity t] when the set is full) —
    the "first free color" query of the coloring heuristics, walking whole
    words instead of testing bits one by one. *)

val of_list : int -> int list -> t
(** [of_list n elems]. *)

val pp : Format.formatter -> t -> unit
