test/test_upp.ml: Alcotest Array Digraph Dipath Helpers List Traversal Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
