(** Growable arrays (amortized O(1) push), used by the graph structures.

    A thin, allocation-friendly alternative to [Buffer] for arbitrary
    element types.  Indices are checked. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val last : 'a t -> 'a
(** Raises [Invalid_argument] when empty. *)

val pop : 'a t -> 'a
(** Removes and returns the last element. Raises [Invalid_argument] when
    empty. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val clear : 'a t -> unit
