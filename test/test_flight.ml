(* Flight recorder: ring semantics, dump formats, the auto-dump latch,
   and the engine wiring (every session carries one; a failing audit or a
   rejected op trips the dump handler with the op tail that led there).

   The JSONL dump is the replayable record: of_jsonl must reproduce the
   entry list byte-for-byte-equivalently, and the Chrome dump must pass
   the same validator as solver traces so one `wl trace-check` serves
   both. *)

open Helpers
module Flight = Wl_obs.Flight
module Trace = Wl_obs.Trace
module Engine = Wl_engine.Engine
module Instance = Wl_core.Instance

let check_float = Alcotest.(check (float 0.))

let kinds = [| Flight.Add_path; Flight.Remove_path; Flight.Add_arc;
               Flight.Full_solve; Flight.Audit |]

let outcomes =
  [| Flight.Warm_hit; Flight.Fresh_color; Flight.Repair; Flight.Fallback;
     Flight.Dirty; Flight.Warm_remove; Flight.Shrink; Flight.Ok;
     Flight.Rejected; Flight.Failed |]

let record_n f n =
  for i = 0 to n - 1 do
    Flight.record f
      kinds.(i mod Array.length kinds)
      outcomes.(i mod Array.length outcomes)
      ~t_ns:(1_000_000 + (i * 1000))
      ~dur_ns:(i * 10) ~arcs:(i mod 7) ~palette:(i mod 5) ~pi:(i mod 5) ~trace:0
  done

let test_ring_retention () =
  let f = Flight.create ~capacity:16 () in
  check_int "capacity rounds to a power of two" 16 (Flight.capacity f);
  record_n f 40;
  check_int "lifetime count" 40 (Flight.total f);
  let es = Flight.entries f in
  check_int "holds the last capacity ops" 16 (List.length es);
  let seqs = List.map (fun e -> e.Flight.seq) es in
  check "oldest retained is total - capacity" true
    (seqs = List.init 16 (fun i -> 24 + i));
  (* Field round-trip through the packed ring, including the relative
     timestamp (origin = first recorded t_ns). *)
  List.iter
    (fun e ->
      let i = e.Flight.seq in
      check_int "t_ns relative to origin" (i * 1000) e.Flight.t_ns;
      check_int "dur" (i * 10) e.Flight.dur_ns;
      check "kind" true (e.Flight.kind = kinds.(i mod 5));
      check "outcome" true (e.Flight.outcome = outcomes.(i mod 10));
      check_int "arcs" (i mod 7) e.Flight.arcs;
      check_int "palette" (i mod 5) e.Flight.palette;
      check_int "pi" (i mod 5) e.Flight.pi)
    es;
  check_int "last=4 trims" 4 (List.length (Flight.entries ~last:4 f))

let test_jsonl_roundtrip () =
  let f = Flight.create ~capacity:32 () in
  record_n f 50;
  match Flight.of_jsonl (Flight.to_jsonl f) with
  | Error e -> Alcotest.fail ("of_jsonl: " ^ e)
  | Ok replayed ->
    check "JSONL replays the recorded op tail exactly" true
      (replayed = Flight.entries f)

let test_jsonl_rejects_garbage () =
  (match Flight.of_jsonl "{\"seq\": 0}\n" with
  | Error e -> check "missing fields located" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted a truncated record");
  match
    Flight.of_jsonl
      "{\"seq\": 0, \"t_ns\": 0, \"dur_ns\": 0, \"op\": \"warp\", \
       \"outcome\": \"ok\", \"arcs\": 0, \"palette\": 0, \"pi\": 0}\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown op kind"

let test_chrome_dump_validates () =
  let f = Flight.create ~capacity:64 ~tid:3 () in
  record_n f 20;
  match Trace.validate_chrome (Flight.to_chrome f) with
  | Ok n -> check_int "one event per retained op" 20 n
  | Error e -> Alcotest.fail ("chrome dump rejected: " ^ e)

let test_trigger_latch () =
  let fired = ref [] in
  Flight.set_dump_handler
    (Some (fun ~reason _ -> fired := reason :: !fired));
  Fun.protect
    ~finally:(fun () -> Flight.set_dump_handler None)
    (fun () ->
      let f = Flight.create () in
      check "not dumped initially" false (Flight.dumped f);
      Flight.trigger ~reason:"first" f;
      Flight.trigger ~reason:"second" f;
      check "latched after the first trigger" true (Flight.dumped f);
      check "handler ran exactly once" true (!fired = [ "first" ]);
      Flight.rearm f;
      Flight.trigger ~reason:"third" f;
      check "rearm re-enables the dump" true (!fired = [ "third"; "first" ]))

(* --- engine wiring ----------------------------------------------------------- *)

let churn session pool rounds =
  Array.iteri
    (fun i p ->
      if i < rounds then
        Engine.remove_path_exn session (Engine.add_dipath_exn session p))
    pool

let test_engine_audit_failure_dumps () =
  let captured = ref None in
  Flight.set_dump_handler
    (Some
       (fun ~reason f ->
         captured := Some (reason, Flight.to_jsonl f, Flight.to_chrome f)));
  Fun.protect
    ~finally:(fun () -> Flight.set_dump_handler None)
    (fun () ->
      let inst = random_nic_instance ~n:30 ~k:12 5 in
      let s = Engine.create inst in
      churn s (Instance.paths inst) 8;
      check "audit passes on a healthy session" true (Engine.audit s = Ok ());
      check "no dump yet" true (!captured = None);
      Engine.corrupt_for_testing s;
      (match Engine.audit s with
      | Ok () -> Alcotest.fail "audit passed on a corrupted session"
      | Error _ -> ());
      match !captured with
      | None -> Alcotest.fail "failing audit did not trigger a flight dump"
      | Some (reason, jsonl, chrome) ->
        check "reason names the audit" true
          (String.length reason >= 5 && String.sub reason 0 5 = "audit");
        (* The chrome dump passes the shared validator... *)
        (match Trace.validate_chrome chrome with
        | Ok n -> check "dump has the op tail" true (n > 0)
        | Error e -> Alcotest.fail ("dump trace invalid: " ^ e));
        (* ...and the JSONL replays the tail, ending in the audit event. *)
        (match Flight.of_jsonl jsonl with
        | Error e -> Alcotest.fail ("dump jsonl invalid: " ^ e)
        | Ok entries ->
          check "tail replays" true (entries <> []);
          let last = List.nth entries (List.length entries - 1) in
          check "last op is the failed audit" true
            (last.Flight.kind = Flight.Audit
            && last.Flight.outcome = Flight.Failed));
        check "session flight latched" true (Flight.dumped (Engine.flight s)))

let test_engine_rejection_dumps () =
  let fired = ref 0 in
  Flight.set_dump_handler (Some (fun ~reason:_ _ -> incr fired));
  Fun.protect
    ~finally:(fun () -> Flight.set_dump_handler None)
    (fun () ->
      let inst = random_nic_instance ~n:20 ~k:6 11 in
      let s = Engine.create inst in
      (match Engine.remove_path s 999_999 with
      | Ok () -> Alcotest.fail "bogus handle accepted"
      | Error _ -> ());
      check_int "rejected op trips the dump latch" 1 !fired;
      (* Latched: a second rejection does not spam the handler. *)
      (match Engine.remove_path s 999_998 with Ok () -> () | Error _ -> ());
      check_int "dump latch holds" 1 !fired)

let test_engine_health () =
  let inst = random_nic_instance ~n:40 ~k:15 3 in
  let s = Engine.create inst in
  ignore (Engine.report s);
  (* solved: the churn below runs warm *)
  let pool = Instance.paths inst in
  churn s pool 15;
  let h = Engine.health s in
  check "healthy after warm churn" true h.Engine.healthy;
  check "slo not tripped" false h.Engine.slo.Wl_obs.Hdr.Slo.tripped;
  check "adds were measured" true (h.Engine.add_latency.Wl_obs.Hdr.count >= 15);
  check "removes were measured" true
    (h.Engine.remove_latency.Wl_obs.Hdr.count >= 15);
  check "warm lifetime rate positive" true (h.Engine.warm_hit_lifetime > 0.);
  check "no fallback streak" true (h.Engine.fallback_streak = 0);
  check "no warm drop" false h.Engine.warm_drop;
  (* The ops we just ran are in the flight ring. *)
  check "flight recorded the churn" true
    (Flight.total (Engine.flight s) >= 30);
  (* pp_health renders without raising and names the SLO. *)
  let rendered = Format.asprintf "%a" Engine.pp_health h in
  check "pp_health mentions slo" true
    (let rec at i =
       i + 3 <= String.length rendered
       && (String.sub rendered i 3 = "slo" || at (i + 1))
     in
     at 0)

let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_record_zero_alloc () =
  let f = Flight.create ~capacity:256 () in
  record_n f 100;
  let dw =
    minor_delta (fun () ->
        for i = 1 to 1000 do
          Flight.record f Flight.Add_path Flight.Warm_hit ~t_ns:(i * 100)
            ~dur_ns:50 ~arcs:3 ~palette:2 ~pi:2 ~trace:0
        done)
  in
  check_float "Flight.record allocates nothing" 0. dw

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "ring retention" `Quick test_ring_retention;
        Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "jsonl rejects garbage" `Quick
          test_jsonl_rejects_garbage;
        Alcotest.test_case "chrome dump validates" `Quick
          test_chrome_dump_validates;
        Alcotest.test_case "trigger latch" `Quick test_trigger_latch;
        Alcotest.test_case "engine audit failure dumps" `Quick
          test_engine_audit_failure_dumps;
        Alcotest.test_case "engine rejection dumps" `Quick
          test_engine_rejection_dumps;
        Alcotest.test_case "engine health" `Quick test_engine_health;
        Alcotest.test_case "record zero-alloc" `Quick test_record_zero_alloc;
      ] );
  ]
