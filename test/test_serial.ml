(* Tests for the text instance format, its versioned header, and the JSON
   mirror. *)

open Helpers
open Wl_core
module Digraph = Wl_digraph.Digraph
module Dipath = Wl_digraph.Dipath

let same_instance inst inst' =
  Digraph.equal_structure (Instance.graph inst) (Instance.graph inst')
  && List.equal
       (fun p q -> Dipath.vertices p = Dipath.vertices q)
       (Instance.paths_list inst) (Instance.paths_list inst')

let roundtrip ?version inst =
  match Serial.of_string (Serial.to_string ?version inst) with
  | Error e -> Alcotest.failf "reparse failed: %s" (Error.to_string e)
  | Ok inst' -> same_instance inst inst'

let json_roundtrip ?pretty inst =
  match Serial.of_json (Serial.to_json ?pretty inst) with
  | Error e -> Alcotest.failf "json reparse failed: %s" (Error.to_string e)
  | Ok inst' -> same_instance inst inst'

let test_roundtrip_figures () =
  List.iter
    (fun inst ->
      check "roundtrip v2" true (roundtrip inst);
      check "roundtrip v1" true (roundtrip ~version:1 inst);
      check "roundtrip json" true (json_roundtrip inst);
      check "roundtrip json pretty" true (json_roundtrip ~pretty:true inst))
    [
      Wl_netgen.Figures.fig3 ();
      Wl_netgen.Figures.fig5 3;
      Wl_netgen.Figures.havet 2;
      Wl_netgen.Figures.fig1 4;
    ]

let roundtrip_random =
  qtest "roundtrip on random instances" seed_gen ~count:40 (fun seed ->
      let inst = random_instance seed in
      roundtrip inst && roundtrip ~version:1 inst && json_roundtrip inst)

let test_version_header () =
  let inst = Wl_netgen.Figures.fig3 () in
  let v2 = Serial.to_string inst in
  let v1 = Serial.to_string ~version:1 inst in
  check "v2 has header" true (String.length v2 > 5 && String.sub v2 0 5 = "wl 2\n");
  check "v1 is headerless v2" true (v2 = "wl 2\n" ^ v1);
  (* an explicit v1 header is also accepted *)
  (match Serial.of_string ("wl 1\n" ^ v1) with
  | Ok inst' -> check "wl 1 header accepted" true (same_instance inst inst')
  | Error e -> Alcotest.failf "wl 1 header rejected: %s" (Error.to_string e));
  match Serial.of_string ("wl 99\n" ^ v1) with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error (Error.Unsupported_version 99) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_labels_roundtrip () =
  let inst = Wl_netgen.Figures.fig3 () in
  match Serial.of_string (Serial.to_string inst) with
  | Error e -> Alcotest.failf "reparse failed: %s" (Error.to_string e)
  | Ok inst' ->
    check "labels preserved" true (Digraph.label (Instance.graph inst') 0 = "a1")

let test_labels_json_roundtrip () =
  let inst = Wl_netgen.Figures.fig3 () in
  match Serial.of_json (Serial.to_json inst) with
  | Error e -> Alcotest.failf "json reparse failed: %s" (Error.to_string e)
  | Ok inst' ->
    check "labels preserved" true (Digraph.label (Instance.graph inst') 0 = "a1")

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let parse_error expected text =
  match Serial.of_string text with
  | Ok _ -> Alcotest.failf "expected parse error %S" expected
  | Error e ->
    let msg = Error.to_string e in
    check (Printf.sprintf "error mentions %S (got %S)" expected msg) true
      (contains msg expected)

let test_parse_errors () =
  parse_error "missing 'dag" "# only a comment\n";
  parse_error "before 'dag'" "arc 0 1\ndag 2";
  parse_error "duplicate" "dag 2\ndag 3";
  parse_error "unknown directive" "dag 2\nfoo 1";
  parse_error "not an integer" "dag 2\narc 0 x";
  parse_error "no such vertex" "dag 2\narc 0 5";
  parse_error "missing arc" "dag 3\narc 0 1\npath 0 2";
  parse_error "out of range" "dag 2\nvlabel 7 z";
  parse_error "self-loop" "dag 2\narc 1 1";
  parse_error "before 'dag'" "dag 2\nwl 2"

let json_error expected text =
  match Serial.of_json text with
  | Ok _ -> Alcotest.failf "expected json error %S" expected
  | Error e ->
    let msg = Error.to_string e in
    check (Printf.sprintf "json error mentions %S (got %S)" expected msg) true
      (contains msg expected)

let test_json_errors () =
  json_error "expected" "[1, 2]";
  (* syntax error *)
  json_error "vertices" "{\"format\": \"wl-instance\"}";
  json_error "pair of integers" "{\"vertices\": 3, \"arcs\": [[0]]}";
  json_error "self-loop" "{\"vertices\": 3, \"arcs\": [[1, 1]]}";
  json_error "missing arc" "{\"vertices\": 3, \"arcs\": [[0, 1]], \"paths\": [[0, 2]]}";
  json_error "unknown format" "{\"format\": \"nope\", \"vertices\": 1}";
  (match Serial.of_json "{\"vertices\": 2, \"version\": 99}" with
  | Error (Error.Unsupported_version 99) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "future json version accepted");
  json_error "not a DAG" "{\"vertices\": 2, \"arcs\": [[0, 1], [1, 0]]}"

let test_comments_and_blanks () =
  let text = "# header\n\ndag 3  # three vertices\narc 0 1\n  arc 1 2  \n\npath 0 1 2\n" in
  match Serial.of_string text with
  | Error e -> Alcotest.failf "should parse: %s" (Error.to_string e)
  | Ok inst ->
    check_int "paths" 1 (Instance.n_paths inst);
    check_int "arcs" 2 (Digraph.n_arcs (Instance.graph inst))

let test_file_io () =
  let inst = Wl_netgen.Figures.fig5 2 in
  let tmp = Filename.temp_file "wl_test" ".wl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Serial.write_file tmp inst;
      match Serial.read_file tmp with
      | Ok inst' -> check "file roundtrip" true (same_instance inst inst')
      | Error e -> Alcotest.failf "read failed: %s" (Error.to_string e))

let test_file_io_json () =
  let inst = Wl_netgen.Figures.fig5 2 in
  let tmp = Filename.temp_file "wl_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc (Serial.to_json ~pretty:true inst);
      close_out oc;
      (* read_file sniffs the leading '{' and dispatches to the JSON reader *)
      match Serial.read_file tmp with
      | Ok inst' -> check "json file roundtrip" true (same_instance inst inst')
      | Error e -> Alcotest.failf "read failed: %s" (Error.to_string e))

let test_missing_file () =
  match Serial.read_file "/nonexistent/wl-instance.wl" with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error (Error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_rejects_directed_cycle () =
  parse_error "not a DAG" "dag 2\narc 0 1\narc 1 0"

(* Determinism across serialization: coloring the reparsed instance gives
   the same wavelengths (arc ids and family order round-trip intact). *)
let deterministic_through_io =
  qtest "theorem1 coloring survives a serialization roundtrip" seed_gen
    ~count:25 (fun seed ->
      let inst = random_nic_instance ~n:14 ~k:10 seed in
      match Serial.of_string (Serial.to_string inst) with
      | Error _ -> false
      | Ok inst' -> Theorem1.color inst = Theorem1.color inst')

let deterministic_through_json =
  qtest "theorem1 coloring survives a JSON roundtrip" seed_gen ~count:25
    (fun seed ->
      let inst = random_nic_instance ~n:14 ~k:10 seed in
      match Serial.of_json (Serial.to_json inst) with
      | Error _ -> false
      | Ok inst' -> Theorem1.color inst = Theorem1.color inst')

let suite =
  [
    ( "serial",
      [
        Alcotest.test_case "figure roundtrips" `Quick test_roundtrip_figures;
        roundtrip_random;
        Alcotest.test_case "version header" `Quick test_version_header;
        Alcotest.test_case "labels roundtrip" `Quick test_labels_roundtrip;
        Alcotest.test_case "labels json roundtrip" `Quick test_labels_json_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "file io" `Quick test_file_io;
        Alcotest.test_case "json file io" `Quick test_file_io_json;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        Alcotest.test_case "rejects directed cycles" `Quick
          test_rejects_directed_cycle;
        deterministic_through_io;
        deterministic_through_json;
      ] );
  ]
