(* Tests for the Theorem 2 construction: every DAG with an internal cycle
   carries a family with pi = 2 and w = 3 whose conflict graph is an odd
   cycle. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Graph_props = Wl_conflict.Graph_props

let verify_theorem2_family inst =
  let cg = Conflict_of.build inst in
  Load.pi inst = 2
  && Bounds.chromatic_exact inst = 3
  && Graph_props.is_cycle_graph cg
  && Wl_conflict.Ugraph.n_vertices cg mod 2 = 1

let test_on_fig5 () =
  List.iter
    (fun k ->
      let inst = Figures.fig5 k in
      check_int "2k+1 dipaths" ((2 * k) + 1) (Instance.n_paths inst);
      check "family verifies" true (verify_theorem2_family inst))
    [ 2; 3; 4; 5; 6 ]

let test_none_without_cycle () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let dag = Generators.gnp_no_internal_cycle rng 15 0.25 in
    check "no witness family" true (Theorem2.build dag = None)
  done

let witness_on_any_cyclic_dag =
  qtest "construction works on arbitrary DAGs with internal cycles" seed_gen
    ~count:60 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.3 in
      match Theorem2.build dag with
      | None -> not (Wl_dag.Internal_cycle.has_internal_cycle dag)
      | Some inst -> verify_theorem2_family inst)

let witness_on_upp_one_cycle =
  qtest "construction on the Theorem 6 generator" seed_gen ~count:40 (fun seed ->
      let dag = Generators.upp_one_internal_cycle (Prng.create seed) () in
      match Theorem2.build dag with
      | None -> false
      | Some inst -> verify_theorem2_family inst)

let test_main_theorem_dichotomy () =
  (* Main Theorem, both directions, on a mixed bag of DAGs. *)
  let rng = Prng.create 77 in
  for _ = 1 to 30 do
    let dag = Generators.gnp_dag rng 12 0.3 in
    let has_cycle = Wl_dag.Internal_cycle.has_internal_cycle dag in
    match Theorem2.build dag with
    | Some inst ->
      (* Direction 1: internal cycle => some family has w > pi. *)
      check "gap family exists" true has_cycle;
      check "w exceeds pi" true (Bounds.chromatic_exact inst > Load.pi inst)
    | None ->
      check "no cycle" false has_cycle;
      (* Direction 2: no internal cycle => w = pi for random families. *)
      let inst =
        Wl_netgen.Path_gen.random_instance rng dag 10
      in
      check "w equals pi" true
        (Load.pi inst
        = Assignment.n_wavelengths (Assignment.normalize (Theorem1.color inst)))
  done

let test_replicate () =
  let inst = Figures.fig5 2 in
  List.iter
    (fun h ->
      let r = Theorem2.replicate inst h in
      check_int "5h paths" (5 * h) (Instance.n_paths r);
      check_int "pi = 2h" (2 * h) (Load.pi r))
    [ 1; 2; 3 ];
  Alcotest.check_raises "h must be positive"
    (Invalid_argument "Theorem2.replicate: h must be >= 1") (fun () ->
      ignore (Theorem2.replicate inst 0))

(* The paper (Section 4): replicating the k=2 family h times gives
   w = ceil(5h/2), approaching ratio 5/4 — not yet the 4/3 bound. *)
let test_replicated_ratio () =
  let inst = Figures.fig5 2 in
  List.iter
    (fun h ->
      let r = Theorem2.replicate inst h in
      check_int
        (Printf.sprintf "w of 5 x %d replication" h)
        (Replication.ceil_div (5 * h) 2)
        (Bounds.chromatic_exact r))
    [ 1; 2; 3; 4 ]

(* And the covering-design coloring matches exactly, at any h. *)
let test_replicated_covering_coloring () =
  List.iter
    (fun (k, h) ->
      let inst = Theorem2.replicate (Figures.fig5 k) h in
      let m = (2 * k) + 1 in
      let t = Replication.ceil_div (m * h) k in
      match
        Replication.covering_coloring ~n_base:m
          ~sets:(Figures.odd_cycle_independent_sets k) ~h ~n_colors:t
      with
      | Some a -> check "covering coloring valid" true (Assignment.is_valid inst a)
      | None -> Alcotest.fail "covering coloring should exist")
    [ (2, 1); (2, 2); (2, 5); (3, 3); (4, 4); (5, 7) ]

let suite =
  [
    ( "theorem-2",
      [
        Alcotest.test_case "figure 5 families" `Quick test_on_fig5;
        Alcotest.test_case "none without internal cycle" `Quick test_none_without_cycle;
        witness_on_any_cyclic_dag;
        witness_on_upp_one_cycle;
        Alcotest.test_case "main theorem dichotomy" `Slow test_main_theorem_dichotomy;
        Alcotest.test_case "replication" `Quick test_replicate;
        Alcotest.test_case "replicated ratio 5/4" `Quick test_replicated_ratio;
        Alcotest.test_case "replicated covering colorings" `Quick
          test_replicated_covering_coloring;
      ] );
  ]
