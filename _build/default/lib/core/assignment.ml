type t = int array

let first_conflict inst assignment =
  let n = Instance.n_paths inst in
  if Array.length assignment <> n then
    invalid_arg "Assignment: length mismatch with family";
  Array.iter (fun c -> if c < 0 then invalid_arg "Assignment: negative color") assignment;
  let g = Instance.graph inst in
  let m = Wl_digraph.Digraph.n_arcs g in
  let rec scan_arcs a =
    if a >= m then None
    else begin
      let users = Instance.paths_through inst a in
      let seen = Hashtbl.create 8 in
      let rec scan_users = function
        | [] -> scan_arcs (a + 1)
        | i :: rest -> (
          match Hashtbl.find_opt seen assignment.(i) with
          | Some j -> Some (j, i, a)
          | None ->
            Hashtbl.add seen assignment.(i) i;
            scan_users rest)
      in
      scan_users users
    end
  in
  scan_arcs 0

let is_valid inst assignment = first_conflict inst assignment = None

let n_wavelengths t =
  if Array.length t = 0 then 0 else 1 + Array.fold_left max (-1) t

let normalize t = Wl_conflict.Coloring.normalize t

let of_conflict_coloring c = Array.copy c

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t)
