lib/core/theorem2.ml: Array Digraph Dipath Instance List Wl_dag Wl_digraph
