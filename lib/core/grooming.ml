open Wl_digraph
module Dag = Wl_dag.Dag

type selection = { selected : bool array; size : int; load : int }

let load_profile_of inst chosen =
  let g = Instance.graph inst in
  let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
  Array.iteri
    (fun i keep ->
      if keep then
        Array.iter
          (fun a -> load.(a) <- load.(a) + 1)
          (Dipath.arc_array (Instance.path inst i)))
    chosen;
  load

let load_of_subfamily inst chosen =
  Array.fold_left max 0 (load_profile_of inst chosen)

let selection_of inst chosen =
  {
    selected = chosen;
    size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 chosen;
    load = load_of_subfamily inst chosen;
  }

let greedy inst ~w =
  if w < 0 then invalid_arg "Grooming.greedy: w must be >= 0";
  let n = Instance.n_paths inst in
  let g = Instance.graph inst in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      compare
        (Dipath.n_arcs (Instance.path inst i), i)
        (Dipath.n_arcs (Instance.path inst j), j))
    order;
  let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
  let chosen = Array.make n false in
  Array.iter
    (fun i ->
      let arcs = Dipath.arc_array (Instance.path inst i) in
      if Array.for_all (fun a -> load.(a) < w) arcs then begin
        chosen.(i) <- true;
        Array.iter (fun a -> load.(a) <- load.(a) + 1) arcs
      end)
    order;
  selection_of inst chosen

exception Node_budget_exhausted

let exact ?(node_limit = 2_000_000) inst ~w =
  if w < 0 then invalid_arg "Grooming.exact: w must be >= 0";
  let n = Instance.n_paths inst in
  if Load.pi inst <= w then
    (* Everything fits. *)
    Some (selection_of inst (Array.make n true))
  else begin
    let g = Instance.graph inst in
    let arcs_of = Array.init n (fun i -> Dipath.arc_array (Instance.path inst i)) in
    let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
    let chosen = Array.make n false in
    let best = ref (greedy inst ~w) in
    let nodes = ref 0 in
    let rec go idx count =
      incr nodes;
      if !nodes > node_limit then raise Node_budget_exhausted;
      if count + (n - idx) <= !best.size then ()
      else if idx = n then begin
        if count > !best.size then best := selection_of inst (Array.copy chosen)
      end
      else begin
        (* Include idx if feasible. *)
        if Array.for_all (fun a -> load.(a) < w) arcs_of.(idx) then begin
          Array.iter (fun a -> load.(a) <- load.(a) + 1) arcs_of.(idx);
          chosen.(idx) <- true;
          go (idx + 1) (count + 1);
          chosen.(idx) <- false;
          Array.iter (fun a -> load.(a) <- load.(a) - 1) arcs_of.(idx)
        end;
        (* Exclude idx. *)
        go (idx + 1) count
      end
    in
    match go 0 0 with
    | () -> Some !best
    | exception Node_budget_exhausted -> None
  end

let is_line dag =
  let g = Dag.graph dag in
  let n = Digraph.n_vertices g in
  n >= 2
  && Digraph.n_arcs g = n - 1
  && List.for_all
       (fun v -> Digraph.out_degree g v <= 1 && Digraph.in_degree g v <= 1)
       (Digraph.vertices g)
  && List.length (Dag.sources dag) = 1

let on_line inst ~w =
  if w < 0 then invalid_arg "Grooming.on_line: w must be >= 0";
  let dag = Instance.dag inst in
  if not (is_line dag) then None
  else begin
    let g = Instance.graph inst in
    (* Position of each vertex along the line. *)
    let pos = Array.make (Digraph.n_vertices g) 0 in
    let rec walk v i =
      pos.(v) <- i;
      match Digraph.succ g v with
      | [ next ] -> walk next (i + 1)
      | _ -> ()
    in
    (match Dag.sources dag with
    | [ s ] -> walk s 0
    | _ -> invalid_arg "Grooming.on_line: not a line");
    let n = Instance.n_paths inst in
    (* Intervals [lo, hi) in arc positions; arc from position p covers p. *)
    let interval i =
      let p = Instance.path inst i in
      (pos.(Dipath.src p), pos.(Dipath.dst p))
    in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let _, ri = interval i and _, rj = interval j in
        compare (ri, i) (rj, j))
      order;
    let cover = Array.make (max 1 (Digraph.n_arcs g)) 0 in
    let chosen = Array.make n false in
    Array.iter
      (fun i ->
        let lo, hi = interval i in
        let fits = ref true in
        for p = lo to hi - 1 do
          if cover.(p) >= w then fits := false
        done;
        if !fits then begin
          chosen.(i) <- true;
          for p = lo to hi - 1 do
            cover.(p) <- cover.(p) + 1
          done
        end)
      order;
    Some (selection_of inst chosen)
  end

let sub_instance inst chosen =
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 chosen in
  if count = 0 then Instance.of_array (Instance.dag inst) [||]
  else begin
  let paths = Array.make count (Instance.path inst 0) in
  let k = ref 0 in
  Array.iteri
    (fun i keep ->
      if keep then begin
        paths.(!k) <- Instance.path inst i;
        incr k
      end)
    chosen;
  Instance.of_array (Instance.dag inst) paths
  end

let select inst ~w =
  match on_line inst ~w with
  | Some s -> s
  | None -> (
    if Instance.n_paths inst <= 22 then
      match exact inst ~w with Some s -> s | None -> greedy inst ~w
    else greedy inst ~w)

let satisfy inst ~w =
  if w < 0 then None
  else begin
    let dag = Instance.dag inst in
    let has_cycle = Wl_dag.Internal_cycle.has_internal_cycle dag in
    (* Without internal cycles, load <= w is exactly w-satisfiability
       (Theorem 1); with them the coloring can exceed the load, so retry
       with a stricter load target until the colors fit (the empty
       selection always does). *)
    let rec attempt target =
      if target < 0 then None
      else begin
        let selection = select inst ~w:target in
        let sub = sub_instance inst selection.selected in
        let assignment =
          if has_cycle then (Solver.solve sub).Solver.assignment
          else Assignment.normalize (Theorem1.color sub)
        in
        if Assignment.n_wavelengths (Assignment.normalize assignment) > w then
          attempt (target - 1)
        else Some (selection, assignment)
      end
    in
    attempt w
  end
