(** Structural classification of a DAG.

    The solver dispatches on this summary: Theorem 1 applies without internal
    cycles, Theorem 6 to UPP-DAGs with exactly one internal cycle, and the
    general case falls back to conflict-graph coloring heuristics. *)

type t = {
  n_vertices : int;
  n_arcs : int;
  n_sources : int;
  n_sinks : int;
  n_internal_cycles : int; (** cyclomatic number of the internal subgraph *)
  is_upp : bool;
  is_rooted_forest : bool;
      (** every vertex has in-degree <= 1 (so there is a unique dipath from
          each root down to any descendant) *)
  longest_path : int;
}

val classify : Dag.t -> t

val is_rooted_forest : Dag.t -> bool
(** Every vertex has in-degree at most 1.  Rooted forests are UPP and have
    no internal cycle, hence satisfy [w = pi] (the paper's rooted-tree
    remark). *)

val pp : Format.formatter -> t -> unit
