open Wl_digraph
module Union_find = Wl_util.Union_find

type walk = (Digraph.arc * bool) list

type canonical = {
  b : Digraph.vertex array;
  c : Digraph.vertex array;
  down : Dipath.t array;
  up : Dipath.t array;
}

let internal_vertex d v =
  let g = Dag.graph d in
  Digraph.in_degree g v > 0 && Digraph.out_degree g v > 0

let internal_vertices d =
  List.filter (internal_vertex d) (Digraph.vertices (Dag.graph d))

let arc_internal d a =
  let g = Dag.graph d in
  internal_vertex d (Digraph.arc_src g a) && internal_vertex d (Digraph.arc_dst g a)

let find d =
  Traversal.undirected_cycle ~keep_arc:(arc_internal d) (Dag.graph d)

let has_internal_cycle d = find d <> None

let count_independent d =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  let internal = Array.init n (internal_vertex d) in
  let uf = Union_find.create n in
  let m' = ref 0 in
  Digraph.iter_arcs
    (fun _ u v ->
      if internal.(u) && internal.(v) then begin
        incr m';
        ignore (Union_find.union uf u v)
      end)
    g;
  let n' = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 internal in
  (* Components among internal vertices only. *)
  let comps =
    let seen = Hashtbl.create 16 in
    let c = ref 0 in
    Array.iteri
      (fun v is_int ->
        if is_int then begin
          let r = Union_find.find uf v in
          if not (Hashtbl.mem seen r) then begin
            Hashtbl.add seen r ();
            incr c
          end
        end)
      internal;
    !c
  in
  !m' - n' + comps

let walk_vertices g walk =
  (* Vertex sequence w0 .. wm (wm = w0) of a closed walk. *)
  match walk with
  | [] -> invalid_arg "Internal_cycle: empty walk"
  | (a0, f0) :: _ ->
    let start = if f0 then Digraph.arc_src g a0 else Digraph.arc_dst g a0 in
    let rec go v acc = function
      | [] -> List.rev acc
      | (a, fwd) :: rest ->
        let u, w = Digraph.arc_endpoints g a in
        let v' =
          if fwd then begin
            if u <> v then invalid_arg "Internal_cycle: walk not connected";
            w
          end
          else begin
            if w <> v then invalid_arg "Internal_cycle: walk not connected";
            u
          end
        in
        go v' (v' :: acc) rest
    in
    let rest = go start [start] walk in
    (match List.rev rest with
    | last :: _ when last = start -> rest
    | _ -> invalid_arg "Internal_cycle: walk not closed")

let canonicalize d walk =
  let g = Dag.graph d in
  ignore (walk_vertices g walk);
  let arr = Array.of_list walk in
  let m = Array.length arr in
  if Array.for_all (fun (_, f) -> f) arr || Array.for_all (fun (_, f) -> not f) arr
  then invalid_arg "Internal_cycle.canonicalize: directed cycle in a DAG?";
  (* Rotate so that position 0 starts a forward run and the walk ends with a
     backward run. *)
  let rec find_start i =
    if i >= m then invalid_arg "Internal_cycle.canonicalize: no boundary"
    else
      let _, prev_f = arr.((i + m - 1) mod m) in
      let _, cur_f = arr.(i) in
      if (not prev_f) && cur_f then i else find_start (i + 1)
  in
  let s = find_start 0 in
  let rotated = Array.init m (fun i -> arr.((s + i) mod m)) in
  (* Group into maximal same-direction runs. *)
  let runs = ref [] in
  let cur = ref [ rotated.(0) ] in
  for i = 1 to m - 1 do
    let _, f = rotated.(i) in
    let _, fprev = List.hd !cur in
    if f = fprev then cur := rotated.(i) :: !cur
    else begin
      runs := List.rev !cur :: !runs;
      cur := [ rotated.(i) ]
    end
  done;
  runs := List.rev !cur :: !runs;
  let runs = List.rev !runs in
  let k2 = List.length runs in
  if k2 mod 2 <> 0 then invalid_arg "Internal_cycle.canonicalize: odd run count";
  let k = k2 / 2 in
  let down = Array.make k None and up = Array.make k None in
  List.iteri
    (fun i run ->
      let arcs = List.map fst run in
      let _, fwd = List.hd run in
      if i mod 2 = 0 then begin
        assert fwd;
        down.(i / 2) <- Some (Dipath.of_arcs g arcs)
      end
      else begin
        assert (not fwd);
        (* Backward run walks c_i back to b_{i+1}; as a dipath reverse it. *)
        up.(i / 2) <- Some (Dipath.of_arcs g (List.rev arcs))
      end)
    runs;
  let down = Array.map Option.get down and up = Array.map Option.get up in
  let b = Array.map Dipath.src down in
  let c = Array.map Dipath.dst down in
  { b; c; down; up }

let find_canonical d =
  Option.map (canonicalize d) (find d)

let verify_canonical d can =
  let k = Array.length can.b in
  k >= 1
  && Array.length can.c = k
  && Array.length can.down = k
  && Array.length can.up = k
  && Array.for_all (internal_vertex d) can.b
  && Array.for_all (internal_vertex d) can.c
  && (let ok = ref true in
      for i = 0 to k - 1 do
        if Dipath.src can.down.(i) <> can.b.(i) then ok := false;
        if Dipath.dst can.down.(i) <> can.c.(i) then ok := false;
        if Dipath.src can.up.(i) <> can.b.((i + 1) mod k) then ok := false;
        if Dipath.dst can.up.(i) <> can.c.(i) then ok := false;
        (* Every internal vertex of each segment must be internal in G too:
           interior segment vertices have degree 2 on the cycle, hence are
           internal whenever they have both an in- and an out-arc — which
           they do, being interior to a dipath. *)
        List.iter
          (fun v -> if not (internal_vertex d v) then ok := false)
          (Dipath.vertices can.down.(i) @ Dipath.vertices can.up.(i))
      done;
      !ok)

let arcs_of_canonical can =
  let tbl = Hashtbl.create 32 in
  let out = ref [] in
  Array.iter
    (fun p ->
      List.iter
        (fun a ->
          if not (Hashtbl.mem tbl a) then begin
            Hashtbl.add tbl a ();
            out := a :: !out
          end)
        (Dipath.arcs p))
    (Array.append can.down can.up);
  List.rev !out

let pp_canonical d ppf can =
  let g = Dag.graph d in
  let k = Array.length can.b in
  Format.fprintf ppf "@[<v>internal cycle, k = %d@," k;
  for i = 0 to k - 1 do
    Format.fprintf ppf "  down %d: %a@," i (Dipath.pp g) can.down.(i);
    Format.fprintf ppf "  up   %d: %a@," i (Dipath.pp g) can.up.(i)
  done;
  Format.fprintf ppf "@]"
