(* Striping: each instrument holds [stripes] atomic cells and a domain
   updates cell [domain_id land (stripes - 1)].  Domain ids are assigned
   sequentially by the runtime, so concurrently live domains land on
   distinct stripes until more than [stripes] run at once — and even then
   the cells stay correct, just contended.  Reads sum all stripes; they
   may race with writers, which is fine for monitoring (each cell read is
   atomic, so the total is a valid "recent" value). *)

let stripes = 16 (* power of two *)

let stripe () = (Domain.self () :> int) land (stripes - 1)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type counter = { c_name : string; cells : int Atomic.t array }

(* 63 power-of-two buckets cover every non-negative OCaml int. *)
let n_buckets = 63

type histogram = {
  h_name : string;
  counts : int Atomic.t array; (* n_buckets cells, shared across domains *)
  sums : int Atomic.t array; (* striped *)
  ns : int Atomic.t array; (* striped observation counts *)
  mn : int Atomic.t;
  mx : int Atomic.t;
}

(* Latency-class instruments delegate to an HDR histogram: exact
   quantiles from fixed memory, recorded lock-free from any domain.  The
   enable gate lives here; Hdr itself is always on. *)
type latency = { l_name : string; hdr : Hdr.t }

type entry = C of counter | H of histogram | L of latency

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()
let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

let register name mk unwrap =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some e -> unwrap e
      | None ->
        let v = mk () in
        v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; cells = atomic_cells stripes } in
      Hashtbl.add registry name (C c);
      c)
    (function
      | C c -> c
      | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          counts = atomic_cells n_buckets;
          sums = atomic_cells stripes;
          ns = atomic_cells stripes;
          mn = Atomic.make max_int;
          mx = Atomic.make min_int;
        }
      in
      Hashtbl.add registry name (H h);
      h)
    (function
      | H h -> h
      | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

let latency name =
  register name
    (fun () ->
      let l = { l_name = name; hdr = Hdr.create () } in
      Hashtbl.add registry name (L l);
      l)
    (function
      | L l -> l
      | _ -> invalid_arg ("Metrics.latency: " ^ name ^ " is not a latency"))

let observe_ns l v = if Atomic.get on then Hdr.record l.hdr v

let add c v =
  if Atomic.get on then
    ignore (Atomic.fetch_and_add c.cells.(stripe ()) v : int)

let incr c = add c 1

let sum_cells cells = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 cells
let value c = sum_cells c.cells

(* Index of the power-of-two bucket: smallest b with v <= 2^b. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go b top = if v <= top then b else go (b + 1) (top * 2) in
    go 1 2
  end

let rec cas_extreme cell better v =
  let cur = Atomic.get cell in
  if better v cur && not (Atomic.compare_and_set cell cur v) then
    cas_extreme cell better v

let observe h v =
  if Atomic.get on then begin
    let s = stripe () in
    ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1 : int);
    ignore (Atomic.fetch_and_add h.sums.(s) v : int);
    ignore (Atomic.fetch_and_add h.ns.(s) 1 : int);
    cas_extreme h.mn ( < ) v;
    cas_extreme h.mx ( > ) v
  end

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

type instrument =
  | Counter of int
  | Histogram of hist_snapshot
  | Latency of Hdr.snapshot

let snapshot_hist h =
  let buckets = ref [] in
  for b = n_buckets - 1 downto 0 do
    let c = Atomic.get h.counts.(b) in
    if c > 0 then buckets := ((if b >= 62 then max_int else 1 lsl b), c) :: !buckets
  done;
  {
    count = sum_cells h.ns;
    sum = sum_cells h.sums;
    min = Atomic.get h.mn;
    max = Atomic.get h.mx;
    buckets = !buckets;
  }

let snapshot () =
  let all =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry [])
  in
  List.filter_map
    (fun (name, e) ->
      match e with
      | C c ->
        let v = value c in
        if v = 0 then None else Some (name, Counter v)
      | H h ->
        let s = snapshot_hist h in
        if s.count = 0 then None else Some (name, Histogram s)
      | L l ->
        let s = Hdr.snapshot l.hdr in
        if s.Hdr.count = 0 then None else Some (name, Latency s))
    all
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> Some (value c)
      | _ -> None)

let find_histogram name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> Some (snapshot_hist h)
      | _ -> None)

let find_latency name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (L l) -> Some (Hdr.snapshot l.hdr)
      | _ -> None)

(* One scalar per instrument for before/after comparison: counters by
   value, histograms and latencies by observation count. *)
let scalar_of = function
  | Counter v -> v
  | Histogram s -> s.count
  | Latency s -> s.Hdr.count

let diff before after =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (name, inst) -> Hashtbl.replace tbl name (scalar_of inst, 0)) before;
  List.iter
    (fun (name, inst) ->
      let b = match Hashtbl.find_opt tbl name with Some (b, _) -> b | None -> 0 in
      Hashtbl.replace tbl name (b, scalar_of inst))
    after;
  Hashtbl.fold
    (fun name (b, a) acc -> if b = a then acc else (name, b, a) :: acc)
    tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e with
          | C c -> Array.iter (fun a -> Atomic.set a 0) c.cells
          | H h ->
            Array.iter (fun a -> Atomic.set a 0) h.counts;
            Array.iter (fun a -> Atomic.set a 0) h.sums;
            Array.iter (fun a -> Atomic.set a 0) h.ns;
            Atomic.set h.mn max_int;
            Atomic.set h.mx min_int
          | L l -> Hdr.reset l.hdr)
        registry)

let pp_summary ppf () =
  let entries = snapshot () in
  if entries = [] then Format.fprintf ppf "(no metrics recorded)"
  else begin
    Format.fprintf ppf "@[<v>";
    List.iteri
      (fun i (name, inst) ->
        if i > 0 then Format.fprintf ppf "@,";
        match inst with
        | Counter v -> Format.fprintf ppf "%-32s %12d" name v
        | Histogram s ->
          Format.fprintf ppf "%-32s %12d  sum %-10d min %-8d mean %-10.1f max %d"
            name s.count s.sum s.min
            (float_of_int s.sum /. float_of_int (Stdlib.max 1 s.count))
            s.max
        | Latency s -> Format.fprintf ppf "%-32s %a" name Hdr.pp_ns s)
      entries;
    Format.fprintf ppf "@]"
  end
