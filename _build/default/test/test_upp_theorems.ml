(* Tests for the Section 4 structure theory of UPP-DAGs: Helly property,
   clique = load, crossing lemma, forbidden subgraphs. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let upp_family seed =
  let rng = Prng.create seed in
  let dag = Generators.gnp_upp rng 16 0.25 in
  Path_gen.random_instance rng dag 12

let intervals_on_upp =
  qtest "conflicting dipaths intersect in one interval (Property 3)" seed_gen
    ~count:60 (fun seed ->
      Upp_theorems.pairwise_intersections_are_intervals (upp_family seed))

let helly_on_upp =
  qtest "Helly property on UPP families" seed_gen ~count:60 (fun seed ->
      Upp_theorems.helly_holds (upp_family seed))

let clique_equals_load_on_upp =
  qtest "clique number = load on UPP families (Property 3)" seed_gen ~count:60
    (fun seed -> Upp_theorems.clique_number_equals_load (upp_family seed))

let no_k23_on_upp =
  qtest "no K_{2,3} in UPP conflict graphs (Corollary 5)" seed_gen ~count:60
    (fun seed -> Upp_theorems.no_k23 (upp_family seed))

let no_k5_minus_on_upp =
  qtest "no K5 minus two independent edges (Section 4 remark)" seed_gen
    ~count:25 (fun seed -> Upp_theorems.no_k5_minus_two_edges (upp_family seed))

let crossing_lemma_on_upp =
  qtest "crossing lemma (Lemma 4)" seed_gen ~count:25 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_upp rng 14 0.25 in
      let inst = Path_gen.random_instance rng dag 8 in
      Upp_theorems.crossing_lemma_holds inst)

let test_on_figures () =
  List.iter
    (fun inst ->
      check "intervals" true (Upp_theorems.pairwise_intersections_are_intervals inst);
      check "helly" true (Upp_theorems.helly_holds inst);
      check "clique = load" true (Upp_theorems.clique_number_equals_load inst);
      check "no K23" true (Upp_theorems.no_k23 inst);
      check "crossing" true (Upp_theorems.crossing_lemma_holds inst))
    [ Figures.fig5 2; Figures.fig5 4; Figures.havet 1; Figures.havet 2 ]

(* Negative control: figure 1 (k >= 3) lives on a non-UPP DAG whose
   complete conflict graph breaks the Helly property and clique = load. *)
let test_fig1_breaks_structure () =
  let inst = Figures.fig1 4 in
  check "helly fails" false (Upp_theorems.helly_holds inst);
  check "clique exceeds load" false (Upp_theorems.clique_number_equals_load inst)

(* Negative control for K_{2,3}: a non-UPP DAG can realize it — two
   parallel routes (the 2-side) each conflicting three pairwise-disjoint
   short dipaths. *)
let test_k23_realizable_without_upp () =
  let open Wl_digraph in
  (* Chain 0-1-2-3-4-5-6 plus a bypass 0 -> 7 -> 6 is NOT what we need;
     instead: the 2-side paths both run the whole chain, via two parallel
     middle arcs.  Vertices 0..4, arcs 0-1, 1-2, 2-3, 3-4 and a parallel
     1 -> 5 -> 2 detour is UPP-violating by design. *)
  let g =
    Digraph.of_arcs 7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6) ]
  in
  let dag = Wl_dag.Dag.of_digraph_exn g in
  let p l = Dipath.make g l in
  (* 2-side: two copies of the full chain (a multiset family); 3-side:
     three disjoint single arcs of it. *)
  let inst =
    Wl_core.Instance.make dag
      [ p [ 0; 1; 2; 3; 4; 5; 6 ]; p [ 0; 1; 2; 3; 4; 5; 6 ];
        p [ 0; 1 ]; p [ 2; 3 ]; p [ 4; 5 ] ]
  in
  (* The two full-chain copies conflict, so the sides are not independent:
     still no induced K23 — which is exactly Corollary 5's point surviving
     even multiset families. *)
  check "no induced K23 even with copies" true (Upp_theorems.no_k23 inst)

let test_all_to_all_on_upp () =
  (* The concluding-section family: all-to-all on a UPP-DAG. *)
  let rng = Prng.create 13 in
  for _ = 1 to 8 do
    let dag = Generators.gnp_upp rng 10 0.3 in
    let inst = Path_gen.all_to_all_instance dag in
    check "helly all-to-all" true (Upp_theorems.helly_holds inst);
    check "clique = load all-to-all" true
      (Upp_theorems.clique_number_equals_load inst)
  done

let suite =
  [
    ( "upp-theorems",
      [
        intervals_on_upp;
        helly_on_upp;
        clique_equals_load_on_upp;
        no_k23_on_upp;
        no_k5_minus_on_upp;
        crossing_lemma_on_upp;
        Alcotest.test_case "paper figures" `Quick test_on_figures;
        Alcotest.test_case "figure 1 negative control" `Quick
          test_fig1_breaks_structure;
        Alcotest.test_case "K23 needs independent sides" `Quick
          test_k23_realizable_without_upp;
        Alcotest.test_case "all-to-all families" `Slow test_all_to_all_on_upp;
      ] );
  ]
