let ceil_div a b =
  if b <= 0 then invalid_arg "Replication.ceil_div";
  (a + b - 1) / b

let covering_coloring ~n_base ~sets ~h ~n_colors =
  let m = Array.length sets in
  if m = 0 then invalid_arg "Replication.covering_coloring: no sets";
  (* Available colors per base vertex. *)
  let available = Array.make n_base [] in
  for c = n_colors - 1 downto 0 do
    List.iter
      (fun i ->
        if i < 0 || i >= n_base then
          invalid_arg "Replication.covering_coloring: set element out of range";
        available.(i) <- c :: available.(i))
      sets.(c mod m)
  done;
  if Array.exists (fun cs -> List.length cs < h) available then None
  else begin
    let assignment = Array.make (n_base * h) (-1) in
    Array.iteri
      (fun i cs ->
        List.iteri (fun r c -> if r < h then assignment.((i * h) + r) <- c) cs)
      available;
    Some assignment
  end
