module Clique = Wl_conflict.Clique
module Coloring = Wl_conflict.Coloring
module Exact = Wl_conflict.Exact

let pi_lower = Load.pi

let clique_lower inst = Clique.clique_number (Conflict_of.build inst)

let independence_lower inst =
  let n = Instance.n_paths inst in
  if n = 0 then 0
  else
    let alpha = Clique.independence_number (Conflict_of.build inst) in
    (n + alpha - 1) / alpha

let heuristic_upper inst =
  Coloring.n_colors (Coloring.normalize (Coloring.best_heuristic (Conflict_of.build inst)))

let chromatic_exact inst = Exact.chromatic_number (Conflict_of.build inst)

let theorem6_upper ~n_internal_cycles pi =
  if n_internal_cycles < 0 then invalid_arg "Bounds.theorem6_upper";
  let rec go c w = if c = 0 then w else go (c - 1) ((4 * w + 2) / 3) in
  go n_internal_cycles pi
