lib/core/replication.ml: Array List
