(** Synthetic traffic models for the example applications and benches.

    The paper evaluates nothing empirically, so workloads are our
    substitution (documented in DESIGN.md); these models mirror the
    standard shapes used in RWA studies: uniform random pairs, hub-centric
    hotspots, and batched arrival sequences for online experiments. *)

open Wl_core

val uniform : Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> Routing.request list
(** [k] routable pairs drawn uniformly (with repetition). *)

val hotspot :
  Wl_util.Prng.t ->
  Wl_dag.Dag.t ->
  hubs:int ->
  bias:float ->
  int ->
  Routing.request list
(** [hotspot rng dag ~hubs ~bias k]: [hubs] random vertices become hubs; a
    request touches a hub (as source or destination, whichever direction is
    routable) with probability [bias], and is uniform otherwise.  Requests
    that cannot involve a hub fall back to uniform. *)

val batches :
  Wl_util.Prng.t ->
  Wl_dag.Dag.t ->
  batch_size:int ->
  n_batches:int ->
  (Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> Routing.request list) ->
  Routing.request list list
(** An arrival sequence: [n_batches] batches of [batch_size] requests drawn
    from the given model — the input shape of the online RWA example. *)
