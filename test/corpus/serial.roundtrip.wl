wl 2
dag 5
arc 0 1
arc 1 2
arc 2 3
arc 2 4
path 0 1 2 3
path 1 2 4
path 2 3
