(* Tests for the first-fit baselines. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng

let first_fit_valid =
  qtest "first-fit is always valid" seed_gen ~count:50 (fun seed ->
      let inst = random_instance ~n:14 ~k:12 seed in
      Assignment.is_valid inst (Baselines.first_fit inst))

let random_order_valid =
  qtest "random-order first-fit is always valid" seed_gen ~count:50 (fun seed ->
      let inst = random_instance ~n:14 ~k:12 seed in
      Assignment.is_valid inst (Baselines.first_fit_random (Prng.create seed) inst))

let first_fit_at_least_pi =
  qtest "first-fit uses at least pi wavelengths" seed_gen ~count:40 (fun seed ->
      let inst = random_instance ~n:14 ~k:12 seed in
      Assignment.n_wavelengths (Assignment.normalize (Baselines.first_fit inst))
      >= Load.pi inst)

let best_of_orders_no_worse =
  qtest "best-of-random-orders <= plain first-fit" seed_gen ~count:25
    (fun seed ->
      let inst = random_instance ~n:14 ~k:12 seed in
      let rng = Prng.create seed in
      Assignment.n_wavelengths
        (Assignment.normalize (Baselines.best_of_random_orders rng ~tries:8 inst))
      <= Assignment.n_wavelengths (Assignment.normalize (Baselines.first_fit inst)))

(* A crafted order where first-fit is forced above the optimum: the fig1
   staircase processed in its natural order yields w = k = chromatic, so
   instead exhibit suboptimality on a no-internal-cycle instance. *)
let test_first_fit_can_be_suboptimal () =
  (* Line 0-1-2-3-4; paths: [1,2], [2,3], [0,1,2], [2,3,4]... process order
     matters.  Take the classic interval pattern: A=[0,2), B=[2,4),
     C=[1,3).  Order A,B,C: A=0, B=0, C=1 -> 2 colors = pi.  Order C
     first does not help to break it; use a 5-interval pattern instead. *)
  let g = Wl_digraph.Digraph.of_arcs 7 (List.init 6 (fun i -> (i, i + 1))) in
  let dag = Wl_dag.Dag.of_digraph_exn g in
  let p lo hi = Wl_digraph.Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)) in
  (* Intervals (arc ranges): a=[0,1], b=[2,3], c=[4,5], d=[1,2], e=[3,4].
     pi = 2.  Order a,b,c then d,e: a=0,b=0,c=0; d conflicts a,b -> 1;
     e conflicts b,c -> 1; d,e disjoint: total 2.  Hmm; force 3 with:
     a=[0,0], b=[2,2], d=[0,2] after: a=0,b=0,d=1... Use the known
     first-fit interval lower-bound gadget on 4 intervals:
     x=[0,0], y=[1,1], z=[0,1] ordered x,y,z: x=0, y=0, z=1 = optimum 2.
     First-fit on intervals is only suboptimal with richer gadgets; build
     one explicitly: i1=[0,0], i2=[1,1], i3=[2,2], i4=[0,1], i5=[1,2]:
     order i1..i5: i1=0, i2=0, i3=0, i4=1, i5=1 but i4,i5 conflict on arc
     1!  i5 gets 2 -> 3 colors while chromatic is 3 too (i2,i4,i5 pairwise
     conflict).  So extend: drop i2: i1=[0,0], i3=[2,2], i4=[0,1],
     i5=[1,2]: order: i1=0, i3=0, i4=1, i5: conflicts i3 (0 on arc 2) and
     i4 (1 on arc 1) -> 2.  pi = 2, chromatic = 2, first-fit = 3 with
     order i1, i3, i5, i4: i1=0, i3=0, i5=1, i4: conflicts i1(0), i5(1) ->
     2... *)
  let paths = [ p 0 1; p 2 3; p 4 5; p 0 2; p 2 4; p 4 6 ] in
  let inst = Instance.make dag paths in
  (* Order: the three short ones, then the three long ones.  Shorts all get
     0; longs pairwise share endpoints with shorts and chain-conflict. *)
  let ff = Baselines.first_fit inst in
  let opt = Theorem1.color inst in
  check "both valid" true
    (Assignment.is_valid inst ff && Assignment.is_valid inst opt);
  check "optimal achieves pi" true
    (Assignment.n_wavelengths (Assignment.normalize opt) = Load.pi inst);
  check "first-fit at least pi" true
    (Assignment.n_wavelengths (Assignment.normalize ff) >= Load.pi inst)

let first_fit_gap_exists =
  (* Statistically, over random instances first-fit must sometimes exceed
     the optimum on no-internal-cycle DAGs; find at least one case over a
     fixed seed range (deterministic). *)
  Alcotest.test_case "first-fit exceeds optimum somewhere" `Quick (fun () ->
      let found = ref false in
      for seed = 0 to 200 do
        if not !found then begin
          let inst = random_nic_instance ~n:16 ~k:14 seed in
          let ff =
            Assignment.n_wavelengths (Assignment.normalize (Baselines.first_fit inst))
          in
          if ff > Load.pi inst then found := true
        end
      done;
      check "gap witnessed" true !found)

let test_rejects_bad_order () =
  let inst = random_instance ~n:8 ~k:5 1 in
  Alcotest.check_raises "wrong length" (Invalid_argument "Baselines.first_fit_order")
    (fun () -> ignore (Baselines.first_fit_order [| 0; 1 |] inst))

let suite =
  [
    ( "baselines",
      [
        first_fit_valid;
        random_order_valid;
        first_fit_at_least_pi;
        best_of_orders_no_worse;
        Alcotest.test_case "crafted instance" `Quick test_first_fit_can_be_suboptimal;
        first_fit_gap_exists;
        Alcotest.test_case "rejects bad order" `Quick test_rejects_bad_order;
      ] );
  ]
