(* Tests for the incremental engine: deterministic exercises of every warm
   path (free color, fresh color, Kempe repair, shrink, fallback), the
   classification flip, snapshot/rollback, batched submission — and the
   central equivalence property: after ANY op sequence the session reports
   exactly what a fresh solve of the materialized instance reports. *)

open Helpers
open Wl_core
open Wl_engine
module Digraph = Wl_digraph.Digraph
module Dipath = Wl_digraph.Dipath
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let audit_ok s =
  match Engine.audit s with
  | Ok () -> true
  | Error msg -> Alcotest.failf "audit: %s" msg

(* The heart of the acceptance criteria: engine state vs a fresh solve of
   the final instance — valid assignment, same wavelength count, same
   optimality class. *)
let equivalent s =
  let r = Engine.report s in
  let inst = Engine.instance s in
  let fresh = Solver.solve inst in
  Assignment.is_valid inst r.Solver.assignment
  && r.Solver.n_wavelengths = fresh.Solver.n_wavelengths
  && r.Solver.optimal = fresh.Solver.optimal
  && audit_ok s

let instance_of_arcs n arcs paths =
  let g = Digraph.of_arcs n arcs in
  let dag = Dag.of_digraph_exn g in
  Instance.make dag (List.map (fun vs -> Dipath.make g vs) paths)

(* Warm the session: the first query after [create] runs the one cold
   solve, after which a no-internal-cycle session is in warm mode. *)
let warmed ?repair_budget inst =
  let s = Engine.create ?repair_budget inst in
  ignore (Engine.report s);
  s

(* --- deterministic warm paths ---------------------------------------------- *)

let base_arcs = [ (0, 1); (1, 2); (2, 3); (4, 5) ]

let test_warm_hit () =
  let inst = instance_of_arcs 6 base_arcs [ [ 4; 5 ]; [ 4; 5 ]; [ 4; 5 ] ] in
  let s = warmed inst in
  check "warm after first solve" true (Engine.is_warm s);
  check_int "pi" 3 (Engine.pi s);
  let _ = ok_exn "add" (Engine.add_path s [ 0; 1 ]) in
  let st = Engine.stats s in
  check_int "warm hit" 1 st.Engine.warm_hits;
  check_int "one solve only" 1 st.Engine.full_solves;
  check "still warm" true (Engine.is_warm s);
  check "equivalent" true (equivalent s);
  (* the report was produced warm, without a second solve *)
  check_int "still one solve" 1 (Engine.stats s).Engine.full_solves

let test_fresh_color () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ]; [ 0; 1 ] ] in
  let s = warmed inst in
  check_int "pi" 2 (Engine.pi s);
  let _ = ok_exn "add" (Engine.add_path s [ 0; 1 ]) in
  let st = Engine.stats s in
  check_int "fresh color" 1 st.Engine.fresh_colors;
  check_int "pi grew" 3 (Engine.pi s);
  check_int "wavelengths" 3 (Engine.report s).Solver.n_wavelengths;
  check "equivalent" true (equivalent s)

(* Sculpt a state where the new path sees all palette colors on its arcs
   while the load does not grow: exactly the Kempe-repair case, resolved by
   one single-path flip. *)
let repair_session ?repair_budget () =
  let inst = instance_of_arcs 6 base_arcs [ [ 4; 5 ]; [ 4; 5 ]; [ 4; 5 ] ] in
  let s = warmed ?repair_budget inst in
  let x1 = ok_exn "x1" (Engine.add_path s [ 0; 1 ]) in
  let x2 = ok_exn "x2" (Engine.add_path s [ 0; 1 ]) in
  ignore x1;
  ignore x2;
  let y1 = ok_exn "y1" (Engine.add_path s [ 2; 3 ]) in
  let y2 = ok_exn "y2" (Engine.add_path s [ 2; 3 ]) in
  let _y3 = ok_exn "y3" (Engine.add_path s [ 2; 3 ]) in
  ok_exn "rm y1" (Engine.remove_path s y1);
  ok_exn "rm y2" (Engine.remove_path s y2);
  s

let test_kempe_repair () =
  let s = repair_session () in
  check "warm before repair" true (Engine.is_warm s);
  let before = Engine.stats s in
  let _ = ok_exn "add long" (Engine.add_path s [ 0; 1; 2; 3 ]) in
  let st = Engine.stats s in
  check_int "one repair" (before.Engine.repairs + 1) st.Engine.repairs;
  check_int "single flip" 1 (st.Engine.repair_flips - before.Engine.repair_flips);
  check_int "no fallback" 0 st.Engine.fallbacks;
  check "still warm" true (Engine.is_warm s);
  check_int "still optimal at 3" 3 (Engine.report s).Solver.n_wavelengths;
  check "equivalent" true (equivalent s)

let test_budget_exhaustion_falls_back () =
  let s = repair_session ~repair_budget:0 () in
  let _ = ok_exn "add long" (Engine.add_path s [ 0; 1; 2; 3 ]) in
  let st = Engine.stats s in
  check_int "fallback" 1 st.Engine.fallbacks;
  check "dirty now" false (Engine.is_warm s);
  (* the report transparently re-solves and is still exact *)
  check "equivalent" true (equivalent s);
  check_int "second solve" 2 (Engine.stats s).Engine.full_solves

let test_warm_remove_and_shrink () =
  (* Build colors through the engine so they are known: A,B on (0,1) wear
     0,1; X on (2,3) wears 0.  Removing A drops pi to 1 while both classes
     stay inhabited — only the greedy shrink can restore palette = pi. *)
  let g = Digraph.of_arcs 4 [ (0, 1); (2, 3) ] in
  let s = ok_exn "of_digraph" (Engine.of_digraph g) in
  ignore (Engine.report s);
  let a = ok_exn "a" (Engine.add_path s [ 0; 1 ]) in
  let _b = ok_exn "b" (Engine.add_path s [ 0; 1 ]) in
  let _x = ok_exn "x" (Engine.add_path s [ 2; 3 ]) in
  check_int "pi" 2 (Engine.pi s);
  ok_exn "rm a" (Engine.remove_path s a);
  let st = Engine.stats s in
  check_int "shrink" 1 st.Engine.shrink_recolors;
  check "still warm" true (Engine.is_warm s);
  check_int "pi down" 1 (Engine.pi s);
  check_int "wavelengths down" 1 (Engine.report s).Solver.n_wavelengths;
  check "equivalent" true (equivalent s)

let test_remove_empties_class () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ] ] in
  let s = warmed inst in
  ok_exn "rm 2" (Engine.remove_path s 2);
  check "warm" true (Engine.is_warm s);
  check_int "wavelengths" 2 (Engine.report s).Solver.n_wavelengths;
  check "equivalent" true (equivalent s);
  ok_exn "rm 1" (Engine.remove_path s 1);
  ok_exn "rm 0" (Engine.remove_path s 0);
  check_int "empty" 0 (Engine.n_live_paths s);
  check_int "zero wavelengths" 0 (Engine.report s).Solver.n_wavelengths;
  check "equivalent" true (equivalent s)

(* --- op rejection ----------------------------------------------------------- *)

let test_rejections () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ] ] in
  let s = warmed inst in
  (match Engine.add_path s [ 0; 3 ] with
  | Error (Error.Invalid_path _) -> ()
  | _ -> Alcotest.fail "bad path accepted");
  (match Engine.remove_path s 99 with
  | Error (Error.Bad_index _) -> ()
  | _ -> Alcotest.fail "bad handle accepted");
  ok_exn "rm 0" (Engine.remove_path s 0);
  (match Engine.remove_path s 0 with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "double remove accepted");
  (match Engine.add_arc s 0 0 with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "self-loop accepted");
  (match Engine.add_arc s 0 1 with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "duplicate arc accepted");
  (match Engine.add_arc s 3 0 with
  | Error (Error.Cyclic _) -> ()
  | _ -> Alcotest.fail "directed cycle accepted");
  (match Engine.add_arc s 0 42 with
  | Error (Error.Bad_index _) -> ()
  | _ -> Alcotest.fail "bad vertex accepted");
  (* rejected ops left no trace *)
  check_int "rejected count" 7 (Engine.stats s).Engine.rejected;
  check "equivalent" true (equivalent s)

(* --- add_arc and the classification flip ------------------------------------ *)

(* The fed diamond: no internal cycle until (3, 5) gives the sink of the
   diamond a successor, at which point every diamond vertex is internal. *)
let fed_diamond_arcs = [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 0) ]

let test_classification_flip_forces_resolve () =
  let inst = instance_of_arcs 6 fed_diamond_arcs [ [ 0; 1; 3 ]; [ 0; 2; 3 ] ] in
  let s = warmed inst in
  check "warm" true (Engine.is_warm s);
  check_int "no internal cycle" 0
    (Engine.classification s).Wl_dag.Classify.n_internal_cycles;
  let solves_before = (Engine.stats s).Engine.full_solves in
  let _arc = ok_exn "add arc" (Engine.add_arc s 3 5) in
  check "flip ends warm mode" false (Engine.is_warm s);
  check_int "internal cycle seen" 1
    (Engine.classification s).Wl_dag.Classify.n_internal_cycles;
  (* the next query must be a genuine re-solve *)
  check "equivalent" true (equivalent s);
  check_int "forced full solve" (solves_before + 1)
    (Engine.stats s).Engine.full_solves;
  (* and the session can keep mutating afterwards, staying exact *)
  let _ = ok_exn "add" (Engine.add_path s [ 3; 5 ]) in
  check "equivalent after more ops" true (equivalent s)

let test_add_arc_keeps_warm_when_still_nic () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  let s = warmed inst in
  let _ = ok_exn "arc" (Engine.add_arc s 0 4) in
  check "still warm" true (Engine.is_warm s);
  check "equivalent" true (equivalent s);
  (* new arc is usable by later paths *)
  let _ = ok_exn "path over new arc" (Engine.add_path s [ 0; 4; 5 ]) in
  check "equivalent 2" true (equivalent s)

(* --- snapshot / rollback ----------------------------------------------------- *)

let test_snapshot_rollback () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ]; [ 1; 2 ] ] in
  let s = warmed inst in
  let r0 = Engine.report s in
  let snap = Engine.snapshot s in
  let _ = ok_exn "add" (Engine.add_path s [ 0; 1; 2; 3 ]) in
  ok_exn "rm" (Engine.remove_path s 0);
  let _ = ok_exn "arc" (Engine.add_arc s 3 5) in
  check "changed" true (Engine.n_live_paths s = 2 && Engine.report s <> r0);
  ok_exn "rollback" (Engine.rollback s snap);
  let r1 = Engine.report s in
  check_int "paths restored" 2 (Engine.n_live_paths s);
  check "report restored" true
    (r1.Solver.n_wavelengths = r0.Solver.n_wavelengths
    && r1.Solver.assignment = r0.Solver.assignment);
  check "equivalent" true (equivalent s);
  (* snapshots are reusable *)
  let _ = ok_exn "add again" (Engine.add_path s [ 0; 1 ]) in
  ok_exn "rollback again" (Engine.rollback s snap);
  check_int "restored again" 2 (Engine.n_live_paths s)

let test_foreign_snapshot_rejected () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ] ] in
  let s1 = warmed inst and s2 = warmed inst in
  let snap = Engine.snapshot s1 in
  match Engine.rollback s2 snap with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "foreign snapshot accepted"

(* --- batched submission ------------------------------------------------------ *)

let test_submit_batch () =
  let inst = instance_of_arcs 6 base_arcs [ [ 4; 5 ] ] in
  let s = warmed inst in
  let batch =
    Engine.submit s
      [
        Engine.Add_path [ 0; 1; 2 ];
        Engine.Add_path [ 0; 99 ];
        (* rejected *)
        Engine.Remove_path 0;
        Engine.Add_arc (3, 5);
      ]
  in
  check_int "outcomes" 4 (Array.length batch.Engine.outcomes);
  (match batch.Engine.outcomes.(0) with
  | Ok (Engine.Path_added _) -> ()
  | _ -> Alcotest.fail "op 0 should add");
  (match batch.Engine.outcomes.(1) with
  | Error (Error.Invalid_path _) -> ()
  | _ -> Alcotest.fail "op 1 should be rejected");
  (match batch.Engine.outcomes.(2) with
  | Ok (Engine.Path_removed 0) -> ()
  | _ -> Alcotest.fail "op 2 should remove");
  (match batch.Engine.outcomes.(3) with
  | Ok (Engine.Arc_added _) -> ()
  | _ -> Alcotest.fail "op 3 should add an arc");
  check "batch report equivalent" true (equivalent s)

let random_ops rng g ~n_initial ~count =
  let n = Digraph.n_vertices g in
  let next = ref n_initial in
  List.init count (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 ->
        if !next = 0 then Engine.Add_arc (Prng.int rng n, Prng.int rng n)
        else Engine.Remove_path (Prng.int rng !next)
      | 2 -> Engine.Add_arc (Prng.int rng n, Prng.int rng n)
      | _ ->
        (* random walk; may die immediately (rejected op — also useful) *)
        let rec go v acc len =
          let succs = Digraph.succ g v in
          if succs = [] || len >= 5 || (len >= 1 && Prng.bernoulli rng 0.3) then
            List.rev acc
          else
            let w = Prng.choose_list rng succs in
            go w (w :: acc) (len + 1)
        in
        let v0 = Prng.int rng n in
        incr next;
        Engine.Add_path (go v0 [ v0 ] 0))

let test_submit_many_matches_sequential () =
  let mk seed =
    let inst = random_nic_instance ~n:12 ~k:6 seed in
    let s = warmed inst in
    let rng = Prng.create (seed + 1000) in
    let ops =
      random_ops rng (Instance.graph inst) ~n_initial:(Instance.n_paths inst)
        ~count:8
    in
    (s, ops)
  in
  let jobs_par = Array.init 6 (fun i -> mk (100 + i)) in
  let jobs_seq = Array.init 6 (fun i -> mk (100 + i)) in
  let par = Engine.submit_many ~max_in_flight:3 jobs_par in
  let seq = Array.map (fun (s, ops) -> Engine.submit s ops) jobs_seq in
  check_int "batches" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i bp ->
      let bs = seq.(i) in
      check "outcomes agree" true (bp.Engine.outcomes = bs.Engine.outcomes);
      check_int "wavelengths agree" bs.Engine.batch_report.Solver.n_wavelengths
        bp.Engine.batch_report.Solver.n_wavelengths;
      check "parallel session equivalent" true (equivalent (fst jobs_par.(i))))
    par

let test_duplicate_sessions_degrade () =
  let inst = instance_of_arcs 6 base_arcs [ [ 0; 1 ] ] in
  let s = warmed inst in
  let jobs =
    [| (s, [ Engine.Add_path [ 1; 2 ] ]); (s, [ Engine.Add_path [ 2; 3 ] ]) |]
  in
  let out = Engine.submit_many jobs in
  check_int "both ran" 2 (Array.length out);
  check_int "three live paths" 3 (Engine.n_live_paths s);
  check "equivalent" true (equivalent s)

(* --- the equivalence property over random op sequences ----------------------- *)

let equivalence_prop ?repair_budget seed =
  let inst = random_nic_instance ~n:14 ~k:8 seed in
  let s = Engine.create ?repair_budget inst in
  ignore (Engine.report s);
  let rng = Prng.create (seed lxor 0x5eed) in
  let ops =
    random_ops rng (Instance.graph inst) ~n_initial:(Instance.n_paths inst)
      ~count:25
  in
  List.for_all
    (fun op ->
      ignore (Engine.submit s [ op ]);
      equivalent s)
    ops

let equivalence_random =
  qtest "random op sequences match a fresh solve" seed_gen ~count:60
    (fun seed -> equivalence_prop seed)

let equivalence_no_budget =
  qtest "random op sequences match with repairs disabled" seed_gen ~count:30
    (fun seed -> equivalence_prop ~repair_budget:0 seed)

(* --- scripts ----------------------------------------------------------------- *)

let sample_ops =
  [
    Engine.Add_path [ 0; 1; 2 ];
    Engine.Remove_path 3;
    Engine.Add_arc (4, 5);
    Engine.Add_path [ 2; 3 ];
  ]

let test_script_roundtrip () =
  (match Script.of_string (Script.to_string sample_ops) with
  | Ok ops -> check "text roundtrip" true (ops = sample_ops)
  | Error e -> Alcotest.failf "text: %s" (Error.to_string e));
  (match Script.of_json (Script.to_json sample_ops) with
  | Ok ops -> check "json roundtrip" true (ops = sample_ops)
  | Error e -> Alcotest.failf "json: %s" (Error.to_string e));
  match Script.of_json (Script.to_json ~pretty:true sample_ops) with
  | Ok ops -> check "pretty json roundtrip" true (ops = sample_ops)
  | Error e -> Alcotest.failf "pretty json: %s" (Error.to_string e)

let test_script_files () =
  let tmp = Filename.temp_file "wl_ops" ".wlops" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Script.write_file tmp sample_ops;
      match Script.read_file tmp with
      | Ok ops -> check "file roundtrip" true (ops = sample_ops)
      | Error e -> Alcotest.failf "read: %s" (Error.to_string e))

let test_script_errors () =
  (match Script.of_string "wlops 9" with
  | Error (Error.Unsupported_version 9) -> ()
  | _ -> Alcotest.fail "future version accepted");
  (match Script.of_string "teleport 1 2" with
  | Error (Error.Parse _) -> ()
  | _ -> Alcotest.fail "unknown op accepted");
  match Script.of_json "{\"format\": \"wl-ops\"}" with
  | Error (Error.Parse _) -> ()
  | _ -> Alcotest.fail "missing ops accepted"

let test_script_drives_session () =
  let inst = instance_of_arcs 6 base_arcs [ [ 4; 5 ] ] in
  let s = warmed inst in
  let script = "path 0 1 2\nremove 0\narc 3 5\npath 2 3\n" in
  let ops = ok_exn "parse" (Script.of_string script) in
  let batch = Engine.submit s ops in
  check_int "all accepted" 0
    (Array.fold_left
       (fun acc r -> match r with Ok _ -> acc | Error _ -> acc + 1)
       0 batch.Engine.outcomes);
  check "equivalent" true (equivalent s)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "warm hit" `Quick test_warm_hit;
        Alcotest.test_case "fresh color" `Quick test_fresh_color;
        Alcotest.test_case "kempe repair" `Quick test_kempe_repair;
        Alcotest.test_case "budget fallback" `Quick test_budget_exhaustion_falls_back;
        Alcotest.test_case "warm remove and shrink" `Quick test_warm_remove_and_shrink;
        Alcotest.test_case "remove empties class" `Quick test_remove_empties_class;
        Alcotest.test_case "rejections" `Quick test_rejections;
        Alcotest.test_case "classification flip" `Quick
          test_classification_flip_forces_resolve;
        Alcotest.test_case "add_arc keeps warm" `Quick
          test_add_arc_keeps_warm_when_still_nic;
        Alcotest.test_case "snapshot rollback" `Quick test_snapshot_rollback;
        Alcotest.test_case "foreign snapshot" `Quick test_foreign_snapshot_rejected;
        Alcotest.test_case "submit batch" `Quick test_submit_batch;
        Alcotest.test_case "submit_many parallel" `Quick
          test_submit_many_matches_sequential;
        Alcotest.test_case "submit_many duplicates" `Quick
          test_duplicate_sessions_degrade;
        equivalence_random;
        equivalence_no_budget;
        Alcotest.test_case "script roundtrip" `Quick test_script_roundtrip;
        Alcotest.test_case "script files" `Quick test_script_files;
        Alcotest.test_case "script errors" `Quick test_script_errors;
        Alcotest.test_case "script drives session" `Quick test_script_drives_session;
      ] );
  ]
