(** Nestable timed spans with pluggable sinks.

    A span wraps one phase of an algorithm ([thm1.color],
    [thm6.subcolor], [parallel.worker], ...).  Spans nest per domain: a
    domain-local stack tracks depth, so traces from parallel sweeps come
    out as one track per domain, exactly how chrome://tracing / Perfetto
    render them.

    Tracing is off by default and costs one atomic load and a branch per
    {!with_span} call while off (the {e null sink}).  Installing a
    {!memory} sink turns it on; collected events can then be rendered as

    {ul
    {- Chrome trace-event JSON ({!to_chrome}) — load in Perfetto or
       chrome://tracing;}
    {- JSONL ({!to_jsonl}) — one event object per line, for ad-hoc
       scripting;}
    {- a human summary table ({!pp_summary}) or an indented span tree
       ({!pp_tree}) for terminal diagnosis.}} *)

type value = Int of int | Float of float | Str of string

type event = {
  name : string;
  tid : int;  (** domain id that emitted the span *)
  ts_us : float;  (** start, µs since trace start *)
  dur_us : float;  (** duration; [0.] for instants *)
  depth : int;  (** nesting depth within its domain at emit time *)
  instant : bool;
  args : (string * value) list;
}

type sink

val null : sink
val memory : unit -> sink
(** An in-process collector; safe to write from any domain. *)

val discard : sink
(** Spans run — probes fire, self-time is tracked — but every event is
    dropped.  Use when only the side effects of instrumentation are
    wanted (e.g. {!Prof} GC aggregates during a bench pass) without an
    unboundedly growing event list. *)

val set_sink : sink -> unit
(** Install a sink; tracing is enabled iff the sink is not {!null}.
    Resets the trace clock origin.  Install before spawning workers. *)

val clear : unit -> unit
(** Back to the null sink (tracing off). *)

val enabled : unit -> bool

val with_span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The span is emitted even when the
    thunk raises.  When tracing is off this is just [f ()] — callers that
    want to avoid even building [args] can guard on {!enabled}. *)

val instant : ?args:(string * value) list -> string -> unit
(** A zero-duration marker event. *)

val span_between :
  ?args:(string * value) list -> string -> t0_us:float -> t1_us:float -> unit
(** Emit a complete span from timestamps measured elsewhere (raw
    {!Clock.now_us} readings; the trace origin is subtracted here).
    Used for phases whose endpoints straddle threads — e.g. the shard
    queue wait, stamped at enqueue and emitted at dequeue.  Negative
    intervals clamp to zero duration.

    Like {!with_span}, events carry a ["trace"] arg with the ambient
    {!Ctx} trace id (hex) whenever one is set, tying in-process spans to
    the distributed trace they serve. *)

(** {1 Span probes}

    The extension point {!Prof} uses to attach GC/allocation deltas to
    every span without this module knowing about [Gc]. *)

type probe = {
  on_start : unit -> unit;
      (** runs immediately before the span body, after the span's own
          bookkeeping has allocated — a GC reading taken here sees none
          of the harness *)
  on_stop : unit -> unit;
      (** runs first as the span closes, before any closing bookkeeping
          allocates: capture end readings here and nothing else *)
  on_emit : name:string -> dur_us:float -> self_us:float -> (string * value) list;
      (** runs after {!on_stop} with the span's figures; [self_us] is
          the duration minus direct children on the same domain.  May
          allocate freely (attributed to the enclosing span); returned
          args are appended to the emitted event. *)
}

val set_probe : probe option -> unit
(** Install (or remove) the global probe.  Like {!set_sink}, install
    before spawning worker domains.  Probes only fire while a non-null
    sink is installed. *)

val events : sink -> event list
(** Events collected by a {!memory} sink so far, in start-time order.
    Empty for {!null}. *)

val to_chrome : event list -> string
(** Chrome trace-event JSON: an object with a ["traceEvents"] array of
    complete (["ph":"X"]) and instant (["ph":"i"]) events. *)

val to_jsonl : event list -> string

val pp_tree : Format.formatter -> event list -> unit
(** Indented per-domain span tree with durations — what
    [stress --replay] prints. *)

val pp_summary : Format.formatter -> event list -> unit
(** Per-name aggregation: calls, total/min/max µs. *)

val validate_chrome : string -> (int, string) result
(** Parse a string as chrome trace-event JSON and check the schema that
    Perfetto requires: top-level object, ["traceEvents"] array, every
    event an object with string ["name"]/["ph"] and numeric ["ts"], and
    ["X"] events carrying a non-negative ["dur"].  Returns the event
    count.  Used by tests and by [wl trace-check]. *)
