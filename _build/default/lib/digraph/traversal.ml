module Bitset = Wl_util.Bitset
module Union_find = Wl_util.Union_find

let bfs_order g src =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    out := v :: !out;
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  List.rev !out

let bfs_dist g src =
  let n = Digraph.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  dist

let bfs_parent_path g src dst =
  let n = Digraph.n_vertices g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          parent.(w) <- v;
          if w = dst then found := true;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  if not !found then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

let dfs_postorder g =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let out = ref [] in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (Digraph.succ g v);
      out := v :: !out
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  List.rev !out

let topological_order g =
  let n = Digraph.n_vertices g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let out = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    out := v :: !out;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Digraph.succ g v)
  done;
  if !count = n then Some (List.rev !out) else None

let is_acyclic g = topological_order g <> None

let find_directed_cycle g =
  let n = Digraph.n_vertices g in
  (* 0 = white, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let rec visit v =
    state.(v) <- 1;
    List.iter
      (fun w ->
        if !cycle = None then
          if state.(w) = 0 then begin
            parent.(w) <- v;
            visit w
          end
          else if state.(w) = 1 then begin
            (* Back edge v -> w closes a cycle w .. v. *)
            let rec build u acc = if u = w then u :: acc else build parent.(u) (u :: acc) in
            cycle := Some (build v [])
          end)
      (Digraph.succ g v);
    state.(v) <- 2
  in
  let v = ref 0 in
  while !cycle = None && !v < n do
    if state.(!v) = 0 then visit !v;
    incr v
  done;
  !cycle

let reachable_from g src =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (Digraph.succ g v)
    end
  in
  visit src;
  seen

let reaching_to g dst =
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (Digraph.pred g v)
    end
  in
  visit dst;
  seen

let reachability_matrix g =
  let n = Digraph.n_vertices g in
  match topological_order g with
  | Some order ->
    let reach = Array.init n (fun _ -> Bitset.create n) in
    List.iter
      (fun v ->
        Bitset.add reach.(v) v;
        List.iter (fun w -> Bitset.union_into reach.(v) reach.(w)) (Digraph.succ g v))
      (List.rev order);
    reach
  | None ->
    Array.init n (fun v ->
        let seen = reachable_from g v in
        let b = Bitset.create n in
        Array.iteri (fun i r -> if r then Bitset.add b i) seen;
        b)

let undirected_components g =
  let n = Digraph.n_vertices g in
  let uf = Union_find.create n in
  Digraph.iter_arcs (fun _ u v -> ignore (Union_find.union uf u v)) g;
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let repr_comp = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let r = Union_find.find uf v in
    let c =
      match Hashtbl.find_opt repr_comp r with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.add repr_comp r c;
        c
    in
    comp.(v) <- c
  done;
  (comp, !next)

let undirected_cycle ?(keep_arc = fun _ -> true) g =
  let n = Digraph.n_vertices g in
  let uf = Union_find.create n in
  (* Forest adjacency built from accepted (cycle-free) arcs:
     per vertex, list of (neighbor, arc id, forward?). *)
  let forest = Array.make n [] in
  let find_tree_path u v =
    (* BFS in the partial forest from u to v. *)
    let parent = Array.make n None in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(u) <- true;
    Queue.add u queue;
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun (y, a, fwd) ->
          if not seen.(y) then begin
            seen.(y) <- true;
            parent.(y) <- Some (x, a, fwd);
            Queue.add y queue
          end)
        forest.(x)
    done;
    let rec build y acc =
      if y = u then acc
      else
        match parent.(y) with
        | None -> invalid_arg "undirected_cycle: internal error"
        | Some (x, a, fwd) -> build x ((a, fwd) :: acc)
    in
    build v []
  in
  let result = ref None in
  let arcs = Digraph.arcs g in
  let rec scan a = function
    | [] -> ()
    | (u, v) :: rest ->
      if !result <> None then ()
      else if not (keep_arc a) then scan (a + 1) rest
      else if Union_find.union uf u v then begin
        (* Tree edge: record both directions in the forest. *)
        forest.(u) <- (v, a, true) :: forest.(u);
        forest.(v) <- (u, a, false) :: forest.(v);
        scan (a + 1) rest
      end
      else begin
        (* Arc u->v closes a cycle: arc forward, then tree path v..u. *)
        let back = find_tree_path v u in
        result := Some ((a, true) :: back)
      end
  in
  scan 0 arcs;
  !result
