(** Deterministic pseudo-random number generator (SplitMix64).

    All randomized code in this repository draws from this generator so that
    every test, example and benchmark is reproducible from a seed.  The
    implementation is the standard SplitMix64 mixer (Steele, Lea, Flood 2014),
    which is statistically solid for simulation workloads and trivially
    splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (for practical purposes) independent of the remainder of [t]'s. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in increasing order. Requires [0 <= k <= n]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [\[0, n)]. *)
