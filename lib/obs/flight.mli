(** Per-session flight recorder: a fixed-size ring of packed op records.

    Every engine op — accepted or rejected — leaves one record in the
    session's ring: op kind, outcome class (warm hit / fresh color /
    repair / fallback / ...), arc count, duration, palette and [pi] at
    completion.  Recording after {!create} is allocation-free (plain int
    stores into a pre-sized array), so it stays inside the engine's
    zero-minor-alloc warm paths; the ring keeps the last [capacity] ops
    and overwrites silently.

    Dumps render the recorded tail as JSONL (one op per line, replayable
    via {!of_jsonl}) and as a Chrome/Perfetto trace in exactly the shape
    {!Trace} emits, so [Trace.validate_chrome] and [wl trace-check]
    accept flight dumps unchanged.  The engine calls {!trigger} when an
    audit fails or an op errors; an installed {!set_dump_handler} (e.g.
    [wl session --flight-dump]) then persists both renderings.  The
    per-recorder latch means a cascade of failures dumps once, not once
    per op — {!rearm} resets it. *)

type t

type kind = Add_path | Remove_path | Add_arc | Full_solve | Audit

type outcome =
  | Warm_hit  (** reused a free wavelength on the warm path *)
  | Fresh_color  (** opened wavelength [palette + 1] (load grew) *)
  | Repair  (** Kempe repair freed a wavelength *)
  | Fallback  (** warm path gave up; session went dirty *)
  | Dirty  (** op applied on an already-dirty session *)
  | Warm_remove  (** removal kept the palette *)
  | Shrink  (** removal retired the top wavelength *)
  | Ok  (** op with no warmth classification (add_arc, audit pass) *)
  | Rejected  (** op refused (validation, bad index, cycle, ...) *)
  | Failed  (** audit violation *)

val create : ?capacity:int -> ?tid:int -> unit -> t
(** [capacity] (default 1024) is rounded up to a power of two; [tid]
    labels Chrome-trace rows (use the session id).  Timestamps are
    recorded relative to the first op. *)

val set_label : t -> string -> unit
(** Attach a human label (the owning tenant) rendered as a ["tenant"]
    arg on dumped events and embedded in drain-dump filenames.  Must be
    filename- and JSON-safe; tenant names ([Proto.tenant_ok]) are. *)

val label : t -> string
(** The attached label, [""] until {!set_label}. *)

val record :
  t ->
  kind ->
  outcome ->
  t_ns:int ->
  dur_ns:int ->
  arcs:int ->
  palette:int ->
  pi:int ->
  trace:int ->
  unit
(** Append one op record.  Allocation-free; [t_ns] is an absolute
    monotonic stamp (e.g. {!Clock.now_ns}), [dur_ns] clamps to [>= 0].
    [trace] is the distributed trace id ({!Ctx}) driving the op, [0]
    when untraced — a required (not optional) argument because a
    non-[None] optional would box on the zero-alloc path. *)

val total : t -> int
(** Ops recorded over the recorder's lifetime (may exceed capacity). *)

val capacity : t -> int

type entry = {
  seq : int;  (** 0-based op sequence number *)
  t_ns : int;  (** start, relative to the first recorded op *)
  dur_ns : int;
  kind : kind;
  outcome : outcome;
  arcs : int;
  palette : int;
  pi : int;
  trace : int;  (** distributed trace id; [0] = untraced *)
}

val entries : ?last:int -> t -> entry list
(** Oldest-first view of the retained tail (at most [last] ops). *)

val to_jsonl : ?last:int -> t -> string
(** One JSON object per line:
    [{"seq":..,"t_ns":..,"dur_ns":..,"op":"add_path","outcome":"warm_hit",
      "arcs":..,"palette":..,"pi":..}], plus a hex ["trace"] field on
    traced ops (untraced lines are byte-identical to the pre-trace
    format). *)

val of_jsonl : string -> (entry list, string) result
(** Parse a {!to_jsonl} dump back (replay). *)

val to_chrome : ?last:int -> t -> string
(** A complete Chrome trace document ("X" events, cat ["wl"], [tid] =
    session id, outcome/arcs/palette/pi — plus trace/tenant when set —
    in [args]) — accepted by [Trace.validate_chrome]. *)

val merged_chrome : ?last:int -> t list -> string
(** One Chrome document over several rings (the TraceDump RPC payload):
    each ring keeps its own [tid] track and carries its {!label} as a
    ["tenant"] arg, with per-ring timestamps rebased onto the earliest
    ring origin so tracks share one time axis. *)

val string_of_kind : kind -> string
val string_of_outcome : outcome -> string

(** {2 Automatic dumps} *)

val set_dump_handler : (reason:string -> t -> unit) option -> unit
(** Install (or clear) the process-wide dump sink.  The engine calls
    {!trigger} on audit failure or op error; with no handler installed a
    trigger only sets the latch. *)

val trigger : reason:string -> t -> unit
(** Fire the dump handler for this recorder, at most once until
    {!rearm}.  Cheap (one load) when already latched or no handler. *)

val rearm : t -> unit
val dumped : t -> bool
(** Has {!trigger} fired (handler or not) since creation/{!rearm}? *)
