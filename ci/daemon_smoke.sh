#!/bin/sh
# Daemon smoke: launch wld on a unix socket, drive session churn through
# the result-typed client, SIGTERM, and assert a clean graceful drain —
# exit 0, scrapeable OpenMetrics expositions on both sides, a validating
# flight trace and a non-empty per-tenant health listing left behind.
set -eu

WL=$1
STRESS=$2
SOCK=./wld_smoke.sock

"$WL" wld "unix:$SOCK" --shards 2 --metrics-out wld_smoke_metrics.txt \
  --health-dump wld_smoke_health.txt --flight-dump wld_smoke_flight &
WLD_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ $i -gt 100 ]; then
    echo "daemon never bound $SOCK" >&2
    kill "$WLD_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

"$STRESS" --daemon "unix:$SOCK" --sessions 64 --client-threads 4 --ops 8 \
  --metrics-out stress_daemon_metrics.txt

kill -TERM "$WLD_PID"
wait "$WLD_PID"

"$WL" metrics-check wld_smoke_metrics.txt
"$WL" metrics-check stress_daemon_metrics.txt
"$WL" trace-check wld_smoke_flight.trace.json
test -s wld_smoke_health.txt
