(* A watermark arena for reusable int scratch buffers.

   Hot solver paths (Theorem 1 sweep, engine Kempe repair, DSATUR) need
   a fistful of int arrays per call.  Allocating them per call is what
   keeps those spans GC-noisy, so instead each session owns an arena:
   buffers are acquired in a fixed order after every [reset], and the
   arena hands back the *same* physical arrays round after round,
   growing each slot on demand (grow-only, amortized — a steady-state
   round performs no allocation at all).

   Ownership rules (see DESIGN.md "Allocation discipline"):
   - a buffer is valid until the next [reset]; never stash it;
   - acquisition order must be deterministic per round, so slot k always
     maps to the same logical buffer (callers bind all buffers up front);
   - contents are NOT cleared on reuse — callers either overwrite fully
     or use generation stamps to invalidate stale entries;
   - an arena belongs to one domain at a time (no internal locking).

   Buffers are requested with a *capacity*, not a length: [ints a n]
   returns an array of length >= n.  Callers track their own logical
   lengths, which is what the stamp/watermark discipline needs anyway. *)

type t = {
  mutable slots : int array array;  (* slot k -> its reusable buffer *)
  mutable used : int;  (* watermark: slots handed out since reset *)
  mutable grown : int;  (* lifetime count of grow events, for tests *)
}

let create () = { slots = Array.make 8 [||]; used = 0; grown = 0 }

(* Growth events are the arena's only steady-state health signal — a
   nonzero rate after warmup means some caller's capacity demand is still
   climbing.  Exposed process-wide for the OpenMetrics scrape. *)
let c_grow = Wl_obs.Metrics.counter "arena.grow_count"

let reset a = a.used <- 0

(* Next power of two >= n, so repeated +1 growth does not reallocate
   every round. *)
let round_up n =
  let c = ref 8 in
  while !c < n do
    c := !c * 2
  done;
  !c

let ints a n =
  let k = a.used in
  if k = Array.length a.slots then begin
    let bigger = Array.make (2 * k) [||] in
    Array.blit a.slots 0 bigger 0 k;
    a.slots <- bigger
  end;
  let buf = a.slots.(k) in
  let buf =
    if Array.length buf >= n then buf
    else begin
      let fresh = Array.make (round_up n) 0 in
      a.slots.(k) <- fresh;
      a.grown <- a.grown + 1;
      Wl_obs.Metrics.incr c_grow;
      fresh
    end
  in
  a.used <- k + 1;
  buf

let ints_zeroed a n =
  let buf = ints a n in
  Array.fill buf 0 (Array.length buf) 0;
  buf

let mark a = a.used

let release a m =
  if m < 0 || m > a.used then invalid_arg "Arena.release: bad mark";
  a.used <- m

let slots_used a = a.used
let grow_count a = a.grown
