lib/core/certificate.ml: Array Assignment Bounds Digraph Dipath Instance List Printf Solver String Theorem6 Wl_dag Wl_digraph
