(* Flight recorder: the black box an engine session carries.

   One op = 8 ints at a stride in a flat ring:
     [rel_t_ns; dur_ns; kind; outcome; arcs; palette; pi; trace]
   Recording is plain unsafe stores plus one counter bump — no boxing,
   no branches beyond the clamp — so it rides inside the engine's
   zero-minor-alloc warm add/remove paths.  Rendering (JSONL, Chrome
   trace) walks the retained tail and is cold by construction: it only
   runs on explicit dumps or when a trigger fires.

   Timestamps are stored relative to the first recorded op, which keeps
   Chrome-trace [ts] values small and makes golden fixtures
   deterministic (feed fixed t_ns values from 0). *)

module Jsonx = Wl_json.Jsonx

type kind = Add_path | Remove_path | Add_arc | Full_solve | Audit

type outcome =
  | Warm_hit
  | Fresh_color
  | Repair
  | Fallback
  | Dirty
  | Warm_remove
  | Shrink
  | Ok
  | Rejected
  | Failed

let stride = 8

type t = {
  cap : int;  (* power of two *)
  tid : int;
  data : int array;  (* cap * stride *)
  mutable n : int;  (* lifetime op count *)
  mutable origin : int;  (* t_ns of the first op; -1 until then *)
  mutable latched : bool;
  mutable label : string;  (* e.g. owning tenant; "" until set *)
}

let create ?(capacity = 1024) ?(tid = 0) () =
  let cap =
    let c = ref 16 in
    while !c < capacity && !c < 1 lsl 20 do
      c := !c * 2
    done;
    !c
  in
  {
    cap;
    tid;
    data = Array.make (cap * stride) 0 (* alloc-ok *);
    n = 0;
    origin = -1;
    latched = false;
    label = "";
  }

let set_label t s = t.label <- s
let label t = t.label

let kind_code = function
  | Add_path -> 0
  | Remove_path -> 1
  | Add_arc -> 2
  | Full_solve -> 3
  | Audit -> 4

let kind_of_code = function
  | 0 -> Add_path
  | 1 -> Remove_path
  | 2 -> Add_arc
  | 3 -> Full_solve
  | _ -> Audit

let outcome_code = function
  | Warm_hit -> 0
  | Fresh_color -> 1
  | Repair -> 2
  | Fallback -> 3
  | Dirty -> 4
  | Warm_remove -> 5
  | Shrink -> 6
  | Ok -> 7
  | Rejected -> 8
  | Failed -> 9

let outcome_of_code = function
  | 0 -> Warm_hit
  | 1 -> Fresh_color
  | 2 -> Repair
  | 3 -> Fallback
  | 4 -> Dirty
  | 5 -> Warm_remove
  | 6 -> Shrink
  | 7 -> Ok
  | 8 -> Rejected
  | _ -> Failed

let string_of_kind = function
  | Add_path -> "add_path"
  | Remove_path -> "remove_path"
  | Add_arc -> "add_arc"
  | Full_solve -> "full_solve"
  | Audit -> "audit"

let kind_of_string = function
  | "add_path" -> Some Add_path
  | "remove_path" -> Some Remove_path
  | "add_arc" -> Some Add_arc
  | "full_solve" -> Some Full_solve
  | "audit" -> Some Audit
  | _ -> None

let string_of_outcome = function
  | Warm_hit -> "warm_hit"
  | Fresh_color -> "fresh_color"
  | Repair -> "repair"
  | Fallback -> "fallback"
  | Dirty -> "dirty"
  | Warm_remove -> "warm_remove"
  | Shrink -> "shrink"
  | Ok -> "ok"
  | Rejected -> "rejected"
  | Failed -> "failed"

let outcome_of_string = function
  | "warm_hit" -> Some Warm_hit
  | "fresh_color" -> Some Fresh_color
  | "repair" -> Some Repair
  | "fallback" -> Some Fallback
  | "dirty" -> Some Dirty
  | "warm_remove" -> Some Warm_remove
  | "shrink" -> Some Shrink
  | "ok" -> Some Ok
  | "rejected" -> Some Rejected
  | "failed" -> Some Failed
  | _ -> None

let record t kind outcome ~t_ns ~dur_ns ~arcs ~palette ~pi ~trace =
  if t.origin < 0 then t.origin <- t_ns;
  let base = t.n land (t.cap - 1) * stride in
  let d = t.data in
  Array.unsafe_set d base (t_ns - t.origin);
  Array.unsafe_set d (base + 1) (if dur_ns < 0 then 0 else dur_ns);
  Array.unsafe_set d (base + 2) (kind_code kind);
  Array.unsafe_set d (base + 3) (outcome_code outcome);
  Array.unsafe_set d (base + 4) arcs;
  Array.unsafe_set d (base + 5) palette;
  Array.unsafe_set d (base + 6) pi;
  Array.unsafe_set d (base + 7) trace;
  t.n <- t.n + 1

let total t = t.n
let capacity t = t.cap

type entry = {
  seq : int;
  t_ns : int;
  dur_ns : int;
  kind : kind;
  outcome : outcome;
  arcs : int;
  palette : int;
  pi : int;
  trace : int;
}

(* Oldest retained op, and how many the ring still holds. *)
let tail_bounds ?last t =
  let held = if t.n < t.cap then t.n else t.cap in
  let held = match last with Some l when l < held -> l | _ -> held in
  (t.n - held, held)

let entry_at t seq =
  let base = seq land (t.cap - 1) * stride in
  let d = t.data in
  {
    seq;
    t_ns = d.(base);
    dur_ns = d.(base + 1);
    kind = kind_of_code d.(base + 2);
    outcome = outcome_of_code d.(base + 3);
    arcs = d.(base + 4);
    palette = d.(base + 5);
    pi = d.(base + 6);
    trace = d.(base + 7);
  }

let entries ?last t =
  let first, held = tail_bounds ?last t in
  List.init held (fun i -> entry_at t (first + i))

let to_jsonl ?last t =
  let buf = Buffer.create 4096 (* alloc-ok: cold dump rendering *) in
  List.iter
    (fun e ->
      Printf.bprintf buf
        "{\"seq\": %d, \"t_ns\": %d, \"dur_ns\": %d, \"op\": \"%s\", \
         \"outcome\": \"%s\", \"arcs\": %d, \"palette\": %d, \"pi\": %d"
        e.seq e.t_ns e.dur_ns (string_of_kind e.kind)
        (string_of_outcome e.outcome)
        e.arcs e.palette e.pi;
      (* Untraced ops render exactly as before the trace field existed,
         so pre-existing goldens and replay files stay valid. *)
      if e.trace <> 0 then Printf.bprintf buf ", \"trace\": \"%x\"" e.trace;
      Buffer.add_string buf "}\n")
    (entries ?last t);
  Buffer.contents buf

let of_jsonl s =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  let parse_line i line =
    let fail msg = Error (Printf.sprintf "line %d: %s" (i + 1) msg) in
    match Jsonx.parse line with
    | Error e -> fail e
    | Ok j -> (
      let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
      let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
      match
        (int "seq", int "t_ns", int "dur_ns", str "op", str "outcome",
         int "arcs", int "palette", int "pi")
      with
      | ( Some seq, Some t_ns, Some dur_ns, Some op, Some oc, Some arcs,
          Some palette, Some pi ) -> (
        match (kind_of_string op, outcome_of_string oc) with
        | Some kind, Some outcome -> (
          match str "trace" with
          | None ->
            Stdlib.Ok
              { seq; t_ns; dur_ns; kind; outcome; arcs; palette; pi; trace = 0 }
          | Some h -> (
            match int_of_string_opt ("0x" ^ h) with
            | Some trace when trace > 0 ->
              Stdlib.Ok
                { seq; t_ns; dur_ns; kind; outcome; arcs; palette; pi; trace }
            | _ -> fail ("bad trace id " ^ h)))
        | None, _ -> fail ("unknown op " ^ op)
        | _, None -> fail ("unknown outcome " ^ oc))
      | _ -> fail "missing field")
  in
  let rec go i acc = function
    | [] -> Stdlib.Ok (List.rev acc)
    | l :: rest -> (
      match parse_line i l with
      | Stdlib.Ok e -> go (i + 1) (e :: acc) rest
      | Error e -> Error e)
  in
  go 0 [] lines

(* Chrome trace in exactly the event shape of {!Trace.add_chrome_event}
   ("X" phase, cat "wl", pid 1), so one validator serves both.  Tenant
   labels come from [Proto.tenant_ok]-validated names ([A-Za-z0-9_.-]),
   which need no JSON escaping. *)
let add_event buf ?(tenant = "") ~tid ~offset_ns e =
  Printf.bprintf buf
    "{\"name\": \"%s\", \"cat\": \"wl\", \"ph\": \"X\", \"pid\": 1, \
     \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"seq\": %d, \
     \"outcome\": \"%s\", \"arcs\": %d, \"palette\": %d, \"pi\": %d"
    (string_of_kind e.kind) tid
    (float_of_int (e.t_ns + offset_ns) /. 1e3)
    (float_of_int e.dur_ns /. 1e3)
    e.seq
    (string_of_outcome e.outcome)
    e.arcs e.palette e.pi;
  if e.trace <> 0 then Printf.bprintf buf ", \"trace\": \"%x\"" e.trace;
  if tenant <> "" then Printf.bprintf buf ", \"tenant\": \"%s\"" tenant;
  Buffer.add_string buf "}}"

let to_chrome ?last t =
  let buf = Buffer.create 4096 (* alloc-ok: cold dump rendering *) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf ~tenant:t.label ~tid:t.tid ~offset_ns:0 e)
    (entries ?last t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* One Chrome document over several rings — the TraceDump RPC's payload.
   Each ring keeps its own track ([tid] = session id) and its label as a
   ["tenant"] arg; per-ring relative stamps are rebased onto the
   earliest origin so tracks align on a common axis. *)
let merged_chrome ?last rings =
  let buf = Buffer.create 4096 (* alloc-ok: cold dump rendering *) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  let base =
    List.fold_left
      (fun acc t -> if t.origin >= 0 && t.origin < acc then t.origin else acc)
      max_int rings
  in
  let first = ref true in
  List.iter
    (fun t ->
      if t.origin >= 0 then
        List.iter
          (fun e ->
            if !first then first := false else Buffer.add_string buf ",\n";
            add_event buf ~tenant:t.label ~tid:t.tid ~offset_ns:(t.origin - base) e)
          (entries ?last t))
    rings;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* --- automatic dumps -------------------------------------------------------- *)

let handler : (reason:string -> t -> unit) option ref = ref None
let set_dump_handler h = handler := h

let trigger ~reason t =
  if not t.latched then begin
    t.latched <- true;
    match !handler with None -> () | Some f -> f ~reason t
  end

let rearm t = t.latched <- false
let dumped t = t.latched
