lib/core/serial.ml: Buffer Digraph Dipath Fun Instance List Printf String Wl_digraph
