(* Tests for the dispatching solver. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let test_dispatch_theorem1 () =
  let inst = random_nic_instance ~n:20 ~k:12 99 in
  let r = Solver.solve inst in
  check "method" true (r.Solver.method_used = Solver.Theorem_1);
  check "optimal" true r.Solver.optimal;
  check_int "w = pi" r.Solver.pi r.Solver.n_wavelengths;
  check "valid" true (Assignment.is_valid inst r.Solver.assignment)

let test_dispatch_theorem6 () =
  (* Large enough family that the exact solver is skipped. *)
  let inst = random_upp_one_cycle_instance ~k:40 ~distinct:true 123 in
  let r = Solver.solve ~exact_limit:4 inst in
  check "method" true (r.Solver.method_used = Solver.Theorem_6);
  check "within bound" true
    (r.Solver.n_wavelengths <= Theorem6.upper_bound r.Solver.pi);
  check "valid" true (Assignment.is_valid inst r.Solver.assignment)

let test_dispatch_exact () =
  let inst = Figures.fig1 4 in
  let r = Solver.solve inst in
  check "method" true (r.Solver.method_used = Solver.Exact_coloring);
  check_int "w = k" 4 r.Solver.n_wavelengths;
  check "optimal" true r.Solver.optimal

let test_dispatch_heuristic () =
  let rng = Prng.create 5 in
  let dag = Generators.gnp_dag rng 30 0.2 in
  (* Only meaningful when the DAG has internal cycles and is big. *)
  let inst = Path_gen.random_instance rng dag 40 in
  let r = Solver.solve ~exact_limit:4 inst in
  check "valid" true (Assignment.is_valid inst r.Solver.assignment);
  check "bounds sound" true (r.Solver.lower_bound <= r.Solver.n_wavelengths)

let test_fig3_report () =
  let r = Solver.solve (Figures.fig3 ()) in
  check_int "w = 3" 3 r.Solver.n_wavelengths;
  check_int "pi = 2" 2 r.Solver.pi;
  check "optimal" true r.Solver.optimal;
  check_int "classified one cycle" 1
    r.Solver.classification.Wl_dag.Classify.n_internal_cycles

let solver_always_valid_and_sound =
  qtest "solver output valid; lower <= w <= heuristic-upper" seed_gen ~count:60
    (fun seed ->
      let rng = Prng.create seed in
      let dag =
        match seed mod 3 with
        | 0 -> Generators.gnp_dag rng 14 0.25
        | 1 -> Generators.gnp_no_internal_cycle rng 14 0.25
        | _ -> Generators.upp_one_internal_cycle rng ()
      in
      let inst = Path_gen.random_instance rng dag 10 in
      let r = Solver.solve inst in
      Assignment.is_valid inst r.Solver.assignment
      && r.Solver.lower_bound <= r.Solver.n_wavelengths
      && r.Solver.pi <= r.Solver.n_wavelengths
      && (r.Solver.optimal = (r.Solver.n_wavelengths = r.Solver.lower_bound)))

let solver_matches_exact_when_small =
  qtest "solver is optimal on small instances" seed_gen ~count:30 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 12 0.3 in
      let inst = Path_gen.random_instance rng dag 8 in
      let r = Solver.solve inst in
      r.Solver.n_wavelengths = Bounds.chromatic_exact inst)

let test_method_names () =
  check "names" true
    (List.map Solver.method_name
       [ Solver.Theorem_1; Solver.Theorem_6; Solver.Exact_coloring; Solver.Heuristic ]
    = [ "theorem-1"; "theorem-6"; "exact-coloring"; "heuristic" ])

let suite =
  [
    ( "solver",
      [
        Alcotest.test_case "dispatches to theorem 1" `Quick test_dispatch_theorem1;
        Alcotest.test_case "dispatches to theorem 6" `Quick test_dispatch_theorem6;
        Alcotest.test_case "dispatches to exact" `Quick test_dispatch_exact;
        Alcotest.test_case "heuristic fallback" `Quick test_dispatch_heuristic;
        Alcotest.test_case "fig3 report" `Quick test_fig3_report;
        solver_always_valid_and_sound;
        solver_matches_exact_when_small;
        Alcotest.test_case "method names" `Quick test_method_names;
      ] );
  ]
