(** Exact graph coloring (chromatic number).

    Branch-and-bound: a maximum(ish) clique seeds the palette and gives the
    lower bound, DSATUR gives the upper bound, and a DSATUR-ordered
    backtracking search closes the gap.  Practical up to a few hundred
    vertices for the structured conflict graphs this repository produces. *)

val k_colorable : Ugraph.t -> int -> Coloring.t option
(** A proper coloring with at most [k] colors, or [None] if impossible. *)

val chromatic_number : Ugraph.t -> int

val optimal_coloring : Ugraph.t -> Coloring.t
(** A coloring with [chromatic_number g] colors. *)
