open Wl_digraph
module Dag = Wl_dag.Dag
module Flat = Wl_util.Flat

(* The arc index is CSR-shaped: [ids.(off.(a) .. off.(a+1) - 1)] are the
   family indices whose dipath uses arc [a], ascending.  Two flat
   Bigarray-backed int arrays instead of an [int list array] keep every
   hot loop (load profiles, conflict-pair emission, Theorem 1 insertion)
   allocation-free and cache friendly — and keep the index itself off
   the OCaml heap, so big instances do not inflate GC scan times. *)
type t = {
  dag : Dag.t;
  paths : Dipath.t array;
  off : Flat.t; (* length n_arcs + 1 *)
  ids : Flat.t; (* length = total arc count over the family *)
}

let build_index g paths =
  let m = Digraph.n_arcs g in
  let off = Array.make (m + 1) 0 in
  let arcs = Array.map Dipath.arc_array paths in
  Array.iter (Array.iter (fun a -> off.(a + 1) <- off.(a + 1) + 1)) arcs;
  for a = 1 to m do
    off.(a) <- off.(a) + off.(a - 1)
  done;
  let ids = Array.make off.(m) 0 in
  let cursor = Array.make m 0 in
  (* Filling in increasing family order keeps every slice ascending. *)
  Array.iteri
    (fun i p_arcs ->
      Array.iter
        (fun a ->
          ids.(off.(a) + cursor.(a)) <- i;
          cursor.(a) <- cursor.(a) + 1)
        p_arcs)
    arcs;
  (Flat.of_array off, Flat.of_array ids)

let of_array dag paths =
  let paths = Array.copy paths in
  let off, ids = build_index (Dag.graph dag) paths in
  { dag; paths; off; ids }

let make dag path_list = of_array dag (Array.of_list path_list)

let of_digraph g path_list =
  match Dag.of_digraph g with
  | Ok dag -> Ok (make dag path_list)
  | Error msg -> Error (Error.Cyclic msg)

let of_digraph_exn g path_list = Error.get_exn (of_digraph g path_list)

let of_vertex_seqs g seqs =
  match Dag.of_digraph g with
  | Error msg -> Error (Error.Cyclic msg)
  | Ok dag ->
    let rec build acc = function
      | [] -> Ok (make dag (List.rev acc))
      | verts :: rest -> (
        match Dipath.of_vertices g verts with
        | Ok p -> build (p :: acc) rest
        | Error msg -> Error (Error.Invalid_path msg))
    in
    build [] seqs

let dag t = t.dag
let graph t = Dag.graph t.dag
let n_paths t = Array.length t.paths

let path t i =
  if i < 0 || i >= n_paths t then invalid_arg "Instance.path: bad index";
  t.paths.(i)

let paths t = Array.copy t.paths
let paths_list t = Array.to_list t.paths

let add_paths t extra =
  (* Single array append, then one re-index pass; the old
     [Array.to_list t.paths @ extra] rebuild was quadratic. *)
  of_array t.dag (Array.append t.paths (Array.of_list extra))

let check_arc t a =
  if a < 0 || a >= Digraph.n_arcs (graph t) then
    invalid_arg "Instance.paths_through: bad arc"

(* After [check_arc], [a] and [a + 1] are structurally valid indices
   into [off] (length n_arcs + 1), so the reads below go unchecked. *)

let n_paths_through t a =
  check_arc t a;
  Flat.unsafe_get t.off (a + 1) - Flat.unsafe_get t.off a

let paths_through_iter t a f =
  check_arc t a;
  for i = Flat.unsafe_get t.off a to Flat.unsafe_get t.off (a + 1) - 1 do
    f (Flat.unsafe_get t.ids i)
  done

let paths_through_fold t a f init =
  check_arc t a;
  let hi = Flat.unsafe_get t.off (a + 1) in
  let rec go i acc =
    if i >= hi then acc else go (i + 1) (f acc (Flat.unsafe_get t.ids i))
  in
  go (Flat.unsafe_get t.off a) init

let paths_through t a =
  check_arc t a;
  let lo = Flat.unsafe_get t.off a in
  let rec go i acc =
    if i < lo then acc else go (i - 1) (Flat.unsafe_get t.ids i :: acc)
  in
  go (Flat.unsafe_get t.off (a + 1) - 1) []

let csr_index t = (t.off, t.ids)

(* Hoisted single pass for the load maximum: every [off] cell is read
   exactly once (the two-reads-per-arc [n_paths_through] loop pays the
   Bigarray indirection twice), top-level and accumulator-threaded so
   the scan allocates nothing. *)
let rec max_load_scan off m a prev best =
  if a > m then best
  else
    let cur = Flat.unsafe_get off a in
    max_load_scan off m (a + 1) cur
      (if cur - prev > best then cur - prev else best)

let max_arc_load t = max_load_scan t.off (Flat.length t.off - 1) 1 0 0

let pp ppf t =
  let g = graph t in
  Format.fprintf ppf "@[<v>instance: %d vertices, %d arcs, %d dipaths@,"
    (Digraph.n_vertices g) (Digraph.n_arcs g) (n_paths t);
  Array.iteri
    (fun i p -> Format.fprintf ppf "  P%d: %a@," i (Dipath.pp g) p)
    t.paths;
  Format.fprintf ppf "@]"
