lib/core/baselines.mli: Assignment Instance Wl_util
