lib/core/routing.ml: Array Digraph Dipath Fun Instance List Printf Queue Result Traversal Wl_dag Wl_digraph Wl_util
