(* Properties pinning the flat-core rewrites to their reference semantics:
   the CSR instance index vs a naive per-arc list index, bucketed DSATUR vs
   the original selection-scan DSATUR, dynamic-chunking Parallel vs its
   sequential meaning, and the bitset/ugraph iteration helpers. *)

open Helpers
module Bitset = Wl_util.Bitset
module Parallel = Wl_util.Parallel
module Prng = Wl_util.Prng
module Ugraph = Wl_conflict.Ugraph
module Coloring = Wl_conflict.Coloring
module Dipath = Wl_digraph.Dipath
module Instance = Wl_core.Instance

(* --- Reference implementations ------------------------------------------ *)

(* Naive per-arc index: exactly what the CSR replaced. *)
let naive_index inst =
  let g = Instance.graph inst in
  let by_arc = Array.make (max 1 (Wl_digraph.Digraph.n_arcs g)) [] in
  for p = Instance.n_paths inst - 1 downto 0 do
    Array.iter
      (fun a -> by_arc.(a) <- p :: by_arc.(a))
      (Dipath.arc_array (Instance.path inst p))
  done;
  by_arc

(* The pre-rewrite DSATUR: O(n) selection scan with per-candidate popcount,
   saturation tracked as a bitset per vertex.  Kept verbatim as the oracle
   for the bucketed version. *)
let reference_dsatur g =
  let n = Ugraph.n_vertices g in
  let coloring = Array.make n (-1) in
  let sat = Array.init n (fun _ -> Bitset.create (max 1 n)) in
  let colored = Array.make n false in
  for _ = 1 to n do
    let best = ref (-1) in
    let best_key = ref (-1, -1) in
    for v = 0 to n - 1 do
      if not colored.(v) then begin
        let key = (Bitset.cardinal sat.(v), Ugraph.degree g v) in
        if !best = -1 || key > !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    let v = !best in
    let c =
      let rec first i = if not (Bitset.mem sat.(v) i) then i else first (i + 1) in
      first 0
    in
    coloring.(v) <- c;
    colored.(v) <- true;
    List.iter
      (fun w -> if not colored.(w) then Bitset.add sat.(w) c)
      (Ugraph.neighbors g v)
  done;
  coloring

let n_colors coloring =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 coloring

(* --- CSR index ----------------------------------------------------------- *)

let csr_matches_naive =
  qtest ~count:150 "CSR paths_through = naive list index" seed_gen (fun seed ->
      let inst = random_instance ~n:24 ~p:0.2 ~k:18 seed in
      let naive = naive_index inst in
      let g = Instance.graph inst in
      let ok = ref true in
      for a = 0 to Wl_digraph.Digraph.n_arcs g - 1 do
        if Instance.paths_through inst a <> naive.(a) then ok := false;
        if Instance.n_paths_through inst a <> List.length naive.(a) then
          ok := false;
        let via_iter = ref [] in
        Instance.paths_through_iter inst a (fun p -> via_iter := p :: !via_iter);
        if List.rev !via_iter <> naive.(a) then ok := false;
        let folded =
          Instance.paths_through_fold inst a (fun acc p -> p :: acc) []
        in
        if List.rev folded <> naive.(a) then ok := false
      done;
      !ok)

let add_paths_matches_bulk =
  qtest ~count:100 "add_paths = building the union at once" seed_gen
    (fun seed ->
      let inst = random_instance ~n:20 ~p:0.2 ~k:12 seed in
      let rng = Prng.create (seed + 1) in
      let extra =
        Wl_netgen.Path_gen.random_family rng (Instance.dag inst) 7
      in
      let grown = Instance.add_paths inst extra in
      let bulk =
        Instance.make (Instance.dag inst)
          (Array.to_list (Instance.paths inst) @ extra)
      in
      let g = Instance.graph inst in
      let ok = ref (Instance.n_paths grown = Instance.n_paths bulk) in
      for a = 0 to Wl_digraph.Digraph.n_arcs g - 1 do
        if Instance.paths_through grown a <> Instance.paths_through bulk a then
          ok := false
      done;
      !ok)

(* --- Bucketed DSATUR ----------------------------------------------------- *)

let dsatur_matches_reference =
  qtest ~count:200 "bucketed DSATUR = reference DSATUR" seed_gen (fun seed ->
      let n = 1 + (seed mod 40) in
      let p = 0.05 +. (0.9 *. float_of_int (seed mod 7) /. 7.0) in
      let g = random_ugraph seed n p in
      let fast = Coloring.dsatur g in
      let slow = reference_dsatur g in
      Coloring.is_valid g fast
      && fast = slow
      && n_colors fast = n_colors slow)

(* --- Parallel ------------------------------------------------------------ *)

let parallel_matches_sequential =
  qtest ~count:60 "Parallel.map_array deterministic across domain counts"
    seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 200 in
      let input = Array.init n (fun i -> i + Prng.int rng 50) in
      let f x = (x * x) + 1 in
      let expected = Array.map f input in
      List.for_all
        (fun d -> Parallel.map_array ~domains:d f input = expected)
        [ 1; 2; 4; 8 ])

let parallel_derived_ops () =
  let input = Array.init 100 Fun.id in
  check_int "init" 100 (Array.length (Parallel.init ~domains:4 100 Fun.id));
  check "init values" true
    (Parallel.init ~domains:4 100 (fun i -> 2 * i)
    = Array.init 100 (fun i -> 2 * i));
  check "for_all" true (Parallel.for_all ~domains:4 (fun x -> x >= 0) input);
  check "for_all neg" false (Parallel.for_all ~domains:4 (fun x -> x < 99) input);
  check_int "count" 50 (Parallel.count ~domains:4 (fun x -> x mod 2 = 0) input)

let parallel_exception () =
  check "exception propagates" true
    (try
       ignore
         (Parallel.map_array ~domains:4
            (fun x -> if x = 37 then failwith "boom" else x)
            (Array.init 100 Fun.id));
       false
     with Failure m -> m = "boom")

(* --- Bitset / Ugraph iteration helpers ----------------------------------- *)

let first_absent_matches_scan =
  qtest ~count:150 "Bitset.first_absent = linear scan" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let cap = 1 + Prng.int rng 200 in
      let b = Bitset.create cap in
      for _ = 1 to Prng.int rng (2 * cap) do
        Bitset.add b (Prng.int rng cap)
      done;
      let scan =
        let rec go i = if i >= cap || not (Bitset.mem b i) then i else go (i + 1) in
        go 0
      in
      Bitset.first_absent b = scan)

let iter_edges_matches_edges =
  qtest ~count:100 "Ugraph.iter_edges enumerates the sorted edge list"
    seed_gen (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 30 in
      let g = random_ugraph (seed + 3) n 0.3 in
      let via_iter = ref [] in
      Ugraph.iter_edges (fun u v -> via_iter := (u, v) :: !via_iter) g;
      let folded =
        Ugraph.fold_edges (fun acc u v -> (u, v) :: acc) g []
      in
      List.rev !via_iter = Ugraph.edges g && List.rev folded = Ugraph.edges g)

let suite =
  [
    ( "perf-structures",
      [
        csr_matches_naive;
        add_paths_matches_bulk;
        dsatur_matches_reference;
        parallel_matches_sequential;
        Alcotest.test_case "parallel derived ops" `Quick parallel_derived_ops;
        Alcotest.test_case "parallel exception" `Quick parallel_exception;
        first_absent_matches_scan;
        iter_edges_matches_edges;
      ] );
  ]
