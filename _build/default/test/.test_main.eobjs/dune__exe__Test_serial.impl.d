test/test_serial.ml: Alcotest Filename Fun Helpers Instance List Printf Serial String Sys Theorem1 Wl_core Wl_digraph Wl_netgen
