lib/dag/internal_cycle.mli: Dag Digraph Dipath Format Wl_digraph
