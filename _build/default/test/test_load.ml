(* Tests for instances, loads, conflict-graph construction, assignments. *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Ugraph = Wl_conflict.Ugraph
module Graph_props = Wl_conflict.Graph_props
module Figures = Wl_netgen.Figures

let line_instance () =
  let g = Digraph.of_arcs 5 (List.init 4 (fun i -> (i, i + 1))) in
  let dag = Dag.of_digraph_exn g in
  let p l = Dipath.make g l in
  (g, Instance.make dag [ p [ 0; 1; 2 ]; p [ 1; 2; 3 ]; p [ 3; 4 ] ])

let test_loads () =
  let _, inst = line_instance () in
  (* Arc ids on the line: (i, i+1) -> i. *)
  check_int "load arc0" 1 (Load.arc_load inst 0);
  check_int "load arc1" 2 (Load.arc_load inst 1);
  check_int "load arc2" 1 (Load.arc_load inst 2);
  check_int "pi" 2 (Load.pi inst);
  check "max load arcs" true (Load.max_load_arcs inst = [ 1 ]);
  check "profile" true (Load.load_profile inst = [| 1; 2; 1; 1 |]);
  check_int "max among" 1 (Load.max_load_arc_among inst [ 0; 1; 2 ])

let test_paths_through () =
  let _, inst = line_instance () in
  check "arc1 users" true (Instance.paths_through inst 1 = [ 0; 1 ]);
  check "arc3 users" true (Instance.paths_through inst 3 = [ 2 ])

let test_empty_instance () =
  let g = Digraph.of_arcs 3 [ (0, 1) ] in
  let inst = Instance.make (Dag.of_digraph_exn g) [] in
  check_int "pi of empty" 0 (Load.pi inst);
  check "no max arcs" true (Load.max_load_arcs inst = [])

let test_add_paths () =
  let g, inst = line_instance () in
  let inst2 = Instance.add_paths inst [ Dipath.make g [ 0; 1 ] ] in
  check_int "count grew" 4 (Instance.n_paths inst2);
  check "old preserved" true
    (Dipath.equal (Instance.path inst2 0) (Instance.path inst 0));
  check_int "old unchanged" 3 (Instance.n_paths inst)

let test_fig3_conflict_graph () =
  let inst = Figures.fig3 () in
  let cg = Conflict_of.build inst in
  check_int "5 vertices" 5 (Ugraph.n_vertices cg);
  check "C5" true (Graph_props.is_cycle_graph cg);
  check_int "pi = 2" 2 (Load.pi inst);
  check_int "clique bound" 2 (Conflict_of.clique_lower_bound inst)

let conflict_graph_matches_pairwise =
  qtest "conflict graph edges = pairwise arc sharing" seed_gen (fun seed ->
      let inst = random_instance seed in
      let cg = Conflict_of.build inst in
      let ps = Instance.paths inst in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          Array.iteri
            (fun j q ->
              if i < j && Ugraph.mem_edge cg i j <> Dipath.shares_arc p q then
                ok := false)
            ps)
        ps;
      !ok)

let test_helly_witness_on_fig1 () =
  (* Figure 1 with k >= 3: complete conflict graph, no common arc. *)
  let inst = Figures.fig1 4 in
  match Conflict_of.helly_witness inst with
  | Some [ _; _; _ ] -> ()
  | Some _ -> Alcotest.fail "witness should be a triple"
  | None -> Alcotest.fail "fig1 must violate the Helly property"

let test_assignment_validity () =
  let _, inst = line_instance () in
  check "valid" true (Assignment.is_valid inst [| 0; 1; 0 |]);
  check "invalid" false (Assignment.is_valid inst [| 0; 0; 1 |]);
  (match Assignment.first_conflict inst [| 0; 0; 1 |] with
  | Some (0, 1, 1) -> ()
  | _ -> Alcotest.fail "expected conflict of paths 0,1 on arc 1");
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Assignment: length mismatch with family") (fun () ->
      ignore (Assignment.is_valid inst [| 0; 1 |]));
  Alcotest.check_raises "negative color"
    (Invalid_argument "Assignment: negative color") (fun () ->
      ignore (Assignment.is_valid inst [| 0; -1; 2 |]))

let test_assignment_normalize () =
  let a = Assignment.normalize [| 5; 9; 5; 0 |] in
  check "normalized" true (a = [| 0; 1; 0; 2 |]);
  check_int "wavelength count" 3 (Assignment.n_wavelengths a);
  check_int "empty" 0 (Assignment.n_wavelengths [||])

let bounds_are_ordered =
  qtest "pi <= clique <= chromatic <= heuristic" seed_gen ~count:40 (fun seed ->
      let inst = random_instance ~n:12 ~k:7 seed in
      let pi = Bounds.pi_lower inst in
      let clique = Bounds.clique_lower inst in
      let chi = Bounds.chromatic_exact inst in
      let heur = Bounds.heuristic_upper inst in
      let indep = Bounds.independence_lower inst in
      pi <= clique && clique <= chi && chi <= heur && indep <= chi)

(* Line instances give interval conflict graphs, which are perfect:
   chromatic = clique = load — Theorem 1's equality seen through the
   conflict graph. *)
let line_conflict_graphs_are_perfectish =
  qtest "on lines: chromatic = clique = pi" seed_gen ~count:30 (fun seed ->
      let rng = Wl_util.Prng.create seed in
      let g = Digraph.of_arcs 14 (List.init 13 (fun i -> (i, i + 1))) in
      let dag = Dag.of_digraph_exn g in
      let paths =
        List.init 10 (fun _ ->
            let lo = Wl_util.Prng.int rng 12 in
            let hi = Wl_util.Prng.int_in rng (lo + 1) 13 in
            Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)))
      in
      let inst = Instance.make dag paths in
      let cg = Conflict_of.build inst in
      let chi = Wl_conflict.Exact.chromatic_number cg in
      chi = Wl_conflict.Clique.clique_number cg && chi = Load.pi inst)

let test_theorem6_upper_formula () =
  check_int "pi=3 one cycle" 4 (Bounds.theorem6_upper ~n_internal_cycles:1 3);
  check_int "pi=2 one cycle" 3 (Bounds.theorem6_upper ~n_internal_cycles:1 2);
  check_int "no cycle" 7 (Bounds.theorem6_upper ~n_internal_cycles:0 7);
  check_int "two cycles" 8 (Bounds.theorem6_upper ~n_internal_cycles:2 4)

let suite =
  [
    ( "load-and-conflicts",
      [
        Alcotest.test_case "arc loads" `Quick test_loads;
        Alcotest.test_case "paths through" `Quick test_paths_through;
        Alcotest.test_case "empty instance" `Quick test_empty_instance;
        Alcotest.test_case "add paths" `Quick test_add_paths;
        Alcotest.test_case "fig3 conflict graph is C5" `Quick test_fig3_conflict_graph;
        conflict_graph_matches_pairwise;
        Alcotest.test_case "fig1 violates Helly" `Quick test_helly_witness_on_fig1;
        Alcotest.test_case "assignment validity" `Quick test_assignment_validity;
        Alcotest.test_case "assignment normalize" `Quick test_assignment_normalize;
        bounds_are_ordered;
        line_conflict_graphs_are_perfectish;
        Alcotest.test_case "theorem6 upper formula" `Quick test_theorem6_upper_formula;
      ] );
  ]
