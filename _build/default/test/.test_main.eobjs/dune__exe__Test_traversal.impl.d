test/test_traversal.ml: Alcotest Array Digraph Fun Helpers List Traversal Wl_digraph Wl_util
