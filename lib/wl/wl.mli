(** The umbrella facade: the whole public surface under one [Wl] root.

    [open Wl] (or link the [wavelength] library) and every stable module is
    one alias away — [Wl.Digraph], [Wl.Solver], [Wl.Engine], [Wl.Client], …
    — without remembering which internal library ([wavelength.core],
    [wavelength.engine], [wavelength.serve], …) a module lives in.  The
    aliases are the same modules, not wrappers: values and types are
    interchangeable with code that links the sub-libraries directly.

    The facade is the compatibility surface: modules reachable from here
    keep their interfaces stable across minor versions; the [Wl_*]
    libraries underneath may reorganize.

    {2 One result-typed form per operation}

    Since the service split, every public operation of the solving,
    serialization and session layers has exactly one blessed form, and it
    returns [('a, Wl_core.Error.t) result] — the same structured error
    that crosses the [wlrpc/1] wire and maps onto the CLI's sysexits codes
    ({!Error.to_code}).  The historical [_exn] twins are deprecated:

    {t
    | Deprecated                  | Use instead              | Notes |
    |------------------------------|--------------------------|-------|
    | [Serial.of_string_exn]       | {!Serial.of_string}      | structured [Parse]/[Cyclic]/[Invalid_path] errors |
    | [Instance.of_digraph_exn]    | {!Instance.of_digraph}   | [Error (Cyclic _)] instead of a raise |
    | [Dag.of_digraph_exn]         | {!Dag.of_digraph}        | cycle witness in the [Error] payload |
    | [Certificate.audit_exn]      | {!Certificate.audit}     | match on the issue list |
    }

    Two [_exn] twins are kept on purpose — {!Engine.add_dipath_exn} and
    {!Engine.remove_path_exn} — because their warm steady state performs
    zero minor allocation and a result cell would break that; they are the
    documented hot-path exceptions, not a pattern to extend.

    {2 The service way in}

    {!connect}, {!session} and {!local} (re-exports of {!Client.connect},
    {!Client.session} and {!Client.local}) are the documented entry points
    for programs that talk to a [wld] daemon — or want the identical
    result-typed API in-process:

    {[
      let c = Result.get_ok (Wl.connect "unix:/run/wld.sock") in
      match Wl.session c ~tenant:"build42" with
      | Error e -> prerr_endline (Wl.Error.to_string e)
      | Ok s -> (* Wl.Client.add_path s [0; 1; 2], ... *) ()
    ]} *)

(** {1 Graphs and paths} *)

module Digraph = Wl_digraph.Digraph
module Dipath = Wl_digraph.Dipath
module Traversal = Wl_digraph.Traversal
module Dot = Wl_digraph.Dot
module Svg = Wl_digraph.Svg

(** {1 DAG structure theory} *)

module Dag = Wl_dag.Dag
module Classify = Wl_dag.Classify
module Internal_cycle = Wl_dag.Internal_cycle
module Upp = Wl_dag.Upp

(** {1 Instances, solving, serialization} *)

module Error = Wl_core.Error
module Instance = Wl_core.Instance
module Load = Wl_core.Load
module Assignment = Wl_core.Assignment
module Solver = Wl_core.Solver
module Serial = Wl_core.Serial
module Routing = Wl_core.Routing
module Grooming = Wl_core.Grooming
module Certificate = Wl_core.Certificate
module Bounds = Wl_core.Bounds

(** {1 Incremental sessions} *)

module Engine = Wl_engine.Engine
module Script = Wl_engine.Script

(** {1 Generators and observability} *)

module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Traffic = Wl_netgen.Traffic
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Prng = Wl_util.Prng

(** {1 Wavelength assignment as a service}

    The [wlrpc/1] protocol stack, bottom up: {!Wire} (length-prefixed
    frames), {!Proto} (typed messages, text + JSON codecs), {!Shard}
    (sessions sharded across engine workers), {!Server} (the [wld] daemon
    core) and {!Client} (the result-typed way in, local or remote). *)

module Proto = Wl_serve.Proto
module Wire = Wl_serve.Wire
module Shard = Wl_serve.Shard
module Server = Wl_serve.Server
module Client = Wl_serve.Client

(** {1 Convenience} *)

val solve : ?exact_limit:int -> ?domains:int -> Instance.t -> Solver.report
(** {!Solver.solve}. *)

val solve_result :
  ?exact_limit:int -> ?domains:int -> Instance.t -> (Solver.report, Error.t) result
(** {!Solver.solve_result}. *)

val connect : ?json:bool -> ?seed:int -> string -> (Client.t, Error.t) result
(** {!Client.connect}: dial a [wld] daemon ([unix:PATH] or
    [tcp:HOST:PORT]). *)

val session : Client.t -> tenant:string -> (Client.session, Error.t) result
(** {!Client.session}: a tenant handle on a connected client. *)

val local :
  ?json:bool ->
  ?seed:int ->
  ?threaded:bool ->
  ?flight_capacity:int ->
  ?shards:int ->
  ?max_queue:int ->
  unit ->
  Client.t
(** {!Client.local}: the same API with no daemon — an in-process loopback
    that still exercises the full codec. *)

val version : int
(** Serialization format version this build writes by default
    ({!Serial.current_version}). *)
