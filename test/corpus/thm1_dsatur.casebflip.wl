wl 2
dag 4
arc 1 3
arc 3 0
arc 3 2
path 1 3 0
path 1 3 2
path 3 2
