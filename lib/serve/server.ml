open Wl_core
module Engine = Wl_engine.Engine

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let address_of_string s =
  let err () =
    Error
      (Error.Parse
         { line = 0; msg = Printf.sprintf "bad address %S: want unix:PATH or tcp:HOST:PORT" s })
  in
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None -> err ()
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> err ())
  in
  if s = "" then err ()
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then err () else Ok (Unix_sock path)
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if s.[0] = '/' || s.[0] = '.' then Ok (Unix_sock s)
  else if String.contains s ':' then tcp s
  else err ()

type t = {
  shard : Shard.t;
  addr : address;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  mutable accept_thread : Thread.t option;
}

let payload_is_json p = String.length p > 0 && p.[0] = '{'

(* A client Shutdown must stop the whole server, not just answer R_bye;
   sniff it before dispatch so the reply still goes out first. *)
let conn_loop t fd =
  let rec go () =
    match Wire.read fd with
    | Ok None -> ()
    | Error e ->
      (try ignore (Wire.write fd (Proto.encode_reply (Error e))) with _ -> ())
    | Ok (Some payload) -> (
      let json = payload_is_json payload in
      let decoded = Proto.decode_request_ctx payload in
      (* The trace context decoded off the frame rides into the shard
         (spans, exemplars) and is echoed on the reply. *)
      let reply, ctx =
        match decoded with
        | Error e -> ((Error e : Proto.reply), Wl_obs.Ctx.none)
        | Ok (req, ctx) -> (Shard.call ~ctx t.shard req, ctx)
      in
      match Wire.write fd (Proto.encode_reply ~json ~ctx reply) with
      | Error _ -> ()
      | Ok () -> (
        match decoded with
        | Ok (Proto.Shutdown, _) -> Atomic.set t.stop_flag true
        | _ -> go ()))
  in
  (try go () with _ -> ());
  try Unix.close fd with _ -> ()

let accept_loop t =
  let rec go () =
    if Atomic.get t.stop_flag then ()
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stop_flag then (try Unix.close fd with _ -> ())
        else ignore (Thread.create (fun () -> conn_loop t fd) ());
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
        ()
      | exception _ -> if not (Atomic.get t.stop_flag) then go ()
  in
  go ()

(* A thread blocked in [accept] does not notice the listener closing, so
   the drain pokes it awake with a throwaway self-connection. *)
let wake_accept addr =
  try
    let fd =
      match addr with
      | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Tcp (_, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        fd
    in
    Unix.close fd
  with _ -> ()

let listen_on addr =
  try
    match addr with
    | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Ok fd
    | Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 128;
      Ok fd
  with
  | Unix.Unix_error (e, _, _) ->
    Error (Error.Io (Printf.sprintf "cannot listen on %s: %s" (address_to_string addr)
                       (Unix.error_message e)))
  | Not_found ->
    Error (Error.Io (Printf.sprintf "cannot resolve %s" (address_to_string addr)))

let serve ~shard addr =
  match listen_on addr with
  | Error _ as e -> e
  | Ok listen_fd ->
    let t =
      { shard; addr; listen_fd; stop_flag = Atomic.make false; accept_thread = None }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    Ok t

let address t = t.addr
let request_stop t = Atomic.set t.stop_flag true
let stop_requested t = Atomic.get t.stop_flag

let wait t =
  while not (Atomic.get t.stop_flag) do
    Thread.delay 0.05
  done;
  wake_accept t.addr;
  (match t.accept_thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  (try Unix.close t.listen_fd with _ -> ());
  (match t.addr with
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ());
  let healths = Shard.drain t.shard in
  healths
