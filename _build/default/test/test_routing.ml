(* Tests for request routing. *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng
module Generators = Wl_netgen.Generators

let test_route_shortest_is_shortest () =
  (* 0 -> 1 -> 4 (2 hops) vs 0 -> 2 -> 3 -> 4 (3 hops). *)
  let g = Digraph.of_arcs 5 [ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ] in
  let dag = Dag.of_digraph_exn g in
  match Routing.route_shortest dag [ (0, 4) ] with
  | Ok [ p ] -> check_int "two hops" 2 (Dipath.n_arcs p)
  | _ -> Alcotest.fail "routing failed"

let test_unroutable_reported () =
  let g = Digraph.of_arcs 3 [ (0, 1) ] in
  let dag = Dag.of_digraph_exn g in
  (match Routing.route_shortest dag [ (1, 2) ] with
  | Error msg -> check "mentions pair" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "should be unroutable");
  match Routing.instance_of dag Routing.route_shortest [ (0, 1); (1, 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail end to end"

let test_min_load_spreads () =
  (* Two parallel two-hop routes; four identical requests must split 2/2,
     keeping the load at 2 instead of 4. *)
  let g = Digraph.of_arcs 6 [ (0, 1); (1, 5); (0, 2); (2, 5); (0, 3); (3, 5) ] in
  let dag = Dag.of_digraph_exn g in
  let requests = List.init 6 (fun _ -> (0, 5)) in
  match Routing.instance_of dag Routing.route_min_load requests with
  | Error msg -> Alcotest.failf "routing failed: %s" msg
  | Ok inst -> check_int "balanced load" 2 (Load.pi inst)

let shortest_really_shortest =
  qtest "route_shortest matches BFS distance" seed_gen ~count:30 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.25 in
      let g = Dag.graph dag in
      let pairs = Wl_dag.Upp.routable_pairs dag in
      match Routing.route_shortest dag pairs with
      | Error _ -> false
      | Ok paths ->
        List.for_all2
          (fun (x, _) p ->
            let dist = Traversal.bfs_dist g x in
            Dipath.n_arcs p = dist.(Dipath.dst p))
          pairs paths)

let min_load_routes_everything =
  qtest "min-load routing is total and deterministic" seed_gen ~count:25
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.layered rng ~layers:4 ~width:4 ~p:0.5 in
      let requests = Routing.random_requests rng dag 20 in
      match
        ( Routing.instance_of dag Routing.route_min_load requests,
          Routing.instance_of dag Routing.route_min_load requests )
      with
      | Ok m1, Ok m2 ->
        Instance.n_paths m1 = List.length requests
        && List.equal Dipath.equal (Instance.paths_list m1) (Instance.paths_list m2)
      | _ -> false)

(* On a hotspot topology the load-aware router must beat blind shortest
   paths: many requests whose unique shortest route shares one arc, while a
   one-hop-longer detour exists. *)
let test_min_load_beats_shortest_on_hotspot () =
  (* 0 -> 1 -> 5 (short) and 0 -> 2 -> 3 -> 5 / 0 -> 4 -> ... detours. *)
  let g =
    Digraph.of_arcs 7
      [ (0, 1); (1, 6); (0, 2); (2, 3); (3, 6); (0, 4); (4, 5); (5, 6) ]
  in
  let dag = Dag.of_digraph_exn g in
  let requests = List.init 6 (fun _ -> (0, 6)) in
  match
    ( Routing.instance_of dag Routing.route_shortest requests,
      Routing.instance_of dag Routing.route_min_load requests )
  with
  | Ok s, Ok m ->
    check_int "shortest hotspots" 6 (Load.pi s);
    check_int "min-load spreads to 2" 2 (Load.pi m)
  | _ -> Alcotest.fail "routing failed"

let test_unique_on_upp () =
  let rng = Prng.create 3 in
  let dag = Generators.gnp_upp rng 12 0.3 in
  let pairs = Routing.all_to_all dag in
  match Routing.route_unique dag pairs with
  | Error msg -> Alcotest.failf "routing failed: %s" msg
  | Ok paths ->
    check_int "one per pair" (List.length pairs) (List.length paths);
    List.iter2
      (fun (x, y) p ->
        check "endpoints" true (Dipath.src p = x && Dipath.dst p = y))
      pairs paths

let test_multicast () =
  let g = Digraph.of_arcs 5 [ (0, 1); (0, 2); (1, 3) ] in
  let dag = Dag.of_digraph_exn g in
  check "multicast requests" true
    (List.sort compare (Routing.multicast dag 0) = [ (0, 1); (0, 2); (0, 3) ]);
  check "multicast from leaf" true (Routing.multicast dag 4 = [])

(* Tree-routed multicast achieves w = pi on ANY DAG, because its routes
   live on a rooted tree (Theorem 1 applies). *)
let multicast_tree_equality =
  qtest "tree-routed multicast: w = pi on any DAG" seed_gen ~count:40
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.3 in
      let root = Prng.int rng 14 in
      let paths = Routing.route_multicast_tree dag root in
      match paths with
      | [] -> true
      | _ ->
        let inst = Instance.make dag paths in
        (* Routes form an out-tree: every vertex reached by exactly one
           route suffix, so the union of arcs is a tree and Theorem 1
           colors optimally. *)
        let a = Theorem1.color inst in
        Assignment.is_valid inst a
        && Assignment.n_wavelengths (Assignment.normalize a) = Load.pi inst)

let test_multicast_tree_counts () =
  let g = Digraph.of_arcs 6 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  let dag = Dag.of_digraph_exn g in
  let paths = Routing.route_multicast_tree dag 0 in
  check_int "one route per reachable vertex" 4 (List.length paths);
  List.iter (fun p -> check_int "starts at root" 0 (Dipath.src p)) paths;
  check "leaf multicast empty" true (Routing.route_multicast_tree dag 4 = []);
  (* All routes use only tree arcs: at most one in-arc used per vertex. *)
  let used_in = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          let dst = Digraph.arc_dst g a in
          match Hashtbl.find_opt used_in dst with
          | None -> Hashtbl.add used_in dst a
          | Some a' -> check "single in-arc per vertex" true (a = a'))
        (Dipath.arcs p))
    paths

let test_random_requests_routable () =
  let rng = Prng.create 8 in
  let dag = Generators.gnp_dag rng 12 0.3 in
  let reqs = Routing.random_requests rng dag 25 in
  check_int "count" 25 (List.length reqs);
  match Routing.route_shortest dag reqs with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "random request unroutable: %s" msg

(* Multicast instances satisfy w = pi on any digraph (the paper cites
   Beauquier-Hell-Perennes); with our machinery this follows from Theorem 1
   when there is no internal cycle, and we verify it exactly on small
   multicast instances in general. *)
let multicast_w_equals_pi =
  qtest "multicast families have w = pi (small, exact)" seed_gen ~count:20
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 9 0.3 in
      let root = Prng.int rng 9 in
      let reqs = Routing.multicast dag root in
      if List.length reqs = 0 || List.length reqs > 14 then true
      else
        match Routing.instance_of dag Routing.route_shortest reqs with
        | Error _ -> false
        | Ok inst -> Bounds.chromatic_exact inst = Load.pi inst)

let suite =
  [
    ( "routing",
      [
        Alcotest.test_case "shortest is shortest" `Quick test_route_shortest_is_shortest;
        Alcotest.test_case "unroutable reported" `Quick test_unroutable_reported;
        Alcotest.test_case "min-load spreads" `Quick test_min_load_spreads;
        shortest_really_shortest;
        min_load_routes_everything;
        Alcotest.test_case "min-load beats shortest on hotspot" `Quick
          test_min_load_beats_shortest_on_hotspot;
        Alcotest.test_case "unique routing on UPP" `Quick test_unique_on_upp;
        Alcotest.test_case "multicast" `Quick test_multicast;
        multicast_tree_equality;
        Alcotest.test_case "multicast tree routing" `Quick test_multicast_tree_counts;
        Alcotest.test_case "random requests routable" `Quick
          test_random_requests_routable;
        multicast_w_equals_pi;
      ] );
  ]
