lib/core/solver.mli: Assignment Format Instance Wl_dag
