(** The paper's worked examples, as executable constructions.

    Every function returns a full {!Wl_core.Instance.t} (graph + dipath
    family) whose [(pi, w)] the paper states; the bench harness recomputes
    both and compares. *)

open Wl_core

val fig1 : int -> Instance.t
(** Figure 1, generalized to any [k >= 2]: a DAG and [k] dipaths that
    pairwise share an arc while no arc carries more than two of them —
    so [pi = 2] but [w = k]: no function of the load can bound the number
    of wavelengths on general DAGs.

    The construction keeps the figure's combinatorial content: for every
    pair [i < j] a dedicated "meeting" arc traversed by exactly dipaths [i]
    and [j], the meetings ordered consistently so that each dipath is simple
    and the graph acyclic.  (The paper draws the [k = 4] case as a grid of
    staircase walks; the meeting arcs are the shared diagonal segments.) *)

val fig3 : unit -> Instance.t
(** Figure 3 verbatim: vertices [a1 b1 c1 d1 e1], arcs
    [a1->b1->c1->d1->e1] plus the chord [b1->d1], and the five dipaths
    whose conflict graph is [C_5] — a DAG with one internal cycle,
    [pi = 2], [w = 3]. *)

val fig5_graph : int -> Wl_dag.Dag.t
(** Figure 5's DAG for a given [k >= 1]: an internal cycle with peaks
    [b_1..b_k] and valleys [c_1..c_k] (arcs [b_i -> c_i] and
    [b_{i+1} -> c_i]), plus pendant predecessors [a_i] and successors
    [d_i].  A UPP-DAG with exactly one internal cycle. *)

val fig5 : int -> Instance.t
(** The Theorem 2 family on {!fig5_graph}: [2k + 1] dipaths with [pi = 2],
    [w = 3] (conflict graph [C_{2k+1}]). *)

val havet_graph : unit -> Wl_dag.Dag.t
(** Figure 9's UPP-DAG (due to F. Havet): peaks [b1, b2], valleys
    [c1, c2] joined by all four arcs (the single internal cycle), two
    pendant predecessors on each peak ([a1, a1'] -> [b1]; [a2, a2'] ->
    [b2]) and two pendant successors on each valley. *)

val havet : int -> Instance.t
(** Theorem 7's family: the 8 dipaths of Figure 9, each replicated [h >= 1]
    times ([8h] dipaths total).  The base conflict graph is [C_8] plus
    antipodal chords (the Wagner graph), so [pi = 2h] while
    [w = ceil(8h/3)] — the tight case of Theorem 6's bound. *)

val havet_base_independent_sets : unit -> int list array
(** The eight maximum independent sets [{i, i+2, i+5}] of the Wagner graph,
    indexed cyclically — the covering design behind the optimal coloring of
    the replicated family (see {!Wl_core.Replication}). *)

val odd_cycle_independent_sets : int -> int list array
(** For [C_{2k+1}]: the [2k+1] maximum independent sets
    [{j, j+2, ..., j+2(k-1)}], used to color replicated Theorem 2
    families optimally. *)
