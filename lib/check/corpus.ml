type entry = {
  check : string;
  label : string;
  wl_file : string;
  subject : Subject.t;
}

let parse_name file =
  (* <check>.<label>.wl — the check is everything before the first dot. *)
  match String.index_opt file '.' with
  | Some i when Filename.check_suffix file ".wl" ->
    let label = String.sub file (i + 1) (String.length file - i - 4) in
    if label = "" then None else Some (String.sub file 0 i, label)
  | _ -> None

let load dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | files ->
    Array.sort compare files;
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | file :: rest ->
        if not (Filename.check_suffix file ".wl") then go acc rest
        else begin
          match parse_name file with
          | None ->
            Error
              (Printf.sprintf "%s: corpus entries are named <check>.<label>.wl"
                 file)
          | Some (check, label) -> (
            let wl_file = Filename.concat dir file in
            match Subject.read ~wl:wl_file with
            | Error e ->
              Error (Printf.sprintf "%s: %s" file (Wl_core.Error.to_string e))
            | Ok subject ->
              go ({ check; label; wl_file; subject } :: acc) rest)
        end
    in
    go [] (Array.to_list files)

let replay entry =
  match Oracle.find entry.check with
  | None -> Some (Printf.sprintf "unknown check %S" entry.check)
  | Some oracle -> (
    match oracle.Oracle.check entry.subject with
    | r -> r
    | exception e -> Some (Printexc.to_string e))

let replay_dir dir =
  match load dir with
  | Error _ as e -> e
  | Ok entries ->
    Ok
      (List.filter_map
         (fun entry ->
           match replay entry with
           | None -> None
           | Some reason -> Some (Filename.basename entry.wl_file, reason))
         entries)

let add ~dir ~check ~label subject =
  Subject.write ~prefix:(Filename.concat dir (check ^ "." ^ label)) subject
