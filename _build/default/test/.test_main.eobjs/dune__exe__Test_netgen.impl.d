test/test_netgen.ml: Alcotest Digraph Dipath Helpers List Result Wl_conflict Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
