open Wl_digraph
module Dag = Wl_dag.Dag
module Upp = Wl_dag.Upp

type request = Digraph.vertex * Digraph.vertex

let collect_routes route requests =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (x, y) :: rest -> (
      match route x y with
      | Some p -> go (p :: acc) rest
      | None -> Error (Printf.sprintf "request (%d, %d) is not routable" x y))
  in
  go [] requests

let route_unique d requests =
  collect_routes (fun x y -> Upp.unique_dipath d x y) requests

let route_shortest d requests =
  collect_routes (fun x y -> Dag.some_dipath d x y) requests

(* Lexicographic (bottleneck load, hop count) Dijkstra; both components are
   monotone under arc relaxation, so the label-setting argument applies. *)
let bottleneck_path g load src dst =
  let n = Digraph.n_vertices g in
  let inf = (max_int, max_int) in
  let dist = Array.make n inf in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- (0, 0);
  let rec loop () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not settled.(v)) && dist.(v) < inf
         && (!best = -1 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best >= 0 then begin
      let v = !best in
      settled.(v) <- true;
      if v <> dst then begin
        List.iter
          (fun a ->
            let w = Digraph.arc_dst g a in
            let bott, hops = dist.(v) in
            let cand = (max bott load.(a), hops + 1) in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- v
            end)
          (Digraph.out_arcs g v);
        loop ()
      end
    end
  in
  loop ();
  if dist.(dst) = inf || src = dst then None
  else begin
    let rec build v acc = if v = src then v :: acc else build parent.(v) (v :: acc) in
    Some (Dipath.make g (build dst []))
  end

let min_load_router d =
  let g = Dag.graph d in
  let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
  fun (x, y) ->
    match bottleneck_path g load x y with
    | None -> Error (Printf.sprintf "request (%d, %d) is not routable" x y)
    | Some p ->
      List.iter (fun a -> load.(a) <- load.(a) + 1) (Dipath.arcs p);
      Ok p

let route_min_load d requests =
  let router = min_load_router d in
  let route x y = Result.to_option (router (x, y)) in
  collect_routes route requests

let all_to_all d = Upp.routable_pairs d

let route_multicast_tree d root =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  (* BFS parents rooted at the source. *)
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(root) <- true;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  let rec tree_path v acc =
    if v = root then root :: acc else tree_path parent.(v) (v :: acc)
  in
  List.filter_map
    (fun v ->
      if v <> root && seen.(v) then Some (Dipath.make g (tree_path v []))
      else None)
    (List.init n Fun.id)

let multicast d root =
  let reachable = Traversal.reachable_from (Dag.graph d) root in
  let out = ref [] in
  Array.iteri (fun v r -> if r && v <> root then out := (root, v) :: !out) reachable;
  List.rev !out

let random_requests rng d k =
  match all_to_all d with
  | [] -> []
  | pairs ->
    let arr = Array.of_list pairs in
    List.init k (fun _ -> Wl_util.Prng.choose rng arr)

let instance_of d route requests =
  Result.map (Instance.make d) (route d requests)
