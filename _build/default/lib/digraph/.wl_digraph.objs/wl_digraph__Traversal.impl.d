lib/digraph/traversal.ml: Array Digraph Hashtbl List Queue Wl_util
