test/test_theorem2.ml: Alcotest Assignment Bounds Conflict_of Helpers Instance List Load Printf Replication Theorem1 Theorem2 Wl_conflict Wl_core Wl_dag Wl_netgen Wl_util
