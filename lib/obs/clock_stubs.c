/* Monotonic time for spans and latency metrics.
 *
 * clock_gettime(CLOCK_MONOTONIC) is immune to wall-clock steps (NTP
 * slews, manual resets), which used to corrupt span durations and
 * ns_per_op figures when the harness ran across a clock adjustment.
 * The reading is returned as an unboxed OCaml int of nanoseconds:
 * 63 bits of ns covers ~146 years of uptime, and Val_long keeps the
 * call allocation-free so it can sit inside timing hot loops. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value wl_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
