module Classify = Wl_dag.Classify
module Coloring = Wl_conflict.Coloring
module Exact = Wl_conflict.Exact
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock

type method_used =
  | Theorem_1
  | Theorem_6
  | Theorem_6_iterated
  | Exact_coloring
  | Heuristic

type lower_bound_source = From_load | From_clique | From_exact_chromatic

type report = {
  classification : Classify.t;
  pi : int;
  lower_bound : int;
  lower_bound_source : lower_bound_source;
  assignment : Assignment.t;
  n_wavelengths : int;
  method_used : method_used;
  optimal : bool;
}

let method_name = function
  | Theorem_1 -> "theorem-1"
  | Theorem_6 -> "theorem-6"
  | Theorem_6_iterated -> "theorem-6-iterated"
  | Exact_coloring -> "exact-coloring"
  | Heuristic -> "heuristic"

let lower_bound_source_name = function
  | From_load -> "load"
  | From_clique -> "clique"
  | From_exact_chromatic -> "exact-chromatic"

(* Dispatch observability: which arm fired, how long it took, how often it
   proved optimality.  One counter and one latency histogram per arm. *)
let c_solves = Metrics.counter "solver.solves"
let c_optimal = Metrics.counter "solver.optimal"

let arm_instruments m =
  let name = method_name m in
  (Metrics.counter ("solver.arm." ^ name), Metrics.latency ("solver.ns." ^ name))

let arms =
  List.map
    (fun m -> (m, arm_instruments m))
    [ Theorem_1; Theorem_6; Theorem_6_iterated; Exact_coloring; Heuristic ]

let finish classification pi lower source assignment method_used =
  let assignment = Assignment.normalize assignment in
  let n_wavelengths = Assignment.n_wavelengths assignment in
  {
    classification;
    pi;
    lower_bound = lower;
    lower_bound_source = source;
    assignment;
    n_wavelengths;
    method_used;
    optimal = n_wavelengths = lower;
  }

let solve_impl ?(exact_limit = 24) ?domains inst =
  let classification = Classify.classify (Instance.dag inst) in
  let pi = Load.pi inst in
  let small = Instance.n_paths inst <= exact_limit in
  if classification.Classify.n_internal_cycles = 0 then
    (* Theorem 1: optimal and equal to the load. *)
    finish classification pi pi From_load (Theorem1.color inst) Theorem_1
  else if classification.Classify.is_upp && classification.Classify.n_internal_cycles = 1
  then begin
    let assignment = Theorem6.color ~check:false inst in
    (* On a UPP-DAG the clique number equals pi (Property 3), so pi is the
       natural lower bound; a small instance gets the exact optimum instead. *)
    if small then
      let cg = Conflict_of.build inst in
      let chi = Exact.chromatic_number cg in
      let exact =
        match Exact.k_colorable cg chi with Some c -> c | None -> assert false
      in
      if chi < Assignment.n_wavelengths (Assignment.normalize assignment) then
        finish classification pi chi From_exact_chromatic
          (Assignment.of_conflict_coloring exact)
          Exact_coloring
      else finish classification pi chi From_exact_chromatic assignment Theorem_6
    else finish classification pi pi From_clique assignment Theorem_6
  end
  else if
    classification.Classify.is_upp
    && classification.Classify.n_internal_cycles >= 2
    && not small
  then begin
    (* The iterated Theorem 6 recursion; DSATUR may still beat it on dense
       conflict graphs, so keep the better of the two. *)
    let assignment = Theorem6_multi.color ~check:false inst in
    let cg = Conflict_of.build inst in
    let heuristic = Coloring.best_heuristic ?domains cg in
    if
      Assignment.n_wavelengths (Assignment.normalize heuristic)
      < Assignment.n_wavelengths (Assignment.normalize assignment)
    then
      finish classification pi pi From_clique
        (Assignment.of_conflict_coloring heuristic)
        Heuristic
    else finish classification pi pi From_clique assignment Theorem_6_iterated
  end
  else if small then begin
    let cg = Conflict_of.build inst in
    let chi = Exact.chromatic_number cg in
    let coloring =
      match Exact.k_colorable cg chi with Some c -> c | None -> assert false
    in
    finish classification pi chi From_exact_chromatic
      (Assignment.of_conflict_coloring coloring)
      Exact_coloring
  end
  else begin
    let cg = Conflict_of.build inst in
    let coloring = Coloring.best_heuristic ?domains cg in
    let clique = List.length (Wl_conflict.Clique.greedy_clique cg) in
    let lower = max pi clique in
    let source = if clique > pi then From_clique else From_load in
    finish classification pi lower source
      (Assignment.of_conflict_coloring coloring)
      Heuristic
  end

let record_solve report dt_ns =
  Metrics.incr c_solves;
  if report.optimal then Metrics.incr c_optimal;
  match List.assoc_opt report.method_used arms with
  | Some (c, h) ->
    Metrics.incr c;
    Metrics.observe_ns h dt_ns
  | None -> ()

let solve ?exact_limit ?domains inst =
  let observed = Metrics.enabled () in
  let t0 = if observed then Clock.now_ns () else 0 in
  let report =
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("paths", Trace.Int (Instance.n_paths inst)) ]
        "solver.solve"
        (fun () -> solve_impl ?exact_limit ?domains inst)
    else solve_impl ?exact_limit ?domains inst
  in
  if observed then record_solve report (Clock.now_ns () - t0);
  report

let solve_result ?exact_limit ?domains inst =
  match exact_limit with
  | Some l when l < 0 ->
    Error (Error.Precondition "Solver.solve: exact_limit must be non-negative")
  | _ -> (
    match solve ?exact_limit ?domains inst with
    | report -> Ok report
    | exception Invalid_argument msg -> Error (Error.Precondition msg))

let pp_report ?(stats = false) ppf r =
  if not stats then
    Format.fprintf ppf
      "@[<v>method: %s@,load pi: %d@,wavelengths: %d@,lower bound: %d@,optimal: \
       %b@,%a@]"
      (method_name r.method_used)
      r.pi r.n_wavelengths r.lower_bound r.optimal Classify.pp r.classification
  else
    Format.fprintf ppf
      "@[<v>method: %s@,load pi: %d@,wavelengths: %d@,lower bound: %d (from \
       %s)@,optimal: %b@,%a@,@,counters:@,%a@]"
      (method_name r.method_used)
      r.pi r.n_wavelengths r.lower_bound
      (lower_bound_source_name r.lower_bound_source)
      r.optimal Classify.pp r.classification Metrics.pp_summary ()
