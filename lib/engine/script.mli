(** Engine op scripts: a serializable list of {!Engine.op} mutations.

    The [wl session] CLI subcommand replays these against a session; the
    text and JSON forms mirror each other, like {!Wl_core.Serial} does for
    instances.

    Text format (line-oriented, [#] comments, optional [wlops 1] header):

    {v
    wlops 1
    path 0 1 2       # Add_path
    remove 3         # Remove_path (by handle)
    arc 4 5          # Add_arc
    v}

    JSON mirror:

    {v
    { "format": "wl-ops", "version": 1,
      "ops": [ { "op": "add_path", "vertices": [0, 1, 2] },
               { "op": "remove_path", "id": 3 },
               { "op": "add_arc", "from": 4, "to": 5 } ] }
    v} *)

open Wl_core

type t = Engine.op list

val current_version : int

val to_string : t -> string
val of_string : string -> (t, Error.t) result

val to_json : ?pretty:bool -> t -> string
val of_json : string -> (t, Error.t) result

val read_file : string -> (t, Error.t) result
(** Reads either form, sniffing JSON by a leading ['{']. *)

val write_file : string -> t -> unit
