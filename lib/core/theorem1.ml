open Wl_digraph
module Dag = Wl_dag.Dag
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Arena = Wl_util.Arena
module Flat = Wl_util.Flat

(* Solver-internals counters (all no-ops until [Metrics.set_enabled]).
   The case names follow the paper's proof of Theorem 1: a same-colored
   pair at an insertion is resolved by a Kempe flip that either stays away
   from the protected dipath (case A), would revisit an already-flipped
   dipath (case B — impossible, the stamp assert enforces it; the counter
   records how many times the guard was exercised), or reaches the
   protected dipath (case C: an internal cycle exists and we abort). *)
let c_arcs_peeled = Metrics.counter "thm1.arcs_peeled"
let c_case_a = Metrics.counter "thm1.case_a_flips"
let c_case_b = Metrics.counter "thm1.case_b_checks"
let c_case_c = Metrics.counter "thm1.case_c_aborts"
let c_fresh = Metrics.counter "thm1.fresh_colors"
let h_cascade = Metrics.histogram "thm1.cascade_len"

exception
  Internal_cycle_encountered of {
    chain : int list;
    junction : Digraph.vertex;
  }

(* The solver state is all flat arrays, and it is a reusable *scratch*:
   binding an instance sizes the buffers (via the session arena, grow-
   only), and a repeat solve of the same instance performs zero
   allocation — every per-round mark uses generation stamps
   ([mark.(x) = gen] means "marked in the current round") and the
   generation counter is never reset, so stale contents from earlier
   rounds or earlier instances can never collide with a fresh stamp.

   Non-flambda discipline for the hot loops below: no local [ref]s and
   no environment-capturing local closures (both allocate); loop state
   lives in mutable fields or threads through top-level tail-recursive
   helpers. *)
type scratch = {
  arena : Arena.t;
  mutable bound : Instance.t option; (* instance the buffers fit, == compared *)
  (* Per-bind caches (rebuilt only when a different instance is bound). *)
  mutable graph : Digraph.t; (* the bound instance's graph *)
  mutable n_paths : int;
  mutable n_arcs : int;
  mutable p_arcs : int array array;
      (* arc ids of each family dipath, front to back — rows borrowed
         from the dipaths themselves, never mutated here *)
  mutable order : Digraph.arc array; (* arcs by tail topological position *)
  mutable off : Flat.t; (* CSR offsets, shared with the instance *)
  mutable ids : Flat.t; (* CSR member ids, shared with the instance *)
  (* Live occupancy, CSR-shaped over the instance index: the occupants of
     arc [a] are [occ.(off.(a)) .. off.(a) + occ_len.(a) - 1].  Occupancy
     only grows, and occupants of [a] are always a subset of the family
     members through [a], so the instance offsets fit exactly.  Both
     tables are Bigarray-backed: instance-sized, off the OCaml heap. *)
  mutable occ : Flat.t;
  mutable occ_len : Flat.t;
  (* Arena-backed per-member scratch, capacity >= n_paths. *)
  mutable start_pos : int array; (* first live arc index; = length when inactive *)
  mutable seen : int array; (* per member: stamp for conflict dedup *)
  mutable visit : int array; (* per member: stamp for Kempe BFS discovery *)
  mutable flipped : int array; (* per member: stamp asserting single recoloring *)
  mutable parent : int array; (* per member: Kempe BFS tree, valid when visited *)
  mutable queue : int array; (* Kempe BFS queue, capacity n_paths *)
  mutable conflicts : int array; (* live_conflicts output, capacity n_paths *)
  mutable members : int array; (* live members of the arc being inserted *)
  (* Per color, one packed word: high bits the duplicate-detection stamp,
     low 31 bits the member last seen wearing the color.  Colors never
     reach n_paths (palette = running max load), and the stamp is the
     shared generation counter — a solver would need ~2^31 generations
     to overflow the packing, far beyond any real run. *)
  mutable colw : int array;
  (* The solve's output, exactly n_paths long (arena buffers are rounded
     up, and Assignment checks lengths), -1 while uncolored. *)
  mutable color_buf : int array;
  mutable palette : int; (* current number of colors = running max load *)
  mutable gen : int; (* shared generation counter for all stamp scratch *)
  (* Hot-loop cursors (fields, not refs: a local [float]/[int ref]
     allocates without flambda). *)
  mutable head : int; (* Kempe BFS queue head *)
  mutable tail : int; (* Kempe BFS queue tail *)
  mutable next_free : int; (* fresh-color cursor during insertion *)
}

let owner_mask = (1 lsl 31) - 1

let empty_flat = Flat.create 0

let scratch () =
  {
    arena = Arena.create ();
    bound = None;
    graph = Digraph.create ();
    n_paths = 0;
    n_arcs = 0;
    p_arcs = [||];
    order = [||];
    off = empty_flat;
    ids = empty_flat;
    occ = empty_flat;
    occ_len = empty_flat;
    start_pos = [||];
    seen = [||];
    visit = [||];
    flipped = [||];
    parent = [||];
    queue = [||];
    conflicts = [||];
    members = [||];
    colw = [||];
    color_buf = [||];
    palette = 0;
    gen = 0;
    head = 0;
    tail = 0;
    next_free = 0;
  }

(* Bind the scratch to an instance: size every buffer, cache the per-
   instance data.  Cold (allocates); skipped entirely when the same
   instance is solved again. *)
let bind st inst =
  let g = Instance.graph inst in
  let n = Instance.n_paths inst in
  let m = Digraph.n_arcs g in
  let off, ids = Instance.csr_index inst in
  st.bound <- Some inst;
  st.graph <- g;
  st.n_paths <- n;
  st.n_arcs <- m;
  (* Rows borrowed from the dipaths — no copies. *)
  st.p_arcs <- Array.init n (fun i -> Dipath.unsafe_arc_array (Instance.path inst i)); (* alloc-ok *)
  st.order <- Dag.arcs_by_tail_topo (Instance.dag inst);
  st.off <- off;
  st.ids <- ids;
  let occ_cap = Flat.length ids in
  if Flat.length st.occ < occ_cap then st.occ <- Flat.create occ_cap;
  if Flat.length st.occ_len < max 1 m then st.occ_len <- Flat.create (max 1 m);
  Arena.reset st.arena;
  let cap = max 1 n in
  st.start_pos <- Arena.ints st.arena cap;
  st.seen <- Arena.ints st.arena cap;
  st.visit <- Arena.ints st.arena cap;
  st.flipped <- Arena.ints st.arena cap;
  st.parent <- Arena.ints st.arena cap;
  st.queue <- Arena.ints st.arena cap;
  st.conflicts <- Arena.ints st.arena cap;
  st.members <- Arena.ints st.arena cap;
  st.colw <- Arena.ints st.arena cap;
  if Array.length st.color_buf <> n then st.color_buf <- Array.make n (-1); (* alloc-ok *)
  (* Stamp buffers may hold garbage >= the current generation when the
     arena slots were grown fresh (zeros are fine, [gen] only moves up)
     or inherited from another life.  One bulk clear per bind keeps the
     stamp invariant ("stale < next fresh gen") honest without ever
     resetting [gen]. *)
  let z = st.gen in
  Array.fill st.seen 0 (Array.length st.seen) z;
  Array.fill st.visit 0 (Array.length st.visit) z;
  Array.fill st.flipped 0 (Array.length st.flipped) z;
  Array.fill st.colw 0 (Array.length st.colw) (z lsl 31)

let next_gen st =
  st.gen <- st.gen + 1;
  st.gen

let is_live st p = st.start_pos.(p) < Array.length st.p_arcs.(p)

(* Live family indices conflicting with [p] (sharing a live arc), written
   into [st.conflicts]; returns their count.  Top-level tail recursion
   instead of nested closures/refs: alloc-free. *)
let rec occ_scan st g j stop cnt =
  if j >= stop then cnt
  else begin
    let q = Flat.unsafe_get st.occ j in
    if st.seen.(q) <> g then begin
      st.seen.(q) <- g;
      st.conflicts.(cnt) <- q;
      occ_scan st g (j + 1) stop (cnt + 1)
    end
    else occ_scan st g (j + 1) stop cnt
  end

let rec arc_scan st g arcs k n cnt =
  if k >= n then cnt
  else begin
    let a = arcs.(k) in
    let base = Flat.unsafe_get st.off a in
    let stop = base + Flat.unsafe_get st.occ_len a in
    arc_scan st g arcs (k + 1) n (occ_scan st g base stop cnt)
  end

let live_conflicts st p =
  let g = next_gen st in
  st.seen.(p) <- g;
  let arcs = st.p_arcs.(p) in
  arc_scan st g arcs st.start_pos.(p) (Array.length arcs) 0

(* Error-path only: reconstruct the BFS chain from [p1] down to [q]. *)
let chain_to st q =
  let rec go v acc =
    let p = st.parent.(v) in
    if p = v then v :: acc else go p (v :: acc)
  in
  go q []

(* Flip the Kempe component of [p1] in the {alpha, beta} conflict subgraph,
   leaving [protected_p] untouched.  If the component reaches [protected_p],
   raise with the BFS chain from p1 to it (the paper's case C). *)
let kempe_flip st ~protected_p ~junction ~alpha ~beta p1 =
  let g = next_gen st in
  st.visit.(p1) <- g;
  st.parent.(p1) <- p1;
  st.head <- 0;
  st.queue.(0) <- p1;
  st.tail <- 1;
  while st.head < st.tail do
    let p = st.queue.(st.head) in
    st.head <- st.head + 1;
    (* Proof case B: a dipath is never recolored twice. *)
    assert (st.flipped.(p) <> g);
    st.flipped.(p) <- g;
    let other = if st.color_buf.(p) = alpha then beta else alpha in
    let n_conf = live_conflicts st p in
    for i = 0 to n_conf - 1 do
      let q = st.conflicts.(i) in
      if st.color_buf.(q) = other && st.visit.(q) <> g then begin
        st.visit.(q) <- g;
        st.parent.(q) <- p;
        if q = protected_p then begin
          Metrics.incr c_case_c;
          raise (Internal_cycle_encountered { chain = chain_to st q; junction })
        end;
        st.queue.(st.tail) <- q;
        st.tail <- st.tail + 1
      end
    done;
    st.color_buf.(p) <- other
  done;
  (* [st.tail] dipaths were discovered and flipped: the cascade length. *)
  Metrics.incr c_case_a;
  Metrics.add c_case_b st.tail;
  Metrics.observe h_cascade st.tail

(* First pair of members wearing the same color, packed as
   [(p0 lsl 31) lor p1]; -1 when the member set is rainbow.  Packing
   instead of an option: this runs once per insertion even in the happy
   case, and [Some (p0, p1)] would be the hot path's only allocation. *)
let rec violated_from st g i n_members =
  if i >= n_members then -1
  else begin
    let p = st.members.(i) in
    let c = st.color_buf.(p) in
    let w = st.colw.(c) in
    if w asr 31 = g then ((w land owner_mask) lsl 31) lor p
    else begin
      st.colw.(c) <- (g lsl 31) lor p;
      violated_from st g (i + 1) n_members
    end
  end

let distinct_violated st n_members =
  let g = next_gen st in
  violated_from st g 0 n_members

let rec first_free_color st g c =
  if c >= st.palette then
    invalid_arg "Theorem1: no free color (load accounting broken)"
  else if st.colw.(c) asr 31 = g then first_free_color st g (c + 1)
  else c

(* Make all live dipaths through the about-to-be-inserted arc use pairwise
   distinct colors, by repeated Kempe flips.  The members are the first
   [n_members] entries of [st.members], live, in ascending family order. *)
let rec make_rainbow st ~junction n_members =
  let v = distinct_violated st n_members in
  if v >= 0 then begin
    let p0 = v asr 31 and p1 = v land owner_mask in
    let alpha = st.color_buf.(p0) in
    (* beta: a palette color unused by the whole member set. *)
    let g = next_gen st in
    for i = 0 to n_members - 1 do
      st.colw.(st.color_buf.(st.members.(i))) <- g lsl 31
    done;
    let beta = first_free_color st g 0 in
    kempe_flip st ~protected_p:p0 ~junction ~alpha ~beta p1;
    make_rainbow st ~junction n_members
  end

(* Collect the live members of the CSR slice [j, hi) into [st.members],
   starting at slot [k]; returns the member count. *)
let rec collect_live st j hi k =
  if j >= hi then k
  else begin
    let p = Flat.unsafe_get st.ids j in
    if is_live st p then begin
      st.members.(k) <- p;
      collect_live st (j + 1) hi (k + 1)
    end
    else collect_live st (j + 1) hi k
  end

let insert_arc st e =
  let lo = Flat.unsafe_get st.off e in
  let hi = Flat.unsafe_get st.off (e + 1) in
  if hi > lo then begin
    Metrics.incr c_arcs_peeled;
    if hi - lo > st.palette then st.palette <- hi - lo;
    let n_members = collect_live st lo hi 0 in
    make_rainbow st ~junction:(Digraph.arc_dst st.graph e) n_members;
    (* Extend every dipath through [e] over it; newly activated ones get the
       palette colors not used by the live members. *)
    let g = next_gen st in
    for i = 0 to n_members - 1 do
      st.colw.(st.color_buf.(st.members.(i))) <- g lsl 31
    done;
    st.next_free <- 0;
    for j = lo to hi - 1 do
      let p = Flat.unsafe_get st.ids j in
      if not (is_live st p) then begin
        (* Fresh color: next palette slot not worn by a live member. *)
        while st.colw.(st.next_free) asr 31 = g do
          st.next_free <- st.next_free + 1
        done;
        st.color_buf.(p) <- st.next_free;
        st.next_free <- st.next_free + 1;
        Metrics.incr c_fresh
      end;
      let k = st.start_pos.(p) - 1 in
      assert (st.p_arcs.(p).(k) = e);
      st.start_pos.(p) <- k;
      Flat.unsafe_set st.occ (lo + Flat.unsafe_get st.occ_len e) p;
      Flat.unsafe_set st.occ_len e (Flat.unsafe_get st.occ_len e + 1)
    done
  end

let solve st =
  (* Per-round reset: fills only, no allocation. *)
  for p = 0 to st.n_paths - 1 do
    st.start_pos.(p) <- Array.length st.p_arcs.(p);
    st.color_buf.(p) <- -1
  done;
  Flat.fill st.occ_len 0;
  st.palette <- 0;
  for i = Array.length st.order - 1 downto 0 do
    insert_arc st st.order.(i)
  done;
  (* Every dipath is fully live and colored now. *)
  for p = 0 to st.n_paths - 1 do
    assert (st.color_buf.(p) >= 0 || Array.length st.p_arcs.(p) = 0)
  done;
  st.color_buf

let bind_and_solve st inst =
  (match st.bound with
  | Some i when i == inst -> ()
  | _ -> bind st inst);
  solve st

let color_with st inst =
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("paths", Trace.Int (Instance.n_paths inst)) ]
      "thm1.color"
      (fun () -> bind_and_solve st inst)
  else bind_and_solve st inst

(* [color] keeps its fresh-array contract via a domain-local scratch:
   callers own the copy, repeat solves of the same instance only pay for
   it (the solve itself is allocation-free).  The scratch retains the
   most recently solved instance per domain — bounded, and the price of
   warm repeat solves. *)
let dls_scratch = Domain.DLS.new_key scratch

let color inst = Array.copy (color_with (Domain.DLS.get dls_scratch) inst)

let color_result inst =
  match color inst with
  | assignment -> Ok assignment
  | exception Internal_cycle_encountered { chain; junction } ->
    Error (chain, junction)

let colors_used inst =
  Assignment.n_wavelengths (Assignment.normalize (color inst))

(* The paper's case-C extraction (its Figure 4): follow the chain of
   pairwise-conflicting dipaths around, from the junction back to the
   junction; every arc traversed an odd number of times survives into a
   non-empty even subgraph whose vertices all lie on the walk — and every
   walk vertex has both a predecessor and a successor in G (interval
   endpoints head shared arcs, interior vertices are path-interior), so any
   undirected cycle of the parity subgraph is an internal cycle.

   The arc-parity set is a stamp array scoped on the domain scratch's
   arena (mark/release), not a per-call hashtable: witness extraction
   after a case-C abort reuses the same buffer run after run. *)
let witness_internal_cycle inst ~chain ~junction =
  let g = Instance.graph inst in
  match chain with
  | [] | [ _ ] -> None
  | p0 :: _ ->
    let m = List.length chain in
    (* Direct construction — no intermediate [List.map] list. *)
    let paths = Array.make m (Instance.path inst p0) in (* alloc-ok *)
    List.iteri (fun i pid -> paths.(i) <- Instance.path inst pid) chain;
    let first_shared i =
      let rec go = function
        | [] -> None
        | a :: rest -> if Dipath.mem_arc paths.(i + 1) a then Some a else go rest
      in
      go (Dipath.arcs paths.(i))
    in
    let st = Domain.DLS.get dls_scratch in
    let arena_mark = Arena.mark st.arena in
    let parity = Arena.ints st.arena (max 1 (Digraph.n_arcs g)) in
    (* Stamped parity: arc [a] is odd iff [parity.(a) = odd].  The fresh
       generation exceeds anything stale in the reused buffer, and 0 is
       below it, so flipping between [odd] and 0 needs no clearing. *)
    let odd = next_gen st in
    let n_odd = ref 0 in
    let flip a =
      if parity.(a) = odd then begin
        parity.(a) <- 0;
        decr n_odd
      end
      else begin
        parity.(a) <- odd;
        incr n_odd
      end
    in
    let add_segment path u v =
      match (Dipath.vertex_index path u, Dipath.vertex_index path v) with
      | Some iu, Some iv ->
        let lo = min iu iv and hi = max iu iv in
        let arcs = Dipath.unsafe_arc_array path in
        for k = lo to hi - 1 do
          flip arcs.(k)
        done;
        true
      | _ -> false
    in
    let ok = ref true in
    let enter = ref junction in
    for i = 0 to m - 1 do
      let exit_v =
        if i = m - 1 then Some junction
        else Option.map (Digraph.arc_src g) (first_shared i)
      in
      match exit_v with
      | None -> ok := false
      | Some v ->
        if not (add_segment paths.(i) !enter v) then ok := false;
        enter := v
    done;
    let result =
      if (not !ok) || !n_odd = 0 then None
      else Traversal.undirected_cycle ~keep_arc:(fun a -> parity.(a) = odd) g
    in
    Arena.release st.arena arena_mark;
    result
