type t = int array

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Permutation.of_array: out of range";
      if seen.(v) then invalid_arg "Permutation.of_array: not injective";
      seen.(v) <- true)
    a;
  Array.copy a

let identity n = Array.init n (fun i -> i)

let size = Array.length

let apply p i = p.(i)

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let compose p q =
  if Array.length p <> Array.length q then
    invalid_arg "Permutation.compose: size mismatch";
  Array.map (fun v -> p.(v)) q

let of_two_bijections f g =
  let n = Array.length f in
  if Array.length g <> n then invalid_arg "Permutation.of_two_bijections";
  (* Rank values by first appearance in [f]. *)
  let rank = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem rank v then
        invalid_arg "Permutation.of_two_bijections: f not injective";
      Hashtbl.add rank v i)
    f;
  let sigma = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      match Hashtbl.find_opt rank v with
      | None -> invalid_arg "Permutation.of_two_bijections: value sets differ"
      | Some rv ->
        if sigma.(i) <> -1 then
          invalid_arg "Permutation.of_two_bijections: g not injective";
        sigma.(i) <- rv)
    g;
  (* sigma maps index i to rank of g(i); we want sigma'(rank of f(i)) = rank
     of g(i), i.e. sigma' = sigma ∘ (rank∘f)⁻¹, and rank∘f = identity. *)
  of_array sigma

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let out = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let rec walk v acc =
        if v = start && acc <> [] then List.rev acc
        else begin
          seen.(v) <- true;
          walk p.(v) (v :: acc)
        end
      in
      out := walk start [] :: !out
    end
  done;
  List.rev !out

let cycle_type p =
  let lengths = List.map List.length (cycles p) in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    lengths;
  Hashtbl.fold (fun l m acc -> (l, m) :: acc) tbl [] |> List.sort compare

let pp ppf p =
  let pp_cycle ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
         Format.pp_print_int)
      c
  in
  Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_cycle ppf (cycles p)
