lib/util/permutation.mli: Format
