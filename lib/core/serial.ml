open Wl_digraph
module Dag = Wl_dag.Dag
module Jsonx = Wl_util.Jsonx

(* Version 2 only adds the [wl 2] header line; the body grammar is shared.
   Version 1 (headerless) output is kept byte-identical to the historical
   format so checked-in fixtures and golden files stay stable. *)
let current_version = 2

let body_to_buffer buf inst =
  let g = Instance.graph inst in
  Buffer.add_string buf (Printf.sprintf "dag %d\n" (Digraph.n_vertices g));
  Digraph.iter_vertices
    (fun v ->
      let l = Digraph.label g v in
      if l <> Printf.sprintf "v%d" v then
        Buffer.add_string buf (Printf.sprintf "vlabel %d %s\n" v l))
    g;
  Digraph.iter_arcs
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "arc %d %d\n" u v))
    g;
  List.iter
    (fun p ->
      Buffer.add_string buf "path";
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) (Dipath.vertices p);
      Buffer.add_char buf '\n')
    (Instance.paths_list inst)

let to_string ?(version = current_version) inst =
  if version < 1 || version > current_version then
    invalid_arg (Printf.sprintf "Serial.to_string: unknown version %d" version);
  let buf = Buffer.create 1024 in
  if version >= 2 then Buffer.add_string buf (Printf.sprintf "wl %d\n" version);
  body_to_buffer buf inst;
  Buffer.contents buf

type parse_state = {
  mutable version : int option;
  mutable graph : Digraph.t option;
  mutable paths_rev : (int * int list) list; (* line, vertex sequence *)
}

let of_string text =
  let st = { version = None; graph = None; paths_rev = [] } in
  let err lineno msg = Error (Error.Parse { line = lineno; msg }) in
  let lines = String.split_on_char '\n' text in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err lineno (Printf.sprintf "not an integer: %S" s)
  in
  let finish () =
    match st.graph with
    | None -> Error (Error.Parse { line = 0; msg = "missing 'dag <n>' header" })
    | Some g -> (
      match Dag.of_digraph g with
      | Error msg -> Error (Error.Cyclic msg)
      | Ok dag ->
        let rec build acc = function
          | [] -> Ok (Instance.make dag (List.rev acc))
          | (lineno, verts) :: rest -> (
            match Dipath.of_vertices g verts with
            | Ok p -> build (p :: acc) rest
            | Error msg ->
              Error
                (Error.Invalid_path (Printf.sprintf "line %d: bad path: %s" lineno msg)))
        in
        build [] (List.rev st.paths_rev))
  in
  let rec go lineno = function
    | [] -> finish ()
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go (lineno + 1) rest
      | "wl" :: [ v ] -> (
        match parse_int lineno v with
        | Error e -> Error e
        | Ok v ->
          if st.version <> None then err lineno "duplicate 'wl' header"
          else if st.graph <> None then err lineno "'wl' header must come before 'dag'"
          else if v < 1 || v > current_version then Error (Error.Unsupported_version v)
          else begin
            st.version <- Some v;
            go (lineno + 1) rest
          end)
      | "dag" :: [ n ] -> (
        match parse_int lineno n with
        | Error e -> Error e
        | Ok n ->
          if st.graph <> None then err lineno "duplicate 'dag' header"
          else begin
            let g = Digraph.create () in
            Digraph.add_vertices g n;
            st.graph <- Some g;
            go (lineno + 1) rest
          end)
      | "vlabel" :: i :: name :: [] -> (
        match (st.graph, parse_int lineno i) with
        | None, _ -> err lineno "'vlabel' before 'dag'"
        | _, Error e -> Error e
        | Some g, Ok i ->
          if i < 0 || i >= Digraph.n_vertices g then err lineno "vertex out of range"
          else begin
            Digraph.set_label g i name;
            go (lineno + 1) rest
          end)
      | "arc" :: u :: [ v ] -> (
        match (st.graph, parse_int lineno u, parse_int lineno v) with
        | None, _, _ -> err lineno "'arc' before 'dag'"
        | _, Error e, _ | _, _, Error e -> Error e
        | Some g, Ok u, Ok v -> (
          match Digraph.add_arc g u v with
          | _ -> go (lineno + 1) rest
          | exception Invalid_argument msg -> err lineno msg))
      | "path" :: verts -> (
        if st.graph = None then err lineno "'path' before 'dag'"
        else
          let rec ints acc = function
            | [] -> Ok (List.rev acc)
            | w :: ws -> (
              match parse_int lineno w with
              | Ok v -> ints (v :: acc) ws
              | Error e -> Error e)
          in
          match ints [] verts with
          | Error e -> Error e
          | Ok vs ->
            st.paths_rev <- (lineno, vs) :: st.paths_rev;
            go (lineno + 1) rest)
      | word :: _ -> err lineno (Printf.sprintf "unknown directive %S" word))
  in
  go 1 lines

let of_string_exn text = Error.get_exn (of_string text)

(* --- JSON mirror ----------------------------------------------------------- *)

let to_json ?pretty inst =
  let g = Instance.graph inst in
  let labels =
    let acc = ref [] in
    Digraph.iter_vertices
      (fun v ->
        let l = Digraph.label g v in
        if l <> Printf.sprintf "v%d" v then
          acc := (string_of_int v, Jsonx.Str l) :: !acc)
      g;
    List.rev !acc
  in
  let arcs =
    List.map (fun (u, v) -> Jsonx.Arr [ Jsonx.Int u; Jsonx.Int v ]) (Digraph.arcs g)
  in
  let paths =
    List.map
      (fun p -> Jsonx.Arr (List.map (fun v -> Jsonx.Int v) (Dipath.vertices p)))
      (Instance.paths_list inst)
  in
  Jsonx.to_string ?pretty
    (Jsonx.Obj
       ([
          ("format", Jsonx.Str "wl-instance");
          ("version", Jsonx.Int current_version);
          ("vertices", Jsonx.Int (Digraph.n_vertices g));
        ]
       @ (if labels = [] then [] else [ ("labels", Jsonx.Obj labels) ])
       @ [ ("arcs", Jsonx.Arr arcs); ("paths", Jsonx.Arr paths) ]))

let json_err msg = Error (Error.Parse { line = 0; msg })

let int_pair_of_json what j =
  match Jsonx.to_list j with
  | Some [ a; b ] -> (
    match (Jsonx.to_int a, Jsonx.to_int b) with
    | Some u, Some v -> Ok (u, v)
    | _ -> json_err (Printf.sprintf "%s: expected a pair of integers" what))
  | _ -> json_err (Printf.sprintf "%s: expected a pair of integers" what)

let int_list_of_json what j =
  match Jsonx.to_list j with
  | None -> json_err (Printf.sprintf "%s: expected an array of integers" what)
  | Some xs ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match Jsonx.to_int x with
        | Some v -> go (v :: acc) rest
        | None -> json_err (Printf.sprintf "%s: expected an array of integers" what))
    in
    go [] xs

let rec map_result f = function
  | [] -> Ok []
  | x :: rest -> (
    match f x with
    | Error _ as e -> e
    | Ok y -> ( match map_result f rest with Ok ys -> Ok (y :: ys) | Error _ as e -> e))

let of_json text =
  match Jsonx.parse text with
  | Error msg -> json_err msg
  | Ok (Jsonx.Obj _ as json) -> (
    (match Jsonx.member "format" json with
    | Some (Jsonx.Str "wl-instance") | None -> Ok ()
    | Some (Jsonx.Str other) -> json_err (Printf.sprintf "unknown format %S" other)
    | Some _ -> json_err "\"format\" must be a string")
    |> function
    | Error _ as e -> e
    | Ok () -> (
      (match Jsonx.member "version" json with
      | None -> Ok ()
      | Some v -> (
        match Jsonx.to_int v with
        | Some v when v >= 1 && v <= current_version -> Ok ()
        | Some v -> Error (Error.Unsupported_version v)
        | None -> json_err "\"version\" must be an integer"))
      |> function
      | Error _ as e -> e
      | Ok () -> (
        match Option.bind (Jsonx.member "vertices" json) Jsonx.to_int with
        | None -> json_err "missing \"vertices\" count"
        | Some n when n < 0 -> json_err "\"vertices\" must be non-negative"
        | Some n -> (
          let arcs_json =
            match Jsonx.member "arcs" json with
            | None -> Ok []
            | Some a -> (
              match Jsonx.to_list a with
              | Some xs -> map_result (int_pair_of_json "arc") xs
              | None -> json_err "\"arcs\" must be an array")
          in
          match arcs_json with
          | Error e -> Error e
          | Ok arcs -> (
            let paths_json =
              match Jsonx.member "paths" json with
              | None -> Ok []
              | Some p -> (
                match Jsonx.to_list p with
                | Some xs -> map_result (int_list_of_json "path") xs
                | None -> json_err "\"paths\" must be an array")
            in
            match paths_json with
            | Error e -> Error e
            | Ok paths -> (
              let g = Digraph.create () in
              Digraph.add_vertices g n;
              let rec add_arcs = function
                | [] -> Ok ()
                | (u, v) :: rest -> (
                  match Digraph.add_arc g u v with
                  | _ -> add_arcs rest
                  | exception Invalid_argument msg ->
                    json_err (Printf.sprintf "arc [%d, %d]: %s" u v msg))
              in
              match add_arcs arcs with
              | Error e -> Error e
              | Ok () -> (
                (match Jsonx.member "labels" json with
                | None -> Ok ()
                | Some (Jsonx.Obj fields) ->
                  let rec set = function
                    | [] -> Ok ()
                    | (k, l) :: rest -> (
                      match (int_of_string_opt k, Jsonx.to_str l) with
                      | Some v, Some label when v >= 0 && v < n ->
                        Digraph.set_label g v label;
                        set rest
                      | _ -> json_err (Printf.sprintf "bad label entry %S" k))
                  in
                  set fields
                | Some _ -> json_err "\"labels\" must be an object")
                |> function
                | Error _ as e -> e
                | Ok () -> Instance.of_vertex_seqs g paths)))))))
  | Ok _ -> json_err "expected a JSON object"

(* --- files ----------------------------------------------------------------- *)

let write_file ?version path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?version inst))

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Error.Io msg)
  | text ->
    (* Sniff the format: a JSON document starts with '{'. *)
    let rec first_printable i =
      if i >= String.length text then None
      else
        match text.[i] with
        | ' ' | '\t' | '\n' | '\r' -> first_printable (i + 1)
        | c -> Some c
    in
    if first_printable 0 = Some '{' then of_json text else of_string text
