lib/util/vec.mli:
