(** From requests to dipaths (the "R" of RWA).

    The paper studies wavelength assignment for a {e given} routing; this
    module supplies the routing stage that chooses one.  The full pipeline
    ({!select}) is k-shortest dipath enumeration per request (Yen's
    algorithm over the DAG, deterministic tie-breaking), a greedy seed by
    the lexicographic bottleneck Dijkstra ({!bottleneck_path}), then local
    search swapping single requests across their [k] alternatives until the
    maximum arc load stops improving.  The chosen family feeds
    {!Solver.solve} / the engine directly, and {!lower_bound} gives the
    routing-aware (global-packing-number style) floor
    [lower_bound <= load of any routing <= w].

    Simpler routers (unique dipath on UPP-DAGs, hop-count shortest, greedy
    online min-load) and the classic request families (all-to-all,
    multicast, random) remain for examples and benches.

    Every fallible entry point reports a structured {!Error.t}: an
    unroutable request is [Invalid_path], a request naming a vertex outside
    the graph is [Bad_index], request-file syntax errors are [Parse]. *)

open Wl_digraph

type request = Digraph.vertex * Digraph.vertex

val collect_routes :
  (int -> request -> Dipath.t option) ->
  request list ->
  (Dipath.t list, Error.t) result
(** Route every request with the given per-request router (the [int] is the
    request's position).  The first unroutable request aborts with
    [Error (Invalid_path _)] naming the position and endpoints — the
    structured error the CLI maps to its exit code. *)

val shortest_dipath :
  Wl_dag.Dag.t -> Digraph.vertex -> Digraph.vertex -> Dipath.t option
(** The hop-count-shortest dipath from [src] to [dst]; among the shortest,
    the lexicographically smallest vertex sequence (so the result is a
    deterministic function of the graph, not of adjacency-list order).
    [None] when [dst] is unreachable or [src = dst]. *)

val route_unique :
  Wl_dag.Dag.t -> request list -> (Dipath.t list, Error.t) result
(** Routes every request along the unique dipath (UPP-DAGs; on non-UPP DAGs
    an arbitrary dipath is taken).  Fails on an unroutable request. *)

val route_shortest :
  Wl_dag.Dag.t -> request list -> (Dipath.t list, Error.t) result
(** {!shortest_dipath} per request: hop-count-shortest, deterministic. *)

val route_min_load :
  Wl_dag.Dag.t -> request list -> (Dipath.t list, Error.t) result
(** Greedy load-aware routing: requests are routed one by one along a path
    minimizing (in lexicographic order) the maximum arc load after routing,
    then hop count — the online heuristic; {!select} is the offline
    pipeline that additionally searches over alternatives. *)

val min_load_router :
  Wl_dag.Dag.t -> request -> (Dipath.t, Error.t) result
(** A stateful online router: each call routes one request on a path
    minimizing (bottleneck load after routing, hop count) given {e all
    previously routed requests}, and charges the chosen path's arcs.
    [route_min_load] is this router folded over a request list. *)

(** {1 The routing stage: enumerate, seed, search} *)

val bottleneck_path :
  Wl_dag.Dag.t ->
  int array ->
  Digraph.vertex ->
  Digraph.vertex ->
  Dipath.t option
(** [bottleneck_path d load src dst]: a dipath whose bottleneck — the
    maximum of [load.(a)] over its arcs — is minimum over all [src]-[dst]
    dipaths, computed by a label-setting Dijkstra on (bottleneck, hops)
    labels.  The hop component only breaks ties between labels (one label
    per vertex cannot certify hop-minimality among min-bottleneck paths);
    the bottleneck value itself is exact.  [load] is indexed by arc id and
    is not modified.  This is the greedy seeding rule of {!select}. *)

val compare_route : Dipath.t -> Dipath.t -> int
(** The total order of the enumeration: hop count, ties by lexicographic
    vertex sequence. *)

val k_shortest :
  ?k:int -> Wl_dag.Dag.t -> Digraph.vertex -> Digraph.vertex -> Dipath.t list
(** [k_shortest ~k d src dst]: up to [k] (default 8) distinct dipaths from
    [src] to [dst], sorted by {!compare_route} — Yen's algorithm with the
    lexicographically-smallest shortest path as the spur routine, so the
    output is a deterministic function of the graph.  Duplicate-free, and
    complete (every dipath appears) when [k] is at least the number of
    [src]-[dst] dipaths.  [[]] when unreachable or [src = dst]. *)

val lower_bound : Wl_dag.Dag.t -> request list -> int
(** A routing-aware lower bound on the maximum arc load of {e any} routing
    of the requests (hence, via [pi <= w], on the wavelength count of any
    RWA solution) — the computable side of the global packing number of
    Lo–Zhang–Wong–Fu: the maximum of

    {ul
    {- the volume bound [ceil (sum of shortest-path hops / number of
       arcs)], and}
    {- the forced-arc bound: the largest number of requests all of whose
       dipaths traverse one common arc (detected by saturating path
       counting; a saturated count conservatively reads as avoidable).}}

    Unroutable requests contribute nothing (the bound stays valid for the
    routable sub-multiset). *)

type selection = {
  requests : request array;  (** in input order *)
  routes : Dipath.t array;  (** the chosen dipath per request *)
  k : int;  (** alternatives requested per request *)
  n_alternatives : int;  (** total routes enumerated, seeds included *)
  seed_load : int;  (** max arc load of the greedy seed *)
  max_load : int;  (** after local search; [<= seed_load] always *)
  lower_bound : int;  (** {!lower_bound} of the request multiset *)
  swaps : int;  (** improving swaps the local search applied *)
  rounds : int;  (** full sweeps until the objective stopped improving *)
}
(** The result of the full routing stage.  The chosen family achieves
    [max_load]; [lower_bound <= max_load] bounds how far from
    routing-optimal it can be, and [pi = max_load] for the instance built
    from it. *)

val select :
  ?k:int ->
  ?max_rounds:int ->
  Wl_dag.Dag.t ->
  request list ->
  (selection, Error.t) result
(** The full routing stage: enumerate [k] alternatives per request
    ({!k_shortest}), seed greedily with {!bottleneck_path} (the seed route
    joins the request's alternative set when Yen's cutoff missed it), then
    local search: sweep the requests, re-routing single requests onto an
    alternative whenever that strictly lowers (max arc load, number of arcs
    attaining it); stop after a sweep with no improvement or [max_rounds]
    (default 64) sweeps.  Strict descent guarantees
    [max_load <= seed_load].  Deterministic.  Errors: [Bad_index] for a
    request vertex outside the graph, [Invalid_path] for an unroutable
    request (including [x = y]). *)

val instance_of_selection : Wl_dag.Dag.t -> selection -> Instance.t
(** Wrap the chosen family, in request order, as an instance (the input to
    {!Solver.solve}). *)

(** {1 Request files}

    A line-oriented text format in the spirit of the instance format
    ([lib/core/serial.mli]); [#] starts a comment, blank lines are ignored:

    {v
    wlreq 1              # optional version header
    req 0 5
    req 2 7
    v} *)

val requests_to_string : request list -> string

val requests_of_string : string -> (request list, Error.t) result
(** Errors: [Parse] with the 1-based line number,
    [Unsupported_version] for a [wlreq N] header beyond 1. *)

val read_requests_file : string -> (request list, Error.t) result
(** I/O failures surface as [Io]. *)

(** {1 Request families} *)

val all_to_all : Wl_dag.Dag.t -> request list
(** Every ordered pair admitting a dipath. *)

val multicast : Wl_dag.Dag.t -> Digraph.vertex -> request list
(** From one source to every vertex reachable from it. *)

val route_multicast_tree : Wl_dag.Dag.t -> Digraph.vertex -> Dipath.t list
(** Routes the full multicast from a source along a BFS tree: all routes
    then live on a rooted tree, which has no internal cycle, so Theorem 1
    colors them with exactly the load — realizing (by routing choice) the
    multicast equality [w = pi] the paper cites from
    Beauquier–Hell–Pérennes.  Returns one dipath per reachable vertex
    (empty when nothing is reachable). *)

val random_requests : Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> request list
(** [random_requests rng d k] draws [k] uniformly random routable ordered
    pairs (with repetition).  Returns fewer when the DAG has no routable
    pair at all. *)

val instance_of :
  Wl_dag.Dag.t ->
  (Wl_dag.Dag.t -> request list -> (Dipath.t list, Error.t) result) ->
  request list ->
  (Instance.t, Error.t) result
(** Routes and wraps into an instance. *)
