open Wl_digraph
module Dag = Wl_dag.Dag
module Internal_cycle = Wl_dag.Internal_cycle
module Upp = Wl_dag.Upp
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

let c_splits = Metrics.counter "thm6.splits"
let c_pad = Metrics.counter "thm6.pad_paths"
let c_fresh = Metrics.counter "thm6.fresh_colors"
let c_repairs = Metrics.counter "thm6.repair_recolors"
let c_sweep = Metrics.counter "thm6.sweep_recolors"
let h_tuples = Metrics.histogram "thm6.tuple_len"

(* Slack of the paper's bound at each split: [ceil(4 pi/3) - w].  Negative
   observations mark bound violations (possible only on multiset families
   the proof's Facts do not cover) — [min] in the summary exposes them. *)
let h_slack = Metrics.histogram "thm6.bound_slack"

exception Not_applicable of string

type stats = {
  pi : int;
  split_arc : Digraph.arc;
  cycle_type : (int * int) list;
  fresh_colors : int;
  n_colors : int;
}

let upper_bound pi = ((4 * pi) + 2) / 3

(* The split graph: G minus (a, b), plus a -> s and t -> b. Vertex ids of G
   are preserved; s and t are the two new last vertices. *)
let split_graph g ab_src ab_dst =
  let n = Digraph.n_vertices g in
  let g' = Digraph.create () in
  for v = 0 to n - 1 do
    ignore (Digraph.add_vertex ~label:(Digraph.label g v) g')
  done;
  let s = Digraph.add_vertex ~label:"s" g' in
  let t = Digraph.add_vertex ~label:"t" g' in
  Digraph.iter_arcs
    (fun _ u v -> if not (u = ab_src && v = ab_dst) then ignore (Digraph.add_arc g' u v))
    g;
  ignore (Digraph.add_arc g' ab_src s);
  ignore (Digraph.add_arc g' t ab_dst);
  (g', s, t)

(* --- Re-pairing of half colors -------------------------------------------

   The split coloring assigns each through-dipath a first-half color (the
   injection [f]) and a second-half color ([g]).  Identical halves (copies
   of the same dipath, or distinct dipaths agreeing on one side of the split
   arc) are interchangeable, so colors may be permuted freely within each
   group of identical first halves, and within each group of identical
   second halves.

   We exploit that freedom to rebuild the pairing out of tuples that visit
   each half-shape group at most once: consider the multigraph whose nodes
   are the half-shape groups (plus one virtual "outside" node) and whose
   arcs are (i) one arc per through-member from its first-half group to its
   second-half group, (ii) one arc per color in [image f ∩ image g] from
   the second-half group that owns it to the first-half group that owns it,
   and (iii) arcs through the outside node for colors in only one image.
   The multigraph is balanced, so its arc set decomposes into vertex-simple
   cycles; cycles avoiding the outside node are the paper's sigma-cycles,
   cycles through it are "chains" (they only arise when the sub-coloring
   used more than pi colors, i.e. in the multi-cycle recursion).  Within
   such a tuple all second-half shapes are distinct, which is what the
   repair step's disjointness argument (the paper's Facts 1 and 2, valid
   for half shapes diverging right after the split arc) needs. *)

type tuple = { members : int array; colors : int array }

type tuple_kind =
  | Cycle of tuple
      (* member m_l consumes (first half) colors.(l-1 mod p) and emits
         (second half) colors.(l) *)
  | Chain of tuple
      (* colors has length p+1: member m_l consumes colors.(l) and emits
         colors.(l+1); colors.(0) is consumed only, colors.(p) emitted
         only *)

let decompose ~pi ~n_colors ~fh_gid ~sh_gid ~f ~g_map =
  let owner_fh = Array.make n_colors (-1) and owner_sh = Array.make n_colors (-1) in
  Array.iteri (fun j c -> owner_fh.(c) <- fh_gid.(j)) f;
  Array.iteri (fun j c -> owner_sh.(c) <- sh_gid.(j)) g_map;
  let member_used = Array.make pi false in
  let color_used = Array.make n_colors false in
  let tuples = ref [] in
  (* Fixed-point pre-pass (the paper's C1): member m and color c owned by
     both of m's groups. *)
  for m = 0 to pi - 1 do
    if not member_used.(m) then begin
      let rec find c =
        if c >= n_colors then None
        else if
          (not color_used.(c))
          && owner_fh.(c) = fh_gid.(m)
          && owner_sh.(c) = sh_gid.(m)
        then Some c
        else find (c + 1)
      in
      match find 0 with
      | Some c ->
        member_used.(m) <- true;
        color_used.(c) <- true;
        tuples := Cycle { members = [| m |]; colors = [| c |] } :: !tuples
      | None -> ()
    end
  done;
  (* Nodes: 2*gid for first-half groups, 2*gid+1 for second-half groups,
     -1 for the virtual outside node. *)
  let node_of_fh gid = 2 * gid
  and node_of_sh gid = (2 * gid) + 1
  and outside = -1 in
  let adj : (int, _ list ref) Hashtbl.t = Hashtbl.create 32 in
  let out_list u =
    match Hashtbl.find_opt adj u with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add adj u l;
      l
  in
  let add_arc u payload = out_list u := payload :: !(out_list u) in
  for m = 0 to pi - 1 do
    if not member_used.(m) then add_arc (node_of_fh fh_gid.(m)) (`Member m)
  done;
  for c = 0 to n_colors - 1 do
    if not color_used.(c) then begin
      match (owner_fh.(c) >= 0, owner_sh.(c) >= 0) with
      | true, true -> add_arc (node_of_sh owner_sh.(c)) (`Color c)
      | true, false -> add_arc outside (`Free_in c)
      | false, true -> add_arc (node_of_sh owner_sh.(c)) (`Free_out c)
      | false, false -> ()
    end
  done;
  (* Balance the outside node: it already has |F \ G| out-arcs (`Free_in)
     and |G \ F| in-arcs (`Free_out); the two counts are equal because f
     and g are injections of the same domain. *)
  let head_of = function
    | `Member m -> node_of_sh sh_gid.(m)
    | `Color c -> node_of_fh owner_fh.(c)
    | `Free_in c -> node_of_fh owner_fh.(c)
    | `Free_out _ -> outside
  in
  let arc_used = Hashtbl.create 32 in
  let next_unused u =
    match Hashtbl.find_opt adj u with
    | None -> None
    | Some l -> List.find_opt (fun pl -> not (Hashtbl.mem arc_used pl)) !l
  in
  (* Extract vertex-simple cycles: walk without reusing arcs until a node
     repeats; balance guarantees the walk never gets stuck. *)
  let extract_from start =
    let rec walk path u =
      match next_unused u with
      | None -> invalid_arg "Theorem6: unbalanced transition multigraph"
      | Some payload ->
        let v = head_of payload in
        let path = (u, payload) :: path in
        if List.exists (fun (w, _) -> w = v) path then begin
          let rec take acc = function
            | [] -> acc
            | (w, pl) :: rest ->
              let acc = pl :: acc in
              if w = v then acc else take acc rest
          in
          let cyc = take [] path in
          List.iter (fun pl -> Hashtbl.replace arc_used pl ()) cyc;
          cyc
        end
        else walk path v
    in
    walk [] start
  in
  let remaining () =
    let found = ref None in
    Hashtbl.iter
      (fun u l ->
        if !found = None
           && List.exists (fun pl -> not (Hashtbl.mem arc_used pl)) !l
        then found := Some u)
      adj;
    !found
  in
  let tuple_of_walk cyc =
    (* Rotate a chain walk to start at its `Free_in, a cycle walk to start
       at a member. *)
    let is_chain = List.exists (function `Free_in _ | `Free_out _ -> true | _ -> false) cyc in
    let rec rotate cyc guard =
      if guard = 0 then invalid_arg "Theorem6: malformed walk";
      match cyc with
      | (`Free_in _ :: _) when is_chain -> cyc
      | (`Member _ :: _) when not is_chain -> cyc
      | x :: rest -> rotate (rest @ [ x ]) (guard - 1)
      | [] -> []
    in
    let cyc = rotate cyc (List.length cyc + 1) in
    let members =
      List.filter_map (function `Member m -> Some m | _ -> None) cyc
      |> Array.of_list
    in
    if is_chain then begin
      (* Walk: Free_in c0; Member m1; Color c1; ...; Member mp; Free_out cp.
         Colors in order c0 .. cp. *)
      let colors =
        List.filter_map
          (function
            | `Free_in c | `Color c | `Free_out c -> Some c
            | `Member _ -> None)
          cyc
        |> Array.of_list
      in
      Chain { members; colors }
    end
    else begin
      (* Walk: Member m1; Color c1; ...; Member mp; Color cp. *)
      let colors =
        List.filter_map (function `Color c -> Some c | _ -> None) cyc
        |> Array.of_list
      in
      Cycle { members; colors }
    end
  in
  let rec drain () =
    match remaining () with
    | None -> ()
    | Some u ->
      let cyc = extract_from u in
      tuples := tuple_of_walk cyc :: !tuples;
      drain ()
  in
  drain ();
  List.rev !tuples

(* --- Main algorithm ------------------------------------------------------ *)

let check_hypotheses ~exact_one dag =
  if not (Upp.is_upp dag) then raise (Not_applicable "DAG is not UPP");
  let c = Internal_cycle.count_independent dag in
  if exact_one && c <> 1 then
    raise
      (Not_applicable
         (Printf.sprintf "expected exactly one internal cycle, found %d" c));
  if (not exact_one) && c < 1 then
    raise (Not_applicable "no internal cycle: use Theorem 1")

(* Splits the max-load cycle arc, colors the split instance with [subcolor],
   and re-glues.  This is the engine shared by Theorem 6 proper ([subcolor]
   = Theorem 1) and the multi-cycle recursion. *)
let split_and_glue ~subcolor inst =
  let dag = Instance.dag inst in
  let g = Instance.graph inst in
  let n_orig = Instance.n_paths inst in
  let pi0 = Load.pi inst in
  if pi0 = 0 then
    ( Array.make n_orig 0,
      { pi = 0; split_arc = -1; cycle_type = []; fresh_colors = 0; n_colors = 0 } )
  else begin
    Metrics.incr c_splits;
    let can =
      match Internal_cycle.find_canonical dag with
      | Some can -> can
      | None -> raise (Not_applicable "no internal cycle: use Theorem 1")
    in
    let cycle_arcs = Internal_cycle.arcs_of_canonical can in
    let ab = Load.max_load_arc_among inst cycle_arcs in
    let a, b = Digraph.arc_endpoints g ab in
    (* Pad so that the split arc carries the full load pi. *)
    let pad = pi0 - Load.arc_load inst ab in
    Metrics.add c_pad pad;
    let padded =
      if pad = 0 then inst
      else Instance.add_paths inst (List.init pad (fun _ -> Dipath.make g [ a; b ]))
    in
    let n_padded = Instance.n_paths padded in
    let g', s, t = split_graph g a b in
    let dag' = Dag.of_digraph_exn g' in
    let through = ref [] and outside = ref [] in
    for i = n_padded - 1 downto 0 do
      if Dipath.mem_arc (Instance.path padded i) ab then through := i :: !through
      else outside := i :: !outside
    done;
    let through = Array.of_list !through in
    let pi = Array.length through in
    assert (pi = pi0);
    (* Split family: outside paths unchanged, through paths cut in two. *)
    let split_paths = ref [] and tags = ref [] in
    let add_path p tag =
      split_paths := p :: !split_paths;
      tags := tag :: !tags
    in
    List.iter
      (fun i ->
        add_path (Dipath.make g' (Dipath.vertices (Instance.path padded i))) (`Outside i))
      !outside;
    let half_vertices = Array.make pi ([], []) in
    Array.iteri
      (fun j i ->
        let verts = Dipath.vertices (Instance.path padded i) in
        let rec cut acc = function
          | [] -> invalid_arg "Theorem6: split arc not on path"
          | v :: rest ->
            if v = a then (List.rev (s :: v :: acc), t :: rest)
            else cut (v :: acc) rest
        in
        let first_verts, second_verts = cut [] verts in
        half_vertices.(j) <- (first_verts, second_verts);
        add_path (Dipath.make g' first_verts) (`First j);
        add_path (Dipath.make g' second_verts) (`Second j))
      through;
    let split_inst = Instance.make dag' (List.rev !split_paths) in
    let tags = Array.of_list (List.rev !tags) in
    let split_colors = Trace.with_span "thm6.subcolor" (fun () -> subcolor split_inst) in
    let n_sub_colors =
      Array.fold_left (fun acc c -> max acc (c + 1)) pi split_colors
    in
    (* Half-shape groups and the two color injections. *)
    let fh_groups = Hashtbl.create 16 and sh_groups = Hashtbl.create 16 in
    let gid table key =
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length table in
        Hashtbl.add table key id;
        id
    in
    let fh_gid = Array.make pi (-1) and sh_gid = Array.make pi (-1) in
    Array.iteri
      (fun j (fv, sv) ->
        fh_gid.(j) <- gid fh_groups fv;
        sh_gid.(j) <- gid sh_groups sv)
      half_vertices;
    (* Damage classes.  The G-parts of second halves are dipaths out of [b];
       in a UPP-DAG they form a prefix tree, and two of them are
       arc-disjoint iff their first arcs differ — only then are their
       damaged outside dipaths guaranteed disjoint.  So the repair-sharing
       granularity is the first arc after [b] (resp. the last arc before
       [a]); [-1] marks an empty part (a padding copy), which can damage
       nothing. *)
    let sh_class = Array.make pi (-1) and fh_class = Array.make pi (-1) in
    Array.iteri
      (fun j (fv, sv) ->
        (match sv with
        | _t :: b' :: next :: _ ->
          ignore b';
          sh_class.(j) <- Option.get (Digraph.find_arc g b next)
        | _ -> ());
        let rec last_two = function
          | [ z; a'; _s ] ->
            ignore a';
            fh_class.(j) <- Option.get (Digraph.find_arc g z a)
          | _ :: rest -> last_two rest
          | [] -> ()
        in
        last_two fv)
      half_vertices;
    let f = Array.make pi (-1) and g_map = Array.make pi (-1) in
    Array.iteri
      (fun idx tag ->
        match tag with
        | `First j -> f.(j) <- split_colors.(idx)
        | `Second j -> g_map.(j) <- split_colors.(idx)
        | `Outside _ -> ())
      tags;
    let tuples =
      Trace.with_span "thm6.decompose" (fun () ->
          decompose ~pi ~n_colors:n_sub_colors ~fh_gid ~sh_gid ~f ~g_map)
    in
    if Metrics.enabled () then
      List.iter
        (fun t ->
          match t with
          | Cycle { members; _ } | Chain { members; _ } ->
            Metrics.observe h_tuples (Array.length members))
        tuples;
    let cycle_type =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let l =
            match t with
            | Cycle { members; _ } | Chain { members; _ } -> Array.length members
          in
          Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
        tuples;
      Hashtbl.fold (fun l m acc -> (l, m) :: acc) tbl [] |> List.sort compare
    in
    (* Assignment over the padded family in G.  Outside paths inherit their
       split colors. *)
    let final = Array.make n_padded (-1) in
    Array.iteri
      (fun idx tag ->
        match tag with
        | `Outside i -> final.(i) <- split_colors.(idx)
        | `First _ | `Second _ -> ())
      tags;
    let fresh = ref 0 in
    let next_fresh () =
      let c = n_sub_colors + !fresh in
      incr fresh;
      Metrics.incr c_fresh;
      c
    in
    (* Gluings: (member rank, new color, lazy repair color).  Repair colors
       are allocated per (tuple, damage class): distinct classes within a
       tuple share one color, same-class repeats and cross-tuple damage get
       their own.  Chains allocate even their first repair lazily (their
       glued colors are all palette colors, so a chain often needs none). *)
    let gluings = ref [] in
    let glue m color repair = gluings := (m, color, repair) :: !gluings in
    let no_repair = fun () -> -1 in
    let lazy_fresh () =
      let cell = ref (-1) in
      fun () ->
        if !cell < 0 then cell := next_fresh ();
        !cell
    in
    let tuple_repairs gamma =
      (* gamma: the tuple's shared repair color (eager for p-cycles, lazy
         for chains).  Distinct damage classes share it; a same-class repeat
         gets its own fresh color — but only when a repair actually
         happens, so phantom damage costs nothing. *)
      let seen = Hashtbl.create 4 in
      fun cls ->
        let cell = ref None in
        fun () ->
          match !cell with
          | Some c -> c
          | None ->
            let c =
              if cls >= 0 && Hashtbl.mem seen cls then next_fresh ()
              else begin
                if cls >= 0 then Hashtbl.add seen cls ();
                gamma ()
              end
            in
            cell := Some c;
            c
    in
    let fixed, twos, longer, chains =
      List.fold_left
        (fun (fx, tw, lg, ch) t ->
          match t with
          | Chain c -> (fx, tw, lg, c :: ch)
          | Cycle c -> (
            match Array.length c.members with
            | 1 -> (c :: fx, tw, lg, ch)
            | 2 -> (fx, c :: tw, lg, ch)
            | _ -> (fx, tw, c :: lg, ch)))
        ([], [], [], []) tuples
    in
    List.iter (fun c -> glue c.members.(0) c.colors.(0) no_repair) fixed;
    (* Chains: every member keeps its consumed (first-half) color; lazy
       repairs. *)
    List.iter
      (fun c ->
        let repair = tuple_repairs (lazy_fresh ()) in
        Array.iteri
          (fun l m ->
            let get_repair = repair sh_class.(m) in
            glue m c.colors.(l) get_repair)
          c.members)
      chains;
    (* p-cycles (p >= 3): m_1 takes a fresh color (freeing its first-half
       color), the rest keep their first-half colors.  The rotation is free,
       so put the fresh color on a member of the most repeated damage class:
       every same-class repeat among the damaged members costs an extra
       fresh color. *)
    let rotate_to_heaviest_class c =
      let p = Array.length c.members in
      let count cls =
        if cls < 0 then 0
        else
          Array.fold_left
            (fun acc m -> if sh_class.(m) = cls then acc + 1 else acc)
            0 c.members
      in
      let best = ref 0 and best_count = ref (-1) in
      Array.iteri
        (fun l m ->
          let k = count sh_class.(m) in
          if k > !best_count then begin
            best := l;
            best_count := k
          end)
        c.members;
      let r = !best in
      {
        members = Array.init p (fun l -> c.members.((l + r) mod p));
        colors = Array.init p (fun l -> c.colors.((l + r) mod p));
      }
    in
    let freed = ref [] in
    List.iter
      (fun c ->
        let c = rotate_to_heaviest_class c in
        let p = Array.length c.members in
        let gamma = next_fresh () in
        let repair = tuple_repairs (fun () -> gamma) in
        glue c.members.(0) gamma no_repair;
        let damaged = ref [] in
        for l = 1 to p - 1 do
          let m = c.members.(l) in
          glue m c.colors.(l - 1) (repair sh_class.(m));
          if sh_class.(m) >= 0 then damaged := sh_class.(m) :: !damaged
        done;
        freed := (ref (Some c.colors.(p - 1)), gamma, ref !damaged) :: !freed)
      longer;
    (* 2-cycles, paired when their damage classes allow sharing one fresh
       color; a leftover merges with a p-cycle when classes allow, else it
       stands alone. *)
    let sh_of c l = sh_class.(c.members.(l)) in
    let fcolor c l = c.colors.(1 - l) in
    let pair_gluings a ga b =
      let keep_a = 1 - ga in
      let groups =
        List.filter (fun x -> x >= 0) [ sh_of a keep_a; sh_of b 0; sh_of b 1 ]
      in
      let rec distinct = function
        | [] -> true
        | x :: rest -> (not (List.mem x rest)) && distinct rest
      in
      if not (distinct groups) then None
      else
        Some
          (fun gamma ->
            let repair = tuple_repairs (fun () -> gamma) in
            glue a.members.(ga) gamma no_repair;
            glue a.members.(keep_a) (fcolor a keep_a) (repair (sh_of a keep_a));
            glue b.members.(0) (fcolor b 0) (repair (sh_of b 0));
            glue b.members.(1) (fcolor b 1) (repair (sh_of b 1)))
    in
    let unpaired = ref [] in
    let rec pair_up = function
      | [] -> ()
      | a :: rest ->
        let rec try_partner tried = function
          | [] ->
            unpaired := a :: !unpaired;
            pair_up (List.rev tried)
          | b :: more -> (
            let attempt =
              match pair_gluings a 0 b with
              | Some f -> Some f
              | None -> (
                match pair_gluings a 1 b with
                | Some f -> Some f
                | None -> (
                  match pair_gluings b 0 a with
                  | Some f -> Some f
                  | None -> pair_gluings b 1 a))
            in
            match attempt with
            | Some apply ->
              apply (next_fresh ());
              pair_up (List.rev_append tried more)
            | None -> try_partner (b :: tried) more)
        in
        try_partner [] rest
    in
    pair_up twos;
    List.iter
      (fun c ->
        (* The member taking the freed color is damaged on both halves; its
           first-half damage could collide with other members' second-half
           damage regardless of classes, so we only merge when that member's
           first-half part is empty (e.g. a padding copy). *)
        let mb_choice =
          if fh_class.(c.members.(1)) = -1 then Some (0, 1)
          else if fh_class.(c.members.(0)) = -1 then Some (1, 0)
          else None
        in
        let sh0 = sh_of c 0 and sh1 = sh_of c 1 in
        let candidate =
          match mb_choice with
          | None -> None
          | Some roles ->
            if sh0 = sh1 && sh0 >= 0 then None
            else
              Option.map
                (fun entry -> (roles, entry))
                (List.find_opt
                   (fun (color, _, damaged) ->
                     !color <> None
                     && (sh0 < 0 || not (List.mem sh0 !damaged))
                     && (sh1 < 0 || not (List.mem sh1 !damaged)))
                   !freed)
        in
        match candidate with
        | Some ((ma, mb), (color, gamma, damaged)) ->
          let freed_color = Option.get !color in
          glue c.members.(ma) (fcolor c ma) (fun () -> gamma);
          glue c.members.(mb) freed_color (fun () -> gamma);
          color := None;
          damaged := List.filter (fun x -> x >= 0) [ sh0; sh1 ] @ !damaged
        | None ->
          let gamma = next_fresh () in
          let repair = tuple_repairs (fun () -> gamma) in
          glue c.members.(0) gamma no_repair;
          glue c.members.(1) (fcolor c 1) (repair (sh_of c 1)))
      !unpaired;
    (* Apply gluings, then repair: an outside dipath wearing a glued path's
       new color and conflicting with it moves to its gluing's repair
       color. *)
    List.iter (fun (j, color, _) -> final.(through.(j)) <- color) !gluings;
    List.iter
      (fun (j, color, repair) ->
        let glued_path = Instance.path padded through.(j) in
        for i = 0 to n_padded - 1 do
          if final.(i) = color && i <> through.(j) then begin
            let q = Instance.path padded i in
            if (not (Dipath.mem_arc q ab)) && Dipath.shares_arc q glued_path then begin
              (* [repair () < 0] marks a gluing that cannot be damaged by
                 an {e unrepaired} outside path (fixed points, fresh-color
                 wearers); a clash with an already-repaired path can still
                 land here on multiset families — the final sweep resolves
                 those. *)
              let r = repair () in
              if r >= 0 then begin
                Metrics.incr c_repairs;
                final.(i) <- r
              end
            end
          end
        done)
      !gluings;
    (* Residual-conflict sweep.  The per-class repair above covers every
       situation the (repaired) proof accounts for; any conflict that still
       survives — possible only in adversarial overlap patterns the paper's
       Facts do not cover — is fixed by recoloring one involved outside
       dipath with the smallest color valid for it.  This guarantees a valid
       assignment always; the bound is then checked by callers/tests rather
       than assumed. *)
    (* Smallest color used by none of the victim's conflicting paths,
       deduplicating via a stamp array over the CSR index (the answer is at
       most the number of conflicts, so a family-sized table suffices). *)
    let seen = Array.make n_padded (-1) in
    let forbidden = Array.make (n_padded + 1) (-1) in
    let sweep_gen = ref 0 in
    let smallest_free_for victim =
      incr sweep_gen;
      let g = !sweep_gen in
      Array.iter
        (fun arc ->
          Instance.paths_through_iter padded arc (fun q ->
              if q <> victim && seen.(q) <> g then begin
                seen.(q) <- g;
                let c = final.(q) in
                if c <= n_padded then forbidden.(c) <- g
              end))
        (Dipath.arc_array (Instance.path padded victim));
      let rec first c = if forbidden.(c) = g then first (c + 1) else c in
      first 0
    in
    let rec sweep guard =
      if guard > 4 * n_padded then
        failwith "Theorem6: repair sweep failed to converge"
      else
        match Assignment.first_conflict padded final with
        | None -> ()
        | Some (i, j, _arc) ->
          (* Never recolor a through path: they pairwise conflict on the
             split arc and carry distinct colors, so at least one of the two
             is outside. *)
          let victim =
            if Dipath.mem_arc (Instance.path padded i) ab then j else i
          in
          let c = smallest_free_for victim in
          if c >= n_sub_colors + !fresh then fresh := c - n_sub_colors + 1;
          Metrics.incr c_sweep;
          final.(victim) <- c;
          sweep (guard + 1)
    in
    Trace.with_span "thm6.residual_sweep" (fun () -> sweep 0);
    let assignment = Array.sub final 0 n_orig in
    (match Assignment.first_conflict inst assignment with
    | None -> ()
    | Some (i, j, arc) ->
      failwith
        (Printf.sprintf
           "Theorem6: internal error, conflict between paths %d and %d on arc %d"
           i j arc));
    let n_colors = Assignment.n_wavelengths (Assignment.normalize assignment) in
    Metrics.observe h_slack (upper_bound pi0 - n_colors);
    ( assignment,
      {
        pi = pi0;
        split_arc = ab;
        cycle_type;
        fresh_colors = n_sub_colors - pi0 + !fresh;
        n_colors;
      } )
  end

let color_with_stats ?(check = true) inst =
  if check then check_hypotheses ~exact_one:true (Instance.dag inst);
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("paths", Trace.Int (Instance.n_paths inst)) ]
      "thm6.split_and_glue"
      (fun () -> split_and_glue ~subcolor:Theorem1.color inst)
  else split_and_glue ~subcolor:Theorem1.color inst

let color ?check inst = fst (color_with_stats ?check inst)
