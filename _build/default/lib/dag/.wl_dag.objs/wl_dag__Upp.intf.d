lib/dag/upp.mli: Dag Digraph Dipath Wl_digraph
