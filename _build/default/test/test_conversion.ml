(* Tests for wavelength conversion. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures

let w_of report = report.Solver.n_wavelengths

let all_vertices inst =
  Wl_digraph.Digraph.vertices (Instance.graph inst)

let test_no_converters_is_identity () =
  let inst = Figures.fig3 () in
  let split = Conversion.split_instance inst ~converters:[] in
  check_int "same family size" (Instance.n_paths inst) (Instance.n_paths split);
  check_int "same w" 3 (w_of (Conversion.wavelengths inst ~converters:[]))

let test_full_conversion_gives_pi () =
  (* Figure 3: w = 3 > 2 = pi; full conversion recovers pi. *)
  let inst = Figures.fig3 () in
  let r = Conversion.wavelengths inst ~converters:(all_vertices inst) in
  check_int "w_conv = pi" (Load.pi inst) (w_of r)

let full_conversion_pi_everywhere =
  qtest "full conversion gives w = pi on any DAG" seed_gen ~count:40
    (fun seed ->
      let inst = random_instance ~n:12 ~k:9 seed in
      let r = Conversion.wavelengths inst ~converters:(all_vertices inst) in
      w_of r = Load.pi inst)

let converters_never_hurt =
  qtest "adding converters never increases w" seed_gen ~count:30 (fun seed ->
      let inst = random_instance ~n:12 ~k:8 seed in
      let rng = Prng.create seed in
      let base = w_of (Solver.solve inst) in
      let some =
        Prng.sample_without_replacement rng 3
          (Wl_digraph.Digraph.n_vertices (Instance.graph inst))
      in
      let with_some = w_of (Conversion.wavelengths inst ~converters:some) in
      let with_all =
        w_of (Conversion.wavelengths inst ~converters:(all_vertices inst))
      in
      with_all <= with_some && with_some <= base && with_all = Load.pi inst)

let segments_count_consistent =
  qtest "segment counts sum to the split family size" seed_gen ~count:30
    (fun seed ->
      let inst = random_instance ~n:12 ~k:8 seed in
      let rng = Prng.create seed in
      let converters =
        Prng.sample_without_replacement rng 4
          (Wl_digraph.Digraph.n_vertices (Instance.graph inst))
      in
      let counts = Conversion.segments_of inst ~converters in
      let split = Conversion.split_instance inst ~converters in
      List.fold_left ( + ) 0 counts = Instance.n_paths split
      && List.for_all (fun c -> c >= 1) counts)

let split_preserves_load =
  qtest "splitting never changes any arc load" seed_gen ~count:30 (fun seed ->
      let inst = random_instance ~n:12 ~k:8 seed in
      let rng = Prng.create seed in
      let converters =
        Prng.sample_without_replacement rng 4
          (Wl_digraph.Digraph.n_vertices (Instance.graph inst))
      in
      let split = Conversion.split_instance inst ~converters in
      Load.load_profile inst = Load.load_profile split)

let test_single_converter_on_fig3 () =
  (* Converting at the right vertex of figure 3 already breaks the C5. *)
  let inst = Figures.fig3 () in
  let placement, report = Conversion.greedy_placement inst ~budget:1 in
  check_int "one converter suffices" 2 (w_of report);
  check_int "placed one" 1 (List.length placement)

let test_greedy_placement_stops_early () =
  (* On a Theorem-1 instance converters cannot help: nothing gets placed. *)
  let inst = random_nic_instance ~n:12 ~k:8 3 in
  let placement, report = Conversion.greedy_placement inst ~budget:3 in
  check "no placement" true (placement = []);
  check_int "w = pi already" (Load.pi inst) (w_of report)

let suite =
  [
    ( "conversion",
      [
        Alcotest.test_case "no converters = identity" `Quick
          test_no_converters_is_identity;
        Alcotest.test_case "full conversion on fig3" `Quick
          test_full_conversion_gives_pi;
        full_conversion_pi_everywhere;
        converters_never_hurt;
        segments_count_consistent;
        split_preserves_load;
        Alcotest.test_case "one converter fixes fig3" `Quick
          test_single_converter_on_fig3;
        Alcotest.test_case "greedy placement stops early" `Quick
          test_greedy_placement_stops_early;
      ] );
  ]
