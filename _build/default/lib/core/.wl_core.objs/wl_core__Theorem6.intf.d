lib/core/theorem6.mli: Assignment Digraph Instance Wl_dag Wl_digraph
