lib/digraph/digraph.mli: Format
