dag 2
arc 0 5
path 0 1
