(* The benchmark arms `wl bench` runs and gates on.

   Workload shapes mirror bench/main.exe's perf engine (Theorem 1
   coloring, dense DSATUR, conflict-graph construction, load, a warm
   engine mutation) but at sizes chosen so a full gated run finishes in
   seconds: the gate wants many repeated measurements per commit more
   than it wants big instances.  Sizes are embedded in arm names, so the
   quick and full suites produce disjoint bench ids and the regression
   gate never compares a quick run against a full baseline. *)

open Wl_core
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng

type arm = {
  name : string;
  params : (string * int) list;
  run : unit -> unit;
  baseline : (unit -> unit) option;
  extras : unit -> (string * float) list;
}

let no_extras () = []

let make_nic_instance n k =
  let rng = Prng.create (20260704 + n) in
  let dag = Generators.gnp_no_internal_cycle rng n (8.0 /. float_of_int n) in
  Path_gen.random_instance rng dag k

let make_dense_ugraph n pct =
  let rng = Prng.create (77 + n) in
  let g = Wl_conflict.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.int rng 100 < pct then Wl_conflict.Ugraph.add_edge g u v
    done
  done;
  g

let thm1_arm n =
  let k = 3 * n / 4 in
  let inst = make_nic_instance n k in
  {
    name = Printf.sprintf "thm1/color/n=%d" n;
    params = [ ("n", n); ("paths", k) ];
    run = (fun () -> ignore (Theorem1.color inst));
    baseline = None;
    extras = no_extras;
  }

let dsatur_arm n =
  let pct = 50 in
  let g = make_dense_ugraph n pct in
  {
    name = Printf.sprintf "coloring/dsatur/dense-n=%d" n;
    params =
      [ ("n", n); ("edge_pct", pct); ("edges", Wl_conflict.Ugraph.n_edges g) ];
    run = (fun () -> ignore (Wl_conflict.Coloring.dsatur g));
    baseline = None;
    extras = no_extras;
  }

(* [comps] disjoint dense blocks of [block] vertices each: enough
   per-component work that the parallel mapper's probe goes wide, with
   sequential DSATUR on the same graph as the reference arm.  The two
   produce identical per-vertex colorings (see Coloring.dsatur_par), so
   the speedup is pure scheduling. *)
let dsatur_par_arm comps block =
  let pct = 50 in
  let n = comps * block in
  let rng = Prng.create (1200 + n) in
  let g = Wl_conflict.Ugraph.create n in
  for c = 0 to comps - 1 do
    let base = c * block in
    for u = 0 to block - 1 do
      for v = u + 1 to block - 1 do
        if Prng.int rng 100 < pct then
          Wl_conflict.Ugraph.add_edge g (base + u) (base + v)
      done
    done
  done;
  {
    name = Printf.sprintf "coloring/dsatur-par/dense-n=%d" n;
    params =
      [
        ("n", n);
        ("components", comps);
        ("edge_pct", pct);
        ("edges", Wl_conflict.Ugraph.n_edges g);
      ];
    run = (fun () -> ignore (Wl_conflict.Coloring.dsatur_par g));
    baseline = Some (fun () -> ignore (Wl_conflict.Coloring.dsatur g));
    extras = no_extras;
  }

let conflict_arm k =
  let n = 60 in
  let inst =
    let rng = Prng.create 3 in
    let dag = Generators.gnp_dag rng n 0.12 in
    Path_gen.random_instance rng dag k
  in
  {
    name = Printf.sprintf "conflict/build/%d-paths" k;
    params = [ ("n", n); ("paths", k) ];
    run = (fun () -> ignore (Conflict_of.build inst));
    baseline = None;
    extras = no_extras;
  }

let load_arm n =
  let inst = make_nic_instance n (3 * n / 4) in
  {
    name = Printf.sprintf "load/pi/n=%d" n;
    params = [ ("n", n); ("paths", 3 * n / 4) ];
    run = (fun () -> ignore (Load.pi inst));
    baseline = None;
    extras = no_extras;
  }

(* One warm incremental mutation on a live session: add a path, query the
   report, remove it again.  The add/remove pair keeps the session
   periodic, so every timed iteration does identical work; the warm-hit
   rate of the whole session rides along as an extra.  The mutations go
   through the prebuilt-dipath hot entries (arc ids survive the
   session's graph copy), so the per-op cost is the warm coloring work
   plus the report, not vertex-list validation. *)
let engine_arm n =
  let module Engine = Wl_engine.Engine in
  let k = 3 * n / 4 in
  let inst = make_nic_instance n k in
  let p = List.hd (Instance.paths_list inst) in
  let session = Engine.create inst in
  ignore (Engine.report session);
  let step () =
    let pid = Engine.add_dipath_exn session p in
    ignore (Engine.report session);
    Engine.remove_path_exn session pid
  in
  {
    name = Printf.sprintf "engine/add_path/n=%d" n;
    params = [ ("n", n); ("paths", k) ];
    run = step;
    baseline = None;
    extras =
      (fun () ->
        [ ("warm_hit_rate", Engine.hit_rate (Engine.stats session)) ]);
  }

(* The full routing stage (Yen enumeration, bottleneck seeding, local
   search) over a fixed uniform request set: the timed unit is one whole
   [Routing.select], the dominant cost of turning a demand matrix into a
   solvable instance.  The achieved bounds ride along as extras so the
   trajectory records not just how fast the stage is but how good its
   routing was (seed vs final vs lower bound). *)
let route_arm n =
  let n_requests = n / 8 in
  let rng = Prng.create (20260808 + n) in
  let dag = Generators.gnp_no_internal_cycle rng n (8.0 /. float_of_int n) in
  let requests = Wl_netgen.Traffic.uniform rng dag n_requests in
  let last = ref None in
  {
    name = Printf.sprintf "route/n=%d" n;
    params = [ ("n", n); ("requests", n_requests); ("k", 4) ];
    run =
      (fun () ->
        match Routing.select ~k:4 dag requests with
        | Ok sel -> last := Some sel
        | Error _ -> ());
    baseline = None;
    extras =
      (fun () ->
        match !last with
        | None -> []
        | Some sel ->
          [
            ("seed_load", float_of_int sel.Routing.seed_load);
            ("max_load", float_of_int sel.Routing.max_load);
            ("lower_bound", float_of_int sel.Routing.lower_bound);
          ]);
  }

let suite ?(quick = false) () =
  if quick then
    [
      thm1_arm 120;
      dsatur_arm 120;
      dsatur_par_arm 4 60;
      conflict_arm 60;
      load_arm 120;
      engine_arm 120;
      route_arm 120;
    ]
  else
    [
      thm1_arm 400;
      dsatur_arm 300;
      dsatur_par_arm 4 200;
      conflict_arm 150;
      load_arm 400;
      engine_arm 400;
      route_arm 1600;
    ]

let busy_wait ns =
  let t0 = Wl_obs.Clock.now_ns () in
  while Wl_obs.Clock.now_ns () - t0 < ns do
    ()
  done

let with_handicap ~ns name arms =
  match List.find_opt (fun a -> a.name = name) arms with
  | None ->
    invalid_arg
      (Printf.sprintf "Arms.with_handicap: no arm named %S (have: %s)" name
         (String.concat ", " (List.map (fun a -> a.name) arms)))
  | Some _ ->
    List.map
      (fun a ->
        if a.name = name then
          {
            a with
            run =
              (fun () ->
                a.run ();
                busy_wait ns);
          }
        else a)
      arms

let with_alloc_handicap ~words name arms =
  match List.find_opt (fun a -> a.name = name) arms with
  | None ->
    invalid_arg
      (Printf.sprintf "Arms.with_alloc_handicap: no arm named %S (have: %s)"
         name
         (String.concat ", " (List.map (fun a -> a.name) arms)))
  | Some _ ->
    List.map
      (fun a ->
        if a.name = name then
          {
            a with
            run =
              (fun () ->
                a.run ();
                (* Chunks of 63 floats (64 words with the header) stay
                   below Max_young_wosize, so the injection lands in the
                   minor heap where Gc.minor_words sees it — one big
                   array would go straight to the major heap and evade
                   the gate.  opaque_identity keeps the chunks from
                   being optimized away. *)
                let chunks = (max 1 words + 63) / 64 in
                for _ = 1 to chunks do
                  ignore (Sys.opaque_identity (Array.make 63 0.))
                done);
          }
        else a)
      arms
