include Wl_json.Jsonx
