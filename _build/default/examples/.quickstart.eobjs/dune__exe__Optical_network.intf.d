examples/optical_network.mli:
