(* Rendering the bench trajectory: a terminal dashboard and a
   dependency-free single-file HTML report.

   Both read the same Store history (last entry = current run) and the
   same gate comparison, so what CI prints and what the dashboard shows
   can never disagree.  The HTML page embeds the trajectory as inline
   JSON and renders small-multiple SVG line charts with plain DOM
   scripting — no external scripts or styles, so the file can be
   archived as a build artifact and opened anywhere. *)

module Jsonx = Wl_json.Jsonx
module Store = Wl_obs.Store

let human_ns ns =
  let a = Float.abs ns in
  if a >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2f µs" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let spark_chars = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline = function
  | [] -> ""
  | xs ->
    let lo = List.fold_left Float.min infinity xs in
    let hi = List.fold_left Float.max neg_infinity xs in
    let buf = Buffer.create (3 * List.length xs) in
    List.iter
      (fun v ->
        let idx =
          if hi -. lo <= 0. then 3
          else int_of_float ((v -. lo) /. (hi -. lo) *. 7.99)
        in
        Buffer.add_string buf spark_chars.(max 0 (min 7 idx)))
      xs;
    Buffer.contents buf

let medians_of history name =
  List.filter_map
    (fun e ->
      List.find_map
        (fun p ->
          if p.Store.name = name then Some p.Store.sample.Store.median_ns
          else None)
        e.Store.points)
    history

(* Scalar view of a counter embedding value: plain counters are ints,
   histograms compare by observation count. *)
let scalar_of_json = function
  | Jsonx.Int i -> Some i
  | Jsonx.Obj _ as j -> Option.bind (Jsonx.member "count" j) Jsonx.to_int
  | _ -> None

(* (bench, counter, before, after) for every counter whose scalar moved
   between the two entries, largest absolute move first. *)
let counter_movements ~prev ~current =
  List.concat_map
    (fun p ->
      match
        List.find_opt (fun q -> q.Store.name = p.Store.name) prev.Store.points
      with
      | None -> []
      | Some q ->
        let scalars kvs =
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (scalar_of_json v))
            kvs
        in
        let before = scalars q.Store.counters in
        let after = scalars p.Store.counters in
        let keys =
          List.sort_uniq String.compare (List.map fst before @ List.map fst after)
        in
        List.filter_map
          (fun k ->
            let b = Option.value ~default:0 (List.assoc_opt k before) in
            let a = Option.value ~default:0 (List.assoc_opt k after) in
            if a = b then None else Some (p.Store.name, k, b, a))
          keys)
    current.Store.points
  |> List.sort (fun (_, _, b1, a1) (_, _, b2, a2) ->
         Int.compare (abs (a2 - b2)) (abs (a1 - b1)))

(* prof.<span>.<field> counters, re-aggregated per span across every
   bench of the entry.  Span names contain dots, so parse by the known
   field suffix, not by splitting. *)
let prof_fields =
  [
    "minor_words"; "major_words"; "promoted_words"; "minor_gcs"; "major_gcs";
    "self_ns"; "calls";
  ]

let parse_prof name =
  let plen = 5 (* "prof." *) in
  if String.length name > plen && String.sub name 0 plen = "prof." then
    List.find_map
      (fun f ->
        let suf = "." ^ f in
        let ln = String.length name and ls = String.length suf in
        if ln > plen + ls && String.sub name (ln - ls) ls = suf then
          Some (String.sub name plen (ln - plen - ls), f)
        else None)
      prof_fields
  else None

type gc_row = {
  gr_span : string;
  mutable gr_calls : int;
  mutable gr_self_ns : int;
  mutable gr_minor_w : int;
  mutable gr_minor_gcs : int;
  mutable gr_major_gcs : int;
}

let gc_rows entry =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun (k, v) ->
          match (parse_prof k, scalar_of_json v) with
          | Some (span, field), Some n ->
            let row =
              match Hashtbl.find_opt tbl span with
              | Some r -> r
              | None ->
                let r =
                  {
                    gr_span = span;
                    gr_calls = 0;
                    gr_self_ns = 0;
                    gr_minor_w = 0;
                    gr_minor_gcs = 0;
                    gr_major_gcs = 0;
                  }
                in
                Hashtbl.add tbl span r;
                r
            in
            (match field with
            | "calls" -> row.gr_calls <- row.gr_calls + n
            | "self_ns" -> row.gr_self_ns <- row.gr_self_ns + n
            | "minor_words" -> row.gr_minor_w <- row.gr_minor_w + n
            | "minor_gcs" -> row.gr_minor_gcs <- row.gr_minor_gcs + n
            | "major_gcs" -> row.gr_major_gcs <- row.gr_major_gcs + n
            | _ -> ())
          | _ -> ())
        p.Store.counters)
    entry.Store.points;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.gr_span b.gr_span)

let verdict_cell v =
  match v with
  | Store.Stable -> "  stable"
  | Store.Regression -> "▲ REGRESSION"
  | Store.Improvement -> "▼ improved"
  | Store.New_bench -> "∘ new"

let pp_terminal ?(window = 5) ?(threshold_pct = 10.) ppf history =
  match List.rev history with
  | [] -> Format.fprintf ppf "(empty trajectory)@."
  | current :: prev_rev ->
    let prev_entries = List.rev prev_rev in
    let cmp =
      Store.compare ~window ~threshold_pct ~history:prev_entries current
    in
    Format.fprintf ppf "@[<v>== bench trajectory: %s @@ %s ==@,%s@,"
      current.Store.rev current.Store.timestamp
      (Printf.sprintf "%d entries | domains=%d | ocaml %s%s"
         (List.length history) current.Store.domains
         current.Store.ocaml_version
         (if current.Store.note = "" then "" else " | " ^ current.Store.note));
    Format.fprintf ppf "@,%-34s %-24s %12s %12s %8s  %s@," "bench" "trend"
      "current" "baseline" "delta" "verdict";
    List.iter
      (fun v ->
        let trend = sparkline (medians_of history v.Store.bench) in
        match v.Store.verdict with
        | Store.New_bench ->
          Format.fprintf ppf "%-34s %-24s %12s %12s %8s  %s@," v.Store.bench
            trend
            (human_ns v.Store.current_ns)
            "-" "-"
            (verdict_cell v.Store.verdict)
        | _ ->
          Format.fprintf ppf "%-34s %-24s %12s %12s %+7.1f%%  %s@,"
            v.Store.bench trend
            (human_ns v.Store.current_ns)
            (human_ns v.Store.baseline_med_ns)
            v.Store.delta_pct
            (verdict_cell v.Store.verdict))
      cmp.Store.verdicts;
    Format.fprintf ppf "@,gate: %d regression(s), %d improvement(s), %d stable, %d new@,"
      cmp.Store.regressions cmp.Store.improvements cmp.Store.stable
      cmp.Store.new_benches;
    (match prev_entries with
    | [] -> ()
    | _ ->
      let prev = List.nth prev_entries (List.length prev_entries - 1) in
      (match counter_movements ~prev ~current with
      | [] -> ()
      | moves ->
        Format.fprintf ppf "@,top counter movements vs %s:@," prev.Store.rev;
        List.iteri
          (fun i (bench, key, b, a) ->
            if i < 8 then
              Format.fprintf ppf "  %-34s %-32s %10d -> %-10d (%+d)@," bench
                key b a (a - b))
          moves));
    (match gc_rows current with
    | [] -> ()
    | rows ->
      Format.fprintf ppf "@,GC by span (current run, summed over benches):@,";
      Format.fprintf ppf "  %-24s %8s %10s %14s %8s %8s@," "span" "calls"
        "self ms" "minor words" "min.gcs" "maj.gcs";
      List.iter
        (fun r ->
          Format.fprintf ppf "  %-24s %8d %10.2f %14d %8d %8d@," r.gr_span
            r.gr_calls
            (float_of_int r.gr_self_ns /. 1e6)
            r.gr_minor_w r.gr_minor_gcs r.gr_major_gcs)
        rows);
    Format.fprintf ppf "@]"

(* --- HTML ----------------------------------------------------------------- *)

(* Inline JSON inside a <script> must not contain "</" (a "</script>"
   inside a string would end the block early). *)
let escape_script s =
  let buf = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      if c = '/' && i > 0 && s.[i - 1] = '<' then Buffer.add_string buf "\\/"
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|
:root {
  --surface: #fcfcfb;
  --surface-raised: #f4f4f2;
  --text: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3df;
  --series: #2a78d6;
  --good: #008300;
  --serious: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --surface-raised: #242422;
    --text: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33332f;
    --series: #3987e5;
    --good: #31b331;
    --serious: #e66767;
  }
}
:root[data-theme="light"] {
  --surface: #fcfcfb;
  --surface-raised: #f4f4f2;
  --text: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3df;
  --series: #2a78d6;
  --good: #008300;
  --serious: #e34948;
}
:root[data-theme="dark"] {
  --surface: #1a1a19;
  --surface-raised: #242422;
  --text: #ffffff;
  --text-secondary: #c3c2b7;
  --grid: #33332f;
  --series: #3987e5;
  --good: #31b331;
  --serious: #e66767;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 16px; flex-wrap: wrap; }
h1 { font-size: 18px; margin: 0; }
.meta { color: var(--text-secondary); font-size: 13px; }
button.toggle {
  margin-left: auto; border: 1px solid var(--grid); background: var(--surface-raised);
  color: var(--text); border-radius: 6px; padding: 4px 10px; cursor: pointer;
}
.banner { margin: 16px 0; font-size: 14px; }
.banner .bad { color: var(--serious); font-weight: 600; }
.banner .good { color: var(--good); }
#charts, #alloc-charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(480px, 1fr)); gap: 20px; }
figure { margin: 0; background: var(--surface-raised); border-radius: 8px; padding: 12px 14px; }
figcaption { font-size: 13px; margin-bottom: 4px; display: flex; gap: 10px; align-items: baseline; }
figcaption .name { font-weight: 600; }
figcaption .delta { color: var(--text-secondary); font-size: 12px; }
figcaption .delta.bad { color: var(--serious); }
figcaption .delta.good { color: var(--good); }
svg { display: block; width: 100%; height: auto; }
svg text { fill: var(--text-secondary); font-size: 10px; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--grid); }
.band { fill: var(--series); opacity: 0.14; }
.line { fill: none; stroke: var(--series); stroke-width: 2; }
.dot { fill: var(--series); }
.hoverdot { fill: var(--series); stroke: var(--surface-raised); stroke-width: 2; display: none; }
.crosshair { stroke: var(--grid); stroke-width: 1; display: none; }
.tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-raised); border: 1px solid var(--grid); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; color: var(--text); box-shadow: 0 2px 8px rgba(0,0,0,0.18);
}
.tooltip .k { color: var(--text-secondary); }
table { border-collapse: collapse; margin-top: 24px; font-size: 13px; }
th, td { text-align: right; padding: 4px 12px; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
td.v-regression { color: var(--serious); font-weight: 600; }
td.v-improvement { color: var(--good); }
td.v-stable, td.v-new { color: var(--text-secondary); }
details { margin-top: 20px; color: var(--text-secondary); }
h2 { font-size: 15px; margin: 28px 0 4px; }
|}

let script =
  {|
(function () {
  var fmt = function (ns) {
    var a = Math.abs(ns);
    if (a >= 1e9) return (ns / 1e9).toFixed(2) + ' s';
    if (a >= 1e6) return (ns / 1e6).toFixed(2) + ' ms';
    if (a >= 1e3) return (ns / 1e3).toFixed(2) + ' µs';
    return Math.round(ns) + ' ns';
  };
  var entries = DATA.entries || [];
  var gate = {};
  (DATA.gate || []).forEach(function (g) { gate[g.bench] = g; });
  var names = [];
  entries.forEach(function (e) {
    (e.benches || []).forEach(function (b) {
      if (names.indexOf(b.name) < 0) names.push(b.name);
    });
  });

  var tip = document.createElement('div');
  tip.className = 'tooltip';
  document.body.appendChild(tip);

  var charts = document.getElementById('charts');
  names.forEach(function (name) {
    var pts = [];
    entries.forEach(function (e) {
      (e.benches || []).forEach(function (b) {
        if (b.name === name)
          pts.push({ rev: e.rev, ts: e.timestamp, med: b.median_ns,
                     mad: b.mad_ns || 0, cv: b.cv || 0, runs: b.runs || 1 });
      });
    });
    if (!pts.length) return;
    var W = 480, H = 170, L = 58, R = 12, T = 14, B = 26;
    var lo = Infinity, hi = -Infinity;
    pts.forEach(function (p) {
      lo = Math.min(lo, p.med - p.mad);
      hi = Math.max(hi, p.med + p.mad);
    });
    if (hi <= lo) { hi = lo + Math.max(1, lo * 0.1); }
    var pad = (hi - lo) * 0.08;
    lo -= pad; hi += pad;
    if (lo < 0) lo = 0;
    var x = function (i) {
      return pts.length === 1 ? (L + W - R) / 2
        : L + (W - L - R) * i / (pts.length - 1);
    };
    var y = function (v) { return T + (H - T - B) * (1 - (v - lo) / (hi - lo)); };

    var s = '<svg viewBox="0 0 ' + W + ' ' + H + '" role="img" aria-label="' +
            name + ' trend">';
    var ticks = 4;
    for (var t = 0; t <= ticks; t++) {
      var v = lo + (hi - lo) * t / ticks;
      s += '<line class="gridline" x1="' + L + '" x2="' + (W - R) +
           '" y1="' + y(v) + '" y2="' + y(v) + '"></line>';
      s += '<text x="' + (L - 6) + '" y="' + (y(v) + 3) +
           '" text-anchor="end">' + fmt(v) + '</text>';
    }
    s += '<line class="axis" x1="' + L + '" x2="' + L + '" y1="' + T +
         '" y2="' + (H - B) + '"></line>';
    if (pts.length > 1) {
      var band = '';
      pts.forEach(function (p, i) { band += x(i) + ',' + y(p.med + p.mad) + ' '; });
      for (var i = pts.length - 1; i >= 0; i--)
        band += x(i) + ',' + y(Math.max(lo, pts[i].med - pts[i].mad)) + ' ';
      s += '<polygon class="band" points="' + band + '"></polygon>';
      var line = '';
      pts.forEach(function (p, i) {
        line += (i ? 'L' : 'M') + x(i) + ' ' + y(p.med);
      });
      s += '<path class="line" d="' + line + '"></path>';
    }
    pts.forEach(function (p, i) {
      s += '<circle class="dot" r="2.5" cx="' + x(i) + '" cy="' + y(p.med) +
           '"></circle>';
    });
    var last = pts[pts.length - 1];
    s += '<text x="' + Math.min(x(pts.length - 1) + 5, W - R - 40) + '" y="' +
         (y(last.med) - 6) + '">' + fmt(last.med) + '</text>';
    s += '<text x="' + L + '" y="' + (H - 8) + '">' + pts[0].rev + '</text>';
    if (pts.length > 1)
      s += '<text x="' + (W - R) + '" y="' + (H - 8) +
           '" text-anchor="end">' + last.rev + '</text>';
    s += '<line class="crosshair" y1="' + T + '" y2="' + (H - B) +
         '"></line><circle class="hoverdot" r="4"></circle>';
    s += '<rect class="hit" x="' + L + '" y="' + T + '" width="' +
         (W - L - R) + '" height="' + (H - T - B) +
         '" fill="transparent"></rect></svg>';

    var fig = document.createElement('figure');
    var g = gate[name];
    var cap = '<figcaption><span class="name">' + name + '</span>';
    if (g && g.verdict !== 'new') {
      var cls = g.verdict === 'REGRESSION' ? 'bad'
        : g.verdict === 'improvement' ? 'good' : '';
      var glyph = g.verdict === 'REGRESSION' ? '▲ '
        : g.verdict === 'improvement' ? '▼ ' : '';
      cap += '<span class="delta ' + cls + '">' + glyph +
             (g.delta_pct >= 0 ? '+' : '') + g.delta_pct.toFixed(1) +
             '% vs baseline ' + fmt(g.baseline_med_ns) + '</span>';
    }
    cap += '</figcaption>';
    fig.innerHTML = cap + s;
    charts.appendChild(fig);

    var svg = fig.querySelector('svg');
    var hit = fig.querySelector('.hit');
    var cross = fig.querySelector('.crosshair');
    var hdot = fig.querySelector('.hoverdot');
    hit.addEventListener('mousemove', function (ev) {
      var r = svg.getBoundingClientRect();
      var mx = (ev.clientX - r.left) * W / r.width;
      var best = 0, bd = Infinity;
      pts.forEach(function (p, i) {
        var d = Math.abs(x(i) - mx);
        if (d < bd) { bd = d; best = i; }
      });
      var p = pts[best];
      cross.setAttribute('x1', x(best));
      cross.setAttribute('x2', x(best));
      cross.style.display = 'block';
      hdot.setAttribute('cx', x(best));
      hdot.setAttribute('cy', y(p.med));
      hdot.style.display = 'block';
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 14) + 'px';
      tip.style.top = (ev.clientY + 10) + 'px';
      tip.innerHTML = '<div><span class="k">' + p.rev + '</span> ' +
        (p.ts || '') + '</div><div>median ' + fmt(p.med) +
        ' <span class="k">± ' + fmt(p.mad) + ' MAD, ' + p.runs +
        ' runs</span></div>';
    });
    hit.addEventListener('mouseleave', function () {
      cross.style.display = 'none';
      hdot.style.display = 'none';
      tip.style.display = 'none';
    });
  });

  // Steady-state allocation small multiples: one chart per bench that
  // carries the inlined "gc.minor_w" extra (minor words per op from the
  // allocation pass), with a words formatter instead of the ns one.
  var fmtW = function (w) {
    var a = Math.abs(w);
    if (a >= 1e6) return (w / 1e6).toFixed(2) + ' Mw';
    if (a >= 1e3) return (w / 1e3).toFixed(1) + ' kw';
    return Math.round(w) + ' w';
  };
  var acharts = document.getElementById('alloc-charts');
  if (acharts) names.forEach(function (name) {
    var pts = [];
    entries.forEach(function (e) {
      (e.benches || []).forEach(function (b) {
        if (b.name === name && typeof b['gc.minor_w'] === 'number')
          pts.push({ rev: e.rev, w: b['gc.minor_w'] });
      });
    });
    if (!pts.length) return;
    var W = 480, H = 120, L = 58, R = 12, T = 12, B = 22;
    var lo = Infinity, hi = -Infinity;
    pts.forEach(function (p) { lo = Math.min(lo, p.w); hi = Math.max(hi, p.w); });
    if (hi <= lo) hi = lo + Math.max(1, lo * 0.1);
    var pad = (hi - lo) * 0.08;
    lo = Math.max(0, lo - pad); hi += pad;
    var x = function (i) {
      return pts.length === 1 ? (L + W - R) / 2
        : L + (W - L - R) * i / (pts.length - 1);
    };
    var y = function (v) { return T + (H - T - B) * (1 - (v - lo) / (hi - lo)); };
    var s = '<svg viewBox="0 0 ' + W + ' ' + H + '" role="img" aria-label="' +
            name + ' allocation trend">';
    for (var t = 0; t <= 2; t++) {
      var v = lo + (hi - lo) * t / 2;
      s += '<line class="gridline" x1="' + L + '" x2="' + (W - R) +
           '" y1="' + y(v) + '" y2="' + y(v) + '"></line>';
      s += '<text x="' + (L - 6) + '" y="' + (y(v) + 3) +
           '" text-anchor="end">' + fmtW(v) + '</text>';
    }
    s += '<line class="axis" x1="' + L + '" x2="' + L + '" y1="' + T +
         '" y2="' + (H - B) + '"></line>';
    if (pts.length > 1) {
      var line = '';
      pts.forEach(function (p, i) { line += (i ? 'L' : 'M') + x(i) + ' ' + y(p.w); });
      s += '<path class="line" d="' + line + '"></path>';
    }
    pts.forEach(function (p, i) {
      s += '<circle class="dot" r="2.5" cx="' + x(i) + '" cy="' + y(p.w) +
           '"></circle>';
    });
    var last = pts[pts.length - 1];
    s += '<text x="' + Math.min(x(pts.length - 1) + 5, W - R - 40) + '" y="' +
         (y(last.w) - 6) + '">' + fmtW(last.w) + '</text>';
    s += '<text x="' + L + '" y="' + (H - 6) + '">' + pts[0].rev + '</text>';
    if (pts.length > 1)
      s += '<text x="' + (W - R) + '" y="' + (H - 6) +
           '" text-anchor="end">' + last.rev + '</text>';
    s += '</svg>';
    var fig = document.createElement('figure');
    fig.innerHTML = '<figcaption><span class="name">' + name +
      '</span><span class="delta">steady-state minor words/op</span>' +
      '</figcaption>' + s;
    acharts.appendChild(fig);
  });
  if (acharts && !acharts.childElementCount) {
    acharts.style.display = 'none';
    var ah = document.getElementById('alloc-h2');
    if (ah) ah.style.display = 'none';
  }

  var tbody = document.getElementById('summary-body');
  if (entries.length) {
    var cur = entries[entries.length - 1];
    (cur.benches || []).forEach(function (b) {
      var g = gate[b.name];
      var tr = document.createElement('tr');
      var verdict = g ? g.verdict : '';
      var slug = verdict === 'REGRESSION' ? 'regression'
        : verdict === 'improvement' ? 'improvement'
        : verdict === 'new' ? 'new' : 'stable';
      var glyph = slug === 'regression' ? '▲ '
        : slug === 'improvement' ? '▼ '
        : slug === 'new' ? '∘ ' : '';
      tr.innerHTML = '<td>' + b.name + '</td><td>' + fmt(b.median_ns) +
        '</td><td>' + fmt(b.mad_ns || 0) + '</td><td>' +
        ((b.cv || 0) * 100).toFixed(1) + '%</td><td>' + (b.runs || 1) +
        '</td><td>' + (g && verdict !== 'new'
          ? (g.delta_pct >= 0 ? '+' : '') + g.delta_pct.toFixed(1) + '%'
          : '-') +
        '</td><td class="v-' + slug + '">' + glyph + (verdict || '-') + '</td>';
      tbody.appendChild(tr);
    });
  }

  document.getElementById('theme-toggle').addEventListener('click', function () {
    var root = document.documentElement;
    var dark = root.dataset.theme
      ? root.dataset.theme === 'dark'
      : window.matchMedia('(prefers-color-scheme: dark)').matches;
    root.dataset.theme = dark ? 'light' : 'dark';
  });
})();
|}

let html ?(window = 5) ?(threshold_pct = 10.) history =
  let current, prev_entries =
    match List.rev history with
    | [] -> (None, [])
    | c :: p -> (Some c, List.rev p)
  in
  let gate =
    Option.map
      (fun c -> Store.compare ~window ~threshold_pct ~history:prev_entries c)
      current
  in
  let payload =
    Jsonx.Obj
      [
        ("entries", Jsonx.Arr (List.map Store.to_json history));
        ( "gate",
          match gate with
          | None -> Jsonx.Null
          | Some cmp ->
            Jsonx.Arr
              (List.map
                 (fun v ->
                   Jsonx.Obj
                     [
                       ("bench", Jsonx.Str v.Store.bench);
                       ( "verdict",
                         Jsonx.Str
                           (Format.asprintf "%a" Store.pp_verdict
                              v.Store.verdict) );
                       ("delta_pct", Jsonx.Float v.Store.delta_pct);
                       ("baseline_med_ns", Jsonx.Float v.Store.baseline_med_ns);
                       ("current_ns", Jsonx.Float v.Store.current_ns);
                     ])
                 cmp.Store.verdicts) );
      ]
  in
  let buf = Buffer.create 32768 in
  let add = Buffer.add_string buf in
  add "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  add
    "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n";
  add "<title>wavelength bench report</title>\n<style>";
  add style;
  add "</style>\n</head>\n<body>\n<header><h1>wavelength bench report</h1>";
  (match current with
  | Some c ->
    add
      (Printf.sprintf
         "<span class=\"meta\">%s @ %s | %d entries | domains=%d | ocaml \
          %s</span>"
         c.Store.rev c.Store.timestamp (List.length history) c.Store.domains
         c.Store.ocaml_version)
  | None -> add "<span class=\"meta\">(empty trajectory)</span>");
  add
    "<button class=\"toggle\" id=\"theme-toggle\" type=\"button\">light/dark</button></header>\n";
  (match gate with
  | Some cmp ->
    add "<p class=\"banner\">gate: ";
    if cmp.Store.regressions > 0 then
      add
        (Printf.sprintf "<span class=\"bad\">▲ %d regression(s)</span>, "
           cmp.Store.regressions)
    else add "no regressions, ";
    if cmp.Store.improvements > 0 then
      add
        (Printf.sprintf "<span class=\"good\">▼ %d improvement(s)</span>, "
           cmp.Store.improvements);
    add
      (Printf.sprintf "%d stable, %d new.</p>\n" cmp.Store.stable
         cmp.Store.new_benches)
  | None -> ());
  add "<div id=\"charts\"></div>\n";
  add
    "<h2 id=\"alloc-h2\">Steady-state allocation (gc.minor_w)</h2>\n\
     <div id=\"alloc-charts\"></div>\n";
  add
    "<h2>Current run</h2>\n\
     <table>\n\
     <thead><tr><th>bench</th><th>median</th><th>MAD</th><th>CV</th><th>runs</th><th>delta</th><th>verdict</th></tr></thead>\n\
     <tbody id=\"summary-body\"></tbody>\n\
     </table>\n";
  (* The verdict vocabulary rendered above, spelled out once for the
     reader (and so the page carries the glyph legend, not color alone). *)
  (match gate with
  | Some cmp when cmp.Store.verdicts <> [] ->
    add "<details><summary>How to read this</summary><p>";
    add
      "Each chart is one bench: the line is the median ns/op per recorded \
       commit, the shaded band is ± one MAD. ▲ marks a regression beyond \
       max(threshold, 3×MAD of the baseline window), ▼ an improvement \
       beyond it, ∘ a bench with no history yet.";
    add "</p></details>\n"
  | _ -> ());
  add "<script>\nconst DATA = ";
  add (escape_script (Jsonx.to_string payload));
  add ";\n";
  add (escape_script script);
  add "</script>\n</body>\n</html>\n";
  Buffer.contents buf

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  end

let check_html ~history html =
  if
    String.length html < 15
    || String.sub html 0 15 <> "<!DOCTYPE html>"
  then Error "report does not start with <!DOCTYPE html>"
  else if not (contains html "</html>") then
    Error "report is truncated: no closing </html>"
  else begin
    let names =
      List.concat_map
        (fun e -> List.map (fun p -> p.Store.name) e.Store.points)
        history
      |> List.sort_uniq String.compare
    in
    match List.filter (fun n -> not (contains html n)) names with
    | [] -> Ok (List.length names)
    | missing ->
      Error
        ("report is missing bench(es): " ^ String.concat ", " missing)
  end
