(** Baseline wavelength-assignment strategies.

    Practical RWA systems often assign wavelengths online with first-fit;
    these baselines quantify what the paper's constructive optimum buys.
    On a DAG without internal cycle Theorem 1 guarantees [pi] wavelengths,
    while first-fit can need more — the benches measure the gap. *)

val first_fit : Instance.t -> Assignment.t
(** Process dipaths in family order; give each the smallest wavelength not
    used by an already-assigned conflicting dipath.  Valid by construction;
    uses at most [max over i of (number of earlier conflicts of i) + 1]
    wavelengths. *)

val first_fit_order : int array -> Instance.t -> Assignment.t
(** First-fit in an explicit processing order (a permutation of family
    indices). *)

val first_fit_random : Wl_util.Prng.t -> Instance.t -> Assignment.t
(** First-fit in a uniformly random order. *)

val best_of_random_orders :
  Wl_util.Prng.t -> tries:int -> Instance.t -> Assignment.t
(** The best of [tries] random-order first-fits — a classic cheap
    randomized baseline. *)
