type value = Int of int | Float of float | Str of string

type event = {
  name : string;
  tid : int;
  ts_us : float;
  dur_us : float;
  depth : int;
  instant : bool;
  args : (string * value) list;
}

type collector = { lock : Mutex.t; mutable events : event list }
type sink = Null | Memory of collector | Discard

let null = Null
let memory () = Memory { lock = Mutex.create (); events = [] }

(* Spans run (probes fire, self-time is tracked) but events are dropped:
   the sink for instrumented-but-unrecorded runs, e.g. the bench pass
   that only wants Prof's GC aggregates without a growing event list. *)
let discard = Discard

(* The installed sink and the trace origin.  [on] mirrors "sink <> Null"
   so the disabled fast path is a single atomic load; [current]/[origin]
   are only read once a span actually fires. *)
let on = Atomic.make false
let current = ref Null
let origin = ref 0.

let set_sink s =
  current := s;
  origin := Clock.now_us ();
  Atomic.set on (s <> Null)

let clear () = set_sink Null
let enabled () = Atomic.get on

(* Per-domain nesting depth. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

(* Per-domain stack of child-duration accumulators: when a span closes,
   its duration is added to the enclosing span's accumulator, so the
   parent can report self-time (duration minus direct children).  One
   cell per open span. *)
let children_key = Domain.DLS.new_key (fun () -> ref ([] : float ref list))

(* Extension point for span-scoped measurement (Prof's GC telemetry).
   The three hooks are sequenced so the probe can take alloc-exact
   readings: [on_start] fires after every piece of span-open
   bookkeeping (child accumulator cell, closures) has been allocated,
   [on_stop] fires before any span-close bookkeeping allocates, and
   [on_emit] — free to allocate — receives the computed figures and
   contributes event args.  Install before spawning workers, like the
   sink. *)
type probe = {
  on_start : unit -> unit;
  on_stop : unit -> unit;
  on_emit : name:string -> dur_us:float -> self_us:float -> (string * value) list;
}

let probe : probe option ref = ref None
let set_probe p = probe := p

let emit ev =
  match !current with
  | Null | Discard -> ()
  | Memory c ->
    Mutex.protect c.lock (fun () -> c.events <- ev :: c.events)

(* When a distributed trace context is ambient on this domain, stamp its
   trace id onto the event so spans from different processes (client,
   daemon shards, engine) can be grouped into one logical trace.  Only
   ever called on the enabled path, so the allocation is fine. *)
let ctx_args args =
  let tr = Ctx.current_trace () in
  if tr = 0 then args else ("trace", Str (Ctx.hex tr)) :: args

let with_span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_us () in
    let depth = Domain.DLS.get depth_key in
    let stack = Domain.DLS.get children_key in
    stack := ref 0. :: !stack;
    incr depth;
    (* Snapshot the probe once so start/stop/emit always pair, even if
       it is (un)installed mid-span.  Both closures below are allocated
       BEFORE [body] runs [on_start], and [on_stop] is the first thing
       [finally] does — so nothing the span harness allocates is ever
       charged to the measured window. *)
    let p = !probe in
    let finally () =
      (match p with Some pr -> pr.on_stop () | None -> ());
      let dur_us = Clock.now_us () -. t0 in
      let child_us =
        match !stack with
        | top :: rest ->
          stack := rest;
          !top
        | [] -> 0. (* unbalanced push/pop mid-span; be lenient *)
      in
      (match !stack with
      | parent :: _ -> parent := !parent +. dur_us
      | [] -> ());
      decr depth;
      let self_us = Float.max 0. (dur_us -. child_us) in
      let extra =
        match p with
        | Some pr -> pr.on_emit ~name ~dur_us ~self_us
        | None -> []
      in
      emit
        {
          name;
          tid = (Domain.self () :> int);
          ts_us = t0 -. !origin;
          dur_us;
          depth = !depth;
          instant = false;
          args = ctx_args (args @ extra);
        }
    in
    let body () =
      (match p with Some pr -> pr.on_start () | None -> ());
      f ()
    in
    Fun.protect ~finally body
  end

let instant ?(args = []) name =
  if Atomic.get on then begin
    let depth = Domain.DLS.get depth_key in
    emit
      {
        name;
        tid = (Domain.self () :> int);
        ts_us = Clock.now_us () -. !origin;
        dur_us = 0.;
        depth = !depth;
        instant = true;
        args = ctx_args args;
      }
  end

let span_between ?(args = []) name ~t0_us ~t1_us =
  if Atomic.get on then begin
    let depth = Domain.DLS.get depth_key in
    emit
      {
        name;
        tid = (Domain.self () :> int);
        ts_us = t0_us -. !origin;
        dur_us = Float.max 0. (t1_us -. t0_us);
        depth = !depth;
        instant = false;
        args = ctx_args args;
      }
  end

let events = function
  | Null | Discard -> []
  | Memory c ->
    let evs = Mutex.protect c.lock (fun () -> c.events) in
    List.sort (fun a b -> compare a.ts_us b.ts_us) evs

(* --- Renderers ----------------------------------------------------------- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "\"%s\": " (escape_json k);
      match v with
      | Int n -> Printf.bprintf buf "%d" n
      | Float f -> Printf.bprintf buf "%.3f" f
      | Str s -> Printf.bprintf buf "\"%s\"" (escape_json s))
    args;
  Buffer.add_string buf "}"

let add_chrome_event buf ev =
  Printf.bprintf buf "{\"name\": \"%s\", \"cat\": \"wl\", \"ph\": \"%s\", "
    (escape_json ev.name)
    (if ev.instant then "i" else "X");
  Printf.bprintf buf "\"pid\": 1, \"tid\": %d, \"ts\": %.3f" ev.tid ev.ts_us;
  if not ev.instant then Printf.bprintf buf ", \"dur\": %.3f" ev.dur_us
  else Buffer.add_string buf ", \"s\": \"t\"";
  if ev.args <> [] then begin
    Buffer.add_string buf ", \"args\": ";
    add_args buf ev.args
  end;
  Buffer.add_string buf "}"

let to_chrome evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_chrome_event buf ev)
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_jsonl evs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      add_chrome_event buf ev;
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let pp_args ppf args =
  if args <> [] then begin
    Format.fprintf ppf " (";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf ", ";
        match v with
        | Int n -> Format.fprintf ppf "%s=%d" k n
        | Float f -> Format.fprintf ppf "%s=%.3f" k f
        | Str s -> Format.fprintf ppf "%s=%s" k s)
      args;
    Format.fprintf ppf ")"
  end

let pp_tree ppf evs =
  (* Events arrive in start-time order with recorded depths; group per
     domain so interleaved worker tracks stay readable. *)
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i tid ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "domain %d:" tid;
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            Format.fprintf ppf "@,  %s%s" (String.make (2 * ev.depth) ' ') ev.name;
            if ev.instant then Format.fprintf ppf " !"
            else Format.fprintf ppf " %.1fus" ev.dur_us;
            pp_args ppf ev.args
          end)
        evs)
    tids;
  Format.fprintf ppf "@]"

let pp_summary ppf evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      if not ev.instant then begin
        let n, total, mn, mx =
          Option.value ~default:(0, 0., infinity, 0.) (Hashtbl.find_opt tbl ev.name)
        in
        Hashtbl.replace tbl ev.name
          (n + 1, total +. ev.dur_us, Float.min mn ev.dur_us, Float.max mx ev.dur_us)
      end)
    evs;
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
    |> List.sort (fun (_, (_, a, _, _)) (_, (_, b, _, _)) -> compare b a)
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, (n, total, mn, mx)) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-28s %6d calls  total %10.1fus  min %8.1fus  max %8.1fus"
        name n total mn mx)
    rows;
  Format.fprintf ppf "@]"

(* --- Chrome-trace validation ---------------------------------------------

   A minimal JSON parser — just enough to check the trace-event schema
   without an external dependency.  Numbers are parsed as floats, objects
   as assoc lists; that is all the validator needs. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
          | None -> fail "bad \\u escape"
          | Some code ->
            pos := !pos + 4;
            (* Validation only: any code point becomes '?'. *)
            Buffer.add_char buf (if code < 128 then Char.chr code else '?'))
        | _ -> fail "bad escape");
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | '"' -> Jstr (parse_string ())
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | c when c = '-' || (c >= '0' && c <= '9') -> Jnum (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let validate_chrome s =
  match parse_json s with
  | exception Bad msg -> Error ("invalid JSON: " ^ msg)
  | Jobj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | None -> Error "missing traceEvents"
    | Some (Jarr evs) -> (
      let check i = function
        | Jobj f -> (
          let str k =
            match List.assoc_opt k f with Some (Jstr s) -> Some s | _ -> None
          in
          let num k =
            match List.assoc_opt k f with Some (Jnum x) -> Some x | _ -> None
          in
          match (str "name", str "ph", num "ts") with
          | None, _, _ -> Some (Printf.sprintf "event %d: missing name" i)
          | _, None, _ -> Some (Printf.sprintf "event %d: missing ph" i)
          | _, _, None -> Some (Printf.sprintf "event %d: missing ts" i)
          | _, Some "X", _ -> (
            match num "dur" with
            | Some d when d >= 0. -> None
            | _ -> Some (Printf.sprintf "event %d: X without dur >= 0" i))
          | _ -> None)
        | _ -> Some (Printf.sprintf "event %d: not an object" i)
      in
      let rec go i = function
        | [] -> Ok (List.length evs)
        | ev :: rest -> (
          match check i ev with Some e -> Error e | None -> go (i + 1) rest)
      in
      go 0 evs)
    | Some _ -> Error "traceEvents is not an array")
  | _ -> Error "top level is not an object"
