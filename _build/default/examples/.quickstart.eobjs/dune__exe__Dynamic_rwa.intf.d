examples/dynamic_rwa.mli:
