(** Instance (de)serialization: the line-oriented text format and its JSON
    mirror.

    The text format is line-oriented; [#] starts a comment, blank lines are
    ignored:

    {v
    wl 2                 # optional version header (version 2+)
    dag 5                # vertex count, must come before the body
    vlabel 0 a1          # optional, any number of these
    arc 0 1
    arc 1 2
    path 0 1 2           # a dipath as a vertex sequence
    v}

    Version 1 files have no [wl] header; readers accept both.  Writers
    default to version 2 ([wl 2] header); pass [~version:1] for the legacy
    headerless output, byte-identical to what older releases produced.

    The JSON mirror carries the same data:

    {v
    { "format": "wl-instance", "version": 2, "vertices": 5,
      "labels": { "0": "a1" },
      "arcs": [[0, 1], [1, 2]],
      "paths": [[0, 1, 2]] }
    v} *)

val current_version : int
(** The version writers emit by default (2). *)

val to_string : ?version:int -> Instance.t -> string
(** Renders the text format.  Raises [Invalid_argument] on an unknown
    [version] (valid: 1 or {!current_version}). *)

val of_string : string -> (Instance.t, Error.t) result
(** Parses the text format, either version.  Errors: [Parse] with the
    offending 1-based line number, [Unsupported_version] for a [wl N] header
    beyond {!current_version}, [Cyclic] when the arcs close a directed cycle,
    [Invalid_path] when a [path] line is not a dipath of the graph. *)

val of_string_exn : string -> Instance.t
(** Raises {!Error.Error}.
    @deprecated Use {!of_string} — one result-typed form per operation is
    the API rule since the service split (see the table in {!module:Wl});
    this twin remains only for legacy callers and will go in the next
    major version. *)

val to_json : ?pretty:bool -> Instance.t -> string
(** Renders the JSON mirror (always the current version). *)

val of_json : string -> (Instance.t, Error.t) result
(** Parses the JSON mirror.  Same error domain as {!of_string}; JSON syntax
    errors surface as [Parse]. *)

val write_file : ?version:int -> string -> Instance.t -> unit
(** Writes the text format.  Raises like {!to_string}, plus [Sys_error]. *)

val read_file : string -> (Instance.t, Error.t) result
(** Reads either format, sniffing JSON by a leading ['{'].  I/O failures
    surface as [Io]. *)
