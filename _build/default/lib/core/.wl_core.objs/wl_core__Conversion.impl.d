lib/core/conversion.ml: Array Digraph Dipath Instance List Solver Wl_digraph
