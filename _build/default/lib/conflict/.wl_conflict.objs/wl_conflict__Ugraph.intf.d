lib/conflict/ugraph.mli: Format Wl_util
