lib/dag/dag.mli: Digraph Dipath Wl_digraph Wl_util
