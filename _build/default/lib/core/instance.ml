open Wl_digraph
module Dag = Wl_dag.Dag

type t = {
  dag : Dag.t;
  paths : Dipath.t array;
  by_arc : int list array; (* arc id -> family indices using it, ascending *)
}

let build_index g paths =
  let by_arc = Array.make (max 1 (Digraph.n_arcs g)) [] in
  Array.iteri
    (fun i p -> List.iter (fun a -> by_arc.(a) <- i :: by_arc.(a)) (Dipath.arcs p))
    paths;
  Array.map List.rev by_arc

let make dag path_list =
  let paths = Array.of_list path_list in
  { dag; paths; by_arc = build_index (Dag.graph dag) paths }

let of_digraph g path_list =
  Result.map (fun dag -> make dag path_list) (Dag.of_digraph g)

let dag t = t.dag
let graph t = Dag.graph t.dag
let n_paths t = Array.length t.paths

let path t i =
  if i < 0 || i >= n_paths t then invalid_arg "Instance.path: bad index";
  t.paths.(i)

let paths t = Array.copy t.paths
let paths_list t = Array.to_list t.paths

let add_paths t extra = make t.dag (Array.to_list t.paths @ extra)

let paths_through t a =
  if a < 0 || a >= Digraph.n_arcs (graph t) then
    invalid_arg "Instance.paths_through: bad arc";
  t.by_arc.(a)

let pp ppf t =
  let g = graph t in
  Format.fprintf ppf "@[<v>instance: %d vertices, %d arcs, %d dipaths@,"
    (Digraph.n_vertices g) (Digraph.n_arcs g) (n_paths t);
  Array.iteri
    (fun i p -> Format.fprintf ppf "  P%d: %a@," i (Dipath.pp g) p)
    t.paths;
  Format.fprintf ppf "@]"
