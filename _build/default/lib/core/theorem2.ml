open Wl_digraph
module Dag = Wl_dag.Dag
module Internal_cycle = Wl_dag.Internal_cycle

let any_pred g v =
  match Digraph.pred g v with
  | a :: _ -> a
  | [] -> invalid_arg "Theorem2: cycle vertex has no predecessor (not internal)"

let any_succ g v =
  match Digraph.succ g v with
  | d :: _ -> d
  | [] -> invalid_arg "Theorem2: cycle vertex has no successor (not internal)"

let family_from_canonical dag (can : Internal_cycle.canonical) =
  let g = Dag.graph dag in
  let k = Array.length can.b in
  let a = Array.map (any_pred g) can.b in
  let d = Array.map (any_succ g) can.c in
  let prepend v p = Dipath.make g (v :: Dipath.vertices p) in
  let append p v = Dipath.make g (Dipath.vertices p @ [ v ]) in
  let first = prepend a.(0) can.down.(0) in
  let second = append can.down.(0) d.(0) in
  let middles =
    List.concat_map
      (fun i ->
        [
          append (prepend a.(i) can.up.(i - 1)) d.(i - 1);
          append (prepend a.(i) can.down.(i)) d.(i);
        ])
      (List.init (k - 1) (fun j -> j + 1))
  in
  let last = append (prepend a.(0) can.up.(k - 1)) d.(k - 1) in
  (first :: second :: middles) @ [ last ]

let build dag =
  match Internal_cycle.find_canonical dag with
  | None -> None
  | Some can -> Some (Instance.make dag (family_from_canonical dag can))

let replicate inst h =
  if h < 1 then invalid_arg "Theorem2.replicate: h must be >= 1";
  let paths = Instance.paths_list inst in
  let repeated = List.concat_map (fun p -> List.init h (fun _ -> p)) paths in
  Instance.make (Instance.dag inst) repeated
