lib/core/replication.mli: Assignment
