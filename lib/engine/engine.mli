(** Incremental solving sessions over mutable instances.

    A session owns a private copy of a digraph plus a multiset of live
    dipaths and keeps a wavelength assignment warm across mutations.  While
    the graph has no internal cycle (the paper's Theorem 1 regime) the
    session maintains the exact optimum [w = pi] incrementally:

    {ul
    {- {!add_path} first looks for a palette color free on the touched arcs
       (a {e warm hit}), opens a fresh color when the insertion itself
       raised the load [pi], and otherwise runs a bounded Theorem-1-style
       Kempe-cascade repair;}
    {- {!remove_path} keeps the palette contiguous and, when the optimum
       shrank, greedily empties the smallest color class;}
    {- {!add_arc} rejects directed cycles outright and re-classifies the
       graph — the first internal cycle ends the warm regime.}}

    Whenever the warm path gives up (flip budget exhausted, shrink failure,
    internal cycle appeared) the session only marks itself dirty; the next
    query transparently re-solves the materialized instance with
    {!Wl_core.Solver.solve}, so results are always exactly what a fresh
    solve of the current instance would report.  Cumulative per-session
    {!stats} record how often each path was taken; the [engine.*]
    {!Wl_obs.Metrics} counters aggregate the same events globally.

    The warm machinery runs on a retained per-session scratch (generation
    stamps, an int-array Kempe queue, recycled position rows), so a steady
    stream of warm {!add_dipath_exn}/{!remove_path_exn} ops performs no
    minor allocation once buffer capacities have settled — the
    [engine.add_path] and [engine.remove_path] trace spans report
    [gc.minor_w = 0] under {!Wl_obs.Prof}.  The scratch is not part of the
    logical state: snapshots and rollbacks never share it. *)

open Wl_digraph
open Wl_core

type session

type path_id = int
(** Handles returned by {!add_path}: slot indices, never reused, so a stale
    handle is detected ([Invalid_op]) rather than silently rebound. *)

(** {1 Construction} *)

val create :
  ?repair_budget:int ->
  ?flight_capacity:int ->
  ?slo_target_ns:int ->
  ?slo_budget:float ->
  Instance.t ->
  session
(** Start a session from an existing instance (graph and paths are copied;
    the instance value is not aliased).  [repair_budget] bounds the number
    of dipaths a single warm repair may recolor before falling back to a
    full re-solve (default 256; [0] disables warm repairs entirely).
    [flight_capacity] sizes the session's {!Wl_obs.Flight} ring (default
    1024 ops); [slo_target_ns] (default 1 ms) and [slo_budget] (default
    0.01) configure the per-op latency SLO reported by {!health}. *)

val of_digraph :
  ?repair_budget:int ->
  ?flight_capacity:int ->
  ?slo_target_ns:int ->
  ?slo_budget:float ->
  Digraph.t ->
  (session, Error.t) result
(** Path-less session over a copy of the graph; [Error (Cyclic _)] when the
    graph is not a DAG. *)

(** {1 Mutations}

    All mutations are result-typed and leave the session unchanged on
    [Error]. *)

val add_path : session -> Digraph.vertex list -> (path_id, Error.t) result
(** Validates the vertex sequence against the current graph
    ([Invalid_path]) and inserts it. *)

val add_dipath : session -> Dipath.t -> (path_id, Error.t) result
(** Insert a caller-built dipath.  The hot-path variant of {!add_path}:
    no vertex-list traversal and no dipath construction per call.  The
    dipath is validated against the session's graph by arc ids — in
    range, chained head-to-tail, no repeated vertex ([Invalid_path]
    otherwise).  Arc ids survive the graph copy made by {!create}, so
    dipaths built against the source instance's graph are valid here. *)

val add_dipath_exn : session -> Dipath.t -> path_id
(** {!add_dipath}, raising {!Wl_core.Error.Error} instead of returning
    [Error] — the warm steady state performs zero minor allocation, which
    a result cell would break.  This and {!remove_path_exn} are the only
    two [_exn] twins the public API keeps (see the deprecation table in
    {!module:Wl}): both are documented zero-alloc hot paths, everything
    else is result-typed only. *)

val remove_path : session -> path_id -> (unit, Error.t) result
(** [Bad_index] for an out-of-range handle, [Invalid_op] for an
    already-removed one. *)

val remove_path_exn : session -> path_id -> unit
(** {!remove_path}, raising {!Wl_core.Error.Error}; allocation-free on
    the warm path, like {!add_dipath_exn}. *)

val add_arc :
  session -> Digraph.vertex -> Digraph.vertex -> (Digraph.arc, Error.t) result
(** Appends an arc.  [Bad_index] on a bad endpoint, [Invalid_op] on a
    self-loop or duplicate, [Cyclic] when the arc would close a directed
    cycle (the graph must stay a DAG).  Arc ids are append-only, so dipath
    handles survive. *)

(** {1 Queries} *)

val report : session -> Solver.report
(** The solver report for the current instance.  O(live paths) straight off
    the warm state; triggers one full solve first when the session is
    dirty.  Equal (same wavelength count, same optimality) to
    [Solver.solve (instance session)]. *)

val color_of : session -> path_id -> (int, Error.t) result
(** Current wavelength of a live path (forces a re-solve when dirty). *)

val instance : session -> Instance.t
(** Materialize the current graph and live paths (in handle order) as an
    immutable instance.  The result does not alias session state. *)

val id : session -> int
val n_live_paths : session -> int
val live_paths : session -> (path_id * Dipath.t) list
val classification : session -> Wl_dag.Classify.t
val pi : session -> int
(** The live load, maintained incrementally (O(1) to read). *)

val is_warm : session -> bool
(** Whether the next mutation can take the incremental path. *)

(** {1 Batched submission} *)

type op =
  | Add_path of Digraph.vertex list
  | Remove_path of path_id
  | Add_arc of Digraph.vertex * Digraph.vertex

type op_outcome =
  | Path_added of path_id
  | Path_removed of path_id
  | Arc_added of Digraph.arc

type stats = {
  ops : int;  (** accepted mutations *)
  warm_hits : int;  (** adds colored with an existing free color *)
  fresh_colors : int;  (** adds that opened a color because [pi] grew *)
  repairs : int;  (** adds resolved by a Kempe cascade *)
  repair_flips : int;  (** total dipaths recolored across repairs *)
  shrink_recolors : int;  (** removals that emptied a color class greedily *)
  warm_removes : int;  (** removals handled without re-solving *)
  fallbacks : int;  (** warm attempts abandoned to a dirty re-solve *)
  full_solves : int;  (** full [Solver.solve] runs *)
  rejected : int;  (** mutations refused with an [Error] *)
}

val stats : session -> stats
(** Cumulative since [create] (never rolled back). *)

val hit_rate : stats -> float
(** Fraction of accepted mutations handled warm; [1.0] when idle. *)

type batch = {
  outcomes : (op_outcome, Error.t) result array;
      (** per-op, in submission order; failed ops are recorded and the rest
          of the batch still runs *)
  batch_report : Solver.report;  (** the report after the whole batch *)
  batch_stats : stats;
}

val submit : session -> op list -> batch
(** Apply a batch of mutations, then report once — intermediate states are
    never solved, so a dirty streak inside the batch costs one solve at the
    end, not one per op. *)

val submit_many :
  ?domains:int ->
  ?max_in_flight:int ->
  (session * op list) array ->
  batch array
(** Independent sessions solve in parallel over {!Wl_util.Parallel} domains,
    processed in waves of [max_in_flight] (default [4 * default_domains ()])
    as backpressure.  If the same session appears twice the whole call
    degrades to deterministic sequential submission. *)

(** {1 Snapshot / rollback} *)

type snapshot

val snapshot : session -> snapshot
(** Deep copy of the session state (graph, paths, coloring, caches); O(size
    of session), independent of later mutations. *)

val rollback : session -> snapshot -> (unit, Error.t) result
(** Restore a snapshot taken from {e this} session; [Invalid_op] when the
    snapshot belongs to another session.  A snapshot can be rolled back to
    any number of times.  Cumulative {!stats} are not rolled back. *)

(** {1 Auditing} *)

val audit : session -> (unit, string) result
(** Exhaustive internal-invariant check (occupancy index, load accounting,
    warm coloring validity and contiguity); O(total path length).  Test
    hook.  On [Error] the violation is recorded in the session's flight
    ring and the {!Wl_obs.Flight} auto-dump latch fires, so an installed
    dump handler receives the op tail that led to the broken state. *)

val corrupt_for_testing : session -> unit
(** Deliberately break the internal load accounting so the next {!audit}
    fails — the hook behind [wl session --inject-audit-failure] and the
    CI check that a failing audit emits a flight dump.  The session is
    unusable for real work afterwards. *)

(** {1 Observability}

    Per-session flight recorder, HDR op latencies and SLO state are
    always on: recording costs a handful of int stores per op and keeps
    the warm paths zero-minor-allocation.  The read-back surfaces below
    are cold and may allocate. *)

val flight : session -> Wl_obs.Flight.t
(** The session's flight recorder (e.g. to render dumps, or {!rearm}
    after handling a triggered one). *)

val add_hdr : session -> Wl_obs.Hdr.t
val remove_hdr : session -> Wl_obs.Hdr.t
(** The live per-session latency histograms, exposed so a daemon can
    fold every session into one rollup via {!Wl_obs.Hdr.merge_into}
    (true cross-shard quantiles).  Read-side surfaces — keep writing
    through engine ops only. *)

type health = {
  healthy : bool;
      (** SLO not tripped, no warm-hit-rate drop, fallback streak < 8 *)
  slo : Wl_obs.Hdr.Slo.state;
  add_latency : Wl_obs.Hdr.snapshot;
  remove_latency : Wl_obs.Hdr.snapshot;
  add_exemplar : (int * int) option;
      (** {!Wl_obs.Hdr.exemplar} of the add histogram: worst traced
          sample as [(ns, trace_id)], [None] until a traced op lands *)
  remove_exemplar : (int * int) option;
  fallback_streak : int;  (** consecutive warm-path fallbacks, current *)
  max_fallback_streak : int;
  warm_hit_recent : float;  (** warm-handled fraction over the last 256 ops *)
  warm_hit_lifetime : float;  (** {!hit_rate} of the cumulative stats *)
  warm_drop : bool;
      (** the recent rate fell under half the lifetime rate (window full) *)
}

val health : session -> health
val pp_health : Format.formatter -> health -> unit
