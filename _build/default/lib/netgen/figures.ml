open Wl_digraph
open Wl_core
module Dag = Wl_dag.Dag

(* Figure 1: k pairwise-conflicting dipaths of load 2.  For every pair
   {i, j} a dedicated meeting arc m -> m' carried by exactly dipaths i and
   j; each dipath visits its meetings in one fixed global order, linked by
   private arcs, so all dipaths are simple and the graph acyclic. *)
let fig1 k =
  if k < 2 then invalid_arg "Figures.fig1: k must be >= 2";
  let g = Digraph.create () in
  let source = Array.init k (fun i -> Digraph.add_vertex ~label:(Printf.sprintf "s%d" (i + 1)) g) in
  let sink = Array.init k (fun i -> Digraph.add_vertex ~label:(Printf.sprintf "t%d" (i + 1)) g) in
  (* Pairs in lexicographic order; meeting vertices per pair. *)
  let pairs = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      pairs := (i, j) :: !pairs
    done
  done;
  let pairs = List.rev !pairs in
  let meeting = Hashtbl.create 32 in
  List.iter
    (fun (i, j) ->
      let m = Digraph.add_vertex ~label:(Printf.sprintf "m%d.%d" (i + 1) (j + 1)) g in
      let m' = Digraph.add_vertex ~label:(Printf.sprintf "m%d.%d'" (i + 1) (j + 1)) g in
      ignore (Digraph.add_arc g m m');
      Hashtbl.add meeting (i, j) (m, m'))
    pairs;
  let paths =
    List.init k (fun i ->
        let my_meetings =
          List.filter (fun (a, b) -> a = i || b = i) pairs
          |> List.map (Hashtbl.find meeting)
        in
        let rec link prev acc = function
          | [] ->
            ignore (Digraph.add_arc g prev sink.(i));
            List.rev (sink.(i) :: acc)
          | (m, m') :: rest ->
            ignore (Digraph.add_arc g prev m);
            link m' (m' :: m :: acc) rest
        in
        let verts = link source.(i) [ source.(i) ] my_meetings in
        verts)
  in
  let dag = Dag.of_digraph_exn g in
  Instance.make dag (List.map (Dipath.make g) paths)

let fig3 () =
  let g =
    Digraph.of_arcs
      ~labels:[| "a1"; "b1"; "c1"; "d1"; "e1" |]
      5
      [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 3) ]
  in
  let dag = Dag.of_digraph_exn g in
  let p l = Dipath.make g l in
  Instance.make dag
    [ p [ 0; 1; 2 ]; p [ 1; 2; 3 ]; p [ 2; 3; 4 ]; p [ 1; 3; 4 ]; p [ 0; 1; 3 ] ]

let fig5_graph k =
  if k < 2 then invalid_arg "Figures.fig5_graph: k must be >= 2";
  let g = Digraph.create () in
  let name prefix i = Printf.sprintf "%s%d" prefix (i + 1) in
  let a = Array.init k (fun i -> Digraph.add_vertex ~label:(name "a" i) g) in
  let b = Array.init k (fun i -> Digraph.add_vertex ~label:(name "b" i) g) in
  let c = Array.init k (fun i -> Digraph.add_vertex ~label:(name "c" i) g) in
  let d = Array.init k (fun i -> Digraph.add_vertex ~label:(name "d" i) g) in
  for i = 0 to k - 1 do
    ignore (Digraph.add_arc g a.(i) b.(i));
    ignore (Digraph.add_arc g b.(i) c.(i));
    ignore (Digraph.add_arc g b.((i + 1) mod k) c.(i));
    ignore (Digraph.add_arc g c.(i) d.(i))
  done;
  Dag.of_digraph_exn g

let fig5 k =
  let dag = fig5_graph k in
  match Theorem2.build dag with
  | Some inst -> inst
  | None -> invalid_arg "Figures.fig5: construction has no internal cycle?"

let havet_graph () =
  let g = Digraph.create () in
  let v l = Digraph.add_vertex ~label:l g in
  let a1 = v "a1" and a1' = v "a1'" and a2 = v "a2" and a2' = v "a2'" in
  let b1 = v "b1" and b2 = v "b2" in
  let c1 = v "c1" and c2 = v "c2" in
  let d1 = v "d1" and d1' = v "d1'" and d2 = v "d2" and d2' = v "d2'" in
  List.iter
    (fun (u, w) -> ignore (Digraph.add_arc g u w))
    [
      (a1, b1); (a1', b1); (a2, b2); (a2', b2);
      (b1, c1); (b1, c2); (b2, c1); (b2, c2);
      (c1, d1); (c1, d1'); (c2, d2); (c2, d2');
    ];
  Dag.of_digraph_exn g

(* The eight dipaths of Figure 9, ordered so that consecutive ones (mod 8)
   conflict and antipodal ones conflict: the conflict graph is the Wagner
   graph C_8 + {i, i+4}.  Conflicts arise from three perfect matchings:
   shared a-arc (pairs (0,1) (2,3) (4,5) (6,7)), shared c->d arc (pairs
   (1,2) (3,4) (5,6) (7,0)), shared b->c arc (pairs (i, i+4)). *)
let havet h =
  if h < 1 then invalid_arg "Figures.havet: h must be >= 1";
  let dag = havet_graph () in
  let g = Dag.graph dag in
  let idx l =
    match Digraph.vertex_of_label g l with
    | Some v -> v
    | None -> invalid_arg "Figures.havet: missing label"
  in
  let p l = Dipath.make g (List.map idx l) in
  let base =
    [
      p [ "a1"; "b1"; "c1"; "d1'" ];
      p [ "a1"; "b1"; "c2"; "d2" ];
      p [ "a2"; "b2"; "c2"; "d2" ];
      p [ "a2"; "b2"; "c1"; "d1" ];
      p [ "a1'"; "b1"; "c1"; "d1" ];
      p [ "a1'"; "b1"; "c2"; "d2'" ];
      p [ "a2'"; "b2"; "c2"; "d2'" ];
      p [ "a2'"; "b2"; "c1"; "d1'" ];
    ]
  in
  Theorem2.replicate (Instance.make dag base) h

let havet_base_independent_sets () =
  Array.init 8 (fun j -> [ j; (j + 2) mod 8; (j + 5) mod 8 ])

let odd_cycle_independent_sets k =
  if k < 1 then invalid_arg "Figures.odd_cycle_independent_sets";
  let m = (2 * k) + 1 in
  Array.init m (fun j -> List.init k (fun l -> (j + (2 * l)) mod m))
