module Vec = Wl_util.Vec

type vertex = int
type arc = int

type t = {
  out_adj : (vertex * arc) Vec.t Vec.t; (* per vertex: (successor, arc id) *)
  in_adj : (vertex * arc) Vec.t Vec.t;
  arc_ends : (vertex * vertex) Vec.t;
  labels : string option Vec.t;
  arc_index : (int, arc) Hashtbl.t; (* key: src * 2^31 + dst, for mem_arc *)
}

let create () =
  {
    out_adj = Vec.create ();
    in_adj = Vec.create ();
    arc_ends = Vec.create ();
    labels = Vec.create ();
    arc_index = Hashtbl.create 64;
  }

let n_vertices g = Vec.length g.out_adj
let n_arcs g = Vec.length g.arc_ends

let check_vertex g v =
  if v < 0 || v >= n_vertices g then invalid_arg "Digraph: no such vertex"

let key u v = (u * 0x40000000) + v

let add_vertex ?label g =
  let v = n_vertices g in
  Vec.push g.out_adj (Vec.create ());
  Vec.push g.in_adj (Vec.create ());
  Vec.push g.labels label;
  v

let add_vertices g k =
  for _ = 1 to k do
    ignore (add_vertex g)
  done

let find_arc g u v =
  check_vertex g u;
  check_vertex g v;
  Hashtbl.find_opt g.arc_index (key u v)

let mem_arc g u v = find_arc g u v <> None

let add_arc g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Digraph.add_arc: self-loop";
  if mem_arc g u v then invalid_arg "Digraph.add_arc: duplicate arc";
  let a = n_arcs g in
  Vec.push g.arc_ends (u, v);
  Vec.push (Vec.get g.out_adj u) (v, a);
  Vec.push (Vec.get g.in_adj v) (u, a);
  Hashtbl.add g.arc_index (key u v) a;
  a

let of_arcs ?labels n arcs =
  let g = create () in
  (match labels with
  | None -> add_vertices g n
  | Some ls ->
    if Array.length ls <> n then invalid_arg "Digraph.of_arcs: labels length";
    Array.iter (fun l -> ignore (add_vertex ~label:l g)) ls);
  List.iter (fun (u, v) -> ignore (add_arc g u v)) arcs;
  g

let arc_endpoints g a =
  if a < 0 || a >= n_arcs g then invalid_arg "Digraph: no such arc";
  Vec.get g.arc_ends a

let arc_src g a = fst (arc_endpoints g a)
let arc_dst g a = snd (arc_endpoints g a)

let out_degree g v =
  check_vertex g v;
  Vec.length (Vec.get g.out_adj v)

let in_degree g v =
  check_vertex g v;
  Vec.length (Vec.get g.in_adj v)

let out_arcs g v =
  check_vertex g v;
  List.rev (Vec.fold (fun acc (_, a) -> a :: acc) [] (Vec.get g.out_adj v))

let in_arcs g v =
  check_vertex g v;
  List.rev (Vec.fold (fun acc (_, a) -> a :: acc) [] (Vec.get g.in_adj v))

let succ g v =
  check_vertex g v;
  List.rev (Vec.fold (fun acc (w, _) -> w :: acc) [] (Vec.get g.out_adj v))

let pred g v =
  check_vertex g v;
  List.rev (Vec.fold (fun acc (w, _) -> w :: acc) [] (Vec.get g.in_adj v))

let arcs g = Vec.to_list g.arc_ends

let vertices g = List.init (n_vertices g) Fun.id

let label g v =
  check_vertex g v;
  match Vec.get g.labels v with
  | Some l -> l
  | None -> Printf.sprintf "v%d" v

let set_label g v l =
  check_vertex g v;
  Vec.set g.labels v (Some l)

let vertex_of_label g l =
  let n = n_vertices g in
  let rec go v =
    if v >= n then None
    else
      match Vec.get g.labels v with
      | Some l' when String.equal l l' -> Some v
      | _ -> go (v + 1)
  in
  go 0

let iter_vertices f g =
  for v = 0 to n_vertices g - 1 do
    f v
  done

let iter_arcs f g = Vec.iteri (fun a (u, v) -> f a u v) g.arc_ends

let fold_arcs f g init =
  let acc = ref init in
  iter_arcs (fun a u v -> acc := f a u v !acc) g;
  !acc

let copy g =
  let labels = Array.init (n_vertices g) (fun v -> Vec.get g.labels v) in
  let g' = create () in
  Array.iter (fun l -> ignore (match l with
    | Some l -> add_vertex ~label:l g'
    | None -> add_vertex g')) labels;
  iter_arcs (fun _ u v -> ignore (add_arc g' u v)) g;
  g'

let reverse g =
  let g' = create () in
  iter_vertices
    (fun v ->
      ignore
        (match Vec.get g.labels v with
        | Some l -> add_vertex ~label:l g'
        | None -> add_vertex g'))
    g;
  iter_arcs (fun _ u v -> ignore (add_arc g' v u)) g;
  g'

let induced_subgraph g vs =
  let n = n_vertices g in
  let old_to_new = Array.make n (-1) in
  let kept = Vec.create () in
  List.iter
    (fun v ->
      check_vertex g v;
      if old_to_new.(v) = -1 then begin
        old_to_new.(v) <- Vec.length kept;
        Vec.push kept v
      end)
    vs;
  let g' = create () in
  Vec.iter
    (fun v ->
      ignore
        (match Vec.get g.labels v with
        | Some l -> add_vertex ~label:l g'
        | None -> add_vertex g'))
    kept;
  iter_arcs
    (fun _ u v ->
      if old_to_new.(u) >= 0 && old_to_new.(v) >= 0 then
        ignore (add_arc g' old_to_new.(u) old_to_new.(v)))
    g;
  (g', Vec.to_array kept)

let equal_structure g1 g2 =
  n_vertices g1 = n_vertices g2
  && n_arcs g1 = n_arcs g2
  && List.sort compare (arcs g1) = List.sort compare (arcs g2)

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d vertices, %d arcs@," (n_vertices g)
    (n_arcs g);
  iter_arcs
    (fun a u v -> Format.fprintf ppf "  #%d: %s -> %s@," a (label g u) (label g v))
    g;
  Format.fprintf ppf "@]"
