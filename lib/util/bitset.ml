(* Bits are packed 62 per word ([Sys.int_size - 1] would be 62 anyway on
   64-bit; we use a fixed 62 to keep arithmetic simple and portable). *)

let bits_per_word = 62

type t = { n : int; words : int array }

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- (1 lsl bits_per_word) - 1
  done;
  (* Mask off bits beyond capacity in the last word. *)
  let last_bits = t.n mod bits_per_word in
  if t.n = 0 then clear t
  else if last_bits <> 0 then begin
    let lw = Array.length t.words - 1 in
    t.words.(lw) <- t.words.(lw) land ((1 lsl last_bits) - 1)
  end

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let diff_into dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let inter a b = let c = copy a in inter_into c b; c
let union a b = let c = copy a in union_into c b; c
let diff a b = let c = copy a in diff_into c b; c

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  same_capacity a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* Count-trailing-zeros by byte-table steps: the old one-shift-per-bit
   loop cost ~31 iterations on average for dense sets and dominated
   [iter] on 50%-full adjacency rows.  Table built once at module init. *)
let ctz8 =
  Array.init 256 (fun b -> (* alloc-ok *)
      if b = 0 then 8
      else begin
        let rec go b i = if b land 1 <> 0 then i else go (b lsr 1) (i + 1) in
        go b 0
      end)

let rec ctz_from b i =
  if b land 0xFF = 0 then ctz_from (b lsr 8) (i + 8)
  else i + Array.unsafe_get ctz8 (b land 0xFF)

let rec iter_word f base word =
  if word <> 0 then begin
    f (base + ctz_from word 0);
    iter_word f base (word land (word - 1))
  end

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    iter_word f (w * bits_per_word) t.words.(w)
  done

(* Members >= [lo] only: whole words below [lo]'s are skipped and the
   boundary word is masked once, so callers that want an upper triangle
   (e.g. each undirected edge once) pay nothing for the lower half. *)
let iter_ge f t lo =
  if lo < t.n then begin
    let w0 = lo / bits_per_word and b0 = lo mod bits_per_word in
    iter_word f (w0 * bits_per_word)
      (t.words.(w0) land (-1 lsl b0));
    for w = w0 + 1 to Array.length t.words - 1 do
      iter_word f (w * bits_per_word) t.words.(w)
    done
  end

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let first_absent t =
  let full = (1 lsl bits_per_word) - 1 in
  let rec scan w =
    if w >= Array.length t.words then t.n
    else if t.words.(w) = full then scan (w + 1)
    else begin
      let word = t.words.(w) in
      let rec bit b i = if word land b = 0 then i else bit (b lsl 1) (i + 1) in
      min t.n ((w * bits_per_word) + bit 1 0)
    end
  in
  scan 0

let first t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let of_list n elems =
  let t = create n in
  List.iter (add t) elems;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)
