(** Measurement engine for [wl bench].

    Each arm is measured in two separate passes: a timed pass with every
    instrument off (clean ns/op, summarized to median/MAD/CV over
    repeated batches), then one observation pass with {!Wl_obs.Metrics}
    and {!Wl_obs.Prof} enabled under the discard trace sink, which
    captures the counter embedding — including the [prof.<span>.*]
    GC/allocation mirrors — and the arm's extras. *)

val measure : ?runs:int -> ?target_s:float -> (unit -> unit) -> Wl_obs.Store.sample
(** Time [f]: one warm-up, one calibration run to size batches so the
    whole measurement takes [target_s] (default 0.35 s), then [runs]
    (default 7) timed batches; each batch yields one ns/op sample. *)

val measure_alloc : ?reps:int -> (unit -> unit) -> float
(** Minor words allocated by one op in steady state: three warm-up runs
    (retained scratch reaches capacity), then the minimum
    [Gc.minor_words] delta over [reps] (default 4) single runs — the
    minimum so an amortized buffer doubling in one rep does not
    misreport.  Recorded by {!measure_arm} as the
    [Wl_obs.Store.alloc_key] extra, which the gate judges. *)

val observe : Arms.arm -> (string * Wl_json.Jsonx.t) list * (string * float) list
(** One instrumented run: the Metrics snapshot as a counter embedding,
    plus the arm's extras.  Resets Metrics/Prof around itself. *)

val measure_arm : ?runs:int -> Arms.arm -> Wl_obs.Store.point
(** {!measure} + {!observe} + the optional baseline, as a trajectory
    point. *)

val run_suite :
  ?quick:bool ->
  ?runs:int ->
  ?handicaps:(string * int) list ->
  ?alloc_handicaps:(string * int) list ->
  ?note:string ->
  ?domains:int ->
  ?on_point:(Wl_obs.Store.point -> unit) ->
  unit ->
  Wl_obs.Store.entry
(** Measure the whole {!Arms.suite} into one trajectory entry for the
    current environment.  [handicaps] injects busy-wait regressions and
    [alloc_handicaps] synthetic per-op allocations (see
    {!Arms.with_handicap}/{!Arms.with_alloc_handicap}); [on_point] fires
    after each arm for progress reporting; [domains] defaults to
    [Wl_util.Parallel.default_domains ()]. *)
