(** Saturating non-negative integer arithmetic.

    Counting dipaths in a DAG can overflow machine integers on adversarial
    inputs; the UPP check only needs to distinguish 0, 1 and "2 or more",
    so counts saturate at [cap] instead of wrapping. *)

type t = private int
(** A saturated count: either an exact value [< cap] or [cap] meaning
    "at least cap". *)

val cap : int
(** Saturation ceiling (a large value, currently [max_int / 4]). *)

val zero : t
val one : t
val of_int : int -> t
(** Clamps into [\[0, cap\]]. *)

val to_int : t -> int
val add : t -> t -> t
val mul : t -> t -> t
val is_saturated : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
