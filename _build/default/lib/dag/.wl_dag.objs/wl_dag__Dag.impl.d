lib/dag/dag.ml: Array Digraph Dipath Fun Int List Printf String Traversal Wl_digraph Wl_util
