(* Observability (Wl_obs): span nesting and timing, counter correctness
   under domain-parallel maps, chrome trace-event JSON round-trips, and
   the zero-overhead contract of the disabled path on the Theorem 1 hot
   loop.  Metrics and tracing are global state, so every test restores
   the disabled defaults before returning. *)

open Helpers
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Parallel = Wl_util.Parallel
module Theorem1 = Wl_core.Theorem1
module Solver = Wl_core.Solver
module Sweeps = Wl_validate.Sweeps

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let with_trace f =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.clear (fun () -> f sink)

(* --- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  let events =
    with_trace (fun sink ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1));
            Trace.instant "mark");
        Trace.events sink)
  in
  check_int "three events" 3 (List.length events);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let outer = find "outer" and inner = find "inner" and mark = find "mark" in
  check_int "outer at depth 0" 0 outer.Trace.depth;
  check_int "inner at depth 1" 1 inner.Trace.depth;
  check "instant flagged" true mark.Trace.instant;
  check "inner starts after outer" true (inner.Trace.ts_us >= outer.Trace.ts_us);
  check "inner contained in outer" true
    (inner.Trace.ts_us +. inner.Trace.dur_us
    <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1e-3);
  check "durations non-negative" true
    (List.for_all (fun e -> e.Trace.dur_us >= 0.) events);
  (* [events] promises start-time order. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && sorted rest
    | _ -> true
  in
  check "start-time sorted" true (sorted events)

let test_span_survives_raise () =
  let events =
    with_trace (fun sink ->
        (try Trace.with_span "doomed" (fun () -> failwith "boom")
         with Failure _ -> ());
        Trace.events sink)
  in
  check_int "span emitted despite raise" 1 (List.length events)

(* --- counters under parallel maps ---------------------------------------- *)

let test_counters_under_map_array () =
  let c = Metrics.counter "test.obs.items" in
  List.iter
    (fun domains ->
      with_metrics (fun () ->
          let n = 500 in
          let input = Array.init n Fun.id in
          let out =
            Parallel.map_array ~domains
              (fun x ->
                Metrics.incr c;
                x * x)
              input
          in
          check_int
            (Printf.sprintf "all %d increments seen at %d domains" n domains)
            n (Metrics.value c);
          check
            (Printf.sprintf "map result intact at %d domains" domains)
            true
            (Array.for_all Fun.id (Array.mapi (fun i y -> y = i * i) out))))
    [ 1; 2; 4 ]

let test_histogram_snapshot () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.obs.hist" in
      List.iter (Metrics.observe h) [ 1; 3; 3; 100; 1000 ];
      match Metrics.find_histogram "test.obs.hist" with
      | None -> Alcotest.fail "histogram not registered"
      | Some s ->
        check_int "count" 5 s.Metrics.count;
        check_int "sum" 1107 s.Metrics.sum;
        check_int "min" 1 s.Metrics.min;
        check_int "max" 1000 s.Metrics.max;
        check_int "bucket counts total to count" 5
          (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Metrics.buckets);
        let rec ascending = function
          | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
          | _ -> true
        in
        check "buckets ascending" true (ascending s.Metrics.buckets))

let test_disabled_updates_ignored () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.off" in
  Metrics.incr c;
  Metrics.add c 10;
  check_int "updates dropped while disabled" 0 (Metrics.value c)

(* --- chrome trace JSON ---------------------------------------------------- *)

let test_chrome_roundtrip () =
  let events =
    with_trace (fun sink ->
        Trace.with_span
          ~args:[ ("n", Trace.Int 7); ("tag", Trace.Str "a\"b\\c") ]
          "solve"
          (fun () -> Trace.instant "checkpoint");
        Trace.events sink)
  in
  let json = Trace.to_chrome events in
  (match Trace.validate_chrome json with
  | Ok n -> check_int "all events survive the round-trip" (List.length events) n
  | Error msg -> Alcotest.failf "generated trace rejected: %s" msg);
  (* The JSONL rendering has one object per line. *)
  let jsonl = Trace.to_jsonl events in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' jsonl)
  in
  check_int "jsonl line per event" (List.length events) (List.length lines)

let test_chrome_rejects_malformed () =
  let rejected s = Result.is_error (Trace.validate_chrome s) in
  check "empty input" true (rejected "");
  check "top-level array" true (rejected "[]");
  check "traceEvents not an array" true (rejected {|{"traceEvents": 3}|});
  check "event missing name" true
    (rejected {|{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}|});
  check "negative dur on X event" true
    (rejected
       {|{"traceEvents": [{"name": "s", "ph": "X", "ts": 0, "dur": -5}]}|});
  check "trailing garbage" true (rejected {|{"traceEvents": []} extra|});
  check "minimal valid trace accepted" true
    (Trace.validate_chrome {|{"traceEvents": []}|} = Ok 0)

(* --- zero-overhead disabled path ------------------------------------------ *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_counter_no_alloc () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.noalloc" in
  (* Warm up so the closure and any lazy state exist before measuring. *)
  Metrics.incr c;
  let words =
    minor_words_of (fun () ->
        for _ = 1 to 100_000 do
          Metrics.incr c
        done)
  in
  (* A single boxed float from Gc.minor_words itself is fine; anything
     per-iteration would show up as >= 200k words. *)
  check "disabled incr allocates nothing" true (words < 256.)

let test_disabled_obs_theorem1_deterministic_alloc () =
  (* With the null sink and metrics off, instrumentation must not change
     Theorem 1's allocation behaviour: two identical runs allocate
     identical minor words. *)
  Metrics.set_enabled false;
  Trace.clear ();
  let inst = random_nic_instance ~n:60 ~k:80 5 in
  ignore (Theorem1.color inst);
  let a = minor_words_of (fun () -> ignore (Theorem1.color inst)) in
  let b = minor_words_of (fun () -> ignore (Theorem1.color inst)) in
  check "identical allocation across runs" true (a = b)

(* --- end-to-end instrumentation ------------------------------------------- *)

let test_sweep_latency_histogram () =
  with_metrics (fun () ->
      let case = List.assoc "thm1" Sweeps.all in
      let failures = Sweeps.run ~seeds:10 case in
      check "sweep clean" true (failures = []);
      match Metrics.find_histogram "sweep.thm1.ns" with
      | None -> Alcotest.fail "sweep.thm1.ns not populated"
      | Some s ->
        check_int "one latency sample per seed" 10 s.Metrics.count;
        check "latencies positive" true (s.Metrics.min > 0))

let test_solver_counters_and_provenance () =
  let inst = random_nic_instance ~n:24 ~k:16 3 in
  let report =
    with_metrics (fun () ->
        let report = Solver.solve inst in
        check "solver.solves counted" true
          (Metrics.find_counter "solver.solves" = Some 1);
        let arm =
          "solver.arm." ^ Solver.method_name report.Solver.method_used
        in
        check (arm ^ " counted") true (Metrics.find_counter arm = Some 1);
        report)
  in
  let render stats =
    Format.asprintf "%a" (Solver.pp_report ~stats) report
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  check "default report has no provenance" false
    (contains (render false) "(from ");
  check "stats report names the bound source" true
    (contains (render true) "(from ");
  check "stats report appends counters" true
    (contains (render true) "counters:")

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
        Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
        Alcotest.test_case "counters under map_array" `Quick
          test_counters_under_map_array;
        Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
        Alcotest.test_case "disabled updates ignored" `Quick
          test_disabled_updates_ignored;
        Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_roundtrip;
        Alcotest.test_case "chrome validator rejects malformed" `Quick
          test_chrome_rejects_malformed;
        Alcotest.test_case "disabled counter allocates nothing" `Quick
          test_disabled_counter_no_alloc;
        Alcotest.test_case "theorem1 alloc unchanged when off" `Quick
          test_disabled_obs_theorem1_deterministic_alloc;
        Alcotest.test_case "sweep latency histogram" `Quick
          test_sweep_latency_histogram;
        Alcotest.test_case "solver counters and provenance" `Quick
          test_solver_counters_and_provenance;
      ] );
  ]
