lib/conflict/dimacs.ml: Buffer Fun List Printf String Ugraph
