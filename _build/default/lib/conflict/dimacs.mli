(** DIMACS graph-coloring format export/import.

    Conflict graphs exported here can be fed to any off-the-shelf coloring
    or clique solver ([p edge n m] header, 1-based [e u v] lines), and
    published DIMACS benchmark graphs can be pulled in to exercise the
    coloring substrate. *)

val to_string : ?comment:string -> Ugraph.t -> string

val of_string : string -> (Ugraph.t, string) result
(** Accepts [c] comment lines, one [p edge <n> <m>] header, and [e u v]
    lines with 1-based endpoints; errors carry the line number. *)

val write_file : string -> Ugraph.t -> unit

val read_file : string -> (Ugraph.t, string) result
