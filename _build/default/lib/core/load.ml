open Wl_digraph

let arc_load inst a = List.length (Instance.paths_through inst a)

let load_profile inst =
  let g = Instance.graph inst in
  Array.init (Digraph.n_arcs g) (arc_load inst)

let pi inst = Array.fold_left max 0 (load_profile inst)

let max_load_arcs inst =
  let profile = load_profile inst in
  let best = Array.fold_left max 0 profile in
  if best = 0 then []
  else
    Array.to_list (Array.mapi (fun a l -> (a, l)) profile)
    |> List.filter_map (fun (a, l) -> if l = best then Some a else None)

let max_load_arc_among inst candidates =
  match candidates with
  | [] -> invalid_arg "Load.max_load_arc_among: empty candidate list"
  | first :: rest ->
    List.fold_left
      (fun best a -> if arc_load inst a > arc_load inst best then a else best)
      first rest
