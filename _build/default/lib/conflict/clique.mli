(** Maximum clique and maximum independent set.

    For a UPP-DAG, the paper (Property 3 + the Helly argument) shows
    [pi = clique number of the conflict graph]; the clique solver verifies
    that identity in tests, and clique bounds feed the exact coloring
    branch-and-bound.  The independent-set solver powers the lower-bound
    argument of Theorem 7 ([w >= |P| / alpha]). *)

val max_clique : Ugraph.t -> int list
(** A maximum clique (vertices in increasing order).  Exponential worst
    case; intended for the instance sizes of the test and bench suites. *)

val clique_number : Ugraph.t -> int

val max_independent_set : Ugraph.t -> int list

val independence_number : Ugraph.t -> int

val greedy_clique : Ugraph.t -> int list
(** Fast lower-bound clique (by descending degree). *)
