(* Emit a deterministic flight-recorder Chrome dump on stdout.

   Timestamps are fed in fixed (origin-relative output depends only on
   deltas), so the rendered trace is byte-stable and diffed against
   flight_fixture.golden.trace.json — the shared fixture proving that a
   flight dump and a solver trace satisfy the same trace-event schema
   (`wl trace-check` accepts both). *)

module Flight = Wl_obs.Flight

let () =
  let f = Flight.create ~capacity:16 ~tid:1 () in
  List.iteri
    (fun i (kind, outcome, arcs, palette, pi) ->
      Flight.record f kind outcome
        ~t_ns:(5_000_000 + (i * 250_000))
        ~dur_ns:(1_200 + (i * 340))
        ~arcs ~palette ~pi ~trace:0)
    [
      (Flight.Full_solve, Flight.Ok, 0, 3, 3);
      (Flight.Add_path, Flight.Warm_hit, 4, 3, 3);
      (Flight.Add_path, Flight.Fresh_color, 2, 4, 4);
      (Flight.Add_path, Flight.Repair, 5, 4, 4);
      (Flight.Remove_path, Flight.Warm_remove, 2, 4, 4);
      (Flight.Remove_path, Flight.Shrink, 5, 3, 3);
      (Flight.Add_arc, Flight.Ok, 1, 3, 3);
      (Flight.Add_path, Flight.Rejected, 0, 3, 3);
      (Flight.Audit, Flight.Failed, 0, 3, 3);
    ];
  print_string (Flight.to_chrome f)
