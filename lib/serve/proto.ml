open Wl_core
module Engine = Wl_engine.Engine
module Script = Wl_engine.Script
module Jsonx = Wl_json.Jsonx
module Ctx = Wl_obs.Ctx

let version = 1

let tenant_ok t =
  let n = String.length t in
  n > 0 && n <= 128
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false)
       t

let check_tenant t = if not (tenant_ok t) then invalid_arg ("Proto: invalid tenant id " ^ t)

type req =
  | Hello of int
  | Ping
  | Shutdown
  | Open of { tenant : string; instance : Instance.t }
  | Add_path of { tenant : string; vertices : int list }
  | Remove_path of { tenant : string; id : int }
  | Add_arc of { tenant : string; tail : int; head : int }
  | Submit of { tenant : string; ops : Engine.op list }
  | Report of { tenant : string }
  | Pi of { tenant : string }
  | Color_of of { tenant : string; id : int }
  | Stats of { tenant : string }
  | Health of { tenant : string }
  | Snapshot of { tenant : string }
  | Evict of { tenant : string }
  (* Daemon-wide introspection (no tenant): answered from shard-local
     observability state without entering any engine hot path. *)
  | Dstats
  | Dhealth
  | Trace_dump of { last : int }

let verb_of_req = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Shutdown -> "shutdown"
  | Open _ -> "open"
  | Add_path _ -> "add_path"
  | Remove_path _ -> "remove_path"
  | Add_arc _ -> "add_arc"
  | Submit _ -> "submit"
  | Report _ -> "report"
  | Pi _ -> "pi"
  | Color_of _ -> "color_of"
  | Stats _ -> "stats"
  | Health _ -> "health"
  | Snapshot _ -> "snapshot"
  | Evict _ -> "evict"
  | Dstats -> "dstats"
  | Dhealth -> "dhealth"
  | Trace_dump _ -> "tracedump"

type report = { n_wavelengths : int; pi : int; optimal : bool; method_name : string }

type health = {
  healthy : bool;
  add_p50 : int;
  add_p99 : int;
  remove_p50 : int;
  remove_p99 : int;
  warm_hit_recent : float;
  warm_hit_lifetime : float;
  fallback_streak : int;
}

type outcome = O_path of int | O_removed of int | O_arc of int

(* Shard-merged latency rollup: the [Hdr.merge_into] figures across every
   shard's histograms, plus the daemon-wide exemplar ([l_ex_trace = 0]
   when no traced sample was seen). *)
type lat_rollup = {
  l_count : int;
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_p999 : int;
  l_max : int;
  l_ex_ns : int;
  l_ex_trace : int;
}

type tenant_row = {
  r_tenant : string;
  r_shard : int;
  r_paths : int;
  r_pi : int;
  r_ops : int;
  r_add_p50 : int;
  r_add_p99 : int;
  r_healthy : bool;
}

type dstats = {
  d_shards : int;
  d_sessions : int;
  d_add : lat_rollup;
  d_remove : lat_rollup;
  d_tenants : tenant_row list;
}

type dhealth = { dh_healthy : bool; dh_sessions : int; dh_unhealthy : string list }

type resp =
  | R_hello of int
  | R_pong
  | R_bye
  | R_open of report
  | R_path of int
  | R_removed of int
  | R_arc of int
  | R_report of report
  | R_pi of int
  | R_color of int
  | R_stats of Engine.stats
  | R_health of health
  | R_outcomes of { outcomes : (outcome, Error.t) result array; after : report }
  | R_snapshot of Instance.t
  | R_evicted
  | R_dstats of dstats
  | R_dhealth of dhealth
  | R_trace of string  (** a complete Chrome trace document *)

type reply = (resp, Error.t) result

let report_of_solver (r : Solver.report) =
  {
    n_wavelengths = r.Solver.n_wavelengths;
    pi = r.Solver.pi;
    optimal = r.Solver.optimal;
    method_name = Solver.method_name r.Solver.method_used;
  }

let health_of_engine (h : Engine.health) =
  {
    healthy = h.Engine.healthy;
    add_p50 = h.Engine.add_latency.Wl_obs.Hdr.p50;
    add_p99 = h.Engine.add_latency.Wl_obs.Hdr.p99;
    remove_p50 = h.Engine.remove_latency.Wl_obs.Hdr.p50;
    remove_p99 = h.Engine.remove_latency.Wl_obs.Hdr.p99;
    warm_hit_recent = h.Engine.warm_hit_recent;
    warm_hit_lifetime = h.Engine.warm_hit_lifetime;
    fallback_streak = h.Engine.fallback_streak;
  }

let outcome_of_engine = function
  | Engine.Path_added id -> O_path id
  | Engine.Path_removed id -> O_removed id
  | Engine.Arc_added a -> O_arc a

let proto_error msg = Error.Parse { line = 0; msg }

(* --- structured errors on the wire ----------------------------------------- *)

(* One line, message field last so it may contain spaces; newlines and
   backslashes escape so the line stays a line. *)
let escape_nl s =
  if String.for_all (fun c -> c <> '\n' && c <> '\\') s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\n' -> Buffer.add_string b "\\n"
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape_nl s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '\\' && i + 1 < n then begin
          (match s.[i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | c -> Buffer.add_char b c);
          go (i + 2)
        end
        else begin
          Buffer.add_char b s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents b
  end

let error_ctor = function
  | Error.Parse _ -> "parse"
  | Error.Invalid_path _ -> "invalid_path"
  | Error.Cyclic _ -> "cyclic"
  | Error.Bad_index _ -> "bad_index"
  | Error.Invalid_op _ -> "invalid_op"
  | Error.Precondition _ -> "precondition"
  | Error.Unsupported_version _ -> "unsupported_version"
  | Error.Io _ -> "io"

(* "err CODE CTOR ARGS..." — the wire code leads so code-only clients can
   dispatch without knowing the constructor grammar. *)
let error_to_line e =
  let code = Error.to_code e in
  match e with
  | Error.Parse { line; msg } -> Printf.sprintf "err %d parse %d %s" code line (escape_nl msg)
  | Error.Invalid_path msg -> Printf.sprintf "err %d invalid_path %s" code (escape_nl msg)
  | Error.Cyclic msg -> Printf.sprintf "err %d cyclic %s" code (escape_nl msg)
  | Error.Bad_index { what; index } ->
    Printf.sprintf "err %d bad_index %d %s" code index (escape_nl what)
  | Error.Invalid_op msg -> Printf.sprintf "err %d invalid_op %s" code (escape_nl msg)
  | Error.Precondition msg -> Printf.sprintf "err %d precondition %s" code (escape_nl msg)
  | Error.Unsupported_version v -> Printf.sprintf "err %d unsupported_version %d" code v
  | Error.Io msg -> Printf.sprintf "err %d io %s" code (escape_nl msg)

(* Tokens after "err": CODE CTOR then constructor args, message last. *)
let error_of_tokens toks =
  let rest_from parts n =
    (* re-join everything from token [n] with single spaces *)
    unescape_nl (String.concat " " (List.filteri (fun i _ -> i >= n) parts))
  in
  match toks with
  | code :: ctor :: args -> (
    match (int_of_string_opt code, ctor) with
    | None, _ -> Error (proto_error "error frame: bad code")
    | Some code, _ -> (
      let msg_from n = rest_from args n in
      match (ctor, args) with
      | "parse", line :: _ -> (
        match int_of_string_opt line with
        | Some l -> Ok (Error.Parse { line = l; msg = msg_from 1 })
        | None -> Error (proto_error "error frame: bad parse line"))
      | "invalid_path", _ -> Ok (Error.Invalid_path (msg_from 0))
      | "cyclic", _ -> Ok (Error.Cyclic (msg_from 0))
      | "bad_index", index :: _ -> (
        match int_of_string_opt index with
        | Some i -> Ok (Error.Bad_index { what = msg_from 1; index = i })
        | None -> Error (proto_error "error frame: bad index"))
      | "invalid_op", _ -> Ok (Error.Invalid_op (msg_from 0))
      | "precondition", _ -> Ok (Error.Precondition (msg_from 0))
      | "unsupported_version", [ v ] -> (
        match int_of_string_opt v with
        | Some v -> Ok (Error.Unsupported_version v)
        | None -> Error (proto_error "error frame: bad version"))
      | "io", _ -> Ok (Error.Io (msg_from 0))
      | _ -> (
        (* unknown constructor from a future revision: degrade through the
           shared code table rather than failing the whole reply *)
        match Error.of_code code (msg_from 0) with
        | Some e -> Ok e
        | None -> Error (proto_error ("error frame: unknown constructor " ^ ctor)))))
  | _ -> Error (proto_error "error frame: missing code")

let error_to_json e =
  let base =
    match e with
    | Error.Parse { line; msg } -> [ ("line", Jsonx.Int line); ("msg", Jsonx.Str msg) ]
    | Error.Invalid_path msg
    | Error.Cyclic msg
    | Error.Invalid_op msg
    | Error.Precondition msg
    | Error.Io msg -> [ ("msg", Jsonx.Str msg) ]
    | Error.Bad_index { what; index } ->
      [ ("index", Jsonx.Int index); ("what", Jsonx.Str what) ]
    | Error.Unsupported_version v -> [ ("version", Jsonx.Int v) ]
  in
  Jsonx.Obj
    (("code", Jsonx.Int (Error.to_code e)) :: ("ctor", Jsonx.Str (error_ctor e)) :: base)

let error_of_json j =
  let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
  let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
  let msg () = Option.value (str "msg") ~default:"" in
  match (int "code", str "ctor") with
  | Some code, Some ctor -> (
    match ctor with
    | "parse" ->
      Ok (Error.Parse { line = Option.value (int "line") ~default:0; msg = msg () })
    | "invalid_path" -> Ok (Error.Invalid_path (msg ()))
    | "cyclic" -> Ok (Error.Cyclic (msg ()))
    | "bad_index" ->
      Ok
        (Error.Bad_index
           {
             what = Option.value (str "what") ~default:"";
             index = Option.value (int "index") ~default:(-1);
           })
    | "invalid_op" -> Ok (Error.Invalid_op (msg ()))
    | "precondition" -> Ok (Error.Precondition (msg ()))
    | "unsupported_version" ->
      Ok (Error.Unsupported_version (Option.value (int "version") ~default:(-1)))
    | "io" -> Ok (Error.Io (msg ()))
    | _ -> (
      match Error.of_code code (msg ()) with
      | Some e -> Ok e
      | None -> Error (proto_error ("error frame: unknown constructor " ^ ctor))))
  | _ -> Error (proto_error "error frame: missing code or ctor")

(* --- text encoding --------------------------------------------------------- *)

let hdr = Printf.sprintf "wlrpc %d" version

(* The optional trace context rides as a [ctx=TRACE:SPAN] token directly
   after the version, before the verb — absent for untraced peers, so
   every pre-context frame remains byte-identical. *)
let hdr_with ctx =
  if Ctx.is_none ctx then hdr
  else Printf.sprintf "wlrpc %d ctx=%s" version (Ctx.to_string ctx)

let encode_request_text ?(ctx = Ctx.none) req =
  let hdr = hdr_with ctx in
  match req with
  | Hello v -> Printf.sprintf "%s hello %d\n" hdr v
  | Ping -> hdr ^ " ping\n"
  | Shutdown -> hdr ^ " shutdown\n"
  | Open { tenant; instance } ->
    check_tenant tenant;
    Printf.sprintf "%s open %s\n%s" hdr tenant (Serial.to_string instance)
  | Add_path { tenant; vertices } ->
    check_tenant tenant;
    Printf.sprintf "%s add_path %s%s\n" hdr tenant
      (String.concat "" (List.map (Printf.sprintf " %d") vertices))
  | Remove_path { tenant; id } ->
    check_tenant tenant;
    Printf.sprintf "%s remove_path %s %d\n" hdr tenant id
  | Add_arc { tenant; tail; head } ->
    check_tenant tenant;
    Printf.sprintf "%s add_arc %s %d %d\n" hdr tenant tail head
  | Submit { tenant; ops } ->
    check_tenant tenant;
    Printf.sprintf "%s submit %s\n%s" hdr tenant (Script.to_string ops)
  | Report { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s report %s\n" hdr tenant
  | Pi { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s pi %s\n" hdr tenant
  | Color_of { tenant; id } ->
    check_tenant tenant;
    Printf.sprintf "%s color_of %s %d\n" hdr tenant id
  | Stats { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s stats %s\n" hdr tenant
  | Health { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s health %s\n" hdr tenant
  | Snapshot { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s snapshot %s\n" hdr tenant
  | Evict { tenant } ->
    check_tenant tenant;
    Printf.sprintf "%s evict %s\n" hdr tenant
  | Dstats -> hdr ^ " dstats\n"
  | Dhealth -> hdr ^ " dhealth\n"
  | Trace_dump { last } -> Printf.sprintf "%s tracedump %d\n" hdr last

let report_tokens r =
  Printf.sprintf "%d %d %b %s" r.n_wavelengths r.pi r.optimal r.method_name

let stats_tokens (s : Engine.stats) =
  Printf.sprintf "%d %d %d %d %d %d %d %d %d %d" s.Engine.ops s.Engine.warm_hits
    s.Engine.fresh_colors s.Engine.repairs s.Engine.repair_flips s.Engine.shrink_recolors
    s.Engine.warm_removes s.Engine.fallbacks s.Engine.full_solves s.Engine.rejected

let rollup_tokens r =
  Printf.sprintf "%d %d %d %d %d %d %d %x" r.l_count r.l_p50 r.l_p90 r.l_p99
    r.l_p999 r.l_max r.l_ex_ns r.l_ex_trace

let rollup_of_tokens name = function
  | [ c; p50; p90; p99; p999; mx; ex; tr ] -> (
    match
      ( int_of_string_opt c, int_of_string_opt p50, int_of_string_opt p90,
        int_of_string_opt p99, int_of_string_opt p999, int_of_string_opt mx,
        int_of_string_opt ex, int_of_string_opt ("0x" ^ tr) )
    with
    | ( Some l_count, Some l_p50, Some l_p90, Some l_p99, Some l_p999,
        Some l_max, Some l_ex_ns, Some l_ex_trace ) ->
      Ok { l_count; l_p50; l_p90; l_p99; l_p999; l_max; l_ex_ns; l_ex_trace }
    | _ -> Error (proto_error ("bad " ^ name ^ " rollup tokens")))
  | _ -> Error (proto_error ("bad " ^ name ^ " rollup shape"))

let outcome_line = function
  | Ok (O_path id) -> Printf.sprintf "outcome path %d" id
  | Ok (O_removed id) -> Printf.sprintf "outcome removed %d" id
  | Ok (O_arc id) -> Printf.sprintf "outcome arc %d" id
  | Error e -> "outcome " ^ error_to_line e

let encode_reply_text ?(ctx = Ctx.none) reply =
  let hdr = hdr_with ctx in
  match reply with
  | Error e -> Printf.sprintf "%s %s\n" hdr (error_to_line e)
  | Ok r -> (
    match r with
    | R_hello v -> Printf.sprintf "%s ok hello %d\n" hdr v
    | R_pong -> hdr ^ " ok pong\n"
    | R_bye -> hdr ^ " ok bye\n"
    | R_open rep -> Printf.sprintf "%s ok open %s\n" hdr (report_tokens rep)
    | R_path id -> Printf.sprintf "%s ok path %d\n" hdr id
    | R_removed id -> Printf.sprintf "%s ok removed %d\n" hdr id
    | R_arc id -> Printf.sprintf "%s ok arc %d\n" hdr id
    | R_report rep -> Printf.sprintf "%s ok report %s\n" hdr (report_tokens rep)
    | R_pi pi -> Printf.sprintf "%s ok pi %d\n" hdr pi
    | R_color c -> Printf.sprintf "%s ok color %d\n" hdr c
    | R_stats s -> Printf.sprintf "%s ok stats %s\n" hdr (stats_tokens s)
    | R_health h ->
      Printf.sprintf "%s ok health %b %d %d %d %d %.17g %.17g %d\n" hdr h.healthy h.add_p50
        h.add_p99 h.remove_p50 h.remove_p99 h.warm_hit_recent h.warm_hit_lifetime
        h.fallback_streak
    | R_outcomes { outcomes; after } ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "%s ok outcomes %d %s\n" hdr (Array.length outcomes)
           (report_tokens after));
      Array.iter
        (fun o ->
          Buffer.add_string b (outcome_line o);
          Buffer.add_char b '\n')
        outcomes;
      Buffer.contents b
    | R_snapshot inst -> Printf.sprintf "%s ok snapshot\n%s" hdr (Serial.to_string inst)
    | R_evicted -> hdr ^ " ok evicted\n"
    | R_dstats d ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "%s ok dstats %d %d %d %s %s\n" hdr d.d_shards
           d.d_sessions
           (List.length d.d_tenants)
           (rollup_tokens d.d_add) (rollup_tokens d.d_remove));
      List.iter
        (fun r ->
          Buffer.add_string b
            (Printf.sprintf "tenant %s %d %d %d %d %d %d %b\n" r.r_tenant
               r.r_shard r.r_paths r.r_pi r.r_ops r.r_add_p50 r.r_add_p99
               r.r_healthy))
        d.d_tenants;
      Buffer.contents b
    | R_dhealth h ->
      Printf.sprintf "%s ok dhealth %b %d %d%s\n" hdr h.dh_healthy h.dh_sessions
        (List.length h.dh_unhealthy)
        (String.concat "" (List.map (fun t -> " " ^ t) h.dh_unhealthy))
    | R_trace doc -> Printf.sprintf "%s ok trace\n%s" hdr doc)

(* --- text decoding --------------------------------------------------------- *)

let split_head payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    (String.sub payload 0 i, String.sub payload (i + 1) (String.length payload - i - 1))

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let int_tok name s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (proto_error (Printf.sprintf "%s: expected an integer, got %S" name s))

let with_tenant t k =
  if tenant_ok t then k t else Error (proto_error (Printf.sprintf "invalid tenant id %S" t))

(* The optional [ctx=] token sits between version and verb.  A malformed
   id or a duplicate ctx token anywhere on the head line is a protocol
   error — never an exception (the wlrpc_frame oracle mutates exactly
   these shapes). *)
let is_ctx_tok t = String.length t >= 4 && String.sub t 0 4 = "ctx="

let extract_ctx rest =
  match rest with
  | c :: rest' when is_ctx_tok c -> (
    if List.exists is_ctx_tok rest' then Error (proto_error "duplicate ctx field")
    else
      let v = String.sub c 4 (String.length c - 4) in
      match Ctx.of_string v with
      | Some ctx -> Ok (ctx, rest')
      | None -> Error (proto_error (Printf.sprintf "malformed ctx %S" v)))
  | _ ->
    if List.exists is_ctx_tok rest then
      Error (proto_error "ctx field not directly after version")
    else Ok (Ctx.none, rest)

let decode_request_text payload =
  let head, body = split_head payload in
  match tokens head with
  | "wlrpc" :: v :: rest -> (
    match int_of_string_opt v with
    | None -> Error (proto_error "bad wlrpc header")
    | Some v when v <> version -> Error (Error.Unsupported_version v)
    | Some _ ->
      Result.bind (extract_ctx rest) @@ fun (ctx, rest) ->
      Result.map (fun req -> (req, ctx))
      @@ (
      match rest with
      | [ "hello"; v ] -> Result.map (fun v -> Hello v) (int_tok "hello" v)
      | [ "ping" ] -> Ok Ping
      | [ "shutdown" ] -> Ok Shutdown
      | [ "open"; t ] ->
        with_tenant t (fun tenant ->
            Result.map (fun instance -> Open { tenant; instance }) (Serial.of_string body))
      | "add_path" :: t :: vs ->
        with_tenant t (fun tenant ->
            let rec ints acc = function
              | [] -> Ok (List.rev acc)
              | v :: rest -> Result.bind (int_tok "add_path vertex" v) (fun v -> ints (v :: acc) rest)
            in
            Result.map (fun vertices -> Add_path { tenant; vertices }) (ints [] vs))
      | [ "remove_path"; t; id ] ->
        with_tenant t (fun tenant ->
            Result.map (fun id -> Remove_path { tenant; id }) (int_tok "remove_path id" id))
      | [ "add_arc"; t; u; v ] ->
        with_tenant t (fun tenant ->
            Result.bind (int_tok "add_arc tail" u) (fun tail ->
                Result.map (fun head -> Add_arc { tenant; tail; head }) (int_tok "add_arc head" v)))
      | [ "submit"; t ] ->
        with_tenant t (fun tenant ->
            Result.map (fun ops -> Submit { tenant; ops }) (Script.of_string body))
      | [ "report"; t ] -> with_tenant t (fun tenant -> Ok (Report { tenant }))
      | [ "pi"; t ] -> with_tenant t (fun tenant -> Ok (Pi { tenant }))
      | [ "color_of"; t; id ] ->
        with_tenant t (fun tenant ->
            Result.map (fun id -> Color_of { tenant; id }) (int_tok "color_of id" id))
      | [ "stats"; t ] -> with_tenant t (fun tenant -> Ok (Stats { tenant }))
      | [ "health"; t ] -> with_tenant t (fun tenant -> Ok (Health { tenant }))
      | [ "snapshot"; t ] -> with_tenant t (fun tenant -> Ok (Snapshot { tenant }))
      | [ "evict"; t ] -> with_tenant t (fun tenant -> Ok (Evict { tenant }))
      | [ "dstats" ] -> Ok Dstats
      | [ "dhealth" ] -> Ok Dhealth
      | [ "tracedump"; last ] ->
        Result.map (fun last -> Trace_dump { last }) (int_tok "tracedump last" last)
      | verb :: _ -> Error (proto_error ("unknown request verb " ^ verb))
      | [] -> Error (proto_error "empty request")))
  | _ -> Error (proto_error "request does not start with a wlrpc header")

let report_of_tokens = function
  | [ w; pi; opt; m ] -> (
    match (int_of_string_opt w, int_of_string_opt pi, bool_of_string_opt opt) with
    | Some n_wavelengths, Some pi, Some optimal ->
      Ok { n_wavelengths; pi; optimal; method_name = m }
    | _ -> Error (proto_error "bad report tokens"))
  | _ -> Error (proto_error "bad report shape")

let decode_reply_text payload =
  let head, body = split_head payload in
  match tokens head with
  | "wlrpc" :: v :: rest -> (
    match int_of_string_opt v with
    | None -> Error (proto_error "bad wlrpc header")
    | Some v when v <> version -> Error (Error.Unsupported_version v)
    | Some _ ->
      Result.bind (extract_ctx rest) @@ fun (ctx, rest) ->
      Result.map (fun rep -> (rep, ctx))
      @@ (
      match rest with
      | "err" :: toks -> Result.map (fun e -> (Error e : reply)) (error_of_tokens toks)
      | [ "ok"; "hello"; v ] -> Result.map (fun v -> Ok (R_hello v)) (int_tok "hello" v)
      | [ "ok"; "pong" ] -> Ok (Ok R_pong)
      | [ "ok"; "bye" ] -> Ok (Ok R_bye)
      | "ok" :: "open" :: toks -> Result.map (fun r -> Ok (R_open r)) (report_of_tokens toks)
      | [ "ok"; "path"; id ] -> Result.map (fun id -> Ok (R_path id)) (int_tok "path" id)
      | [ "ok"; "removed"; id ] ->
        Result.map (fun id -> Ok (R_removed id)) (int_tok "removed" id)
      | [ "ok"; "arc"; id ] -> Result.map (fun id -> Ok (R_arc id)) (int_tok "arc" id)
      | "ok" :: "report" :: toks ->
        Result.map (fun r -> Ok (R_report r)) (report_of_tokens toks)
      | [ "ok"; "pi"; pi ] -> Result.map (fun pi -> Ok (R_pi pi)) (int_tok "pi" pi)
      | [ "ok"; "color"; c ] -> Result.map (fun c -> Ok (R_color c)) (int_tok "color" c)
      | "ok" :: "stats" :: toks -> (
        match List.map int_of_string_opt toks with
        | [
         Some ops; Some warm_hits; Some fresh_colors; Some repairs; Some repair_flips;
         Some shrink_recolors; Some warm_removes; Some fallbacks; Some full_solves;
         Some rejected;
        ] ->
          Ok
            (Ok
               (R_stats
                  {
                    Engine.ops; warm_hits; fresh_colors; repairs; repair_flips;
                    shrink_recolors; warm_removes; fallbacks; full_solves; rejected;
                  }))
        | _ -> Error (proto_error "bad stats tokens"))
      | [ "ok"; "health"; h; a50; a99; r50; r99; whr; whl; streak ] -> (
        match
          ( bool_of_string_opt h, int_of_string_opt a50, int_of_string_opt a99,
            int_of_string_opt r50, int_of_string_opt r99, float_of_string_opt whr,
            float_of_string_opt whl, int_of_string_opt streak )
        with
        | ( Some healthy, Some add_p50, Some add_p99, Some remove_p50, Some remove_p99,
            Some warm_hit_recent, Some warm_hit_lifetime, Some fallback_streak ) ->
          Ok
            (Ok
               (R_health
                  {
                    healthy; add_p50; add_p99; remove_p50; remove_p99; warm_hit_recent;
                    warm_hit_lifetime; fallback_streak;
                  }))
        | _ -> Error (proto_error "bad health tokens"))
      | "ok" :: "outcomes" :: n :: toks ->
        Result.bind (int_tok "outcomes count" n) (fun n ->
            Result.bind (report_of_tokens toks) (fun after ->
                let lines =
                  String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
                in
                if List.length lines <> n then
                  Error (proto_error "outcome count does not match body")
                else
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | line :: rest -> (
                      match tokens line with
                      | [ "outcome"; "path"; id ] ->
                        Result.bind (int_tok "outcome path" id) (fun id ->
                            go (Ok (O_path id) :: acc) rest)
                      | [ "outcome"; "removed"; id ] ->
                        Result.bind (int_tok "outcome removed" id) (fun id ->
                            go (Ok (O_removed id) :: acc) rest)
                      | [ "outcome"; "arc"; id ] ->
                        Result.bind (int_tok "outcome arc" id) (fun id ->
                            go (Ok (O_arc id) :: acc) rest)
                      | "outcome" :: "err" :: toks ->
                        Result.bind (error_of_tokens toks) (fun e ->
                            go (Error e :: acc) rest)
                      | _ -> Error (proto_error "bad outcome line"))
                  in
                  Result.map
                    (fun outcomes ->
                      (Ok (R_outcomes { outcomes = Array.of_list outcomes; after }) : reply))
                    (go [] lines)))
      | [ "ok"; "snapshot" ] ->
        Result.map (fun inst -> (Ok (R_snapshot inst) : reply)) (Serial.of_string body)
      | [ "ok"; "evicted" ] -> Ok (Ok R_evicted)
      | "ok" :: "dstats" :: shards :: sessions :: ntenants :: toks ->
        Result.bind (int_tok "dstats shards" shards) (fun d_shards ->
            Result.bind (int_tok "dstats sessions" sessions) (fun d_sessions ->
                Result.bind (int_tok "dstats tenants" ntenants) (fun n ->
                    if List.length toks <> 16 then
                      Error (proto_error "bad dstats rollup shape")
                    else
                      let add_toks = List.filteri (fun i _ -> i < 8) toks in
                      let rem_toks = List.filteri (fun i _ -> i >= 8) toks in
                      Result.bind (rollup_of_tokens "add" add_toks) (fun d_add ->
                          Result.bind (rollup_of_tokens "remove" rem_toks)
                            (fun d_remove ->
                              let lines =
                                String.split_on_char '\n' body
                                |> List.filter (fun l -> l <> "")
                              in
                              if List.length lines <> n then
                                Error
                                  (proto_error "tenant count does not match body")
                              else
                                let row line =
                                  match tokens line with
                                  | [ "tenant"; t; sh; paths; pi; ops; p50; p99; hb ]
                                    -> (
                                    match
                                      ( tenant_ok t, int_of_string_opt sh,
                                        int_of_string_opt paths,
                                        int_of_string_opt pi,
                                        int_of_string_opt ops,
                                        int_of_string_opt p50,
                                        int_of_string_opt p99,
                                        bool_of_string_opt hb )
                                    with
                                    | ( true, Some r_shard, Some r_paths,
                                        Some r_pi, Some r_ops, Some r_add_p50,
                                        Some r_add_p99, Some r_healthy ) ->
                                      Ok
                                        {
                                          r_tenant = t; r_shard; r_paths; r_pi;
                                          r_ops; r_add_p50; r_add_p99; r_healthy;
                                        }
                                    | _ -> Error (proto_error "bad tenant row"))
                                  | _ -> Error (proto_error "bad tenant line")
                                in
                                let rec go acc = function
                                  | [] -> Ok (List.rev acc)
                                  | l :: rest ->
                                    Result.bind (row l) (fun r -> go (r :: acc) rest)
                                in
                                Result.map
                                  (fun d_tenants ->
                                    (Ok
                                       (R_dstats
                                          {
                                            d_shards; d_sessions; d_add; d_remove;
                                            d_tenants;
                                          })
                                      : reply))
                                  (go [] lines))))))
      | "ok" :: "dhealth" :: hb :: sessions :: n :: names ->
        Result.bind (int_tok "dhealth sessions" sessions) (fun dh_sessions ->
            Result.bind (int_tok "dhealth count" n) (fun n ->
                match bool_of_string_opt hb with
                | None -> Error (proto_error "bad dhealth flag")
                | Some dh_healthy ->
                  if List.length names <> n || not (List.for_all tenant_ok names)
                  then Error (proto_error "bad dhealth tenant list")
                  else
                    Ok
                      (Ok (R_dhealth { dh_healthy; dh_sessions; dh_unhealthy = names })
                        : reply)))
      | [ "ok"; "trace" ] -> Ok (Ok (R_trace body))
      | _ -> Error (proto_error "unknown reply shape")))
  | _ -> Error (proto_error "reply does not start with a wlrpc header")

(* --- JSON mirror ----------------------------------------------------------- *)

let instance_to_jsonx inst =
  match Jsonx.parse (Serial.to_json inst) with
  | Ok j -> j
  | Error msg -> invalid_arg ("Proto: instance JSON did not re-parse: " ^ msg)

let instance_of_jsonx j = Serial.of_json (Jsonx.to_string j)

let ops_to_jsonx ops =
  match Jsonx.parse (Script.to_json ops) with
  | Ok j -> Option.value (Jsonx.member "ops" j) ~default:(Jsonx.Arr [])
  | Error msg -> invalid_arg ("Proto: ops JSON did not re-parse: " ^ msg)

let ops_of_jsonx j =
  Script.of_json
    (Jsonx.to_string
       (Jsonx.Obj
          [
            ("format", Jsonx.Str "wl-ops");
            ("version", Jsonx.Int Script.current_version);
            ("ops", j);
          ]))

let ctx_json_field ctx fields =
  if Ctx.is_none ctx then fields
  else ("ctx", Jsonx.Str (Ctx.to_string ctx)) :: fields

let req_json ?(ctx = Ctx.none) fields =
  Jsonx.to_string
    (Jsonx.Obj (("wlrpc", Jsonx.Int version) :: ctx_json_field ctx fields))

let encode_request_json ?(ctx = Ctx.none) req =
  let req_json fields = req_json ~ctx fields in
  match req with
  | Hello v -> req_json [ ("verb", Jsonx.Str "hello"); ("version", Jsonx.Int v) ]
  | Ping -> req_json [ ("verb", Jsonx.Str "ping") ]
  | Shutdown -> req_json [ ("verb", Jsonx.Str "shutdown") ]
  | Open { tenant; instance } ->
    check_tenant tenant;
    req_json
      [
        ("verb", Jsonx.Str "open"); ("tenant", Jsonx.Str tenant);
        ("instance", instance_to_jsonx instance);
      ]
  | Add_path { tenant; vertices } ->
    check_tenant tenant;
    req_json
      [
        ("verb", Jsonx.Str "add_path"); ("tenant", Jsonx.Str tenant);
        ("vertices", Jsonx.Arr (List.map (fun v -> Jsonx.Int v) vertices));
      ]
  | Remove_path { tenant; id } ->
    check_tenant tenant;
    req_json
      [ ("verb", Jsonx.Str "remove_path"); ("tenant", Jsonx.Str tenant); ("id", Jsonx.Int id) ]
  | Add_arc { tenant; tail; head } ->
    check_tenant tenant;
    req_json
      [
        ("verb", Jsonx.Str "add_arc"); ("tenant", Jsonx.Str tenant);
        ("from", Jsonx.Int tail); ("to", Jsonx.Int head);
      ]
  | Submit { tenant; ops } ->
    check_tenant tenant;
    req_json
      [ ("verb", Jsonx.Str "submit"); ("tenant", Jsonx.Str tenant); ("ops", ops_to_jsonx ops) ]
  | Report { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "report"); ("tenant", Jsonx.Str tenant) ]
  | Pi { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "pi"); ("tenant", Jsonx.Str tenant) ]
  | Color_of { tenant; id } ->
    check_tenant tenant;
    req_json
      [ ("verb", Jsonx.Str "color_of"); ("tenant", Jsonx.Str tenant); ("id", Jsonx.Int id) ]
  | Stats { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "stats"); ("tenant", Jsonx.Str tenant) ]
  | Health { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "health"); ("tenant", Jsonx.Str tenant) ]
  | Snapshot { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "snapshot"); ("tenant", Jsonx.Str tenant) ]
  | Evict { tenant } ->
    check_tenant tenant;
    req_json [ ("verb", Jsonx.Str "evict"); ("tenant", Jsonx.Str tenant) ]
  | Dstats -> req_json [ ("verb", Jsonx.Str "dstats") ]
  | Dhealth -> req_json [ ("verb", Jsonx.Str "dhealth") ]
  | Trace_dump { last } ->
    req_json [ ("verb", Jsonx.Str "tracedump"); ("last", Jsonx.Int last) ]

let report_json r =
  [
    ("w", Jsonx.Int r.n_wavelengths); ("pi", Jsonx.Int r.pi);
    ("optimal", Jsonx.Bool r.optimal); ("method", Jsonx.Str r.method_name);
  ]

let rollup_json r =
  Jsonx.Obj
    [
      ("count", Jsonx.Int r.l_count); ("p50", Jsonx.Int r.l_p50);
      ("p90", Jsonx.Int r.l_p90); ("p99", Jsonx.Int r.l_p99);
      ("p999", Jsonx.Int r.l_p999); ("max", Jsonx.Int r.l_max);
      ("ex_ns", Jsonx.Int r.l_ex_ns); ("ex_trace", Jsonx.Int r.l_ex_trace);
    ]

let rollup_of_json name j =
  let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
  match
    ( int "count", int "p50", int "p90", int "p99", int "p999", int "max",
      int "ex_ns", int "ex_trace" )
  with
  | ( Some l_count, Some l_p50, Some l_p90, Some l_p99, Some l_p999, Some l_max,
      Some l_ex_ns, Some l_ex_trace ) ->
    Ok { l_count; l_p50; l_p90; l_p99; l_p999; l_max; l_ex_ns; l_ex_trace }
  | _ -> Error (proto_error ("bad " ^ name ^ " rollup fields"))

let encode_reply_json ?(ctx = Ctx.none) (reply : reply) =
  let obj fields =
    Jsonx.to_string
      (Jsonx.Obj (("wlrpc", Jsonx.Int version) :: ctx_json_field ctx fields))
  in
  match reply with
  | Error e -> obj [ ("err", error_to_json e) ]
  | Ok r ->
    let ok fields verb = obj [ ("ok", Jsonx.Obj (("verb", Jsonx.Str verb) :: fields)) ] in
    (match r with
    | R_hello v -> ok [ ("version", Jsonx.Int v) ] "hello"
    | R_pong -> ok [] "pong"
    | R_bye -> ok [] "bye"
    | R_open rep -> ok (report_json rep) "open"
    | R_path id -> ok [ ("id", Jsonx.Int id) ] "path"
    | R_removed id -> ok [ ("id", Jsonx.Int id) ] "removed"
    | R_arc id -> ok [ ("id", Jsonx.Int id) ] "arc"
    | R_report rep -> ok (report_json rep) "report"
    | R_pi pi -> ok [ ("pi", Jsonx.Int pi) ] "pi"
    | R_color c -> ok [ ("color", Jsonx.Int c) ] "color"
    | R_stats s ->
      ok
        [
          ("ops", Jsonx.Int s.Engine.ops); ("warm_hits", Jsonx.Int s.Engine.warm_hits);
          ("fresh_colors", Jsonx.Int s.Engine.fresh_colors);
          ("repairs", Jsonx.Int s.Engine.repairs);
          ("repair_flips", Jsonx.Int s.Engine.repair_flips);
          ("shrink_recolors", Jsonx.Int s.Engine.shrink_recolors);
          ("warm_removes", Jsonx.Int s.Engine.warm_removes);
          ("fallbacks", Jsonx.Int s.Engine.fallbacks);
          ("full_solves", Jsonx.Int s.Engine.full_solves);
          ("rejected", Jsonx.Int s.Engine.rejected);
        ]
        "stats"
    | R_health h ->
      ok
        [
          ("healthy", Jsonx.Bool h.healthy); ("add_p50", Jsonx.Int h.add_p50);
          ("add_p99", Jsonx.Int h.add_p99); ("remove_p50", Jsonx.Int h.remove_p50);
          ("remove_p99", Jsonx.Int h.remove_p99);
          ("warm_hit_recent", Jsonx.Float h.warm_hit_recent);
          ("warm_hit_lifetime", Jsonx.Float h.warm_hit_lifetime);
          ("fallback_streak", Jsonx.Int h.fallback_streak);
        ]
        "health"
    | R_outcomes { outcomes; after } ->
      ok
        (report_json after
        @ [
            ( "outcomes",
              Jsonx.Arr
                (Array.to_list
                   (Array.map
                      (function
                        | Ok (O_path id) -> Jsonx.Obj [ ("path", Jsonx.Int id) ]
                        | Ok (O_removed id) -> Jsonx.Obj [ ("removed", Jsonx.Int id) ]
                        | Ok (O_arc id) -> Jsonx.Obj [ ("arc", Jsonx.Int id) ]
                        | Error e -> Jsonx.Obj [ ("err", error_to_json e) ])
                      outcomes)) );
          ])
        "outcomes"
    | R_snapshot inst -> ok [ ("instance", instance_to_jsonx inst) ] "snapshot"
    | R_evicted -> ok [] "evicted"
    | R_dstats d ->
      ok
        [
          ("shards", Jsonx.Int d.d_shards); ("sessions", Jsonx.Int d.d_sessions);
          ("add", rollup_json d.d_add); ("remove", rollup_json d.d_remove);
          ( "tenants",
            Jsonx.Arr
              (List.map
                 (fun r ->
                   Jsonx.Obj
                     [
                       ("tenant", Jsonx.Str r.r_tenant);
                       ("shard", Jsonx.Int r.r_shard);
                       ("paths", Jsonx.Int r.r_paths); ("pi", Jsonx.Int r.r_pi);
                       ("ops", Jsonx.Int r.r_ops);
                       ("add_p50", Jsonx.Int r.r_add_p50);
                       ("add_p99", Jsonx.Int r.r_add_p99);
                       ("healthy", Jsonx.Bool r.r_healthy);
                     ])
                 d.d_tenants) );
        ]
        "dstats"
    | R_dhealth h ->
      ok
        [
          ("healthy", Jsonx.Bool h.dh_healthy);
          ("sessions", Jsonx.Int h.dh_sessions);
          ( "unhealthy",
            Jsonx.Arr (List.map (fun t -> Jsonx.Str t) h.dh_unhealthy) );
        ]
        "dhealth"
    | R_trace doc -> ok [ ("doc", Jsonx.Str doc) ] "trace")

let json_version j =
  match Option.bind (Jsonx.member "wlrpc" j) Jsonx.to_int with
  | None -> Error (proto_error "missing wlrpc version")
  | Some v when v <> version -> Error (Error.Unsupported_version v)
  | Some _ -> Ok ()

let json_ctx j =
  match Jsonx.member "ctx" j with
  | None -> Ok Ctx.none
  | Some (Jsonx.Str s) -> (
    match Ctx.of_string s with
    | Some c -> Ok c
    | None -> Error (proto_error (Printf.sprintf "malformed ctx %S" s)))
  | Some _ -> Error (proto_error "malformed ctx field")

let decode_request_json payload =
  match Jsonx.parse payload with
  | Error msg -> Error (proto_error ("request JSON: " ^ msg))
  | Ok j ->
    Result.bind (json_version j) (fun () ->
        Result.bind (json_ctx j) @@ fun ctx ->
        Result.map (fun req -> (req, ctx))
        @@
        let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
        let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
        let tenant k =
          match str "tenant" with
          | Some t when tenant_ok t -> k t
          | Some t -> Error (proto_error (Printf.sprintf "invalid tenant id %S" t))
          | None -> Error (proto_error "missing tenant")
        in
        match str "verb" with
        | None -> Error (proto_error "missing request verb")
        | Some "hello" -> (
          match int "version" with
          | Some v -> Ok (Hello v)
          | None -> Error (proto_error "hello: missing version"))
        | Some "ping" -> Ok Ping
        | Some "shutdown" -> Ok Shutdown
        | Some "open" ->
          tenant (fun tenant ->
              match Jsonx.member "instance" j with
              | None -> Error (proto_error "open: missing instance")
              | Some inst ->
                Result.map (fun instance -> Open { tenant; instance }) (instance_of_jsonx inst))
        | Some "add_path" ->
          tenant (fun tenant ->
              match Option.bind (Jsonx.member "vertices" j) Jsonx.to_list with
              | None -> Error (proto_error "add_path: missing vertices")
              | Some vs -> (
                let ints = List.map Jsonx.to_int vs in
                if List.exists Option.is_none ints then
                  Error (proto_error "add_path: non-integer vertex")
                else Ok (Add_path { tenant; vertices = List.filter_map Fun.id ints })))
        | Some "remove_path" ->
          tenant (fun tenant ->
              match int "id" with
              | Some id -> Ok (Remove_path { tenant; id })
              | None -> Error (proto_error "remove_path: missing id"))
        | Some "add_arc" ->
          tenant (fun tenant ->
              match (int "from", int "to") with
              | Some tail, Some head -> Ok (Add_arc { tenant; tail; head })
              | _ -> Error (proto_error "add_arc: missing endpoints"))
        | Some "submit" ->
          tenant (fun tenant ->
              match Jsonx.member "ops" j with
              | None -> Error (proto_error "submit: missing ops")
              | Some ops -> Result.map (fun ops -> Submit { tenant; ops }) (ops_of_jsonx ops))
        | Some "report" -> tenant (fun tenant -> Ok (Report { tenant }))
        | Some "pi" -> tenant (fun tenant -> Ok (Pi { tenant }))
        | Some "color_of" ->
          tenant (fun tenant ->
              match int "id" with
              | Some id -> Ok (Color_of { tenant; id })
              | None -> Error (proto_error "color_of: missing id"))
        | Some "stats" -> tenant (fun tenant -> Ok (Stats { tenant }))
        | Some "health" -> tenant (fun tenant -> Ok (Health { tenant }))
        | Some "snapshot" -> tenant (fun tenant -> Ok (Snapshot { tenant }))
        | Some "evict" -> tenant (fun tenant -> Ok (Evict { tenant }))
        | Some "dstats" -> Ok Dstats
        | Some "dhealth" -> Ok Dhealth
        | Some "tracedump" -> (
          match int "last" with
          | Some last -> Ok (Trace_dump { last })
          | None -> Error (proto_error "tracedump: missing last"))
        | Some verb -> Error (proto_error ("unknown request verb " ^ verb)))

let report_of_json j =
  let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
  let b = Option.bind (Jsonx.member "optimal" j) Jsonx.to_bool in
  let m = Option.bind (Jsonx.member "method" j) Jsonx.to_str in
  match (int "w", int "pi", b, m) with
  | Some n_wavelengths, Some pi, Some optimal, Some method_name ->
    Ok { n_wavelengths; pi; optimal; method_name }
  | _ -> Error (proto_error "bad report fields")

let to_float j =
  match j with Jsonx.Float f -> Some f | Jsonx.Int i -> Some (float_of_int i) | _ -> None

let decode_reply_json payload =
  match Jsonx.parse payload with
  | Error msg -> Error (proto_error ("reply JSON: " ^ msg))
  | Ok j ->
    Result.bind (json_version j) (fun () ->
        Result.bind (json_ctx j) @@ fun ctx ->
        Result.map (fun rep -> (rep, ctx))
        @@
        match (Jsonx.member "err" j, Jsonx.member "ok" j) with
        | Some e, _ -> Result.map (fun e -> (Error e : reply)) (error_of_json e)
        | None, Some ok -> (
          let str k = Option.bind (Jsonx.member k ok) Jsonx.to_str in
          let int k = Option.bind (Jsonx.member k ok) Jsonx.to_int in
          match str "verb" with
          | None -> Error (proto_error "missing reply verb")
          | Some "hello" -> (
            match int "version" with
            | Some v -> Ok (Ok (R_hello v))
            | None -> Error (proto_error "hello: missing version"))
          | Some "pong" -> Ok (Ok R_pong)
          | Some "bye" -> Ok (Ok R_bye)
          | Some "open" -> Result.map (fun r -> Ok (R_open r)) (report_of_json ok)
          | Some "path" -> (
            match int "id" with
            | Some id -> Ok (Ok (R_path id))
            | None -> Error (proto_error "path: missing id"))
          | Some "removed" -> (
            match int "id" with
            | Some id -> Ok (Ok (R_removed id))
            | None -> Error (proto_error "removed: missing id"))
          | Some "arc" -> (
            match int "id" with
            | Some id -> Ok (Ok (R_arc id))
            | None -> Error (proto_error "arc: missing id"))
          | Some "report" -> Result.map (fun r -> Ok (R_report r)) (report_of_json ok)
          | Some "pi" -> (
            match int "pi" with
            | Some pi -> Ok (Ok (R_pi pi))
            | None -> Error (proto_error "pi: missing value"))
          | Some "color" -> (
            match int "color" with
            | Some c -> Ok (Ok (R_color c))
            | None -> Error (proto_error "color: missing value"))
          | Some "stats" -> (
            let f k = int k in
            match
              ( f "ops", f "warm_hits", f "fresh_colors", f "repairs", f "repair_flips",
                f "shrink_recolors", f "warm_removes", f "fallbacks", f "full_solves",
                f "rejected" )
            with
            | ( Some ops, Some warm_hits, Some fresh_colors, Some repairs, Some repair_flips,
                Some shrink_recolors, Some warm_removes, Some fallbacks, Some full_solves,
                Some rejected ) ->
              Ok
                (Ok
                   (R_stats
                      {
                        Engine.ops; warm_hits; fresh_colors; repairs; repair_flips;
                        shrink_recolors; warm_removes; fallbacks; full_solves; rejected;
                      }))
            | _ -> Error (proto_error "stats: missing fields"))
          | Some "health" -> (
            let fl k = Option.bind (Jsonx.member k ok) to_float in
            match
              ( Option.bind (Jsonx.member "healthy" ok) Jsonx.to_bool, int "add_p50",
                int "add_p99", int "remove_p50", int "remove_p99", fl "warm_hit_recent",
                fl "warm_hit_lifetime", int "fallback_streak" )
            with
            | ( Some healthy, Some add_p50, Some add_p99, Some remove_p50, Some remove_p99,
                Some warm_hit_recent, Some warm_hit_lifetime, Some fallback_streak ) ->
              Ok
                (Ok
                   (R_health
                      {
                        healthy; add_p50; add_p99; remove_p50; remove_p99; warm_hit_recent;
                        warm_hit_lifetime; fallback_streak;
                      }))
            | _ -> Error (proto_error "health: missing fields"))
          | Some "outcomes" ->
            Result.bind (report_of_json ok) (fun after ->
                match Option.bind (Jsonx.member "outcomes" ok) Jsonx.to_list with
                | None -> Error (proto_error "outcomes: missing list")
                | Some os ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | o :: rest -> (
                      match
                        ( Option.bind (Jsonx.member "path" o) Jsonx.to_int,
                          Option.bind (Jsonx.member "removed" o) Jsonx.to_int,
                          Option.bind (Jsonx.member "arc" o) Jsonx.to_int,
                          Jsonx.member "err" o )
                      with
                      | Some id, _, _, _ -> go (Ok (O_path id) :: acc) rest
                      | _, Some id, _, _ -> go (Ok (O_removed id) :: acc) rest
                      | _, _, Some id, _ -> go (Ok (O_arc id) :: acc) rest
                      | _, _, _, Some e ->
                        Result.bind (error_of_json e) (fun e -> go (Error e :: acc) rest)
                      | _ -> Error (proto_error "outcomes: bad element"))
                  in
                  Result.map
                    (fun outcomes ->
                      (Ok (R_outcomes { outcomes = Array.of_list outcomes; after }) : reply))
                    (go [] os))
          | Some "snapshot" -> (
            match Jsonx.member "instance" ok with
            | None -> Error (proto_error "snapshot: missing instance")
            | Some inst ->
              Result.map (fun i -> (Ok (R_snapshot i) : reply)) (instance_of_jsonx inst))
          | Some "evicted" -> Ok (Ok R_evicted)
          | Some "dstats" ->
            Result.bind
              (match Jsonx.member "add" ok with
              | Some a -> rollup_of_json "add" a
              | None -> Error (proto_error "dstats: missing add rollup"))
              (fun d_add ->
                Result.bind
                  (match Jsonx.member "remove" ok with
                  | Some r -> rollup_of_json "remove" r
                  | None -> Error (proto_error "dstats: missing remove rollup"))
                  (fun d_remove ->
                    match
                      ( int "shards", int "sessions",
                        Option.bind (Jsonx.member "tenants" ok) Jsonx.to_list )
                    with
                    | Some d_shards, Some d_sessions, Some rows ->
                      let row r =
                        let ri k = Option.bind (Jsonx.member k r) Jsonx.to_int in
                        match
                          ( Option.bind (Jsonx.member "tenant" r) Jsonx.to_str,
                            ri "shard", ri "paths", ri "pi", ri "ops",
                            ri "add_p50", ri "add_p99",
                            Option.bind (Jsonx.member "healthy" r) Jsonx.to_bool )
                        with
                        | ( Some t, Some r_shard, Some r_paths, Some r_pi,
                            Some r_ops, Some r_add_p50, Some r_add_p99,
                            Some r_healthy )
                          when tenant_ok t ->
                          Ok
                            {
                              r_tenant = t; r_shard; r_paths; r_pi; r_ops;
                              r_add_p50; r_add_p99; r_healthy;
                            }
                        | _ -> Error (proto_error "dstats: bad tenant row")
                      in
                      let rec go acc = function
                        | [] -> Ok (List.rev acc)
                        | r :: rest ->
                          Result.bind (row r) (fun r -> go (r :: acc) rest)
                      in
                      Result.map
                        (fun d_tenants ->
                          (Ok
                             (R_dstats
                                {
                                  d_shards; d_sessions; d_add; d_remove; d_tenants;
                                })
                            : reply))
                        (go [] rows)
                    | _ -> Error (proto_error "dstats: missing fields")))
          | Some "dhealth" -> (
            match
              ( Option.bind (Jsonx.member "healthy" ok) Jsonx.to_bool,
                int "sessions",
                Option.bind (Jsonx.member "unhealthy" ok) Jsonx.to_list )
            with
            | Some dh_healthy, Some dh_sessions, Some names ->
              let strs = List.map Jsonx.to_str names in
              if List.exists Option.is_none strs then
                Error (proto_error "dhealth: bad tenant list")
              else
                Ok
                  (Ok
                     (R_dhealth
                        {
                          dh_healthy; dh_sessions;
                          dh_unhealthy = List.filter_map Fun.id strs;
                        }))
            | _ -> Error (proto_error "dhealth: missing fields"))
          | Some "trace" -> (
            match str "doc" with
            | Some doc -> Ok (Ok (R_trace doc))
            | None -> Error (proto_error "trace: missing doc"))
          | Some verb -> Error (proto_error ("unknown reply verb " ^ verb)))
        | None, None -> Error (proto_error "reply carries neither ok nor err"))

(* --- sniffing entry points ------------------------------------------------- *)

let is_json payload = String.length payload > 0 && payload.[0] = '{'

let encode_request ?(json = false) ?(ctx = Ctx.none) req =
  if json then encode_request_json ~ctx req else encode_request_text ~ctx req

let decode_request_ctx payload =
  if is_json payload then decode_request_json payload
  else
    match decode_request_text payload with
    | exception _ -> Error (proto_error "request decode raised")
    | r -> r

let decode_request payload = Result.map fst (decode_request_ctx payload)

let encode_reply ?(json = false) ?(ctx = Ctx.none) reply =
  if json then encode_reply_json ~ctx reply else encode_reply_text ~ctx reply

let decode_reply_ctx payload =
  if is_json payload then decode_reply_json payload
  else
    match decode_reply_text payload with
    | exception _ -> Error (proto_error "reply decode raised")
    | r -> r

let decode_reply payload = Result.map fst (decode_reply_ctx payload)
