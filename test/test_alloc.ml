(* The GC-quiet contract, tested dynamically: the arena reuses physical
   buffers, and the warm paths of Theorem 1 and the engine allocate ZERO
   minor words in steady state — the exact figure the bench runner
   records as gc.minor_w and the gate refuses to let grow.  Also the
   gate's allocation arm on synthetic trajectories.

   Measurement discipline: warm up far enough that every doubling
   (slots, scratch, occupancy rows) has already happened AND left
   headroom for the measured rounds — engine slot ids are never reused,
   so capacity demand grows monotonically and the warmup must overshoot
   the measurement window.  The delta is exact (minor_words is a
   cumulative allocation counter, unaffected by collections), so the
   check is [= 0.], not a tolerance. *)

open Helpers
module Arena = Wl_util.Arena
module Theorem1 = Wl_core.Theorem1
module Engine = Wl_engine.Engine
module Store = Wl_obs.Store

let check_float = Alcotest.(check (float 0.))

(* --- arena ------------------------------------------------------------------ *)

let test_arena_reuse () =
  let a = Arena.create () in
  let b1 = Arena.ints a 100 in
  let b2 = Arena.ints a 10 in
  check "distinct slots" true (b1 != b2);
  Arena.reset a;
  check "same physical buffer after reset" true (Arena.ints a 100 == b1);
  check "second slot too" true (Arena.ints a 10 == b2);
  check_int "slots used" 2 (Arena.slots_used a)

let test_arena_steady_state_grow_count () =
  let a = Arena.create () in
  let round () =
    Arena.reset a;
    ignore (Arena.ints a 64);
    ignore (Arena.ints a 512);
    ignore (Arena.ints a 7)
  in
  round ();
  let g = Arena.grow_count a in
  for _ = 1 to 100 do
    round ()
  done;
  check_int "no growth across identical rounds" g (Arena.grow_count a);
  (* A bigger request on a known slot grows exactly that slot, once. *)
  Arena.reset a;
  ignore (Arena.ints a 2048);
  check_int "one growth for the bigger request" (g + 1) (Arena.grow_count a);
  Arena.reset a;
  ignore (Arena.ints a 2048);
  check_int "and it sticks" (g + 1) (Arena.grow_count a)

let test_arena_mark_release () =
  let a = Arena.create () in
  ignore (Arena.ints a 8);
  let before = Arena.slots_used a in
  let m = Arena.mark a in
  let scoped = Arena.ints a 32 in
  Arena.release a m;
  check "released slot is recycled" true (Arena.ints a 32 == scoped);
  Arena.release a m;
  check_int "watermark restored" before (Arena.slots_used a)

let test_arena_zeroed () =
  let a = Arena.create () in
  let z = Arena.ints_zeroed a 33 in
  check "zero-filled" true (Array.for_all (fun x -> x = 0) (Array.sub z 0 33))

(* --- zero allocation on warm paths ------------------------------------------ *)

let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_thm1_warm_solve_zero_alloc () =
  let inst = random_nic_instance ~n:40 ~k:30 3 in
  let scr = Theorem1.scratch () in
  ignore (Theorem1.color_with scr inst);
  ignore (Theorem1.color_with scr inst);
  let dw =
    minor_delta (fun () ->
        for _ = 1 to 50 do
          ignore (Theorem1.color_with scr inst)
        done)
  in
  check_float "warm color_with allocates nothing" 0. dw

let test_engine_warm_ops_zero_alloc () =
  let inst = random_nic_instance ~n:60 ~k:20 7 in
  let p = List.hd (Wl_core.Instance.paths_list inst) in
  let session = Engine.create inst in
  ignore (Engine.report session);
  (* Slot ids are never reused: 500 warmup pairs push capacity past the
     next doubling with > 100 ids of headroom, so the measured 100 pairs
     stay under the watermark. *)
  for _ = 1 to 500 do
    Engine.remove_path_exn session (Engine.add_dipath_exn session p)
  done;
  let flight_before = Wl_obs.Flight.total (Engine.flight session) in
  let hdr_before =
    let h = Engine.health session in
    h.Engine.add_latency.Wl_obs.Hdr.count
  in
  (* A propagated trace context must not cost the hot path anything:
     measure with a real ambient ctx installed, so every measured op
     reads Ctx.current_trace and latches HDR exemplars / flight trace
     fields exactly as a traced daemon request would. *)
  let g = Wl_obs.Ctx.generator 13 in
  Wl_obs.Ctx.set (Wl_obs.Ctx.root g);
  let dw =
    Fun.protect ~finally:Wl_obs.Ctx.clear (fun () ->
        minor_delta (fun () ->
            for _ = 1 to 100 do
              Engine.remove_path_exn session (Engine.add_dipath_exn session p)
            done))
  in
  check_float "warm add/remove allocates nothing (ctx ambient)" 0. dw;
  (let h = Engine.health session in
   match h.Engine.add_exemplar with
   | Some (_, trace) when trace <> 0 ->
     check "exemplar latched inside the zero-alloc window" true (trace <> 0)
   | _ -> Alcotest.fail "ambient ctx did not latch an add exemplar");
  (* The always-on observability was live for every measured op: the
     flight ring and the HDR latency histogram both advanced inside the
     zero-allocation window — recording really is free. *)
  check_int "flight recorded each measured op"
    (flight_before + 200)
    (Wl_obs.Flight.total (Engine.flight session));
  check_int "hdr recorded each measured add" (hdr_before + 100)
    (let h = Engine.health session in
     h.Engine.add_latency.Wl_obs.Hdr.count)

(* --- the gate's allocation arm ---------------------------------------------- *)

let point ?alloc_w name median =
  {
    Store.name;
    params = [];
    extras =
      (match alloc_w with
      | None -> []
      | Some w -> [ (Store.alloc_key, w) ]);
    sample = { Store.median_ns = median; mad_ns = 1.; cv = 0.; runs = 7 };
    baseline_ns = None;
    counters = [];
  }

let entry pts =
  Store.make ~rev:"cafe00" ~timestamp:"2026-08-08T00:00:00Z" ~domains:1 pts

let alloc_of cmp name =
  match
    List.find_opt (fun v -> v.Store.bench = name) cmp.Store.verdicts
  with
  | Some v -> v.Store.alloc
  | None -> Alcotest.failf "no verdict for %s" name

let test_gate_alloc_regression () =
  let history =
    List.map (fun w -> entry [ point ~alloc_w:w "e" 100. ]) [ 0.; 0.; 0. ]
  in
  (* Time-stable but 500 fresh words: alloc regression, counted apart. *)
  let cmp = Store.compare ~history (entry [ point ~alloc_w:500. "e" 101. ]) in
  check_int "alloc regression counted" 1 cmp.Store.alloc_regressions;
  check_int "time still stable" 0 cmp.Store.regressions;
  (match alloc_of cmp "e" with
  | Some a ->
    check "flagged" true (a.Store.alloc_verdict = Store.Regression);
    check_float "baseline is zero" 0. a.Store.baseline_w
  | None -> Alcotest.fail "alloc check missing");
  (* Below the 64-word floor a stray boxed temporary is tolerated. *)
  let cmp = Store.compare ~history (entry [ point ~alloc_w:48. "e" 100. ]) in
  check_int "under the floor" 0 cmp.Store.alloc_regressions;
  (* Dropping allocation is an improvement, never a gate failure. *)
  let history500 =
    List.map (fun w -> entry [ point ~alloc_w:w "e" 100. ]) [ 500.; 500. ]
  in
  let cmp =
    Store.compare ~history:history500 (entry [ point ~alloc_w:0. "e" 100. ])
  in
  check_int "no alloc regressions" 0 cmp.Store.alloc_regressions;
  match alloc_of cmp "e" with
  | Some a -> check "improvement" true (a.Store.alloc_verdict = Store.Improvement)
  | None -> Alcotest.fail "alloc check missing"

let test_gate_alloc_absent_is_unjudged () =
  (* Pre-gate history without the figure: the point must not fail. *)
  let history = [ entry [ point "old" 100. ] ] in
  let cmp = Store.compare ~history (entry [ point ~alloc_w:9999. "old" 100. ]) in
  check_int "no alloc baseline, no alloc verdict" 0 cmp.Store.alloc_regressions;
  check "alloc check is None" true (alloc_of cmp "old" = None);
  (* Entry without the figure against history that has it: same. *)
  let history = [ entry [ point ~alloc_w:0. "e" 100. ] ] in
  let cmp = Store.compare ~history (entry [ point "e" 100. ]) in
  check_int "unmeasured entry not judged" 0 cmp.Store.alloc_regressions

let suite =
  [
    ( "alloc",
      [
        Alcotest.test_case "arena reuses buffers" `Quick test_arena_reuse;
        Alcotest.test_case "arena grow-count steady" `Quick
          test_arena_steady_state_grow_count;
        Alcotest.test_case "arena mark/release" `Quick test_arena_mark_release;
        Alcotest.test_case "arena zeroed" `Quick test_arena_zeroed;
        Alcotest.test_case "thm1 warm solve zero-alloc" `Quick
          test_thm1_warm_solve_zero_alloc;
        Alcotest.test_case "engine warm ops zero-alloc" `Quick
          test_engine_warm_ops_zero_alloc;
        Alcotest.test_case "gate flags alloc regressions" `Quick
          test_gate_alloc_regression;
        Alcotest.test_case "gate skips unmeasured alloc" `Quick
          test_gate_alloc_absent_is_unjudged;
      ] );
  ]
