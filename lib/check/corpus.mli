(** The persistent regression corpus.

    A corpus directory holds shrunk reproducers: one [.wl] instance file
    per entry (plus a sibling [.wlops] op script when the failure involved
    engine ops), named [<check>.<label>.wl] — the part before the first
    dot selects the {!Oracle} to replay the entry against.

    Replaying asserts the oracle now {e passes}: every checked-in entry is
    a minimized input that once witnessed a bug, so a replay failure means
    the bug (or a new one reachable from the same input) is back.  The
    test suite replays [test/corpus/] on every [dune runtest]; [wl fuzz
    --replay DIR] does the same from the CLI, and [wl fuzz --corpus DIR]
    appends freshly shrunk reproducers. *)

type entry = {
  check : string;  (** oracle name parsed from the file name *)
  label : string;  (** the part between the check name and [.wl] *)
  wl_file : string;
  subject : Subject.t;
}

val load : string -> (entry list, string) result
(** All entries of a corpus directory, sorted by file name; [Error] on an
    unreadable directory, an unparsable entry, or an entry file not named
    [<check>.<label>.wl]. *)

val replay : entry -> string option
(** Re-run the entry's oracle on its subject: [None] when the oracle
    passes (the regression stays fixed), [Some reason] when it fails —
    including when the oracle name is unknown. *)

val replay_dir : string -> ((string * string) list, string) result
(** Replay every entry; returns the failing [(file name, reason)] pairs in
    file-name order. *)

val add :
  dir:string -> check:string -> label:string -> Subject.t -> string list
(** Write a reproducer into the corpus; returns the paths written.
    Overwrites an existing entry of the same name (shrinking is
    deterministic, so re-adding the same failure rewrites identical
    bytes). *)
