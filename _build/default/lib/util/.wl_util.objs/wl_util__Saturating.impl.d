lib/util/saturating.ml: Format Int
