module Bitset = Wl_util.Bitset

let find_k23 g =
  let n = Ugraph.n_vertices g in
  (* An independent triple within a candidate set, if any. *)
  let independent_triple cands =
    let arr = Array.of_list cands in
    let m = Array.length arr in
    let result = ref None in
    (try
       for i = 0 to m - 1 do
         for j = i + 1 to m - 1 do
           if not (Ugraph.mem_edge g arr.(i) arr.(j)) then
             for k = j + 1 to m - 1 do
               if
                 (not (Ugraph.mem_edge g arr.(i) arr.(k)))
                 && not (Ugraph.mem_edge g arr.(j) arr.(k))
               then begin
                 result := Some [ arr.(i); arr.(j); arr.(k) ];
                 raise Exit
               end
             done
         done
       done
     with Exit -> ());
    !result
  in
  let rec pairs u v =
    if u >= n then None
    else if v >= n then pairs (u + 1) (u + 2)
    else if Ugraph.mem_edge g u v then pairs u (v + 1)
    else begin
      let common = Bitset.inter (Ugraph.neighbor_set g u) (Ugraph.neighbor_set g v) in
      match independent_triple (Bitset.elements common) with
      | Some triple -> Some ([ u; v ], triple)
      | None -> pairs u (v + 1)
    end
  in
  pairs 0 1

let has_k23 g = find_k23 g <> None

let find_k5_minus_two_independent_edges g =
  let n = Ugraph.n_vertices g in
  let qualifies vs =
    (* Exactly two non-adjacent pairs, and they must be disjoint. *)
    let non_adj = ref [] in
    let rec scan = function
      | [] -> true
      | v :: rest ->
        List.for_all
          (fun w ->
            if Ugraph.mem_edge g v w then true
            else begin
              non_adj := (v, w) :: !non_adj;
              List.length !non_adj <= 2
            end)
          rest
        && scan rest
    in
    scan vs
    &&
    match !non_adj with
    | [ (a, b); (c, d) ] -> a <> c && a <> d && b <> c && b <> d
    | _ -> false
  in
  let result = ref None in
  let rec choose start acc k =
    if !result <> None then ()
    else if k = 0 then begin
      let vs = List.rev acc in
      if qualifies vs then result := Some vs
    end
    else
      for v = start to n - k do
        if !result = None then choose (v + 1) (v :: acc) (k - 1)
      done
  in
  choose 0 [] 5;
  !result

let is_cycle_graph g =
  let n = Ugraph.n_vertices g in
  n >= 3
  && (let rec all_deg2 v = v >= n || (Ugraph.degree g v = 2 && all_deg2 (v + 1)) in
      all_deg2 0)
  && Ugraph.n_edges g = n
  &&
  (* Connectivity walk. *)
  let seen = Array.make n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (Ugraph.neighbors g v)
    end
  in
  visit 0;
  Array.for_all Fun.id seen

let induced_cycle_lengths g =
  let n = Ugraph.n_vertices g in
  for v = 0 to n - 1 do
    if Ugraph.degree g v <> 2 then
      invalid_arg "Graph_props.induced_cycle_lengths: not 2-regular"
  done;
  let seen = Array.make n false in
  let lengths = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let len = ref 0 in
      let rec walk prev v =
        if not seen.(v) then begin
          seen.(v) <- true;
          incr len;
          match List.filter (fun w -> w <> prev) (Ugraph.neighbors g v) with
          | w :: _ -> walk v w
          | [] -> ()
        end
      in
      walk (-1) start;
      lengths := !len :: !lengths
    end
  done;
  List.sort compare !lengths

let odd_girth g =
  let n = Ugraph.n_vertices g in
  let best = ref max_int in
  for root = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(root) <- 0;
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
        (Ugraph.neighbors g v)
    done;
    List.iter
      (fun (u, v) ->
        if dist.(u) >= 0 && dist.(v) >= 0 && dist.(u) = dist.(v) then
          best := min !best ((2 * dist.(u)) + 1))
      (Ugraph.edges g)
  done;
  if !best = max_int then None else Some !best
