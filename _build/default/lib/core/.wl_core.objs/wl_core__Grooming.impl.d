lib/core/grooming.ml: Array Assignment Digraph Dipath Fun Instance List Load Solver Theorem1 Wl_dag Wl_digraph
