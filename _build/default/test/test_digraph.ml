(* Tests for the digraph structure and its derived graphs. *)

open Helpers
open Wl_digraph
module Prng = Wl_util.Prng

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  Digraph.of_arcs 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_basic () =
  let g = diamond () in
  check_int "vertices" 4 (Digraph.n_vertices g);
  check_int "arcs" 4 (Digraph.n_arcs g);
  check_int "out degree" 2 (Digraph.out_degree g 0);
  check_int "in degree" 2 (Digraph.in_degree g 3);
  check "succ" true (Digraph.succ g 0 = [ 1; 2 ]);
  check "pred" true (Digraph.pred g 3 = [ 1; 2 ]);
  check "mem_arc" true (Digraph.mem_arc g 0 1);
  check "not mem_arc" false (Digraph.mem_arc g 1 0);
  check "find_arc id" true (Digraph.find_arc g 0 2 = Some 1);
  check "endpoints" true (Digraph.arc_endpoints g 2 = (1, 3));
  check "arcs list" true (Digraph.arcs g = [ (0, 1); (0, 2); (1, 3); (2, 3) ])

let test_rejections () =
  let g = diamond () in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_arc: self-loop")
    (fun () -> ignore (Digraph.add_arc g 1 1));
  Alcotest.check_raises "duplicate" (Invalid_argument "Digraph.add_arc: duplicate arc")
    (fun () -> ignore (Digraph.add_arc g 0 1));
  Alcotest.check_raises "missing vertex" (Invalid_argument "Digraph: no such vertex")
    (fun () -> ignore (Digraph.add_arc g 0 9))

let test_labels () =
  let g = Digraph.create () in
  let a = Digraph.add_vertex ~label:"start" g in
  let b = Digraph.add_vertex g in
  check "explicit label" true (Digraph.label g a = "start");
  check "default label" true (Digraph.label g b = "v1");
  Digraph.set_label g b "end";
  check "set label" true (Digraph.label g b = "end");
  check "lookup" true (Digraph.vertex_of_label g "end" = Some b);
  check "lookup missing" true (Digraph.vertex_of_label g "nope" = None)

let test_reverse () =
  let g = diamond () in
  let r = Digraph.reverse g in
  check "reversed arcs" true
    (List.sort compare (Digraph.arcs r)
    = List.sort compare [ (1, 0); (2, 0); (3, 1); (3, 2) ]);
  check "double reverse" true (Digraph.equal_structure g (Digraph.reverse r))

let test_copy () =
  let g = diamond () in
  let c = Digraph.copy g in
  check "copy equal" true (Digraph.equal_structure g c);
  ignore (Digraph.add_arc c 3 0);
  check "copy independent" false (Digraph.equal_structure g c)

let test_induced () =
  let g = diamond () in
  let sub, mapping = Digraph.induced_subgraph g [ 0; 1; 3 ] in
  check_int "sub vertices" 3 (Digraph.n_vertices sub);
  check_int "sub arcs" 2 (Digraph.n_arcs sub);
  check "mapping" true (mapping = [| 0; 1; 3 |]);
  (* arcs 0->1 and 1->3 survive under new ids 0->1, 1->2 *)
  check "sub arc set" true
    (List.sort compare (Digraph.arcs sub) = [ (0, 1); (1, 2) ])

let random_roundtrip =
  qtest "of_arcs/arcs round trip" seed_gen (fun seed ->
      let g = gnp_dag seed 12 0.3 in
      let g' = Digraph.of_arcs (Digraph.n_vertices g) (Digraph.arcs g) in
      Digraph.equal_structure g g')

let degrees_sum =
  qtest "degree sums equal arc count" seed_gen (fun seed ->
      let g = gnp_dag seed 15 0.25 in
      let sum f = List.fold_left (fun acc v -> acc + f g v) 0 (Digraph.vertices g) in
      sum Digraph.out_degree = Digraph.n_arcs g
      && sum Digraph.in_degree = Digraph.n_arcs g)

let out_arcs_consistent =
  qtest "out_arcs/in_arcs agree with endpoints" seed_gen (fun seed ->
      let g = gnp_dag seed 12 0.3 in
      List.for_all
        (fun v ->
          List.for_all (fun a -> Digraph.arc_src g a = v) (Digraph.out_arcs g v)
          && List.for_all (fun a -> Digraph.arc_dst g a = v) (Digraph.in_arcs g v))
        (Digraph.vertices g))

let suite =
  [
    ( "digraph",
      [
        Alcotest.test_case "basics" `Quick test_basic;
        Alcotest.test_case "rejections" `Quick test_rejections;
        Alcotest.test_case "labels" `Quick test_labels;
        Alcotest.test_case "reverse" `Quick test_reverse;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "induced subgraph" `Quick test_induced;
        random_roundtrip;
        degrees_sum;
        out_arcs_consistent;
      ] );
  ]
