examples/quickstart.ml: Array Digraph Dipath Format Instance Load Routing Solver Wl_core Wl_dag Wl_digraph
