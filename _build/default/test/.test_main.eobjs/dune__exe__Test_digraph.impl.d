test/test_digraph.ml: Alcotest Digraph Helpers List Wl_digraph Wl_util
