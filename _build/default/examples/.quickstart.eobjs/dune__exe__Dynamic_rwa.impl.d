examples/dynamic_rwa.ml: Array Assignment Baselines Format Instance List Load Routing Sys Theorem1 Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
