(* Seed-era reference implementations, kept verbatim so that the JSON perf
   report can measure the flat-core rewrites against the exact pre-rewrite
   hot paths in the same run, on the same instances, same machine, same
   compiler.  Not part of the library: benchmarking baselines only. *)

open Wl_core
module Bitset = Wl_util.Bitset
module Ugraph = Wl_conflict.Ugraph
module Dag = Wl_dag.Dag
module Dipath = Wl_digraph.Dipath
module Digraph = Wl_digraph.Digraph

(* --- The seed's DSATUR: O(n) selection scan with per-candidate popcount - *)

let dsatur g =
  let n = Ugraph.n_vertices g in
  let coloring = Array.make n (-1) in
  let sat = Array.init n (fun _ -> Bitset.create (max 1 n)) in
  let colored = Array.make n false in
  for _ = 1 to n do
    let best = ref (-1) in
    let best_key = ref (-1, -1) in
    for v = 0 to n - 1 do
      if not colored.(v) then begin
        let key = (Bitset.cardinal sat.(v), Ugraph.degree g v) in
        if !best = -1 || key > !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    let v = !best in
    let c =
      let rec first i = if not (Bitset.mem sat.(v) i) then i else first (i + 1) in
      first 0
    in
    coloring.(v) <- c;
    colored.(v) <- true;
    List.iter
      (fun w -> if not colored.(w) then Bitset.add sat.(w) c)
      (Ugraph.neighbors g v)
  done;
  coloring

(* --- The seed's Theorem 1: hashtable cascades, list occupancy ----------- *)

exception Internal_cycle_encountered

type state = {
  inst : Instance.t;
  p_arcs : int array array;
  start_pos : int array;
  color : int array;
  occ : int list array;
  mutable palette : int;
}

let make_state inst =
  let g = Instance.graph inst in
  let p_arcs = Array.map Dipath.arc_array (Instance.paths inst) in
  {
    inst;
    p_arcs;
    start_pos = Array.map Array.length p_arcs;
    color = Array.make (Array.length p_arcs) (-1);
    occ = Array.make (max 1 (Digraph.n_arcs g)) [];
    palette = 0;
  }

let is_live st p = st.start_pos.(p) < Array.length st.p_arcs.(p)

let live_conflicts st p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for k = st.start_pos.(p) to Array.length st.p_arcs.(p) - 1 do
    List.iter
      (fun q ->
        if q <> p && not (Hashtbl.mem seen q) then begin
          Hashtbl.add seen q ();
          out := q :: !out
        end)
      st.occ.(st.p_arcs.(p).(k))
  done;
  !out

let kempe_flip st ~protected_p ~alpha ~beta p1 =
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.add parent p1 p1;
  Queue.add p1 queue;
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    let other = if st.color.(p) = alpha then beta else alpha in
    List.iter
      (fun q ->
        if st.color.(q) = other && not (Hashtbl.mem parent q) then begin
          Hashtbl.add parent q p;
          if q = protected_p then raise Internal_cycle_encountered;
          Queue.add q queue
        end)
      (live_conflicts st p);
    st.color.(p) <- other
  done

let make_rainbow st members =
  let distinct_violated () =
    let seen = Hashtbl.create 8 in
    let rec go = function
      | [] -> None
      | p :: rest -> (
        match Hashtbl.find_opt seen st.color.(p) with
        | Some q -> Some (q, p)
        | None ->
          Hashtbl.add seen st.color.(p) p;
          go rest)
    in
    go members
  in
  let rec fix () =
    match distinct_violated () with
    | None -> ()
    | Some (p0, p1) ->
      let alpha = st.color.(p0) in
      let used = List.map (fun p -> st.color.(p)) members in
      let beta =
        let rec first c =
          if c >= st.palette then
            invalid_arg "Legacy theorem1: no free color"
          else if List.mem c used then first (c + 1)
          else c
        in
        first 0
      in
      kempe_flip st ~protected_p:p0 ~alpha ~beta p1;
      fix ()
  in
  fix ()

let insert_arc st e =
  let through = Instance.paths_through st.inst e in
  match through with
  | [] -> ()
  | _ ->
    st.palette <- max st.palette (List.length through);
    let live_members = List.filter (is_live st) through in
    make_rainbow st live_members;
    let used = List.map (fun p -> st.color.(p)) live_members in
    let next_free = ref 0 in
    let fresh_color () =
      while List.mem !next_free used do
        incr next_free
      done;
      let c = !next_free in
      incr next_free;
      c
    in
    List.iter
      (fun p ->
        if not (is_live st p) then st.color.(p) <- fresh_color ();
        st.start_pos.(p) <- st.start_pos.(p) - 1;
        st.occ.(e) <- p :: st.occ.(e))
      through

(* The seed's arc ordering: polymorphic sort over boxed (pos, arc) pairs. *)
let arcs_by_tail_topo dag =
  let g = Dag.graph dag in
  let m = Digraph.n_arcs g in
  let ids = Array.init m Fun.id in
  let keyed =
    Array.map (fun a -> (Dag.topo_position dag (Digraph.arc_src g a), a)) ids
  in
  Array.sort compare keyed;
  Array.map snd keyed

let theorem1_color inst =
  let st = make_state inst in
  let order = arcs_by_tail_topo (Instance.dag inst) in
  for i = Array.length order - 1 downto 0 do
    insert_arc st order.(i)
  done;
  Array.copy st.color

(* --- The seed's conflict-graph build: per-arc user lists ---------------- *)

let conflict_build inst =
  let n = Instance.n_paths inst in
  let cg = Ugraph.create n in
  let g = Instance.graph inst in
  for a = 0 to Digraph.n_arcs g - 1 do
    let users = Instance.paths_through inst a in
    let rec all_pairs = function
      | [] -> ()
      | i :: rest ->
        List.iter (fun j -> Ugraph.add_edge cg i j) rest;
        all_pairs rest
    in
    all_pairs users
  done;
  cg
