(** Result-typed client for the wavelength-assignment service.

    Mirrors the {!Wl_engine.Engine} session API one-to-one — every call
    returns [('a, Wl_core.Error.t) result], never raises — over either
    transport:

    {ul
    {- {!connect} — a remote [wld] daemon ([unix:PATH] or
       [tcp:HOST:PORT]);}
    {- {!local} / {!of_shard} — an in-process loopback that still runs
       every request and reply through the full [wlrpc/1] codec
       (encode, frame, unframe, decode), so switching a program between
       embedded and remote operation changes one constructor, not its
       observable behavior.}}

    A {!session} is a tenant handle bound to a client; all engine
    operations go through one.  One client may serve many sessions and
    is safe to share between threads (remote calls serialize on the
    connection). *)

open Wl_core
module Digraph = Wl_digraph.Digraph
module Engine = Wl_engine.Engine

type t
type session

type outcomes = {
  outcomes : (Proto.outcome, Error.t) result array;
  after : Proto.report;
}
(** Wire projection of {!Wl_engine.Engine.batch}. *)

(** {1 Connecting} *)

val connect : ?json:bool -> ?seed:int -> string -> (t, Error.t) result
(** Dial a daemon at an {!Server.address} string.  [json] selects the
    JSON mirror encoding for requests (replies come back in kind);
    default is the text form.  [seed] (default [0]) seeds the client's
    {!Wl_obs.Ctx} id generator, so traced runs are reproducible. *)

val local :
  ?json:bool ->
  ?seed:int ->
  ?threaded:bool ->
  ?flight_capacity:int ->
  ?shards:int ->
  ?max_queue:int ->
  unit ->
  t
(** Self-contained loopback client over a private {!Shard.t}
    ([threaded] defaults to [false]: requests execute synchronously on
    the caller, which keeps engine statistics deterministic). *)

val of_shard : ?json:bool -> ?seed:int -> Shard.t -> t
(** Loopback over an existing shard set (the daemon's own, in tests). *)

val close : t -> unit
(** Remote: close the socket.  Loopback: drain the private shards.
    Idempotent; later calls return [Error (Invalid_op _)]. *)

val call : t -> Proto.req -> Proto.reply
(** Raw escape hatch: one request, one reply, full codec round trip.

    When {!Wl_obs.Trace} is enabled, every call opens a span — a trace
    root, or a child of the caller's ambient {!Wl_obs.Ctx} — and sends
    the context on the frame, so client, wire, shard and engine spans
    share one trace id in a merged Chrome view.  With tracing off the
    frames are byte-identical to the pre-context protocol. *)

(** {1 Admin} *)

val hello : t -> (int, Error.t) result
(** Version handshake; the daemon's protocol revision. *)

val ping : t -> (unit, Error.t) result

val shutdown_server : t -> (unit, Error.t) result
(** Ask the daemon to drain and exit (loopback: a no-op [Ok ()]). *)

(** {1 Sessions} *)

val session : t -> tenant:string -> (session, Error.t) result
(** A handle for [tenant] (validated by {!Proto.tenant_ok}); does not
    open anything server-side. *)

val open_session : t -> tenant:string -> Instance.t -> (session, Error.t) result
(** Open (or replace) the tenant's engine session from an instance. *)

val tenant : session -> string

(** {1 Engine operations} — names and shapes follow
    {!Wl_engine.Engine}. *)

val add_path : session -> Digraph.vertex list -> (Engine.path_id, Error.t) result
val remove_path : session -> Engine.path_id -> (unit, Error.t) result
val add_arc : session -> Digraph.vertex -> Digraph.vertex -> (Digraph.arc, Error.t) result
val submit : session -> Engine.op list -> (outcomes, Error.t) result
val report : session -> (Proto.report, Error.t) result
val pi : session -> (int, Error.t) result
val color_of : session -> Engine.path_id -> (int, Error.t) result
val stats : session -> (Engine.stats, Error.t) result
val health : session -> (Proto.health, Error.t) result
val snapshot : session -> (Instance.t, Error.t) result
val evict : session -> (unit, Error.t) result

(** {1 Daemon introspection} — answered from monitoring read-backs,
    never queued behind engine work ({!Shard.call}). *)

val daemon_stats : t -> (Proto.dstats, Error.t) result
(** Shard-merged daemon rollup: true cross-shard add/remove quantiles
    (via {!Wl_obs.Hdr.merge_into}) plus one row per live tenant. *)

val daemon_health : t -> (Proto.dhealth, Error.t) result

val trace_pull : ?last:int -> t -> (string, Error.t) result
(** The merged flight rings of every live session as one Chrome trace
    document ([last] caps ops per ring, [0] = all) — pipe it to
    [wl trace-check] or load it in Perfetto. *)
