(** Plain-text instance format, for the CLI and for sharing test fixtures.

    Line-oriented; [#] starts a comment, blank lines ignored:

    {v
    dag 5                # vertex count, must come first
    vlabel 0 a1          # optional, any number of these
    arc 0 1
    arc 1 2
    path 0 1 2           # a dipath as a vertex sequence
    v} *)

val to_string : Instance.t -> string

val of_string : string -> (Instance.t, string) result
(** Errors carry the offending (1-based) line number. *)

val write_file : string -> Instance.t -> unit

val read_file : string -> (Instance.t, string) result
