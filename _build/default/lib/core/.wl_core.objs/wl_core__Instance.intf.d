lib/core/instance.mli: Digraph Dipath Format Wl_dag Wl_digraph
