test/test_dipath.ml: Alcotest Digraph Dipath Fun Helpers List Wl_dag Wl_digraph Wl_netgen Wl_util
