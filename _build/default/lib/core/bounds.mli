(** Bounds on the number of wavelengths [w(G, P)].

    Always [pi <= clique(conflict) <= w = chi(conflict)]; the paper's
    theorems pin [w] down in special cases, and the replication arguments of
    Theorems 2 and 7 use the independence-number lower bound
    [w >= ceil(|P| / alpha)]. *)

val pi_lower : Instance.t -> int
(** The load: dipaths through a max-load arc pairwise conflict. *)

val clique_lower : Instance.t -> int
(** Exact clique number of the conflict graph (equals [pi] on UPP-DAGs by
    Property 3).  Exponential worst case; test/bench scale. *)

val independence_lower : Instance.t -> int
(** [ceil (|P| / alpha(conflict graph))] — each wavelength class is an
    independent set. *)

val heuristic_upper : Instance.t -> int
(** Colors used by the better of Welsh–Powell and DSATUR on the conflict
    graph. *)

val chromatic_exact : Instance.t -> int
(** [w(G, P)] exactly, via branch and bound on the conflict graph. *)

val theorem6_upper : n_internal_cycles:int -> int -> int
(** The paper's closing remark: iterating the Theorem 6 argument over [C]
    internal cycles bounds [w] by [ceil] of [(4/3)^C pi] — computed here as
    [C] nested integer ceilings. *)
