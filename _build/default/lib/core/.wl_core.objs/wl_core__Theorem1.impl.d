lib/core/theorem1.ml: Array Assignment Digraph Dipath Hashtbl Instance List Option Queue Traversal Wl_dag Wl_digraph
