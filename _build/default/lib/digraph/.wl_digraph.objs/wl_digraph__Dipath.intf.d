lib/digraph/dipath.mli: Digraph Format
