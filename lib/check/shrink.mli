(** Failure minimization by delta debugging.

    Given a failing subject and the oracle check it fails, produce a
    (locally) minimal subject that still fails.  The shrinker edits the
    subject's raw {!Subject.parts} — never the solver state — and re-runs
    the check after every candidate edit, keeping an edit exactly when the
    candidate is well-formed and {e still fails} (any reason counts: a
    shifted diagnosis on a smaller input is still a reproducer).

    One round applies, in order: ddmin (chunked deletion at halving
    granularity) over the op script, ddmin over the path family, per-arc
    deletion, per-path end trimming, and unused-vertex compaction with
    renumbering.  Rounds repeat to a fixed point.  Everything is
    deterministic — no randomness, a fixed candidate order — so shrinking
    the same failure twice yields byte-identical reproducers, which is
    what lets them be golden-tested and checked into the corpus. *)

type result = {
  subject : Subject.t;  (** the minimized subject; still fails the check *)
  reason : string;  (** the check's reason on the minimized subject *)
  rounds : int;  (** fixed-point iterations *)
  attempts : int;  (** candidate evaluations (oracle re-runs) *)
}

val minimize :
  ?max_attempts:int ->
  check:(Subject.t -> string option) ->
  Subject.t ->
  result
(** [max_attempts] (default 4000) bounds oracle re-runs; when exhausted
    the best subject so far is returned.  Raises [Invalid_argument] when
    the initial subject does not fail [check].  Exceptions raised by
    [check] count as failures (with [Printexc.to_string] as the reason),
    matching the fuzz driver. *)
