(** Dipaths: directed paths in a digraph.

    A dipath is a sequence of at least two distinct vertices
    [x1, x2, ..., xk] such that every [(xi, xi+1)] is an arc; it is the unit
    of demand in the paper ("requests" are satisfied by dipaths, wavelengths
    are assigned to dipaths).  Values are immutable and tied to the graph
    they were validated against (the arc ids are cached). *)

type t

val of_vertices : Digraph.t -> Digraph.vertex list -> (t, string) result
(** Validates the vertex sequence: at least two vertices, all in range, no
    repeated vertex, every consecutive pair an arc.  The primary,
    exception-free constructor. *)

val make : Digraph.t -> Digraph.vertex list -> t
(** {!of_vertices}, raising [Invalid_argument] on invalid input. *)

val of_arcs : Digraph.t -> Digraph.arc list -> t
(** Builds a dipath from a non-empty chain of arc ids (each arc's head must
    be the next arc's tail). *)

val vertices : t -> Digraph.vertex list
(** The vertex sequence, in order. *)

val vertex_array : t -> Digraph.vertex array
(** Fresh array of the vertex sequence. *)

val arcs : t -> Digraph.arc list
(** The arc ids, in order. *)

val arc_array : t -> Digraph.arc array
(** Fresh array of the arc ids, in order. *)

val unsafe_arc_array : t -> Digraph.arc array
(** The arc ids {e borrowed}, in order — the dipath's own backing array,
    shared to keep hot consumers (solver state binding, engine
    occupancy) allocation-free.  Callers must never mutate it; validity
    is tied to the dipath's lifetime. *)

val src : t -> Digraph.vertex
val dst : t -> Digraph.vertex

val n_arcs : t -> int
(** Length in arcs (>= 1). *)

val mem_vertex : t -> Digraph.vertex -> bool
val mem_arc : t -> Digraph.arc -> bool

val vertex_index : t -> Digraph.vertex -> int option
(** Position of a vertex in the sequence. *)

val concat : Digraph.t -> t -> t -> t
(** [concat g p q] requires [dst p = src q] and no other shared vertex;
    returns the concatenation (re-validated against [g]). *)

val sub : Digraph.t -> t -> int -> int -> t
(** [sub g p i j] is the sub-dipath from vertex position [i] to position [j]
    (inclusive, [i < j]). *)

val sub_between : Digraph.t -> t -> Digraph.vertex -> Digraph.vertex -> t
(** Sub-dipath between two vertices that occur on [p] in this order. *)

val shares_arc : t -> t -> bool
(** Whether the two dipaths conflict, i.e. have an arc in common. *)

val shared_arcs : t -> t -> Digraph.arc list
(** Common arcs, in the order they appear on the first dipath. *)

val intersection_interval :
  Digraph.t -> t -> t -> (Digraph.vertex * Digraph.vertex) option
(** When the common arcs of the two dipaths form a single contiguous
    interval on both, the endpoints [(x, y)] of that interval (in dipath
    direction).  [None] if the dipaths do not share an arc.  Raises
    [Invalid_argument] when the shared arcs are not one contiguous interval
    (which cannot happen in a UPP-DAG, by Property 3 of the paper). *)

val equal : t -> t -> bool
(** Same vertex sequence. *)

val compare : t -> t -> int

val pp : Digraph.t -> Format.formatter -> t -> unit
(** Prints using vertex labels: [a -> b -> c]. *)

val to_string : Digraph.t -> t -> string
