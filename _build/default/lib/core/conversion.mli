(** Wavelength conversion (the paper's reference [10], Kleinberg–Kumar).

    A converter at vertex [v] lets a lightpath change wavelength when it
    passes through [v]: the dipath behaves as independent segments split at
    converter vertices.  Formally, the instance is replaced by its
    {e segment instance} — every dipath cut at each interior converter
    vertex — and wavelengths are assigned to segments.

    Two classical facts fall out and are verified by the tests:

    {ul
    {- converters never hurt: [w_conv <= w] (any coloring of the whole
       dipaths restricts to the segments);}
    {- with converters everywhere, [w_conv = pi] on {e any} DAG: the
       segments are single arcs, so the conflict graph is a disjoint union
       of per-arc cliques.  Conversion is thus exactly what buys back the
       Theorem 1 equality when internal cycles break it.}} *)

open Wl_digraph

val split_instance : Instance.t -> converters:Digraph.vertex list -> Instance.t
(** The segment instance: each dipath cut at every {e interior} occurrence
    of a converter vertex (endpoints need no conversion).  Segment order:
    family order, then along each dipath. *)

val segments_of : Instance.t -> converters:Digraph.vertex list -> int list
(** [segments_of inst ~converters] gives, per family index, the number of
    segments its dipath contributes (>= 1). *)

val wavelengths : Instance.t -> converters:Digraph.vertex list -> Solver.report
(** Solve the segment instance.  The report's wavelengths are the converter
    count for the original family; its assignment indexes {e segments}. *)

val greedy_placement :
  Instance.t -> budget:int -> Digraph.vertex list * Solver.report
(** Greedily place up to [budget] converters, each round picking the vertex
    whose conversion lowers the wavelength count most (ties to the smaller
    vertex id; stops early when no vertex helps).  Returns the placement
    and the final report — a simple baseline for the classic converter
    placement problem. *)
