open Wl_digraph

let arc_load inst a = Instance.n_paths_through inst a

let load_profile inst =
  let g = Instance.graph inst in
  Array.init (Digraph.n_arcs g) (Instance.n_paths_through inst)

let pi inst = Instance.max_arc_load inst

let max_load_arcs inst =
  let g = Instance.graph inst in
  let best = pi inst in
  if best = 0 then []
  else begin
    let out = ref [] in
    for a = Digraph.n_arcs g - 1 downto 0 do
      if Instance.n_paths_through inst a = best then out := a :: !out
    done;
    !out
  end

let max_load_arc_among inst candidates =
  match candidates with
  | [] -> invalid_arg "Load.max_load_arc_among: empty candidate list"
  | first :: rest ->
    List.fold_left
      (fun best a -> if arc_load inst a > arc_load inst best then a else best)
      first rest
