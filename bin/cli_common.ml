(* Flag handling and output plumbing shared by the wl subcommands and the
   stress binary — one definition for the observability flags so
   `wl session`, `wl top`, `wl wld` and `stress` stay byte-compatible in
   what they write for `wl metrics-check` / `wl trace-check`. *)

module Metrics = Wl_obs.Metrics
module Openmetrics = Wl_obs.Openmetrics
module Flight = Wl_obs.Flight

(* Write [text] to [path], "-" meaning stdout; [what] names the artifact in
   the confirmation line (suppressed for stdout). *)
let write_text ~progname ~what path text =
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "%s: wrote %s to %s (%d bytes)\n%!" progname what path
      (String.length text)
  end

(* Render the process-wide counter snapshot (plus caller gauges/latencies,
   per-label rows and trace exemplars) as an OpenMetrics exposition — the
   file `wl metrics-check` validates. *)
let write_metrics ~progname ?(gauges = []) ?(labeled = []) ?(latencies = [])
    ?(exemplars = []) path =
  let doc =
    Openmetrics.render ~gauges ~labeled ~latencies ~exemplars (Metrics.snapshot ())
  in
  write_text ~progname ~what:"OpenMetrics exposition" path doc

(* Install a process-wide flight-dump handler writing PREFIX.jsonl (the
   replayable op tail) and PREFIX.trace.json (chrome trace-event, accepted
   by [wl trace-check]).  Shared by `wl session --flight-dump`, the wld
   drain path and the CI audit-failure smoke.

   A labeled recorder (the daemon stamps the owning tenant via
   [Flight.set_label]) dumps to PREFIX.TENANT.{jsonl,trace.json} — with
   many sessions draining through one handler, a shared prefix would
   otherwise make every tenant overwrite the last one's dump.  Tenant
   ids are filename-safe by construction ([Proto.tenant_ok]). *)
let install_flight_dump prefix =
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  Flight.set_dump_handler
    (Some
       (fun ~reason fl ->
         let prefix =
           match Flight.label fl with
           | "" -> prefix
           | tenant -> prefix ^ "." ^ tenant
         in
         write (prefix ^ ".jsonl") (Flight.to_jsonl fl);
         write (prefix ^ ".trace.json") (Flight.to_chrome fl);
         Printf.eprintf
           "wl: flight dump (%s): wrote %s.jsonl and %s.trace.json (%d ops)\n%!"
           reason prefix prefix (Flight.total fl)))

(* --- cmdliner argument definitions ---------------------------------------- *)

open Cmdliner

let seed_arg ?(default = 1) ?(doc = "PRNG seed.") () =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let metrics_out_arg ?(doc = "Write an OpenMetrics text exposition to $(docv) on exit ($(b,-) for stdout); validated by $(b,wl metrics-check).") () =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"PATH" ~doc)

let flight_dump_arg ?(doc = "On an audit failure or drain, dump the flight recorder to $(docv).jsonl and $(docv).trace.json; the trace is accepted by $(b,wl trace-check).") () =
  Arg.(value & opt (some string) None & info [ "flight-dump" ] ~docv:"PREFIX" ~doc)
