(** UPP-DAGs: DAGs with the Unique diPath Property.

    A DAG is UPP when there is at most one dipath between any ordered pair of
    vertices.  For UPP-DAGs, a request [(x, y)] determines its route, the
    conflict graph of any family enjoys the Helly property (paper,
    Property 3), and the load equals the conflict graph's clique number.

    Recognition is a saturating path-count DP over the topological order;
    when the property fails the checker extracts two explicit distinct
    dipaths as a witness. *)

open Wl_digraph

type violation = {
  from_v : Digraph.vertex;
  to_v : Digraph.vertex;
  path1 : Dipath.t;
  path2 : Dipath.t;
}
(** Two distinct dipaths between the same ordered pair. *)

val is_upp : Dag.t -> bool

val find_violation : Dag.t -> violation option
(** [None] iff the DAG is UPP. The two returned dipaths differ. *)

val unique_dipath : Dag.t -> Digraph.vertex -> Digraph.vertex -> Dipath.t option
(** On a UPP-DAG: the unique dipath with >= 1 arc from [src] to [dst], or
    [None].  (On a non-UPP DAG this returns an arbitrary such dipath.) *)

val routable_pairs : Dag.t -> (Digraph.vertex * Digraph.vertex) list
(** Ordered pairs [(x, y)], [x <> y], such that a dipath from [x] to [y]
    exists — the all-to-all request family that the paper's concluding
    section discusses. *)
