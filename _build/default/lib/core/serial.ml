open Wl_digraph

let to_string inst =
  let g = Instance.graph inst in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dag %d\n" (Digraph.n_vertices g));
  Digraph.iter_vertices
    (fun v ->
      let l = Digraph.label g v in
      if l <> Printf.sprintf "v%d" v then
        Buffer.add_string buf (Printf.sprintf "vlabel %d %s\n" v l))
    g;
  Digraph.iter_arcs
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "arc %d %d\n" u v))
    g;
  List.iter
    (fun p ->
      Buffer.add_string buf "path";
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) (Dipath.vertices p);
      Buffer.add_char buf '\n')
    (Instance.paths_list inst);
  Buffer.contents buf

type parse_state = {
  mutable graph : Digraph.t option;
  mutable paths_rev : int list list; (* vertex sequences, reversed order *)
}

let of_string text =
  let st = { graph = None; paths_rev = [] } in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' text in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err lineno (Printf.sprintf "not an integer: %S" s)
  in
  let rec go lineno = function
    | [] -> (
      match st.graph with
      | None -> Error "missing 'dag <n>' header"
      | Some g -> (
        match
          List.fold_left
            (fun acc verts ->
              match acc with
              | Error _ as e -> e
              | Ok ps -> (
                match Dipath.make g verts with
                | p -> Ok (p :: ps)
                | exception Invalid_argument msg -> Error ("bad path: " ^ msg)))
            (Ok []) (List.rev st.paths_rev)
        with
        | Error msg -> Error msg
        | Ok paths -> (
          match Instance.of_digraph g (List.rev paths) with
          | Ok inst -> Ok inst
          | Error msg -> Error msg)))
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go (lineno + 1) rest
      | "dag" :: [ n ] -> (
        match parse_int lineno n with
        | Error e -> Error e
        | Ok n ->
          if st.graph <> None then err lineno "duplicate 'dag' header"
          else begin
            let g = Digraph.create () in
            Digraph.add_vertices g n;
            st.graph <- Some g;
            go (lineno + 1) rest
          end)
      | "vlabel" :: i :: name :: [] -> (
        match (st.graph, parse_int lineno i) with
        | None, _ -> err lineno "'vlabel' before 'dag'"
        | _, Error e -> Error e
        | Some g, Ok i ->
          if i < 0 || i >= Digraph.n_vertices g then err lineno "vertex out of range"
          else begin
            Digraph.set_label g i name;
            go (lineno + 1) rest
          end)
      | "arc" :: u :: [ v ] -> (
        match (st.graph, parse_int lineno u, parse_int lineno v) with
        | None, _, _ -> err lineno "'arc' before 'dag'"
        | _, Error e, _ | _, _, Error e -> Error e
        | Some g, Ok u, Ok v -> (
          match Digraph.add_arc g u v with
          | _ -> go (lineno + 1) rest
          | exception Invalid_argument msg -> err lineno msg))
      | "path" :: verts -> (
        if st.graph = None then err lineno "'path' before 'dag'"
        else
          let rec ints acc = function
            | [] -> Ok (List.rev acc)
            | w :: ws -> (
              match parse_int lineno w with
              | Ok v -> ints (v :: acc) ws
              | Error e -> Error e)
          in
          match ints [] verts with
          | Error e -> Error e
          | Ok vs ->
            st.paths_rev <- vs :: st.paths_rev;
            go (lineno + 1) rest)
      | word :: _ -> err lineno (Printf.sprintf "unknown directive %S" word))
  in
  go 1 lines

let write_file path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text
