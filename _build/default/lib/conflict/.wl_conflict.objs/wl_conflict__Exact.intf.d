lib/conflict/exact.mli: Coloring Ugraph
