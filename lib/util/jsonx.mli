(** Re-export of {!Wl_json.Jsonx}.

    The JSON machinery moved into its own base library ([wavelength.json])
    so that {!Wl_obs.Store} — which sits {e below} [wl_util] in the
    dependency order — can read and write trajectory files.  This alias
    keeps every existing [Wl_util.Jsonx] caller compiling unchanged; the
    types are equal, not merely isomorphic. *)

type t = Wl_json.Jsonx.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val to_string : ?pretty:bool -> t -> string
val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
