(** Arc loads and the load [pi(G, P)] of an instance.

    The load of an arc is the number of family dipaths through it; the load
    of the instance is the maximum over arcs.  [pi <= w] always (the dipaths
    through a max-load arc pairwise conflict). *)

open Wl_digraph

val arc_load : Instance.t -> Digraph.arc -> int

val load_profile : Instance.t -> int array
(** Per-arc loads, indexed by arc id. *)

val pi : Instance.t -> int
(** [max over arcs of arc_load]; [0] for an empty family or arc-less graph. *)

val max_load_arcs : Instance.t -> Digraph.arc list
(** All arcs attaining the load [pi] (empty iff [pi = 0]). *)

val max_load_arc_among : Instance.t -> Digraph.arc list -> Digraph.arc
(** The arc of maximum load within a non-empty candidate list (ties broken
    by arc id) — Theorem 6 picks the max-load arc {e on the cycle}. *)
