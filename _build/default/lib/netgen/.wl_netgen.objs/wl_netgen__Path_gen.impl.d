lib/netgen/path_gen.ml: Array Digraph Dipath Fun List Wl_core Wl_dag Wl_digraph Wl_util
