open Wl_core

let max_frame = 16 * 1024 * 1024

let proto_error msg = Error.Parse { line = 0; msg }

let frame payload =
  let len = String.length payload in
  if len = 0 then invalid_arg "Wire.frame: empty payload";
  if len > max_frame then invalid_arg "Wire.frame: payload exceeds max_frame";
  let b = Bytes.create (4 + len) in
  Bytes.set_uint8 b 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (len land 0xff);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

(* Decode the 4-byte prefix without touching anything past it; bounds are
   checked before the payload buffer exists, so a garbage length can cost
   at most a refused frame, never an allocation. *)
let length_at buf off =
  (Char.code buf.[off] lsl 24)
  lor (Char.code buf.[off + 1] lsl 16)
  lor (Char.code buf.[off + 2] lsl 8)
  lor Char.code buf.[off + 3]

let unframe buf off =
  let n = String.length buf in
  if off < 0 || off > n then Error (proto_error "frame offset out of range")
  else if n - off < 4 then Error (proto_error "truncated frame: length prefix incomplete")
  else
    let len = length_at buf off in
    if len = 0 then Error (proto_error "zero-length frame")
    else if len > max_frame then
      Error (proto_error (Printf.sprintf "oversized frame: %d bytes (max %d)" len max_frame))
    else if n - off - 4 < len then
      Error
        (proto_error
           (Printf.sprintf "truncated frame: %d payload bytes promised, %d present" len
              (n - off - 4)))
    else Ok (String.sub buf (off + 4) len, off + 4 + len)

let unframe_all buf =
  let n = String.length buf in
  let rec go acc off =
    if off = n then Ok (List.rev acc)
    else
      match unframe buf off with
      | Ok (payload, off') -> go (payload :: acc) off'
      | Error _ as e -> e
  in
  go [] 0

(* --- blocking fd transport ------------------------------------------------ *)

let rec write_all fd b off len =
  if len = 0 then Ok ()
  else
    match Unix.write fd b off len with
    | 0 -> Error (Error.Io "connection closed during write")
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len
    | exception Unix.Unix_error (e, _, _) -> Error (Error.Io (Unix.error_message e))

let write fd payload =
  let framed = frame payload in
  write_all fd (Bytes.unsafe_of_string framed) 0 (String.length framed)

(* Read exactly [len] bytes; [Ok false] when EOF arrives before the first
   byte (clean close), [Error] when it arrives in the middle. *)
let read_exactly fd b len =
  let rec go off =
    if off = len then Ok true
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
        if off = 0 then Ok false
        else Error (proto_error (Printf.sprintf "truncated frame: eof after %d of %d bytes" off len))
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Error.Io (Unix.error_message e))
  in
  go 0

let read fd =
  let prefix = Bytes.create 4 in
  match read_exactly fd prefix 4 with
  | Error _ as e -> e
  | Ok false -> Ok None
  | Ok true -> (
    let len = length_at (Bytes.unsafe_to_string prefix) 0 in
    if len = 0 then Error (proto_error "zero-length frame")
    else if len > max_frame then
      Error (proto_error (Printf.sprintf "oversized frame: %d bytes (max %d)" len max_frame))
    else
      let payload = Bytes.create len in
      match read_exactly fd payload len with
      | Error _ as e -> e
      | Ok false -> Error (proto_error "truncated frame: eof before payload")
      | Ok true -> Ok (Some (Bytes.unsafe_to_string payload)))
