lib/core/theorem2.mli: Dag Instance Internal_cycle Wl_dag Wl_digraph
