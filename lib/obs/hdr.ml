(* Log-linear ("HDR") latency histograms over atomic int cells.

   Bucket scheme, parameterized by [sub_bits] (default 6):
   - values in [0, 2^sub_bits) are exact: bucket index = value;
   - a value with most-significant bit k >= sub_bits lands in tier
     [k - sub_bits + 1], which splits [2^k, 2^(k+1)) into
     [half = 2^(sub_bits-1)] linear sub-buckets of width 2^(k-sub_bits+1):
       index = half * (k - sub_bits + 1) + (v lsr (k - sub_bits + 1))
     (the top half of each tier's sub-bucket range, since
     v lsr shift is in [half, 2*half)).
   The bucket *ceiling* — the largest value sharing the bucket — is what
   quantile queries report, so answers are exact over buckets and within
   2^(1-sub_bits) relative error of the true order statistic.

   The record path is lock-free and allocation-free: fetch_and_add on
   immediate ints, CAS loops via tail recursion (no ref cells), no float
   arithmetic.  Everything else (quantiles, snapshots, merge) is cold. *)

type t = {
  sub_bits : int;
  sub_count : int;  (* 2^sub_bits: the exact range *)
  half : int;  (* sub_count / 2: sub-buckets per tier *)
  cells : int Atomic.t array;
  total : int Atomic.t;
  sumv : int Atomic.t;
  mn : int Atomic.t;  (* max_int when empty *)
  mx : int Atomic.t;  (* -1 when empty *)
  (* Exemplar latch: value and trace id of the worst traced sample seen
     since the last reset.  [ex_trace = 0] means no exemplar; the pair
     is two independent atomics (a racing writer can momentarily pair a
     value with a neighbouring trace — acceptable for a monitoring
     pointer, and the alternative would allocate on the record path). *)
  ex_v : int Atomic.t;
  ex_trace : int Atomic.t;
}

let create ?(sub_bits = 6) () =
  let sub_bits = if sub_bits < 2 then 2 else if sub_bits > 12 then 12 else sub_bits in
  let sub_count = 1 lsl sub_bits in
  let half = sub_count / 2 in
  (* Highest tier holds msb 62 (max positive int): index range ends at
     half * (65 - sub_bits) - 1. *)
  let size = half * (65 - sub_bits) in
  {
    sub_bits;
    sub_count;
    half;
    cells = Array.init size (fun _ -> Atomic.make 0) (* alloc-ok *);
    total = Atomic.make 0;
    sumv = Atomic.make 0;
    mn = Atomic.make max_int;
    mx = Atomic.make (-1);
    ex_v = Atomic.make (-1);
    ex_trace = Atomic.make 0;
  }

(* Most significant bit position of v >= 1, by tail recursion (the record
   path must not allocate, and ref cells would on a non-flambda build). *)
let rec msb_from v k = if v <= 1 then k else msb_from (v lsr 1) (k + 1)

let index t v =
  if v < t.sub_count then v
  else
    let k = msb_from (v lsr t.sub_bits) t.sub_bits in
    let shift = k - t.sub_bits + 1 in
    (t.half * shift) + (v lsr shift)

(* Largest value mapping to bucket [i]. *)
let bucket_ceiling t i =
  if i < t.sub_count then i
  else
    let tier = (i / t.half) - 1 in
    let top = i - (tier * t.half) in
    ((top + 1) lsl tier) - 1

let round_up t v =
  let v = if v < 0 then 0 else v in
  bucket_ceiling t (index t v)

let rec cas_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then cas_min a v

let rec cas_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then cas_max a v

let record_traced t v ~trace =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add (Array.unsafe_get t.cells (index t v)) 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sumv v);
  cas_min t.mn v;
  cas_max t.mx v;
  if trace <> 0 && v >= Atomic.get t.ex_v then begin
    Atomic.set t.ex_v v;
    Atomic.set t.ex_trace trace
  end

let record t v = record_traced t v ~trace:0

let exemplar t =
  let trace = Atomic.get t.ex_trace in
  if trace = 0 then None else Some (Atomic.get t.ex_v, trace)

let count t = Atomic.get t.total
let sum t = Atomic.get t.sumv
let min_value t = if count t = 0 then 0 else Atomic.get t.mn
let max_value t = if count t = 0 then 0 else Atomic.get t.mx

let quantile t q =
  let n = Atomic.get t.total in
  if n = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    let len = Array.length t.cells in
    let rec go i acc =
      if i >= len then bucket_ceiling t (len - 1)
      else
        let acc = acc + Atomic.get t.cells.(i) in
        if acc >= rank then bucket_ceiling t i else go (i + 1) acc
    in
    go 0 0
  end

let merge_into ~dst src =
  if dst.sub_bits <> src.sub_bits then
    invalid_arg "Hdr.merge_into: sub_bits mismatch";
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n <> 0 then ignore (Atomic.fetch_and_add dst.cells.(i) n))
    src.cells;
  ignore (Atomic.fetch_and_add dst.total (Atomic.get src.total));
  ignore (Atomic.fetch_and_add dst.sumv (Atomic.get src.sumv));
  if count src > 0 then begin
    cas_min dst.mn (Atomic.get src.mn);
    cas_max dst.mx (Atomic.get src.mx)
  end;
  (match exemplar src with
  | Some (v, trace) when v >= Atomic.get dst.ex_v ->
    Atomic.set dst.ex_v v;
    Atomic.set dst.ex_trace trace
  | _ -> ())

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.cells;
  Atomic.set t.total 0;
  Atomic.set t.sumv 0;
  Atomic.set t.mn max_int;
  Atomic.set t.mx (-1);
  Atomic.set t.ex_v (-1);
  Atomic.set t.ex_trace 0

type snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

let snapshot t =
  {
    count = count t;
    sum = sum t;
    min = min_value t;
    max = max_value t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
    p999 = quantile t 0.999;
  }

let pp_time ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let pp_ns ppf s =
  Format.fprintf ppf "n=%d p50=%a p90=%a p99=%a p999=%a max=%a" s.count pp_time
    s.p50 pp_time s.p90 pp_time s.p99 pp_time s.p999 pp_time s.max

module Slo = struct
  (* Single-writer sliding window of over-target bits.  An engine session
     owns exactly one and records from whichever domain runs the op; the
     engine already serializes ops per session, so plain mutable fields
     suffice and keep [record] allocation-free.  The budget comparison is
     integer-only (parts per million) for the same reason. *)
  type t = {
    target_ns : int;
    budget : float;
    budget_ppm : int;
    window : int;
    min_fill : int;
    bits : int array;
    mutable idx : int;
    mutable filled : int;
    mutable over : int;
    mutable total : int;
    mutable total_over : int;
    mutable latched : bool;
  }

  let create ?(window = 512) ~target_ns ~budget () =
    let window = if window < 8 then 8 else window in
    {
      target_ns;
      budget;
      budget_ppm = int_of_float ((budget *. 1e6) +. 0.5);
      window;
      min_fill = (let m = window / 8 in if m < 8 then 8 else m);
      bits = Array.make window 0 (* alloc-ok *);
      idx = 0;
      filled = 0;
      over = 0;
      total = 0;
      total_over = 0;
      latched = false;
    }

  let record t lat =
    let b = if lat > t.target_ns then 1 else 0 in
    if t.filled = t.window then t.over <- t.over - Array.unsafe_get t.bits t.idx
    else t.filled <- t.filled + 1;
    Array.unsafe_set t.bits t.idx b;
    t.over <- t.over + b;
    t.idx <- (if t.idx + 1 = t.window then 0 else t.idx + 1);
    t.total <- t.total + 1;
    t.total_over <- t.total_over + b;
    if
      (not t.latched)
      && t.filled >= t.min_fill
      && t.over * 1_000_000 > t.filled * t.budget_ppm
    then t.latched <- true

  let burn_rate t =
    if t.filled = 0 then 0. else float_of_int t.over /. float_of_int t.filled

  let tripped t = t.latched
  let healthy t = not t.latched

  let rearm t =
    Array.fill t.bits 0 t.window 0;
    t.idx <- 0;
    t.filled <- 0;
    t.over <- 0;
    t.latched <- false

  type state = {
    target_ns : int;
    budget : float;
    window : int;
    observed : int;
    over : int;
    total : int;
    total_over : int;
    burn : float;
    tripped : bool;
  }

  let state (t : t) =
    {
      target_ns = t.target_ns;
      budget = t.budget;
      window = t.window;
      observed = t.filled;
      over = t.over;
      total = t.total;
      total_over = t.total_over;
      burn = burn_rate t;
      tripped = t.latched;
    }

  let pp ppf s =
    Format.fprintf ppf "slo(target=%a budget=%.2f%% burn=%.2f%% %s)"
      pp_time s.target_ns (100. *. s.budget) (100. *. s.burn)
      (if s.tripped then "TRIPPED" else "ok")
end
