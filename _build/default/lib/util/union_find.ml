type t = { parent : int array; rank : int array; mutable classes : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    t.classes <- t.classes - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end;
    true
  end

let same t a b = find t a = find t b

let count t = t.classes

let class_sizes t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find t i in
    Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r))
  done;
  Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl []
  |> List.sort compare
