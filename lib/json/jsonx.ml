type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- parsing -------------------------------------------------------------- *)

exception Fail of int * string (* byte position, message *)

type cursor = { text : string; mutable pos : int }

let fail cur msg = raise (Fail (cur.pos, msg))
let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.text in
  while
    cur.pos < n
    && match cur.text.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> fail cur (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail cur (Printf.sprintf "expected %C, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %S" word)

(* Encode a Unicode code point as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if cur.pos + 4 > String.length cur.text then
            fail cur "truncated \\u escape";
          let hex = String.sub cur.text cur.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some cp ->
            cur.pos <- cur.pos + 4;
            add_utf8 buf cp
          | None -> fail cur (Printf.sprintf "bad \\u escape %S" hex))
        | c -> fail cur (Printf.sprintf "bad escape \\%C" c));
        go ())
    | Some c when Char.code c < 0x20 -> fail cur "raw control character in string"
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.text in
  let is_float = ref false in
  while
    cur.pos < n
    &&
    match cur.text.[cur.pos] with
    | '0' .. '9' | '-' | '+' -> true
    | '.' | 'e' | 'E' ->
      is_float := true;
      true
    | _ -> false
  do
    advance cur
  done;
  let lexeme = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %S" lexeme)
  else
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> fail cur (Printf.sprintf "bad number %S" lexeme)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let key = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((key, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((key, v) :: acc)
        | _ -> fail cur "expected ',' or '}' in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']' in array"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let line_of text pos =
  let line = ref 1 in
  for i = 0 to min pos (String.length text - 1) - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

let parse text =
  let cur = { text; pos = 0 } in
  match
    let v = parse_value cur in
    skip_ws cur;
    (match peek cur with
    | Some c -> fail cur (Printf.sprintf "trailing garbage starting with %C" c)
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "line %d: %s" (line_of text pos) msg)

(* --- printing ------------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | Str s -> escape_into buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf (if pretty then "," else ", ");
          indent (depth + 1);
          go (depth + 1) x)
        xs;
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf (if pretty then "," else ", ");
          indent (depth + 1);
          escape_into buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) x)
        fields;
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
