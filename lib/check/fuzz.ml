module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock
module Jsonx = Wl_util.Jsonx

type failure = {
  check : string;
  seed : int;
  reason : string;
  shrunk : Shrink.result;
  flight : (string * string) option;
      (* engine oracle only: (jsonl, chrome) flight dump of the shrunk
         reproducer's failing session.  Excluded from to_json — dump
         timings are nondeterministic and the goldens are byte-stable. *)
}

type check_run = {
  check : string;
  seeds_run : int;
  failures : failure list;
}

type summary = {
  runs : check_run list;
  total_seeds : int;
  total_failures : int;
}

(* Per-seed observability, mirroring Wl_validate.Sweeps.instrument but
   under the [fuzz.] prefix; one atomic load per seed while disabled. *)
let instrumented (oracle : Oracle.t) =
  let name = oracle.Oracle.name in
  let h_latency = Metrics.latency ("fuzz." ^ name ^ ".ns") in
  let c_failures = Metrics.counter ("fuzz." ^ name ^ ".failures") in
  let c_seeds = Metrics.counter ("fuzz." ^ name ^ ".seeds") in
  let span_name = "fuzz." ^ name in
  fun seed ->
    if not (Metrics.enabled () || Trace.enabled ()) then Oracle.run oracle seed
    else begin
      let go () =
        Metrics.incr c_seeds;
        let t0 = Clock.now_ns () in
        let result = Oracle.run oracle seed in
        Metrics.observe_ns h_latency (Clock.now_ns () - t0);
        (match result with
        | Some (seed, reason) ->
          Metrics.incr c_failures;
          Trace.instant
            ~args:[ ("seed", Trace.Int seed); ("reason", Trace.Str reason) ]
            (span_name ^ ".failure")
        | None -> ());
        result
      in
      if Trace.enabled () then
        Trace.with_span ~args:[ ("seed", Trace.Int seed) ] span_name go
      else go ()
    end

let h_shrink = Metrics.histogram "fuzz.shrink.attempts"

let shrink_failure ?shrink_attempts (oracle : Oracle.t) (seed, reason) =
  let subject = oracle.Oracle.generate seed in
  let minimize () =
    Shrink.minimize ?max_attempts:shrink_attempts ~check:oracle.Oracle.check
      subject
  in
  let shrunk =
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("seed", Trace.Int seed) ]
        "fuzz.shrink" minimize
    else minimize ()
  in
  Metrics.observe h_shrink shrunk.Shrink.attempts;
  (* Re-check the shrunk subject sequentially so the flight side channel
     (engine oracle only) holds the dump of exactly this reproducer's
     session, not whichever parallel seed failed last. *)
  ignore (Oracle.take_flight ());
  let flight =
    match oracle.Oracle.check shrunk.Shrink.subject with
    | _ -> Oracle.take_flight ()
    | exception _ -> Oracle.take_flight ()
  in
  { check = oracle.Oracle.name; seed; reason; shrunk; flight }

let run ?domains ?(seed0 = 0) ?budget_s ?shrink_attempts ~seeds oracles =
  let t0 = Clock.now_ns () in
  let over_budget () =
    match budget_s with
    | None -> false
    | Some b -> float_of_int (Clock.now_ns () - t0) /. 1e9 >= b
  in
  let run_oracle (oracle : Oracle.t) =
    let one = instrumented oracle in
    let failures = ref [] in
    let done_ = ref 0 in
    while !done_ < seeds && not (over_budget ()) do
      let wave = min 128 (seeds - !done_) in
      let base = seed0 + !done_ in
      let results =
        Wl_util.Parallel.init ?domains wave (fun i -> one (base + i))
      in
      Array.iter
        (function
          | Some failure -> failures := failure :: !failures
          | None -> ())
        results;
      done_ := !done_ + wave
    done;
    let sorted =
      List.sort (fun (s1, _) (s2, _) -> compare (s1 : int) s2) !failures
    in
    {
      check = oracle.Oracle.name;
      seeds_run = !done_;
      failures = List.map (shrink_failure ?shrink_attempts oracle) sorted;
    }
  in
  let runs = List.map run_oracle oracles in
  {
    runs;
    total_seeds = List.fold_left (fun a r -> a + r.seeds_run) 0 runs;
    total_failures =
      List.fold_left (fun a r -> a + List.length r.failures) 0 runs;
  }

let failure_json f =
  let s = f.shrunk.Shrink.subject in
  Jsonx.Obj
    [
      ("seed", Jsonx.Int f.seed);
      ("reason", Jsonx.Str f.reason);
      ( "shrunk",
        Jsonx.Obj
          [
            ("vertices", Jsonx.Int (Subject.n_vertices s));
            ("paths", Jsonx.Int (Subject.n_paths s));
            ("ops", Jsonx.Int (Subject.n_ops s));
            ("reason", Jsonx.Str f.shrunk.Shrink.reason);
            ("wl", Jsonx.Str (Subject.wl_string s));
            ( "wlops",
              match Subject.ops_string s with
              | None -> Jsonx.Null
              | Some text -> Jsonx.Str text );
          ] );
    ]

let to_json ?pretty summary =
  Jsonx.to_string ?pretty
    (Jsonx.Obj
       [
         ("format", Jsonx.Str "wl-fuzz");
         ("version", Jsonx.Int 1);
         ("seeds", Jsonx.Int summary.total_seeds);
         ("failures", Jsonx.Int summary.total_failures);
         ( "checks",
           Jsonx.Arr
             (List.map
                (fun r ->
                  Jsonx.Obj
                    [
                      ("check", Jsonx.Str r.check);
                      ("seeds", Jsonx.Int r.seeds_run);
                      ("failures", Jsonx.Arr (List.map failure_json r.failures));
                    ])
                summary.runs) );
       ])

let pp ppf summary =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %6d seeds   %s@." r.check r.seeds_run
        (match r.failures with
        | [] -> "ok"
        | fs ->
          let f = List.hd fs in
          Printf.sprintf "%d FAILURES (first: seed %d, %s)" (List.length fs)
            f.seed f.reason);
      List.iter
        (fun f ->
          let s = f.shrunk.Shrink.subject in
          Format.fprintf ppf
            "  seed %d shrunk to %d vertices / %d paths / %d ops (%s)@."
            f.seed (Subject.n_vertices s) (Subject.n_paths s) (Subject.n_ops s)
            f.shrunk.Shrink.reason;
          Format.fprintf ppf "  --- reproducer ---@.%s" (Subject.wl_string s);
          (match Subject.ops_string s with
          | None -> ()
          | Some ops -> Format.fprintf ppf "  --- ops ---@.%s" ops);
          match f.flight with
          | None -> ()
          | Some (jsonl, _) ->
            Format.fprintf ppf
              "  --- flight: %d op(s) recorded (written by --corpus) ---@."
              (List.length
                 (List.filter
                    (fun l -> String.trim l <> "")
                    (String.split_on_char '\n' jsonl))))
        r.failures)
    summary.runs;
  Format.fprintf ppf "total: %d seeds, %d failures@." summary.total_seeds
    summary.total_failures

let write_corpus ~dir summary =
  let write_file path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    path
  in
  List.concat_map
    (fun r ->
      List.concat_map
        (fun (f : failure) ->
          let paths =
            Corpus.add ~dir ~check:f.check
              ~label:("s" ^ string_of_int f.seed)
              f.shrunk.Shrink.subject
          in
          match f.flight with
          | None -> paths
          | Some (jsonl, chrome) ->
            (* The black-box tail of the failing session rides along with
               the reproducer: replayable JSONL plus a Chrome trace that
               [wl trace-check] accepts. *)
            let base =
              Filename.concat dir
                (Printf.sprintf "%s.s%d.flight" f.check f.seed)
            in
            paths
            @ [
                write_file (base ^ ".jsonl") jsonl;
                write_file (base ^ ".trace.json") chrome;
              ])
        r.failures)
    summary.runs
