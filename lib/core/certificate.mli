(** Independent verification of solver reports.

    Re-derives every claim in a {!Solver.report} from scratch — validity of
    the assignment, the load, the lower bound's soundness, the dispatch
    method's applicability conditions, and the per-method guarantees
    (Theorem 1 optimality, the Theorem 6 bounds).  Used by the CLI and the
    integration tests as a second, algorithm-free line of defense: the
    checker shares no code path with the algorithms it audits beyond the
    graph structures themselves. *)

type issue = string
(** Human-readable description of a failed check. *)

val audit : Instance.t -> Solver.report -> issue list
(** Empty iff the report withstands every check. *)

val audit_exn : Instance.t -> Solver.report -> unit
(** Raises [Failure] with the concatenated issues when the audit fails.
    @deprecated Use {!audit} and match on the issue list (see the
    deprecation table in {!module:Wl}); this twin remains only for legacy
    callers and will go in the next major version. *)
