(** Disjoint-set forest with union by rank and path compression.

    Used for undirected cycle detection (an edge joining two vertices already
    in the same class closes a cycle) and for connected-component counting. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the class of an element. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]. Returns [false] when
    they were already in the same class (i.e. the union closed a cycle). *)

val same : t -> int -> int -> bool
(** Whether two elements share a class. *)

val count : t -> int
(** Number of distinct classes. *)

val class_sizes : t -> (int * int) list
(** [(representative, size)] for every class. *)
