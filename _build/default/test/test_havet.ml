(* Tests for Theorem 7: the Havet family attains w = ceil(8h/3) = the
   Theorem 6 bound, with pi = 2h. *)

open Helpers
open Wl_core
module Figures = Wl_netgen.Figures
module Ugraph = Wl_conflict.Ugraph
module Clique = Wl_conflict.Clique
module Graph_props = Wl_conflict.Graph_props

(* The Wagner graph V8 = C8 plus antipodal chords. *)
let is_wagner cg =
  Ugraph.n_vertices cg = 8
  && Ugraph.n_edges cg = 12
  &&
  (* Find a hamiltonian cycle ordering under which chords are antipodal:
     check the known edge pattern directly up to the construction's fixed
     indexing. *)
  List.for_all
    (fun i ->
      Ugraph.mem_edge cg i ((i + 1) mod 8) && Ugraph.mem_edge cg i ((i + 4) mod 8))
    (List.init 8 Fun.id)

let test_base_structure () =
  let inst = Figures.havet 1 in
  let cg = Conflict_of.build inst in
  check "conflict graph is C8 + antipodal chords" true (is_wagner cg);
  check_int "pi = 2" 2 (Load.pi inst);
  check_int "w = 3" 3 (Bounds.chromatic_exact inst);
  check_int "alpha = 3" 3 (Clique.independence_number cg);
  check_int "clique = 2" 2 (Clique.clique_number cg);
  check "odd girth 5" true (Graph_props.odd_girth cg = Some 5)

let test_graph_properties () =
  let dag = Figures.havet_graph () in
  check "UPP" true (Wl_dag.Upp.is_upp dag);
  check_int "one internal cycle" 1 (Wl_dag.Internal_cycle.count_independent dag);
  check_int "12 vertices" 12 (Wl_dag.Dag.n_vertices dag);
  check_int "12 arcs" 12 (Wl_dag.Dag.n_arcs dag)

let expected_w h = Replication.ceil_div (8 * h) 3

let test_replicated_loads () =
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      check_int "8h dipaths" (8 * h) (Instance.n_paths inst);
      check_int "pi = 2h" (2 * h) (Load.pi inst))
    [ 1; 2; 3; 5; 8 ]

(* Lower bound: each wavelength class is independent in V8[K_h], and
   alpha(V8[K_h]) = alpha(V8) = 3, so w >= ceil(8h/3). *)
let test_lower_bound_via_alpha () =
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      check_int
        (Printf.sprintf "independence lower bound, h=%d" h)
        (expected_w h)
        (Bounds.independence_lower inst))
    [ 1; 2; 3; 4 ]

(* Upper bound: the covering-design coloring uses exactly ceil(8h/3). *)
let test_upper_bound_via_covering () =
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      match
        Replication.covering_coloring ~n_base:8
          ~sets:(Figures.havet_base_independent_sets ())
          ~h ~n_colors:(expected_w h)
      with
      | None -> Alcotest.fail "covering coloring must exist at ceil(8h/3)"
      | Some a ->
        check "valid" true (Assignment.is_valid inst a);
        check_int "uses exactly ceil(8h/3)" (expected_w h)
          (Assignment.n_wavelengths (Assignment.normalize a)))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 12 ]

let test_covering_fails_below () =
  List.iter
    (fun h ->
      check "no covering below the optimum" true
        (Replication.covering_coloring ~n_base:8
           ~sets:(Figures.havet_base_independent_sets ())
           ~h
           ~n_colors:(expected_w h - 1)
        = None))
    [ 1; 2; 3; 4; 5; 9 ]

(* Exact confirmation for small h: w is exactly ceil(8h/3), i.e. the
   Theorem 6 bound ceil(4 pi/3) is attained (Theorem 7). *)
let test_exact_small () =
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      let w = Bounds.chromatic_exact inst in
      check_int (Printf.sprintf "w at h=%d" h) (expected_w h) w;
      check_int "attains theorem6 bound" (Theorem6.upper_bound (2 * h)) w)
    [ 1; 2; 3 ]

let test_base_sets_independent () =
  let inst = Figures.havet 1 in
  let cg = Conflict_of.build inst in
  Array.iter
    (fun s -> check "independent" true (Ugraph.is_independent cg s))
    (Figures.havet_base_independent_sets ());
  (* And each vertex is covered exactly 3 times. *)
  let count = Array.make 8 0 in
  Array.iter
    (fun s -> List.iter (fun v -> count.(v) <- count.(v) + 1) s)
    (Figures.havet_base_independent_sets ());
  check "uniform 3-cover" true (Array.for_all (fun c -> c = 3) count)

let test_odd_cycle_sets_independent () =
  List.iter
    (fun k ->
      let inst = Figures.fig5 k in
      let cg = Conflict_of.build inst in
      Array.iter
        (fun s -> check "independent in C_{2k+1}" true (Ugraph.is_independent cg s))
        (Figures.odd_cycle_independent_sets k))
    [ 2; 3; 4 ]

let test_ratio_tends_to_4_3 () =
  (* w / pi = ceil(8h/3) / 2h -> 4/3 from above. *)
  let ratio h = float_of_int (expected_w h) /. float_of_int (2 * h) in
  check "h=1 ratio 1.5" true (abs_float (ratio 1 -. 1.5) < 1e-9);
  check "h=3 ratio 4/3" true (abs_float (ratio 3 -. (4.0 /. 3.0)) < 1e-9);
  check "monotone toward 4/3" true (ratio 1 >= ratio 2 && ratio 2 >= ratio 3)

let suite =
  [
    ( "theorem-7-havet",
      [
        Alcotest.test_case "base conflict graph" `Quick test_base_structure;
        Alcotest.test_case "graph properties" `Quick test_graph_properties;
        Alcotest.test_case "replicated loads" `Quick test_replicated_loads;
        Alcotest.test_case "lower bound via alpha" `Quick test_lower_bound_via_alpha;
        Alcotest.test_case "upper bound via covering" `Quick
          test_upper_bound_via_covering;
        Alcotest.test_case "covering fails below optimum" `Quick
          test_covering_fails_below;
        Alcotest.test_case "exact w for small h" `Slow test_exact_small;
        Alcotest.test_case "base independent sets" `Quick test_base_sets_independent;
        Alcotest.test_case "odd cycle independent sets" `Quick
          test_odd_cycle_sets_independent;
        Alcotest.test_case "ratio tends to 4/3" `Quick test_ratio_tends_to_4_3;
      ] );
  ]
