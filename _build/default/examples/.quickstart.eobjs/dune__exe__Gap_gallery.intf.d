examples/gap_gallery.mli:
