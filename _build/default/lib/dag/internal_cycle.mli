(** Internal cycles of a DAG — the paper's central structural notion.

    An {e oriented cycle} of a DAG is a cycle of the underlying undirected
    graph: an even alternation of forward and backward dipath segments.  It
    is {e internal} when every vertex on it has at least one predecessor and
    one successor in the whole DAG (equivalently, the cycle contains no
    source and no sink of the DAG).

    Theorem 1: no internal cycle implies [w = pi] for every dipath family;
    Theorem 2: an internal cycle yields a family with [pi = 2 < 3 = w].
    Detection reduces to finding an undirected cycle in the subgraph induced
    by the "internal" vertices ([indeg > 0] and [outdeg > 0]). *)

open Wl_digraph

type walk = (Digraph.arc * bool) list
(** Closed walk of arcs: [(arc, forward?)]; see
    {!Wl_digraph.Traversal.undirected_cycle}. *)

(** An internal cycle in the canonical alternating form used by Theorems 2
    and 6: [k >= 1] "peak" vertices [b.(i)] (in-degree 0 on the cycle) and
    [k] "valley" vertices [c.(i)] (out-degree 0 on the cycle), joined by
    directed segments [down.(i) : b.(i) ~> c.(i)] and
    [up.(i) : b.(i+1) ~> c.(i)] (indices mod [k]). *)
type canonical = {
  b : Digraph.vertex array;
  c : Digraph.vertex array;
  down : Dipath.t array; (* down.(i) : b.(i) ~> c.(i) *)
  up : Dipath.t array; (* up.(i) : b.(i+1 mod k) ~> c.(i) *)
}

val internal_vertex : Dag.t -> Digraph.vertex -> bool
(** [indeg > 0 && outdeg > 0]. *)

val internal_vertices : Dag.t -> Digraph.vertex list

val find : Dag.t -> walk option
(** Some internal cycle as a closed walk, or [None]. *)

val has_internal_cycle : Dag.t -> bool

val count_independent : Dag.t -> int
(** Cyclomatic number [m' - n' + components] of the internal subgraph: the
    number of independent internal cycles.  [0] iff no internal cycle; [1]
    characterizes the "only one internal cycle" case of Theorem 6. *)

val canonicalize : Dag.t -> walk -> canonical
(** Normalizes a closed walk (as returned by {!find}) into the alternating
    form.  Raises [Invalid_argument] on a walk that is not a closed cycle of
    the DAG. *)

val find_canonical : Dag.t -> canonical option
(** [canonicalize] of [find]. *)

val verify_canonical : Dag.t -> canonical -> bool
(** Checks all structural promises of the canonical form (segment endpoints,
    internality of every vertex).  Used by tests. *)

val arcs_of_canonical : canonical -> Digraph.arc list
(** All arcs of the cycle, without duplicates. *)

val pp_canonical : Dag.t -> Format.formatter -> canonical -> unit
