lib/validate/sweeps.mli:
