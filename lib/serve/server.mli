(** The [wld] daemon core: a socket front-end over a {!Shard.t}.

    One OS thread per accepted connection reads {!Wire} frames, decodes
    {!Proto} requests (text or JSON, answered in kind), and executes them
    through {!Shard.call} — so the protocol work stays on cheap threads
    while the engine work stays on the shard domains.

    Shutdown is cooperative: {!request_stop} (safe from a signal handler
    and from connection threads — a client [shutdown] request triggers it
    after its [bye] reply) only marks a flag; {!wait} notices, closes the
    listener, drains the shards and returns every session's final
    {!Wl_engine.Engine.health} — the listing the daemon dumps before
    exiting 0. *)

open Wl_core
module Engine = Wl_engine.Engine

(** Listening endpoints; rendered/parsed as [unix:PATH] and
    [tcp:HOST:PORT] (a bare path starting with [/] or [.] counts as
    [unix:], a bare [HOST:PORT] as [tcp:]). *)
type address = Unix_sock of string | Tcp of string * int

val address_of_string : string -> (address, Error.t) result
val address_to_string : address -> string

type t

val serve : shard:Shard.t -> address -> (t, Error.t) result
(** Bind, listen and start accepting on a background thread.  A unix
    socket path is unlinked first if present; TCP listeners set
    [SO_REUSEADDR].  [Error (Io _)] when the endpoint cannot be bound. *)

val address : t -> address

val request_stop : t -> unit
(** Ask the server to shut down; returns immediately.  Idempotent. *)

val stop_requested : t -> bool

val wait : t -> (string * Engine.session) list
(** Block until {!request_stop}, then perform the drain: close the
    listener, flush and join the shards, and return the quiesced
    per-tenant session listing (sorted by tenant) for health and flight
    dumps.  In-flight connections observing the drain receive
    [Precondition] error frames. *)
