(** Self-contained SVG rendering of digraphs and wavelength-colored dipath
    families.

    A dependency-free alternative to the DOT export: vertices are laid out
    in layers by longest-path depth (sources left, sinks right), arcs drawn
    as cubic curves, and each dipath family overlaid with one stroke color
    per wavelength.  Good enough to eyeball every figure in the paper
    without Graphviz installed. *)

val of_digraph : ?width:int -> ?height:int -> Digraph.t -> string
(** Plain rendering; the viewport scales to the layer layout. *)

val of_colored_paths :
  ?width:int ->
  ?height:int ->
  Digraph.t ->
  (Dipath.t * int) list ->
  string
(** [of_colored_paths g paths] overlays each [(dipath, wavelength)] pair,
    offsetting parallel strokes on shared arcs so multiplicity stays
    visible.  Wavelengths index a fixed palette (cycling past its end). *)

val write_file : string -> string -> unit
