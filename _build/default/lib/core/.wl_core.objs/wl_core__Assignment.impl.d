lib/core/assignment.ml: Array Format Hashtbl Instance Wl_conflict Wl_digraph
