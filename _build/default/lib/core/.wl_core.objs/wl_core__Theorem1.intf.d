lib/core/theorem1.mli: Assignment Instance Wl_dag Wl_digraph
