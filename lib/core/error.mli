(** Structured errors for the result-typed public API.

    Every fallible entry point of the stable surface ({!Serial} parsing,
    {!Instance} construction, dipath validation, solver preconditions, the
    {!Wl_engine.Engine} session ops) reports one of these constructors
    instead of a bare string or an exception; [_exn] wrappers remain for
    callers that prefer raising.  Each constructor maps to a distinct CLI
    exit code ({!exit_code}), so shell scripts can dispatch on the status of
    [wl] without parsing stderr. *)

type t =
  | Parse of { line : int; msg : string }
      (** Text/JSON format errors; [line] is 1-based, [0] when unknown. *)
  | Invalid_path of string  (** Dipath validation failed. *)
  | Cyclic of string  (** A digraph that must be a DAG has a directed cycle. *)
  | Bad_index of { what : string; index : int }
      (** Path / arc / vertex index out of range or no longer live. *)
  | Invalid_op of string  (** Engine op rejected (dead path, duplicate arc, ...). *)
  | Precondition of string  (** Documented precondition violated. *)
  | Unsupported_version of int  (** Serial format version from the future. *)
  | Io of string

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** Distinct per constructor: Parse 65, Cyclic 66, Invalid_path 67,
    Bad_index 68, Invalid_op 69, Precondition 70, Unsupported_version 71,
    Io 74. *)

val to_code : t -> int
(** The on-wire error code of the [wlrpc/1] protocol — {e equal} to
    {!exit_code} by construction, so a client that exits with the code from
    an error frame behaves exactly like the CLI hitting the same error
    locally.  Wire, CLI and library share this one namespace; the
    exhaustiveness test pins the agreement per constructor. *)

val of_code : int -> string -> t option
(** [of_code code msg] reconstructs the constructor behind a wire code and
    its {!to_string} rendering ([None] for an unknown code).  Structured
    payloads (parse line, bad index, version) are parsed back out of the
    stable rendering, so [of_code (to_code e) (to_string e)] recovers [e]
    itself for every constructor. *)

val raise_error : t -> 'a
(** Raise as the {!Error} exception. *)

val get_exn : ('a, t) result -> 'a
(** [Ok v -> v]; raises {!Error} otherwise — the [_exn] wrapper builder. *)

val of_invalid_arg : ('a -> 'b) -> 'a -> ('b, t) result
(** Run a legacy raising function, mapping [Invalid_argument msg] to
    [Precondition msg]. *)
