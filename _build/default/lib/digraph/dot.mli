(** Graphviz DOT export.

    Renders a digraph, optionally highlighting a family of dipaths with one
    pen color per wavelength — handy for eyeballing the paper's figures
    ([dot -Tpdf] on the output). *)

val of_digraph : ?name:string -> Digraph.t -> string
(** Plain DOT rendering of the graph. *)

val of_colored_paths :
  ?name:string ->
  Digraph.t ->
  (Dipath.t * int) list ->
  string
(** [of_colored_paths g paths] renders the graph and, for each
    [(path, color)] pair, overlays the path's arcs in the pen color chosen
    for [color] (colors index a fixed palette, cycling past its end). *)

val write_file : string -> string -> unit
(** [write_file path dot_source]. *)
