(** Simple undirected graphs, used as conflict graphs.

    Vertices are dense integers; the adjacency is kept both as lists (for
    iteration) and as bitsets (for the clique and exact-coloring solvers).
    The number of wavelengths [w(G,P)] of the paper is precisely the
    chromatic number of such a graph. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Ignores duplicate insertions; raises [Invalid_argument] on self-loops or
    out-of-range vertices. *)

val unsafe_add_edge : t -> int -> int -> unit
(** [add_edge] with no bounds, self-loop, or duplicate check — the edge
    count is incremented unconditionally, so inserting a duplicate
    corrupts [n_edges].  Only for trusted bulk loads whose source
    already guarantees validity and uniqueness (e.g. re-emitting the
    edges of an existing graph into component subgraphs). *)

val mem_edge : t -> int -> int -> bool
val neighbors : t -> int -> int list
val neighbor_set : t -> int -> Wl_util.Bitset.t
(** The adjacency bitset itself — callers must not mutate it. *)

val degree : t -> int -> int
val max_degree : t -> int
val edges : t -> (int * int) list
(** Each edge once, as [(min, max)] pairs, sorted. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f u v] once per edge, [u < v], in the same
    sorted order as {!edges} but without materializing the list. *)

val fold_edges : ('a -> int -> int -> 'a) -> t -> 'a -> 'a

val complement : t -> t

val of_edges : int -> (int * int) list -> t

val is_clique : t -> int list -> bool
(** Whether the given vertices are pairwise adjacent. *)

val is_independent : t -> int list -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
