(* The fuzzing subsystem: oracle soundness over CI-scale seed ranges,
   shrinker determinism and minimality (via the deliberately failing
   selftest oracle), the engine equivalence property in shrinkable form,
   and replay of every checked-in corpus reproducer. *)

open Helpers
module Oracle = Wl_check.Oracle
module Shrink = Wl_check.Shrink
module Subject = Wl_check.Subject
module Corpus = Wl_check.Corpus
module Fuzz = Wl_check.Fuzz

(* Every oracle (native and lifted sweeps) passes a CI-scale seed range;
   bin/wl fuzz runs the same thing at larger scale. *)
let oracle_case (o : Oracle.t) =
  Alcotest.test_case o.Oracle.name `Slow (fun () ->
      for seed = 0 to 79 do
        match Oracle.run o seed with
        | None -> ()
        | Some (seed, reason) -> Alcotest.failf "seed %d: %s" seed reason
      done)

let test_fuzz_driver () =
  let summary = Fuzz.run ~seeds:25 [ Oracle.serial; Oracle.thm1_dsatur ] in
  check_int "runs" 2 (List.length summary.Fuzz.runs);
  check_int "total seeds" 50 summary.Fuzz.total_seeds;
  check_int "no failures" 0 summary.Fuzz.total_failures;
  List.iter
    (fun r -> check_int (r.Fuzz.check ^ " seeds_run") 25 r.Fuzz.seeds_run)
    summary.Fuzz.runs

let test_fuzz_catches_and_shrinks () =
  (* The selftest oracle's false claim is caught on every seed and each
     failure arrives minimized: load 2 needs exactly two paths sharing one
     arc, and nothing smaller fails. *)
  let summary = Fuzz.run ~seeds:3 [ Oracle.selftest ] in
  check_int "all seeds fail" 3 summary.Fuzz.total_failures;
  List.iter
    (fun (f : Fuzz.failure) ->
      let s = f.Fuzz.shrunk.Shrink.subject in
      check_int "minimal vertices" 2 (Subject.n_vertices s);
      check_int "minimal paths" 2 (Subject.n_paths s);
      check "still fails" true (Oracle.selftest.Oracle.check s <> None))
    (List.concat_map (fun r -> r.Fuzz.failures) summary.Fuzz.runs)

let test_shrink_deterministic () =
  let o = Oracle.selftest in
  let subject = o.Oracle.generate 0 in
  let r1 = Shrink.minimize ~check:o.Oracle.check subject in
  let r2 = Shrink.minimize ~check:o.Oracle.check subject in
  check "same subject" true (Subject.equal r1.Shrink.subject r2.Shrink.subject);
  check "same reason" true (r1.Shrink.reason = r2.Shrink.reason);
  check_int "same attempts" r1.Shrink.attempts r2.Shrink.attempts

let test_shrink_rejects_passing () =
  let subject = Oracle.serial.Oracle.generate 0 in
  match Shrink.minimize ~check:(fun _ -> None) subject with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "minimize accepted a passing subject"

let test_subject_parts_roundtrip () =
  (* to_parts/of_parts is the slice the shrinker edits; it must be the
     identity on well-formed subjects, ops included. *)
  let subject = Oracle.engine.Oracle.generate 3 in
  check "subject has ops" true (Subject.n_ops subject > 0);
  match Subject.of_parts (Subject.to_parts subject) with
  | None -> Alcotest.fail "of_parts rejected to_parts output"
  | Some s -> check "identity" true (Subject.equal subject s)

let test_subject_file_roundtrip () =
  let subject = Oracle.engine.Oracle.generate 5 in
  let prefix = Filename.temp_file "wl_check" "" in
  let written = Subject.write ~prefix subject in
  check_int "wl + wlops written" 2 (List.length written);
  let read =
    match Subject.read ~wl:(prefix ^ ".wl") with
    | Ok s -> s
    | Error e -> Alcotest.failf "read: %s" (Wl_core.Error.to_string e)
  in
  List.iter Sys.remove written;
  Sys.remove prefix;
  check "file roundtrip" true (Subject.equal subject read)

(* The PR-3 engine equivalence property, ported onto the oracle API:
   qcheck contributes only the seed; generation, the op replay, and the
   op-by-op comparison against fresh solves all live in Oracle.engine —
   so any failure found here is immediately shrinkable by Shrink.minimize
   (or `wl fuzz --checks engine`). *)
let engine_prop =
  qtest ~count:60 "engine oracle: warm sessions match fresh solves" seed_gen
    (fun seed ->
      match Oracle.run Oracle.engine seed with
      | None -> true
      | Some (seed, reason) ->
        QCheck2.Test.fail_reportf "seed %d: %s" seed reason)

(* One replay test per checked-in reproducer.  Corpus entries are
   formerly-failing minimized inputs: the bug they exposed is fixed, so
   the oracle must pass; a failure here is a regression. *)
let corpus_cases =
  match Corpus.load "corpus" with
  | Error msg ->
    [
      Alcotest.test_case "load" `Quick (fun () ->
          Alcotest.failf "corpus: %s" msg);
    ]
  | Ok entries ->
    Alcotest.test_case "non-empty" `Quick (fun () ->
        check "entries present" true (entries <> []))
    :: List.map
         (fun (e : Corpus.entry) ->
           Alcotest.test_case
             ("replay " ^ Filename.basename e.Corpus.wl_file)
             `Quick
             (fun () ->
               match Corpus.replay e with
               | None -> ()
               | Some reason -> Alcotest.failf "regression: %s" reason))
         entries

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "fuzz driver totals" `Quick test_fuzz_driver;
        Alcotest.test_case "selftest caught and shrunk to minimum" `Quick
          test_fuzz_catches_and_shrinks;
        Alcotest.test_case "shrinking is deterministic" `Quick
          test_shrink_deterministic;
        Alcotest.test_case "minimize rejects passing subjects" `Quick
          test_shrink_rejects_passing;
        Alcotest.test_case "subject parts roundtrip" `Quick
          test_subject_parts_roundtrip;
        Alcotest.test_case "subject file roundtrip" `Quick
          test_subject_file_roundtrip;
        engine_prop;
      ]
      @ List.map oracle_case Oracle.all );
    ("check.corpus", corpus_cases);
  ]
