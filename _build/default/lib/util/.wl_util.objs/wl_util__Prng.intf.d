lib/util/prng.mli:
