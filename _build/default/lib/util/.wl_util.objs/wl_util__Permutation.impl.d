lib/util/permutation.ml: Array Format Hashtbl List Option
