(* Online vs offline wavelength assignment on a growing request stream.

   Lightpath requests arrive in batches; the online policy routes each
   arrival on a min-load path and first-fit colors it, never
   reconfiguring; the offline column shows what a full re-optimization
   would need at the same instant.  Both scenarios run on
   internal-cycle-free networks, so Theorem 1 makes the offline column
   exact (= the routing load) rather than a heuristic:

   - a meshy 4x6 optical backbone with hotspot traffic, where online
     first-fit happens to track the optimum closely;
   - a 30-node metro line with uniform lightpaths, the classic shape where
     arrival order costs real wavelengths.

   Run with: dune exec examples/dynamic_rwa.exe [seed] *)

open Wl_core
module Generators = Wl_netgen.Generators
module Traffic = Wl_netgen.Traffic
module Prng = Wl_util.Prng

let run_scenario name dag model rng ~batch_size ~n_batches =
  Format.printf "%s: %d nodes, %d links@." name (Wl_dag.Dag.n_vertices dag)
    (Wl_dag.Dag.n_arcs dag);
  Format.printf "%6s %10s %8s %10s %12s %12s@." "batch" "requests" "load"
    "online-ff" "offline-opt" "gain";
  let arrivals = Traffic.batches rng dag ~batch_size ~n_batches model in
  let router = Routing.min_load_router dag in
  let routed = ref [] in
  let total_gain = ref 0 in
  List.iteri
    (fun i batch ->
      List.iter
        (fun req ->
          match router req with
          | Ok p -> routed := !routed @ [ p ]
          | Error e -> Format.printf "routing failed: %s@." (Error.to_string e))
        batch;
      let inst = Instance.make dag !routed in
      let pi = Load.pi inst in
      (* Online coloring: first-fit in arrival order is exactly what an
         incremental assigner would have produced. *)
      let online =
        Assignment.n_wavelengths (Assignment.normalize (Baselines.first_fit inst))
      in
      (* Offline: Theorem 1 re-optimization (exact, = load). *)
      let offline =
        Assignment.n_wavelengths (Assignment.normalize (Theorem1.color inst))
      in
      assert (offline = pi);
      total_gain := !total_gain + (online - offline);
      Format.printf "%6d %10d %8d %10d %12d %12d@." (i + 1)
        (Instance.n_paths inst) pi online offline (online - offline))
    arrivals;
  Format.printf "cumulative reconfiguration dividend: %d wavelength-batches@.@."
    !total_gain

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11 in
  let rng = Prng.create seed in
  let backbone =
    Generators.without_internal_cycle rng
      (Generators.backbone rng ~pops:4 ~levels:6)
  in
  run_scenario "mesh backbone, hotspot traffic" backbone
    (fun rng dag k -> Traffic.hotspot rng dag ~hubs:2 ~bias:0.6 k)
    rng ~batch_size:8 ~n_batches:10;
  let line =
    Wl_dag.Dag.of_digraph_exn
      (Wl_digraph.Digraph.of_arcs 30 (List.init 29 (fun i -> (i, i + 1))))
  in
  run_scenario "metro line, uniform lightpaths" line Traffic.uniform rng
    ~batch_size:15 ~n_batches:8;
  Format.printf
    "The offline column is exact (Theorem 1: wavelengths = load on these@.\
     cycle-free networks); the gain column is the price of never@.\
     reconfiguring, which depends on workload shape.@."
