lib/core/theorem6.ml: Array Assignment Digraph Dipath Hashtbl Instance List Load Option Printf Theorem1 Wl_dag Wl_digraph
