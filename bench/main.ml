(* Benchmark and reproduction harness.

   The paper is a theory paper: its "evaluation" consists of the worked
   constructions of Figures 1, 3, 5, 9 and the quantitative claims of
   Theorems 1, 2, 6, 7.  This harness regenerates every one of them
   (tables E1-E12; the experiment ids match DESIGN.md), printing the
   paper's number next to the measured one, and then runs Bechamel
   micro-benchmarks on the algorithms (P1-P4).

   Run with: dune exec bench/main.exe            (everything)
             dune exec bench/main.exe -- tables  (reproduction tables only)
             dune exec bench/main.exe -- perf    (perf benches only)
             dune exec bench/main.exe -- perf --json [--domains D]
               (flat-core vs seed-baseline timings + parallel sweep
                trajectory, written to BENCH_core.json) *)

open Wl_core
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng

let section id title =
  Printf.printf "\n== %s: %s ==\n" id title

let verdict ok = if ok then "ok" else "MISMATCH"

(* --- E1: Figure 1 — unbounded w at load 2 ------------------------------- *)

let e1 () =
  section "E1" "Figure 1: pi = 2, w = k (gap unbounded in the load)";
  Printf.printf "%4s %12s %12s %10s\n" "k" "pi (paper 2)" "w (paper k)" "verdict";
  List.iter
    (fun k ->
      let inst = Figures.fig1 k in
      let pi = Load.pi inst in
      let w = (Solver.solve inst).Solver.n_wavelengths in
      Printf.printf "%4d %12d %12d %10s\n" k pi w (verdict (pi = 2 && w = k)))
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* --- E2: Figure 3 -------------------------------------------------------- *)

let e2 () =
  section "E2" "Figure 3: one internal cycle, pi = 2, w = 3, conflict graph C5";
  let inst = Figures.fig3 () in
  let pi = Load.pi inst in
  let w = Bounds.chromatic_exact inst in
  let c5 = Wl_conflict.Graph_props.is_cycle_graph (Conflict_of.build inst) in
  Printf.printf "pi = %d (paper 2)   w = %d (paper 3)   conflict graph C5 = %b   %s\n"
    pi w c5
    (verdict (pi = 2 && w = 3 && c5))

(* --- E3: Theorem 1 ------------------------------------------------------- *)

let e3 () =
  section "E3" "Theorem 1: w = pi on DAGs without internal cycle (random sweep)";
  Printf.printf "%6s %6s %7s %6s %6s %8s\n" "n" "arcs" "paths" "pi" "w" "verdict";
  let rng = Prng.create 20260704 in
  List.iter
    (fun (n, k) ->
      let dag = Generators.gnp_no_internal_cycle rng n (8.0 /. float_of_int n) in
      let inst = Path_gen.random_instance rng dag k in
      let a = Theorem1.color inst in
      let w = Assignment.n_wavelengths (Assignment.normalize a) in
      let pi = Load.pi inst in
      Printf.printf "%6d %6d %7d %6d %6d %8s\n" n
        (Wl_dag.Dag.n_arcs dag) (Instance.n_paths inst) pi w
        (verdict (Assignment.is_valid inst a && w = pi)))
    [ (50, 40); (100, 80); (200, 160); (400, 320); (800, 640); (1600, 1280) ];
  (* Rooted trees, the paper's warm-up class. *)
  List.iter
    (fun n ->
      let dag = Generators.random_rooted_tree rng n in
      let inst = Path_gen.random_instance rng dag n in
      let a = Theorem1.color inst in
      let w = Assignment.n_wavelengths (Assignment.normalize a) in
      let pi = Load.pi inst in
      Printf.printf "%6d %6d %7d %6d %6d %8s  (rooted tree)\n" n (n - 1)
        (Instance.n_paths inst) pi w
        (verdict (Assignment.is_valid inst a && w = pi)))
    [ 100; 500; 2000 ]

(* --- E4: Theorem 2 / Figure 5 -------------------------------------------- *)

let e4 () =
  section "E4" "Theorem 2 / Figure 5: internal cycle => family with pi = 2, w = 3";
  Printf.printf "%4s %6s %6s %16s %10s\n" "k" "pi" "w" "conflict graph" "verdict";
  List.iter
    (fun k ->
      let inst = Figures.fig5 k in
      let pi = Load.pi inst in
      let w = Bounds.chromatic_exact inst in
      let cg = Conflict_of.build inst in
      let shape =
        if Wl_conflict.Graph_props.is_cycle_graph cg then
          Printf.sprintf "C%d" (Wl_conflict.Ugraph.n_vertices cg)
        else "not a cycle"
      in
      Printf.printf "%4d %6d %6d %16s %10s\n" k pi w shape
        (verdict (pi = 2 && w = 3 && shape = Printf.sprintf "C%d" ((2 * k) + 1))))
    [ 2; 3; 4; 5; 6 ];
  Printf.printf
    "\nReplication of the k = 2 family: pi = 2h, w = ceil(5h/2) (ratio -> 5/4)\n";
  Printf.printf "%4s %6s %14s %14s %8s %10s\n" "h" "pi" "w (paper)" "w (measured)"
    "ratio" "verdict";
  List.iter
    (fun h ->
      let inst = Theorem2.replicate (Figures.fig5 2) h in
      let paper = Replication.ceil_div (5 * h) 2 in
      let measured =
        if h <= 4 then Bounds.chromatic_exact inst
        else begin
          (* Exact coloring is exponential; at larger h certify instead:
             covering coloring (upper) + independence bound (lower). *)
          let upper =
            match
              Replication.covering_coloring ~n_base:5
                ~sets:(Figures.odd_cycle_independent_sets 2) ~h ~n_colors:paper
            with
            | Some a when Assignment.is_valid inst a -> paper
            | _ -> max_int
          in
          let lower = Bounds.independence_lower inst in
          if lower = upper then upper else -1
        end
      in
      Printf.printf "%4d %6d %14d %14d %8.3f %10s\n" h (2 * h) paper measured
        (float_of_int measured /. float_of_int (2 * h))
        (verdict (measured = paper)))
    [ 1; 2; 3; 4; 6; 8; 12 ]

(* --- E5: UPP structure --------------------------------------------------- *)

let e5 () =
  section "E5" "Property 3 + Corollary 5: Helly, clique = load, no K23 (UPP sweep)";
  let rng = Prng.create 5 in
  let trials = 60 in
  let helly = ref 0 and clique = ref 0 and k23 = ref 0 and intervals = ref 0 in
  for _ = 1 to trials do
    let dag = Generators.gnp_upp rng 16 0.25 in
    let inst = Path_gen.random_instance rng dag 12 in
    if Upp_theorems.helly_holds inst then incr helly;
    if Upp_theorems.clique_number_equals_load inst then incr clique;
    if Upp_theorems.no_k23 inst then incr k23;
    if Upp_theorems.pairwise_intersections_are_intervals inst then incr intervals
  done;
  Printf.printf
    "random UPP instances: %d/%d Helly, %d/%d clique=load, %d/%d no-K23, \
     %d/%d interval intersections   %s\n"
    !helly trials !clique trials !k23 trials !intervals trials
    (verdict (!helly = trials && !clique = trials && !k23 = trials && !intervals = trials));
  (* Negative control: figure 1's family breaks Helly and clique = load. *)
  let inst = Figures.fig1 5 in
  Printf.printf "figure-1 control: helly = %b, clique = load = %b (paper: both false)\n"
    (Upp_theorems.helly_holds inst)
    (Upp_theorems.clique_number_equals_load inst)

(* --- E6: Theorem 6 ------------------------------------------------------- *)

let e6 () =
  section "E6" "Theorem 6: w <= ceil(4 pi/3) on one-internal-cycle UPP-DAGs";
  Printf.printf "%6s %6s %8s %8s %22s %8s\n" "trial" "pi" "w-algo" "bound"
    "sigma cycle type" "verdict";
  let rng = Prng.create 99 in
  let shown = ref 0 in
  let all_ok = ref true in
  for trial = 1 to 60 do
    let dag = Generators.upp_one_internal_cycle rng () in
    let paths =
      (* distinct dipaths: the regime the paper's proof covers *)
      let seen = Hashtbl.create 16 in
      List.filter
        (fun p ->
          let key = Wl_digraph.Dipath.vertices p in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (Path_gen.random_family rng dag 14)
    in
    let inst = Instance.make dag paths in
    let a, stats = Theorem6.color_with_stats inst in
    let ok =
      Assignment.is_valid inst a
      && stats.Theorem6.n_colors <= Theorem6.upper_bound stats.Theorem6.pi
    in
    if not ok then all_ok := false;
    if !shown < 10 || not ok then begin
      incr shown;
      let ct =
        String.concat ","
          (List.map
             (fun (l, m) -> Printf.sprintf "%d^%d" l m)
             stats.Theorem6.cycle_type)
      in
      Printf.printf "%6d %6d %8d %8d %22s %8s\n" trial stats.Theorem6.pi
        stats.Theorem6.n_colors
        (Theorem6.upper_bound stats.Theorem6.pi)
        ct (verdict ok)
    end
  done;
  Printf.printf "... 60 trials total: %s\n" (verdict !all_ok)

(* --- E7: Figure 9 / Theorem 7 -------------------------------------------- *)

let e7 () =
  section "E7"
    "Theorem 7 / Figure 9: Havet family attains w = ceil(8h/3) = ceil(4 pi/3)";
  Printf.printf "%4s %6s %12s %12s %12s %12s %8s\n" "h" "pi" "w (paper)"
    "lower(alpha)" "upper(cover)" "thm6-algo" "verdict";
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      let paper = Replication.ceil_div (8 * h) 3 in
      let lower = Bounds.independence_lower inst in
      let upper =
        match
          Replication.covering_coloring ~n_base:8
            ~sets:(Figures.havet_base_independent_sets ())
            ~h ~n_colors:paper
        with
        | Some a when Assignment.is_valid inst a -> paper
        | _ -> max_int
      in
      let algo =
        let a, stats = Theorem6.color_with_stats inst in
        if Assignment.is_valid inst a then stats.Theorem6.n_colors else -1
      in
      Printf.printf "%4d %6d %12d %12d %12d %12d %8s\n" h (2 * h) paper lower
        upper algo
        (verdict (lower = paper && upper = paper)))
    [ 1; 2; 3; 4; 6; 8; 12 ];
  Printf.printf
    "\nNote: the w column is certified exactly (matching lower and upper\n\
     bounds).  The thm6-algo column shows what the paper's constructive\n\
     proof produces; for h > 1 it exceeds the bound because the proof's\n\
     Facts 1-2 do not cover replicated (multiset) families — see\n\
     EXPERIMENTS.md.  The theorem itself holds: w = ceil(4 pi/3) exactly.\n"

(* --- E8: iterated Theorem 6 (the paper's closing remark) ------------------ *)

let dedup paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Wl_digraph.Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    paths

let e8 () =
  section "E8"
    "Closing remark: C internal cycles => w within C nested ceil(4/3 .)";
  Printf.printf "%4s %8s %6s %8s %8s %8s\n" "C" "trials" "maxpi" "max w" "max bnd"
    "verdict";
  let rng = Prng.create 4242 in
  List.iter
    (fun c ->
      let trials = 25 in
      let ok = ref true and max_pi = ref 0 and max_w = ref 0 and max_b = ref 0 in
      for _ = 1 to trials do
        let dag = Generators.upp_internal_cycles rng ~cycles:c () in
        let inst = Instance.make dag (dedup (Path_gen.random_family rng dag 14)) in
        let a = Theorem6_multi.color ~check:false inst in
        let pi = Load.pi inst in
        let w = Assignment.n_wavelengths (Assignment.normalize a) in
        let bound = Theorem6_multi.upper_bound ~n_internal_cycles:c pi in
        if (not (Assignment.is_valid inst a)) || w > bound then ok := false;
        max_pi := max !max_pi pi;
        max_w := max !max_w w;
        max_b := max !max_b bound
      done;
      Printf.printf "%4d %8d %6d %8d %8d %8s\n" c trials !max_pi !max_w !max_b
        (verdict !ok))
    [ 1; 2; 3; 4 ]

(* --- E9: grooming (the paper's concluding problem) ------------------------ *)

let e9 () =
  section "E9"
    "Concluding problem: max requests satisfiable with w wavelengths";
  Printf.printf "%6s %4s %8s %8s %8s %10s\n" "family" "w" "greedy" "exact"
    "line-opt" "verdict";
  (* Line instances: both exact solvers agree; greedy may lag. *)
  let rng = Prng.create 31 in
  let line n =
    Wl_digraph.Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1)))
  in
  List.iter
    (fun (k, w) ->
      let g = line 12 in
      let dag = Wl_dag.Dag.of_digraph_exn g in
      let paths =
        List.init k (fun _ ->
            let lo = Prng.int rng 11 in
            let hi = Prng.int_in rng (lo + 1) 11 in
            Wl_digraph.Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)))
      in
      let inst = Instance.make dag paths in
      let greedy = (Grooming.greedy inst ~w).Grooming.size in
      let exact =
        match Grooming.exact inst ~w with
        | Some s -> s.Grooming.size
        | None -> -1
      in
      let line_opt =
        match Grooming.on_line inst ~w with
        | Some s -> s.Grooming.size
        | None -> -1
      in
      Printf.printf "%6d %4d %8d %8d %8d %10s\n" k w greedy exact line_opt
        (verdict (line_opt = exact && greedy <= exact)))
    [ (10, 1); (10, 2); (16, 2); (16, 3); (24, 3) ];
  (* Rooted trees — the case the paper singles out as "already a difficult
     one": no specialized exact solver exists here, so branch-and-bound
     carries the small sizes and greedy approximates beyond. *)
  Printf.printf
    "\nrooted trees (paper: \"appears already as a difficult one\"):\n";
  Printf.printf "%6s %4s %8s %8s %10s\n" "family" "w" "greedy" "exact" "gap";
  List.iter
    (fun (k, w) ->
      let dag = Generators.random_rooted_tree rng 20 in
      let inst = Path_gen.random_instance rng dag k in
      let greedy = (Grooming.greedy inst ~w).Grooming.size in
      let exact =
        match Grooming.exact inst ~w with
        | Some s -> s.Grooming.size
        | None -> -1
      in
      Printf.printf "%6d %4d %8d %8d %10d\n" k w greedy exact (exact - greedy))
    [ (12, 1); (12, 2); (18, 2); (18, 3) ];
  (* General no-internal-cycle DAGs: the Theorem 1 reduction colors every
     selected subfamily within w. *)
  let all_ok = ref true in
  for _ = 1 to 20 do
    let dag = Generators.gnp_no_internal_cycle rng 18 0.2 in
    let inst = Path_gen.random_instance rng dag 14 in
    let w = max 1 (Load.pi inst / 2) in
    match Grooming.satisfy inst ~w with
    | None -> all_ok := false
    | Some (_, assignment) ->
      if Assignment.n_wavelengths assignment > w then all_ok := false
  done;
  Printf.printf
    "\nselected subfamilies always w-colorable on cycle-free DAGs: %s\n"
    (verdict !all_ok)

(* --- E10: first-fit baseline ablation ------------------------------------ *)

let e10 () =
  section "E10"
    "Ablation: online first-fit vs the Theorem 1 constructive optimum";
  Printf.printf "%6s %6s %10s %10s %10s %12s\n" "arcs" "paths" "pi = opt"
    "first-fit" "worst-of-8" "overshoot";
  let rng = Prng.create 77 in
  (* Random lightpaths on a long line: the classic workload where online
     first-fit overshoots the (here optimal, by Theorem 1) load. *)
  List.iter
    (fun (n, k) ->
      let g =
        Wl_digraph.Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1)))
      in
      let dag = Wl_dag.Dag.of_digraph_exn g in
      let paths =
        List.init k (fun _ ->
            let lo = Prng.int rng (n - 2) in
            let hi = min (n - 1) (Prng.int_in rng (lo + 1) (lo + 1 + Prng.int rng 8)) in
            Wl_digraph.Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)))
      in
      let inst = Instance.make dag paths in
      let pi = Load.pi inst in
      let ff =
        Assignment.n_wavelengths (Assignment.normalize (Baselines.first_fit inst))
      in
      let worst = ref 0 in
      for _ = 1 to 8 do
        let candidate =
          Assignment.n_wavelengths
            (Assignment.normalize (Baselines.first_fit_random rng inst))
        in
        if candidate > !worst then worst := candidate
      done;
      Printf.printf "%6d %6d %10d %10d %10d %11.1f%%\n" (n - 1)
        (Instance.n_paths inst) pi ff !worst
        (100.0 *. float_of_int (!worst - pi) /. float_of_int (max 1 pi)))
    [ (30, 60); (60, 150); (120, 400); (240, 1000) ]

(* --- E11: the paper's conjecture ------------------------------------------ *)

let e11 () =
  section "E11"
    "Conjecture (Section 5): is w / pi unbounded with unlimited internal \
     cycles?";
  Printf.printf
    "empirical search: exact w / pi maximized over random families on\n\
     UPP-DAGs with C internal cycles (small instances, exact chromatic).\n";
  Printf.printf "%4s %8s %12s %12s %14s\n" "C" "trials" "max w/pi" "max w"
    "iterated bnd";
  let rng = Prng.create 1234 in
  List.iter
    (fun c ->
      let trials = 40 in
      let best = ref 0.0 and best_w = ref 0 and best_bound = ref 0 in
      for _ = 1 to trials do
        let dag = Generators.upp_internal_cycles rng ~cycles:c () in
        (* Theorem-2-flavored families maximize the gap at small load. *)
        let family =
          match Theorem2.build dag with
          | Some inst -> Instance.paths_list inst
          | None -> []
        in
        let extra = dedup (Path_gen.random_family rng dag 6) in
        let inst = Instance.make dag (family @ extra) in
        if Instance.n_paths inst > 0 && Instance.n_paths inst <= 18 then begin
          let pi = Load.pi inst in
          let w = Bounds.chromatic_exact inst in
          if pi > 0 then begin
            let ratio = float_of_int w /. float_of_int pi in
            if ratio > !best then begin
              best := ratio;
              best_w := w;
              best_bound := Bounds.theorem6_upper ~n_internal_cycles:c pi
            end
          end
        end
      done;
      Printf.printf "%4d %8d %12.3f %12d %14d\n" c trials !best !best_w
        !best_bound)
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\nNo family observed above the iterated bound; the largest ratios come\n\
     from odd-cycle conflict graphs at pi = 2 (the ceiling effect), matching\n\
     the paper's intuition that new constructions — not replication — would\n\
     be needed to push the ratio with more cycles.  The conjecture remains\n\
     open.\n"

(* --- E12: wavelength conversion ------------------------------------------- *)

let e12 () =
  section "E12"
    "Wavelength conversion (ref [10]): converters buy back w = pi";
  Printf.printf "%10s %6s %10s %14s %12s %10s\n" "instance" "pi" "w (none)"
    "w (greedy-1)" "w (full)" "verdict";
  List.iter
    (fun (name, inst) ->
      let pi = Load.pi inst in
      let base = (Solver.solve inst).Solver.n_wavelengths in
      let _, greedy1 = Conversion.greedy_placement inst ~budget:1 in
      let full =
        Conversion.wavelengths inst
          ~converters:(Wl_digraph.Digraph.vertices (Instance.graph inst))
      in
      Printf.printf "%10s %6d %10d %14d %12d %10s\n" name pi base
        greedy1.Solver.n_wavelengths full.Solver.n_wavelengths
        (verdict (full.Solver.n_wavelengths = pi)))
    [
      ("fig3", Figures.fig3 ());
      ("fig5-k3", Figures.fig5 3);
      ("havet-h1", Figures.havet 1);
      ("havet-h2", Figures.havet 2);
    ];
  Printf.printf
    "\nFull conversion always collapses w to the load (segments are single\n\
     arcs: per-arc cliques), and on these gap examples a single\n\
     well-placed converter already closes the pi-vs-w gap.\n"

(* --- Perf benches (P1-P4) ------------------------------------------------- *)

open Bechamel
open Toolkit

let make_thm1_bench n =
  let rng = Prng.create 1 in
  let dag = Generators.gnp_no_internal_cycle rng n (8.0 /. float_of_int n) in
  let inst = Path_gen.random_instance rng dag (3 * n / 4) in
  Test.make
    ~name:(Printf.sprintf "thm1/color/n=%d" n)
    (Staged.stage (fun () -> ignore (Theorem1.color inst)))

let make_thm6_bench k =
  let inst =
    let rng = Prng.create 2 in
    let dag = Generators.upp_one_internal_cycle rng ~extra_vertices:30 () in
    Wl_core.Instance.make dag
      (Path_gen.random_family rng dag k
      |> List.sort_uniq (fun p q -> Wl_digraph.Dipath.compare p q))
  in
  Test.make
    ~name:(Printf.sprintf "thm6/color/k=%d" k)
    (Staged.stage (fun () -> ignore (Theorem6.color ~check:false inst)))

let make_coloring_benches () =
  let inst =
    let rng = Prng.create 3 in
    let dag = Generators.gnp_dag rng 40 0.15 in
    Path_gen.random_instance rng dag 60
  in
  let cg = Conflict_of.build inst in
  [
    Test.make ~name:"coloring/dsatur/60-paths"
      (Staged.stage (fun () -> ignore (Wl_conflict.Coloring.dsatur cg)));
    Test.make ~name:"coloring/welsh-powell/60-paths"
      (Staged.stage (fun () -> ignore (Wl_conflict.Coloring.greedy_desc_degree cg)));
    Test.make ~name:"coloring/conflict-build/60-paths"
      (Staged.stage (fun () -> ignore (Conflict_of.build inst)));
  ]

let make_detection_benches n =
  let rng = Prng.create 4 in
  let dag = Generators.gnp_dag rng n (6.0 /. float_of_int n) in
  [
    Test.make
      ~name:(Printf.sprintf "detect/internal-cycle/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wl_dag.Internal_cycle.count_independent dag)));
    Test.make
      ~name:(Printf.sprintf "detect/upp/n=%d" n)
      (Staged.stage (fun () -> ignore (Wl_dag.Upp.is_upp dag)));
  ]

let make_misc_benches () =
  let rng = Prng.create 6 in
  let dag = Generators.upp_internal_cycles rng ~cycles:3 () in
  let multi_inst =
    Wl_core.Instance.make dag (dedup (Path_gen.random_family rng dag 20))
  in
  let groom_inst =
    let dag = Generators.gnp_no_internal_cycle rng 40 0.15 in
    Path_gen.random_instance rng dag 60
  in
  let groom_w = max 1 (Load.pi groom_inst / 2) in
  let text = Serial.to_string groom_inst in
  [
    Test.make ~name:"thm6-multi/color/C=3"
      (Staged.stage (fun () -> ignore (Theorem6_multi.color ~check:false multi_inst)));
    Test.make ~name:"grooming/greedy/60-paths"
      (Staged.stage (fun () -> ignore (Grooming.greedy groom_inst ~w:groom_w)));
    Test.make ~name:"serial/parse/60-paths"
      (Staged.stage (fun () -> ignore (Serial.of_string text)));
    Test.make ~name:"baseline/first-fit/60-paths"
      (Staged.stage (fun () -> ignore (Baselines.first_fit groom_inst)));
  ]

let run_perf () =
  print_newline ();
  print_endline "== P1-P4: performance micro-benchmarks (Bechamel, OLS ns/run) ==";
  let tests =
    List.map make_thm1_bench [ 100; 200; 400; 800 ]
    @ List.map make_thm6_bench [ 10; 20; 40 ]
    @ make_coloring_benches ()
    @ List.concat_map make_detection_benches [ 100; 400 ]
    @ make_misc_benches ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:false ~quota:(Time.second 0.3) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-34s %12.0f ns/run\n" name t
          | _ -> Printf.printf "%-34s %12s\n" name "n/a")
        results)
    tests;
  print_newline ()

(* --- JSON perf engine ------------------------------------------------------

   Times the rewritten flat-core hot paths against the seed implementations
   (bench/legacy.ml) in the same run, on shared instances, and appends a
   domain-parallel sweep trajectory; the result is machine-readable
   (BENCH_core.json) so the perf history of the repo can be tracked from CI.
   Instance construction fans out over domains via Parallel.map_array; the
   timed sections themselves run sequentially so numbers stay clean. *)

module Metrics = Wl_obs.Metrics
module Store = Wl_obs.Store
module Jsonx = Wl_json.Jsonx

(* Counter snapshot of one un-timed run of [f]: reset, enable, run, read.
   Timed sections always run with metrics off so ns/op stays clean; the
   snapshot run is separate and costs one extra execution. *)
let counters_of_run f =
  Metrics.reset ();
  Metrics.set_enabled true;
  ignore (f ());
  Metrics.set_enabled false;
  let snap = Metrics.snapshot () in
  Metrics.reset ();
  List.map (fun (name, inst) -> (name, Store.json_of_instrument inst)) snap

let make_nic_instance (n, k) =
  let rng = Prng.create (20260704 + n) in
  let dag = Generators.gnp_no_internal_cycle rng n (8.0 /. float_of_int n) in
  Path_gen.random_instance rng dag k

let make_dense_ugraph (n, pct) =
  let rng = Prng.create (77 + n) in
  let g = Wl_conflict.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.int rng 100 < pct then Wl_conflict.Ugraph.add_edge g u v
    done
  done;
  g

let run_perf_json ~domains () =
  Printf.printf "== perf --json: flat-core vs seed baselines (%d domains) ==\n%!"
    domains;
  let thm1_sizes = [| (400, 320); (1600, 1280) |] in
  let dense_sizes = [| (300, 50); (800, 50) |] in
  (* Domain-parallel setup: every instance/graph is built concurrently. *)
  let thm1_insts = Wl_util.Parallel.map_array ~domains make_nic_instance thm1_sizes in
  let dense_graphs = Wl_util.Parallel.map_array ~domains make_dense_ugraph dense_sizes in
  let conflict_inst =
    let rng = Prng.create 3 in
    let dag = Generators.gnp_dag rng 60 0.12 in
    Path_gen.random_instance rng dag 150
  in
  let points = ref [] in
  let record ?(extras = []) name params f baseline =
    let sample = Wl_bench.Runner.measure (fun () -> ignore (f ())) in
    let baseline_ns =
      Option.map
        (fun b ->
          (Wl_bench.Runner.measure (fun () -> ignore (b ()))).Store.median_ns)
        baseline
    in
    let counters = counters_of_run f in
    Printf.printf "  %-32s %12.0f ns/op (± %.0f MAD)" name
      sample.Store.median_ns sample.Store.mad_ns;
    (match baseline_ns with
    | Some b ->
      Printf.printf "   baseline %12.0f ns/op   speedup %6.2fx" b
        (b /. sample.Store.median_ns)
    | None -> ());
    print_newline ();
    points :=
      { Store.name; params; extras; sample; baseline_ns; counters }
      :: !points
  in
  Array.iteri
    (fun i (n, k) ->
      let inst = thm1_insts.(i) in
      record
        (Printf.sprintf "thm1/color/n=%d" n)
        [ ("n", n); ("paths", k) ]
        (fun () -> Theorem1.color inst)
        (Some (fun () -> Legacy.theorem1_color inst)))
    thm1_sizes;
  Array.iteri
    (fun i (n, pct) ->
      let g = dense_graphs.(i) in
      record
        (Printf.sprintf "coloring/dsatur/dense-n=%d" n)
        [ ("n", n); ("edge_pct", pct); ("edges", Wl_conflict.Ugraph.n_edges g) ]
        (fun () -> Wl_conflict.Coloring.dsatur g)
        (Some (fun () -> Legacy.dsatur g)))
    dense_sizes;
  record "conflict/build/150-paths"
    [ ("n", 60); ("paths", 150) ]
    (fun () -> Conflict_of.build conflict_inst)
    (Some (fun () -> Legacy.conflict_build conflict_inst));
  record "load/pi/n=1600"
    [ ("n", 1600); ("paths", 1280) ]
    (fun () -> Load.pi thm1_insts.(1))
    None;
  (* Engine: one warm incremental mutation (add a path, query, remove it)
     on a live session over the n=1600 instance, against re-solving the
     grown instance from scratch — the dynamic-instance acceptance bench.
     The add/remove pair keeps the session state periodic so every timed
     iteration does the same work. *)
  let module Engine = Wl_engine.Engine in
  let inst1600 = thm1_insts.(1) in
  let bench_verts =
    Wl_digraph.Dipath.vertices (List.hd (Wl_core.Instance.paths_list inst1600))
  in
  let session1600 = Engine.create inst1600 in
  ignore (Engine.report session1600);
  let engine_step () =
    match Engine.add_path session1600 bench_verts with
    | Error e -> failwith (Error.to_string e)
    | Ok pid ->
      let r = Engine.report session1600 in
      (match Engine.remove_path session1600 pid with
      | Ok () -> ()
      | Error e -> failwith (Error.to_string e));
      r
  in
  let grown1600 =
    Wl_core.Instance.of_vertex_seqs
      (Wl_core.Instance.graph inst1600)
      (List.map Wl_digraph.Dipath.vertices (Wl_core.Instance.paths_list inst1600)
      @ [ bench_verts ])
    |> Error.get_exn
  in
  (* Steady-state warm hit rate, measured over a prewarm burst (the
     add/remove cycle is periodic, so these steps are representative). *)
  let pre = Engine.stats session1600 in
  for _ = 1 to 8 do
    ignore (engine_step ())
  done;
  let post = Engine.stats session1600 in
  let steady_rate =
    Engine.hit_rate
      {
        post with
        Engine.ops = post.Engine.ops - pre.Engine.ops;
        warm_hits = post.Engine.warm_hits - pre.Engine.warm_hits;
        fresh_colors = post.Engine.fresh_colors - pre.Engine.fresh_colors;
        repairs = post.Engine.repairs - pre.Engine.repairs;
        warm_removes = post.Engine.warm_removes - pre.Engine.warm_removes;
      }
  in
  record "engine/add_path/n=1600"
    [ ("n", 1600); ("paths", 1280) ]
    ~extras:[ ("warm_hit_rate", steady_rate) ]
    engine_step
    (Some (fun () -> Solver.solve grown1600));
  let engine_stats = Engine.stats session1600 in
  Printf.printf
    "  engine session: %d ops, warm hit rate %.3f, %d repairs, %d fallbacks, %d full solves\n"
    engine_stats.Engine.ops
    (Engine.hit_rate engine_stats)
    engine_stats.Engine.repairs engine_stats.Engine.fallbacks
    engine_stats.Engine.full_solves;
  (* Parallel sweep trajectory: instances/s of the thm1 validation sweep at
     increasing domain counts, through the dynamic-chunking engine. *)
  (* Per-point parallel.../sweep... counters ride along so the trajectory
     explains itself: seq_fallbacks/domains_clamped show when the engine
     refused to spawn, domain_busy_ns shows who actually worked.  Metrics
     stay on during the timed run — one atomic load per update, noise
     well under the seed-to-seed variance. *)
  let sweep_seeds = 400 in
  let trajectory =
    List.map
      (fun d ->
        Metrics.reset ();
        Metrics.set_enabled true;
        let t0 = Unix.gettimeofday () in
        let failures = Wl_validate.Sweeps.run ~domains:d ~seeds:sweep_seeds
            (List.assoc "thm1" Wl_validate.Sweeps.all)
        in
        let dt = Unix.gettimeofday () -. t0 in
        Metrics.set_enabled false;
        let prefixed p name =
          String.length name >= String.length p
          && String.sub name 0 (String.length p) = p
        in
        let counters =
          List.filter
            (fun (name, _) -> prefixed "parallel." name || prefixed "sweep." name)
            (Metrics.snapshot ())
        in
        Metrics.reset ();
        Printf.printf "  sweep/thm1 domains=%d %6d seeds %8.2fs %8.0f/s %s\n%!" d
          sweep_seeds dt
          (float_of_int sweep_seeds /. dt)
          (if failures = [] then "ok" else "FAILURES");
        (d, dt, failures = [], counters))
      (List.sort_uniq compare [ 1; 2; domains ])
  in
  let sweep_json =
    Jsonx.Arr
      (List.map
         (fun (d, dt, ok, counters) ->
           Jsonx.Obj
             [
               ("sweep", Jsonx.Str "thm1");
               ("domains", Jsonx.Int d);
               ("seeds", Jsonx.Int sweep_seeds);
               ("seconds", Jsonx.Float dt);
               ("ok", Jsonx.Bool ok);
               ( "counters",
                 Jsonx.Obj
                   (List.map
                      (fun (n, i) -> (n, Store.json_of_instrument i))
                      counters) );
             ])
         trajectory)
  in
  let entry =
    Store.make
      ~note:"bench/main.exe -- perf --json"
      ~extra:[ ("sweep_trajectory", sweep_json) ]
      ~domains (List.rev !points)
  in
  Store.write_file "BENCH_core.json" entry;
  Printf.printf
    "wrote BENCH_core.json (schema %s, rev %s, %d benches, %d trajectory \
     points)\n"
    Store.schema entry.Store.rev
    (List.length entry.Store.points)
    (List.length trajectory)

let run_tables () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode =
    match List.find_opt (fun a -> not (String.length a > 0 && a.[0] = '-')) args with
    | Some m -> m
    | None -> "all"
  in
  let json = List.mem "--json" args in
  let domains =
    let rec find = function
      | "--domains" :: v :: _ -> (
        match int_of_string_opt v with
        | Some d -> d
        | None ->
          prerr_endline ("bench: --domains expects an integer, got " ^ v);
          exit 2)
      | _ :: rest -> find rest
      | [] -> Wl_util.Parallel.default_domains ()
    in
    find args
  in
  (match mode with
  | "tables" -> run_tables ()
  | "perf" -> if json then run_perf_json ~domains () else run_perf ()
  | _ ->
    run_tables ();
    run_perf ());
  print_endline "bench: done"
