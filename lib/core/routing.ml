open Wl_digraph
module Dag = Wl_dag.Dag
module Upp = Wl_dag.Upp
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock
module Saturating = Wl_util.Saturating

type request = Digraph.vertex * Digraph.vertex

(* routing.* instruments: all gated on Metrics.set_enabled, so the stage
   costs one atomic load per update when observability is off. *)
let c_requests = Metrics.counter "routing.requests"
let c_unroutable = Metrics.counter "routing.unroutable"
let c_swaps = Metrics.counter "routing.swaps"
let c_rounds = Metrics.counter "routing.rounds"
let h_alternatives = Metrics.histogram "routing.alternatives"
let l_select = Metrics.latency "routing.select.ns"

let unroutable ?index (x, y) =
  let where =
    match index with
    | None -> ""
    | Some i -> Printf.sprintf " (position %d)" i
  in
  Error.Invalid_path
    (Printf.sprintf "request (%d, %d)%s is not routable" x y where)

let check_request n _i (x, y) =
  if x < 0 || x >= n then
    Error (Error.Bad_index { what = "request source vertex"; index = x })
  else if y < 0 || y >= n then
    Error (Error.Bad_index { what = "request destination vertex"; index = y })
  else Ok ()

let collect_routes route requests =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | ((x, y) as r) :: rest -> (
      match route i r with
      | Some p -> go (i + 1) (p :: acc) rest
      | None ->
        Metrics.incr c_unroutable;
        Error (unroutable ~index:i (x, y)))
  in
  go 0 [] requests

(* --- hop-count-shortest, deterministic -------------------------------------

   Distance-to-destination by reverse BFS over the allowed subgraph, then a
   greedy forward walk always taking the smallest-numbered next vertex that
   stays on a shortest path: among all minimum-hop dipaths this constructs
   the lexicographically smallest vertex sequence, independent of
   adjacency-list insertion order.  The restricted variants ([banned_v],
   [banned_a]) are the spur routine of Yen's algorithm below. *)

let rev_dist g ~banned_v ~banned_a dst =
  let n = Digraph.n_vertices g in
  let dist = Array.make n (-1) in
  dist.(dst) <- 0;
  let queue = Queue.create () in
  Queue.add dst queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun a ->
        if not banned_a.(a) then begin
          let u = Digraph.arc_src g a in
          if (not banned_v.(u)) && dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            Queue.add u queue
          end
        end)
      (Digraph.in_arcs g v)
  done;
  dist

let lex_walk g ~banned_v ~banned_a dist src dst =
  let rec go v acc =
    if v = dst then List.rev (v :: acc)
    else begin
      let best = ref (-1) in
      List.iter
        (fun a ->
          if not banned_a.(a) then begin
            let w = Digraph.arc_dst g a in
            if
              (not banned_v.(w))
              && dist.(w) >= 0
              && dist.(w) = dist.(v) - 1
              && (!best < 0 || w < !best)
            then best := w
          end)
        (Digraph.out_arcs g v);
      go !best (v :: acc)
    end
  in
  go src []

let restricted_shortest g ~banned_v ~banned_a src dst =
  if src = dst then None
  else begin
    let dist = rev_dist g ~banned_v ~banned_a dst in
    if dist.(src) < 0 then None
    else Some (Array.of_list (lex_walk g ~banned_v ~banned_a dist src dst))
  end

let shortest_dipath d src dst =
  let g = Dag.graph d in
  let banned_v = Array.make (Digraph.n_vertices g) false in
  let banned_a = Array.make (max 1 (Digraph.n_arcs g)) false in
  match restricted_shortest g ~banned_v ~banned_a src dst with
  | None -> None
  | Some verts -> Some (Dipath.make g (Array.to_list verts))

let route_unique d requests =
  collect_routes (fun _ (x, y) -> Upp.unique_dipath d x y) requests

let route_shortest d requests =
  collect_routes (fun _ (x, y) -> shortest_dipath d x y) requests

(* --- lexicographic (bottleneck load, hop count) Dijkstra --------------------

   Both components are monotone under arc relaxation, so the label-setting
   argument applies.  The linear-scan extraction always settles the
   lowest-numbered vertex among equal labels, making the result a
   deterministic function of the graph and the load vector. *)

let bottleneck_path d load src dst =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  let inf = (max_int, max_int) in
  let dist = Array.make n inf in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- (0, 0);
  let rec loop () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not settled.(v)) && dist.(v) < inf
         && (!best = -1 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best >= 0 then begin
      let v = !best in
      settled.(v) <- true;
      if v <> dst then begin
        List.iter
          (fun a ->
            let w = Digraph.arc_dst g a in
            let bott, hops = dist.(v) in
            let cand = (max bott load.(a), hops + 1) in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- v
            end)
          (Digraph.out_arcs g v);
        loop ()
      end
    end
  in
  loop ();
  if src = dst || dist.(dst) = inf then None
  else begin
    let rec build v acc = if v = src then v :: acc else build parent.(v) (v :: acc) in
    Some (Dipath.make g (build dst []))
  end

let min_load_router d =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
  fun (x, y) ->
    match check_request n 0 (x, y) with
    | Error e -> Error e
    | Ok () -> (
      match bottleneck_path d load x y with
      | None ->
        Metrics.incr c_unroutable;
        Error (unroutable (x, y))
      | Some p ->
        List.iter (fun a -> load.(a) <- load.(a) + 1) (Dipath.arcs p);
        Ok p)

let route_min_load d requests =
  let router = min_load_router d in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest -> (
      match router r with
      | Ok p -> go (i + 1) (p :: acc) rest
      | Error (Error.Invalid_path _) -> Error (unroutable ~index:i r)
      | Error e -> Error e)
  in
  go 0 [] requests

(* --- k-shortest dipaths (Yen) ----------------------------------------------

   Yen's algorithm over the (hop count, lexicographic vertex sequence)
   total order: the accepted list comes out sorted by that order,
   duplicate-free, and — because every dipath in a DAG is loopless —
   complete whenever [k] reaches the number of src-dst dipaths.  Candidate
   bookkeeping is plain lists of int arrays; [k] is small by design. *)

let compare_vseq (a : int array) (b : int array) =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c else compare a b

let compare_route p q =
  let c = compare (Dipath.n_arcs p) (Dipath.n_arcs q) in
  if c <> 0 then c else compare (Dipath.vertices p) (Dipath.vertices q)

let prefix_eq (a : int array) (b : int array) len =
  let rec go i = i >= len || (a.(i) = b.(i) && go (i + 1)) in
  Array.length a >= len && Array.length b >= len && go 0

let k_shortest ?(k = 8) d src dst =
  let g = Dag.graph d in
  if k <= 0 || src = dst then []
  else begin
    let n = Digraph.n_vertices g in
    let m = Digraph.n_arcs g in
    let banned_v = Array.make n false in
    let banned_a = Array.make (max 1 m) false in
    let reset () =
      Array.fill banned_v 0 n false;
      Array.fill banned_a 0 (max 1 m) false
    in
    match restricted_shortest g ~banned_v ~banned_a src dst with
    | None -> []
    | Some p0 ->
      let accepted = ref [ p0 ] in
      let n_accepted = ref 1 in
      let candidates = ref [] in
      let seen c l = List.exists (fun x -> compare_vseq x c = 0) l in
      let spur_from last =
        let len = Array.length last in
        for j = 0 to len - 2 do
          reset ();
          for t = 0 to j - 1 do
            banned_v.(last.(t)) <- true
          done;
          List.iter
            (fun p ->
              if Array.length p > j + 1 && prefix_eq p last (j + 1) then
                match Digraph.find_arc g p.(j) p.(j + 1) with
                | Some a -> banned_a.(a) <- true
                | None -> ())
            !accepted;
          match restricted_shortest g ~banned_v ~banned_a last.(j) dst with
          | None -> ()
          | Some tail ->
            let c = Array.append (Array.sub last 0 j) tail in
            if not (seen c !candidates || seen c !accepted) then
              candidates := c :: !candidates
        done
      in
      let pop_min () =
        match !candidates with
        | [] -> None
        | first :: rest ->
          let best =
            List.fold_left
              (fun acc c -> if compare_vseq c acc < 0 then c else acc)
              first rest
          in
          candidates :=
            List.filter (fun c -> compare_vseq c best <> 0) !candidates;
          Some best
      in
      let rec grow last =
        if !n_accepted < k then begin
          spur_from last;
          match pop_min () with
          | None -> ()
          | Some best ->
            accepted := best :: !accepted;
            incr n_accepted;
            grow best
        end
      in
      grow p0;
      List.rev_map (fun verts -> Dipath.make g (Array.to_list verts)) !accepted
  end

(* --- routing-aware lower bound ---------------------------------------------

   The computable side of the global packing number (Lo-Zhang-Wong-Fu):
   every routing of the requests has maximum arc load at least

     max( ceil(sum of shortest-path hops / m),          volume bound
          max over arcs of #requests forced through )   forced-arc bound

   An arc (u, v) is forced for request (x, y) when every x-y dipath uses
   it, i.e. #paths(x, u) * #paths(v, y) = #paths(x, y): in a DAG a path
   into u and a path out of v cannot intersect, so the product counts
   exactly the dipaths through the arc.  Counts saturate; a saturated
   total conservatively reads as "nothing forced", which only weakens the
   bound, never invalidates it. *)

let lower_bound d requests =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  let m = Digraph.n_arcs g in
  if requests = [] || m = 0 then 0
  else
    Trace.with_span "routing.bound" @@ fun () ->
    let in_range (x, y) = x >= 0 && x < n && y >= 0 && y < n && x <> y in
    let dist_cache = Hashtbl.create 8 in
    let dist_from x =
      match Hashtbl.find_opt dist_cache x with
      | Some dist -> dist
      | None ->
        let dist = Traversal.bfs_dist g x in
        Hashtbl.add dist_cache x dist;
        dist
    in
    let total_hops =
      List.fold_left
        (fun acc ((x, y) as r) ->
          if in_range r then
            let dxy = (dist_from x).(y) in
            if dxy > 0 then acc + dxy else acc
          else acc)
        0 requests
    in
    let volume = (total_hops + m - 1) / m in
    let forced = Array.make m 0 in
    let fwd_cache = Hashtbl.create 8 in
    let fwd x =
      match Hashtbl.find_opt fwd_cache x with
      | Some f -> f
      | None ->
        let f = Dag.count_dipaths_from d x in
        Hashtbl.add fwd_cache x f;
        f
    in
    let order = Dag.topological_order d in
    let rev_cache = Hashtbl.create 8 in
    let rev y =
      match Hashtbl.find_opt rev_cache y with
      | Some gc -> gc
      | None ->
        let gc = Array.make n Saturating.zero in
        gc.(y) <- Saturating.one;
        for i = n - 1 downto 0 do
          let v = order.(i) in
          if v <> y then
            List.iter
              (fun a ->
                let w = Digraph.arc_dst g a in
                gc.(v) <- Saturating.add gc.(v) gc.(w))
              (Digraph.out_arcs g v)
        done;
        Hashtbl.add rev_cache y gc;
        gc
    in
    List.iter
      (fun ((x, y) as r) ->
        if in_range r then begin
          let f = fwd x in
          let total = f.(y) in
          if Saturating.to_int total > 0 && not (Saturating.is_saturated total)
          then begin
            let gc = rev y in
            Digraph.iter_arcs
              (fun a u v ->
                if Saturating.equal (Saturating.mul f.(u) gc.(v)) total then
                  forced.(a) <- forced.(a) + 1)
              g
          end
        end)
      requests;
    let forced_max = Array.fold_left max 0 forced in
    max volume forced_max

(* --- the full routing stage: enumerate, seed, search ------------------------ *)

type selection = {
  requests : request array;
  routes : Dipath.t array;
  k : int;
  n_alternatives : int;
  seed_load : int;
  max_load : int;
  lower_bound : int;
  swaps : int;
  rounds : int;
}

let select ?(k = 8) ?(max_rounds = 64) d requests =
  let t0 = Clock.now_ns () in
  Trace.with_span "routing.select" @@ fun () ->
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  let m = Digraph.n_arcs g in
  let reqs = Array.of_list requests in
  let nr = Array.length reqs in
  Metrics.add c_requests nr;
  let rec validate i =
    if i >= nr then Ok ()
    else
      match check_request n i reqs.(i) with
      | Error e -> Error e
      | Ok () -> validate (i + 1)
  in
  match validate 0 with
  | Error e -> Error e
  | Ok () -> (
    (* Phase 1: k alternatives per request (Yen, deterministic). *)
    let alts = Array.make nr [||] in
    let failure = ref None in
    Trace.with_span "routing.kshortest" (fun () ->
        Array.iteri
          (fun i (x, y) ->
            if !failure = None then begin
              match k_shortest ~k d x y with
              | [] ->
                Metrics.incr c_unroutable;
                failure := Some (unroutable ~index:i (x, y))
              | l ->
                Metrics.observe h_alternatives (List.length l);
                alts.(i) <- Array.of_list l
            end)
          reqs);
    match !failure with
    | Some e -> Error e
    | None ->
      (* Phase 2: greedy seed by the bottleneck Dijkstra.  The seed route
         joins the request's alternative set when Yen's cutoff missed it,
         so the search space always contains the seed. *)
      let load = Array.make (max 1 m) 0 in
      let chosen = Array.make nr 0 in
      Trace.with_span "routing.seed" (fun () ->
          Array.iteri
            (fun i (x, y) ->
              let p =
                match bottleneck_path d load x y with
                | Some p -> p
                | None -> alts.(i).(0)
              in
              let idx =
                let found = ref (-1) in
                Array.iteri
                  (fun j q -> if !found < 0 && Dipath.equal p q then found := j)
                  alts.(i);
                if !found >= 0 then !found
                else begin
                  alts.(i) <- Array.append alts.(i) [| p |];
                  Array.length alts.(i) - 1
                end
              in
              chosen.(i) <- idx;
              List.iter
                (fun a -> load.(a) <- load.(a) + 1)
                (Dipath.arcs alts.(i).(idx)))
            reqs);
      (* Load-level histogram: cnt.(l) = #arcs at load l.  The search
         objective (max load, #arcs attaining it) reads off it in O(1)
         and swap trials update it in O(path length). *)
      let cnt = Array.make (nr + 1) 0 in
      Array.iter (fun l -> cnt.(l) <- cnt.(l) + 1) (Array.sub load 0 m);
      let cur_max = ref 0 in
      Array.iter (fun l -> if l > !cur_max then cur_max := l) load;
      let seed_load = !cur_max in
      let apply p delta =
        List.iter
          (fun a ->
            cnt.(load.(a)) <- cnt.(load.(a)) - 1;
            load.(a) <- load.(a) + delta;
            cnt.(load.(a)) <- cnt.(load.(a)) + 1;
            if load.(a) > !cur_max then cur_max := load.(a))
          (Dipath.arcs p);
        while !cur_max > 0 && cnt.(!cur_max) = 0 do
          decr cur_max
        done
      in
      (* Phase 3: local search.  A swap is kept only when it strictly
         lowers (max load, #arcs at max) — strict descent terminates and
         guarantees max_load <= seed_load. *)
      let swaps = ref 0 in
      let rounds = ref 0 in
      Trace.with_span "routing.search" (fun () ->
          let improved = ref true in
          while !improved && !rounds < max_rounds do
            improved := false;
            incr rounds;
            for i = 0 to nr - 1 do
              let n_alt = Array.length alts.(i) in
              for j = 0 to n_alt - 1 do
                if j <> chosen.(i) then begin
                  let old_obj = (!cur_max, cnt.(!cur_max)) in
                  let pc = alts.(i).(chosen.(i)) and pj = alts.(i).(j) in
                  apply pc (-1);
                  apply pj 1;
                  if (!cur_max, cnt.(!cur_max)) < old_obj then begin
                    chosen.(i) <- j;
                    incr swaps;
                    improved := true;
                    Metrics.incr c_swaps
                  end
                  else begin
                    apply pj (-1);
                    apply pc 1
                  end
                end
              done
            done
          done);
      Metrics.add c_rounds !rounds;
      let routes = Array.mapi (fun i _ -> alts.(i).(chosen.(i))) reqs in
      let n_alternatives =
        Array.fold_left (fun acc a -> acc + Array.length a) 0 alts
      in
      let lb = lower_bound d requests in
      Metrics.observe_ns l_select (Clock.now_ns () - t0);
      Ok
        {
          requests = reqs;
          routes;
          k;
          n_alternatives;
          seed_load;
          max_load = !cur_max;
          lower_bound = lb;
          swaps = !swaps;
          rounds = !rounds;
        })

let instance_of_selection d sel = Instance.of_array d sel.routes

(* --- request files ---------------------------------------------------------- *)

let requests_to_string requests =
  let b = Buffer.create 64 in
  Buffer.add_string b "wlreq 1\n";
  List.iter
    (fun (x, y) -> Buffer.add_string b (Printf.sprintf "req %d %d\n" x y))
    requests;
  Buffer.contents b

let requests_of_string s =
  let err line msg = Error (Error.Parse { line; msg }) in
  let lines = String.split_on_char '\n' s in
  let rec go lineno first acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) first acc rest
      | [ "wlreq"; v ] -> (
        if not first then err lineno "wlreq header must come first"
        else
          match int_of_string_opt v with
          | Some 1 -> go (lineno + 1) false acc rest
          | Some v when v > 1 -> Error (Error.Unsupported_version v)
          | _ -> err lineno "malformed wlreq header")
      | [ "req"; x; y ] -> (
        match (int_of_string_opt x, int_of_string_opt y) with
        | Some x, Some y -> go (lineno + 1) false ((x, y) :: acc) rest
        | _ -> err lineno "expected 'req X Y' with integer vertices")
      | tok :: _ -> err lineno (Printf.sprintf "unknown directive %S" tok))
  in
  go 1 true [] lines

let read_requests_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> requests_of_string s
  | exception Sys_error msg -> Error (Error.Io msg)

(* --- request families ------------------------------------------------------- *)

let all_to_all d = Upp.routable_pairs d

let route_multicast_tree d root =
  let g = Dag.graph d in
  let n = Digraph.n_vertices g in
  (* BFS parents rooted at the source. *)
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(root) <- true;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Digraph.succ g v)
  done;
  let rec tree_path v acc =
    if v = root then root :: acc else tree_path parent.(v) (v :: acc)
  in
  List.filter_map
    (fun v ->
      if v <> root && seen.(v) then Some (Dipath.make g (tree_path v []))
      else None)
    (List.init n Fun.id)

let multicast d root =
  let reachable = Traversal.reachable_from (Dag.graph d) root in
  let out = ref [] in
  Array.iteri (fun v r -> if r && v <> root then out := (root, v) :: !out) reachable;
  List.rev !out

let random_requests rng d k =
  match all_to_all d with
  | [] -> []
  | pairs ->
    let arr = Array.of_list pairs in
    List.init k (fun _ -> Wl_util.Prng.choose rng arr)

let instance_of d route requests =
  Result.map (Instance.make d) (route d requests)
