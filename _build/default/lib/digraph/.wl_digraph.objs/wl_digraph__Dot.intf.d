lib/digraph/dot.mli: Digraph Dipath
