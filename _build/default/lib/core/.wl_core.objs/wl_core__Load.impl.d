lib/core/load.ml: Array Digraph Instance List Wl_digraph
