(* The paper's gallery of gap examples, end to end, with DOT output.

   Reproduces all four worked constructions (Figures 1, 3, 5, 9), prints
   their computed load / wavelength numbers next to the paper's, and writes
   Graphviz files (with wavelength-colored dipaths) under _gallery/ for
   visual inspection: `dot -Tpdf _gallery/fig3.dot > fig3.pdf`.

   Run with: dune exec examples/gap_gallery.exe *)

open Wl_core
module Figures = Wl_netgen.Figures
module Dot = Wl_digraph.Dot

let out_dir = "_gallery"

let render name inst assignment =
  let g = Instance.graph inst in
  let colored =
    List.mapi (fun i p -> (p, assignment.(i))) (Instance.paths_list inst)
  in
  let dot = Dot.of_colored_paths ~name g colored in
  Dot.write_file (Filename.concat out_dir (name ^ ".dot")) dot;
  (* Standalone SVG too, so no Graphviz install is needed. *)
  Wl_digraph.Svg.write_file
    (Filename.concat out_dir (name ^ ".svg"))
    (Wl_digraph.Svg.of_colored_paths g colored)

let row name inst ~paper_pi ~paper_w =
  let pi = Load.pi inst in
  let report = Solver.solve inst in
  let w = report.Solver.n_wavelengths in
  Format.printf "%-12s pi = %d (paper %d)   w = %d (paper %d)   %s@." name pi
    paper_pi w paper_w
    (if pi = paper_pi && w = paper_w then "reproduced" else "MISMATCH");
  render name inst report.Solver.assignment

let () =
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Format.printf "Figure 1 (pathological staircase), growing k:@.";
  List.iter
    (fun k -> row (Printf.sprintf "fig1-k%d" k) (Figures.fig1 k) ~paper_pi:2 ~paper_w:k)
    [ 2; 3; 4; 5 ];
  Format.printf "@.Figure 3 (DAG with one internal cycle):@.";
  row "fig3" (Figures.fig3 ()) ~paper_pi:2 ~paper_w:3;
  Format.printf "@.Figure 5 (Theorem 2 family), growing k:@.";
  List.iter
    (fun k -> row (Printf.sprintf "fig5-k%d" k) (Figures.fig5 k) ~paper_pi:2 ~paper_w:3)
    [ 2; 3; 4 ];
  Format.printf "@.Figure 9 (Havet's tight UPP example), growing h:@.";
  List.iter
    (fun h ->
      row
        (Printf.sprintf "fig9-h%d" h)
        (Figures.havet h) ~paper_pi:(2 * h)
        ~paper_w:(Replication.ceil_div (8 * h) 3))
    [ 1; 2; 3 ];
  Format.printf
    "@.DOT and SVG files with wavelength-colored dipaths written to %s/@."
    out_dir
