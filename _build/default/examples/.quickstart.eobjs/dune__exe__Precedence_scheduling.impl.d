examples/precedence_scheduling.ml: Array Format Instance List Solver Sys Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
