module Engine = Wl_engine.Engine

type result = {
  subject : Subject.t;
  reason : string;
  rounds : int;
  attempts : int;
}

let run_check check s =
  match check s with
  | r -> r
  | exception e -> Some (Printexc.to_string e)

let remove_window i len xs = List.filteri (fun j _ -> j < i || j >= i + len) xs

let minimize ?(max_attempts = 4000) ~check subject =
  let reason0 =
    match run_check check subject with
    | Some r -> r
    | None -> invalid_arg "Shrink.minimize: subject does not fail the check"
  in
  let attempts = ref 0 in
  let best_parts = ref (Subject.to_parts subject) in
  let best_subject = ref subject in
  let best_reason = ref reason0 in
  let improved = ref false in
  (* Keep a candidate exactly when it is well-formed and still fails. *)
  let try_parts parts =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      match Subject.of_parts parts with
      | None -> false
      | Some s -> (
        match run_check check s with
        | None -> false
        | Some reason ->
          best_parts := parts;
          best_subject := s;
          best_reason := reason;
          improved := true;
          true)
    end
  in
  (* Chunked deletion at halving granularity over one list component. *)
  let ddmin get set =
    let rec granularity chunk =
      if chunk > 0 then begin
        let rec at i =
          let items = get !best_parts in
          if i < List.length items then
            if try_parts (set !best_parts (remove_window i chunk items)) then
              at i (* window gone; same position in the shorter list *)
            else at (i + chunk)
        in
        at 0;
        granularity (if chunk = 1 then 0 else chunk / 2)
      end
    in
    let n = List.length (get !best_parts) in
    if n > 0 then granularity (max 1 (n / 2))
  in
  (* Trim path ends: a shorter dipath witnessing the same failure. *)
  let trim_paths () =
    let try_variant i f =
      let p = !best_parts in
      match f (List.nth p.Subject.paths i) with
      | None -> false
      | Some path' ->
        let paths =
          List.mapi (fun j q -> if j = i then path' else q) p.Subject.paths
        in
        try_parts { p with Subject.paths }
    in
    let drop_last p =
      let n = List.length p in
      if n > 2 then Some (List.filteri (fun j _ -> j < n - 1) p) else None
    in
    let drop_first = function
      | _ :: (_ :: _ :: _ as rest) -> Some rest
      | _ -> None
    in
    let rec per_path i =
      if i < List.length (!best_parts).Subject.paths then begin
        while try_variant i drop_last do
          ()
        done;
        while try_variant i drop_first do
          ()
        done;
        per_path (i + 1)
      end
    in
    per_path 0
  in
  (* Renumber away vertices referenced by nothing. *)
  let compact_vertices () =
    let p = !best_parts in
    let n = p.Subject.n_vertices in
    let used = Array.make (max 1 n) false in
    let mark v = if v >= 0 && v < n then used.(v) <- true in
    List.iter
      (fun (u, v) ->
        mark u;
        mark v)
      p.Subject.arcs;
    List.iter (List.iter mark) p.Subject.paths;
    List.iter
      (function
        | Engine.Add_path vs -> List.iter mark vs
        | Engine.Add_arc (u, v) ->
          mark u;
          mark v
        | Engine.Remove_path _ -> ())
      p.Subject.ops;
    let remap = Array.make (max 1 n) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun v u ->
        if u then begin
          remap.(v) <- !next;
          incr next
        end)
      used;
    if !next < n then begin
      (* Out-of-range references stay out of range in the smaller graph. *)
      let mv v = if v >= 0 && v < n && remap.(v) >= 0 then remap.(v) else v in
      ignore
        (try_parts
           {
             Subject.n_vertices = !next;
             arcs = List.map (fun (u, v) -> (mv u, mv v)) p.Subject.arcs;
             paths = List.map (List.map mv) p.Subject.paths;
             ops =
               List.map
                 (function
                   | Engine.Add_path vs -> Engine.Add_path (List.map mv vs)
                   | Engine.Add_arc (u, v) -> Engine.Add_arc (mv u, mv v)
                   | Engine.Remove_path _ as op -> op)
                 p.Subject.ops;
           })
    end
  in
  let rounds = ref 0 in
  let keep_going = ref true in
  while !keep_going && !attempts < max_attempts do
    incr rounds;
    improved := false;
    ddmin
      (fun p -> p.Subject.ops)
      (fun p ops -> { p with Subject.ops });
    ddmin
      (fun p -> p.Subject.paths)
      (fun p paths -> { p with Subject.paths });
    ddmin
      (fun p -> p.Subject.arcs)
      (fun p arcs -> { p with Subject.arcs });
    trim_paths ();
    compact_vertices ();
    keep_going := !improved
  done;
  {
    subject = !best_subject;
    reason = !best_reason;
    rounds = !rounds;
    attempts = !attempts;
  }
