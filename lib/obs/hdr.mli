(** Fixed-memory HDR latency histograms with exact quantile queries.

    A log-linear bucket scheme in the style of HdrHistogram: values below
    [2^sub_bits] get their own bucket (exact), and every higher power-of-two
    tier is split into [2^(sub_bits-1)] linear sub-buckets, so the bucket
    ceiling is always within [2^(1-sub_bits)] relative error of the recorded
    value.  The whole structure is a flat array of atomic counters sized at
    creation (~1.9k cells at the default [sub_bits = 6]) — recording is
    lock-free, domain-safe, and allocates nothing, which is what lets the
    engine keep per-session latency accounting inside its zero-minor-alloc
    warm paths.

    Quantiles are *exact over buckets*: [quantile h q] returns the ceiling
    of the bucket holding the rank-[ceil(q*count)] observation, i.e. the
    smallest reported value [v] such that at least a [q] fraction of
    observations were [<= v].  The oracle test pins this to a sorted-array
    reference through {!round_up}. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 6, clamped to [2..12]) sets the per-tier
    resolution: relative bucket error is at most [2^(1-sub_bits)]
    (~3% at the default). *)

val record : t -> int -> unit
(** Record one observation (negative values clamp to 0).  Lock-free,
    zero-allocation, safe from any domain. *)

val record_traced : t -> int -> trace:int -> unit
(** Like {!record}, additionally latching [(value, trace)] as the
    histogram's {!exemplar} when [trace] is nonzero and the value ties
    or beats the worst traced sample so far.  [record t v] is
    [record_traced t v ~trace:0].  Still zero-allocation. *)

val exemplar : t -> (int * int) option
(** [(worst_value, trace_id)] of the worst traced observation since the
    last {!reset}, if any — the OpenMetrics-exemplar link from a p99
    figure to a concrete distributed trace.  Under concurrent writers
    the pair is latched with independent atomics, so it is a monitoring
    pointer, not a linearizable cut. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value, [0] when empty. *)

val max_value : t -> int
(** Largest recorded value, [0] when empty. *)

val quantile : t -> float -> int
(** [quantile h q] for [q] in [(0,1]]: the ceiling of the bucket holding
    the observation of rank [ceil (q *. count)].  [0] when empty. *)

val round_up : t -> int -> int
(** The bucket ceiling a value lands in: [quantile] answers are always
    [round_up] of some recorded observation.  Exposed so tests can build
    an exact sorted-array oracle. *)

val merge_into : dst:t -> t -> unit
(** Add every bucket count of the source into [dst].  Both histograms
    must share [sub_bits] ([Invalid_argument] otherwise).  The worst
    {!exemplar} of the two survives, so shard-merged rollups keep their
    link to the slowest trace daemon-wide. *)

val reset : t -> unit

type snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

val snapshot : t -> snapshot
(** Consistent-enough view for reporting (individual fields are atomic;
    the set is not a linearizable cut under concurrent writers). *)

val pp_ns : Format.formatter -> snapshot -> unit
(** One-line human rendering with ns/µs/ms scaling. *)

(** Latency SLO tracking over a sliding window of observations.

    [create ~target_ns ~budget ()] tracks the fraction of the last
    [window] observations over [target_ns].  When the window is
    sufficiently full and that fraction (the {e burn rate}) exceeds
    [budget], the tracker latches [tripped] — the engine surfaces it
    through [Engine.health].  Recording is allocation-free. *)
module Slo : sig
  type t

  val create : ?window:int -> target_ns:int -> budget:float -> unit -> t
  (** [window] (default 512) is the number of recent observations the
      burn rate is computed over; [budget] is the tolerated fraction of
      over-target observations (e.g. [0.01] for 1%). *)

  val record : t -> int -> unit
  (** Record one latency observation.  Zero-allocation. *)

  val burn_rate : t -> float
  (** Fraction of the current window over target ([0.] until any
      observation arrives). *)

  val tripped : t -> bool
  (** Latched: has the burn rate ever exceeded the budget with at least
      [max 8 (window/8)] observations in the window? *)

  val healthy : t -> bool
  (** [not (tripped t)]. *)

  val rearm : t -> unit
  (** Clear the latch and the window. *)

  type state = {
    target_ns : int;
    budget : float;
    window : int;
    observed : int;  (** observations currently in the window *)
    over : int;  (** of which over target *)
    total : int;  (** lifetime observations *)
    total_over : int;
    burn : float;
    tripped : bool;
  }

  val state : t -> state
  val pp : Format.formatter -> state -> unit
end
