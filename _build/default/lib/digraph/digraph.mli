(** Simple directed graphs (no self-loops, no parallel arcs).

    Vertices are dense integers [0 .. n_vertices - 1]; arcs get dense integer
    ids [0 .. n_arcs - 1] in insertion order.  The structure is append-only:
    algorithms that conceptually delete arcs (the Theorem 1 peeling, the
    generator repair loops) either work over arc orderings or rebuild a graph
    from a filtered arc list ({!of_arcs}/{!arcs}) — this keeps every id
    stable, which the dipath and load machinery depends on.

    Optional string labels support readable DOT output and the text format. *)

type t

type vertex = int
type arc = int

(** {1 Construction} *)

val create : unit -> t

val add_vertex : ?label:string -> t -> vertex
(** Appends a fresh vertex and returns its id. *)

val add_vertices : t -> int -> unit
(** [add_vertices g k] appends [k] unlabeled vertices. *)

val add_arc : t -> vertex -> vertex -> arc
(** [add_arc g u v] appends the arc [u -> v] and returns its id.

    Raises [Invalid_argument] if [u = v], if either endpoint is not a vertex,
    or if the arc already exists. *)

val of_arcs : ?labels:string array -> int -> (vertex * vertex) list -> t
(** [of_arcs n arcs] builds a graph on [n] vertices with the given arcs,
    assigning arc ids in list order. *)

val copy : t -> t

(** {1 Accessors} *)

val n_vertices : t -> int
val n_arcs : t -> int

val arc_src : t -> arc -> vertex
val arc_dst : t -> arc -> vertex
val arc_endpoints : t -> arc -> vertex * vertex

val find_arc : t -> vertex -> vertex -> arc option
(** Arc id of [u -> v], if present. *)

val mem_arc : t -> vertex -> vertex -> bool

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val out_arcs : t -> vertex -> arc list
(** Arcs leaving a vertex, in insertion order. *)

val in_arcs : t -> vertex -> arc list

val succ : t -> vertex -> vertex list
(** Out-neighbors, in insertion order. *)

val pred : t -> vertex -> vertex list

val arcs : t -> (vertex * vertex) list
(** All arcs [(src, dst)] in id order. *)

val vertices : t -> vertex list

(** {1 Labels} *)

val label : t -> vertex -> string
(** The vertex's label; defaults to ["v<i>"] when none was assigned. *)

val set_label : t -> vertex -> string -> unit

val vertex_of_label : t -> string -> vertex option
(** First vertex carrying the given explicit label. *)

(** {1 Iteration} *)

val iter_vertices : (vertex -> unit) -> t -> unit
val iter_arcs : (arc -> vertex -> vertex -> unit) -> t -> unit
val fold_arcs : (arc -> vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Derived graphs} *)

val reverse : t -> t
(** Graph with every arc flipped; arc ids are preserved (arc [i] of the
    result is the reverse of arc [i] of the argument). Labels carry over. *)

val induced_subgraph : t -> vertex list -> t * vertex array
(** [induced_subgraph g vs] keeps only the vertices in [vs] and the arcs
    between them.  Returns the new graph and the mapping from new vertex ids
    to original ids. *)

val equal_structure : t -> t -> bool
(** Same vertex count and same arc set (ignoring labels and arc ids). *)

val pp : Format.formatter -> t -> unit
