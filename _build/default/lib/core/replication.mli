(** Optimal colorings of replicated families via covering designs.

    Replacing every dipath of a family by [h] identical copies turns the
    conflict graph [B] into the lexicographic product [B\[K_h\]] (Theorems 2
    and 7 use this to scale the load).  When [B] has a cyclic family of
    independent sets covering every vertex many times (e.g. the eight
    [{i, i+2, i+5}] of the Wagner graph, or the [2k+1] maximum independent
    sets of an odd cycle), assigning color [c] to the [c mod m]-th set
    yields an optimal coloring of the product with [ceil(m h / size)]
    colors.  This module implements that schedule; callers validate the
    result against the instance. *)

val covering_coloring :
  n_base:int -> sets:int list array -> h:int -> n_colors:int -> Assignment.t option
(** [covering_coloring ~n_base ~sets ~h ~n_colors] colors the replicated
    family indexed as [base * h + copy].  Color [c] may be worn only by
    base vertices in [sets.(c mod Array.length sets)]; each base vertex
    needs [h] colors of its own — returns [None] if [n_colors] is too small
    for that, [Some assignment] otherwise.  The assignment is proper
    provided every set is independent in the base conflict graph. *)

val ceil_div : int -> int -> int
(** [ceil_div a b = ceil(a / b)] for positive [b]. *)
