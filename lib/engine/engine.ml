open Wl_digraph
open Wl_core
module Dag = Wl_dag.Dag
module Classify = Wl_dag.Classify
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock
module Hdr = Wl_obs.Hdr
module Flight = Wl_obs.Flight
module Ctx = Wl_obs.Ctx
module Parallel = Wl_util.Parallel

(* Global engine counters (no-ops until [Metrics.set_enabled]); the
   per-session [stats] record is always live, so the warm-start hit rate can
   be reported without enabling the metrics subsystem. *)
let c_ops = Metrics.counter "engine.ops"
let c_warm_hits = Metrics.counter "engine.warm_hits"
let c_fresh = Metrics.counter "engine.fresh_colors"
let c_repairs = Metrics.counter "engine.repairs"
let c_shrinks = Metrics.counter "engine.shrink_recolors"
let c_fallbacks = Metrics.counter "engine.fallbacks"
let c_full = Metrics.counter "engine.full_solves"
let h_cascade = Metrics.histogram "engine.cascade_len"
let l_add = Metrics.latency "engine.add_path.ns"
let l_remove = Metrics.latency "engine.remove_path.ns"

type path_id = int

type op =
  | Add_path of Digraph.vertex list
  | Remove_path of path_id
  | Add_arc of Digraph.vertex * Digraph.vertex

type op_outcome =
  | Path_added of path_id
  | Path_removed of path_id
  | Arc_added of Digraph.arc

type stats = {
  ops : int;
  warm_hits : int;
  fresh_colors : int;
  repairs : int;
  repair_flips : int;
  shrink_recolors : int;
  warm_removes : int;
  fallbacks : int;
  full_solves : int;
  rejected : int;
}

let hit_rate st =
  if st.ops = 0 then 1.0
  else
    float_of_int (st.warm_hits + st.fresh_colors + st.repairs + st.warm_removes)
    /. float_of_int st.ops

(* Occupancy entries pack the occupant slot and its back-pointer (which
   position of the slot's own arc sequence this entry is) into one word:
   [(back lsl 31) lor slot].  One row per arc instead of two halves the row
   storage and keeps the inner scan a single load per occupant. *)
let occ_shift = 31
let occ_mask = (1 lsl occ_shift) - 1

(* Warm-path working set.  None of it is rollback-able state: every buffer
   is recomputed or re-stamped before use, so snapshot/clone drop it and
   start the copy with a fresh empty scratch.  Buffers grow geometrically
   and are retained, which is what makes a steady stream of warm
   add/remove ops allocation-free once capacities have settled. *)
type scr = {
  mutable z_used : int array; (* 0/1 per color, filled per use *)
  mutable z_cnt : int array; (* per-color wearer counts (repair alpha pick) *)
  mutable z_visited : int array; (* per-slot generation stamps (Kempe BFS) *)
  mutable z_queue : int array; (* BFS queue; after the BFS, the component *)
  mutable z_members : int array; (* shrink: slots of the emptied class *)
  mutable z_applied : int array; (* shrink undo log, packed (slot, color) *)
  mutable z_vstamp : int array; (* per-vertex stamps (dipath validation) *)
  mutable z_gen : int; (* stamp generation; bumped per use, never reset *)
  mutable z_head : int; (* BFS cursor *)
  mutable z_tail : int;
  mutable z_pool : int array array; (* recycled slot_pos rows (LIFO) *)
  mutable z_pool_len : int;
}

let new_scr () =
  {
    z_used = Array.make 8 0; (* alloc-ok *)
    z_cnt = Array.make 8 0; (* alloc-ok *)
    z_visited = Array.make 8 0; (* alloc-ok *)
    z_queue = Array.make 8 0; (* alloc-ok *)
    z_members = Array.make 8 0; (* alloc-ok *)
    z_applied = Array.make 8 0; (* alloc-ok *)
    z_vstamp = Array.make 8 0; (* alloc-ok *)
    z_gen = 0;
    z_head = 0;
    z_tail = 0;
    z_pool = Array.make 8 [||]; (* alloc-ok *)
    z_pool_len = 0;
  }

let ensure_color_cap z n =
  if Array.length z.z_used < n then begin
    let cap = max n (2 * Array.length z.z_used + 8) in
    z.z_used <- Array.make cap 0; (* alloc-ok *)
    z.z_cnt <- Array.make cap 0 (* alloc-ok *)
  end

(* Growing drops old stamps without a blit: generations are strictly
   positive and bumped before every traversal, so fresh zeros can never
   masquerade as the current generation. *)
let ensure_slot_scratch z n =
  if Array.length z.z_visited < n then begin
    let cap = max n (2 * Array.length z.z_visited + 8) in
    z.z_visited <- Array.make cap 0; (* alloc-ok *)
    z.z_queue <- Array.make cap 0; (* alloc-ok *)
    z.z_members <- Array.make cap 0; (* alloc-ok *)
    z.z_applied <- Array.make cap 0 (* alloc-ok *)
  end

let ensure_vertex_scratch z n =
  if Array.length z.z_vstamp < n then
    z.z_vstamp <- Array.make (max n (2 * Array.length z.z_vstamp + 8)) 0 (* alloc-ok *)

let pool_push z row =
  if z.z_pool_len >= Array.length z.z_pool then begin
    let b = Array.make (2 * Array.length z.z_pool + 8) [||] in (* alloc-ok *)
    Array.blit z.z_pool 0 b 0 z.z_pool_len;
    z.z_pool <- b
  end;
  z.z_pool.(z.z_pool_len) <- row;
  z.z_pool_len <- z.z_pool_len + 1

(* A recycled row of at least [n] entries, or a fresh one.  Only the pool
   top is considered: the steady state this serves is add/remove cycles over
   same-shaped paths, where the row freed by the last removal fits the next
   insertion exactly. *)
let pool_pop z n =
  if z.z_pool_len > 0 && Array.length z.z_pool.(z.z_pool_len - 1) >= n then begin
    z.z_pool_len <- z.z_pool_len - 1;
    let r = z.z_pool.(z.z_pool_len) in
    z.z_pool.(z.z_pool_len) <- [||];
    r
  end
  else Array.make n 0 (* alloc-ok *)

(* All rollback-able state lives in one record so snapshot/rollback are a
   single deep copy.  The occupancy index is the mutable cousin of the
   instance CSR index: per arc, the live slots through it, each entry packed
   with its back-pointer; [slot_pos] is the inverse.  Swap-removal keeps
   every update O(1) per arc of the touched dipath, and [occ_len] doubles as
   the live per-arc load. *)
type core = {
  mutable g : Digraph.t;
  mutable slot_path : Dipath.t array; (* meaningful where [slot_live] *)
  mutable slot_live : bool array; (* false = removed; ids never reused *)
  mutable n_slots : int;
  mutable n_live : int;
  mutable colors : int array; (* per slot; meaningful when [warm] *)
  mutable slot_arcs : int array array; (* borrowed Dipath.unsafe_arc_array rows *)
  mutable slot_pos : int array array; (* slot_pos.(s).(k): index in occ of s's k-th arc *)
  mutable occ : int array array; (* per arc, packed entries, capacity >= occ_len *)
  mutable occ_len : int array; (* live load per arc *)
  mutable n_arcs : int;
  mutable load_hist : int array; (* # arcs with load l, l >= 1 *)
  mutable maxload : int; (* live pi *)
  mutable palette : int; (* # colors in use when [warm] *)
  mutable color_count : int array; (* live wearers per color, length >= palette *)
  mutable classification : Classify.t;
  mutable has_cycle : bool; (* internal cycle present (monotone under add_arc) *)
  mutable warm : bool; (* colors valid, contiguous, palette = maxload = pi *)
  mutable dirty : bool; (* state diverged; next query runs a full solve *)
  mutable cached_report : Solver.report option;
  scr : scr; (* not part of the logical state; clones get a fresh one *)
}

(* Always-on per-session observability.  Everything here records with
   plain int stores / lock-free atomics, so it lives inside the warm
   paths without breaking their zero-minor-alloc contract; reading any
   of it back (health, snapshots, dumps) is cold and may allocate. *)
type session = {
  sid : int;
  repair_budget : int;
  core : core ref;
  flight : Flight.t;  (* ring of the last ops, dumped on failure *)
  lat_add : Hdr.t;  (* add-op latency, whole warm/dirty path *)
  lat_remove : Hdr.t;
  slo : Hdr.Slo.t;  (* burn-rate over add+remove latencies *)
  hit_ring : int array;  (* 1 = op handled warm, recent window *)
  mutable hit_idx : int;
  mutable hit_filled : int;
  mutable hit_sum : int;
  mutable fb_streak : int;  (* consecutive warm-path fallbacks *)
  mutable max_fb_streak : int;
  mutable s_ev : Flight.outcome;  (* outcome of the op in flight *)
  mutable s_ops : int;
  mutable s_warm_hits : int;
  mutable s_fresh : int;
  mutable s_repairs : int;
  mutable s_repair_flips : int;
  mutable s_shrinks : int;
  mutable s_warm_removes : int;
  mutable s_fallbacks : int;
  mutable s_full : int;
  mutable s_rejected : int;
}

type snapshot = { snap_sid : int; snap_core : core }

let next_sid = Atomic.make 0

let clone_core c =
  {
    g = Digraph.copy c.g;
    slot_path = Array.copy c.slot_path;
    slot_live = Array.copy c.slot_live;
    n_slots = c.n_slots;
    n_live = c.n_live;
    colors = Array.copy c.colors;
    slot_arcs = Array.copy c.slot_arcs; (* rows are immutable once built *)
    slot_pos = Array.map Array.copy c.slot_pos;
    occ = Array.map Array.copy c.occ;
    occ_len = Array.copy c.occ_len;
    n_arcs = c.n_arcs;
    load_hist = Array.copy c.load_hist;
    maxload = c.maxload;
    palette = c.palette;
    color_count = Array.copy c.color_count;
    classification = c.classification;
    has_cycle = c.has_cycle;
    warm = c.warm;
    dirty = c.dirty;
    cached_report =
      Option.map (fun r -> { r with Solver.assignment = Array.copy r.Solver.assignment })
        c.cached_report;
    scr = new_scr ();
  }

(* --- growth helpers -------------------------------------------------------- *)

let grow_int_array a len fill =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len (2 * Array.length a + 4)) fill in (* alloc-ok *)
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_row_array a len fill =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len (2 * Array.length a + 4)) fill in (* alloc-ok *)
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let ensure_arc_capacity c m =
  c.occ <- grow_row_array c.occ m [||];
  c.occ_len <- grow_int_array c.occ_len m 0

(* [p] doubles as the fill for fresh [slot_path] cells (there is no dummy
   dipath); those cells are only ever read where [slot_live] holds. *)
let ensure_slot_capacity c n p =
  c.slot_path <- grow_row_array c.slot_path n p;
  c.slot_live <- grow_row_array c.slot_live n false;
  c.colors <- grow_int_array c.colors n (-1);
  c.slot_arcs <- grow_row_array c.slot_arcs n [||];
  c.slot_pos <- grow_row_array c.slot_pos n [||]

let bump_load c a =
  let l = c.occ_len.(a) in
  (* [l] is the pre-insert load; the entry itself is pushed by the caller. *)
  c.load_hist <- grow_int_array c.load_hist (l + 2) 0;
  if l >= 1 then c.load_hist.(l) <- c.load_hist.(l) - 1;
  c.load_hist.(l + 1) <- c.load_hist.(l + 1) + 1;
  if l + 1 > c.maxload then c.maxload <- l + 1

let drop_load c a =
  let l = c.occ_len.(a) in
  (* [l] is the pre-remove load. *)
  c.load_hist.(l) <- c.load_hist.(l) - 1;
  if l > 1 then c.load_hist.(l - 1) <- c.load_hist.(l - 1) + 1;
  while c.maxload > 0 && c.load_hist.(c.maxload) = 0 do
    c.maxload <- c.maxload - 1
  done

(* Insert slot [s] into the occupancy of every arc it traverses. *)
let occ_insert c s =
  let arcs = c.slot_arcs.(s) in
  let n = Array.length arcs in
  let pos = pool_pop c.scr n in
  for k = 0 to n - 1 do
    let a = Array.unsafe_get arcs k in
    let i = c.occ_len.(a) in
    let row = c.occ.(a) in
    let row =
      if i < Array.length row then row
      else begin
        let nr = Array.make (max 4 (2 * Array.length row)) 0 in (* alloc-ok *)
        Array.blit row 0 nr 0 i;
        c.occ.(a) <- nr;
        nr
      end
    in
    bump_load c a;
    row.(i) <- (k lsl occ_shift) lor s;
    pos.(k) <- i;
    c.occ_len.(a) <- i + 1
  done;
  c.slot_pos.(s) <- pos

let occ_remove c s =
  let arcs = c.slot_arcs.(s) and pos = c.slot_pos.(s) in
  for k = 0 to Array.length arcs - 1 do
    let a = Array.unsafe_get arcs k in
    let i = pos.(k) in
    let last = c.occ_len.(a) - 1 in
    let w = c.occ.(a).(last) in
    c.occ.(a).(i) <- w;
    c.slot_pos.(w land occ_mask).(w lsr occ_shift) <- i;
    drop_load c a;
    c.occ_len.(a) <- last
  done;
  c.slot_pos.(s) <- [||];
  pool_push c.scr pos

(* --- construction ---------------------------------------------------------- *)

let default_repair_budget = 256

let make_core g classification =
  let m = Digraph.n_arcs g in
  {
    g;
    slot_path = [||];
    slot_live = Array.make 8 false; (* alloc-ok *)
    n_slots = 0;
    n_live = 0;
    colors = Array.make 8 (-1); (* alloc-ok *)
    slot_arcs = Array.make 8 [||]; (* alloc-ok *)
    slot_pos = Array.make 8 [||]; (* alloc-ok *)
    occ = Array.make (max 1 m) [||]; (* alloc-ok *)
    occ_len = Array.make (max 1 m) 0; (* alloc-ok *)
    n_arcs = m;
    load_hist = Array.make 8 0; (* alloc-ok *)
    maxload = 0;
    palette = 0;
    color_count = Array.make 8 0; (* alloc-ok *)
    classification;
    has_cycle = classification.Classify.n_internal_cycles > 0;
    warm = false;
    dirty = true;
    cached_report = None;
    scr = new_scr ();
  }

let default_slo_target_ns = 1_000_000 (* 1 ms per op: generous for warm ops *)
let default_slo_budget = 0.01

let fresh_session ?(repair_budget = default_repair_budget)
    ?(flight_capacity = 1024) ?(slo_target_ns = default_slo_target_ns)
    ?(slo_budget = default_slo_budget) core =
  let sid = Atomic.fetch_and_add next_sid 1 in
  {
    sid;
    repair_budget;
    core = ref core;
    flight = Flight.create ~capacity:flight_capacity ~tid:sid ();
    lat_add = Hdr.create ();
    lat_remove = Hdr.create ();
    slo = Hdr.Slo.create ~target_ns:slo_target_ns ~budget:slo_budget ();
    hit_ring = Array.make 256 0 (* alloc-ok *);
    hit_idx = 0;
    hit_filled = 0;
    hit_sum = 0;
    fb_streak = 0;
    max_fb_streak = 0;
    s_ev = Flight.Ok;
    s_ops = 0;
    s_warm_hits = 0;
    s_fresh = 0;
    s_repairs = 0;
    s_repair_flips = 0;
    s_shrinks = 0;
    s_warm_removes = 0;
    s_fallbacks = 0;
    s_full = 0;
    s_rejected = 0;
  }

let new_slot c p =
  ensure_slot_capacity c (c.n_slots + 1) p;
  let s = c.n_slots in
  c.n_slots <- s + 1;
  c.slot_path.(s) <- p;
  c.slot_live.(s) <- true;
  c.colors.(s) <- -1;
  c.slot_arcs.(s) <- Dipath.unsafe_arc_array p;
  c.n_live <- c.n_live + 1;
  occ_insert c s;
  s

let create ?repair_budget ?flight_capacity ?slo_target_ns ?slo_budget inst =
  let g = Digraph.copy (Instance.graph inst) in
  let classification = Classify.classify (Instance.dag inst) in
  let core = make_core g classification in
  List.iter (fun p -> ignore (new_slot core p)) (Instance.paths_list inst);
  fresh_session ?repair_budget ?flight_capacity ?slo_target_ns ?slo_budget core

let of_digraph ?repair_budget ?flight_capacity ?slo_target_ns ?slo_budget g =
  match Dag.of_digraph (Digraph.copy g) with
  | Error msg -> Error (Error.Cyclic msg)
  | Ok dag ->
    let core = make_core (Dag.graph dag) (Classify.classify dag) in
    Ok
      (fresh_session ?repair_budget ?flight_capacity ?slo_target_ns ?slo_budget
         core)

let id s = s.sid
let n_live_paths s = !(s.core).n_live
let classification s = !(s.core).classification
let pi s = !(s.core).maxload
let is_warm s = (not !(s.core).dirty) && !(s.core).warm

let live_paths s =
  let c = !(s.core) in
  let acc = ref [] in
  for i = c.n_slots - 1 downto 0 do
    if c.slot_live.(i) then acc := (i, c.slot_path.(i)) :: !acc
  done;
  !acc

let stats s =
  {
    ops = s.s_ops;
    warm_hits = s.s_warm_hits;
    fresh_colors = s.s_fresh;
    repairs = s.s_repairs;
    repair_flips = s.s_repair_flips;
    shrink_recolors = s.s_shrinks;
    warm_removes = s.s_warm_removes;
    fallbacks = s.s_fallbacks;
    full_solves = s.s_full;
    rejected = s.s_rejected;
  }

(* --- materialization and the full-solve path ------------------------------- *)

let materialize_core c =
  let g = Digraph.copy c.g in
  (* The session never lets a directed cycle in, so this cannot fail. *)
  let dag = Dag.of_digraph_exn g in
  let live = ref [] in
  for i = c.n_slots - 1 downto 0 do
    if c.slot_live.(i) then live := c.slot_path.(i) :: !live
  done;
  Instance.of_array dag (Array.of_list !live) (* alloc-ok *)

let instance s = materialize_core !(s.core)

(* Install a solver assignment back into the per-slot colors; the session
   returns to warm mode when the result has Theorem-1 shape (contiguous
   colors, palette = pi) and the graph still has no internal cycle. *)
let install_assignment c (report : Solver.report) =
  let j = ref 0 in
  let max_c = ref (-1) in
  for i = 0 to c.n_slots - 1 do
    if c.slot_live.(i) then begin
      let col = report.Solver.assignment.(!j) in
      c.colors.(i) <- col;
      if col > !max_c then max_c := col;
      incr j
    end
  done;
  let palette = !max_c + 1 in
  c.palette <- palette;
  c.color_count <- grow_int_array c.color_count (max 1 palette) 0;
  Array.fill c.color_count 0 (Array.length c.color_count) 0;
  for i = 0 to c.n_slots - 1 do
    if c.slot_live.(i) then
      c.color_count.(c.colors.(i)) <- c.color_count.(c.colors.(i)) + 1
  done;
  let contiguous = ref true in
  for col = 0 to palette - 1 do
    if c.color_count.(col) = 0 then contiguous := false
  done;
  c.warm <- (not c.has_cycle) && !contiguous && palette = c.maxload

let ensure_clean s =
  let c = !(s.core) in
  if c.dirty then begin
    let solve () =
      let t0 = Clock.now_ns () in
      let inst = materialize_core c in
      let report = Solver.solve inst in
      install_assignment c report;
      c.dirty <- false;
      c.cached_report <- Some report;
      s.s_full <- s.s_full + 1;
      Metrics.incr c_full;
      Flight.record s.flight Flight.Full_solve Flight.Ok ~t_ns:t0
        ~dur_ns:(Clock.now_ns () - t0) ~arcs:0 ~palette:c.palette ~pi:c.maxload
        ~trace:(Ctx.current_trace ())
    in
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("paths", Trace.Int c.n_live) ]
        "engine.full_solve" solve
    else solve ()
  end

let build_warm_report c =
  assert (c.warm && not c.dirty);
  let assignment = Array.make c.n_live 0 in (* alloc-ok *)
  let j = ref 0 in
  for i = 0 to c.n_slots - 1 do
    if c.slot_live.(i) then begin
      assignment.(!j) <- c.colors.(i);
      incr j
    end
  done;
  {
    Solver.classification = c.classification;
    pi = c.maxload;
    lower_bound = c.maxload;
    lower_bound_source = Solver.From_load;
    assignment;
    n_wavelengths = c.palette;
    method_used = Solver.Theorem_1;
    optimal = true;
  }

let report s =
  ensure_clean s;
  let c = !(s.core) in
  match c.cached_report with
  | Some r -> r
  | None ->
    let r = build_warm_report c in
    c.cached_report <- Some r;
    r

let color_of s pid =
  let c = !(s.core) in
  if pid < 0 || pid >= c.n_slots then
    Error (Error.Bad_index { what = "path"; index = pid })
  else if not c.slot_live.(pid) then
    Error (Error.Invalid_op (Printf.sprintf "path %d was removed" pid))
  else begin
    ensure_clean s;
    Ok c.colors.(pid)
  end

(* --- warm-path machinery ---------------------------------------------------

   Everything below runs on the core's scratch: generation stamps instead of
   fresh mark arrays, an int-array queue instead of [Queue], packed ints
   instead of option/tuple returns, and top-level tail-recursive helpers
   instead of environment-capturing closures (which allocate without
   flambda).  A warm add or remove in steady state performs no minor
   allocation at all, which is what the [engine.add_path] span's
   [gc.minor_w = 0] reading in {!Wl_obs.Prof} reports. *)

(* First color in [col .. n-1] with [used.(col) = 0], or -1. *)
let rec first_free used n col =
  if col >= n then -1
  else if Array.unsafe_get used col = 0 then col
  else first_free used n (col + 1)

let rec argmin_color cc n best col =
  if col >= n then best
  else if cc.(col) < cc.(best) then argmin_color cc n col (col + 1)
  else argmin_color cc n best (col + 1)

(* Mark in [z_used] every palette color worn by a live occupant of [q]'s
   arcs other than [q] itself.  Caller fills [z_used] first. *)
let mark_neighbor_colors c q =
  let used = c.scr.z_used in
  let arcs = c.slot_arcs.(q) in
  for k = 0 to Array.length arcs - 1 do
    let a = Array.unsafe_get arcs k in
    let row = c.occ.(a) in
    for j = 0 to c.occ_len.(a) - 1 do
      let x = Array.unsafe_get row j land occ_mask in
      if x <> q then Array.unsafe_set used c.colors.(x) 1
    done
  done

(* Smallest color of [0 .. palette - 1] worn by no live occupant of the
   slot's arcs (other than the slot itself); -1 if none. *)
let free_color c s =
  if c.palette = 0 then -1
  else begin
    let z = c.scr in
    ensure_color_cap z c.palette;
    Array.fill z.z_used 0 c.palette 0;
    mark_neighbor_colors c s;
    first_free z.z_used c.palette 0
  end

let push_color_count c col =
  c.color_count <- grow_int_array c.color_count (col + 1) 0;
  c.color_count.(col) <- c.color_count.(col) + 1

(* Kempe component of [start] in the {alpha, beta} conflict subgraph over
   live colored slots; collect-then-flip so a partial traversal never leaves
   an invalid coloring behind.  The BFS queue is the collection: every
   component member is enqueued exactly once, so after the traversal
   [z_queue.(0 .. z_tail - 1)] is the component. *)
let kempe_flip c ~alpha ~beta start =
  let z = c.scr in
  ensure_slot_scratch z c.n_slots;
  z.z_gen <- z.z_gen + 1;
  let g = z.z_gen in
  let vis = z.z_visited and queue = z.z_queue in
  vis.(start) <- g;
  queue.(0) <- start;
  z.z_head <- 0;
  z.z_tail <- 1;
  while z.z_head < z.z_tail do
    let x = queue.(z.z_head) in
    z.z_head <- z.z_head + 1;
    let other = if c.colors.(x) = alpha then beta else alpha in
    let arcs = c.slot_arcs.(x) in
    for k = 0 to Array.length arcs - 1 do
      let a = Array.unsafe_get arcs k in
      let row = c.occ.(a) in
      for j = 0 to c.occ_len.(a) - 1 do
        let q = Array.unsafe_get row j land occ_mask in
        if vis.(q) <> g && c.colors.(q) = other then begin
          vis.(q) <- g;
          queue.(z.z_tail) <- q;
          z.z_tail <- z.z_tail + 1
        end
      done
    done
  done;
  let size = z.z_tail in
  for i = 0 to size - 1 do
    let x = queue.(i) in
    let old = c.colors.(x) in
    let nw = if old = alpha then beta else alpha in
    c.colors.(x) <- nw;
    c.color_count.(old) <- c.color_count.(old) - 1;
    c.color_count.(nw) <- c.color_count.(nw) + 1
  done;
  size

(* First alpha-wearer on a row other than [s], or -1. *)
let rec conflict_in_row c s row j len alpha =
  if j >= len then -1
  else begin
    let q = Array.unsafe_get row j land occ_mask in
    if q <> s && c.colors.(q) = alpha then q
    else conflict_in_row c s row (j + 1) len alpha
  end

(* First arc of slot [s] still carrying an alpha-wearer, packed with the
   wearer as [(arc lsl 31) lor wearer]; -1 when alpha is free everywhere. *)
let rec find_conflict c s arcs k n alpha =
  if k >= n then -1
  else begin
    let a = Array.unsafe_get arcs k in
    let q = conflict_in_row c s (c.occ.(a)) 0 c.occ_len.(a) alpha in
    if q >= 0 then (a lsl occ_shift) lor q
    else find_conflict c s arcs (k + 1) n alpha
  end

let rec repair_fix c s alpha budget flips =
  let arcs = c.slot_arcs.(s) in
  let w = find_conflict c s arcs 0 (Array.length arcs) alpha in
  if w < 0 then begin
    c.colors.(s) <- alpha;
    push_color_count c alpha;
    flips
  end
  else if flips >= budget then -1
  else begin
    let a = w lsr occ_shift and q = w land occ_mask in
    (* beta: a palette color absent on arc [a].  One exists: the arc's load
       counts the uncolored slot, so at most [palette - 1] of its occupants
       are colored. *)
    let used = c.scr.z_used in
    Array.fill used 0 c.palette 0;
    let row = c.occ.(a) in
    for j = 0 to c.occ_len.(a) - 1 do
      let x = Array.unsafe_get row j land occ_mask in
      if x <> s then used.(c.colors.(x)) <- 1
    done;
    let beta = first_free used c.palette 0 in
    if beta < 0 then -1 (* load accounting broken; bail out *)
    else begin
      let size = kempe_flip c ~alpha ~beta q in
      if flips + size > budget then -1 else repair_fix c s alpha budget (flips + size)
    end
  end

(* The slot is inserted in the occupancy but uncolored; make some color free
   on all its arcs by bounded Theorem-1-style Kempe flips and wear it.
   Returns the number of recolored dipaths, or -1 when the flip budget ran
   out (caller falls back to a full solve). *)
let try_repair c ~budget s =
  if c.palette = 0 then -1
  else begin
    let z = c.scr in
    ensure_color_cap z c.palette;
    (* alpha: the color with the fewest wearers along the slot's arcs. *)
    let cnt = z.z_cnt in
    Array.fill cnt 0 c.palette 0;
    let arcs = c.slot_arcs.(s) in
    for k = 0 to Array.length arcs - 1 do
      let a = Array.unsafe_get arcs k in
      let row = c.occ.(a) in
      for j = 0 to c.occ_len.(a) - 1 do
        let q = Array.unsafe_get row j land occ_mask in
        if q <> s then cnt.(c.colors.(q)) <- cnt.(c.colors.(q)) + 1
      done
    done;
    let alpha = argmin_color cnt c.palette 0 1 in
    repair_fix c s alpha budget 0
  end

let rec collect_class c d members i cnt =
  if i >= c.n_slots then cnt
  else if c.slot_live.(i) && c.colors.(i) = d then begin
    members.(cnt) <- i;
    collect_class c d members (i + 1) (cnt + 1)
  end
  else collect_class c d members (i + 1) cnt

let shrink_revert c d applied napp =
  for i = 0 to napp - 1 do
    let w = applied.(i) in
    let q = w lsr occ_shift and e = w land occ_mask in
    c.colors.(q) <- d;
    c.color_count.(d) <- c.color_count.(d) + 1;
    c.color_count.(e) <- c.color_count.(e) - 1
  done

(* Greedily recolor every member of class [d]; the undo log is packed
   [(slot lsl 31) lor new_color].  Returns the applied count, or -1 (after a
   full revert) when some member has no free color. *)
let rec shrink_go c d members nm applied i napp =
  if i >= nm then napp
  else begin
    let q = members.(i) in
    let z = c.scr in
    Array.fill z.z_used 0 c.palette 0;
    z.z_used.(d) <- 1;
    mark_neighbor_colors c q;
    let e = first_free z.z_used c.palette 0 in
    if e < 0 then begin
      shrink_revert c d applied napp;
      -1
    end
    else begin
      c.colors.(q) <- e;
      c.color_count.(d) <- c.color_count.(d) - 1;
      c.color_count.(e) <- c.color_count.(e) + 1;
      applied.(napp) <- (q lsl occ_shift) lor e;
      shrink_go c d members nm applied (i + 1) (napp + 1)
    end
  end

(* After a warm removal [palette] can exceed the (possibly lowered) load by
   one; empty the smallest color class by greedy recoloring to restore
   [palette = pi].  Fully reverted on failure. *)
let try_shrink c =
  let z = c.scr in
  ensure_color_cap z c.palette;
  ensure_slot_scratch z c.n_slots;
  let d = argmin_color c.color_count c.palette 0 1 in
  let nm = collect_class c d z.z_members 0 0 in
  if shrink_go c d z.z_members nm z.z_applied 0 0 < 0 then false
  else begin
    (* Class [d] is empty; keep colors contiguous by renaming the last one. *)
    let last = c.palette - 1 in
    if d <> last then begin
      for i = 0 to c.n_slots - 1 do
        if c.slot_live.(i) && c.colors.(i) = last then c.colors.(i) <- d
      done;
      c.color_count.(d) <- c.color_count.(last)
    end;
    c.color_count.(last) <- 0;
    c.palette <- last;
    true
  end

let go_dirty s =
  let c = !(s.core) in
  c.dirty <- true;
  c.warm <- false;
  s.s_fallbacks <- s.s_fallbacks + 1;
  s.s_ev <- Flight.Fallback;
  Metrics.incr c_fallbacks

(* --- mutations ------------------------------------------------------------- *)

let count_op s =
  s.s_ops <- s.s_ops + 1;
  Metrics.incr c_ops;
  !(s.core).cached_report <- None

(* Post-op observability, shared by add and remove: latency into the
   session HDR + SLO (+ the gated global latency), the warm-hit window,
   the fallback streak, and one flight-recorder entry.  All int stores
   and lock-free atomics — the warm paths stay zero-minor-alloc. *)
let obs_op s kind lat gl t0 ~arcs =
  let c = !(s.core) in
  let dur = Clock.now_ns () - t0 in
  let tr = Ctx.current_trace () in
  Hdr.record_traced lat dur ~trace:tr;
  Hdr.Slo.record s.slo dur;
  Metrics.observe_ns gl dur;
  let ev = s.s_ev in
  let w =
    match ev with
    | Flight.Warm_hit | Flight.Fresh_color | Flight.Repair | Flight.Warm_remove
    | Flight.Shrink ->
      1
    | _ -> 0
  in
  let len = Array.length s.hit_ring in
  if s.hit_filled = len then
    s.hit_sum <- s.hit_sum - Array.unsafe_get s.hit_ring s.hit_idx
  else s.hit_filled <- s.hit_filled + 1;
  Array.unsafe_set s.hit_ring s.hit_idx w;
  s.hit_sum <- s.hit_sum + w;
  s.hit_idx <- (if s.hit_idx + 1 = len then 0 else s.hit_idx + 1);
  (match ev with
  | Flight.Fallback ->
    s.fb_streak <- s.fb_streak + 1;
    if s.fb_streak > s.max_fb_streak then s.max_fb_streak <- s.fb_streak
  | _ -> s.fb_streak <- 0);
  Flight.record s.flight kind ev ~t_ns:t0 ~dur_ns:dur ~arcs ~palette:c.palette
    ~pi:c.maxload ~trace:tr

(* A refused op still leaves a flight-recorder entry and fires the
   auto-dump latch: a client hitting validation errors is exactly when
   the recent-op tail is wanted. *)
let record_rejection s kind =
  let c = !(s.core) in
  s.s_rejected <- s.s_rejected + 1;
  Flight.record s.flight kind Flight.Rejected ~t_ns:(Clock.now_ns ()) ~dur_ns:0
    ~arcs:0 ~palette:c.palette ~pi:c.maxload ~trace:(Ctx.current_trace ());
  Flight.trigger ~reason:"op rejected" s.flight

(* Insert an already-validated dipath; the shared tail of [add_path] and
   [add_dipath_exn]. *)
let add_body s p =
  let c = !(s.core) in
  count_op s;
  let warm = c.warm && not c.dirty in
  let slot = new_slot c p in
  if not warm then begin
    c.dirty <- true;
    s.s_ev <- Flight.Dirty
  end
  else begin
    let col = free_color c slot in
    if col >= 0 then begin
      (* A free color implies the insertion did not push any arc past the
         palette, so palette = pi still holds. *)
      c.colors.(slot) <- col;
      push_color_count c col;
      s.s_warm_hits <- s.s_warm_hits + 1;
      s.s_ev <- Flight.Warm_hit;
      Metrics.incr c_warm_hits
    end
    else if c.maxload = c.palette + 1 then begin
      (* The new path completed a full rainbow arc: the optimum itself grew,
         so a fresh color keeps palette = pi. *)
      c.colors.(slot) <- c.palette;
      push_color_count c c.palette;
      c.palette <- c.palette + 1;
      s.s_fresh <- s.s_fresh + 1;
      s.s_ev <- Flight.Fresh_color;
      Metrics.incr c_fresh
    end
    else begin
      let flips = try_repair c ~budget:s.repair_budget slot in
      if flips >= 0 then begin
        s.s_repairs <- s.s_repairs + 1;
        s.s_repair_flips <- s.s_repair_flips + flips;
        s.s_ev <- Flight.Repair;
        Metrics.incr c_repairs;
        Metrics.observe h_cascade flips
      end
      else go_dirty s
    end
  end;
  slot

let add_instrumented s p =
  let t0 = Clock.now_ns () in
  let slot = add_body s p in
  obs_op s Flight.Add_path s.lat_add l_add t0
    ~arcs:(Array.length !(s.core).slot_arcs.(slot));
  slot

let add_traced s p =
  if Trace.enabled () then
    Trace.with_span "engine.add_path" (fun () -> add_instrumented s p)
  else add_instrumented s p

let add_path s verts =
  let c = !(s.core) in
  match Dipath.of_vertices c.g verts with
  | Error msg ->
    record_rejection s Flight.Add_path;
    Error (Error.Invalid_path msg)
  | Ok p -> Ok (add_traced s p)

(* Validate a caller-built dipath against the session's private graph: every
   arc id in range, consecutive arcs chained head-to-tail, no vertex visited
   twice (stamp check).  O(length) and allocation-free on success; arc ids
   survive [create]'s graph copy, so dipaths built against the source
   instance's graph validate unchanged. *)
let rec check_chain c arcs k n m =
  if k >= n then ()
  else begin
    let a = arcs.(k) in
    if a < 0 || a >= m then
      Error.raise_error
        (Error.Invalid_path (Printf.sprintf "add_dipath: arc %d out of range" a));
    if k > 0 && Digraph.arc_src c.g a <> Digraph.arc_dst c.g arcs.(k - 1) then
      Error.raise_error
        (Error.Invalid_path
           (Printf.sprintf "add_dipath: arcs %d and %d do not chain" arcs.(k - 1) a));
    check_chain c arcs (k + 1) n m
  end

let stamp_vertex z g v =
  if z.z_vstamp.(v) = g then
    Error.raise_error
      (Error.Invalid_path (Printf.sprintf "add_dipath: repeated vertex %d" v));
  z.z_vstamp.(v) <- g

let rec check_distinct c z g arcs k n =
  if k >= n then ()
  else begin
    stamp_vertex z g (Digraph.arc_src c.g arcs.(k));
    check_distinct c z g arcs (k + 1) n
  end

let validate_dipath c p =
  let arcs = Dipath.unsafe_arc_array p in
  let n = Array.length arcs in
  check_chain c arcs 0 n (Digraph.n_arcs c.g);
  let z = c.scr in
  ensure_vertex_scratch z (Digraph.n_vertices c.g);
  z.z_gen <- z.z_gen + 1;
  check_distinct c z z.z_gen arcs 0 n;
  stamp_vertex z z.z_gen (Digraph.arc_dst c.g arcs.(n - 1))

let add_dipath_exn s p =
  let c = !(s.core) in
  (try validate_dipath c p
   with Error.Error _ as e ->
     record_rejection s Flight.Add_path;
     raise e);
  add_traced s p

let add_dipath s p =
  match add_dipath_exn s p with
  | pid -> Ok pid
  | exception Error.Error e -> Error e

let remove_body s pid =
  let c = !(s.core) in
  count_op s;
  let warm = c.warm && not c.dirty in
  occ_remove c pid;
  c.slot_live.(pid) <- false;
  c.n_live <- c.n_live - 1;
  if not warm then begin
    c.dirty <- true;
    s.s_ev <- Flight.Dirty
  end
  else begin
    let col = c.colors.(pid) in
    c.colors.(pid) <- -1;
    c.color_count.(col) <- c.color_count.(col) - 1;
    if c.color_count.(col) = 0 then begin
      let last = c.palette - 1 in
      if col <> last then begin
        for i = 0 to c.n_slots - 1 do
          if c.slot_live.(i) && c.colors.(i) = last then c.colors.(i) <- col
        done;
        c.color_count.(col) <- c.color_count.(last)
      end;
      c.color_count.(last) <- 0;
      c.palette <- last
    end;
    if c.palette > c.maxload then begin
      if try_shrink c then begin
        s.s_shrinks <- s.s_shrinks + 1;
        s.s_warm_removes <- s.s_warm_removes + 1;
        s.s_ev <- Flight.Shrink;
        Metrics.incr c_shrinks
      end
      else go_dirty s
    end
    else begin
      s.s_warm_removes <- s.s_warm_removes + 1;
      s.s_ev <- Flight.Warm_remove
    end
  end

let remove_instrumented s pid =
  let t0 = Clock.now_ns () in
  (* [slot_arcs] survives the removal; read the width before anyway so
     the record reflects what the op saw. *)
  let arcs = Array.length !(s.core).slot_arcs.(pid) in
  remove_body s pid;
  obs_op s Flight.Remove_path s.lat_remove l_remove t0 ~arcs

let remove_path_exn s pid =
  let c = !(s.core) in
  if pid < 0 || pid >= c.n_slots then begin
    record_rejection s Flight.Remove_path;
    Error.raise_error (Error.Bad_index { what = "path"; index = pid })
  end
  else if not c.slot_live.(pid) then begin
    record_rejection s Flight.Remove_path;
    Error.raise_error
      (Error.Invalid_op (Printf.sprintf "path %d was already removed" pid))
  end
  else if Trace.enabled () then
    Trace.with_span "engine.remove_path" (fun () -> remove_instrumented s pid)
  else remove_instrumented s pid

let remove_path s pid =
  match remove_path_exn s pid with
  | () -> Ok ()
  | exception Error.Error e -> Error e

(* DFS reachability used to reject directed cycles on arc insertion. *)
let reaches g src dst =
  let n = Digraph.n_vertices g in
  let visited = Array.make n false in (* alloc-ok *)
  let stack = ref [ src ] in
  let found = ref false in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if v = dst then found := true
      else if not visited.(v) then begin
        visited.(v) <- true;
        List.iter
          (fun w -> if not visited.(w) then stack := w :: !stack)
          (Digraph.succ g v)
      end
  done;
  !found

let add_arc s u v =
  let c = !(s.core) in
  let n = Digraph.n_vertices c.g in
  if u < 0 || u >= n then begin
    record_rejection s Flight.Add_arc;
    Error (Error.Bad_index { what = "vertex"; index = u })
  end
  else if v < 0 || v >= n then begin
    record_rejection s Flight.Add_arc;
    Error (Error.Bad_index { what = "vertex"; index = v })
  end
  else if u = v then begin
    record_rejection s Flight.Add_arc;
    Error (Error.Invalid_op "add_arc: self-loop")
  end
  else if Digraph.mem_arc c.g u v then begin
    record_rejection s Flight.Add_arc;
    Error (Error.Invalid_op "add_arc: duplicate arc")
  end
  else if reaches c.g v u then begin
    record_rejection s Flight.Add_arc;
    Error
      (Error.Cyclic
         (Printf.sprintf "adding arc %d -> %d would close a directed cycle" u v))
  end
  else begin
    count_op s;
    let a = Digraph.add_arc c.g u v in
    ensure_arc_capacity c (a + 1);
    c.occ.(a) <- [||];
    c.occ_len.(a) <- 0;
    c.n_arcs <- a + 1;
    (* Arc ids are append-only, so cached dipath arc ids stay valid; only the
       classification can change — and an internal cycle appearing is exactly
       the Theorem-1 boundary, where the warm invariant stops being
       meaningful and the next query re-solves from scratch. *)
    let dag = Dag.of_digraph_exn c.g in
    c.classification <- Classify.classify dag;
    let had_cycle = c.has_cycle in
    c.has_cycle <- c.classification.Classify.n_internal_cycles > 0;
    if c.has_cycle && not had_cycle then begin
      c.warm <- false;
      c.dirty <- true
    end;
    if not (c.warm && not c.dirty) then c.dirty <- true;
    Ok a
  end

(* --- snapshot / rollback --------------------------------------------------- *)

let snapshot s = { snap_sid = s.sid; snap_core = clone_core !(s.core) }

let rollback s snap =
  if snap.snap_sid <> s.sid then
    Error
      (Error.Invalid_op
         (Printf.sprintf "rollback: snapshot belongs to session %d, not %d"
            snap.snap_sid s.sid))
  else begin
    s.core := clone_core snap.snap_core;
    Ok ()
  end

(* --- batched submission ---------------------------------------------------- *)

type batch = {
  outcomes : (op_outcome, Error.t) result array;
  batch_report : Solver.report;
  batch_stats : stats;
}

let apply_op s = function
  | Add_path verts -> Result.map (fun pid -> Path_added pid) (add_path s verts)
  | Remove_path pid -> Result.map (fun () -> Path_removed pid) (remove_path s pid)
  | Add_arc (u, v) -> Result.map (fun a -> Arc_added a) (add_arc s u v)

(* Left-to-right by construction: ops mutate the session, so evaluation
   order is semantics here, and the array init/map combinators leave it
   unspecified. *)
let apply_ops s ops =
  match ops with
  | [] -> [||]
  | first :: rest ->
    let out = Array.make (1 + List.length rest) (apply_op s first) in (* alloc-ok *)
    let rec go i = function
      | [] -> ()
      | op :: tl ->
        out.(i) <- apply_op s op;
        go (i + 1) tl
    in
    go 1 rest;
    out

let submit s ops =
  let run () =
    let outcomes = apply_ops s ops in
    let batch_report = report s in
    { outcomes; batch_report; batch_stats = stats s }
  in
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("ops", Trace.Int (List.length ops)) ]
      "engine.submit" run
  else run ()

let submit_many ?domains ?max_in_flight jobs =
  let n = Array.length jobs in
  let distinct =
    let seen = Hashtbl.create n in (* alloc-ok *)
    Array.for_all
      (fun (s, _) ->
        if Hashtbl.mem seen s.sid then false
        else begin
          Hashtbl.add seen s.sid ();
          true
        end)
      jobs
  in
  if not distinct then
    (* The same session twice in one wave would race against itself; degrade
       to deterministic sequential submission. *)
    Array.map (fun (s, ops) -> submit s ops) jobs
  else begin
    let wave =
      match max_in_flight with
      | Some w when w > 0 -> w
      | _ -> 4 * Parallel.default_domains ()
    in
    let out = Array.make n None in (* alloc-ok *)
    let i = ref 0 in
    while !i < n do
      let hi = min n (!i + wave) in
      let slice = Array.sub jobs !i (hi - !i) in
      let results = Parallel.map_array ?domains (fun (s, ops) -> submit s ops) slice in
      Array.iteri (fun k r -> out.(!i + k) <- Some r) results;
      i := hi
    done;
    Array.map Option.get out
  end

(* --- invariant audit (for tests) ------------------------------------------- *)

let audit_core s =
  let c = !(s.core) in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_occ () =
    let rec go a =
      if a >= c.n_arcs then Ok ()
      else begin
        let ok = ref (Ok ()) in
        for j = 0 to c.occ_len.(a) - 1 do
          let w = c.occ.(a).(j) in
          let q = w land occ_mask and k = w lsr occ_shift in
          if q < 0 || q >= c.n_slots || not c.slot_live.(q) then
            ok := fail "arc %d: dead occupant %d" a q
          else if c.slot_arcs.(q).(k) <> a then
            ok := fail "arc %d: back-pointer of slot %d is wrong" a q
          else if c.slot_pos.(q).(k) <> j then
            ok := fail "arc %d: position of slot %d is wrong" a q
        done;
        match !ok with Ok () -> go (a + 1) | e -> e
      end
    in
    go 0
  in
  let check_loads () =
    let loads = Array.make (max 1 c.n_arcs) 0 in (* alloc-ok *)
    for i = 0 to c.n_slots - 1 do
      if c.slot_live.(i) then
        Array.iter (fun a -> loads.(a) <- loads.(a) + 1) c.slot_arcs.(i)
    done;
    let rec go a =
      if a >= c.n_arcs then Ok ()
      else if loads.(a) <> c.occ_len.(a) then
        fail "arc %d: load %d but occ_len %d" a loads.(a) c.occ_len.(a)
      else go (a + 1)
    in
    match go 0 with
    | Error _ as e -> e
    | Ok () ->
      let m = Array.fold_left max 0 loads in
      if m <> c.maxload then fail "maxload %d but real max %d" c.maxload m else Ok ()
  in
  let check_warm () =
    if not (c.warm && not c.dirty) then Ok ()
    else begin
      let rec arcs_ok a =
        if a >= c.n_arcs then Ok ()
        else begin
          let seen = Array.make (max 1 c.palette) false in (* alloc-ok *)
          let clash = ref None in
          for j = 0 to c.occ_len.(a) - 1 do
            let col = c.colors.(c.occ.(a).(j) land occ_mask) in
            if col < 0 || col >= c.palette then clash := Some col
            else if seen.(col) then clash := Some col
            else seen.(col) <- true
          done;
          match !clash with
          | Some col -> fail "arc %d: color %d clashes or out of range" a col
          | None -> arcs_ok (a + 1)
        end
      in
      match arcs_ok 0 with
      | Error _ as e -> e
      | Ok () ->
        if c.palette <> c.maxload then
          fail "warm but palette %d <> pi %d" c.palette c.maxload
        else begin
          let rec counts_ok col =
            if col >= c.palette then Ok ()
            else if c.color_count.(col) <= 0 then fail "warm color %d unused" col
            else counts_ok (col + 1)
          in
          counts_ok 0
        end
    end
  in
  match check_occ () with
  | Error _ as e -> e
  | Ok () -> ( match check_loads () with Error _ as e -> e | Ok () -> check_warm ())

let audit s =
  match audit_core s with
  | Ok () -> Ok ()
  | Error msg ->
    (* The black box earns its keep here: the violation goes into the ring
       as its own record, then the auto-dump fires so the op tail that led
       to the broken invariant is preserved. *)
    let c = !(s.core) in
    Flight.record s.flight Flight.Audit Flight.Failed ~t_ns:(Clock.now_ns ())
      ~dur_ns:0 ~arcs:0 ~palette:c.palette ~pi:c.maxload
      ~trace:(Ctx.current_trace ());
    Flight.trigger ~reason:("audit: " ^ msg) s.flight;
    Error msg

(* Deliberately break the load accounting so the next [audit] fails —
   the hook behind [wl session --inject-audit-failure] and the CI proof
   that a failing audit emits a flight dump.  Test-only: the session is
   unusable for real work afterwards. *)
let corrupt_for_testing s =
  let c = !(s.core) in
  c.maxload <- c.maxload + 1

(* --- health ----------------------------------------------------------------- *)

type health = {
  healthy : bool;
  slo : Hdr.Slo.state;
  add_latency : Hdr.snapshot;
  remove_latency : Hdr.snapshot;
  add_exemplar : (int * int) option;
  remove_exemplar : (int * int) option;
  fallback_streak : int;
  max_fallback_streak : int;
  warm_hit_recent : float;
  warm_hit_lifetime : float;
  warm_drop : bool;
}

let flight s = s.flight
let add_hdr s = s.lat_add
let remove_hdr s = s.lat_remove

let health s =
  let st = stats s in
  let lifetime = hit_rate st in
  let recent =
    if s.hit_filled = 0 then 1.0
    else float_of_int s.hit_sum /. float_of_int s.hit_filled
  in
  (* Drop detection compares the recent window against the lifetime rate:
     a session that has always fallen back is (reportedly) sick through
     the SLO, not through a drop. *)
  let warm_drop =
    s.hit_filled >= 64 && lifetime > 0.05 && recent < 0.5 *. lifetime
  in
  let slo = Hdr.Slo.state s.slo in
  {
    healthy = (not slo.Hdr.Slo.tripped) && (not warm_drop) && s.fb_streak < 8;
    slo;
    add_latency = Hdr.snapshot s.lat_add;
    remove_latency = Hdr.snapshot s.lat_remove;
    add_exemplar = Hdr.exemplar s.lat_add;
    remove_exemplar = Hdr.exemplar s.lat_remove;
    fallback_streak = s.fb_streak;
    max_fallback_streak = s.max_fb_streak;
    warm_hit_recent = recent;
    warm_hit_lifetime = lifetime;
    warm_drop;
  }

let pp_health ppf h =
  Format.fprintf ppf "@[<v>health: %s%s@,%a@,add: %a@,remove: %a@,%s"
    (if h.healthy then "ok" else "DEGRADED")
    (if h.warm_drop then " (warm-hit rate dropped)" else "")
    Hdr.Slo.pp h.slo Hdr.pp_ns h.add_latency Hdr.pp_ns h.remove_latency
    (Printf.sprintf "warm-hit recent %.2f lifetime %.2f; fallback streak %d (max %d)"
       h.warm_hit_recent h.warm_hit_lifetime h.fallback_streak
       h.max_fallback_streak);
  Format.fprintf ppf "@]"
