(** Watermark arena for reusable int scratch buffers.

    A session-owned pool that hands out int arrays in a fixed
    acquisition order after each {!reset}, returning the same physical
    buffers round after round and growing each slot on demand.  At
    steady state a round performs {e zero} allocation, which is what
    keeps the hot solver spans ([thm1.color], [engine.add_path]) minor-
    word-quiet.

    Rules: buffers are valid until the next {!reset}; acquisition order
    must be deterministic per round; contents are not cleared on reuse
    (overwrite fully or use generation stamps); one domain at a time. *)

type t

val create : unit -> t

val reset : t -> unit
(** Return every slot to the pool.  O(1); buffers are retained. *)

val ints : t -> int -> int array
(** [ints a n] acquires the next slot's buffer, grown (power-of-two) so
    its length is at least [n].  Contents are unspecified — stale data
    from previous rounds is visible. *)

val ints_zeroed : t -> int -> int array
(** Like {!ints} but zero-filled — for one-time session initialisation,
    not per-round hot paths. *)

val mark : t -> int
(** Current watermark, for scoped acquisition: grab a mark, acquire
    buffers, {!release} back to the mark when done — the slots (and
    their grown buffers) are then reused by the next scoped caller. *)

val release : t -> int -> unit
(** Restore a watermark previously returned by {!mark}. *)

val slots_used : t -> int
(** Slots handed out since the last {!reset}. *)

val grow_count : t -> int
(** Lifetime number of buffer (re)allocations — a steady-state round
    must not advance this. *)
