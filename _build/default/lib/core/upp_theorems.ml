open Wl_digraph
module Clique = Wl_conflict.Clique
module Graph_props = Wl_conflict.Graph_props

let pairwise_intersections_are_intervals inst =
  let g = Instance.graph inst in
  let ps = Instance.paths inst in
  let n = Array.length ps in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok && Dipath.shares_arc ps.(i) ps.(j) then
        match Dipath.intersection_interval g ps.(i) ps.(j) with
        | Some _ -> ()
        | None -> ()
        | exception Invalid_argument _ -> ok := false
    done
  done;
  !ok

let helly_holds inst = Conflict_of.helly_witness inst = None

let clique_number_equals_load inst =
  Clique.clique_number (Conflict_of.build inst) = Load.pi inst

let no_k23 inst = not (Graph_props.has_k23 (Conflict_of.build inst))

let no_k5_minus_two_edges inst =
  Graph_props.find_k5_minus_two_independent_edges (Conflict_of.build inst) = None

(* Index on [p] of the first arc shared with [q]; [-1] when disjoint. *)
let first_meeting p q =
  let arcs = Dipath.arc_array p in
  let rec go i =
    if i >= Array.length arcs then -1
    else if Dipath.mem_arc q arcs.(i) then i
    else go (i + 1)
  in
  go 0

let crossing_lemma_holds inst =
  let ps = Instance.paths inst in
  let n = Array.length ps in
  let ok = ref true in
  (* Unordered pairs {i1,i2} (the P's) and {j1,j2} (the Q's), all four
     cross-conflicts present, P's disjoint, Q's disjoint. *)
  for i1 = 0 to n - 1 do
    for i2 = i1 + 1 to n - 1 do
      if !ok && not (Dipath.shares_arc ps.(i1) ps.(i2)) then
        for j1 = 0 to n - 1 do
          for j2 = j1 + 1 to n - 1 do
            if
              !ok && j1 <> i1 && j1 <> i2 && j2 <> i1 && j2 <> i2
              && not (Dipath.shares_arc ps.(j1) ps.(j2))
            then begin
              let m11 = first_meeting ps.(i1) ps.(j1)
              and m12 = first_meeting ps.(i1) ps.(j2)
              and m21 = first_meeting ps.(i2) ps.(j1)
              and m22 = first_meeting ps.(i2) ps.(j2) in
              if m11 >= 0 && m12 >= 0 && m21 >= 0 && m22 >= 0 then begin
                (* Q_{j1} meets P_{i1} before Q_{j2}  =>  Q_{j2} meets
                   P_{i2} before Q_{j1}; and symmetrically. *)
                if m11 < m12 && not (m22 < m21) then ok := false;
                if m12 < m11 && not (m21 < m22) then ok := false
              end
            end
          done
        done
    done
  done;
  !ok
