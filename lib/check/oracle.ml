open Wl_digraph
open Wl_core
module Engine = Wl_engine.Engine
module Script = Wl_engine.Script
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng
module Classify = Wl_dag.Classify
module Sweeps = Wl_validate.Sweeps

type t = {
  name : string;
  doc : string;
  generate : int -> Subject.t;
  check : Subject.t -> string option;
}

(* --- shared generator pieces ------------------------------------------------ *)

let dedup paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    paths

(* Random engine op mix (same shape as the PR-3 equivalence property):
   mostly path insertions via short random walks, some removals by raw
   handle, some arc insertions by raw endpoints — including ops the engine
   must reject, since rejection is part of the behavior under test. *)
let random_ops rng g ~n_initial ~count =
  let n = Digraph.n_vertices g in
  let next = ref n_initial in
  List.init count (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 ->
        if !next = 0 then Engine.Add_arc (Prng.int rng n, Prng.int rng n)
        else Engine.Remove_path (Prng.int rng !next)
      | 2 -> Engine.Add_arc (Prng.int rng n, Prng.int rng n)
      | _ ->
        let rec go v acc len =
          let succs = Digraph.succ g v in
          if succs = [] || len >= 5 || (len >= 1 && Prng.bernoulli rng 0.3) then
            List.rev acc
          else
            let w = Prng.choose_list rng succs in
            go w (w :: acc) (len + 1)
        in
        let v0 = Prng.int rng n in
        incr next;
        Engine.Add_path (go v0 [ v0 ] 0))

let distinct_paths inst =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun p ->
      let key = Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (Instance.paths_list inst)

let same_instance a b =
  let ga = Instance.graph a and gb = Instance.graph b in
  Digraph.n_vertices ga = Digraph.n_vertices gb
  && Digraph.arcs ga = Digraph.arcs gb
  && List.map Dipath.vertices (Instance.paths_list a)
     = List.map Dipath.vertices (Instance.paths_list b)

(* --- thm1_dsatur ------------------------------------------------------------ *)

let thm1_dsatur =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 14 0.25 in
    Subject.make (Path_gen.random_instance rng dag 8)
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    if Wl_dag.Internal_cycle.has_internal_cycle (Instance.dag inst) then None
    else begin
      let pi = Load.pi inst in
      match Theorem1.color_result inst with
      | Error _ -> Some "theorem 1 hit case C without an internal cycle"
      | Ok a ->
        if not (Assignment.is_valid inst a) then
          Some "theorem 1 produced an invalid assignment"
        else begin
          let w1 = Assignment.n_wavelengths (Assignment.normalize a) in
          if w1 <> pi then
            Some
              (Printf.sprintf "theorem 1 used %d wavelengths, load is %d" w1 pi)
          else begin
            let cg = Conflict_of.build inst in
            let d = Wl_conflict.Coloring.dsatur cg in
            if not (Wl_conflict.Coloring.is_valid cg d) then
              Some "DSATUR produced an invalid coloring"
            else begin
              let wd =
                Wl_conflict.Coloring.n_colors (Wl_conflict.Coloring.normalize d)
              in
              if wd < pi then
                Some
                  (Printf.sprintf "DSATUR used %d colors, below the load %d" wd
                     pi)
              else None
            end
          end
        end
    end
  in
  {
    name = "thm1_dsatur";
    doc = "Theorem 1 (w = pi) vs an independent DSATUR arm, both audited";
    generate;
    check;
  }

(* --- solver_exact ----------------------------------------------------------- *)

let solver_exact =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_dag rng 10 0.3 in
    Subject.make (Path_gen.random_instance rng dag 6)
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    if Instance.n_paths inst > 12 then None
    else begin
      let report = Solver.solve inst in
      let chi = Bounds.chromatic_exact inst in
      if not (Assignment.is_valid inst report.Solver.assignment) then
        Some "solver produced an invalid assignment"
      else if report.Solver.n_wavelengths < chi then
        Some
          (Printf.sprintf "solver used %d wavelengths, chromatic number is %d"
             report.Solver.n_wavelengths chi)
      else if report.Solver.lower_bound > chi then
        Some
          (Printf.sprintf "lower bound %d exceeds the chromatic number %d"
             report.Solver.lower_bound chi)
      else if Load.pi inst > chi then
        Some
          (Printf.sprintf "load %d exceeds the chromatic number %d"
             (Load.pi inst) chi)
      else if report.Solver.optimal && report.Solver.n_wavelengths <> chi then
        Some
          (Printf.sprintf
             "optimal report used %d wavelengths, chromatic number is %d"
             report.Solver.n_wavelengths chi)
      else None
    end
  in
  {
    name = "solver_exact";
    doc = "Solver dispatch vs the exact chromatic number on small instances";
    generate;
    check;
  }

(* --- engine ----------------------------------------------------------------- *)

(* Side channel for the engine oracle's flight dump: the last failing
   check leaves its session's (jsonl, chrome) renderings here, and the
   fuzz driver collects them right after a sequential (re-)check, so the
   dump always matches the reproducer it is attached to.  Racy under
   parallel waves by design — only the sequential post-shrink re-check
   reads it. *)
let flight_box : (string * string) option ref = ref None

let take_flight () =
  let v = !flight_box in
  flight_box := None;
  v

let stash_flight sess =
  let fl = Engine.flight sess in
  flight_box :=
    Some (Wl_obs.Flight.to_jsonl fl, Wl_obs.Flight.to_chrome fl)

let engine =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 12 0.25 in
    let inst = Path_gen.random_instance rng dag 5 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:12
    in
    Subject.make ~ops inst
  in
  let check (s : Subject.t) =
    let sess = Engine.create s.Subject.inst in
    let compare_with_fresh step =
      let r = Engine.report sess in
      let inst = Engine.instance sess in
      let fresh = Solver.solve inst in
      if not (Assignment.is_valid inst r.Solver.assignment) then
        Some (Printf.sprintf "engine assignment invalid after op %d" step)
      else if r.Solver.n_wavelengths <> fresh.Solver.n_wavelengths then
        Some
          (Printf.sprintf
             "engine reported %d wavelengths, fresh solve %d, after op %d"
             r.Solver.n_wavelengths fresh.Solver.n_wavelengths step)
      else if r.Solver.optimal <> fresh.Solver.optimal then
        Some (Printf.sprintf "optimality flag diverged after op %d" step)
      else
        match Engine.audit sess with
        | Ok () -> None
        | Error msg -> Some (Printf.sprintf "audit after op %d: %s" step msg)
    in
    let rec go step = function
      | [] -> None
      | op :: rest -> (
        ignore (Engine.submit sess [ op ]);
        match compare_with_fresh step with
        | Some _ as failure -> failure
        | None -> go (step + 1) rest)
    in
    let result =
      match compare_with_fresh (-1) with
      | Some _ as failure -> failure
      | None -> go 0 s.Subject.ops
    in
    if result <> None then stash_flight sess;
    result
  in
  {
    name = "engine";
    doc = "Warm incremental sessions vs a fresh solve after every op";
    generate;
    check;
  }

(* --- serial ----------------------------------------------------------------- *)

let serial =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_dag rng 12 0.25 in
    let inst = Path_gen.random_instance rng dag 6 in
    let ops =
      random_ops rng (Instance.graph inst)
        ~n_initial:(Instance.n_paths inst) ~count:6
    in
    Subject.make ~ops inst
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    let text = Serial.to_string inst in
    match Serial.of_string text with
    | Error e -> Some ("v2 parse failed: " ^ Error.to_string e)
    | Ok inst2 ->
      if Serial.to_string inst2 <> text then Some "v2 re-render not byte-stable"
      else if not (same_instance inst inst2) then
        Some "v2 round-trip changed the instance"
      else begin
        let v1 = Serial.to_string ~version:1 inst in
        match Serial.of_string v1 with
        | Error e -> Some ("v1 parse failed: " ^ Error.to_string e)
        | Ok inst1 ->
          if not (same_instance inst inst1) then
            Some "v1 round-trip changed the instance"
          else begin
            match Serial.of_json (Serial.to_json inst) with
            | Error e -> Some ("json parse failed: " ^ Error.to_string e)
            | Ok instj ->
              if not (same_instance inst instj) then
                Some "json round-trip changed the instance"
              else begin
                match Serial.of_json (Serial.to_json ~pretty:true inst) with
                | Error e ->
                  Some ("pretty json parse failed: " ^ Error.to_string e)
                | Ok instp ->
                  if not (same_instance inst instp) then
                    Some "pretty json round-trip changed the instance"
                  else begin
                    let ops = s.Subject.ops in
                    match Script.of_string (Script.to_string ops) with
                    | Error e ->
                      Some ("ops text parse failed: " ^ Error.to_string e)
                    | Ok ops' when ops' <> ops ->
                      Some "ops text round-trip changed the script"
                    | Ok _ -> (
                      match Script.of_json (Script.to_json ops) with
                      | Error e ->
                        Some ("ops json parse failed: " ^ Error.to_string e)
                      | Ok ops' when ops' <> ops ->
                        Some "ops json round-trip changed the script"
                      | Ok _ -> None)
                  end
              end
          end
      end
  in
  {
    name = "serial";
    doc = "Text v1/v2 and JSON round-trips of instances and op scripts";
    generate;
    check;
  }

(* --- invariants ------------------------------------------------------------- *)

let invariants =
  let generate seed =
    let rng = Prng.create seed in
    match seed mod 4 with
    | 0 ->
      let dag = Generators.gnp_no_internal_cycle rng 12 0.25 in
      Subject.make (Path_gen.random_instance rng dag 8)
    | 1 ->
      let dag = Generators.gnp_dag rng 12 0.3 in
      Subject.make (Path_gen.random_instance rng dag 8)
    | 2 ->
      let dag = Generators.upp_one_internal_cycle rng () in
      Subject.make (Instance.make dag (dedup (Path_gen.random_family rng dag 10)))
    | _ ->
      let dag = Generators.upp_internal_cycles rng ~cycles:(1 + (seed mod 3)) () in
      Subject.make (Instance.make dag (dedup (Path_gen.random_family rng dag 10)))
  in
  let check (s : Subject.t) =
    let inst = s.Subject.inst in
    let report = Solver.solve inst in
    let pi = Load.pi inst in
    let c = report.Solver.classification in
    if not (Assignment.is_valid inst report.Solver.assignment) then
      Some "invalid assignment"
    else if report.Solver.pi <> pi then
      Some
        (Printf.sprintf "report load %d, recomputed load %d" report.Solver.pi
           pi)
    else if report.Solver.n_wavelengths < pi then
      Some
        (Printf.sprintf "pi <= w violated: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else if
      c.Classify.n_internal_cycles = 0 && report.Solver.n_wavelengths <> pi
    then
      Some
        (Printf.sprintf
           "w = pi violated without internal cycle: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else if
      c.Classify.is_upp
      && Wl_conflict.Graph_props.has_k23 (Conflict_of.build inst)
    then Some "induced K_{2,3} in a UPP conflict graph (Corollary 5)"
    else if
      report.Solver.method_used = Solver.Theorem_6
      && distinct_paths inst
      && report.Solver.n_wavelengths > Theorem6.upper_bound pi
    then
      Some
        (Printf.sprintf "Theorem 6 ceiling violated: %d wavelengths, load %d"
           report.Solver.n_wavelengths pi)
    else
      match Certificate.audit inst report with
      | [] -> None
      | issue :: _ -> Some ("certificate: " ^ issue)
  in
  {
    name = "invariants";
    doc =
      "Paper invariants on mixed classes: validity, pi <= w, w = pi without \
       internal cycles, UPP K_{2,3}-freeness, Theorem 6 ceiling, certificate \
       audit";
    generate;
    check;
  }

(* --- lifted sweeps and the self-test ---------------------------------------- *)

let of_sweep (sw : Sweeps.sweep) =
  {
    name = sw.Sweeps.name;
    doc = "validation sweep " ^ sw.Sweeps.name ^ " (see Wl_validate.Sweeps)";
    generate = (fun seed -> Subject.make (sw.Sweeps.generate seed));
    check = (fun s -> sw.Sweeps.property s.Subject.inst);
  }

let selftest =
  let generate seed =
    let rng = Prng.create seed in
    let dag = Generators.gnp_no_internal_cycle rng 6 0.5 in
    Subject.make (Path_gen.random_instance rng dag 4)
  in
  let check (s : Subject.t) =
    let pi = Load.pi s.Subject.inst in
    if pi >= 2 then
      Some (Printf.sprintf "load %d >= 2 (deliberate self-test failure)" pi)
    else None
  in
  {
    name = "selftest";
    doc =
      "Deliberately false claim (load < 2) exercising the shrink pipeline; \
       not part of the default set";
    generate;
    check;
  }

let all =
  [ thm1_dsatur; solver_exact; engine; serial; invariants ]
  @ List.map of_sweep Sweeps.sweeps

let find name = List.find_opt (fun o -> o.name = name) (all @ [ selftest ])

let run oracle seed =
  match oracle.check (oracle.generate seed) with
  | None -> None
  | Some reason -> Some (seed, reason)
  | exception e -> Some (seed, Printexc.to_string e)
