lib/core/conflict_of.mli: Instance Wl_conflict
