examples/gap_gallery.ml: Array Filename Format Instance List Load Printf Replication Solver Unix Wl_core Wl_digraph Wl_netgen
