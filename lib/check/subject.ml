open Wl_digraph
open Wl_core
module Engine = Wl_engine.Engine
module Script = Wl_engine.Script

type t = {
  inst : Instance.t;
  ops : Engine.op list;
}

let make ?(ops = []) inst = { inst; ops }

type parts = {
  n_vertices : int;
  arcs : (int * int) list;
  paths : int list list;
  ops : Engine.op list;
}

let to_parts t =
  let g = Instance.graph t.inst in
  {
    n_vertices = Digraph.n_vertices g;
    arcs = Digraph.arcs g;
    paths = List.map Dipath.vertices (Instance.paths_list t.inst);
    ops = t.ops;
  }

let of_parts p =
  if p.n_vertices < 0 then None
  else
    match Digraph.of_arcs p.n_vertices p.arcs with
    | exception Invalid_argument _ -> None
    | g -> (
      match Instance.of_vertex_seqs g p.paths with
      | Error _ -> None
      | Ok inst -> Some { inst; ops = p.ops })

let n_vertices t = Digraph.n_vertices (Instance.graph t.inst)
let n_paths t = Instance.n_paths t.inst
let n_ops (t : t) = List.length t.ops

let wl_string (t : t) = Serial.to_string t.inst

let ops_string (t : t) =
  if t.ops = [] then None else Some (Script.to_string t.ops)

let equal (a : t) (b : t) = wl_string a = wl_string b && a.ops = b.ops

let write ~prefix t =
  let wl = prefix ^ ".wl" in
  Serial.write_file wl t.inst;
  match ops_string t with
  | None -> [ wl ]
  | Some _ ->
    let ops = prefix ^ ".wlops" in
    Script.write_file ops t.ops;
    [ wl; ops ]

let ops_sibling wl =
  if Filename.check_suffix wl ".wl" then Filename.chop_suffix wl ".wl" ^ ".wlops"
  else wl ^ ".wlops"

let read ~wl =
  match Serial.read_file wl with
  | Error e -> Error e
  | Ok inst ->
    let ops_file = ops_sibling wl in
    if Sys.file_exists ops_file then
      match Script.read_file ops_file with
      | Error e -> Error e
      | Ok ops -> Ok { inst; ops }
    else Ok { inst; ops = [] }
