open Wl_digraph
module Saturating = Wl_util.Saturating

type t = {
  g : Digraph.t;
  topo : Digraph.vertex array;
  pos : int array;
  mutable arc_order : int array option;
      (* cache for [arcs_by_tail_topo]: a pure function of the dag, and
         every solver run starts by asking for it *)
}

let of_digraph g =
  match Traversal.topological_order g with
  | Some order ->
    let topo = Array.of_list order in
    let pos = Array.make (Digraph.n_vertices g) 0 in
    Array.iteri (fun i v -> pos.(v) <- i) topo;
    Ok { g; topo; pos; arc_order = None }
  | None ->
    let cycle =
      match Traversal.find_directed_cycle g with
      | Some c -> String.concat " -> " (List.map (Digraph.label g) c)
      | None -> "?"
    in
    Error (Printf.sprintf "not a DAG: directed cycle %s" cycle)

let of_digraph_exn g =
  match of_digraph g with Ok d -> d | Error msg -> invalid_arg msg

let graph d = d.g
let n_vertices d = Digraph.n_vertices d.g
let n_arcs d = Digraph.n_arcs d.g

let topological_order d = Array.copy d.topo
let topo_position d v = d.pos.(v)
let compare_topo d u v = Int.compare d.pos.(u) d.pos.(v)

let sources d =
  Array.to_list d.topo |> List.filter (fun v -> Digraph.in_degree d.g v = 0)

let sinks d =
  Array.to_list d.topo |> List.filter (fun v -> Digraph.out_degree d.g v = 0)

let longest_path_length d =
  let n = n_vertices d in
  let dist = Array.make n 0 in
  (* Process in reverse topological order: dist v = 1 + max over succ. *)
  for i = n - 1 downto 0 do
    let v = d.topo.(i) in
    List.iter
      (fun w -> if dist.(w) + 1 > dist.(v) then dist.(v) <- dist.(w) + 1)
      (Digraph.succ d.g v)
  done;
  Array.fold_left max 0 dist

let count_dipaths_from d v =
  let n = n_vertices d in
  let count = Array.make n Saturating.zero in
  count.(v) <- Saturating.one;
  for i = d.pos.(v) to n - 1 do
    let u = d.topo.(i) in
    if not (Saturating.equal count.(u) Saturating.zero) then
      List.iter
        (fun w -> count.(w) <- Saturating.add count.(w) count.(u))
        (Digraph.succ d.g u)
  done;
  count

let count_dipaths d src dst = (count_dipaths_from d src).(dst)

let some_dipath d src dst =
  if src = dst then None
  else
    match Traversal.bfs_parent_path d.g src dst with
    | None -> None
    | Some verts -> Some (Dipath.make d.g verts)

let all_dipaths_between ?(limit = 64) d src dst =
  if src = dst then []
  else begin
    let reaches_dst = Traversal.reaching_to d.g dst in
    let out = ref [] in
    let found = ref 0 in
    let rec go prefix v =
      if !found < limit then
        if v = dst then begin
          incr found;
          out := Dipath.make d.g (List.rev (v :: prefix)) :: !out
        end
        else
          List.iter
            (fun w -> if reaches_dst.(w) then go (v :: prefix) w)
            (Digraph.succ d.g v)
    in
    go [] src;
    List.rev !out
  end

let arcs_by_tail_topo d =
  let order =
    match d.arc_order with
    | Some order -> order
    | None ->
      (* Counting sort on tail positions (stable, so arc ids stay ascending
         within a position).  The polymorphic tuple sort this replaces
         dominated entire Theorem 1 solve runs at n >= 1000. *)
      let m = n_arcs d and n = n_vertices d in
      let cnt = Array.make (n + 1) 0 in
      for a = 0 to m - 1 do
        let p = d.pos.(Digraph.arc_src d.g a) in
        cnt.(p + 1) <- cnt.(p + 1) + 1
      done;
      for p = 1 to n do
        cnt.(p) <- cnt.(p) + cnt.(p - 1)
      done;
      let out = Array.make m 0 in
      for a = 0 to m - 1 do
        let p = d.pos.(Digraph.arc_src d.g a) in
        out.(cnt.(p)) <- a;
        cnt.(p) <- cnt.(p) + 1
      done;
      d.arc_order <- Some out;
      out
  in
  (* Callers own their copy; the cache must stay pristine. *)
  Array.copy order
