(** OpenMetrics text exposition of metrics snapshots — and its validator.

    {!render} maps a {!Metrics.snapshot} (plus ad-hoc gauges and
    standalone {!Hdr} snapshots, e.g. per-session engine latencies) onto
    the OpenMetrics text format:

    - instrument names sanitize to [wl_]-prefixed metric names
      ([solver.ns.thm1] → [wl_solver_ns_thm1]), the original name kept in
      the [# HELP] line;
    - counters become [counter] families ([_total] sample);
    - power-of-two {!Metrics.histogram}s become [histogram] families with
      cumulative [le] buckets;
    - latency instruments and HDR snapshots become [summary] families
      with [quantile] labels (0.5/0.9/0.99/0.999, values in ns);
    - gauges are emitted verbatim;
    - the document ends with [# EOF].

    {!validate} is a dependency-free parser for the same dialect, strict
    enough to catch shape mistakes (samples without a [# TYPE], suffixes
    illegal for the declared type, garbage after [# EOF]) — it backs
    [wl metrics-check] and the CI smoke over [wl stress --metrics-out]. *)

val render :
  ?gauges:(string * float) list ->
  ?latencies:(string * Hdr.snapshot) list ->
  (string * Metrics.instrument) list ->
  string
(** Families are emitted sorted by metric name; gauges and latencies are
    merged into the same namespace as the snapshot instruments. *)

type stats = { families : int; samples : int }

val validate : string -> (stats, string) result
(** Check a full exposition document.  Errors carry the 1-based line. *)
