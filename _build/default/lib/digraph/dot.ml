let palette =
  [|
    "#e41a1c"; "#377eb8"; "#4daf4a"; "#984ea3"; "#ff7f00"; "#a65628";
    "#f781bf"; "#17becf"; "#bcbd22"; "#666666";
  |]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let header name = Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n" (escape name)

let node_lines g =
  let buf = Buffer.create 256 in
  Digraph.iter_vertices
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (Digraph.label g v))))
    g;
  Buffer.contents buf

let of_digraph ?(name = "G") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header name);
  Buffer.add_string buf (node_lines g);
  Digraph.iter_arcs
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_colored_paths ?(name = "G") g paths =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header name);
  Buffer.add_string buf (node_lines g);
  (* Arcs not used by any path are drawn gray. *)
  let used = Hashtbl.create 64 in
  List.iter
    (fun (p, color) ->
      List.iter
        (fun a ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt used a) in
          Hashtbl.replace used a (color :: prev))
        (Dipath.arcs p))
    paths;
  Digraph.iter_arcs
    (fun a u v ->
      match Hashtbl.find_opt used a with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [color=\"#cccccc\"];\n" u v)
      | Some colors ->
        let pens =
          List.rev_map
            (fun c -> palette.(c mod Array.length palette))
            colors
          |> String.concat ":"
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [color=\"%s\", penwidth=1.6];\n" u v pens))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
