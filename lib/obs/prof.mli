(** Per-span GC/allocation telemetry.

    While enabled, every {!Trace.with_span} additionally measures the
    garbage-collector work done inside it — minor words via
    [Gc.minor_words] deltas (exact even between collections, which
    [Gc.quick_stat]'s field is not on OCaml 5.1), major/promoted words
    and minor/major collection counts via [Gc.quick_stat] deltas — plus
    the span's {e self-time} (duration minus direct children).  The
    figures are

    {ul
    {- attached to the span's trace event as extra args
       ([gc.minor_w], [gc.major_w], [gc.promoted_w], [gc.minor_gcs],
       [gc.major_gcs], [self_us]);}
    {- aggregated per span name, readable via {!snapshot} /
       {!pp_summary};}
    {- mirrored into [prof.<span>.<field>] {!Metrics} counters, so they
       join Metrics snapshots and the bench counter embeddings.}}

    Deltas are inclusive of child spans, like durations; [self_us] is
    the exclusive figure.  Profiling requires an active trace sink
    (probes only fire inside enabled spans) — use {!Trace.discard} when
    only the aggregates are wanted — and the Metrics mirror additionally
    requires {!Metrics.set_enabled}.  Enable before spawning worker
    domains.

    Attribution is alloc-exact for the measured span: readings are
    pushed/popped through preallocated per-domain arrays and capture
    order excludes the probe's own [Gc.quick_stat] record, so a span
    whose body allocates nothing reports [gc.minor_w = 0] even under
    profiling.  The probe's own small cost (and the span harness's) is
    charged to the {e enclosing} span instead.  Still keep profiling
    off while timing hot paths — the readings cost time, not words. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero_gc : gc_delta

type row = {
  span : string;
  calls : int;
  total_us : float;  (** summed span durations (inclusive) *)
  self_us : float;  (** summed self-times (exclusive of children) *)
  gc : gc_delta;  (** summed GC deltas (inclusive) *)
}

val enable : unit -> unit
(** Install the GC probe on {!Trace}.  Idempotent. *)

val disable : unit -> unit
(** Remove the probe and stop aggregating (accumulated rows survive
    until {!reset}). *)

val enabled : unit -> bool

val snapshot : unit -> row list
(** Aggregated rows for every profiled span name, sorted by name. *)

val reset : unit -> unit
(** Drop all aggregated rows (the Metrics mirror is zeroed separately,
    by {!Metrics.reset}). *)

val pp_summary : Format.formatter -> unit -> unit
(** Table of {!snapshot}: span, calls, total/self ms, minor words,
    minor/major collections. *)

(** {1 Parallel utilization}

    Busy/idle rollup for {!Wl_util.Parallel.map_array}, computed from
    the [parallel.*] metrics the mapper records. *)

type parallel_rollup = {
  maps : int;  (** map_array calls that actually went parallel *)
  workers_spawned : int;
  wall_ns : int;  (** summed wall-clock of the parallel sections *)
  busy_ns : int;  (** summed per-domain busy time (caller included) *)
  utilization : float;
      (** [busy / (wall * avg live domains)], clamped to [\[0, 1\]]
          (zero-duration spans and 1-domain runs would otherwise read as
          over 100%) — 1.0 means every domain computed for the whole
          parallel section; low values mean domains idled behind
          stragglers or spawn overhead *)
}

val parallel_rollup : unit -> parallel_rollup option
(** [None] until a map has gone parallel with Metrics enabled. *)
