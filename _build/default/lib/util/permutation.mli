(** Permutations of [0 .. n-1] and their cycle structure.

    Theorem 6 of the paper analyses the permutation obtained by composing the
    wavelength assignments of the two halves of the split arc; its cycle type
    (how many fixed points, transpositions, longer cycles) determines how many
    extra colors the re-gluing needs.  This module provides exactly that
    bookkeeping. *)

type t = private int array
(** A permutation represented by its image array: [p.(i)] is the image of
    [i].  The representation is validated at construction. *)

val of_array : int array -> t
(** Validates that the argument is a bijection of [0..n-1]. Raises
    [Invalid_argument] otherwise. *)

val identity : int -> t

val size : t -> int

val apply : t -> int -> int

val inverse : t -> t

val compose : t -> t -> t
(** [compose p q] maps [i] to [p (q i)]. *)

val of_two_bijections : int array -> int array -> t
(** [of_two_bijections f g] where [f] and [g] are bijections from indices
    [0..n-1] onto the same set of [n] values (not necessarily [0..n-1]):
    returns the permutation [sigma] of the *value set positions* with
    [sigma(f i) = g i], expressed on the values' ranks.  Concretely, values
    are ranked by their order of first appearance in [f];
    raises [Invalid_argument] if [f] or [g] is not injective or their value
    sets differ. *)

val cycles : t -> int list list
(** Cycle decomposition; each cycle is listed starting from its smallest
    element, cycles sorted by that element.  Fixed points appear as
    singleton cycles. *)

val cycle_type : t -> (int * int) list
(** [(length, multiplicity)] pairs, sorted by length: e.g. the identity on 4
    points has cycle type [[(1,4)]]. *)

val pp : Format.formatter -> t -> unit
