(* CI-scale runs of the validation sweeps (bin/stress runs them at 30k+
   seeds; here a few hundred each keep `dune runtest` snappy while still
   exercising the full generator/algorithm/checker pipeline). *)

open Helpers
module Sweeps = Wl_validate.Sweeps
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

let sweep_case name case =
  Alcotest.test_case name `Slow (fun () ->
      match Sweeps.run ~seeds:300 case with
      | [] -> ()
      | (seed, reason) :: _ as failures ->
        Alcotest.failf "%d failures; first: seed %d, %s" (List.length failures)
          seed reason)

let test_failure_reporting () =
  (* A deliberately failing case reports every seed with its reason. *)
  let broken seed = if seed mod 2 = 0 then Some "even seed" else None in
  let failures = Sweeps.run ~seeds:10 broken in
  check_int "five failures" 5 (List.length failures);
  check "reasons carried" true
    (List.for_all (fun (_, r) -> r = "even seed") failures);
  (* Exceptions are captured as failures, not crashes. *)
  let raising _ = failwith "boom" in
  check_int "exceptions counted" 3 (List.length (Sweeps.run ~seeds:3 raising))

let test_failure_ordering () =
  (* Failures come back in ascending seed order whatever the domain
     count — "first failure" is part of the contract. *)
  let broken seed = if seed mod 7 < 3 then Some "fail" else None in
  let expected =
    List.filter (fun s -> s mod 7 < 3) (List.init 100 Fun.id)
  in
  List.iter
    (fun domains ->
      let failures = Sweeps.run ~domains ~seeds:100 broken in
      check
        (Printf.sprintf "sorted seeds (%d domains)" domains)
        true
        (List.map fst failures = expected))
    [ 1; 2; 4 ]

let test_instrumentation () =
  (* [instrument] must account every seed and failure: the counters match
     the returned failure list exactly, the latency histogram sees every
     seed, and each failure emits one [sweep.<name>.failure] instant
     carrying its seed. *)
  let broken seed = if seed mod 3 = 0 then Some "mod3" else None in
  let case = Sweeps.instrument "testcase" broken in
  Metrics.reset ();
  Metrics.set_enabled true;
  let sink = Trace.memory () in
  Trace.set_sink sink;
  let failures = Sweeps.run ~domains:2 ~seeds:10 case in
  Trace.clear ();
  Metrics.set_enabled false;
  let counter name =
    Option.value ~default:0 (Metrics.find_counter ("sweep.testcase." ^ name))
  in
  check_int "failures returned" 4 (List.length failures);
  check_int "seeds counter" 10 (counter "seeds");
  check_int "failures counter" (List.length failures) (counter "failures");
  (match Metrics.find_latency "sweep.testcase.ns" with
  | None -> Alcotest.fail "latency summary missing"
  | Some h -> check_int "latency observations" 10 h.Wl_obs.Hdr.count);
  let events = Trace.events sink in
  let instant_seeds =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.instant && e.Trace.name = "sweep.testcase.failure" then
          match List.assoc_opt "seed" e.Trace.args with
          | Some (Trace.Int s) -> Some s
          | _ -> None
        else None)
      events
    |> List.sort compare
  in
  check "one instant per failure, seeds matching" true
    (instant_seeds = List.map fst failures);
  let spans =
    List.filter
      (fun (e : Trace.event) ->
        (not e.Trace.instant) && e.Trace.name = "sweep.testcase")
      events
  in
  check_int "one span per seed" 10 (List.length spans);
  Metrics.reset ()

let suite =
  [
    ( "sweeps",
      [
        Alcotest.test_case "failure reporting" `Quick test_failure_reporting;
        Alcotest.test_case "failure ordering across domains" `Quick
          test_failure_ordering;
        Alcotest.test_case "instrumentation accounting" `Quick
          test_instrumentation;
      ]
      @ List.map (fun (name, case) -> sweep_case name case) Sweeps.all );
  ]
