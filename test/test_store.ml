(* Bench trajectory store: summary statistics, the regression gate on
   synthetic histories, JSONL round-trips, the /2 legacy reader, and the
   dashboard's well-formedness check. *)

open Helpers
module Store = Wl_obs.Store
module Report = Wl_bench.Report
module Jsonx = Wl_json.Jsonx

let check_float = Alcotest.(check (float 1e-9))

(* --- summary statistics ---------------------------------------------------- *)

let test_summarize () =
  let s = Store.summarize [ 3.; 1.; 2. ] in
  check_float "median of 3" 2. s.Store.median_ns;
  check_float "mad of 3" 1. s.Store.mad_ns;
  check_int "runs" 3 s.Store.runs;
  (* An outlier moves neither the median nor the MAD much. *)
  let s = Store.summarize [ 1.; 2.; 3.; 4.; 100. ] in
  check_float "median robust to outlier" 3. s.Store.median_ns;
  check_float "mad robust to outlier" 1. s.Store.mad_ns;
  check "cv positive on spread" true (s.Store.cv > 0.);
  let s = Store.summarize [ 5. ] in
  check_float "single-sample median" 5. s.Store.median_ns;
  check_float "single-sample mad" 0. s.Store.mad_ns;
  match Store.summarize [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "summarize [] should raise"

(* --- gate on synthetic trajectories ---------------------------------------- *)

let point ?(mad = 0.) name median =
  {
    Store.name;
    params = [];
    extras = [];
    sample = { Store.median_ns = median; mad_ns = mad; cv = 0.; runs = 7 };
    baseline_ns = None;
    counters = [];
  }

let entry ?(rev = "cafe00") pts =
  Store.make ~rev ~timestamp:"2026-08-06T00:00:00Z" ~domains:1 pts

let verdict_of cmp name =
  match
    List.find_opt (fun v -> v.Store.bench = name) cmp.Store.verdicts
  with
  | Some v -> v.Store.verdict
  | None -> Alcotest.failf "no verdict for %s" name

let test_gate_catches_drift () =
  (* Five quiet runs at ~100ns, then the current run is 2x slower: the
     gate must flag it even though each historical step was tiny. *)
  let history =
    List.map (fun m -> entry [ point ~mad:1. "x" m ]) [ 100.; 101.; 99.; 100.; 100. ]
  in
  let cmp = Store.compare ~history (entry [ point ~mad:1. "x" 200. ]) in
  check "regression flagged" true (verdict_of cmp "x" = Store.Regression);
  check_int "regressions counted" 1 cmp.Store.regressions;
  (* A 2x speedup is flagged the other way, not silently blessed. *)
  let cmp = Store.compare ~history (entry [ point ~mad:1. "x" 50. ]) in
  check "improvement flagged" true (verdict_of cmp "x" = Store.Improvement)

let test_gate_tolerates_noise () =
  (* Noisy history: the MAD-widened tolerance must absorb swings of the
     same magnitude as the historical scatter. *)
  let history =
    List.map (fun m -> entry [ point ~mad:8. "n" m ]) [ 100.; 120.; 90.; 110.; 95. ]
  in
  let cmp = Store.compare ~history (entry [ point ~mad:8. "n" 118. ]) in
  check "within historical scatter is stable" true
    (verdict_of cmp "n" = Store.Stable);
  check_int "no regressions" 0 cmp.Store.regressions

let test_gate_new_and_single () =
  let history = [ entry [ point "old" 100. ] ] in
  let cmp =
    Store.compare ~history (entry [ point "old" 103.; point "fresh" 50. ])
  in
  check "unknown bench is New_bench" true
    (verdict_of cmp "fresh" = Store.New_bench);
  check "known bench still judged" true (verdict_of cmp "old" = Store.Stable);
  (* Single-point history: MAD of one median is 0, so the percentage
     floor alone decides — no crash, still catches a big jump. *)
  let cmp = Store.compare ~history (entry [ point "old" 150. ]) in
  check "single-point baseline still gates" true
    (verdict_of cmp "old" = Store.Regression);
  (* Empty history: everything is new. *)
  let cmp = Store.compare ~history:[] (entry [ point "old" 100. ]) in
  check "empty history -> all new" true
    (verdict_of cmp "old" = Store.New_bench)

let test_gate_window () =
  (* Ancient slowness outside the window must not excuse a current
     regression against the recent baseline. *)
  let history =
    List.map (fun m -> entry [ point "w" m ])
      [ 500.; 500.; 100.; 100.; 100.; 100.; 100. ]
  in
  let cmp = Store.compare ~window:5 ~history (entry [ point "w" 200. ]) in
  check "window drops ancient entries" true
    (verdict_of cmp "w" = Store.Regression)

(* --- JSONL round-trip ------------------------------------------------------ *)

let rich_entry () =
  Store.make ~rev:"abc1234" ~timestamp:"2026-08-06T12:00:00Z" ~domains:4
    ~note:"unit test"
    ~extra:[ ("sweep_trajectory", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Int 2 ]) ]
    [
      {
        Store.name = "thm1/color/n=120";
        params = [ ("n", 120); ("k", 90) ];
        extras = [ ("warm_hit_rate", 0.5) ];
        sample =
          { Store.median_ns = 1234.5; mad_ns = 10.25; cv = 0.031; runs = 7 };
        baseline_ns = Some 2000.;
        counters =
          [
            ("solver.kempe_cascades", Jsonx.Int 17);
            ( "parallel.map_wall_ns",
              Jsonx.Obj
                [
                  ("count", Jsonx.Int 3);
                  ("sum", Jsonx.Int 900);
                  ("min", Jsonx.Int 100);
                  ("max", Jsonx.Int 500);
                ] );
          ];
      };
    ]

let check_entry_eq msg (a : Store.entry) (b : Store.entry) =
  check (msg ^ ": rev") true (a.Store.rev = b.Store.rev);
  check (msg ^ ": timestamp") true (a.Store.timestamp = b.Store.timestamp);
  check_int (msg ^ ": domains") a.Store.domains b.Store.domains;
  check (msg ^ ": note") true (a.Store.note = b.Store.note);
  check (msg ^ ": extra") true (a.Store.extra = b.Store.extra);
  check_int (msg ^ ": points") (List.length a.Store.points)
    (List.length b.Store.points);
  List.iter2
    (fun (p : Store.point) (q : Store.point) ->
      check (msg ^ ": point name") true (p.Store.name = q.Store.name);
      check (msg ^ ": params") true (p.Store.params = q.Store.params);
      check (msg ^ ": extras") true (p.Store.extras = q.Store.extras);
      check (msg ^ ": sample") true (p.Store.sample = q.Store.sample);
      check (msg ^ ": baseline") true (p.Store.baseline_ns = q.Store.baseline_ns);
      check (msg ^ ": counters") true (p.Store.counters = q.Store.counters))
    a.Store.points b.Store.points

let test_json_round_trip () =
  let e = rich_entry () in
  match Store.of_json (Store.to_json e) with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok e' ->
    check_entry_eq "to_json/of_json" e e';
    (* Byte-stable fixpoint: serializing the reparsed entry reproduces
       the exact bytes — the golden property the trajectory file relies
       on for clean diffs. *)
    let s1 = Jsonx.to_string (Store.to_json e) in
    let s2 = Jsonx.to_string (Store.to_json e') in
    Alcotest.(check string) "golden fixpoint" s1 s2

let test_jsonl_append_load () =
  let path = Filename.temp_file "wl_store_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let e1 = rich_entry () in
      let e2 = entry ~rev:"beef01" [ point "x" 42. ] in
      Store.append path e1;
      Store.append path e2;
      match Store.load path with
      | Error m -> Alcotest.failf "load failed: %s" m
      | Ok [ r1; r2 ] ->
        check_entry_eq "jsonl first" e1 r1;
        check_entry_eq "jsonl second" e2 r2
      | Ok l -> Alcotest.failf "expected 2 entries, got %d" (List.length l))

let test_load_missing_and_garbage () =
  (match Store.load "/nonexistent/wl_trajectory.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should be Error");
  let path = Filename.temp_file "wl_store_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema\":\"wavelength-bench-core/3\"}\nnot json\n";
      close_out oc;
      match Store.load path with
      | Error m ->
        check "garbage line located" true
          (String.length m > 0
          && String.sub m 0 (min 5 (String.length m)) = "line ")
      | Ok _ -> Alcotest.fail "garbage line should be Error")

(* --- /2 legacy reader ------------------------------------------------------ *)

let legacy_v2 =
  {|{
  "schema": "wavelength-bench-core/2",
  "command": "bench/main.exe -- perf --json",
  "benches": [
    {
      "name": "thm1/color/n=400",
      "n": 400,
      "ns_per_op": 9000.0,
      "baseline_ns_per_op": 15000.0,
      "speedup": 1.66,
      "warm_hit_rate": 0.75,
      "counters": { "solver.kempe_cascades": 3 }
    }
  ]
}|}

let test_legacy_v2_reader () =
  match Jsonx.parse legacy_v2 with
  | Error m -> Alcotest.failf "fixture parse: %s" m
  | Ok j -> (
    match Store.of_json j with
    | Error m -> Alcotest.failf "legacy reader: %s" m
    | Ok e ->
      (match e.Store.points with
      | [ p ] ->
        check "legacy name" true (p.Store.name = "thm1/color/n=400");
        check_float "ns_per_op becomes median" 9000. p.Store.sample.Store.median_ns;
        check_float "legacy mad is 0" 0. p.Store.sample.Store.mad_ns;
        check_int "legacy runs is 1" 1 p.Store.sample.Store.runs;
        check "baseline carried" true (p.Store.baseline_ns = Some 15000.);
        check "int param lifted" true (List.mem_assoc "n" p.Store.params);
        check "float extra lifted" true
          (List.mem_assoc "warm_hit_rate" p.Store.extras);
        check "speedup dropped (derivable)" true
          (not (List.mem_assoc "speedup" p.Store.extras));
        check "counters kept" true
          (p.Store.counters = [ ("solver.kempe_cascades", Jsonx.Int 3) ])
      | l -> Alcotest.failf "expected 1 legacy point, got %d" (List.length l));
      check "command preserved in extra" true
        (List.mem_assoc "command" e.Store.extra))

(* --- dashboard well-formedness --------------------------------------------- *)

let test_html_report_check () =
  let history =
    [
      entry ~rev:"aaa111" [ point "thm1/color/n=120" 100.; point "load/pi/n=120" 50. ];
      entry ~rev:"bbb222" [ point "thm1/color/n=120" 104.; point "load/pi/n=120" 49. ];
    ]
  in
  let html = Report.html history in
  (match Report.check_html ~history html with
  | Ok n -> check_int "both benches rendered" 2 n
  | Error m -> Alcotest.failf "well-formed report rejected: %s" m);
  (* A truncated document must fail the check. *)
  let broken = String.sub html 0 (String.length html / 2) in
  (match Report.check_html ~history broken with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated report accepted");
  (* Inline data may not terminate the script tag early. *)
  check "</ escaped in embedded JSON" true
    (not
       (let tag = "</scr" in
        let n = String.length html and m = String.length tag in
        let rec scan i hits =
          if i + m > n then hits
          else if String.sub html i m = tag then scan (i + 1) (hits + 1)
          else scan (i + 1) hits
        in
        (* exactly one real closing tag *)
        scan 0 0 <> 1))

let test_terminal_report_renders () =
  let history =
    [
      entry ~rev:"aaa111" [ point ~mad:2. "x" 100. ];
      entry ~rev:"bbb222" [ point ~mad:2. "x" 101. ];
      entry ~rev:"ccc333" [ point ~mad:2. "x" 250. ];
    ]
  in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.pp_terminal fmt history;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  check "terminal report mentions bench" true
    (String.length out > 0
    &&
    let rec contains i =
      i + 1 <= String.length out
      && (String.sub out i 1 = "x" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "summarize median/MAD/CV" `Quick test_summarize;
        Alcotest.test_case "gate catches drift both ways" `Quick
          test_gate_catches_drift;
        Alcotest.test_case "gate tolerates historical noise" `Quick
          test_gate_tolerates_noise;
        Alcotest.test_case "gate: new benches and thin history" `Quick
          test_gate_new_and_single;
        Alcotest.test_case "gate respects the window" `Quick test_gate_window;
        Alcotest.test_case "to_json/of_json round-trip + golden fixpoint"
          `Quick test_json_round_trip;
        Alcotest.test_case "JSONL append/load round-trip" `Quick
          test_jsonl_append_load;
        Alcotest.test_case "load: missing file and garbage lines" `Quick
          test_load_missing_and_garbage;
        Alcotest.test_case "/2 legacy reader" `Quick test_legacy_v2_reader;
        Alcotest.test_case "HTML report renders and checks" `Quick
          test_html_report_check;
        Alcotest.test_case "terminal report renders" `Quick
          test_terminal_report_renders;
      ] );
  ]
