(* WDM wavelength assignment on a synthetic optical backbone.

   The paper's motivating application (Section 1): requests on an optical
   network are routed as dipaths, then assigned wavelengths so that dipaths
   sharing a fiber get different wavelengths.  This example builds a
   layered backbone (the paper is a theory paper and ships no workload, so
   the topology and traffic are synthetic — see DESIGN.md), compares the
   three routing policies, and shows how the routing's load directly sets
   the wavelength count on internal-cycle-free networks.

   Run with: dune exec examples/optical_network.exe [seed] *)

open Wl_core
module Generators = Wl_netgen.Generators
module Prng = Wl_util.Prng

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2026 in
  let rng = Prng.create seed in
  let dense = Generators.backbone rng ~pops:4 ~levels:6 in
  (* A second design for the same PoPs with the internal cycles engineered
     away (the paper's Theorem 1 class: the links between transit PoPs form
     no oriented cycle). *)
  let sparse = Generators.without_internal_cycle rng dense in

  let evaluate dag name route requests =
    match Routing.instance_of dag route requests with
    | Error e ->
      Format.printf "  %-10s routing failed: %s@." name (Error.to_string e)
    | Ok inst ->
      let report = Solver.solve inst in
      Format.printf
        "  %-10s load pi = %2d   wavelengths = %2d   method = %s   optimal = %b@."
        name report.Solver.pi report.Solver.n_wavelengths
        (Solver.method_name report.Solver.method_used)
        report.Solver.optimal
  in
  let run title dag =
    Format.printf "%s: %a@." title Wl_dag.Classify.pp
      (Wl_dag.Classify.classify dag);
    let requests = Routing.random_requests rng dag 60 in
    Format.printf "  %d random requests@." (List.length requests);
    evaluate dag "shortest" Routing.route_shortest requests;
    evaluate dag "min-load" Routing.route_min_load requests;
    Format.printf "@."
  in
  run "dense backbone" dense;
  run "cycle-free backbone" sparse;
  Format.printf
    "On the cycle-free design Theorem 1 guarantees w = pi for every@.\
     routing, so minimizing the load is the whole RWA battle: the@.\
     min-load router needs exactly as many fewer wavelengths as it sheds@.\
     load.  On the dense design the solver falls back to conflict-graph@.\
     coloring and optimality is no longer automatic.@."
