lib/digraph/svg.mli: Digraph Dipath
