module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Observability: one map-level counter set plus per-domain busy/chunk
   figures, so a trace of a slow sweep shows where the wall-clock went —
   in particular whether extra domains did useful work or just paid the
   spawn + minor-GC-barrier tax (the BENCH_core.json 2-domain anomaly). *)
let m_maps = Metrics.counter "parallel.maps"
let m_items = Metrics.counter "parallel.items"
let m_chunks = Metrics.counter "parallel.chunks"
let m_seq_fallbacks = Metrics.counter "parallel.seq_fallbacks"
let m_domains_clamped = Metrics.counter "parallel.domains_clamped"
let m_workers = Metrics.counter "parallel.workers_spawned"
let h_domain_busy = Metrics.histogram "parallel.domain_busy_ns"
let h_probe_est = Metrics.histogram "parallel.probe_estimate_ns"
let h_map_wall = Metrics.histogram "parallel.map_wall_ns"

(* Below this projected total runtime, spawning extra domains costs more
   than it buys: each spawn is ~100µs+ of setup, and every minor GC then
   needs a stop-the-world handshake across all running domains — ruinous
   when cores are scarce.  2 ms is several times the worst combined
   overhead we have measured, and workloads that small finish instantly
   either way. *)
let seq_threshold_ns = 2_000_000

(* Dynamic chunking: domains claim fixed-size index blocks off a shared
   atomic counter, so an unlucky domain stuck on slow items no longer
   serializes the whole map (the old static split did).  Each claimed block
   is computed into a private buffer — no domain ever writes into memory
   another domain touches, which also kills the false sharing (and the
   per-element boxing) of the old ['a option array] scheme.  Results are
   blitted into the output by index after the join, so the outcome is
   deterministic and identical for any domain count.

   Two guards keep small workloads fast: the requested domain count is
   clamped to [Domain.recommended_domain_count] (domains beyond the core
   count only add GC-barrier contention — the measured cause of the
   2-domains-slower-than-1 sweep regression), and the first block is timed
   on the calling domain before any spawn, falling back to a fully
   sequential map when the whole workload projects under
   {!seq_threshold_ns}. *)
let map_array ?domains f input =
  let n = Array.length input in
  let requested = match domains with Some d -> d | None -> default_domains () in
  let d = min requested (Domain.recommended_domain_count ()) in
  if d < requested then Metrics.incr m_domains_clamped;
  Metrics.incr m_maps;
  Metrics.add m_items n;
  if d <= 1 || n <= 1 then begin
    if requested > 1 && n > 1 then Metrics.incr m_seq_fallbacks;
    Array.map f input
  end
  else begin
    let d = min d n in
    let block = max 1 (n / (d * 8)) in
    (* Probe: run the first block sequentially and project the total. *)
    let t0 = Clock.now_ns () in
    let probe_len = min block n in
    let probe = Array.init probe_len (fun i -> f input.(i)) in
    let elapsed = Clock.now_ns () - t0 in
    let estimate = elapsed * n / probe_len in
    Metrics.observe h_probe_est estimate;
    if estimate < seq_threshold_ns then begin
      Metrics.incr m_seq_fallbacks;
      Metrics.incr m_chunks;
      Array.init n (fun i -> if i < probe_len then probe.(i) else f input.(i))
    end
    else begin
      let wall0 = Clock.now_ns () in
      let next = Atomic.make probe_len in
      let worker () =
        let busy0 = Clock.now_ns () in
        let chunks = ref 0 in
        let rec claim acc =
          let lo = Atomic.fetch_and_add next block in
          if lo >= n then acc
          else begin
            incr chunks;
            let len = min block (n - lo) in
            let buf = Array.init len (fun i -> f input.(lo + i)) in
            claim ((lo, buf) :: acc)
          end
        in
        let acc = claim [] in
        Metrics.add m_chunks !chunks;
        Metrics.observe h_domain_busy (Clock.now_ns () - busy0);
        acc
      in
      let traced_worker () =
        if Trace.enabled () then Trace.with_span "parallel.worker" worker
        else worker ()
      in
      Metrics.add m_workers (d - 1);
      let handles = List.init (d - 1) (fun _ -> Domain.spawn traced_worker) in
      let mine = try Ok (worker ()) with e -> Error e in
      let rest =
        List.map (fun h -> try Ok (Domain.join h) with e -> Error e) handles
      in
      let chunks =
        List.concat_map
          (function Ok c -> c | Error e -> raise e)
          (mine :: rest)
      in
      let out = Array.make n probe.(0) in
      Array.blit probe 0 out 0 probe_len;
      List.iter
        (fun (lo, buf) -> Array.blit buf 0 out lo (Array.length buf))
        chunks;
      Metrics.observe h_map_wall (Clock.now_ns () - wall0);
      out
    end
  end

let map_array ?domains f input =
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("items", Trace.Int (Array.length input)) ]
      "parallel.map" (fun () -> map_array ?domains f input)
  else map_array ?domains f input

let init ?domains n f = map_array ?domains f (Array.init n Fun.id)

let for_all ?domains p input =
  Array.for_all Fun.id (map_array ?domains p input)

let count ?domains p input =
  Array.fold_left
    (fun acc b -> if b then acc + 1 else acc)
    0
    (map_array ?domains p input)
