test/test_theorem1.ml: Alcotest Array Assignment Digraph Dipath Helpers Instance List Load Theorem1 Theorem2 Theorem6 Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
