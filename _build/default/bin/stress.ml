(* stress — large-scale randomized validation sweeps, in parallel.

   Each sweep (see Wl_validate.Sweeps) re-validates one of the paper's
   theorems over thousands of generated instances; failures print the
   offending seed so they can be replayed.  Sweeps run chunk-parallel over
   OCaml 5 domains.

   Run with: dune exec bin/stress.exe -- [--seeds N] [--domains D] [SWEEP..]
   Sweeps: thm1 thm2 thm6 thm6multi casec grooming all (default: all) *)

module Sweeps = Wl_validate.Sweeps
module Parallel = Wl_util.Parallel

let run_sweep ~seeds ~domains name case =
  let t0 = Unix.gettimeofday () in
  let failures = Sweeps.run ~domains ~seeds case in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-10s %6d instances %8.2fs %8.0f/s   %s\n%!" name seeds dt
    (float_of_int seeds /. dt)
    (match failures with
    | [] -> "all ok"
    | (seed, reason) :: _ ->
      Printf.sprintf "%d FAILURES (first: seed %d, %s)" (List.length failures)
        seed reason);
  failures = []

let () =
  let seeds = ref 2000 and domains = ref (Parallel.default_domains ()) in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
      seeds := int_of_string v;
      parse rest
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      parse rest
    | "all" :: rest -> parse rest
    | name :: rest ->
      (match List.assoc_opt name Sweeps.all with
      | Some case -> chosen := (name, case) :: !chosen
      | None ->
        prerr_endline ("stress: unknown sweep " ^ name);
        exit 2);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run = if !chosen = [] then Sweeps.all else List.rev !chosen in
  Printf.printf "stress: %d seeds per sweep, %d domains\n%!" !seeds !domains;
  let ok =
    List.for_all
      (fun (name, case) -> run_sweep ~seeds:!seeds ~domains:!domains name case)
      to_run
  in
  exit (if ok then 0 else 1)
