external monotonic_ns : unit -> int = "wl_clock_monotonic_ns" [@@noalloc]

(* Origin at module init so the ns values stay far from overflow and the
   chrome-trace timestamps start near zero. *)
let origin = monotonic_ns ()

let now_ns () = monotonic_ns () - origin
let now_us () = float_of_int (monotonic_ns () - origin) *. 1e-3
