open Wl_digraph
module Classify = Wl_dag.Classify

type issue = string

(* Independent validity check: walk every pair of family members and test
   arc-sharing directly on the dipaths (no occupancy index involved). *)
let assignment_valid_slow inst assignment =
  let ps = Instance.paths inst in
  let n = Array.length ps in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if assignment.(i) = assignment.(j) && Dipath.shares_arc ps.(i) ps.(j) then
        ok := false
    done
  done;
  !ok

(* Independent load: recount per arc from the dipaths. *)
let load_slow inst =
  let g = Instance.graph inst in
  let load = Array.make (max 1 (Digraph.n_arcs g)) 0 in
  Array.iter
    (fun p -> List.iter (fun a -> load.(a) <- load.(a) + 1) (Dipath.arcs p))
    (Instance.paths inst);
  Array.fold_left max 0 load

let audit inst (r : Solver.report) =
  let issues = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let n = Instance.n_paths inst in
  if Array.length r.Solver.assignment <> n then
    fail "assignment length %d <> family size %d"
      (Array.length r.Solver.assignment)
      n;
  if Array.length r.Solver.assignment = n then begin
    if not (assignment_valid_slow inst r.Solver.assignment) then
      fail "assignment has a monochromatic conflict";
    let used =
      Assignment.n_wavelengths (Assignment.normalize r.Solver.assignment)
    in
    if used <> r.Solver.n_wavelengths then
      fail "reported %d wavelengths, assignment uses %d" r.Solver.n_wavelengths
        used
  end;
  let pi = load_slow inst in
  if pi <> r.Solver.pi then fail "reported pi %d, recomputed %d" r.Solver.pi pi;
  if r.Solver.lower_bound < pi then
    fail "lower bound %d below the load %d" r.Solver.lower_bound pi;
  if r.Solver.n_wavelengths < r.Solver.lower_bound then
    fail "wavelengths %d below the claimed lower bound %d" r.Solver.n_wavelengths
      r.Solver.lower_bound;
  if r.Solver.optimal && r.Solver.n_wavelengths <> r.Solver.lower_bound then
    fail "claims optimality with wavelengths %d <> lower bound %d"
      r.Solver.n_wavelengths r.Solver.lower_bound;
  (* Method applicability and per-method guarantees, re-derived. *)
  let dag = Instance.dag inst in
  let cycles = Wl_dag.Internal_cycle.count_independent dag in
  let upp = Wl_dag.Upp.is_upp dag in
  (match r.Solver.method_used with
  | Solver.Theorem_1 ->
    if cycles <> 0 then fail "theorem-1 used despite %d internal cycles" cycles;
    if r.Solver.n_wavelengths <> pi then
      fail "theorem-1 must use exactly pi = %d wavelengths, used %d" pi
        r.Solver.n_wavelengths
  | Solver.Theorem_6 ->
    if not upp then fail "theorem-6 used on a non-UPP DAG";
    if cycles <> 1 then fail "theorem-6 used with %d internal cycles" cycles;
    if r.Solver.n_wavelengths > Theorem6.upper_bound pi then
      fail "theorem-6 exceeded ceil(4 pi/3): %d > %d" r.Solver.n_wavelengths
        (Theorem6.upper_bound pi)
  | Solver.Theorem_6_iterated ->
    if not upp then fail "iterated theorem-6 used on a non-UPP DAG";
    if cycles < 2 then
      fail "iterated theorem-6 used with %d internal cycles" cycles;
    if
      r.Solver.n_wavelengths
      > Bounds.theorem6_upper ~n_internal_cycles:cycles pi
    then
      fail "iterated bound exceeded: %d > %d" r.Solver.n_wavelengths
        (Bounds.theorem6_upper ~n_internal_cycles:cycles pi)
  | Solver.Exact_coloring ->
    (* Optimality claimed: cross-check against the independent exact solver
       when small enough to afford it. *)
    if n <= 16 && r.Solver.n_wavelengths <> Bounds.chromatic_exact inst then
      fail "exact coloring reported %d, chromatic number is %d"
        r.Solver.n_wavelengths (Bounds.chromatic_exact inst)
  | Solver.Heuristic -> ());
  (* Classification spot checks. *)
  let c = r.Solver.classification in
  if c.Classify.n_internal_cycles <> cycles then
    fail "classification reports %d internal cycles, recomputed %d"
      c.Classify.n_internal_cycles cycles;
  if c.Classify.is_upp <> upp then fail "classification UPP flag wrong";
  List.rev !issues

let audit_exn inst r =
  match audit inst r with
  | [] -> ()
  | issues -> failwith ("Certificate.audit: " ^ String.concat "; " issues)
