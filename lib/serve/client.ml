open Wl_core
module Digraph = Wl_digraph.Digraph
module Engine = Wl_engine.Engine
module Ctx = Wl_obs.Ctx
module Trace = Wl_obs.Trace

type transport =
  | Local of Shard.t
  | Remote of { fd : Unix.file_descr; m : Mutex.t }

type t = {
  transport : transport;
  json : bool;
  gen : Ctx.gen;  (* trace/span id source; deterministic from [seed] *)
  gen_m : Mutex.t;
  mutable closed : bool;
}

type session = { client : t; tenant : string }

type outcomes = {
  outcomes : (Proto.outcome, Error.t) result array;
  after : Proto.report;
}

let closed_error = Error.Invalid_op "client is closed"

(* Both transports run the full codec round trip — encode, frame, unframe,
   decode on each side — so a loopback client exercises exactly the bytes
   a remote one would put on a socket.  [ctx] rides the frames; the
   server side decodes it back and propagates it into the shard. *)
let call_local shard ~json ~ctx req =
  let framed =
    Trace.with_span "wire.codec"
      ~args:[ ("dir", Trace.Str "request") ]
      (fun () -> Wire.frame (Proto.encode_request ~json ~ctx req))
  in
  match Wire.unframe framed 0 with
  | Error e -> (Error e : Proto.reply)
  | Ok (payload, _) -> (
    let reply, rctx =
      match Proto.decode_request_ctx payload with
      | Error e -> ((Error e : Proto.reply), Ctx.none)
      | Ok (req, rctx) -> (Shard.call ~ctx:rctx shard req, rctx)
    in
    let framed =
      Trace.with_span "wire.codec"
        ~args:[ ("dir", Trace.Str "reply") ]
        (fun () -> Wire.frame (Proto.encode_reply ~json ~ctx:rctx reply))
    in
    match Wire.unframe framed 0 with
    | Error e -> Error e
    | Ok (payload, _) -> (
      match Proto.decode_reply payload with
      | Error e -> Error e
      | Ok reply -> reply))

let call_remote fd m ~json ~ctx req =
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () ->
      Trace.with_span "wire.roundtrip" (fun () ->
          match Wire.write fd (Proto.encode_request ~json ~ctx req) with
          | Error e -> (Error e : Proto.reply)
          | Ok () -> (
            match Wire.read fd with
            | Error e -> Error e
            | Ok None -> Error (Error.Io "connection closed by server")
            | Ok (Some payload) -> (
              match Proto.decode_reply payload with
              | Error e -> Error e
              | Ok reply -> reply))))

let dispatch t ~ctx req =
  match t.transport with
  | Local shard -> call_local shard ~json:t.json ~ctx req
  | Remote { fd; m } -> call_remote fd m ~json:t.json ~ctx req

(* A fresh span per call: a root when no trace is ambient, a child when
   the caller already runs inside one (so an app-level span groups its
   RPCs).  The generator is shared across threads, hence the lock. *)
let next_ctx t =
  Mutex.lock t.gen_m;
  let c = Ctx.child t.gen (Ctx.current ()) in
  Mutex.unlock t.gen_m;
  c

let call t req =
  if t.closed then (Error closed_error : Proto.reply)
  else if not (Trace.enabled ()) then
    (* Untraced: no context on the wire — frames stay byte-identical to
       the pre-context protocol. *)
    dispatch t ~ctx:Ctx.none req
  else begin
    let ctx = next_ctx t in
    let prev = Ctx.current () in
    Ctx.set ctx;
    Fun.protect
      ~finally:(fun () -> Ctx.set prev)
      (fun () ->
        Trace.with_span "client.call"
          ~args:[ ("verb", Trace.Str (Proto.verb_of_req req)) ]
          (fun () -> dispatch t ~ctx req))
  end

let local ?(json = false) ?(seed = 0) ?(threaded = false) ?flight_capacity
    ?(shards = 1) ?(max_queue = 1024) () =
  {
    transport = Local (Shard.create ~threaded ?flight_capacity ~shards ~max_queue ());
    json;
    gen = Ctx.generator seed;
    gen_m = Mutex.create ();
    closed = false;
  }

let of_shard ?(json = false) ?(seed = 0) shard =
  {
    transport = Local shard;
    json;
    gen = Ctx.generator seed;
    gen_m = Mutex.create ();
    closed = false;
  }

let connect ?(json = false) ?(seed = 0) addr =
  match Server.address_of_string addr with
  | Error _ as e -> e
  | Ok parsed -> (
    try
      let fd =
        match parsed with
        | Server.Unix_sock path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
        | Server.Tcp (host, port) ->
          let inet =
            match Unix.inet_addr_of_string host with
            | a -> a
            | exception _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (inet, port));
          fd
      in
      Ok
        {
          transport = Remote { fd; m = Mutex.create () };
          json;
          gen = Ctx.generator seed;
          gen_m = Mutex.create ();
          closed = false;
        }
    with
    | Unix.Unix_error (e, _, _) ->
      Error (Error.Io (Printf.sprintf "cannot connect to %s: %s" addr (Unix.error_message e)))
    | Not_found -> Error (Error.Io (Printf.sprintf "cannot resolve %s" addr)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.transport with
    | Local shard -> ignore (Shard.drain shard)
    | Remote { fd; _ } -> ( try Unix.close fd with _ -> ())
  end

(* --- reply projection ------------------------------------------------------ *)

let unexpected verb = Error (Error.Invalid_op ("unexpected reply to " ^ verb))

let hello t =
  match call t (Proto.Hello Proto.version) with
  | Ok (Proto.R_hello v) -> Ok v
  | Error e -> Error e
  | Ok _ -> unexpected "hello"

let ping t =
  match call t Proto.Ping with
  | Ok Proto.R_pong -> Ok ()
  | Error e -> Error e
  | Ok _ -> unexpected "ping"

let shutdown_server t =
  match call t Proto.Shutdown with
  | Ok Proto.R_bye -> Ok ()
  | Error e -> Error e
  | Ok _ -> unexpected "shutdown"

let session t ~tenant =
  if Proto.tenant_ok tenant then Ok { client = t; tenant }
  else Error (Error.Precondition (Printf.sprintf "invalid tenant id %S" tenant))

let tenant s = s.tenant

let open_session t ~tenant instance =
  match session t ~tenant with
  | Error _ as e -> e
  | Ok s -> (
    match call t (Proto.Open { tenant; instance }) with
    | Ok (Proto.R_open _) -> Ok s
    | Error e -> Error e
    | Ok _ -> unexpected "open")

let scall s req = call s.client req

let add_path s vertices =
  match scall s (Proto.Add_path { tenant = s.tenant; vertices }) with
  | Ok (Proto.R_path id) -> Ok id
  | Error e -> Error e
  | Ok _ -> unexpected "add_path"

let remove_path s id =
  match scall s (Proto.Remove_path { tenant = s.tenant; id }) with
  | Ok (Proto.R_removed _) -> Ok ()
  | Error e -> Error e
  | Ok _ -> unexpected "remove_path"

let add_arc s tail head =
  match scall s (Proto.Add_arc { tenant = s.tenant; tail; head }) with
  | Ok (Proto.R_arc a) -> Ok a
  | Error e -> Error e
  | Ok _ -> unexpected "add_arc"

let submit s ops =
  match scall s (Proto.Submit { tenant = s.tenant; ops }) with
  | Ok (Proto.R_outcomes { outcomes; after }) -> Ok { outcomes; after }
  | Error e -> Error e
  | Ok _ -> unexpected "submit"

let report s =
  match scall s (Proto.Report { tenant = s.tenant }) with
  | Ok (Proto.R_report r) -> Ok r
  | Error e -> Error e
  | Ok _ -> unexpected "report"

let pi s =
  match scall s (Proto.Pi { tenant = s.tenant }) with
  | Ok (Proto.R_pi pi) -> Ok pi
  | Error e -> Error e
  | Ok _ -> unexpected "pi"

let color_of s id =
  match scall s (Proto.Color_of { tenant = s.tenant; id }) with
  | Ok (Proto.R_color c) -> Ok c
  | Error e -> Error e
  | Ok _ -> unexpected "color_of"

let stats s =
  match scall s (Proto.Stats { tenant = s.tenant }) with
  | Ok (Proto.R_stats st) -> Ok st
  | Error e -> Error e
  | Ok _ -> unexpected "stats"

let health s =
  match scall s (Proto.Health { tenant = s.tenant }) with
  | Ok (Proto.R_health h) -> Ok h
  | Error e -> Error e
  | Ok _ -> unexpected "health"

let snapshot s =
  match scall s (Proto.Snapshot { tenant = s.tenant }) with
  | Ok (Proto.R_snapshot inst) -> Ok inst
  | Error e -> Error e
  | Ok _ -> unexpected "snapshot"

let evict s =
  match scall s (Proto.Evict { tenant = s.tenant }) with
  | Ok Proto.R_evicted -> Ok ()
  | Error e -> Error e
  | Ok _ -> unexpected "evict"

(* --- daemon introspection --------------------------------------------------- *)

let daemon_stats t =
  match call t Proto.Dstats with
  | Ok (Proto.R_dstats d) -> Ok d
  | Error e -> Error e
  | Ok _ -> unexpected "dstats"

let daemon_health t =
  match call t Proto.Dhealth with
  | Ok (Proto.R_dhealth h) -> Ok h
  | Error e -> Error e
  | Ok _ -> unexpected "dhealth"

let trace_pull ?(last = 0) t =
  match call t (Proto.Trace_dump { last }) with
  | Ok (Proto.R_trace doc) -> Ok doc
  | Error e -> Error e
  | Ok _ -> unexpected "tracedump"
