lib/core/baselines.ml: Array Assignment Digraph Dipath Fun Instance List Wl_digraph Wl_util
