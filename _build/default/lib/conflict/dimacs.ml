let to_string ?comment g =
  let buf = Buffer.create 1024 in
  (match comment with
  | Some c ->
    String.split_on_char '\n' c
    |> List.iter (fun line -> Buffer.add_string buf ("c " ^ line ^ "\n"))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "p edge %d %d\n" (Ugraph.n_vertices g) (Ugraph.n_edges g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)))
    (Ugraph.edges g);
  Buffer.contents buf

let of_string text =
  let graph = ref None in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> (
      match !graph with
      | Some g -> Ok g
      | None -> Error "missing 'p edge' header")
    | line :: rest -> (
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go (lineno + 1) rest
      | "c" :: _ -> go (lineno + 1) rest
      | [ "p"; "edge"; n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m, !graph) with
        | _, _, Some _ -> err lineno "duplicate header"
        | Some n, Some _, None ->
          if n < 0 then err lineno "negative vertex count"
          else begin
            graph := Some (Ugraph.create n);
            go (lineno + 1) rest
          end
        | _ -> err lineno "malformed header")
      | [ "e"; u; v ] -> (
        match (!graph, int_of_string_opt u, int_of_string_opt v) with
        | None, _, _ -> err lineno "'e' before header"
        | Some g, Some u, Some v -> (
          match Ugraph.add_edge g (u - 1) (v - 1) with
          | () -> go (lineno + 1) rest
          | exception Invalid_argument msg -> err lineno msg)
        | _ -> err lineno "malformed edge")
      | word :: _ -> err lineno (Printf.sprintf "unknown directive %S" word))
  in
  go 1 lines

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text
