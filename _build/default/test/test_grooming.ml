(* Tests for the grooming solvers (the paper's concluding problem). *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

(* Brute force: maximum subfamily with load <= w, by subset enumeration. *)
let brute inst ~w =
  let n = Instance.n_paths inst in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 chosen in
    if size > !best && Grooming.load_of_subfamily inst chosen <= w then best := size
  done;
  !best

let line_instance seed k n =
  let g = Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let dag = Dag.of_digraph_exn g in
  let rng = Prng.create seed in
  let paths =
    List.init k (fun _ ->
        let lo = Prng.int rng (n - 1) in
        let hi = Prng.int_in rng (lo + 1) (n - 1) in
        Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)))
  in
  Instance.make dag paths

let exact_matches_brute =
  qtest "exact = brute force (tiny)" QCheck2.Gen.(pair seed_gen (int_range 0 4))
    (fun (seed, w) ->
      let inst = random_instance ~n:10 ~k:8 seed in
      match Grooming.exact inst ~w with
      | None -> false
      | Some s -> s.Grooming.size = brute inst ~w && s.Grooming.load <= w)

let greedy_feasible_and_below_exact =
  qtest "greedy feasible and never beats exact"
    QCheck2.Gen.(pair seed_gen (int_range 0 5))
    (fun (seed, w) ->
      let inst = random_instance ~n:12 ~k:10 seed in
      let gsel = Grooming.greedy inst ~w in
      gsel.Grooming.load <= max 0 w
      &&
      match Grooming.exact inst ~w with
      | None -> true
      | Some e -> gsel.Grooming.size <= e.Grooming.size)

let line_matches_brute =
  qtest "line solver = brute force" QCheck2.Gen.(pair seed_gen (int_range 1 3))
    (fun (seed, w) ->
      let inst = line_instance seed 9 8 in
      match Grooming.on_line inst ~w with
      | None -> false
      | Some s -> s.Grooming.size = brute inst ~w)

let line_beats_or_matches_greedy =
  qtest "line solver >= greedy" QCheck2.Gen.(pair seed_gen (int_range 1 4))
    (fun (seed, w) ->
      let inst = line_instance seed 20 12 in
      match Grooming.on_line inst ~w with
      | None -> false
      | Some s -> s.Grooming.size >= (Grooming.greedy inst ~w).Grooming.size)

let test_is_line () =
  let line = Dag.of_digraph_exn (Digraph.of_arcs 4 [ (0, 1); (1, 2); (2, 3) ]) in
  check "line" true (Grooming.is_line line);
  let tree = Dag.of_digraph_exn (Digraph.of_arcs 4 [ (0, 1); (0, 2); (2, 3) ]) in
  check "tree not line" false (Grooming.is_line tree);
  check "on_line rejects non-lines" true
    (Grooming.on_line (Instance.make tree []) ~w:1 = None)

let test_w_at_least_pi_keeps_all () =
  let inst = random_instance ~n:12 ~k:10 5 in
  let w = Load.pi inst in
  match Grooming.exact inst ~w with
  | Some s -> check_int "keeps everything" (Instance.n_paths inst) s.Grooming.size
  | None -> Alcotest.fail "exact failed"

let test_w_zero_keeps_none () =
  let inst = random_instance ~n:12 ~k:10 6 in
  let s = Grooming.greedy inst ~w:0 in
  check_int "keeps nothing" 0 s.Grooming.size

let monotone_in_w =
  qtest "optimal size is monotone in w" seed_gen ~count:30 (fun seed ->
      let inst = random_instance ~n:10 ~k:8 seed in
      let size w =
        match Grooming.exact inst ~w with
        | Some s -> s.Grooming.size
        | None -> -1
      in
      let rec check_mono w prev =
        if w > 4 then true
        else
          let s = size w in
          s >= prev && check_mono (w + 1) s
      in
      check_mono 0 0)

(* The paper's reduction: on a DAG without internal cycle the selected
   subfamily is always w-satisfiable. *)
let satisfy_within_w =
  qtest "satisfy stays within w on internal-cycle-free DAGs" seed_gen ~count:40
    (fun seed ->
      let inst = random_nic_instance ~n:16 ~k:12 seed in
      let w = max 1 (Load.pi inst / 2) in
      match Grooming.satisfy inst ~w with
      | None -> false
      | Some (sel, assignment) ->
        sel.Grooming.load <= w
        && Assignment.n_wavelengths assignment <= w
        && Array.length assignment = sel.Grooming.size)

let satisfied_assignment_is_valid =
  qtest "the returned assignment is valid for the subfamily" seed_gen ~count:30
    (fun seed ->
      let inst = random_nic_instance ~n:14 ~k:10 seed in
      let w = max 1 (Load.pi inst - 1) in
      match Grooming.satisfy inst ~w with
      | None -> false
      | Some (sel, assignment) ->
        let paths =
          List.filteri
            (fun i _ -> sel.Grooming.selected.(i))
            (Instance.paths_list inst)
        in
        let sub = Instance.make (Instance.dag inst) paths in
        Assignment.is_valid sub assignment)

let suite =
  [
    ( "grooming",
      [
        exact_matches_brute;
        greedy_feasible_and_below_exact;
        line_matches_brute;
        line_beats_or_matches_greedy;
        Alcotest.test_case "line detection" `Quick test_is_line;
        Alcotest.test_case "w >= pi keeps all" `Quick test_w_at_least_pi_keeps_all;
        Alcotest.test_case "w = 0 keeps none" `Quick test_w_zero_keeps_none;
        monotone_in_w;
        satisfy_within_w;
        satisfied_assignment_is_valid;
      ] );
  ]
