(** Vertex coloring of undirected graphs.

    Colors are integers starting at 0.  [w(G,P)] in the paper is the
    chromatic number of the conflict graph; the heuristics here give upper
    bounds (DSATUR is exact on many structured conflict graphs), and
    {!Exact} computes the true chromatic number for the sizes used in tests
    and benches. *)

type t = int array
(** [coloring.(v)] is the color of vertex [v]. *)

val is_valid : Ugraph.t -> t -> bool
(** No edge is monochromatic and every vertex has a color [>= 0]. *)

val n_colors : t -> int
(** Number of distinct colors used ([max + 1]; assumes colors form an
    initial segment — see {!normalize}). *)

val normalize : t -> t
(** Renames colors to an initial segment [0 .. k-1], preserving classes. *)

val greedy : ?order:int array -> Ugraph.t -> t
(** First-fit in the given vertex order (default: natural order). *)

val greedy_desc_degree : Ugraph.t -> t
(** First-fit in non-increasing degree order (Welsh–Powell). *)

val dsatur : Ugraph.t -> t
(** DSATUR (Brélaz): repeatedly color the vertex with the most distinctly
    colored neighbors.  Runs on a reusable domain-local working set
    (saturation bitsets, buckets, arena scratch), so repeated colorings
    of same-sized graphs allocate little beyond the returned array; the
    buffers are retained, sized by the largest graph the domain has
    colored. *)

val dsatur_par : ?domains:int -> Ugraph.t -> t
(** Component-parallel DSATUR: splits the graph into connected
    components (union-find), colors them across domains with
    {!Wl_util.Parallel.map_array}, and merges — producing the {e same
    per-vertex coloring} as {!dsatur} (saturation never crosses a
    component boundary, and the component-local numbering preserves
    every tie-break).  Falls back to plain sequential DSATUR for
    single-component graphs and, via the mapper's probe, whenever the
    projected total work is under its ~2 ms threshold.  [domains]
    defaults to {!Wl_util.Parallel.default_domains}. *)

val best_heuristic : ?domains:int -> Ugraph.t -> t
(** The better of {!greedy_desc_degree} and {!dsatur_par}. *)

val pp : Format.formatter -> t -> unit
