open Wl_digraph
module Dag = Wl_dag.Dag

exception
  Internal_cycle_encountered of {
    chain : int list;
    junction : Digraph.vertex;
  }

type state = {
  inst : Instance.t;
  p_arcs : int array array; (* arc ids of each family dipath, front to back *)
  start_pos : int array; (* index of first live arc; = length when inactive *)
  color : int array; (* -1 while uncolored *)
  occ : int list array; (* arc id -> live family indices through it *)
  mutable palette : int; (* current number of colors = running max load *)
}

let make_state inst =
  let g = Instance.graph inst in
  let p_arcs = Array.map Dipath.arc_array (Instance.paths inst) in
  {
    inst;
    p_arcs;
    start_pos = Array.map Array.length p_arcs;
    color = Array.make (Array.length p_arcs) (-1);
    occ = Array.make (max 1 (Digraph.n_arcs g)) [];
    palette = 0;
  }

let is_live st p = st.start_pos.(p) < Array.length st.p_arcs.(p)

(* Live family indices conflicting with [p] (sharing a live arc). *)
let live_conflicts st p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for k = st.start_pos.(p) to Array.length st.p_arcs.(p) - 1 do
    List.iter
      (fun q ->
        if q <> p && not (Hashtbl.mem seen q) then begin
          Hashtbl.add seen q ();
          out := q :: !out
        end)
      st.occ.(st.p_arcs.(p).(k))
  done;
  !out

(* Flip the Kempe component of [p1] in the {alpha, beta} conflict subgraph,
   leaving [protected_p] untouched.  If the component reaches [protected_p],
   raise with the BFS chain from p1 to it (the paper's case C). *)
let kempe_flip st ~protected_p ~junction ~alpha ~beta p1 =
  let parent = Hashtbl.create 16 in
  let flipped = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.add parent p1 p1;
  Queue.add p1 queue;
  let chain_to q =
    let rec go v acc =
      let p = Hashtbl.find parent v in
      if p = v then v :: acc else go p (v :: acc)
    in
    go q []
  in
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    (* Proof case B: a dipath is never recolored twice. *)
    assert (not (Hashtbl.mem flipped p));
    Hashtbl.add flipped p ();
    let other = if st.color.(p) = alpha then beta else alpha in
    List.iter
      (fun q ->
        if st.color.(q) = other && not (Hashtbl.mem parent q) then begin
          Hashtbl.add parent q p;
          if q = protected_p then
            raise (Internal_cycle_encountered { chain = chain_to q; junction });
          Queue.add q queue
        end)
      (live_conflicts st p);
    st.color.(p) <- other
  done

(* Make all live dipaths through the about-to-be-inserted arc use pairwise
   distinct colors, by repeated Kempe flips.  [members] are live. *)
let make_rainbow st ~junction members =
  let distinct_violated () =
    let seen = Hashtbl.create 8 in
    let rec go = function
      | [] -> None
      | p :: rest -> (
        match Hashtbl.find_opt seen st.color.(p) with
        | Some q -> Some (q, p)
        | None ->
          Hashtbl.add seen st.color.(p) p;
          go rest)
    in
    go members
  in
  let rec fix () =
    match distinct_violated () with
    | None -> ()
    | Some (p0, p1) ->
      let alpha = st.color.(p0) in
      (* beta: a palette color unused by the whole member set. *)
      let used = List.map (fun p -> st.color.(p)) members in
      let beta =
        let rec first c =
          if c >= st.palette then
            invalid_arg "Theorem1: no free color (load accounting broken)"
          else if List.mem c used then first (c + 1)
          else c
        in
        first 0
      in
      kempe_flip st ~protected_p:p0 ~junction ~alpha ~beta p1;
      fix ()
  in
  fix ()

let insert_arc st e =
  let through = Instance.paths_through st.inst e in
  match through with
  | [] -> ()
  | _ ->
    st.palette <- max st.palette (List.length through);
    let live_members = List.filter (is_live st) through in
    make_rainbow st ~junction:(Digraph.arc_dst (Instance.graph st.inst) e) live_members;
    (* Extend every dipath through [e] over it; newly activated ones get the
       palette colors not used by the live members. *)
    let used = List.map (fun p -> st.color.(p)) live_members in
    let next_free = ref 0 in
    let fresh_color () =
      while List.mem !next_free used do
        incr next_free
      done;
      let c = !next_free in
      incr next_free;
      c
    in
    List.iter
      (fun p ->
        if not (is_live st p) then st.color.(p) <- fresh_color ();
        let k = st.start_pos.(p) - 1 in
        assert (st.p_arcs.(p).(k) = e);
        st.start_pos.(p) <- k;
        st.occ.(e) <- p :: st.occ.(e))
      through

let color inst =
  let st = make_state inst in
  let order = Dag.arcs_by_tail_topo (Instance.dag inst) in
  for i = Array.length order - 1 downto 0 do
    insert_arc st order.(i)
  done;
  (* Every dipath is fully live and colored now. *)
  Array.iteri (fun p c -> assert (c >= 0 || Array.length st.p_arcs.(p) = 0)) st.color;
  Array.copy st.color

let color_result inst =
  match color inst with
  | assignment -> Ok assignment
  | exception Internal_cycle_encountered { chain; junction } ->
    Error (chain, junction)

let colors_used inst =
  Assignment.n_wavelengths (Assignment.normalize (color inst))

(* The paper's case-C extraction (its Figure 4): follow the chain of
   pairwise-conflicting dipaths around, from the junction back to the
   junction; every arc traversed an odd number of times survives into a
   non-empty even subgraph whose vertices all lie on the walk — and every
   walk vertex has both a predecessor and a successor in G (interval
   endpoints head shared arcs, interior vertices are path-interior), so any
   undirected cycle of the parity subgraph is an internal cycle. *)
let witness_internal_cycle inst ~chain ~junction =
  let g = Instance.graph inst in
  match chain with
  | [] | [ _ ] -> None
  | _ ->
    let paths = Array.of_list (List.map (Instance.path inst) chain) in
    let m = Array.length paths in
    let first_shared i =
      let rec go = function
        | [] -> None
        | a :: rest -> if Dipath.mem_arc paths.(i + 1) a then Some a else go rest
      in
      go (Dipath.arcs paths.(i))
    in
    let parity = Hashtbl.create 32 in
    let flip a =
      if Hashtbl.mem parity a then Hashtbl.remove parity a
      else Hashtbl.add parity a ()
    in
    let add_segment path u v =
      match (Dipath.vertex_index path u, Dipath.vertex_index path v) with
      | Some iu, Some iv ->
        let lo = min iu iv and hi = max iu iv in
        let arcs = Dipath.arc_array path in
        for k = lo to hi - 1 do
          flip arcs.(k)
        done;
        true
      | _ -> false
    in
    let ok = ref true in
    let enter = ref junction in
    for i = 0 to m - 1 do
      let exit_v =
        if i = m - 1 then Some junction
        else Option.map (Digraph.arc_src g) (first_shared i)
      in
      match exit_v with
      | None -> ok := false
      | Some v ->
        if not (add_segment paths.(i) !enter v) then ok := false;
        enter := v
    done;
    if (not !ok) || Hashtbl.length parity = 0 then None
    else Traversal.undirected_cycle ~keep_arc:(Hashtbl.mem parity) g
