test/test_certificate.ml: Alcotest Array Certificate Helpers List Solver String Wl_core Wl_netgen Wl_util
