(** RWA instances: a DAG together with a family of dipaths.

    This is the input of the wavelength-assignment problem the paper studies
    once routing is fixed: color the dipaths so that two dipaths sharing an
    arc get different colors, using as few colors as possible.

    The family is an {e indexed multiset}: the same dipath may appear several
    times (Theorems 6 and 7 replicate dipaths on purpose), and colors are
    reported per index. *)

open Wl_digraph

type t

val make : Wl_dag.Dag.t -> Dipath.t list -> t
(** Validates nothing beyond what {!Dipath.make} already guaranteed (each
    dipath was built against the same graph); callers must not pass dipaths
    from a different graph. *)

val of_array : Wl_dag.Dag.t -> Dipath.t array -> t
(** Like {!make} from an array (copied). *)

val of_digraph : Digraph.t -> Dipath.t list -> (t, Error.t) result
(** Checks acyclicity first; [Error (Cyclic _)] on a directed cycle. *)

val of_digraph_exn : Digraph.t -> Dipath.t list -> t
(** Raises {!Error.Error}.
    @deprecated Use {!of_digraph} — one result-typed form per operation is
    the API rule since the service split (see the table in {!module:Wl});
    this twin remains only for legacy callers and will go in the next
    major version. *)

val of_vertex_seqs :
  Digraph.t -> Digraph.vertex list list -> (t, Error.t) result
(** Full result-typed construction from raw vertex sequences: checks
    acyclicity ([Cyclic]) and validates every dipath ([Invalid_path]).
    The entry point the {!Serial} parsers and the engine build on. *)

val dag : t -> Wl_dag.Dag.t
val graph : t -> Digraph.t

val n_paths : t -> int
val path : t -> int -> Dipath.t
(** Path by family index, [0 .. n_paths - 1]. *)

val paths : t -> Dipath.t array
(** Fresh array of the family, in index order. *)

val paths_list : t -> Dipath.t list

val add_paths : t -> Dipath.t list -> t
(** New instance with extra dipaths appended (indices of existing paths are
    preserved). *)

val paths_through : t -> Digraph.arc -> int list
(** Indices of family members whose dipath uses the given arc, ascending.
    Allocates; the iteration forms below are the allocation-free interface
    the solvers use. *)

val n_paths_through : t -> Digraph.arc -> int
(** Number of family members through the arc (the arc's load), O(1). *)

val max_arc_load : t -> int
(** [max over arcs of n_paths_through] — the load [pi] — in one
    allocation-free pass that reads each CSR offset exactly once.
    [Load.pi] is this. *)

val paths_through_iter : t -> Digraph.arc -> (int -> unit) -> unit
(** Iterate the family indices through the arc, ascending, without
    allocating. *)

val paths_through_fold : t -> Digraph.arc -> ('a -> int -> 'a) -> 'a -> 'a

val csr_index : t -> Wl_util.Flat.t * Wl_util.Flat.t
(** The underlying CSR index [(off, ids)]: the members through arc [a] are
    [ids.(off.(a)) .. ids.(off.(a+1) - 1)], ascending.  Both tables are
    Bigarray-backed ({!Wl_util.Flat.t}) so they live off the OCaml heap.
    Exposed for flat-core consumers (conflict-graph construction,
    Theorem 1 occupancy); callers must not mutate either array. *)

val pp : Format.formatter -> t -> unit
