type t =
  | Parse of { line : int; msg : string }
  | Invalid_path of string
  | Cyclic of string
  | Bad_index of { what : string; index : int }
  | Invalid_op of string
  | Precondition of string
  | Unsupported_version of int
  | Io of string

exception Error of t

let to_string = function
  | Parse { line; msg } ->
    if line <= 0 then msg else Printf.sprintf "line %d: %s" line msg
  | Invalid_path msg -> msg
  | Cyclic msg -> msg
  | Bad_index { what; index } -> Printf.sprintf "%s: no such index %d" what index
  | Invalid_op msg -> msg
  | Precondition msg -> msg
  | Unsupported_version v -> Printf.sprintf "unsupported format version %d" v
  | Io msg -> msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Stable sysexits-style codes; [distinct] (tested) so scripts can dispatch
   on the exit status of the CLI alone. *)
let exit_code = function
  | Parse _ -> 65 (* EX_DATAERR *)
  | Cyclic _ -> 66
  | Invalid_path _ -> 67
  | Bad_index _ -> 68
  | Invalid_op _ -> 69
  | Precondition _ -> 70 (* EX_SOFTWARE *)
  | Unsupported_version _ -> 71
  | Io _ -> 74 (* EX_IOERR *)

let raise_error e = raise (Error e)

let get_exn = function Ok v -> v | Error e -> raise_error e

let of_invalid_arg f x =
  match f x with v -> Ok v | exception Invalid_argument msg -> Error (Precondition msg)
