(** Rendering the bench trajectory: terminal dashboard and single-file
    HTML report.

    Both views read the same {!Wl_obs.Store} history (last entry =
    current run) and run the same gate comparison, so what CI prints and
    what the dashboard shows cannot disagree. *)

val human_ns : float -> string
(** ["812 ns"], ["1.24 µs"], ["3.10 ms"], ["2.05 s"]. *)

val sparkline : float list -> string
(** Unicode block sparkline (▁▂▃▄▅▆▇█), scaled to the series' own
    min/max. *)

val pp_terminal :
  ?window:int ->
  ?threshold_pct:float ->
  Format.formatter ->
  Wl_obs.Store.entry list ->
  unit
(** Terminal dashboard over a trajectory: per-bench trend sparkline,
    current median vs rolling baseline with verdicts, top counter
    movements vs the previous entry, and the GC-by-span summary of the
    current run.  [window]/[threshold_pct] are the gate parameters
    (defaults 5 / 10%%). *)

val html :
  ?window:int -> ?threshold_pct:float -> Wl_obs.Store.entry list -> string
(** Self-contained HTML dashboard: the trajectory embedded as inline
    JSON plus small-multiple SVG line charts (median line, ± MAD band,
    hover tooltip), a gate banner, and a summary table — no external
    scripts, fonts, or styles, so the file works offline and as a CI
    artifact.  Light/dark follow the system preference, with a manual
    toggle. *)

val check_html : history:Wl_obs.Store.entry list -> string -> (int, string) result
(** Well-formedness check used by tests and [wl report --check]: the
    document must start with an HTML doctype, be fully closed, and
    mention every bench name occurring anywhere in [history].  Returns
    the number of bench names verified. *)
