open Wl_digraph
module Dag = Wl_dag.Dag
module Internal_cycle = Wl_dag.Internal_cycle
module Upp = Wl_dag.Upp
module Prng = Wl_util.Prng

let gnp_dag rng n p =
  let order = Prng.permutation rng n in
  let g = Digraph.create () in
  Digraph.add_vertices g n;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.bernoulli rng p then ignore (Digraph.add_arc g order.(i) order.(j))
    done
  done;
  Dag.of_digraph_exn g

let layered rng ~layers ~width ~p =
  if layers < 1 || width < 1 then invalid_arg "Generators.layered";
  let g = Digraph.create () in
  let vertex = Array.init layers (fun _ -> Array.init width (fun _ -> Digraph.add_vertex g)) in
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      for j = 0 to width - 1 do
        if Prng.bernoulli rng p then ignore (Digraph.add_arc g vertex.(l).(i) vertex.(l + 1).(j))
      done
    done
  done;
  (* Guarantee connectivity of the layer structure. *)
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      if Digraph.out_degree g vertex.(l).(i) = 0 then
        ignore (Digraph.add_arc g vertex.(l).(i) vertex.(l + 1).(Prng.int rng width))
    done
  done;
  for l = 1 to layers - 1 do
    for i = 0 to width - 1 do
      if Digraph.in_degree g vertex.(l).(i) = 0 then
        ignore (Digraph.add_arc g vertex.(l - 1).(Prng.int rng width) vertex.(l).(i))
    done
  done;
  Dag.of_digraph_exn g

let rebuild_without g dropped =
  let keep = Digraph.fold_arcs (fun a u v acc -> if List.mem a dropped then acc else (u, v) :: acc) g [] in
  let labels = Array.init (Digraph.n_vertices g) (Digraph.label g) in
  Digraph.of_arcs ~labels (Digraph.n_vertices g) (List.rev keep)

let without_internal_cycle rng dag =
  let rec repair dag =
    match Internal_cycle.find dag with
    | None -> dag
    | Some walk ->
      let arcs = List.map fst walk in
      let victim = Prng.choose_list rng arcs in
      repair (Dag.of_digraph_exn (rebuild_without (Dag.graph dag) [ victim ]))
  in
  repair dag

let gnp_no_internal_cycle rng n p = without_internal_cycle rng (gnp_dag rng n p)

let make_upp rng dag =
  let rec repair dag =
    match Upp.find_violation dag with
    | None -> dag
    | Some v ->
      let path = if Prng.bool rng then v.Upp.path1 else v.Upp.path2 in
      let victim = Prng.choose_list rng (Dipath.arcs path) in
      repair (Dag.of_digraph_exn (rebuild_without (Dag.graph dag) [ victim ]))
  in
  repair dag

let gnp_upp rng n p = make_upp rng (gnp_dag rng n p)

let random_rooted_tree rng n =
  if n < 1 then invalid_arg "Generators.random_rooted_tree";
  let g = Digraph.create () in
  Digraph.add_vertices g n;
  for i = 1 to n - 1 do
    ignore (Digraph.add_arc g (Prng.int rng i) i)
  done;
  Dag.of_digraph_exn g

(* One internal-cycle gadget added into [g]: k peaks/valleys, subdivided
   segments, pendant predecessors/successors making it internal.  Returns
   one pendant predecessor and one pendant successor (the hooks used to
   bridge gadgets together). *)
let add_cycle_gadget g rng ~k ~segment_max =
  let b = Array.init k (fun _ -> Digraph.add_vertex g) in
  let c = Array.init k (fun _ -> Digraph.add_vertex g) in
  let segment u v =
    let inner = Prng.int rng segment_max in
    let rec go prev j =
      if j = inner then ignore (Digraph.add_arc g prev v)
      else begin
        let w = Digraph.add_vertex g in
        ignore (Digraph.add_arc g prev w);
        go w (j + 1)
      end
    in
    go u 0
  in
  for i = 0 to k - 1 do
    segment b.(i) c.(i);
    segment b.((i + 1) mod k) c.(i)
  done;
  let preds =
    Array.map
      (fun bi ->
        let a = Digraph.add_vertex g in
        ignore (Digraph.add_arc g a bi);
        a)
      b
  in
  let succs =
    Array.map
      (fun ci ->
        let d = Digraph.add_vertex g in
        ignore (Digraph.add_arc g ci d);
        d)
      c
  in
  (preds.(0), succs.(0))

(* Random pendant growth: each new vertex hangs off one arc, preserving the
   UPP property and adding no cycle. *)
let grow_pendants g rng extra_vertices =
  for _ = 1 to extra_vertices do
    let n = Digraph.n_vertices g in
    let anchor = Prng.int rng n in
    let w = Digraph.add_vertex g in
    if Prng.bool rng then ignore (Digraph.add_arc g anchor w)
    else ignore (Digraph.add_arc g w anchor)
  done

let upp_one_internal_cycle rng ?k ?(segment_max = 3) ?(extra_vertices = 8) () =
  let k = match k with Some k -> k | None -> Prng.int_in rng 2 4 in
  if k < 2 then invalid_arg "Generators.upp_one_internal_cycle: k >= 2";
  let g = Digraph.create () in
  ignore (add_cycle_gadget g rng ~k ~segment_max);
  grow_pendants g rng extra_vertices;
  Dag.of_digraph_exn g

let upp_internal_cycles rng ?(cycles = 2) ?k ?(segment_max = 3)
    ?(extra_vertices = 8) () =
  if cycles < 1 then invalid_arg "Generators.upp_internal_cycles: cycles >= 1";
  let g = Digraph.create () in
  let hooks =
    List.init cycles (fun _ ->
        let k = match k with Some k -> k | None -> Prng.int_in rng 2 4 in
        add_cycle_gadget g rng ~k ~segment_max)
  in
  (* Bridge consecutive gadgets: the previous gadget's pendant successor
     feeds the next gadget's pendant predecessor.  A bridge is a cut arc, so
     it adds no cycle; uniqueness of dipaths across it follows from the
     gadgets' own UPP property. *)
  let rec bridge = function
    | (_, d_prev) :: ((a_next, _) :: _ as rest) ->
      ignore (Digraph.add_arc g d_prev a_next);
      bridge rest
    | _ -> ()
  in
  bridge hooks;
  grow_pendants g rng extra_vertices;
  Dag.of_digraph_exn g

let backbone rng ~pops ~levels =
  if pops < 1 || levels < 2 then invalid_arg "Generators.backbone";
  let g = Digraph.create () in
  let vertex =
    Array.init levels (fun l ->
        Array.init pops (fun i ->
            Digraph.add_vertex ~label:(Printf.sprintf "pop%d.%d" l i) g))
  in
  for l = 0 to levels - 2 do
    for i = 0 to pops - 1 do
      (* Dense consecutive links: each PoP reaches 2-3 next-level PoPs. *)
      let fanout = Prng.int_in rng 2 (min 3 pops) in
      let targets = Prng.sample_without_replacement rng fanout pops in
      List.iter
        (fun j ->
          if not (Digraph.mem_arc g vertex.(l).(i) vertex.(l + 1).(j)) then
            ignore (Digraph.add_arc g vertex.(l).(i) vertex.(l + 1).(j)))
        targets;
      (* Sparse express links skipping a level. *)
      if l + 2 < levels && Prng.bernoulli rng 0.25 then begin
        let j = Prng.int rng pops in
        if not (Digraph.mem_arc g vertex.(l).(i) vertex.(l + 2).(j)) then
          ignore (Digraph.add_arc g vertex.(l).(i) vertex.(l + 2).(j))
      end
    done
  done;
  Dag.of_digraph_exn g
