test/test_theorem6.ml: Alcotest Assignment Helpers Instance List Load Replication Theorem2 Theorem6 Wl_core Wl_dag Wl_netgen Wl_util
