(* Tests for the iterated Theorem 6 recursion (the paper's closing remark):
   UPP-DAGs with C internal cycles colored within C nested ceilings of
   4 pi / 3. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let instance_with_cycles ?(k = 14) seed cycles =
  let rng = Prng.create seed in
  let dag = Generators.upp_internal_cycles rng ~cycles () in
  let paths = dedup_paths (Path_gen.random_family rng dag k) in
  Instance.make dag paths

let within_iterated_bound cycles inst =
  let a, levels = Theorem6_multi.color_with_stats inst in
  let pi = Load.pi inst in
  Assignment.is_valid inst a
  && Assignment.n_wavelengths (Assignment.normalize a)
     <= Theorem6_multi.upper_bound ~n_internal_cycles:cycles pi
  && List.length levels <= cycles

let two_cycles =
  qtest "valid and within the iterated bound (C = 2)" seed_gen ~count:80
    (fun seed -> within_iterated_bound 2 (instance_with_cycles seed 2))

let three_cycles =
  qtest "valid and within the iterated bound (C = 3)" seed_gen ~count:40
    (fun seed -> within_iterated_bound 3 (instance_with_cycles seed 3))

let coincides_on_one_cycle =
  qtest "C = 1 coincides with Theorem 6" seed_gen ~count:40 (fun seed ->
      let inst = random_upp_one_cycle_instance ~distinct:true seed in
      let a1 = Theorem6.color inst in
      let a2 = Theorem6_multi.color inst in
      Assignment.n_wavelengths (Assignment.normalize a1)
      = Assignment.n_wavelengths (Assignment.normalize a2))

let test_generator_counts () =
  let rng = Prng.create 17 in
  List.iter
    (fun c ->
      let dag = Generators.upp_internal_cycles rng ~cycles:c () in
      check_int "cycle count" c (Wl_dag.Internal_cycle.count_independent dag);
      check "UPP" true (Wl_dag.Upp.is_upp dag))
    [ 1; 2; 3; 4; 5 ]

let test_not_applicable () =
  let rng = Prng.create 4 in
  let dag = Generators.gnp_no_internal_cycle rng 12 0.2 in
  let inst = Path_gen.random_instance rng dag 8 in
  try
    ignore (Theorem6_multi.color inst);
    Alcotest.fail "should not apply without internal cycle"
  with Theorem6.Not_applicable _ -> ()

let test_levels_report_splits () =
  let inst = instance_with_cycles ~k:16 5 3 in
  let _, levels = Theorem6_multi.color_with_stats inst in
  let depths = List.map (fun l -> l.Theorem6_multi.depth) levels in
  check "depths increase from 0" true
    (depths = List.init (List.length depths) Fun.id)

let test_solver_dispatch () =
  let inst = instance_with_cycles ~k:40 21 2 in
  let r = Solver.solve ~exact_limit:4 inst in
  check "method" true
    (r.Solver.method_used = Solver.Theorem_6_iterated
    || r.Solver.method_used = Solver.Heuristic);
  check "valid" true (Assignment.is_valid inst r.Solver.assignment);
  check "within iterated bound" true
    (r.Solver.n_wavelengths
    <= Theorem6_multi.upper_bound ~n_internal_cycles:2 r.Solver.pi)

let suite =
  [
    ( "theorem-6-iterated",
      [
        two_cycles;
        three_cycles;
        coincides_on_one_cycle;
        Alcotest.test_case "generator cycle counts" `Quick test_generator_counts;
        Alcotest.test_case "not applicable" `Quick test_not_applicable;
        Alcotest.test_case "levels report splits" `Quick test_levels_report_splits;
        Alcotest.test_case "solver dispatch" `Quick test_solver_dispatch;
      ] );
  ]
