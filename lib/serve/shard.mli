(** Sharded engine workers behind the [wlrpc/1] dispatch.

    Sessions are partitioned over [shards] workers by a stable hash of the
    tenant id; every request for a tenant is executed by that tenant's
    worker, so per-tenant operations are processed in submission order
    without any per-session locking.

    In {e threaded} mode (the daemon) each worker is its own domain
    draining a bounded job queue.  A worker takes the whole queue as one
    {e wave} and feeds the leading run of mutations — grouped per tenant,
    order preserved — through {!Wl_engine.Engine.submit_many}, so
    concurrent tenants solve in parallel and a dirty streak costs one
    solve per tenant per wave.  The queue bound is the backpressure:
    {!call} blocks when the worker is [max_queue] jobs behind.

    In {e synchronous} mode (the in-process loopback client, the fuzz
    oracles) there are no domains: {!call} executes the request inline
    under the shard's lock.  Same dispatch code, deterministic stats —
    which is what makes a loopback client comparable op-for-op with a
    bare engine session. *)

module Engine = Wl_engine.Engine

type t

val create :
  ?threaded:bool ->
  ?flight_capacity:int ->
  shards:int ->
  max_queue:int ->
  unit ->
  t
(** [threaded] defaults to [true]; [flight_capacity] (default 256) bounds
    each session's flight-recorder ring so thousands of sessions stay
    cheap.  [shards] must be positive, [max_queue] at least 1.
    @raise Invalid_argument on a non-positive [shards] or [max_queue]. *)

val shards : t -> int

val shard_of_tenant : shards:int -> string -> int
(** The stable partition function (FNV-1a over the tenant bytes), exposed
    for tests and for operators reading per-shard metrics. *)

val call : ?ctx:Wl_obs.Ctx.t -> t -> Proto.req -> Proto.reply
(** Execute one request and wait for its reply.  Tenant-scoped requests
    run on the tenant's shard; [Hello]/[Ping]/[Shutdown] are answered
    inline ([Shutdown] replies [R_bye] — initiating the drain is the
    caller's job).  After {!drain} has begun, returns
    [Error (Precondition _)].

    [ctx] is the propagated trace context ({!Wl_obs.Ctx}, default
    [none]): when set and tracing is on, the shard emits
    [serve.queue_wait] / [serve.batch] / [serve.engine] spans under the
    caller's span, and engine-side HDR exemplars and flight records
    latch the trace id.

    The introspection requests — [Dstats], [Dhealth], [Trace_dump] —
    are answered inline on the calling thread from a roster mirror plus
    lock-free engine read-backs, so they never queue behind (or block)
    engine work.  [Dstats] rollups merge every session's live histogram
    via {!Wl_obs.Hdr.merge_into}: true daemon-wide quantiles. *)

val session_count : t -> int
(** Open sessions across all shards (approximate under concurrency). *)

val drain : t -> (string * Engine.session) list
(** Stop accepting, flush every shard's queue, join the workers, and
    return every still-open session, sorted by tenant — after the join
    the sessions are quiescent, so callers can read
    {!Wl_engine.Engine.health} or dump flight recorders without racing a
    worker.  Idempotent; later calls return the same listing. *)
