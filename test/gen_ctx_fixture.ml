(* Emit a deterministic distributed-trace Chrome dump on stdout.

   One traced request through the synchronous loopback (seeded client,
   in-memory sink) produces the full span family — client.call,
   wire.codec, serve.queue_wait, serve.batch, serve.engine — every span
   stamped with the same trace id by the seeded splitmix generator.
   Trace ids are deterministic; wall-clock timings are not, so
   timestamps and durations are normalized to the event index before
   rendering.  The result is diffed against
   ctx_fixture.golden.trace.json and fed to `wl trace-check`: the
   fixture pins both the wire-to-engine span taxonomy and the trace-id
   propagation, byte for byte. *)

module Trace = Wl_obs.Trace
module Client = Wl_serve.Client
module Digraph = Wl_digraph.Digraph
module Instance = Wl_core.Instance

let ok what = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("gen_ctx_fixture: " ^ what ^ ": " ^ Wl_core.Error.to_string e);
    exit 1

let line3 () =
  let g = Digraph.create () in
  for _ = 0 to 3 do
    ignore (Digraph.add_vertex g)
  done;
  List.iter (fun (a, b) -> ignore (Digraph.add_arc g a b))
    [ (0, 1); (1, 2); (2, 3) ];
  ok "line3" (Instance.of_vertex_seqs g [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ])

let trace_arg e =
  List.find_map
    (function "trace", Trace.Str t -> Some t | _ -> None)
    e.Trace.args

let () =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  let c = Client.local ~seed:42 () in
  let s = ok "open" (Client.open_session c ~tenant:"gold" (line3 ())) in
  ignore (ok "add" (Client.add_path s [ 0; 1; 2 ]));
  Client.close c;
  Trace.clear ();
  let events = Trace.events sink in
  (* The add_path request is the last client.call family: every span of
     that family must share its trace id — the tentpole invariant this
     fixture exists to pin. *)
  let adds =
    List.filter
      (fun e ->
        match trace_arg e with
        | None -> false
        | Some _ ->
          List.exists
            (function "verb", Trace.Str "add_path" -> true | _ -> false)
            e.Trace.args)
      events
  in
  let add_trace =
    match adds with
    | [] ->
      prerr_endline "gen_ctx_fixture: no traced add span";
      exit 1
    | e :: _ -> Option.get (trace_arg e)
  in
  let family =
    List.filter (fun e -> trace_arg e = Some add_trace) events
  in
  let have name = List.exists (fun e -> e.Trace.name = name) family in
  List.iter
    (fun name ->
      if not (have name) then begin
        prerr_endline ("gen_ctx_fixture: missing span " ^ name);
        exit 1
      end)
    [ "client.call"; "wire.codec"; "serve.queue_wait"; "serve.batch";
      "serve.engine" ];
  let norm =
    List.mapi
      (fun i e -> { e with Trace.ts_us = float_of_int i; dur_us = 1.0 })
      events
  in
  print_string (Trace.to_chrome norm)
