lib/dag/internal_cycle.ml: Array Dag Digraph Dipath Format Hashtbl List Option Traversal Wl_digraph Wl_util
