(** Theorem 1: on a DAG without internal cycle, [w = pi], constructively.

    The implementation turns the paper's induction into a single forward
    pass.  Sorting arcs by the topological position of their tail and
    inserting them back-to-front reproduces the proof's peeling in reverse:
    the next arc to insert always leaves a source of the current partial
    graph, and each family dipath's live part is a growing suffix.  At each
    insertion, the dipaths through the new arc must use pairwise distinct
    colors; when they do not, we flip the Kempe component of the offending
    path in the {e alpha/beta} subgraph of the current conflict graph —
    exactly the proof's recoloring cascade.  The component can only swallow
    the protected dipath if the DAG has an internal cycle (proof case C), in
    which case {!Internal_cycle_encountered} is raised carrying the chain of
    pairwise-intersecting dipaths that the paper folds into an internal
    cycle.

    On success the assignment is valid and uses at most [pi(G,P)] colors —
    and therefore exactly [w = pi] of them, since [pi <= w] always. *)

exception
  Internal_cycle_encountered of {
    chain : int list;
        (** family indices [p1; ...; p0]: consecutive dipaths conflict and
            their colors alternate — the paper's case-C sequence *)
    junction : Wl_digraph.Digraph.vertex;
        (** the head [y0] of the arc being inserted; the live parts of the
            first and last chain members both start there *)
  }
(** The recoloring cascade reached the protected dipath — the paper's
    case C, from which an internal cycle can be extracted
    ({!witness_internal_cycle}).  Never raised when the DAG has no internal
    cycle. *)

val color : Instance.t -> Assignment.t
(** Optimal wavelength assignment ([n_wavelengths <= Load.pi], hence equal
    to [w]).  Raises {!Internal_cycle_encountered} only if the DAG has an
    internal cycle (Theorem 1 guarantees success otherwise; the converse
    direction is exercised by Theorem 2 instances).

    The returned array is fresh (callers own it).  Internally the solve
    runs on a domain-local {!scratch}, so repeat calls on the same
    instance allocate nothing beyond this copy. *)

(** {1 Reusable solver state}

    The solver's flat state is a {e scratch} backed by a
    {!Wl_util.Arena}: binding an instance sizes the buffers once, and
    every further solve of the same instance is allocation-free
    (generation-stamped marks, no per-call [Array.make]).  Sessions that
    solve repeatedly — the engine, benchmarks — own a scratch and call
    {!color_with}. *)

type scratch

val scratch : unit -> scratch
(** A fresh unbound scratch.  One domain at a time; binding happens on
    first use and is keyed by physical instance identity. *)

val color_with : scratch -> Instance.t -> Assignment.t
(** Like {!color}, but the returned array is {e borrowed} from the
    scratch: valid until the next [color_with] call on it, never to be
    mutated.  Rebinds (and allocates) only when [inst] differs
    physically from the previous call's; a warm repeat solve performs
    zero minor allocation, which is what the [thm1.color] span's
    [gc.minor_w = 0] steady state in {!Wl_obs.Prof} reports. *)

val color_result :
  Instance.t ->
  (Assignment.t, int list * Wl_digraph.Digraph.vertex) result
(** Same, as a [result] carrying the case-C chain and junction. *)

val witness_internal_cycle :
  Instance.t ->
  chain:int list ->
  junction:Wl_digraph.Digraph.vertex ->
  Wl_dag.Internal_cycle.walk option
(** The paper's case-C construction, executably: walk from the junction
    along the first chain member to its first arc shared with the second,
    hop over, and so on back to the junction; arcs traversed an odd number
    of times form a non-trivial element of the cycle space whose vertices
    all have a predecessor and a successor in the DAG, so any cycle in it
    is internal.  Returns such a cycle ([None] only if the parity set is
    empty, which the paper's argument rules out on the chains the cascade
    emits).  Used by tests to confirm that every case-C abort exhibits a
    concrete internal cycle. *)

val colors_used : Instance.t -> int
(** [Assignment.n_wavelengths (normalize (color inst))]. *)
