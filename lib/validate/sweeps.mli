(** Randomized end-to-end validation sweeps, one per theorem.

    Each case generates an instance from a seed, runs the corresponding
    algorithm, and checks the paper's claim on the result; [None] means the
    claim held.  `bin/stress` runs them at six-figure scale (in parallel
    over domains), the test suite at CI scale.  Every case is a pure
    function of its seed, so a reported failure replays exactly.

    Each named case is instrumented: with {!Wl_obs.Metrics} enabled it
    records a per-seed latency histogram ([sweep.<name>.ns]) plus seed and
    failure counters, and with {!Wl_obs.Trace} enabled each seed runs in a
    [sweep.<name>] span (failures add an instant event carrying the seed
    and reason).  Off by default, at one atomic load per seed. *)

type case = int -> string option
(** [case seed] is [None] on success, [Some reason] on failure. *)

val theorem1 : case
(** Random internal-cycle-free DAG: valid assignment, exactly [pi] colors. *)

val theorem2 : case
(** Random DAG: if it has an internal cycle, the constructed family has
    [pi = 2], odd-cycle conflict graph (hence [w = 3]). *)

val theorem6 : case
(** Random one-internal-cycle UPP-DAG, distinct dipaths: valid and within
    [ceil(4 pi/3)]. *)

val theorem6_multi : case
(** Random UPP-DAG with 1-4 internal cycles: valid and within the iterated
    bound. *)

val case_c : case
(** Theorem-2 families force the Theorem 1 cascade into case C, and the
    extracted internal-cycle witness must verify. *)

val grooming : case
(** [Grooming.satisfy] on internal-cycle-free DAGs stays within [w]. *)

val all : (string * case) list
(** The named sweeps above, in presentation order. *)

val run :
  ?domains:int -> seeds:int -> case -> (int * string) list
(** Run one case over seeds [0 .. seeds-1] (chunk-parallel over domains)
    and return the failures. *)
