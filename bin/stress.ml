(* stress — large-scale randomized validation sweeps, in parallel.

   Each sweep (see Wl_validate.Sweeps) re-validates one of the paper's
   theorems over thousands of generated instances; failures print the
   offending seed so they can be replayed.  Sweeps run chunk-parallel over
   OCaml 5 domains.

   Run with: dune exec bin/stress.exe -- [--seeds N] [--domains D]
               [--metrics] [--metrics-out PATH] [--replay SEED] [--shrink]
               [SWEEP..]
   Sweeps: thm1 thm2 thm6 thm6multi casec grooming all (default: all)

   --metrics      collect and print solver-internals counters at the end
   --metrics-out PATH
                  also collect counters and write them as an OpenMetrics
                  text exposition to PATH ("-" for stdout) — the file that
                  `wl metrics-check` validates in CI
   --replay SEED  rerun one sweep on a single seed with tracing enabled
                  and print the span tree — for diagnosing a reported
                  failure, not just reproducing it (requires exactly one
                  SWEEP argument)
   --shrink       when a sweep fails, minimize its first failure with the
                  Wl_check shrinker and print the reduced .wl instance *)

module Sweeps = Wl_validate.Sweeps
module Parallel = Wl_util.Parallel
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

(* Minimize the first failing seed of a sweep and print the reduced
   instance.  The sweep's property can stop applying as the shrinker
   strips structure (guards return None off-class); in that case the
   original seed is still the reproducer, just not a minimal one. *)
let shrink_failure name seed =
  match Sweeps.find_sweep name with
  | None -> ()
  | Some sweep -> (
    let oracle = Wl_check.Oracle.of_sweep sweep in
    let subject = oracle.Wl_check.Oracle.generate seed in
    match
      Wl_check.Shrink.minimize ~check:oracle.Wl_check.Oracle.check subject
    with
    | exception Invalid_argument _ ->
      Printf.printf "  seed %d no longer fails under the oracle; not shrunk\n"
        seed
    | shrunk ->
      let s = shrunk.Wl_check.Shrink.subject in
      Printf.printf
        "  seed %d shrunk to %d vertices / %d paths in %d attempts (%s)\n"
        seed
        (Wl_check.Subject.n_vertices s)
        (Wl_check.Subject.n_paths s)
        shrunk.Wl_check.Shrink.attempts shrunk.Wl_check.Shrink.reason;
      print_string (Wl_check.Subject.wl_string s))

let run_sweep ~seeds ~domains ~shrink name case =
  let t0 = Unix.gettimeofday () in
  let failures = Sweeps.run ~domains ~seeds case in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-10s %6d instances %8.2fs %8.0f/s   %s\n%!" name seeds dt
    (float_of_int seeds /. dt)
    (match failures with
    | [] -> "all ok"
    | (seed, reason) :: _ ->
      Printf.sprintf "%d FAILURES (first: seed %d, %s)" (List.length failures)
        seed reason);
  (match failures with
  | (seed, _) :: _ when shrink -> shrink_failure name seed
  | _ -> ());
  failures = []

(* Rerun a single seed of a single sweep with full observability: the
   span tree shows where the time went and which phases ran; the counter
   table shows the solver internals.  Exit status mirrors the case. *)
let replay ~seed name case =
  Printf.printf "replaying sweep %s, seed %d\n%!" name seed;
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Metrics.set_enabled true;
  let result = try case seed with e -> Some (Printexc.to_string e) in
  Trace.clear ();
  Metrics.set_enabled false;
  let events = Trace.events sink in
  Format.printf "@[<v>span tree:@,%a@,@,span summary:@,%a@,@,counters:@,%a@]@."
    Trace.pp_tree events Trace.pp_summary events Metrics.pp_summary ();
  (match result with
  | None -> Printf.printf "seed %d: ok\n" seed
  | Some reason -> Printf.printf "seed %d: FAILURE (%s)\n" seed reason);
  result = None

let () =
  let seeds = ref 2000 and domains = ref (Parallel.default_domains ()) in
  let metrics = ref false and replay_seed = ref None in
  let metrics_out = ref None in
  let shrink = ref false in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
      seeds := int_of_string v;
      parse rest
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--metrics-out" :: v :: rest ->
      metrics_out := Some v;
      parse rest
    | "--replay" :: v :: rest ->
      replay_seed := Some (int_of_string v);
      parse rest
    | "--shrink" :: rest ->
      shrink := true;
      parse rest
    | "all" :: rest -> parse rest
    | name :: rest ->
      (match List.assoc_opt name Sweeps.all with
      | Some case -> chosen := (name, case) :: !chosen
      | None ->
        prerr_endline ("stress: unknown sweep " ^ name);
        exit 2);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run = if !chosen = [] then Sweeps.all else List.rev !chosen in
  match !replay_seed with
  | Some seed ->
    let name, case =
      match to_run with
      | [ one ] -> one
      | _ ->
        prerr_endline "stress: --replay needs exactly one sweep name (e.g. --replay 42 thm1)";
        exit 2
    in
    exit (if replay ~seed name case then 0 else 1)
  | None ->
    Printf.printf "stress: %d seeds per sweep, %d domains\n%!" !seeds !domains;
    if !metrics || !metrics_out <> None then Metrics.set_enabled true;
    let ok =
      List.for_all
        (fun (name, case) ->
          run_sweep ~seeds:!seeds ~domains:!domains ~shrink:!shrink name case)
        to_run
    in
    if !metrics || !metrics_out <> None then begin
      Metrics.set_enabled false;
      if !metrics then Format.printf "@.metrics:@.%a@." Metrics.pp_summary ();
      match !metrics_out with
      | None -> ()
      | Some path ->
        let doc =
          Wl_obs.Openmetrics.render
            ~gauges:
              [
                ("stress.seeds_per_sweep", float_of_int !seeds);
                ("stress.domains", float_of_int !domains);
              ]
            (Metrics.snapshot ())
        in
        if path = "-" then print_string doc
        else begin
          let oc = open_out path in
          output_string oc doc;
          close_out oc;
          Printf.printf "stress: wrote OpenMetrics exposition to %s (%d bytes)\n"
            path (String.length doc)
        end
    end;
    exit (if ok then 0 else 1)
