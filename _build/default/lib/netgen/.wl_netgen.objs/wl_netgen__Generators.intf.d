lib/netgen/generators.mli: Dag Wl_dag Wl_util
