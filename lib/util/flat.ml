(* Bigarray-backed flat int arrays.

   The CSR instance index and the solver occupancy tables are long-lived
   int tables sized by the instance, not the call.  Keeping them in a
   [Bigarray] puts the payload outside the OCaml heap: the minor
   collector never copies them, the major collector scans one custom
   block instead of n words, and big instances stop inflating GC pause
   times.  Elements are native ints (63-bit), so int-packed words
   (stamp|owner, back|slot) fit unchanged.

   Reads/writes via [Array1.unsafe_get/set] compile to single loads and
   stores, same as [Array.unsafe_get] on an int array.  The checked
   accessors are for cold paths and tests; hot loops validate bounds
   structurally (CSR offsets) and use the unsafe pair. *)

open Bigarray

type t = (int, int_elt, c_layout) Array1.t

let create n : t =
  let a = Array1.create Int c_layout n in
  Array1.fill a 0;
  a

let length (a : t) = Array1.dim a
let get (a : t) i = Array1.get a i
let set (a : t) i v = Array1.set a i v
let unsafe_get (a : t) i = Array1.unsafe_get a i
let unsafe_set (a : t) i v = Array1.unsafe_set a i v
let fill (a : t) v = Array1.fill a v

let of_array src : t =
  let n = Array.length src in
  let a = Array1.create Int c_layout n in
  for i = 0 to n - 1 do
    Array1.unsafe_set a i (Array.unsafe_get src i)
  done;
  a

let to_array (a : t) = Array.init (Array1.dim a) (fun i -> Array1.get a i)

let blit ~(src : t) ~src_pos ~(dst : t) ~dst_pos ~len =
  Array1.blit
    (Array1.sub src src_pos len)
    (Array1.sub dst dst_pos len)

(* Index operators so call sites read like array code:
   [Flat.(a.%(i))] checked, [Flat.(a.!(i))] unsafe. *)
let ( .%() ) = get
let ( .%()<- ) = set
let ( .!() ) = unsafe_get
let ( .!()<- ) = unsafe_set
