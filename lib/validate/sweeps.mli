(** Randomized end-to-end validation sweeps, one per theorem.

    Each sweep is a deterministic {!sweep.generate} (seed to instance)
    paired with a {!property} that checks the paper's claim on the
    generated instance; [None] means the claim held.  `bin/stress` runs
    them at six-figure scale (in parallel over domains), the test suite at
    CI scale.  Every case is a pure function of its seed, so a reported
    failure replays exactly — and because the generate/property split is
    exposed, [Wl_check] can {e shrink} a failing seed's instance by
    re-running the property on smaller copies ([Wl_check.Oracle.of_sweep]).

    Properties guard their own applicability: on an instance outside the
    sweep's structural class (possible only for shrunken copies, never for
    generated ones) they return [None] rather than a spurious failure.

    Each named case is instrumented ({!instrument}): with
    {!Wl_obs.Metrics} enabled it records a per-seed latency histogram
    ([sweep.<name>.ns]) plus seed and failure counters
    ([sweep.<name>.seeds], [sweep.<name>.failures]), and with
    {!Wl_obs.Trace} enabled each seed runs in a [sweep.<name>] span
    (failures add a [sweep.<name>.failure] instant event carrying the seed
    and reason).  Off by default, at one atomic load per seed. *)

type case = int -> string option
(** [case seed] is [None] on success, [Some reason] on failure. *)

type property = Wl_core.Instance.t -> string option
(** A claim checked on an explicit instance; [None] when it holds (or does
    not apply). *)

type sweep = {
  name : string;
  generate : int -> Wl_core.Instance.t;  (** deterministic in the seed *)
  property : property;
}

val sweeps : sweep list
(** The structured sweeps, in presentation order: [thm1], [thm2], [thm6],
    [thm6multi], [casec], [grooming].  The [thm2]/[casec] sweeps are
    claims about the DAG alone; their generated instances carry an empty
    family and the property rebuilds the Theorem 2 gap family itself. *)

val find_sweep : string -> sweep option

val instrument : string -> case -> case
(** Wrap a case with the [sweep.<name>] metrics and spans described above.
    The named cases below are already wrapped; exposed so tests and custom
    sweeps get identical accounting. *)

val case_of_sweep : sweep -> case
(** [instrument]ed composition of [generate] and [property]. *)

val theorem1 : case
(** Random internal-cycle-free DAG: valid assignment, exactly [pi] colors. *)

val theorem2 : case
(** Random DAG: if it has an internal cycle, the constructed family has
    [pi = 2], odd-cycle conflict graph (hence [w = 3]). *)

val theorem6 : case
(** Random one-internal-cycle UPP-DAG, distinct dipaths: valid and within
    [ceil(4 pi/3)]. *)

val theorem6_multi : case
(** Random UPP-DAG with 1-4 internal cycles: valid and within the iterated
    bound. *)

val case_c : case
(** Theorem-2 families force the Theorem 1 cascade into case C, and the
    extracted internal-cycle witness must verify. *)

val grooming : case
(** [Grooming.satisfy] on internal-cycle-free DAGs stays within [w]. *)

val all : (string * case) list
(** The named sweeps above, in presentation order. *)

val run : ?domains:int -> seeds:int -> case -> (int * string) list
(** Run one case over seeds [0 .. seeds-1] (chunk-parallel over domains)
    and return the failures in ascending seed order — the order is part of
    the contract, so "first failure" is deterministic and independent of
    [~domains]. *)
