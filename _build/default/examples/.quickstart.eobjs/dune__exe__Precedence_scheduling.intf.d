examples/precedence_scheduling.mli:
