examples/optical_network.ml: Array Format List Routing Solver Sys Wl_core Wl_dag Wl_netgen Wl_util
