lib/core/grooming.mli: Assignment Instance Wl_dag
