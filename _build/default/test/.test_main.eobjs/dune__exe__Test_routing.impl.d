test/test_routing.ml: Alcotest Array Assignment Bounds Digraph Dipath Hashtbl Helpers Instance List Load Routing String Theorem1 Traversal Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
