test/test_util.ml: Alcotest Array Fun Helpers Int List QCheck2 Set Wl_util
