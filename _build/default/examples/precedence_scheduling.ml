(* Scheduling pipelined data transfers over a precedence DAG.

   The paper notes (Section 1) that the wavelength/load question also
   arises in parallel computing: the digraph is a program's precedence
   graph, dipaths are pipelined producer-consumer chains mapped onto it,
   and a "wavelength" is a time slot / register lane that two chains
   sharing an edge cannot occupy simultaneously.

   This example builds a random fork-join style precedence DAG (a rooted
   tree plus join edges), generates pipelined chains along it, and shows:

   - rooted trees (in fact any DAG without internal cycle) need exactly
     [pi] lanes — the channel with the most chains through it is the only
     bottleneck;
   - adding join edges can create internal cycles, after which the lane
     count may genuinely exceed every channel's occupancy (the Figure 3
     phenomenon).

   Run with: dune exec examples/precedence_scheduling.exe [seed] *)

open Wl_core
module Dag = Wl_dag.Dag
module Digraph = Wl_digraph.Digraph
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng

let lanes inst =
  let report = Solver.solve inst in
  (report.Solver.pi, report.Solver.n_wavelengths,
   Solver.method_name report.Solver.method_used)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7 in
  let rng = Prng.create seed in

  (* Phase 1: a task tree (pure fork structure). *)
  let tree = Generators.random_rooted_tree rng 40 in
  let chains = Path_gen.random_family rng tree 30 in
  let inst = Instance.make tree chains in
  let pi, w, how = lanes inst in
  Format.printf "fork tree:    %d chains, busiest channel %d, lanes %d (%s)@."
    (List.length chains) pi w how;
  assert (pi = w);

  (* Phase 2: the Figure 3 shape — a join edge creating an internal cycle.
     Five pipelined chains, no channel carrying more than two, yet three
     lanes are required. *)
  let inst3 = Wl_netgen.Figures.fig3 () in
  let pi, w, how = lanes inst3 in
  Format.printf "join gadget:  5 chains, busiest channel %d, lanes %d (%s)@."
    pi w how;
  assert (pi = 2 && w = 3);

  (* Phase 3: scale — a staircase of pairwise-sharing chains (Figure 1)
     shows the gap is unbounded: channel occupancy stays 2 while the lane
     count grows with the number of chains. *)
  List.iter
    (fun k ->
      let inst1 = Wl_netgen.Figures.fig1 k in
      let pi, w, _ = lanes inst1 in
      Format.printf "staircase k=%d: busiest channel %d, lanes %d@." k pi w)
    [ 3; 5; 7 ];
  Format.printf
    "@.Takeaway for schedulers: occupancy-based lane provisioning is exact@.\
     precisely when the precedence structure has no internal cycle@.\
     (Main Theorem); with cycles it can undershoot arbitrarily.@."
