lib/digraph/digraph.ml: Array Format Fun Hashtbl List Printf String Wl_util
