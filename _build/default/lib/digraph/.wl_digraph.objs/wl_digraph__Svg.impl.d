lib/digraph/svg.ml: Array Buffer Digraph Dipath Fun Hashtbl List Option Printf String Traversal
