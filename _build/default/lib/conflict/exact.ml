module Bitset = Wl_util.Bitset

exception Found of int array

(* Backtracking k-colorability with forward checking:
   - a clique is pre-colored (symmetry breaking + early failure),
   - the next vertex is always one with the fewest remaining colors,
   - a fresh color is tried at most once per node (color-class symmetry). *)
let k_colorable g k =
  let n = Ugraph.n_vertices g in
  if k < 0 then invalid_arg "Exact.k_colorable";
  if n = 0 then Some [||]
  else begin
    let clique = Clique.greedy_clique g in
    if List.length clique > k then None
    else begin
      let coloring = Array.make n (-1) in
      (* forbidden.(v) = set of colors already used by v's neighbors. *)
      let forbidden = Array.init n (fun _ -> Bitset.create (max 1 k)) in
      let assign v c =
        coloring.(v) <- c;
        List.iter (fun w -> Bitset.add forbidden.(w) c) (Ugraph.neighbors g v)
      in
      let unassign v c =
        coloring.(v) <- -1;
        (* A neighbor may have another neighbor with color c; recompute. *)
        List.iter
          (fun w ->
            let still =
              List.exists (fun x -> coloring.(x) = c) (Ugraph.neighbors g w)
            in
            if not still then Bitset.remove forbidden.(w) c)
          (Ugraph.neighbors g v)
      in
      List.iteri (fun i v -> assign v i) clique;
      let used = ref (List.length clique) in
      let n_colored = ref (List.length clique) in
      let rec solve () =
        if !n_colored = n then raise (Found (Array.copy coloring))
        else begin
          (* Most-constrained uncolored vertex. *)
          let best = ref (-1) in
          let best_key = ref (-1, -1) in
          for v = 0 to n - 1 do
            if coloring.(v) = -1 then begin
              let key = (Bitset.cardinal forbidden.(v), Ugraph.degree g v) in
              if !best = -1 || key > !best_key then begin
                best := v;
                best_key := key
              end
            end
          done;
          let v = !best in
          let avail = min k (!used + 1) in
          if Bitset.cardinal forbidden.(v) < avail then
            for c = 0 to avail - 1 do
              if not (Bitset.mem forbidden.(v) c) then begin
                let was_used = !used in
                if c = !used then incr used;
                assign v c;
                incr n_colored;
                solve ();
                decr n_colored;
                unassign v c;
                used := was_used
              end
            done
        end
      in
      try
        solve ();
        None
      with Found coloring -> Some coloring
    end
  end

let chromatic_number g =
  let lower = Clique.clique_number g in
  let upper = Coloring.n_colors (Coloring.best_heuristic g) in
  let rec search k = if k >= upper then upper else
    match k_colorable g k with Some _ -> k | None -> search (k + 1)
  in
  search lower

let optimal_coloring g =
  let chi = chromatic_number g in
  match k_colorable g chi with
  | Some c -> c
  | None -> invalid_arg "Exact.optimal_coloring: internal inconsistency"
