(** OpenMetrics text exposition of metrics snapshots — and its validator.

    {!render} maps a {!Metrics.snapshot} (plus ad-hoc gauges and
    standalone {!Hdr} snapshots, e.g. per-session engine latencies) onto
    the OpenMetrics text format:

    - instrument names sanitize to [wl_]-prefixed metric names
      ([solver.ns.thm1] → [wl_solver_ns_thm1]), the original name kept in
      the [# HELP] line;
    - counters become [counter] families ([_total] sample);
    - power-of-two {!Metrics.histogram}s become [histogram] families with
      cumulative [le] buckets;
    - latency instruments and HDR snapshots become [summary] families
      with [quantile] labels (0.5/0.9/0.99/0.999, values in ns);
    - gauges are emitted verbatim;
    - the document ends with [# EOF].

    {!validate} is a dependency-free parser for the same dialect, strict
    enough to catch shape mistakes (samples without a [# TYPE], suffixes
    illegal for the declared type, garbage after [# EOF]) — it backs
    [wl metrics-check] and the CI smoke over [wl stress --metrics-out]. *)

val render :
  ?gauges:(string * float) list ->
  ?labeled:(string * ((string * string) list * float) list) list ->
  ?latencies:(string * Hdr.snapshot) list ->
  ?exemplars:(string * (int * int)) list ->
  (string * Metrics.instrument) list ->
  string
(** Families are emitted sorted by metric name; gauges and latencies are
    merged into the same namespace as the snapshot instruments.

    [labeled] families are gauges with one sample per (label set, value)
    row — e.g. per-tenant daemon figures, with the tenant name as an
    escaped label value.  [exemplars] maps a {e raw} metric name (as
    passed in [latencies] / the snapshot) to [(value, trace_id)] from
    {!Hdr.exemplar}; matching summaries gain OpenMetrics exemplar syntax
    ([# {trace_id="<hex>"} value]) on their [_count] sample. *)

val escape_label : string -> string
(** Label-value escaping (backslash, double quote, newline).  Exposed
    for tests and for callers embedding label values in hand-built
    expositions. *)

val unescape_label : string -> string option
(** Exact inverse of {!escape_label}; [None] on dangling or unknown
    escapes. *)

type stats = { families : int; samples : int }

val validate : string -> (stats, string) result
(** Check a full exposition document.  Errors carry the 1-based line.
    Sample lines may carry an optional timestamp or an OpenMetrics
    exemplar ([# {labels} value [timestamp]]); both are validated, not
    skipped. *)
