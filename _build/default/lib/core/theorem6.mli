(** Theorem 6: on a UPP-DAG with exactly one internal cycle,
    [w <= ceil(4 pi / 3)], constructively.

    The algorithm follows the paper's proof:

    {ol
    {- locate the unique internal cycle and a maximum-load arc [(a, b)] on
       it; pad the family with copies of the dipath [a -> b] until that
       arc's load reaches [pi] (padding never lowers the chromatic number of
       the original family);}
    {- split the arc: delete [(a, b)], add [(a, s)] and [(t, b)] with fresh
       [s] (a sink) and [t] (a source).  Every family dipath through
       [(a, b)] — by the UPP property these are exactly the dipaths from
       [A_a] to [S_b] — is cut into halves [x ~> a -> s] and [t -> b ~> y].
       The split DAG has no internal cycle, so Theorem 1 colors the cut
       family with [pi] colors;}
    {- the [pi] first halves pairwise conflict on [(a, s)], so their colors
       are a bijection [f]; same for the second halves ([g]).  The color
       permutation [sigma = g o f^{-1}] decomposes into cycles: each fixed
       point re-glues for free; each [p]-cycle ([p >= 3]) costs one fresh
       color; 2-cycles are handled in pairs at one fresh color per pair,
       a leftover 2-cycle merging with a [p]-cycle when one exists;}
    {- conflicts created by re-gluing are repaired by moving the (by the
       paper's Facts 1–2, pairwise arc-disjoint) offending outside dipaths
       onto the fresh color of their tuple.}}

    Every returned assignment is re-validated; on families of pairwise
    distinct dipaths the color count is [pi + F <= ceil(4 pi / 3)] with [F]
    the number of fresh colors.

    {b Faithfulness note.}  The paper's Facts 1 and 2 hold for half
    {e shapes} that diverge immediately after the split; identical copies
    (replicated families) and halves sharing a prefix are not covered by
    the written proof, and on such inputs the recoloring argument can
    genuinely need more than one fresh color per tuple.  This
    implementation hardens the construction — colors are re-paired through
    a simple-cycle decomposition of the half-shape transition multigraph,
    repair colors are allocated per damage class (the first arc after [b] /
    last arc before [a]), and a final sweep guarantees validity — but on
    replicated families the {e algorithm} may exceed [ceil(4 pi/3)] even
    though the {e theorem} still holds (e.g. the Theorem 7 family admits an
    explicit optimal coloring; see {!Replication}).  The stats expose what
    happened. *)

open Wl_digraph

exception Not_applicable of string
(** The instance is outside the theorem's hypotheses: the DAG is not UPP,
    or its number of independent internal cycles differs from one. *)

type stats = {
  pi : int;  (** load of the (padded) instance *)
  split_arc : Digraph.arc;  (** the max-load cycle arc that was split *)
  cycle_type : (int * int) list;
      (** [(length, multiplicity)] of the color permutation's cycles *)
  fresh_colors : int;  (** colors added beyond the palette [0 .. pi-1] *)
  n_colors : int;  (** wavelengths actually used by the assignment *)
}

val upper_bound : int -> int
(** [ceil (4 pi / 3)]. *)

val color : ?check:bool -> Instance.t -> Assignment.t
(** Valid assignment with at most [upper_bound (Load.pi inst)] wavelengths.
    [check] (default [true]) verifies the UPP and one-internal-cycle
    hypotheses first and raises {!Not_applicable} when they fail. *)

val color_with_stats : ?check:bool -> Instance.t -> Assignment.t * stats

val split_and_glue :
  subcolor:(Instance.t -> Assignment.t) -> Instance.t -> Assignment.t * stats
(** The reusable engine: split a max-load arc of {e some} internal cycle,
    color the split instance with [subcolor], re-glue and repair.  Theorem 6
    proper is [split_and_glue ~subcolor:Theorem1.color]; the multi-cycle
    recursion of {!Theorem6_multi} passes itself.  When [subcolor] uses more
    than [pi] colors (recursive calls do), the color re-pairing decomposes
    into chains as well as cycles; chains re-glue at their first-half colors
    and only buy fresh colors lazily, for actual repairs.  Raises
    {!Not_applicable} when the DAG has no internal cycle at all. *)

val check_hypotheses : exact_one:bool -> Wl_dag.Dag.t -> unit
(** Raises {!Not_applicable} unless the DAG is UPP with exactly one
    ([exact_one]) or at least one internal cycle. *)
