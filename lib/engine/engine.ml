open Wl_digraph
open Wl_core
module Dag = Wl_dag.Dag
module Classify = Wl_dag.Classify
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Parallel = Wl_util.Parallel

(* Global engine counters (no-ops until [Metrics.set_enabled]); the
   per-session [stats] record is always live, so the warm-start hit rate can
   be reported without enabling the metrics subsystem. *)
let c_ops = Metrics.counter "engine.ops"
let c_warm_hits = Metrics.counter "engine.warm_hits"
let c_fresh = Metrics.counter "engine.fresh_colors"
let c_repairs = Metrics.counter "engine.repairs"
let c_shrinks = Metrics.counter "engine.shrink_recolors"
let c_fallbacks = Metrics.counter "engine.fallbacks"
let c_full = Metrics.counter "engine.full_solves"
let h_cascade = Metrics.histogram "engine.cascade_len"

type path_id = int

type op =
  | Add_path of Digraph.vertex list
  | Remove_path of path_id
  | Add_arc of Digraph.vertex * Digraph.vertex

type op_outcome =
  | Path_added of path_id
  | Path_removed of path_id
  | Arc_added of Digraph.arc

type stats = {
  ops : int;
  warm_hits : int;
  fresh_colors : int;
  repairs : int;
  repair_flips : int;
  shrink_recolors : int;
  warm_removes : int;
  fallbacks : int;
  full_solves : int;
  rejected : int;
}

let hit_rate st =
  if st.ops = 0 then 1.0
  else
    float_of_int (st.warm_hits + st.fresh_colors + st.repairs + st.warm_removes)
    /. float_of_int st.ops

(* All rollback-able state lives in one record so snapshot/rollback are a
   single deep copy.  The occupancy index is the mutable cousin of the
   instance CSR index: per arc, the live slots through it ([occ_slot]) with,
   for each entry, which position of the slot's own arc sequence it is
   ([occ_back]); [slot_pos] is the inverse.  Swap-removal keeps every update
   O(1) per arc of the touched dipath, and [occ_len] doubles as the live
   per-arc load. *)
type core = {
  mutable g : Digraph.t;
  mutable slots : Dipath.t option array; (* None = removed; ids never reused *)
  mutable n_slots : int;
  mutable n_live : int;
  mutable colors : int array; (* per slot; meaningful when [warm] *)
  mutable slot_arcs : int array array; (* cached Dipath.arc_array per slot *)
  mutable slot_pos : int array array; (* slot_pos.(s).(k): index in occ of s's k-th arc *)
  mutable occ_slot : int array array; (* per arc, capacity >= occ_len *)
  mutable occ_back : int array array;
  mutable occ_len : int array; (* live load per arc *)
  mutable n_arcs : int;
  mutable load_hist : int array; (* # arcs with load l, l >= 1 *)
  mutable maxload : int; (* live pi *)
  mutable palette : int; (* # colors in use when [warm] *)
  mutable color_count : int array; (* live wearers per color, length >= palette *)
  mutable classification : Classify.t;
  mutable has_cycle : bool; (* internal cycle present (monotone under add_arc) *)
  mutable warm : bool; (* colors valid, contiguous, palette = maxload = pi *)
  mutable dirty : bool; (* state diverged; next query runs a full solve *)
  mutable cached_report : Solver.report option;
}

type session = {
  sid : int;
  repair_budget : int;
  core : core ref;
  mutable s_ops : int;
  mutable s_warm_hits : int;
  mutable s_fresh : int;
  mutable s_repairs : int;
  mutable s_repair_flips : int;
  mutable s_shrinks : int;
  mutable s_warm_removes : int;
  mutable s_fallbacks : int;
  mutable s_full : int;
  mutable s_rejected : int;
}

type snapshot = { snap_sid : int; snap_core : core }

let next_sid = Atomic.make 0

let clone_core c =
  {
    g = Digraph.copy c.g;
    slots = Array.copy c.slots;
    n_slots = c.n_slots;
    n_live = c.n_live;
    colors = Array.copy c.colors;
    slot_arcs = Array.copy c.slot_arcs; (* rows are immutable once built *)
    slot_pos = Array.map Array.copy c.slot_pos;
    occ_slot = Array.map Array.copy c.occ_slot;
    occ_back = Array.map Array.copy c.occ_back;
    occ_len = Array.copy c.occ_len;
    n_arcs = c.n_arcs;
    load_hist = Array.copy c.load_hist;
    maxload = c.maxload;
    palette = c.palette;
    color_count = Array.copy c.color_count;
    classification = c.classification;
    has_cycle = c.has_cycle;
    warm = c.warm;
    dirty = c.dirty;
    cached_report =
      Option.map (fun r -> { r with Solver.assignment = Array.copy r.Solver.assignment })
        c.cached_report;
  }

(* --- growth helpers -------------------------------------------------------- *)

let grow_int_array a len fill =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len (2 * Array.length a + 4)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_row_array a len fill =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len (2 * Array.length a + 4)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let ensure_arc_capacity c m =
  c.occ_slot <- grow_row_array c.occ_slot m [||];
  c.occ_back <- grow_row_array c.occ_back m [||];
  c.occ_len <- grow_int_array c.occ_len m 0

let ensure_slot_capacity c n =
  c.slots <- grow_row_array c.slots n None;
  c.colors <- grow_int_array c.colors n (-1);
  c.slot_arcs <- grow_row_array c.slot_arcs n [||];
  c.slot_pos <- grow_row_array c.slot_pos n [||]

let bump_load c a =
  let l = c.occ_len.(a) in
  (* [l] is the pre-insert load; the entry itself is pushed by the caller. *)
  c.load_hist <- grow_int_array c.load_hist (l + 2) 0;
  if l >= 1 then c.load_hist.(l) <- c.load_hist.(l) - 1;
  c.load_hist.(l + 1) <- c.load_hist.(l + 1) + 1;
  if l + 1 > c.maxload then c.maxload <- l + 1

let drop_load c a =
  let l = c.occ_len.(a) in
  (* [l] is the pre-remove load. *)
  c.load_hist.(l) <- c.load_hist.(l) - 1;
  if l > 1 then c.load_hist.(l - 1) <- c.load_hist.(l - 1) + 1;
  while c.maxload > 0 && c.load_hist.(c.maxload) = 0 do
    c.maxload <- c.maxload - 1
  done

(* Insert slot [s] into the occupancy of every arc it traverses. *)
let occ_insert c s =
  let arcs = c.slot_arcs.(s) in
  let pos = Array.make (Array.length arcs) 0 in
  Array.iteri
    (fun k a ->
      let i = c.occ_len.(a) in
      let row = c.occ_slot.(a) in
      if i >= Array.length row then begin
        let cap = max 4 (2 * Array.length row) in
        let ns = Array.make cap 0 and nb = Array.make cap 0 in
        Array.blit row 0 ns 0 i;
        Array.blit c.occ_back.(a) 0 nb 0 i;
        c.occ_slot.(a) <- ns;
        c.occ_back.(a) <- nb
      end;
      bump_load c a;
      c.occ_slot.(a).(i) <- s;
      c.occ_back.(a).(i) <- k;
      pos.(k) <- i;
      c.occ_len.(a) <- i + 1)
    arcs;
  c.slot_pos.(s) <- pos

let occ_remove c s =
  let arcs = c.slot_arcs.(s) and pos = c.slot_pos.(s) in
  Array.iteri
    (fun k a ->
      let i = pos.(k) in
      let last = c.occ_len.(a) - 1 in
      let t = c.occ_slot.(a).(last) and kt = c.occ_back.(a).(last) in
      c.occ_slot.(a).(i) <- t;
      c.occ_back.(a).(i) <- kt;
      c.slot_pos.(t).(kt) <- i;
      drop_load c a;
      c.occ_len.(a) <- last)
    arcs

(* --- construction ---------------------------------------------------------- *)

let default_repair_budget = 256

let make_core g classification =
  let m = Digraph.n_arcs g in
  {
    g;
    slots = Array.make 8 None;
    n_slots = 0;
    n_live = 0;
    colors = Array.make 8 (-1);
    slot_arcs = Array.make 8 [||];
    slot_pos = Array.make 8 [||];
    occ_slot = Array.make (max 1 m) [||];
    occ_back = Array.make (max 1 m) [||];
    occ_len = Array.make (max 1 m) 0;
    n_arcs = m;
    load_hist = Array.make 8 0;
    maxload = 0;
    palette = 0;
    color_count = Array.make 8 0;
    classification;
    has_cycle = classification.Classify.n_internal_cycles > 0;
    warm = false;
    dirty = true;
    cached_report = None;
  }

let fresh_session ?(repair_budget = default_repair_budget) core =
  {
    sid = Atomic.fetch_and_add next_sid 1;
    repair_budget;
    core = ref core;
    s_ops = 0;
    s_warm_hits = 0;
    s_fresh = 0;
    s_repairs = 0;
    s_repair_flips = 0;
    s_shrinks = 0;
    s_warm_removes = 0;
    s_fallbacks = 0;
    s_full = 0;
    s_rejected = 0;
  }

let new_slot c p =
  ensure_slot_capacity c (c.n_slots + 1);
  let s = c.n_slots in
  c.n_slots <- s + 1;
  c.slots.(s) <- Some p;
  c.colors.(s) <- -1;
  c.slot_arcs.(s) <- Dipath.arc_array p;
  c.n_live <- c.n_live + 1;
  occ_insert c s;
  s

let create ?repair_budget inst =
  let g = Digraph.copy (Instance.graph inst) in
  let classification = Classify.classify (Instance.dag inst) in
  let core = make_core g classification in
  List.iter (fun p -> ignore (new_slot core p)) (Instance.paths_list inst);
  fresh_session ?repair_budget core

let of_digraph ?repair_budget g =
  match Dag.of_digraph (Digraph.copy g) with
  | Error msg -> Error (Error.Cyclic msg)
  | Ok dag ->
    let core = make_core (Dag.graph dag) (Classify.classify dag) in
    Ok (fresh_session ?repair_budget core)

let id s = s.sid
let n_live_paths s = !(s.core).n_live
let classification s = !(s.core).classification
let pi s = !(s.core).maxload
let is_warm s = (not !(s.core).dirty) && !(s.core).warm

let live_paths s =
  let c = !(s.core) in
  let acc = ref [] in
  for i = c.n_slots - 1 downto 0 do
    match c.slots.(i) with Some p -> acc := (i, p) :: !acc | None -> ()
  done;
  !acc

let stats s =
  {
    ops = s.s_ops;
    warm_hits = s.s_warm_hits;
    fresh_colors = s.s_fresh;
    repairs = s.s_repairs;
    repair_flips = s.s_repair_flips;
    shrink_recolors = s.s_shrinks;
    warm_removes = s.s_warm_removes;
    fallbacks = s.s_fallbacks;
    full_solves = s.s_full;
    rejected = s.s_rejected;
  }

(* --- materialization and the full-solve path ------------------------------- *)

let materialize_core c =
  let g = Digraph.copy c.g in
  (* The session never lets a directed cycle in, so this cannot fail. *)
  let dag = Dag.of_digraph_exn g in
  let live = ref [] in
  for i = c.n_slots - 1 downto 0 do
    match c.slots.(i) with Some p -> live := p :: !live | None -> ()
  done;
  Instance.of_array dag (Array.of_list !live)

let instance s = materialize_core !(s.core)

(* Install a solver assignment back into the per-slot colors; the session
   returns to warm mode when the result has Theorem-1 shape (contiguous
   colors, palette = pi) and the graph still has no internal cycle. *)
let install_assignment c (report : Solver.report) =
  let j = ref 0 in
  let max_c = ref (-1) in
  for i = 0 to c.n_slots - 1 do
    match c.slots.(i) with
    | Some _ ->
      let col = report.Solver.assignment.(!j) in
      c.colors.(i) <- col;
      if col > !max_c then max_c := col;
      incr j
    | None -> ()
  done;
  let palette = !max_c + 1 in
  c.palette <- palette;
  c.color_count <- grow_int_array c.color_count (max 1 palette) 0;
  Array.fill c.color_count 0 (Array.length c.color_count) 0;
  for i = 0 to c.n_slots - 1 do
    if c.slots.(i) <> None then
      c.color_count.(c.colors.(i)) <- c.color_count.(c.colors.(i)) + 1
  done;
  let contiguous = ref true in
  for col = 0 to palette - 1 do
    if c.color_count.(col) = 0 then contiguous := false
  done;
  c.warm <- (not c.has_cycle) && !contiguous && palette = c.maxload

let ensure_clean s =
  let c = !(s.core) in
  if c.dirty then begin
    let solve () =
      let inst = materialize_core c in
      let report = Solver.solve inst in
      install_assignment c report;
      c.dirty <- false;
      c.cached_report <- Some report;
      s.s_full <- s.s_full + 1;
      Metrics.incr c_full
    in
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("paths", Trace.Int c.n_live) ]
        "engine.full_solve" solve
    else solve ()
  end

let build_warm_report c =
  assert (c.warm && not c.dirty);
  let assignment = Array.make c.n_live 0 in
  let j = ref 0 in
  for i = 0 to c.n_slots - 1 do
    if c.slots.(i) <> None then begin
      assignment.(!j) <- c.colors.(i);
      incr j
    end
  done;
  {
    Solver.classification = c.classification;
    pi = c.maxload;
    lower_bound = c.maxload;
    lower_bound_source = Solver.From_load;
    assignment;
    n_wavelengths = c.palette;
    method_used = Solver.Theorem_1;
    optimal = true;
  }

let report s =
  ensure_clean s;
  let c = !(s.core) in
  match c.cached_report with
  | Some r -> r
  | None ->
    let r = build_warm_report c in
    c.cached_report <- Some r;
    r

let color_of s pid =
  let c = !(s.core) in
  if pid < 0 || pid >= c.n_slots then
    Error (Error.Bad_index { what = "path"; index = pid })
  else if c.slots.(pid) = None then
    Error (Error.Invalid_op (Printf.sprintf "path %d was removed" pid))
  else begin
    ensure_clean s;
    Ok c.colors.(pid)
  end

(* --- warm-path machinery --------------------------------------------------- *)

(* Smallest color of [0 .. palette - 1] worn by no live occupant of the
   slot's arcs (other than the slot itself), if any. *)
let free_color c s =
  if c.palette = 0 then None
  else begin
    let used = Array.make c.palette false in
    Array.iter
      (fun a ->
        for j = 0 to c.occ_len.(a) - 1 do
          let q = c.occ_slot.(a).(j) in
          if q <> s then used.(c.colors.(q)) <- true
        done)
      c.slot_arcs.(s);
    let rec first col =
      if col >= c.palette then None else if used.(col) then first (col + 1) else Some col
    in
    first 0
  end

let push_color_count c col =
  c.color_count <- grow_int_array c.color_count (col + 1) 0;
  c.color_count.(col) <- c.color_count.(col) + 1

(* Kempe component of [start] in the {alpha, beta} conflict subgraph over
   live colored slots; collect-then-flip so a partial traversal never leaves
   an invalid coloring behind. *)
let kempe_flip c ~alpha ~beta start =
  let visited = Array.make c.n_slots false in
  let queue = Queue.create () in
  let component = ref [] in
  visited.(start) <- true;
  Queue.push start queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    component := x :: !component;
    let other = if c.colors.(x) = alpha then beta else alpha in
    Array.iter
      (fun a ->
        for j = 0 to c.occ_len.(a) - 1 do
          let q = c.occ_slot.(a).(j) in
          if (not visited.(q)) && c.colors.(q) = other then begin
            visited.(q) <- true;
            Queue.push q queue
          end
        done)
      c.slot_arcs.(x)
  done;
  List.iter
    (fun x ->
      let old = c.colors.(x) in
      let nw = if old = alpha then beta else alpha in
      c.colors.(x) <- nw;
      c.color_count.(old) <- c.color_count.(old) - 1;
      c.color_count.(nw) <- c.color_count.(nw) + 1)
    !component;
  List.length !component

(* The slot is inserted in the occupancy but uncolored; make some color free
   on all its arcs by bounded Theorem-1-style Kempe flips and wear it.
   Returns the number of recolored dipaths, or [None] when the flip budget
   ran out (caller falls back to a full solve). *)
let try_repair c ~budget s =
  (* alpha: the color with the fewest wearers along the slot's arcs. *)
  let cnt = Array.make c.palette 0 in
  Array.iter
    (fun a ->
      for j = 0 to c.occ_len.(a) - 1 do
        let q = c.occ_slot.(a).(j) in
        if q <> s then cnt.(c.colors.(q)) <- cnt.(c.colors.(q)) + 1
      done)
    c.slot_arcs.(s);
  let alpha = ref 0 in
  for col = 1 to c.palette - 1 do
    if cnt.(col) < cnt.(!alpha) then alpha := col
  done;
  let alpha = !alpha in
  (* First arc of the slot still carrying an alpha-wearer. *)
  let find_conflict () =
    let found = ref None in
    let arcs = c.slot_arcs.(s) in
    let i = ref 0 in
    while !found = None && !i < Array.length arcs do
      let a = arcs.(!i) in
      let j = ref 0 in
      while !found = None && !j < c.occ_len.(a) do
        let q = c.occ_slot.(a).(!j) in
        if q <> s && c.colors.(q) = alpha then found := Some (a, q);
        incr j
      done;
      incr i
    done;
    !found
  in
  let rec fix flips =
    match find_conflict () with
    | None ->
      c.colors.(s) <- alpha;
      push_color_count c alpha;
      Some flips
    | Some (a, q) ->
      if flips >= budget then None
      else begin
        (* beta: a palette color absent on arc [a].  One exists: the arc's
           load counts the uncolored slot, so at most [palette - 1] of its
           occupants are colored. *)
        let present = Array.make c.palette false in
        for j = 0 to c.occ_len.(a) - 1 do
          let x = c.occ_slot.(a).(j) in
          if x <> s then present.(c.colors.(x)) <- true
        done;
        let beta = ref 0 in
        while !beta < c.palette && present.(!beta) do
          incr beta
        done;
        if !beta >= c.palette then None (* load accounting broken; bail out *)
        else begin
          let size = kempe_flip c ~alpha ~beta:!beta q in
          if flips + size > budget then None else fix (flips + size)
        end
      end
  in
  fix 0

(* After a warm removal [palette] can exceed the (possibly lowered) load by
   one; empty the smallest color class by greedy recoloring to restore
   [palette = pi].  Fully reverted on failure. *)
let try_shrink c =
  let d = ref 0 in
  for col = 1 to c.palette - 1 do
    if c.color_count.(col) < c.color_count.(!d) then d := col
  done;
  let d = !d in
  let members = ref [] in
  for i = 0 to c.n_slots - 1 do
    if c.slots.(i) <> None && c.colors.(i) = d then members := i :: !members
  done;
  let applied = ref [] in
  let revert () =
    List.iter
      (fun (q, e) ->
        c.colors.(q) <- d;
        c.color_count.(d) <- c.color_count.(d) + 1;
        c.color_count.(e) <- c.color_count.(e) - 1)
      !applied
  in
  let recolor q =
    let used = Array.make c.palette false in
    used.(d) <- true;
    Array.iter
      (fun a ->
        for j = 0 to c.occ_len.(a) - 1 do
          let x = c.occ_slot.(a).(j) in
          if x <> q then used.(c.colors.(x)) <- true
        done)
      c.slot_arcs.(q);
    let rec first e =
      if e >= c.palette then None else if used.(e) then first (e + 1) else Some e
    in
    match first 0 with
    | None -> false
    | Some e ->
      c.colors.(q) <- e;
      c.color_count.(d) <- c.color_count.(d) - 1;
      c.color_count.(e) <- c.color_count.(e) + 1;
      applied := (q, e) :: !applied;
      true
  in
  if List.for_all recolor !members then begin
    (* Class [d] is empty; keep colors contiguous by renaming the last one. *)
    let last = c.palette - 1 in
    if d <> last then begin
      for i = 0 to c.n_slots - 1 do
        if c.slots.(i) <> None && c.colors.(i) = last then c.colors.(i) <- d
      done;
      c.color_count.(d) <- c.color_count.(last)
    end;
    c.color_count.(last) <- 0;
    c.palette <- last;
    true
  end
  else begin
    revert ();
    false
  end

let go_dirty s =
  let c = !(s.core) in
  c.dirty <- true;
  c.warm <- false;
  s.s_fallbacks <- s.s_fallbacks + 1;
  Metrics.incr c_fallbacks

(* --- mutations ------------------------------------------------------------- *)

let count_op s =
  s.s_ops <- s.s_ops + 1;
  Metrics.incr c_ops;
  !(s.core).cached_report <- None

let add_path s verts =
  let c = !(s.core) in
  match Dipath.of_vertices c.g verts with
  | Error msg ->
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Invalid_path msg)
  | Ok p ->
    count_op s;
    let warm = c.warm && not c.dirty in
    let slot = new_slot c p in
    if not warm then c.dirty <- true
    else begin
      match free_color c slot with
      | Some col ->
        (* A free color implies the insertion did not push any arc past the
           palette, so palette = pi still holds. *)
        c.colors.(slot) <- col;
        push_color_count c col;
        s.s_warm_hits <- s.s_warm_hits + 1;
        Metrics.incr c_warm_hits
      | None ->
        if c.maxload = c.palette + 1 then begin
          (* The new path completed a full rainbow arc: the optimum itself
             grew, so a fresh color keeps palette = pi. *)
          c.colors.(slot) <- c.palette;
          push_color_count c c.palette;
          c.palette <- c.palette + 1;
          s.s_fresh <- s.s_fresh + 1;
          Metrics.incr c_fresh
        end
        else
          match try_repair c ~budget:s.repair_budget slot with
          | Some flips ->
            s.s_repairs <- s.s_repairs + 1;
            s.s_repair_flips <- s.s_repair_flips + flips;
            Metrics.incr c_repairs;
            Metrics.observe h_cascade flips
          | None -> go_dirty s
    end;
    Ok slot

let remove_path s pid =
  let c = !(s.core) in
  if pid < 0 || pid >= c.n_slots then begin
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Bad_index { what = "path"; index = pid })
  end
  else
    match c.slots.(pid) with
    | None ->
      s.s_rejected <- s.s_rejected + 1;
      Error (Error.Invalid_op (Printf.sprintf "path %d was already removed" pid))
    | Some _ ->
      count_op s;
      let warm = c.warm && not c.dirty in
      occ_remove c pid;
      c.slots.(pid) <- None;
      c.n_live <- c.n_live - 1;
      if not warm then c.dirty <- true
      else begin
        let col = c.colors.(pid) in
        c.colors.(pid) <- -1;
        c.color_count.(col) <- c.color_count.(col) - 1;
        if c.color_count.(col) = 0 then begin
          let last = c.palette - 1 in
          if col <> last then begin
            for i = 0 to c.n_slots - 1 do
              if c.slots.(i) <> None && c.colors.(i) = last then c.colors.(i) <- col
            done;
            c.color_count.(col) <- c.color_count.(last)
          end;
          c.color_count.(last) <- 0;
          c.palette <- last
        end;
        if c.palette > c.maxload then begin
          if try_shrink c then begin
            s.s_shrinks <- s.s_shrinks + 1;
            s.s_warm_removes <- s.s_warm_removes + 1;
            Metrics.incr c_shrinks
          end
          else go_dirty s
        end
        else s.s_warm_removes <- s.s_warm_removes + 1
      end;
      Ok ()

(* DFS reachability used to reject directed cycles on arc insertion. *)
let reaches g src dst =
  let n = Digraph.n_vertices g in
  let visited = Array.make n false in
  let stack = ref [ src ] in
  let found = ref false in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if v = dst then found := true
      else if not visited.(v) then begin
        visited.(v) <- true;
        List.iter
          (fun w -> if not visited.(w) then stack := w :: !stack)
          (Digraph.succ g v)
      end
  done;
  !found

let add_arc s u v =
  let c = !(s.core) in
  let n = Digraph.n_vertices c.g in
  if u < 0 || u >= n then begin
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Bad_index { what = "vertex"; index = u })
  end
  else if v < 0 || v >= n then begin
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Bad_index { what = "vertex"; index = v })
  end
  else if u = v then begin
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Invalid_op "add_arc: self-loop")
  end
  else if Digraph.mem_arc c.g u v then begin
    s.s_rejected <- s.s_rejected + 1;
    Error (Error.Invalid_op "add_arc: duplicate arc")
  end
  else if reaches c.g v u then begin
    s.s_rejected <- s.s_rejected + 1;
    Error
      (Error.Cyclic
         (Printf.sprintf "adding arc %d -> %d would close a directed cycle" u v))
  end
  else begin
    count_op s;
    let a = Digraph.add_arc c.g u v in
    ensure_arc_capacity c (a + 1);
    c.occ_slot.(a) <- [||];
    c.occ_back.(a) <- [||];
    c.occ_len.(a) <- 0;
    c.n_arcs <- a + 1;
    (* Arc ids are append-only, so cached dipath arc ids stay valid; only the
       classification can change — and an internal cycle appearing is exactly
       the Theorem-1 boundary, where the warm invariant stops being
       meaningful and the next query re-solves from scratch. *)
    let dag = Dag.of_digraph_exn c.g in
    c.classification <- Classify.classify dag;
    let had_cycle = c.has_cycle in
    c.has_cycle <- c.classification.Classify.n_internal_cycles > 0;
    if c.has_cycle && not had_cycle then begin
      c.warm <- false;
      c.dirty <- true
    end;
    if not (c.warm && not c.dirty) then c.dirty <- true;
    Ok a
  end

(* --- snapshot / rollback --------------------------------------------------- *)

let snapshot s = { snap_sid = s.sid; snap_core = clone_core !(s.core) }

let rollback s snap =
  if snap.snap_sid <> s.sid then
    Error
      (Error.Invalid_op
         (Printf.sprintf "rollback: snapshot belongs to session %d, not %d"
            snap.snap_sid s.sid))
  else begin
    s.core := clone_core snap.snap_core;
    Ok ()
  end

(* --- batched submission ---------------------------------------------------- *)

type batch = {
  outcomes : (op_outcome, Error.t) result array;
  batch_report : Solver.report;
  batch_stats : stats;
}

let apply_op s = function
  | Add_path verts -> Result.map (fun pid -> Path_added pid) (add_path s verts)
  | Remove_path pid -> Result.map (fun () -> Path_removed pid) (remove_path s pid)
  | Add_arc (u, v) -> Result.map (fun a -> Arc_added a) (add_arc s u v)

let submit s ops =
  let run () =
    let outcomes = Array.of_list (List.map (apply_op s) ops) in
    let batch_report = report s in
    { outcomes; batch_report; batch_stats = stats s }
  in
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("ops", Trace.Int (List.length ops)) ]
      "engine.submit" run
  else run ()

let submit_many ?domains ?max_in_flight jobs =
  let n = Array.length jobs in
  let distinct =
    let seen = Hashtbl.create n in
    Array.for_all
      (fun (s, _) ->
        if Hashtbl.mem seen s.sid then false
        else begin
          Hashtbl.add seen s.sid ();
          true
        end)
      jobs
  in
  if not distinct then
    (* The same session twice in one wave would race against itself; degrade
       to deterministic sequential submission. *)
    Array.map (fun (s, ops) -> submit s ops) jobs
  else begin
    let wave =
      match max_in_flight with
      | Some w when w > 0 -> w
      | _ -> 4 * Parallel.default_domains ()
    in
    let out = Array.make n None in
    let i = ref 0 in
    while !i < n do
      let hi = min n (!i + wave) in
      let slice = Array.sub jobs !i (hi - !i) in
      let results = Parallel.map_array ?domains (fun (s, ops) -> submit s ops) slice in
      Array.iteri (fun k r -> out.(!i + k) <- Some r) results;
      i := hi
    done;
    Array.map Option.get out
  end

(* --- invariant audit (for tests) ------------------------------------------- *)

let audit s =
  let c = !(s.core) in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_occ () =
    let rec go a =
      if a >= c.n_arcs then Ok ()
      else begin
        let ok = ref (Ok ()) in
        for j = 0 to c.occ_len.(a) - 1 do
          let q = c.occ_slot.(a).(j) and k = c.occ_back.(a).(j) in
          if q < 0 || q >= c.n_slots || c.slots.(q) = None then
            ok := fail "arc %d: dead occupant %d" a q
          else if c.slot_arcs.(q).(k) <> a then
            ok := fail "arc %d: back-pointer of slot %d is wrong" a q
          else if c.slot_pos.(q).(k) <> j then
            ok := fail "arc %d: position of slot %d is wrong" a q
        done;
        match !ok with Ok () -> go (a + 1) | e -> e
      end
    in
    go 0
  in
  let check_loads () =
    let loads = Array.make (max 1 c.n_arcs) 0 in
    for i = 0 to c.n_slots - 1 do
      if c.slots.(i) <> None then
        Array.iter (fun a -> loads.(a) <- loads.(a) + 1) c.slot_arcs.(i)
    done;
    let rec go a =
      if a >= c.n_arcs then Ok ()
      else if loads.(a) <> c.occ_len.(a) then
        fail "arc %d: load %d but occ_len %d" a loads.(a) c.occ_len.(a)
      else go (a + 1)
    in
    match go 0 with
    | Error _ as e -> e
    | Ok () ->
      let m = Array.fold_left max 0 loads in
      if m <> c.maxload then fail "maxload %d but real max %d" c.maxload m else Ok ()
  in
  let check_warm () =
    if not (c.warm && not c.dirty) then Ok ()
    else begin
      let rec arcs_ok a =
        if a >= c.n_arcs then Ok ()
        else begin
          let seen = Array.make (max 1 c.palette) false in
          let clash = ref None in
          for j = 0 to c.occ_len.(a) - 1 do
            let col = c.colors.(c.occ_slot.(a).(j)) in
            if col < 0 || col >= c.palette then clash := Some col
            else if seen.(col) then clash := Some col
            else seen.(col) <- true
          done;
          match !clash with
          | Some col -> fail "arc %d: color %d clashes or out of range" a col
          | None -> arcs_ok (a + 1)
        end
      in
      match arcs_ok 0 with
      | Error _ as e -> e
      | Ok () ->
        if c.palette <> c.maxload then
          fail "warm but palette %d <> pi %d" c.palette c.maxload
        else begin
          let rec counts_ok col =
            if col >= c.palette then Ok ()
            else if c.color_count.(col) <= 0 then fail "warm color %d unused" col
            else counts_ok (col + 1)
          in
          counts_ok 0
        end
    end
  in
  match check_occ () with
  | Error _ as e -> e
  | Ok () -> ( match check_loads () with Error _ as e -> e | Ok () -> check_warm ())
