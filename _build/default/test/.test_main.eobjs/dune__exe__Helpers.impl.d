test/helpers.ml: Alcotest Array Dipath Fun Hashtbl List QCheck2 QCheck_alcotest Wl_conflict Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
