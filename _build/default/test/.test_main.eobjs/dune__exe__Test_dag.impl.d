test/test_dag.ml: Alcotest Array Digraph Dipath Helpers List String Wl_dag Wl_digraph Wl_util
