(** Commit-keyed bench trajectory: append-only JSONL store, robust
    summary statistics, and the statistical regression gate.

    Each recorded run is one {!entry} — keyed by git revision, UTC
    timestamp, domain count, and OCaml version — holding one {!point}
    per bench.  A point summarizes repeated measurements as median +
    MAD (median absolute deviation) + coefficient of variation, so the
    gate can widen its tolerance exactly when the machine is noisy.

    The on-disk format is schema [wavelength-bench-core/3]: one JSON
    object per line ([BENCH_trajectory.jsonl]), or a standalone
    pretty-printed object ([BENCH_core.json]).  {!load} reads both, and
    also accepts the pre-observatory [/1]-[/2] shape (single
    [ns_per_op] measurement, no spread), mapping it to a one-run
    sample so old baselines replay into the same history. *)

type sample = {
  median_ns : float;
  mad_ns : float;  (** median absolute deviation of the runs *)
  cv : float;  (** coefficient of variation (stddev / mean) *)
  runs : int;
}

type point = {
  name : string;  (** bench id — the gate matches history by this *)
  params : (string * int) list;  (** size parameters, inlined as ints *)
  extras : (string * float) list;  (** derived figures, e.g. a hit rate *)
  sample : sample;
  baseline_ns : float option;  (** optional reference arm, e.g. serial *)
  counters : (string * Wl_json.Jsonx.t) list;
      (** engine/metrics counter embedding captured on an instrumented
          observation pass *)
}

type entry = {
  rev : string;
  timestamp : string;  (** ISO-8601 UTC *)
  domains : int;  (** recommended domain count at record time *)
  ocaml_version : string;
  note : string;  (** [""] when absent *)
  points : point list;
  extra : (string * Wl_json.Jsonx.t) list;
      (** unrecognized top-level fields, preserved (e.g. the sweep
          trajectory embedding) *)
}

val schema : string
(** ["wavelength-bench-core/3"]. *)

val summarize : float list -> sample
(** Median, MAD, and CV of the given measurements.
    @raise Invalid_argument on an empty list. *)

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val git_rev : unit -> string
(** [WL_GIT_REV] env var if set, else [git rev-parse --short HEAD],
    else ["unknown"]. *)

val timestamp_now : unit -> string
(** Current time, ISO-8601 UTC (e.g. ["2026-08-06T12:00:00Z"]). *)

val make :
  ?rev:string ->
  ?timestamp:string ->
  ?note:string ->
  ?extra:(string * Wl_json.Jsonx.t) list ->
  domains:int ->
  point list ->
  entry
(** Entry for the current environment; [rev]/[timestamp] default to
    {!git_rev}/{!timestamp_now}. *)

val json_of_instrument : Metrics.instrument -> Wl_json.Jsonx.t
(** Counter as a bare int; histogram as [{count; sum; min; max}] — the
    shape used in point counter embeddings. *)

val to_json : entry -> Wl_json.Jsonx.t
val of_json : Wl_json.Jsonx.t -> (entry, string) result

val append : string -> entry -> unit
(** Append one JSONL line to the trajectory at this path, creating the
    file if needed. *)

val write_file : string -> entry -> unit
(** Write a standalone pretty-printed entry (the [BENCH_core.json]
    shape), truncating. *)

val load : string -> (entry list, string) result
(** Read a trajectory.  Accepts a JSONL file (one entry per line, in
    file order) or a standalone object; schema [/1]-[/2] entries are
    upgraded on the fly.  A missing file is an [Error]; an empty file
    is [Ok []]. *)

(** {1 Regression gate} *)

val alloc_key : string
(** ["gc.minor_w"] — the point-extra key under which the runner records
    minor words per op, and which the gate judges for allocation
    regressions. *)

type verdict = Stable | Regression | Improvement | New_bench

type alloc_check = {
  current_w : float;  (** minor words/op of the judged entry *)
  baseline_w : float;  (** median of the window's recorded figures *)
  tolerance_w : float;
  alloc_verdict : verdict;  (** never [New_bench] *)
}

type bench_verdict = {
  bench : string;
  current_ns : float;
  baseline_med_ns : float;  (** median of the window's medians; [0.] for new *)
  baseline_mad_ns : float;  (** MAD of the window's medians *)
  tolerance_ns : float;
  delta_pct : float;  (** current vs baseline, percent; [0.] for new *)
  verdict : verdict;
  alloc : alloc_check option;
      (** allocation judgement over the ["gc.minor_w"] point extra;
          [None] when the entry or its whole history window lacks the
          figure (pre-gate points never fail the alloc check) *)
}

type comparison = {
  verdicts : bench_verdict list;  (** in the entry's bench order *)
  regressions : int;
  improvements : int;
  stable : int;
  new_benches : int;
  alloc_regressions : int;
      (** benches whose minor words/op grew beyond tolerance — gated
          independently of time, so an allocation leak that does not yet
          cost wall-clock still fails the gate *)
}

val compare :
  ?window:int -> ?threshold_pct:float -> history:entry list -> entry -> comparison
(** Judge [entry] against a rolling baseline: for each of its benches,
    the medians recorded in the last [window] (default 5) history
    entries containing that bench.  The tolerance band around the
    baseline median is [max (threshold_pct% of it) (3 * MAD of the
    window's medians)] (default threshold 10%) — the percentage floor
    absorbs single-point histories, the MAD term widens the band when
    the history itself is noisy.  A shift beyond the band in either
    direction is flagged: slower is {!Regression}, faster is
    {!Improvement} (an unexplained speedup usually means the bench
    broke); inside the band is {!Stable}; absent from history is
    {!New_bench}.

    Benches that record the ["gc.minor_w"] extra (minor words per op)
    are additionally judged on allocation, with the same
    percentage/MAD band plus a fixed floor of 64 words so a
    zero-allocation baseline tolerates a stray boxed temporary.  The
    allocation verdict is independent of the time verdict: a bench can
    be time-stable yet an allocation regression, and
    [alloc_regressions] counts those separately for the gate. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_comparison : Format.formatter -> comparison -> unit
