(** The fuzzing driver: run oracles over seed ranges, shrink what fails.

    Seeds run domain-parallel ({!Wl_util.Parallel}) in waves; failures are
    collected, sorted by seed, and minimized sequentially (shrinking is
    deterministic, so the resulting reproducers are too).  With
    {!Wl_obs.Metrics} enabled each oracle maintains
    [fuzz.<check>.seeds]/[.failures] counters and a per-seed latency
    histogram ([fuzz.<check>.ns]); shrinking records a
    [fuzz.shrink.attempts] histogram, and with {!Wl_obs.Trace} enabled
    each seed runs in a [fuzz.<check>] span and each minimization in a
    [fuzz.shrink] span.

    The JSON summary contains no timing and no machine state, so a run at
    a fixed seed range is byte-stable — the golden tests diff it. *)

type failure = {
  check : string;
  seed : int;
  reason : string;  (** as first observed, before shrinking *)
  shrunk : Shrink.result;
  flight : (string * string) option;
      (** engine-oracle failures carry the shrunk reproducer's flight
          dump as [(jsonl, chrome_trace)] — see {!Oracle.take_flight}.
          Not part of {!to_json} (timings are nondeterministic). *)
}

type check_run = {
  check : string;
  seeds_run : int;  (** < requested seeds only when a time budget hit *)
  failures : failure list;  (** ascending seed order *)
}

type summary = {
  runs : check_run list;  (** in the order the oracles were given *)
  total_seeds : int;
  total_failures : int;
}

val run :
  ?domains:int ->
  ?seed0:int ->
  ?budget_s:float ->
  ?shrink_attempts:int ->
  seeds:int ->
  Oracle.t list ->
  summary
(** Run each oracle over seeds [seed0 .. seed0 + seeds - 1] ([seed0]
    defaults to 0).  [budget_s] is a global wall-clock budget: no new wave
    starts after it elapses (already-running seeds finish), which is what
    bounds the CI smoke-run.  [shrink_attempts] is per-failure (see
    {!Shrink.minimize}). *)

val to_json : ?pretty:bool -> summary -> string
(** Deterministic machine summary, schema [wl-fuzz] version 1; includes
    each shrunk reproducer's [.wl] (and [.wlops]) text. *)

val pp : Format.formatter -> summary -> unit
(** Human summary: one line per check, plus the shrunk reproducer for
    every failure. *)

val write_corpus : dir:string -> summary -> string list
(** Write every failure's shrunk reproducer into a corpus directory as
    [<check>.s<seed>.wl] (see {!Corpus.add}), plus — for failures that
    carry one — the flight dump as [<check>.s<seed>.flight.jsonl] and
    [<check>.s<seed>.flight.trace.json]; returns the paths written. *)
