(** The paper's closing remark on Theorem 6: iterating the split-and-glue
    argument over a UPP-DAG with [C] internal cycles bounds the number of
    wavelengths by [C] nested ceilings of [4/3 · pi]
    (see {!Bounds.theorem6_upper}).

    The recursion splits a maximum-load arc of some internal cycle, colors
    the split instance (which has [C - 1] internal cycles) recursively —
    bottoming out at Theorem 1 — and re-glues with the {!Theorem6} engine.
    Because a recursive sub-coloring may legitimately use more than [pi]
    colors, the re-gluing works with color {e injections} rather than
    bijections; the extra colors surface as chains in the re-pairing and
    cost fresh colors only when an actual repair happens.

    As with {!Theorem6}, the algorithmic bound is tight reasoning for
    families of pairwise distinct dipaths; validity of the output is
    unconditional. *)

type level = {
  depth : int;  (** 0 = outermost split *)
  stats : Theorem6.stats;
}

val color_with_stats : ?check:bool -> Instance.t -> Assignment.t * level list
(** Valid assignment; the level list records one entry per split, outermost
    first.  [check] (default [true]) verifies that the DAG is UPP with at
    least one internal cycle; on a DAG with exactly one this coincides with
    {!Theorem6.color_with_stats}. *)

val color : ?check:bool -> Instance.t -> Assignment.t

val upper_bound : n_internal_cycles:int -> int -> int
(** [Bounds.theorem6_upper], re-exported for convenience. *)
