(* wl — command-line front end for the wavelength/load library.

   Subcommands:
     analyze FILE     classify the DAG and solve the instance
                      (--stats for solver counters, --trace OUT.json for a
                      chrome://tracing / Perfetto trace of the solve)
     color FILE       print one "path <index> wavelength <w>" line per dipath
     route FILE REQS  choose routes for a request file over the instance's
                      DAG (k-shortest + min-load selection), then solve
     generate KIND    emit a generated instance in the text format
     dot FILE         emit Graphviz DOT (wavelength-colored when --solve)
     top FILE         churn an engine session and watch health/latency live
     wld ADDR         serve engine sessions over the wlrpc/1 wire protocol
     trace-check FILE validate a trace file against the trace-event schema
     metrics-check F  validate an OpenMetrics exposition (from --metrics-out)

   The instance file format is documented in lib/core/serial.mli. *)

open Cmdliner
open Wl_core
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Prof = Wl_obs.Prof
module Store = Wl_obs.Store
module Runner = Wl_bench.Runner
module Report = Wl_bench.Report

(* Structured errors exit with their sysexits-style code ({!Error.exit_code});
   plain string errors (CLI usage problems) keep the historical exit 1. *)
let or_die_e ~ctx = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "wl: %s: %s\n" ctx (Error.to_string e);
    exit (Error.exit_code e)

let read_instance file = or_die_e ~ctx:file (Serial.read_file file)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("wl: " ^ msg);
    exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.")

(* --- analyze --- *)

let analyze file trace_file stats =
  let inst = read_instance file in
  let sink =
    match trace_file with
    | None -> None
    | Some _ ->
      let s = Trace.memory () in
      Trace.set_sink s;
      (* With a sink installed, the GC probe decorates every span with
         allocation/collection deltas and self-time. *)
      Prof.enable ();
      Some s
  in
  if stats then begin
    Metrics.set_enabled true;
    (* Profiling needs live spans; without a trace file the discard sink
       runs the probes while dropping the events themselves. *)
    if sink = None then Trace.set_sink Trace.discard;
    Prof.enable ()
  end;
  let report = Solver.solve inst in
  Prof.disable ();
  Trace.clear ();
  Metrics.set_enabled false;
  Format.printf "%a@." (Solver.pp_report ~stats) report;
  if stats && Prof.snapshot () <> [] then
    Format.printf "%a@." Prof.pp_summary ();
  Prof.reset ();
  match (trace_file, sink) with
  | Some out, Some sink ->
    let json = Trace.to_chrome (Trace.events sink) in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    Printf.eprintf "wl: wrote %d trace events to %s\n" (List.length (Trace.events sink)) out
  | _ -> ()

let analyze_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:
            "Write a chrome trace-event JSON of the solve to $(docv) (open \
             in Perfetto or chrome://tracing).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Collect solver-internals counters during the solve and append \
             them (plus the lower-bound provenance) to the report.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Classify the DAG and solve the wavelength assignment.")
    Term.(const analyze $ file_arg $ trace $ stats)

(* --- color --- *)

let color file =
  let inst = read_instance file in
  let report = Solver.solve inst in
  Array.iteri
    (fun i w -> Printf.printf "path %d wavelength %d\n" i w)
    report.Solver.assignment;
  Printf.printf "# %d wavelengths, load %d, method %s\n"
    report.Solver.n_wavelengths report.Solver.pi
    (Solver.method_name report.Solver.method_used)

let color_cmd =
  Cmd.v
    (Cmd.info "color" ~doc:"Print the wavelength of every dipath.")
    Term.(const color $ file_arg)

(* --- route --- *)

let route file reqs_file k json =
  let module Jsonx = Wl_util.Jsonx in
  (* The DAG comes from an instance file; any dipaths it carries are
     ignored — routing chooses the family. *)
  let dag = Instance.dag (read_instance file) in
  let requests = or_die_e ~ctx:reqs_file (Routing.read_requests_file reqs_file) in
  let sel = or_die_e ~ctx:reqs_file (Routing.select ~k dag requests) in
  let inst = Routing.instance_of_selection dag sel in
  let report = Solver.solve inst in
  let g = Wl_dag.Dag.graph dag in
  if json then
    let route_obj i p =
      let x, y = sel.Routing.requests.(i) in
      Jsonx.Obj
        [
          ("src", Jsonx.Int x);
          ("dst", Jsonx.Int y);
          ("path", Jsonx.Arr (List.map (fun v -> Jsonx.Int v) (Wl_digraph.Dipath.vertices p)));
        ]
    in
    print_string
      (Jsonx.to_string ~pretty:true
         (Jsonx.Obj
            [
              ("format", Jsonx.Str "wl-route");
              ("version", Jsonx.Int 1);
              ("vertices", Jsonx.Int (Wl_digraph.Digraph.n_vertices g));
              ("arcs", Jsonx.Int (Wl_digraph.Digraph.n_arcs g));
              ("requests", Jsonx.Int (Array.length sel.Routing.requests));
              ("k", Jsonx.Int sel.Routing.k);
              ("alternatives", Jsonx.Int sel.Routing.n_alternatives);
              ("seed_load", Jsonx.Int sel.Routing.seed_load);
              ("max_load", Jsonx.Int sel.Routing.max_load);
              ("lower_bound", Jsonx.Int sel.Routing.lower_bound);
              ("swaps", Jsonx.Int sel.Routing.swaps);
              ("rounds", Jsonx.Int sel.Routing.rounds);
              ("wavelengths", Jsonx.Int report.Solver.n_wavelengths);
              ("method", Jsonx.Str (Solver.method_name report.Solver.method_used));
              ("optimal", Jsonx.Bool report.Solver.optimal);
              ( "routes",
                Jsonx.Arr (Array.to_list (Array.mapi route_obj sel.Routing.routes)) );
            ]))
  else begin
    Printf.printf "routed %d requests over %d vertices / %d arcs (k = %d)\n"
      (Array.length sel.Routing.requests)
      (Wl_digraph.Digraph.n_vertices g)
      (Wl_digraph.Digraph.n_arcs g)
      sel.Routing.k;
    Printf.printf
      "max arc load %d  (greedy seed %d, lower bound %d%s; %d swaps in %d rounds)\n"
      sel.Routing.max_load sel.Routing.seed_load sel.Routing.lower_bound
      (if sel.Routing.max_load = sel.Routing.lower_bound then
         ", routing-optimal"
       else "")
      sel.Routing.swaps sel.Routing.rounds;
    Printf.printf "wavelengths %d  method %s  optimal %b\n"
      report.Solver.n_wavelengths
      (Solver.method_name report.Solver.method_used)
      report.Solver.optimal;
    Array.iteri
      (fun i p ->
        let x, y = sel.Routing.requests.(i) in
        Printf.printf "route %d: (%d, %d) via%s\n" i x y
          (List.fold_left
             (fun acc v -> acc ^ " " ^ string_of_int v)
             ""
             (Wl_digraph.Dipath.vertices p)))
      sel.Routing.routes
  end

let route_cmd =
  let reqs_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"REQUESTS"
          ~doc:"Request file: optional 'wlreq 1' header, then 'req X Y' lines.")
  in
  let k =
    Arg.(
      value & opt int 8
      & info [ "k" ] ~docv:"K"
          ~doc:"Alternative routes enumerated per request (Yen's algorithm).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the chosen family and bounds as JSON.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Route requests over the instance's DAG (k-shortest enumeration + \
          min-load selection), then solve the wavelength assignment.")
    Term.(const route $ file_arg $ reqs_arg $ k $ json)

(* --- generate --- *)

let generate kind param seed =
  let module F = Wl_netgen.Figures in
  let module G = Wl_netgen.Generators in
  let module PG = Wl_netgen.Path_gen in
  let rng = Wl_util.Prng.create seed in
  let inst =
    match kind with
    | "fig1" -> Ok (F.fig1 (max 2 param))
    | "fig3" -> Ok (F.fig3 ())
    | "fig5" -> Ok (F.fig5 (max 2 param))
    | "havet" -> Ok (F.havet (max 1 param))
    | "random" ->
      let dag = G.gnp_dag rng (max 4 param) 0.2 in
      Ok (PG.random_instance rng dag (2 * param))
    | "random-nic" ->
      let dag = G.gnp_no_internal_cycle rng (max 4 param) 0.2 in
      Ok (PG.random_instance rng dag (2 * param))
    | "random-upp1" ->
      let dag = G.upp_one_internal_cycle rng () in
      Ok (PG.random_instance rng dag (2 * param))
    | "random-uppc" ->
      let dag = G.upp_internal_cycles rng ~cycles:(max 1 param) () in
      Ok (PG.random_instance rng dag 12)
    | "tree" ->
      let dag = G.random_rooted_tree rng (max 2 param) in
      Ok (PG.random_instance rng dag (2 * param))
    | "backbone" ->
      let dag = G.backbone rng ~pops:(max 2 param) ~levels:5 in
      Ok (PG.random_instance rng dag (3 * param))
    | other -> Error (Printf.sprintf "unknown kind %S" other)
  in
  print_string (Serial.to_string (or_die inst))

let generate_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND"
          ~doc:
            "One of fig1, fig3, fig5, havet, random, random-nic (no internal \
             cycle), random-upp1 (UPP, one internal cycle), random-uppc \
             (UPP, PARAM internal cycles), tree (rooted tree), backbone.")
  in
  let param =
    Arg.(value & opt int 4 & info [ "k"; "param" ] ~docv:"N" ~doc:"Size parameter.")
  in
  let seed = Cli_common.seed_arg () in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a generated instance in the text format.")
    Term.(const generate $ kind $ param $ seed)

(* --- dot --- *)

let dot file solve =
  let inst = read_instance file in
  let g = Instance.graph inst in
  if solve then begin
    let report = Solver.solve inst in
    let colored =
      List.mapi
        (fun i p -> (p, report.Solver.assignment.(i)))
        (Instance.paths_list inst)
    in
    print_string (Wl_digraph.Dot.of_colored_paths g colored)
  end
  else print_string (Wl_digraph.Dot.of_digraph g)

let dot_cmd =
  let solve =
    Arg.(value & flag & info [ "solve" ] ~doc:"Color the dipaths by wavelength.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for the instance's digraph.")
    Term.(const dot $ file_arg $ solve)

(* --- svg --- *)

let svg file solve =
  let inst = read_instance file in
  let g = Instance.graph inst in
  if solve then begin
    let report = Solver.solve inst in
    let colored =
      List.mapi
        (fun i p -> (p, report.Solver.assignment.(i)))
        (Instance.paths_list inst)
    in
    print_string (Wl_digraph.Svg.of_colored_paths g colored)
  end
  else print_string (Wl_digraph.Svg.of_digraph g)

let svg_cmd =
  let solve =
    Arg.(value & flag & info [ "solve" ] ~doc:"Color the dipaths by wavelength.")
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Emit a standalone SVG rendering of the instance.")
    Term.(const svg $ file_arg $ solve)

(* --- groom --- *)

let groom file w =
  let inst = read_instance file in
  match Grooming.satisfy inst ~w with
  | None ->
    prerr_endline "wl: no w-satisfiable selection found";
    exit 1
  | Some (sel, assignment) ->
    Printf.printf "# selected %d of %d dipaths, load %d, wavelengths <= %d\n"
      sel.Grooming.size (Instance.n_paths inst) sel.Grooming.load w;
    let slot = ref 0 in
    Array.iteri
      (fun i keep ->
        if keep then begin
          Printf.printf "path %d wavelength %d\n" i assignment.(!slot);
          incr slot
        end
        else Printf.printf "path %d rejected\n" i)
      sel.Grooming.selected

let groom_cmd =
  let w =
    Arg.(
      required
      & opt (some int) None
      & info [ "w"; "wavelengths" ] ~docv:"W" ~doc:"Available wavelengths.")
  in
  Cmd.v
    (Cmd.info "groom"
       ~doc:
         "Select a maximum subfamily satisfiable with W wavelengths (the \
          paper's concluding problem) and assign it.")
    Term.(const groom $ file_arg $ w)

(* --- verify --- *)

let verify file =
  let inst = read_instance file in
  let report = Solver.solve inst in
  match Certificate.audit inst report with
  | [] ->
    Printf.printf "ok: %d wavelengths (load %d, method %s) — report audited\n"
      report.Solver.n_wavelengths report.Solver.pi
      (Solver.method_name report.Solver.method_used)
  | issues ->
    List.iter (fun i -> Printf.printf "ISSUE: %s\n" i) issues;
    exit 1

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Solve the instance and audit the result with the independent \
          certificate checker.")
    Term.(const verify $ file_arg)

(* --- witness --- *)

let witness file =
  let inst = read_instance file in
  let dag = Instance.dag inst in
  let g = Instance.graph inst in
  (match Wl_dag.Internal_cycle.find_canonical dag with
  | None ->
    Printf.printf
      "no internal cycle: w = pi for every family on this DAG (Theorem 1)\n"
  | Some can ->
    Format.printf "%a@." (Wl_dag.Internal_cycle.pp_canonical dag) can;
    (match Theorem2.build dag with
    | Some family ->
      Printf.printf
        "Theorem 2 family (pi = 2, w = 3) witnessing the gap:\n";
      List.iter
        (fun p -> Printf.printf "  %s\n" (Wl_digraph.Dipath.to_string g p))
        (Instance.paths_list family)
    | None -> ()));
  match Wl_dag.Upp.find_violation dag with
  | None -> Printf.printf "the DAG is UPP\n"
  | Some v ->
    Printf.printf "not UPP: two dipaths from %s to %s:\n  %s\n  %s\n"
      (Wl_digraph.Digraph.label g v.Wl_dag.Upp.from_v)
      (Wl_digraph.Digraph.label g v.Wl_dag.Upp.to_v)
      (Wl_digraph.Dipath.to_string g v.Wl_dag.Upp.path1)
      (Wl_digraph.Dipath.to_string g v.Wl_dag.Upp.path2)

let witness_cmd =
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Show the DAG's structural witnesses: an internal cycle (with the \
          Theorem 2 gap family) and/or a UPP violation.")
    Term.(const witness $ file_arg)

(* --- session --- *)

let install_flight_dump = Cli_common.install_flight_dump

let session file ops_file budget quiet flight_dump inject_audit_failure =
  let module Engine = Wl_engine.Engine in
  let module Script = Wl_engine.Script in
  let inst = read_instance file in
  Option.iter install_flight_dump flight_dump;
  let s = Engine.create ?repair_budget:budget inst in
  let r0 = Engine.report s in
  if not quiet then
    Printf.printf "initial: %d paths, %d wavelengths (load %d)\n"
      (Engine.n_live_paths s) r0.Solver.n_wavelengths r0.Solver.pi;
  let ops = or_die_e ~ctx:ops_file (Script.read_file ops_file) in
  let batch = Engine.submit s ops in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Ok (Engine.Path_added pid) ->
        if not quiet then Printf.printf "op %d: path added, id %d\n" i pid
      | Ok (Engine.Path_removed pid) ->
        if not quiet then Printf.printf "op %d: path %d removed\n" i pid
      | Ok (Engine.Arc_added a) ->
        if not quiet then Printf.printf "op %d: arc added, id %d\n" i a
      | Error e -> Printf.printf "op %d: REJECTED: %s\n" i (Error.to_string e))
    batch.Engine.outcomes;
  let r = batch.Engine.batch_report in
  let st = batch.Engine.batch_stats in
  Printf.printf "final: %d paths, %d wavelengths (load %d, method %s%s)\n"
    (Engine.n_live_paths s) r.Solver.n_wavelengths r.Solver.pi
    (Solver.method_name r.Solver.method_used)
    (if r.Solver.optimal then ", optimal" else "");
  Printf.printf
    "engine: %d ops (%d rejected), %d warm hits, %d fresh colors, %d \
     repairs (%d flips), %d shrinks, %d fallbacks, %d full solves, hit \
     rate %.2f\n"
    st.Engine.ops st.Engine.rejected st.Engine.warm_hits
    st.Engine.fresh_colors st.Engine.repairs st.Engine.repair_flips
    st.Engine.shrink_recolors st.Engine.fallbacks st.Engine.full_solves
    (Engine.hit_rate st);
  if not quiet then Format.printf "%a@." Engine.pp_health (Engine.health s);
  if inject_audit_failure then begin
    (* Break the internal load accounting on purpose, then audit: the
       failing audit must latch the flight recorder's auto-dump (proving
       the observability wiring end-to-end in CI). *)
    Engine.corrupt_for_testing s;
    match Engine.audit s with
    | Ok () ->
      prerr_endline "wl: --inject-audit-failure: audit unexpectedly passed";
      exit 1
    | Error msg ->
      Printf.eprintf "wl: injected audit failure detected: %s\n" msg;
      (* sysexits-style Precondition code, same as Error.Precondition *)
      exit 70
  end

let session_cmd =
  let ops_file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"OPS"
          ~doc:
            "Op script: text ($(b,wlops 1) header; $(b,path)/$(b,remove)/\
             $(b,arc) directives) or the JSON mirror (wl-ops).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "repair-budget" ] ~docv:"N"
          ~doc:
            "Max dipaths a single warm repair may recolor before falling \
             back to a full re-solve (0 disables warm repairs).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Only print the final report and engine stats.")
  in
  let flight_dump =
    Cli_common.flight_dump_arg
      ~doc:
        "Install a flight-recorder dump handler: when the session's \
         auto-dump latch fires (failed audit, rejected op) write the op \
         tail as $(docv).jsonl and $(docv).trace.json (the latter passes \
         $(b,wl trace-check))."
      ()
  in
  let inject_audit_failure =
    Arg.(
      value & flag
      & info [ "inject-audit-failure" ]
          ~doc:
            "After the script, deliberately corrupt the session's internal \
             accounting and run the audit; exits 70 once the failure is \
             detected (and dumped, with $(b,--flight-dump)).  CI hook.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Replay an op script against an incremental solving session and \
          report the final assignment, engine counters and session health \
          (op-latency SLO, warm-hit trend).")
    Term.(
      const session $ file_arg $ ops_file $ budget $ quiet $ flight_dump
      $ inject_audit_failure)

(* --- fuzz --- *)

let fuzz_oracles spec =
  let all = Wl_check.Oracle.all in
  if spec = "all" then Ok all
  else
    let names = String.split_on_char ',' spec |> List.map String.trim in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match Wl_check.Oracle.find name with
        | Some o -> resolve (o :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown check %S (try: %s, selftest)" name
               (String.concat ", "
                  (List.map (fun o -> o.Wl_check.Oracle.name) all))))
    in
    resolve [] names

let fuzz checks seeds seed0 budget domains corpus json replay list_checks
    shrink_attempts =
  let module Oracle = Wl_check.Oracle in
  let module Fuzz = Wl_check.Fuzz in
  if list_checks then
    List.iter
      (fun o -> Printf.printf "%-12s %s\n" o.Oracle.name o.Oracle.doc)
      (Oracle.all @ [ Oracle.selftest ])
  else
    match replay with
    | Some dir -> (
      match Wl_check.Corpus.load dir with
      | Error msg ->
        Printf.eprintf "wl: %s: %s\n" dir msg;
        exit 74
      | Ok entries ->
        let failures =
          List.filter_map
            (fun e ->
              Option.map
                (fun reason -> (Filename.basename e.Wl_check.Corpus.wl_file, reason))
                (Wl_check.Corpus.replay e))
            entries
        in
        if failures = [] then
          Printf.printf "corpus ok: %d entries replayed\n" (List.length entries)
        else begin
          List.iter
            (fun (file, reason) -> Printf.printf "REGRESSION: %s: %s\n" file reason)
            failures;
          exit 1
        end)
    | None ->
      let oracles = or_die (fuzz_oracles checks) in
      let summary =
        Fuzz.run ?domains ~seed0 ?budget_s:budget ?shrink_attempts ~seeds
          oracles
      in
      (match corpus with
      | None -> ()
      | Some dir ->
        let written = Fuzz.write_corpus ~dir summary in
        List.iter (fun f -> Printf.eprintf "wl: wrote %s\n" f) written);
      if json then print_string (Fuzz.to_json ~pretty:true summary ^ "\n")
      else Format.printf "%a" Fuzz.pp summary;
      if summary.Fuzz.total_failures > 0 then exit 1

let fuzz_cmd =
  let checks =
    Arg.(
      value & opt string "all"
      & info [ "checks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated oracle names, or $(b,all) for the full \
             differential set plus the lifted validation sweeps (see \
             $(b,--list)).")
  in
  let seeds =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to run per check.")
  in
  let seed0 =
    Arg.(value & opt int 0 & info [ "seed0" ] ~docv:"K" ~doc:"First seed.")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time" ] ~docv:"SECS"
          ~doc:
            "Global wall-clock budget: stop starting new work after $(docv) \
             seconds (the CI smoke-run bound).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D" ~doc:"Worker domains for the seed sweep.")
  in
  let corpus =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Write every failure's shrunk reproducer into this corpus \
             directory as CHECK.sSEED.wl (plus .wlops when ops are \
             involved).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the machine summary (schema wl-fuzz/1, includes the \
             shrunk reproducers; byte-stable at a fixed seed range).")
  in
  let replay =
    Arg.(
      value
      & opt (some dir) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay a regression corpus instead of fuzzing: every entry's \
             oracle must pass; exits 1 on any regression.")
  in
  let list_checks =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the available checks and exit.")
  in
  let shrink_attempts =
    Arg.(
      value
      & opt (some int) None
      & info [ "shrink-attempts" ] ~docv:"N"
          ~doc:"Max oracle re-runs per failure minimization (default 4000).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based fuzzing: run differential oracles over seeded \
          random instances, shrink failures to minimal reproducers, and \
          maintain the regression corpus.")
    Term.(
      const fuzz $ checks $ seeds $ seed0 $ budget $ domains $ corpus $ json
      $ replay $ list_checks $ shrink_attempts)

(* --- bench --- *)

let parse_handicap ~flag ~unit spec =
  match String.rindex_opt spec ':' with
  | None ->
    Error (Printf.sprintf "--%s expects NAME:%s, got %S" flag unit spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let v = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt v with
    | Some v when v >= 0 -> Ok (name, v)
    | _ ->
      Error
        (Printf.sprintf "--%s %s: %s must be a non-negative integer" flag spec
           unit))

let load_history trajectory =
  if Sys.file_exists trajectory then
    or_die_e ~ctx:trajectory
      (Result.map_error (fun m -> Error.Io m) (Store.load trajectory))
  else []

let bench gate record trajectory runs quick threshold window note handicaps
    alloc_handicaps domains =
  let handicaps =
    List.map
      (fun h -> or_die (parse_handicap ~flag:"handicap" ~unit:"NS" h))
      handicaps
  in
  let alloc_handicaps =
    List.map
      (fun h ->
        or_die (parse_handicap ~flag:"alloc-handicap" ~unit:"WORDS" h))
      alloc_handicaps
  in
  Printf.printf "wl bench: %s suite, %d runs/arm%s\n%!"
    (if quick then "quick" else "full")
    runs
    (if handicaps = [] && alloc_handicaps = [] then ""
     else
       " (handicapped: "
       ^ String.concat ", "
           (List.map fst handicaps @ List.map fst alloc_handicaps)
       ^ ")");
  let entry =
    Runner.run_suite ~quick ~runs ~handicaps ~alloc_handicaps ?note ?domains
      ~on_point:(fun p ->
        Printf.printf "  %-34s %12s  ± %-10s cv %4.1f%%\n%!" p.Store.name
          (Report.human_ns p.Store.sample.Store.median_ns)
          (Report.human_ns p.Store.sample.Store.mad_ns)
          (100. *. p.Store.sample.Store.cv))
      ()
  in
  let history = load_history trajectory in
  if record then begin
    Store.append trajectory entry;
    Printf.printf "recorded rev %s @ %s -> %s (%d entries)\n" entry.Store.rev
      entry.Store.timestamp trajectory
      (List.length history + 1)
  end;
  if gate then
    if history = [] then
      if record then
        Printf.printf "gate: no prior baseline; this run starts the trajectory\n"
      else begin
        Printf.eprintf
          "wl: gate: no baseline in %s (record one with wl bench --record)\n"
          trajectory;
        exit 2
      end
    else begin
      let cmp = Store.compare ~window ~threshold_pct:threshold ~history entry in
      Format.printf "%a@." Store.pp_comparison cmp;
      if cmp.Store.regressions > 0 || cmp.Store.alloc_regressions > 0 then begin
        Printf.eprintf
          "wl: gate: %s detected (bless intentional changes with wl bench \
           --record)\n"
          (if cmp.Store.regressions > 0 then "regression"
           else "allocation regression");
        exit 1
      end
      else if cmp.Store.improvements > 0 then exit 3
    end

let bench_cmd =
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Compare this run against the rolling baseline from the \
             trajectory.  Exits 0 when stable, 1 on a regression, 2 when \
             there is no baseline (unless $(b,--record) starts one), 3 on \
             an unexplained improvement.")
  in
  let record =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:
            "Append this run to the trajectory, keyed by git rev — also how \
             an intentional perf change is blessed as the new baseline.")
  in
  let trajectory =
    Arg.(
      value
      & opt string "BENCH_trajectory.jsonl"
      & info [ "trajectory" ] ~docv:"FILE"
          ~doc:"Trajectory file (JSONL, schema wavelength-bench-core/3).")
  in
  let runs =
    Arg.(
      value & opt int 7
      & info [ "runs" ] ~docv:"N" ~doc:"Timed batches per arm (median/MAD over these).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Small instances under distinct bench names — for CI smoke runs; \
             never compared against the full suite.")
  in
  let threshold =
    Arg.(
      value & opt float 10.
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Gate tolerance floor: flag when the median moves more than \
             max($(docv)%% of baseline, 3 x MAD of the baseline window).")
  in
  let window =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"K"
          ~doc:"Baseline = rolling median of the last $(docv) recorded entries.")
  in
  let note =
    Arg.(
      value
      & opt (some string) None
      & info [ "note" ] ~docv:"TEXT" ~doc:"Free-form note stored with the entry.")
  in
  let handicap =
    Arg.(
      value & opt_all string []
      & info [ "handicap" ] ~docv:"NAME:NS"
          ~doc:
            "Inject a busy-wait of NS nanoseconds into the named arm — a \
             synthetic regression for testing the gate end-to-end.")
  in
  let alloc_handicap =
    Arg.(
      value & opt_all string []
      & info [ "alloc-handicap" ] ~docv:"NAME:WORDS"
          ~doc:
            "Inject a synthetic allocation of WORDS minor words into the \
             named arm — an allocation regression for testing the \
             gc.minor_w gate end-to-end.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D" ~doc:"Domain count recorded with the entry.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure the benchmark suite (median/MAD/CV over repeated runs, a \
          steady-state minor-words pass, plus a counter/GC observation \
          pass) and optionally gate against or record into the commit-keyed \
          trajectory.  The gate judges time and allocation independently: \
          either kind of regression exits 1.")
    Term.(
      const bench $ gate $ record $ trajectory $ runs $ quick $ threshold
      $ window $ note $ handicap $ alloc_handicap $ domains)

(* --- report --- *)

let report trajectory html_out check last window threshold =
  let history = load_history trajectory in
  if history = [] then begin
    Printf.eprintf
      "wl: %s is empty or missing (record with wl bench --record)\n" trajectory;
    exit 2
  end;
  let history =
    match last with
    | Some n when n > 0 && List.length history > n ->
      List.filteri (fun i _ -> i >= List.length history - n) history
    | _ -> history
  in
  Format.printf "%a@." (Report.pp_terminal ~window ~threshold_pct:threshold)
    history;
  let html = Report.html ~window ~threshold_pct:threshold history in
  (match html_out with
  | Some out ->
    let oc = open_out out in
    output_string oc html;
    close_out oc;
    Printf.printf "wrote %s (%d bytes, %d entries)\n" out (String.length html)
      (List.length history)
  | None -> ());
  if check then
    match Report.check_html ~history html with
    | Ok n -> Printf.printf "report ok: all %d bench names present\n" n
    | Error msg ->
      Printf.eprintf "wl: report check failed: %s\n" msg;
      exit 1

let report_cmd =
  let trajectory =
    Arg.(
      value
      & opt string "BENCH_trajectory.jsonl"
      & info [ "trajectory" ] ~docv:"FILE"
          ~doc:
            "Trajectory to render (JSONL from wl bench --record, or a \
             BENCH_core.json-style file).")
  in
  let html_out =
    Arg.(
      value
      & opt (some string) None ~vopt:(Some "BENCH_report.html")
      & info [ "html" ] ~docv:"FILE"
          ~doc:
            "Also write the self-contained HTML dashboard (defaults to \
             BENCH_report.html when $(docv) is omitted).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify the generated HTML is well-formed and mentions every \
             bench in the trajectory; exits 1 otherwise.")
  in
  let last =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N" ~doc:"Render only the last $(docv) entries.")
  in
  let window =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"K" ~doc:"Gate window (as in wl bench).")
  in
  let threshold =
    Arg.(
      value & opt float 10.
      & info [ "threshold" ] ~docv:"PCT" ~doc:"Gate threshold (as in wl bench).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the bench trajectory: a terminal dashboard (trend \
          sparklines, baseline deltas, counter movements, GC by span) and \
          optionally the single-file HTML report.")
    Term.(
      const report $ trajectory $ html_out $ check $ last $ window $ threshold)

(* --- trace-check --- *)

let trace_check file =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg ->
      prerr_endline ("wl: " ^ msg);
      exit 1
  in
  match Trace.validate_chrome contents with
  | Ok n -> Printf.printf "trace ok: %d events\n" n
  | Error msg ->
    Printf.eprintf "wl: %s: %s\n" file msg;
    exit 1

let trace_check_cmd =
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a trace file (from analyze --trace, or a flight-recorder \
          .trace.json dump) against the chrome trace-event schema.")
    Term.(const trace_check $ file_arg)

(* --- metrics-check --- *)

let metrics_check file =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg ->
      prerr_endline ("wl: " ^ msg);
      exit 1
  in
  match Wl_obs.Openmetrics.validate contents with
  | Ok st ->
    Printf.printf "metrics ok: %d families, %d samples\n"
      st.Wl_obs.Openmetrics.families st.Wl_obs.Openmetrics.samples
  | Error msg ->
    Printf.eprintf "wl: %s: %s\n" file msg;
    exit 1

let metrics_check_cmd =
  Cmd.v
    (Cmd.info "metrics-check"
       ~doc:
         "Validate an OpenMetrics text exposition (from wl-stress \
          --metrics-out or wl top --metrics-out) against the format rules.")
    Term.(const metrics_check $ file_arg)

(* --- top --- *)

(* Live-daemon mode (--connect): poll the wlrpc/1 introspection RPCs and
   render shard-merged daemon-wide figures — true cross-shard p50/p99
   from the server's Hdr.merge_into rollup, per-tenant rows, exemplar
   trace ids on the tails — without queueing behind engine work. *)
let top_connect ~addr ~frames ~interval ~metrics_out =
  let module Client = Wl_serve.Client in
  let module Proto = Wl_serve.Proto in
  let c = or_die_e ~ctx:addr (Client.connect addr) in
  let tr_p99 = ref [] in
  let last_seen = ref None in
  for frame = 1 to frames do
    let d = or_die_e ~ctx:addr (Client.daemon_stats c) in
    let dh = or_die_e ~ctx:addr (Client.daemon_health c) in
    last_seen := Some d;
    tr_p99 := float_of_int d.Proto.d_add.Proto.l_p99 :: !tr_p99;
    Printf.printf "frame %d/%d: %d shards, %d sessions%s\n" frame frames
      d.Proto.d_shards d.Proto.d_sessions
      (if dh.Proto.dh_healthy then ""
       else
         Printf.sprintf "  [UNHEALTHY: %s]"
           (String.concat "," dh.Proto.dh_unhealthy));
    let row what (r : Proto.lat_rollup) =
      Printf.printf "  %-7s %8d ops  p50 %10s  p99 %10s  max %10s%s\n" what
        r.Proto.l_count
        (Report.human_ns (float_of_int r.Proto.l_p50))
        (Report.human_ns (float_of_int r.Proto.l_p99))
        (Report.human_ns (float_of_int r.Proto.l_max))
        (if r.Proto.l_ex_trace = 0 then ""
         else
           Printf.sprintf "  exemplar %s trace=%x"
             (Report.human_ns (float_of_int r.Proto.l_ex_ns))
             r.Proto.l_ex_trace)
    in
    row "add" d.Proto.d_add;
    row "remove" d.Proto.d_remove;
    Printf.printf "  add p99 trend %s\n" (Report.sparkline (List.rev !tr_p99));
    List.iter
      (fun (t : Proto.tenant_row) ->
        Printf.printf
          "  tenant %-12s shard %d  %5d paths  pi %3d  %6d ops  add p50 %10s  p99 %10s%s\n"
          t.Proto.r_tenant t.Proto.r_shard t.Proto.r_paths t.Proto.r_pi
          t.Proto.r_ops
          (Report.human_ns (float_of_int t.Proto.r_add_p50))
          (Report.human_ns (float_of_int t.Proto.r_add_p99))
          (if t.Proto.r_healthy then "" else "  [UNHEALTHY]"))
      d.Proto.d_tenants;
    flush stdout;
    if interval > 0. && frame < frames then Unix.sleepf interval
  done;
  Client.close c;
  match (metrics_out, !last_seen) with
  | None, _ | _, None -> ()
  | Some path, Some d ->
    let f = float_of_int in
    let doc =
      Wl_obs.Openmetrics.render
        ~gauges:
          [
            ("wld.shards", f d.Proto.d_shards);
            ("wld.sessions", f d.Proto.d_sessions);
            ("wld.add.p50_ns", f d.Proto.d_add.Proto.l_p50);
            ("wld.add.p99_ns", f d.Proto.d_add.Proto.l_p99);
            ("wld.remove.p50_ns", f d.Proto.d_remove.Proto.l_p50);
            ("wld.remove.p99_ns", f d.Proto.d_remove.Proto.l_p99);
          ]
        ~labeled:
          [
            ( "wld.tenant.paths",
              List.map
                (fun (t : Proto.tenant_row) ->
                  ([ ("tenant", t.Proto.r_tenant) ], f t.Proto.r_paths))
                d.Proto.d_tenants );
            ( "wld.tenant.add_p99_ns",
              List.map
                (fun (t : Proto.tenant_row) ->
                  ([ ("tenant", t.Proto.r_tenant) ], f t.Proto.r_add_p99))
                d.Proto.d_tenants );
          ]
        []
    in
    Cli_common.write_text ~progname:"wl top" ~what:"OpenMetrics exposition"
      path doc

(* An in-process churn loop: random add/remove ops against one engine
   session, drawn from the instance's own dipath pool, with a periodic
   terminal readout of latency/health trends.  The point is to watch the
   observability surfaces move — not to benchmark (wl bench does that). *)
let top file connect frames interval ops_per_frame seed budget metrics_out =
  match connect with
  | Some addr ->
    top_connect ~addr ~frames ~interval ~metrics_out;
    ignore (ops_per_frame, seed, budget)
  | None ->
  let module Engine = Wl_engine.Engine in
  let file =
    match file with
    | Some f -> f
    | None ->
      prerr_endline "wl: top: an instance FILE is required unless --connect ADDR is given";
      exit 2
  in
  let inst = read_instance file in
  let pool = Instance.paths inst in
  if Array.length pool = 0 then begin
    prerr_endline "wl: top: the instance has no dipaths to churn";
    exit 1
  end;
  Metrics.set_enabled true;
  let s = Engine.create ?repair_budget:budget inst in
  (* Solve once up front so the churn exercises the warm paths from the
     first frame instead of deferring everything to a dirty re-solve. *)
  ignore (Engine.report s);
  let rng = Wl_util.Prng.create seed in
  let live = ref (List.map fst (Engine.live_paths s)) in
  let n_live = ref (List.length !live) in
  let tr_p99 = ref [] and tr_hit = ref [] and tr_pal = ref [] in
  for frame = 1 to frames do
    for _ = 1 to ops_per_frame do
      if !n_live = 0 || Wl_util.Prng.bernoulli rng 0.55 then (
        match Engine.add_dipath s (Wl_util.Prng.choose rng pool) with
        | Ok pid ->
          live := pid :: !live;
          incr n_live
        | Error _ -> ())
      else
        let pid = List.nth !live (Wl_util.Prng.int rng !n_live) in
        match Engine.remove_path s pid with
        | Ok () ->
          live := List.filter (fun x -> x <> pid) !live;
          decr n_live
        | Error _ -> ()
    done;
    let h = Engine.health s in
    let r = Engine.report s in
    tr_p99 := float_of_int h.Engine.add_latency.Wl_obs.Hdr.p99 :: !tr_p99;
    tr_hit := h.Engine.warm_hit_recent :: !tr_hit;
    tr_pal := float_of_int r.Solver.n_wavelengths :: !tr_pal;
    Printf.printf "frame %d/%d: %d paths, %d wavelengths (load %d)%s\n" frame
      frames (Engine.n_live_paths s) r.Solver.n_wavelengths r.Solver.pi
      (if h.Engine.healthy then "" else "  [UNHEALTHY]");
    Printf.printf "  add p99   %10s  %s\n"
      (Report.human_ns (float_of_int h.Engine.add_latency.Wl_obs.Hdr.p99))
      (Report.sparkline (List.rev !tr_p99));
    Printf.printf "  warm hit  %9.0f%%  %s\n"
      (100. *. h.Engine.warm_hit_recent)
      (Report.sparkline (List.rev !tr_hit));
    Printf.printf "  palette   %10d  %s\n%!" r.Solver.n_wavelengths
      (Report.sparkline (List.rev !tr_pal));
    if interval > 0. && frame < frames then Unix.sleepf interval
  done;
  Format.printf "%a@." Engine.pp_health (Engine.health s);
  Metrics.set_enabled false;
  match metrics_out with
  | None -> ()
  | Some path ->
    let h = Engine.health s in
    let r = Engine.report s in
    Cli_common.write_metrics ~progname:"wl top"
      ~gauges:
        [
          ("engine.session.paths", float_of_int (Engine.n_live_paths s));
          ("engine.session.palette", float_of_int r.Solver.n_wavelengths);
          ("engine.session.pi", float_of_int (Engine.pi s));
          ("engine.session.warm_hit_recent", h.Engine.warm_hit_recent);
          ("engine.session.warm_hit_lifetime", h.Engine.warm_hit_lifetime);
          ( "engine.session.fallback_streak",
            float_of_int h.Engine.fallback_streak );
        ]
      ~latencies:
        [
          ("engine.session.add.ns", h.Engine.add_latency);
          ("engine.session.remove.ns", h.Engine.remove_latency);
        ]
      ~exemplars:
        (List.filter_map
           (fun (name, ex) -> Option.map (fun e -> (name, e)) ex)
           [
             ("engine.session.add.ns", h.Engine.add_exemplar);
             ("engine.session.remove.ns", h.Engine.remove_exemplar);
           ])
      path

let top_cmd =
  let file =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Instance file to churn (omit with $(b,--connect)).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Watch a live daemon instead of churning locally: poll the \
             wlrpc/1 introspection RPCs and render shard-merged \
             daemon-wide p50/p99 (true cross-shard quantiles via the \
             server's histogram merge), per-tenant rows and exemplar \
             trace ids.")
  in
  let frames =
    Arg.(
      value & opt int 10
      & info [ "frames" ] ~docv:"N" ~doc:"Readout frames to render.")
  in
  let interval =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Seconds between frames (0 renders back-to-back; CI uses 0).")
  in
  let ops =
    Arg.(
      value & opt int 256
      & info [ "ops" ] ~docv:"K" ~doc:"Engine ops applied per frame.")
  in
  let seed = Cli_common.seed_arg ~default:0 ~doc:"PRNG seed for the op mix." () in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "repair-budget" ] ~docv:"N"
          ~doc:"Warm-repair recolor budget (as in wl session).")
  in
  let metrics_out =
    Cli_common.metrics_out_arg
      ~doc:
        "After the last frame, write the OpenMetrics exposition (global \
         counters plus this session's gauges and latency summaries) to \
         $(docv) ($(b,-) for stdout)."
      ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Drive a random op churn against one engine session and watch its \
          health live (per-frame latency/warm-hit/palette sparklines plus \
          the SLO readout) — or, with $(b,--connect), watch a running wld \
          daemon's shard-merged rollups and per-tenant rows.")
    Term.(
      const top $ file $ connect $ frames $ interval $ ops $ seed $ budget
      $ metrics_out)

(* --- trace (pull) --- *)

(* Pull the merged flight rings of every live session out of a running
   daemon as one Chrome trace document — the live sibling of the drain
   dump, loadable in Perfetto and accepted by wl trace-check. *)
let trace_pull addr last out =
  let module Client = Wl_serve.Client in
  let c = or_die_e ~ctx:addr (Client.connect addr) in
  let doc = or_die_e ~ctx:addr (Client.trace_pull ~last c) in
  Client.close c;
  (match Trace.validate_chrome doc with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "wl: trace pull: daemon returned an invalid trace: %s\n" msg;
    exit 1);
  Cli_common.write_text ~progname:"wl trace" ~what:"Chrome trace" out doc

let trace_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Daemon address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let last =
    Arg.(
      value & opt int 0
      & info [ "last" ] ~docv:"N"
          ~doc:"Cap ops pulled per session ring (0 = the whole ring).")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Write the trace document to $(docv) ($(b,-) for stdout).")
  in
  let pull_cmd =
    Cmd.v
      (Cmd.info "pull"
         ~doc:
           "Pull the merged flight rings of every live session from a \
            running daemon as one Chrome/Perfetto trace document (one \
            track per session, tenant and trace ids in the event args); \
            validated against the trace-event schema before writing.")
      Term.(const trace_pull $ addr $ last $ out)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Distributed-trace operations against a live wld daemon.")
    [ pull_cmd ]

(* --- wld --- *)

let wld addr shards max_queue flight_capacity metrics_out health_dump
    flight_dump =
  let module Engine = Wl_engine.Engine in
  let module Shard = Wl_serve.Shard in
  let module Server = Wl_serve.Server in
  let address = or_die_e ~ctx:addr (Server.address_of_string addr) in
  Option.iter install_flight_dump flight_dump;
  if metrics_out <> None then Metrics.set_enabled true;
  let shard = Shard.create ~flight_capacity ~shards ~max_queue () in
  let srv = or_die_e ~ctx:addr (Server.serve ~shard address) in
  Printf.eprintf "wld: serving wlrpc/%d on %s (%d shards, queue %d)\n%!"
    Wl_serve.Proto.version
    (Server.address_to_string address)
    shards max_queue;
  let stop _ = Server.request_stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sessions = Server.wait srv in
  Printf.eprintf "wld: drained %d sessions\n%!" (List.length sessions);
  (* per-session health listing: the artifact the drain promises *)
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun (tenant, s) ->
      Format.fprintf fmt "tenant %s@,%a@," tenant Engine.pp_health
        (Engine.health s))
    sessions;
  Format.pp_print_flush fmt ();
  (match health_dump with
  | None -> ()
  | Some path ->
    Cli_common.write_text ~progname:"wld" ~what:"session health listing" path
      (Buffer.contents buf));
  (* flight recorders survive the drain quiesced: dump through the shared
     handler so the traces pass wl trace-check like any other dump *)
  if flight_dump <> None then
    List.iter
      (fun (tenant, s) ->
        let fl = Engine.flight s in
        Wl_obs.Flight.rearm fl;
        Wl_obs.Flight.trigger ~reason:("drain " ^ tenant) fl)
      sessions;
  (match metrics_out with
  | None -> ()
  | Some path ->
    Metrics.set_enabled false;
    Cli_common.write_metrics ~progname:"wld"
      ~gauges:
        [
          ("wld.shards", float_of_int shards);
          ("wld.sessions_at_drain", float_of_int (List.length sessions));
        ]
      path);
  exit 0

let wld_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:PATH) or $(b,tcp:HOST:PORT) (a bare \
             path counts as unix, a bare HOST:PORT as tcp).")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Engine worker domains; sessions are hash-partitioned over \
             them by tenant id.")
  in
  let max_queue =
    Arg.(
      value & opt int 1024
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Per-shard request queue bound; producers block (backpressure) \
             when a shard is this far behind.")
  in
  let flight_capacity =
    Arg.(
      value & opt int 256
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:
            "Flight-recorder ring size per session (smaller than the \
             embedded default so thousands of sessions stay cheap).")
  in
  let metrics_out = Cli_common.metrics_out_arg () in
  let health_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "health-dump" ] ~docv:"PATH"
          ~doc:
            "On drain, write the per-tenant engine health listing to \
             $(docv) ($(b,-) for stdout).")
  in
  let flight_dump = Cli_common.flight_dump_arg () in
  Cmd.v
    (Cmd.info "wld"
       ~doc:
         "Serve wavelength assignment over the wlrpc/1 protocol: a \
          long-lived daemon sharding engine sessions across domains, with \
          graceful drain on SIGTERM (stop accepting, flush shards, dump \
          per-session health).")
    Term.(
      const wld $ addr $ shards $ max_queue $ flight_capacity $ metrics_out
      $ health_dump $ flight_dump)

let () =
  let info =
    Cmd.info "wl" ~version:"1.0.0"
      ~doc:"Wavelength assignment on DAGs (Bermond & Cosnard, IPDPS 2007)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd; color_cmd; route_cmd; generate_cmd; dot_cmd; svg_cmd; groom_cmd;
            witness_cmd; verify_cmd; session_cmd; top_cmd; trace_cmd; wld_cmd;
            fuzz_cmd; bench_cmd; report_cmd; trace_check_cmd; metrics_check_cmd;
          ]))
