open Wl_core
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Prng = Wl_util.Prng
module Classify = Wl_dag.Classify
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock

type case = int -> string option
type property = Instance.t -> string option

type sweep = {
  name : string;
  generate : int -> Instance.t;
  property : property;
}

(* Wrap a case with per-seed observability: a latency histogram and a
   failure counter per sweep name, a [sweep.<name>] span per seed and an
   instant event carrying the failing seed + reason.  All of it vanishes
   (one atomic load per seed) while metrics and tracing are off. *)
let instrument name case =
  let h_latency = Metrics.latency ("sweep." ^ name ^ ".ns") in
  let c_failures = Metrics.counter ("sweep." ^ name ^ ".failures") in
  let c_seeds = Metrics.counter ("sweep." ^ name ^ ".seeds") in
  let span_name = "sweep." ^ name in
  fun seed ->
    if not (Metrics.enabled () || Trace.enabled ()) then case seed
    else begin
      let run () =
        Metrics.incr c_seeds;
        let t0 = Clock.now_ns () in
        let result = case seed in
        Metrics.observe_ns h_latency (Clock.now_ns () - t0);
        (match result with
        | Some reason ->
          Metrics.incr c_failures;
          Trace.instant
            ~args:[ ("seed", Trace.Int seed); ("reason", Trace.Str reason) ]
            (span_name ^ ".failure")
        | None -> ());
        result
      in
      if Trace.enabled () then
        Trace.with_span ~args:[ ("seed", Trace.Int seed) ] span_name run
      else run ()
    end

let dedup paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Wl_digraph.Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    paths

(* Each sweep splits into a deterministic [generate] (seed to instance) and
   a [property] checked on the generated instance.  Properties guard their
   own applicability (returning [None] off-hypothesis) so that they stay
   meaningful on arbitrary instances — the Wl_check shrinker re-runs them
   on mutilated copies of a failing instance, and an off-class copy must
   read as "claim not violated", not as a spurious failure. *)

let theorem1_generate seed =
  let rng = Prng.create seed in
  let dag = Generators.gnp_no_internal_cycle rng 30 0.12 in
  Path_gen.random_instance rng dag 20

let theorem1_property inst =
  if Wl_dag.Internal_cycle.has_internal_cycle (Instance.dag inst) then None
  else
    match Theorem1.color_result inst with
    | Error _ -> Some "unexpected case C"
    | Ok a ->
      if not (Assignment.is_valid inst a) then Some "invalid assignment"
      else if Assignment.n_wavelengths (Assignment.normalize a) <> Load.pi inst
      then Some "w <> pi"
      else None

(* Theorem 2 and case C are claims about the DAG alone; their instances
   carry an empty family and the property rebuilds the gap family. *)
let dag_only_generate seed =
  let rng = Prng.create seed in
  let dag = Generators.gnp_dag rng 16 0.3 in
  Instance.make dag []

let theorem2_property inst =
  let dag = Instance.dag inst in
  match Theorem2.build dag with
  | None ->
    if Wl_dag.Internal_cycle.has_internal_cycle dag then
      Some "no family despite internal cycle"
    else None
  | Some inst ->
    if Load.pi inst <> 2 then Some "pi <> 2"
    else if Bounds.heuristic_upper inst < 3 then Some "w < 3?"
    else if
      not (Wl_conflict.Graph_props.is_cycle_graph (Conflict_of.build inst))
    then Some "conflict graph not a cycle"
    else None

let theorem6_generate seed =
  let rng = Prng.create seed in
  let dag = Generators.upp_one_internal_cycle rng () in
  Instance.make dag (dedup (Path_gen.random_family rng dag 16))

let theorem6_property inst =
  let c = Classify.classify (Instance.dag inst) in
  if not (c.Classify.is_upp && c.Classify.n_internal_cycles = 1) then None
  else
    match Theorem6.color_with_stats ~check:false inst with
    | exception e -> Some (Printexc.to_string e)
    | a, stats ->
      if not (Assignment.is_valid inst a) then Some "invalid assignment"
      else if stats.Theorem6.n_colors > Theorem6.upper_bound stats.Theorem6.pi
      then Some "bound exceeded"
      else None

let theorem6_multi_generate seed =
  let rng = Prng.create seed in
  let cycles = 1 + (seed mod 4) in
  let dag = Generators.upp_internal_cycles rng ~cycles () in
  Instance.make dag (dedup (Path_gen.random_family rng dag 16))

let theorem6_multi_property inst =
  let c = Classify.classify (Instance.dag inst) in
  let cycles = c.Classify.n_internal_cycles in
  if not (c.Classify.is_upp && cycles >= 1) then None
  else
    match Theorem6_multi.color ~check:false inst with
    | exception e -> Some (Printexc.to_string e)
    | a ->
      if not (Assignment.is_valid inst a) then Some "invalid assignment"
      else if
        Assignment.n_wavelengths (Assignment.normalize a)
        > Theorem6_multi.upper_bound ~n_internal_cycles:cycles (Load.pi inst)
      then Some "iterated bound exceeded"
      else None

let case_c_property inst =
  let dag = Instance.dag inst in
  match Theorem2.build dag with
  | None -> None
  | Some inst -> (
    match Theorem1.color_result inst with
    | Ok _ -> Some "theorem 1 succeeded on a gap family"
    | Error (chain, junction) -> (
      match Theorem1.witness_internal_cycle inst ~chain ~junction with
      | None -> Some "no witness extracted"
      | Some walk ->
        let can = Wl_dag.Internal_cycle.canonicalize dag walk in
        if Wl_dag.Internal_cycle.verify_canonical dag can then None
        else Some "witness failed verification"))

let grooming_generate seed =
  let rng = Prng.create seed in
  let dag = Generators.gnp_no_internal_cycle rng 14 0.2 in
  Path_gen.random_instance rng dag 10

let grooming_property inst =
  if Wl_dag.Internal_cycle.has_internal_cycle (Instance.dag inst) then None
  else begin
    let w = max 1 (Load.pi inst / 2) in
    match Grooming.satisfy inst ~w with
    | None -> Some "no selection"
    | Some (sel, assignment) ->
      if sel.Grooming.load > w then Some "selection over load"
      else if Assignment.n_wavelengths assignment > w then Some "over w colors"
      else None
  end

let sweeps =
  [
    { name = "thm1"; generate = theorem1_generate; property = theorem1_property };
    { name = "thm2"; generate = dag_only_generate; property = theorem2_property };
    { name = "thm6"; generate = theorem6_generate; property = theorem6_property };
    {
      name = "thm6multi";
      generate = theorem6_multi_generate;
      property = theorem6_multi_property;
    };
    { name = "casec"; generate = dag_only_generate; property = case_c_property };
    {
      name = "grooming";
      generate = grooming_generate;
      property = grooming_property;
    };
  ]

let case_of_sweep { name; generate; property } =
  instrument name (fun seed -> property (generate seed))

let find_sweep name = List.find_opt (fun s -> s.name = name) sweeps

let all = List.map (fun s -> (s.name, case_of_sweep s)) sweeps

let theorem1 = List.assoc "thm1" all
let theorem2 = List.assoc "thm2" all
let theorem6 = List.assoc "thm6" all
let theorem6_multi = List.assoc "thm6multi" all
let case_c = List.assoc "casec" all
let grooming = List.assoc "grooming" all

let run ?domains ~seeds case =
  let results =
    Wl_util.Parallel.init ?domains seeds (fun seed ->
        match case seed with
        | None -> None
        | Some reason -> Some (seed, reason)
        | exception e -> Some (seed, Printexc.to_string e))
  in
  (* [Parallel.init] already reassembles by index, but the ascending-seed
     contract is part of the interface ("first failure" must not depend on
     ~domains), so enforce it rather than inherit it. *)
  Array.to_list results
  |> List.filter_map Fun.id
  |> List.sort (fun (s1, _) (s2, _) -> compare (s1 : int) s2)
