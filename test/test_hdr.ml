(* HDR histogram correctness, pinned against a sorted-array oracle.

   The bucket scheme quantizes a value to its bucket ceiling, so the
   exact contract is: [quantile h q] equals [round_up h] of the true
   order statistic at rank ceil(q*n) of the recorded multiset.  The
   oracle below computes exactly that from a sorted copy, making the
   checks equalities, not tolerances.  Also: merge associativity (domain
   rollups must not depend on merge order), the SLO window machinery,
   and the zero-allocation record path that lets the engine keep HDR
   recording inside its GC-quiet warm ops. *)

open Helpers
module Hdr = Wl_obs.Hdr
module Prng = Wl_util.Prng

let check_float = Alcotest.(check (float 0.))

let quantiles = [ 0.0; 0.001; 0.01; 0.1; 0.5; 0.9; 0.99; 0.999; 1.0 ]

(* The true order statistic the HDR answer must quantize to. *)
let oracle_quantile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  sorted.(rank - 1)

let check_against_oracle ?sub_bits values =
  let h = Hdr.create ?sub_bits () in
  Array.iter (Hdr.record h) values;
  let sorted = Array.map (fun v -> if v < 0 then 0 else v) values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      check_int
        (Printf.sprintf "q=%g over %d values" q (Array.length values))
        (Hdr.round_up h (oracle_quantile sorted q))
        (Hdr.quantile h q))
    quantiles;
  let n = Array.length sorted in
  check_int "count" n (Hdr.count h);
  check_int "min" sorted.(0) (Hdr.min_value h);
  check_int "max" sorted.(n - 1) (Hdr.max_value h);
  check_int "sum" (Array.fold_left ( + ) 0 sorted) (Hdr.sum h)

let test_quantile_exact_small_range () =
  (* Values below 2^sub_bits are bucketed exactly: the HDR quantile IS
     the order statistic, no rounding at all. *)
  let rng = Prng.create 7 in
  let values = Array.init 1000 (fun _ -> Prng.int rng 64) in
  let h = Hdr.create () in
  Array.iter (Hdr.record h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      check_int
        (Printf.sprintf "exact range q=%g" q)
        (oracle_quantile sorted q) (Hdr.quantile h q))
    quantiles

let test_quantile_oracle_wide_range () =
  (* Mixed magnitudes: ns-scale to seconds-scale latencies. *)
  let rng = Prng.create 42 in
  let values =
    Array.init 5000 (fun _ ->
        let magnitude = Prng.int rng 10 in
        Prng.int rng (1 lsl (3 * magnitude + 3)))
  in
  check_against_oracle values;
  check_against_oracle ~sub_bits:2 values;
  check_against_oracle ~sub_bits:10 values

let test_quantile_oracle_adversarial () =
  (* Bucket-boundary values: powers of two and their neighbours are where
     an off-by-one in index/ceiling arithmetic shows. *)
  let values =
    Array.of_list
      (List.concat_map
         (fun k -> [ (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1 ])
         [ 1; 5; 6; 7; 12; 20; 40; 61 ])
  in
  check_against_oracle values;
  (* Negative inputs clamp to 0 rather than corrupting a bucket. *)
  check_against_oracle [| -5; -1; 0; 3; 1 lsl 30 |]

let test_round_up_monotone_bound () =
  let h = Hdr.create () in
  let rng = Prng.create 3 in
  for _ = 1 to 2000 do
    let v = Prng.int rng (1 lsl 50) in
    let r = Hdr.round_up h v in
    check "ceiling >= value" true (r >= v);
    (* Relative error bound: ceiling < v * (1 + 2^(1-sub_bits)) with
       default sub_bits=6, i.e. under 1/32 above the true value. *)
    check "ceiling within relative error" true
      (r - v <= (v / 32) + 1)
  done

let fill_random ?(n = 2000) seed h =
  let rng = Prng.create seed in
  for _ = 1 to n do
    Hdr.record h (Prng.int rng (1 lsl (6 + Prng.int rng 24)))
  done

let test_merge_associative () =
  let snap_of fills =
    let parts = List.map (fun f -> let h = Hdr.create () in f h; h) fills in
    let dst = Hdr.create () in
    List.iter (fun src -> Hdr.merge_into ~dst src) parts;
    Hdr.snapshot dst
  in
  let a = fill_random 1 and b = fill_random 2 and c = fill_random 3 in
  let left = snap_of [ a; b; c ] in
  let right = snap_of [ c; b; a ] in
  (* ((a+b)+c) via an intermediate merge target. *)
  let ab = Hdr.create () in
  let ha = Hdr.create () and hb = Hdr.create () and hc = Hdr.create () in
  a ha; b hb; c hc;
  Hdr.merge_into ~dst:ab ha;
  Hdr.merge_into ~dst:ab hb;
  let abc = Hdr.create () in
  Hdr.merge_into ~dst:abc ab;
  Hdr.merge_into ~dst:abc hc;
  let nested = Hdr.snapshot abc in
  check "merge order irrelevant" true (left = right);
  check "nested merge agrees" true (left = nested);
  (* And the merged snapshot equals recording everything into one. *)
  let one = Hdr.create () in
  a one; b one; c one;
  check "merge = single recorder" true (left = Hdr.snapshot one)

let test_merge_shard_union () =
  (* The daemon rollup contract: merging per-shard histograms into a
     fresh target answers every quantile exactly as one histogram fed
     the union of all shards' samples would — at any matching sub_bits.
     This is what lets `wl top --connect` print daemon-wide p50/p99
     without any shard ever seeing another shard's samples. *)
  let n_shards = 5 in
  List.iter
    (fun sub_bits ->
      let shards = Array.init n_shards (fun _ -> Hdr.create ~sub_bits ()) in
      let union = Hdr.create ~sub_bits () in
      let rng = Prng.create 99 in
      for i = 1 to 4000 do
        let v = Prng.int rng (1 lsl (4 + Prng.int rng 26)) in
        Hdr.record shards.(i mod n_shards) v;
        Hdr.record union v
      done;
      let merged = Hdr.create ~sub_bits () in
      Array.iter (fun src -> Hdr.merge_into ~dst:merged src) shards;
      List.iter
        (fun q ->
          check_int
            (Printf.sprintf "sub_bits=%d q=%g" sub_bits q)
            (Hdr.quantile union q) (Hdr.quantile merged q))
        quantiles;
      check_int "union count" (Hdr.count union) (Hdr.count merged);
      check_int "union sum" (Hdr.sum union) (Hdr.sum merged);
      check_int "union min" (Hdr.min_value union) (Hdr.min_value merged);
      check_int "union max" (Hdr.max_value union) (Hdr.max_value merged);
      check "union snapshot" true (Hdr.snapshot union = Hdr.snapshot merged))
    [ 2; 6; 10 ]

let test_merge_mismatch_rejected () =
  let a = Hdr.create ~sub_bits:4 () and b = Hdr.create ~sub_bits:8 () in
  Alcotest.check_raises "sub_bits mismatch"
    (Invalid_argument "Hdr.merge_into: sub_bits mismatch") (fun () ->
      Hdr.merge_into ~dst:a b)

let test_empty_and_reset () =
  let h = Hdr.create () in
  check_int "empty count" 0 (Hdr.count h);
  check_int "empty quantile" 0 (Hdr.quantile h 0.99);
  check_int "empty min" 0 (Hdr.min_value h);
  check_int "empty max" 0 (Hdr.max_value h);
  Hdr.record h 1234;
  check "recorded" true (Hdr.count h = 1);
  Hdr.reset h;
  check_int "reset count" 0 (Hdr.count h);
  check_int "reset quantile" 0 (Hdr.quantile h 0.5)

(* --- trace exemplars --------------------------------------------------------- *)

let test_exemplar_latch () =
  let h = Hdr.create () in
  check "no exemplar when empty" true (Hdr.exemplar h = None);
  Hdr.record h 5_000;
  check "untraced records never latch" true (Hdr.exemplar h = None);
  Hdr.record_traced h 700 ~trace:0xa1;
  check "first traced sample latches" true (Hdr.exemplar h = Some (700, 0xa1));
  Hdr.record_traced h 300 ~trace:0xb2;
  check "faster sample does not displace" true
    (Hdr.exemplar h = Some (700, 0xa1));
  Hdr.record_traced h 900 ~trace:0xc3;
  check "slower sample takes the latch" true
    (Hdr.exemplar h = Some (900, 0xc3));
  Hdr.record_traced h 10_000 ~trace:0;
  check "trace 0 means untraced, even if slowest" true
    (Hdr.exemplar h = Some (900, 0xc3));
  Hdr.reset h;
  check "reset clears the exemplar" true (Hdr.exemplar h = None)

let test_exemplar_survives_merge () =
  (* Shard-merged rollups keep the link to the slowest trace daemon-wide:
     the worse of the two exemplars survives merge_into. *)
  let a = Hdr.create () and b = Hdr.create () in
  Hdr.record_traced a 400 ~trace:0x11;
  Hdr.record_traced b 4_000 ~trace:0x22;
  let dst = Hdr.create () in
  Hdr.merge_into ~dst a;
  check "merge imports the source exemplar" true
    (Hdr.exemplar dst = Some (400, 0x11));
  Hdr.merge_into ~dst b;
  check "worse exemplar wins across shards" true
    (Hdr.exemplar dst = Some (4_000, 0x22));
  (* Merging an exemplar-free histogram does not erase the latch. *)
  let c = Hdr.create () in
  Hdr.record c 9_999;
  Hdr.merge_into ~dst c;
  check "exemplar-free source leaves the latch alone" true
    (Hdr.exemplar dst = Some (4_000, 0x22))

(* --- SLO window -------------------------------------------------------------- *)

let test_slo_trip_and_rearm () =
  let slo = Hdr.Slo.create ~window:64 ~target_ns:100 ~budget:0.1 () in
  for _ = 1 to 64 do
    Hdr.Slo.record slo 50
  done;
  check "all under target: healthy" true (Hdr.Slo.healthy slo);
  check_float "burn 0" 0. (Hdr.Slo.burn_rate slo);
  (* 10% budget over a 64-wide window: 7 violations cross it. *)
  for _ = 1 to 7 do
    Hdr.Slo.record slo 1000
  done;
  check "tripped" true (Hdr.Slo.tripped slo);
  (* Latched: recovering the window does not silently clear the trip. *)
  for _ = 1 to 64 do
    Hdr.Slo.record slo 10
  done;
  check "still tripped (latched)" true (Hdr.Slo.tripped slo);
  let st = Hdr.Slo.state slo in
  check_int "lifetime over-target count survives" 7 st.Hdr.Slo.total_over;
  Hdr.Slo.rearm slo;
  check "rearmed" true (Hdr.Slo.healthy slo);
  let st = Hdr.Slo.state slo in
  check_int "window cleared" 0 st.Hdr.Slo.observed;
  check_int "lifetime totals kept" 7 st.Hdr.Slo.total_over

let test_slo_min_fill_guard () =
  (* A single slow op in a barely-filled window must not trip: the trip
     needs window/8 observations first. *)
  let slo = Hdr.Slo.create ~window:512 ~target_ns:100 ~budget:0.01 () in
  Hdr.Slo.record slo 10_000;
  check "one op never trips" true (Hdr.Slo.healthy slo);
  for _ = 1 to 62 do
    Hdr.Slo.record slo 10
  done;
  check "below min fill" true (Hdr.Slo.healthy slo);
  Hdr.Slo.record slo 10_000;
  (* 64 observed, 2 over: 3.1% > 1% budget — now it trips. *)
  check "trips once the window is credible" true (Hdr.Slo.tripped slo)

(* --- allocation discipline --------------------------------------------------- *)

let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_record_path_zero_alloc () =
  let h = Hdr.create () in
  let slo = Hdr.Slo.create ~target_ns:500 ~budget:0.5 () in
  (* Warm both paths (first records touch every code path once). *)
  for i = 1 to 100 do
    Hdr.record h (i * 37);
    Hdr.Slo.record slo (i * 37)
  done;
  let dw =
    minor_delta (fun () ->
        for i = 1 to 1000 do
          Hdr.record h (i * 1531);
          Hdr.Slo.record slo (i * 1531)
        done)
  in
  check_float "Hdr.record and Slo.record allocate nothing" 0. dw

let suite =
  [
    ( "hdr",
      [
        Alcotest.test_case "exact small range" `Quick
          test_quantile_exact_small_range;
        Alcotest.test_case "quantiles vs sorted oracle" `Quick
          test_quantile_oracle_wide_range;
        Alcotest.test_case "bucket boundaries" `Quick
          test_quantile_oracle_adversarial;
        Alcotest.test_case "round_up bound" `Quick test_round_up_monotone_bound;
        Alcotest.test_case "merge associativity" `Quick test_merge_associative;
        Alcotest.test_case "shard merge equals union" `Quick
          test_merge_shard_union;
        Alcotest.test_case "merge mismatch rejected" `Quick
          test_merge_mismatch_rejected;
        Alcotest.test_case "exemplar latch" `Quick test_exemplar_latch;
        Alcotest.test_case "exemplar survives merge" `Quick
          test_exemplar_survives_merge;
        Alcotest.test_case "empty and reset" `Quick test_empty_and_reset;
        Alcotest.test_case "slo trips and latches" `Quick
          test_slo_trip_and_rearm;
        Alcotest.test_case "slo min-fill guard" `Quick test_slo_min_fill_guard;
        Alcotest.test_case "record path zero-alloc" `Quick
          test_record_path_zero_alloc;
      ] );
  ]
