lib/netgen/traffic.ml: Array List Routing Wl_core Wl_dag Wl_util
