(** Result-typed client for the wavelength-assignment service.

    Mirrors the {!Wl_engine.Engine} session API one-to-one — every call
    returns [('a, Wl_core.Error.t) result], never raises — over either
    transport:

    {ul
    {- {!connect} — a remote [wld] daemon ([unix:PATH] or
       [tcp:HOST:PORT]);}
    {- {!local} / {!of_shard} — an in-process loopback that still runs
       every request and reply through the full [wlrpc/1] codec
       (encode, frame, unframe, decode), so switching a program between
       embedded and remote operation changes one constructor, not its
       observable behavior.}}

    A {!session} is a tenant handle bound to a client; all engine
    operations go through one.  One client may serve many sessions and
    is safe to share between threads (remote calls serialize on the
    connection). *)

open Wl_core
module Digraph = Wl_digraph.Digraph
module Engine = Wl_engine.Engine

type t
type session

type outcomes = {
  outcomes : (Proto.outcome, Error.t) result array;
  after : Proto.report;
}
(** Wire projection of {!Wl_engine.Engine.batch}. *)

(** {1 Connecting} *)

val connect : ?json:bool -> string -> (t, Error.t) result
(** Dial a daemon at an {!Server.address} string.  [json] selects the
    JSON mirror encoding for requests (replies come back in kind);
    default is the text form. *)

val local :
  ?json:bool ->
  ?threaded:bool ->
  ?flight_capacity:int ->
  ?shards:int ->
  ?max_queue:int ->
  unit ->
  t
(** Self-contained loopback client over a private {!Shard.t}
    ([threaded] defaults to [false]: requests execute synchronously on
    the caller, which keeps engine statistics deterministic). *)

val of_shard : ?json:bool -> Shard.t -> t
(** Loopback over an existing shard set (the daemon's own, in tests). *)

val close : t -> unit
(** Remote: close the socket.  Loopback: drain the private shards.
    Idempotent; later calls return [Error (Invalid_op _)]. *)

val call : t -> Proto.req -> Proto.reply
(** Raw escape hatch: one request, one reply, full codec round trip. *)

(** {1 Admin} *)

val hello : t -> (int, Error.t) result
(** Version handshake; the daemon's protocol revision. *)

val ping : t -> (unit, Error.t) result

val shutdown_server : t -> (unit, Error.t) result
(** Ask the daemon to drain and exit (loopback: a no-op [Ok ()]). *)

(** {1 Sessions} *)

val session : t -> tenant:string -> (session, Error.t) result
(** A handle for [tenant] (validated by {!Proto.tenant_ok}); does not
    open anything server-side. *)

val open_session : t -> tenant:string -> Instance.t -> (session, Error.t) result
(** Open (or replace) the tenant's engine session from an instance. *)

val tenant : session -> string

(** {1 Engine operations} — names and shapes follow
    {!Wl_engine.Engine}. *)

val add_path : session -> Digraph.vertex list -> (Engine.path_id, Error.t) result
val remove_path : session -> Engine.path_id -> (unit, Error.t) result
val add_arc : session -> Digraph.vertex -> Digraph.vertex -> (Digraph.arc, Error.t) result
val submit : session -> Engine.op list -> (outcomes, Error.t) result
val report : session -> (Proto.report, Error.t) result
val pi : session -> (int, Error.t) result
val color_of : session -> Engine.path_id -> (int, Error.t) result
val stats : session -> (Engine.stats, Error.t) result
val health : session -> (Proto.health, Error.t) result
val snapshot : session -> (Instance.t, Error.t) result
val evict : session -> (unit, Error.t) result
