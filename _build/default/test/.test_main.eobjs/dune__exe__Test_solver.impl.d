test/test_solver.ml: Alcotest Assignment Bounds Helpers List Solver Theorem6 Wl_core Wl_dag Wl_netgen Wl_util
