(** Domain-safe counters and histograms for solver internals.

    Instruments are created once at module-init time (creation takes a
    registry lock) and then updated lock-free from any domain: updates go
    to per-domain-striped [Atomic.t] cells, so concurrent sweeps over
    {!Wl_util.Parallel} never contend on a single cache line, and reads
    sum the stripes.

    The whole subsystem is gated on one flag: while disabled (the default)
    every update is a single atomic load and a branch — no allocation, no
    store — so instruments can sit inside the Theorem 1 insertion loop
    without showing up in a profile.  Enable with {!set_enabled} around the
    region you want measured, then {!snapshot} or {!pp_summary}. *)

type counter
type histogram
type latency

val set_enabled : bool -> unit
(** Enable/disable all updates.  Call before spawning worker domains so
    they observe the flag. *)

val enabled : unit -> bool

val counter : string -> counter
(** Find-or-create the counter registered under this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram : string -> histogram
(** Find-or-create.  Buckets are powers of two: observation [v] lands in
    bucket [ceil(log2 (max v 1))], so one histogram covers counts of 1 and
    latencies of 10^9 ns alike. *)

val observe : histogram -> int -> unit
(** Record one observation.  Negative values are clamped into the first
    bucket but still counted in [sum]/[min]/[max]. *)

val latency : string -> latency
(** Find-or-create a latency-class instrument: an {!Hdr} histogram with
    exact p50/p90/p99/p999 from fixed memory.  Use for nanosecond
    durations; plain {!histogram} remains for magnitude-class counts. *)

val observe_ns : latency -> int -> unit
(** Record one duration.  Gated like every update; lock-free and
    allocation-free when enabled. *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;  (** [max_int] when empty *)
  max : int;  (** [min_int] when empty *)
  buckets : (int * int) list;
      (** [(upper_bound, count)] for each non-empty bucket, ascending *)
}

type instrument =
  | Counter of int
  | Histogram of hist_snapshot
  | Latency of Hdr.snapshot

val snapshot : unit -> (string * instrument) list
(** Every registered instrument with a non-zero value/count, sorted by
    name.  Instruments that were never touched are omitted.  The sort
    makes snapshots (and everything rendered from them — {!pp_summary},
    bench counter embeddings, {!diff}) deterministic across runs and
    domain counts. *)

val diff :
  (string * instrument) list ->
  (string * instrument) list ->
  (string * int * int) list
(** [diff before after] — per-instrument [(name, before, after)] deltas
    between two snapshots: counters compare by value, histograms by
    observation count.  Names whose scalar did not change are dropped;
    a name missing on one side counts as 0 there.  Sorted by name (the
    caller ranks by magnitude if it wants "top movements", as
    [wl report] does). *)

val find_counter : string -> int option
(** Current value of a registered counter, [None] if absent. *)

val find_histogram : string -> hist_snapshot option
val find_latency : string -> Hdr.snapshot option

val reset : unit -> unit
(** Zero every instrument (registration survives). *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable table of {!snapshot}: counters as [name value],
    histograms as [name count/sum/min/mean/max]. *)
