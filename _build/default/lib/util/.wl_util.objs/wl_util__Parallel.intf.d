lib/util/parallel.mli:
