type t = int array

let first_conflict inst assignment =
  let n = Instance.n_paths inst in
  if Array.length assignment <> n then
    invalid_arg "Assignment: length mismatch with family";
  Array.iter (fun c -> if c < 0 then invalid_arg "Assignment: negative color") assignment;
  let g = Instance.graph inst in
  let m = Wl_digraph.Digraph.n_arcs g in
  (* Per-color owner table stamped per arc: one pass over the CSR index,
     no per-arc hashtable. *)
  let max_c = Array.fold_left max (-1) assignment in
  let owner = Array.make (max_c + 2) 0 in
  let stamp = Array.make (max_c + 2) (-1) in
  let off, ids = Instance.csr_index inst in
  let module Flat = Wl_util.Flat in
  let result = ref None in
  let a = ref 0 in
  while !result = None && !a < m do
    let lo = Flat.get off !a and hi = Flat.get off (!a + 1) in
    let i = ref lo in
    while !result = None && !i < hi do
      let p = Flat.unsafe_get ids !i in
      let c = assignment.(p) in
      if stamp.(c) = !a then result := Some (owner.(c), p, !a)
      else begin
        stamp.(c) <- !a;
        owner.(c) <- p
      end;
      incr i
    done;
    incr a
  done;
  !result

let is_valid inst assignment = first_conflict inst assignment = None

let n_wavelengths t =
  if Array.length t = 0 then 0 else 1 + Array.fold_left max (-1) t

let normalize t = Wl_conflict.Coloring.normalize t

let of_conflict_coloring c = Array.copy c

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t)
