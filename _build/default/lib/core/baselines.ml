open Wl_digraph
module Prng = Wl_util.Prng

let first_fit_order order inst =
  let n = Instance.n_paths inst in
  if Array.length order <> n then invalid_arg "Baselines.first_fit_order";
  let g = Instance.graph inst in
  let assignment = Array.make n (-1) in
  (* Occupancy per arc: colors in use by already-assigned dipaths. *)
  let occupied = Array.make (max 1 (Digraph.n_arcs g)) [] in
  Array.iter
    (fun i ->
      let arcs = Dipath.arcs (Instance.path inst i) in
      let used = List.concat_map (fun a -> occupied.(a)) arcs in
      let rec smallest c = if List.mem c used then smallest (c + 1) else c in
      let c = smallest 0 in
      assignment.(i) <- c;
      List.iter (fun a -> occupied.(a) <- c :: occupied.(a)) arcs)
    order;
  assignment

let first_fit inst =
  first_fit_order (Array.init (Instance.n_paths inst) Fun.id) inst

let first_fit_random rng inst =
  first_fit_order (Prng.permutation rng (Instance.n_paths inst)) inst

let best_of_random_orders rng ~tries inst =
  if tries < 1 then invalid_arg "Baselines.best_of_random_orders";
  let best = ref (first_fit inst) in
  for _ = 2 to tries do
    let candidate = first_fit_random rng inst in
    if Assignment.n_wavelengths candidate < Assignment.n_wavelengths !best then
      best := candidate
  done;
  !best
