(** Named fuzzing oracles: seeded subject generators paired with checks.

    Each oracle bundles a deterministic generator ([generate seed], always
    the same subject for the same seed) with a total check ([None] when
    every claim held).  The differential oracles pit independent solver
    arms against each other — the paper's sharp statements make every arm
    an oracle for every other:

    {ul
    {- [thm1_dsatur]: on internal-cycle-free DAGs, Theorem 1 must be
       valid and use exactly [pi] colors, while DSATUR (independent arm,
       via the conflict graph) must be valid and can never beat [pi];}
    {- [solver_exact]: {!Wl_core.Solver.solve} vs the exact chromatic
       number of the conflict graph on small instances — an [optimal]
       report must agree with it exactly, and no arm may go below it;}
    {- [engine]: random op sequences against a warm {!Wl_engine.Engine}
       session, compared op by op with a fresh [Solver.solve] of the
       materialized instance (the PR-3 equivalence property, here in
       shrinkable form);}
    {- [serial]: text v1/v2 and JSON round-trips of instances and op
       scripts must reproduce the structure byte-stably;}
    {- [invariants]: the paper's unconditional claims on a mixed diet of
       generated classes — validity, [pi <= w], [w = pi] without internal
       cycles, [K_{2,3}]-freeness of UPP conflict graphs (Corollary 5),
       the Theorem 6 ceiling, and a full {!Wl_core.Certificate} audit.}}

    The validation sweeps of {!Wl_validate.Sweeps} are lifted into the
    same shape by {!of_sweep}, so one fuzz/shrink pipeline serves both.

    Checks guard their own applicability: a subject outside an oracle's
    structural class (which the shrinker produces on purpose) reads as a
    pass, never as a spurious failure. *)

type t = {
  name : string;
  doc : string;  (** one-line description, shown by [wl fuzz --list] *)
  generate : int -> Subject.t;  (** deterministic in the seed *)
  check : Subject.t -> string option;  (** [None] = every claim held *)
}

val thm1_dsatur : t
val solver_exact : t
val engine : t
val serial : t
val invariants : t

val routing_packing : t
(** The full routing stage ({!Wl_core.Routing.select}) on fuzzed request
    sets, the requests carried as routed dipaths so the stock shrinker
    applies: the packing-number-style lower bound may never exceed the
    achieved load, the achieved load may never exceed the wavelength
    count of the solved family, and local search may never end above the
    greedy seed. *)

val client_vs_engine : t
(** A {!Wl_serve.Client} loopback session (full [wlrpc/1] codec round
    trip on every call, text and JSON encodings both) replayed op-for-op
    against a bare {!Wl_engine.Engine} session: outcomes, reports, stats,
    colors and snapshots must agree exactly — the service boundary may
    not change observable engine behavior. *)

val wlrpc_frame : t
(** Frame- and payload-level robustness of the [wlrpc/1] codecs:
    encode/decode round trips are exact (requests, replies and every
    {!Wl_core.Error.t} constructor, in both encodings), and corrupted
    frames — truncated, oversized, zero-length or garbage prefixes,
    flipped payload bytes — decode to protocol errors, never exceptions
    or hangs. *)

val of_sweep : Wl_validate.Sweeps.sweep -> t
(** Lift a validation sweep (op script always empty, the property as the
    check) so sweep failures shrink like native oracle failures. *)

val selftest : t
(** A deliberately false claim ("no instance has load [>= 2]") used to
    exercise the whole catch/shrink/reproduce pipeline deterministically.
    Not part of {!all}; reachable by name. *)

val all : t list
(** The native oracles above followed by the lifted sweeps ([thm1],
    [thm2], [thm6], [thm6multi], [casec], [grooming]).  Excludes
    {!selftest}. *)

val find : string -> t option
(** Lookup by name over {!all} plus {!selftest}. *)

val run : t -> int -> (int * string) option
(** Generate and check one seed; exceptions from either phase are captured
    as failures.  Returns [(seed, reason)] on failure. *)

val take_flight : unit -> (string * string) option
(** Pop the [(jsonl, chrome)] flight-recorder dump left by the last
    failing {!engine} check, if any.  A side channel with last-writer
    semantics: only meaningful right after a sequential check, which is
    how {!Fuzz} attaches dumps to shrunk reproducers. *)
