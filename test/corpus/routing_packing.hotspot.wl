wl 2
dag 7
arc 0 1
arc 1 6
arc 0 2
arc 2 3
arc 3 6
arc 0 4
arc 4 5
arc 5 6
path 0 1 6
path 0 1 6
path 0 1 6
path 0 1 6
path 0 1 6
path 0 1 6
