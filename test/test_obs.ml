(* Observability (Wl_obs): span nesting and timing, counter correctness
   under domain-parallel maps, chrome trace-event JSON round-trips, and
   the zero-overhead contract of the disabled path on the Theorem 1 hot
   loop.  Metrics and tracing are global state, so every test restores
   the disabled defaults before returning. *)

open Helpers
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock
module Prof = Wl_obs.Prof
module Parallel = Wl_util.Parallel
module Theorem1 = Wl_core.Theorem1
module Solver = Wl_core.Solver
module Sweeps = Wl_validate.Sweeps

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let with_trace f =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.clear (fun () -> f sink)

(* --- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  let events =
    with_trace (fun sink ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1));
            Trace.instant "mark");
        Trace.events sink)
  in
  check_int "three events" 3 (List.length events);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let outer = find "outer" and inner = find "inner" and mark = find "mark" in
  check_int "outer at depth 0" 0 outer.Trace.depth;
  check_int "inner at depth 1" 1 inner.Trace.depth;
  check "instant flagged" true mark.Trace.instant;
  check "inner starts after outer" true (inner.Trace.ts_us >= outer.Trace.ts_us);
  check "inner contained in outer" true
    (inner.Trace.ts_us +. inner.Trace.dur_us
    <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1e-3);
  check "durations non-negative" true
    (List.for_all (fun e -> e.Trace.dur_us >= 0.) events);
  (* [events] promises start-time order. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && sorted rest
    | _ -> true
  in
  check "start-time sorted" true (sorted events)

let test_span_survives_raise () =
  let events =
    with_trace (fun sink ->
        (try Trace.with_span "doomed" (fun () -> failwith "boom")
         with Failure _ -> ());
        Trace.events sink)
  in
  check_int "span emitted despite raise" 1 (List.length events)

(* --- counters under parallel maps ---------------------------------------- *)

let test_counters_under_map_array () =
  let c = Metrics.counter "test.obs.items" in
  List.iter
    (fun domains ->
      with_metrics (fun () ->
          let n = 500 in
          let input = Array.init n Fun.id in
          let out =
            Parallel.map_array ~domains
              (fun x ->
                Metrics.incr c;
                x * x)
              input
          in
          check_int
            (Printf.sprintf "all %d increments seen at %d domains" n domains)
            n (Metrics.value c);
          check
            (Printf.sprintf "map result intact at %d domains" domains)
            true
            (Array.for_all Fun.id (Array.mapi (fun i y -> y = i * i) out))))
    [ 1; 2; 4 ]

let test_histogram_snapshot () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.obs.hist" in
      List.iter (Metrics.observe h) [ 1; 3; 3; 100; 1000 ];
      match Metrics.find_histogram "test.obs.hist" with
      | None -> Alcotest.fail "histogram not registered"
      | Some s ->
        check_int "count" 5 s.Metrics.count;
        check_int "sum" 1107 s.Metrics.sum;
        check_int "min" 1 s.Metrics.min;
        check_int "max" 1000 s.Metrics.max;
        check_int "bucket counts total to count" 5
          (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Metrics.buckets);
        let rec ascending = function
          | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
          | _ -> true
        in
        check "buckets ascending" true (ascending s.Metrics.buckets))

let test_disabled_updates_ignored () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.off" in
  Metrics.incr c;
  Metrics.add c 10;
  check_int "updates dropped while disabled" 0 (Metrics.value c)

(* --- chrome trace JSON ---------------------------------------------------- *)

let test_chrome_roundtrip () =
  let events =
    with_trace (fun sink ->
        Trace.with_span
          ~args:[ ("n", Trace.Int 7); ("tag", Trace.Str "a\"b\\c") ]
          "solve"
          (fun () -> Trace.instant "checkpoint");
        Trace.events sink)
  in
  let json = Trace.to_chrome events in
  (match Trace.validate_chrome json with
  | Ok n -> check_int "all events survive the round-trip" (List.length events) n
  | Error msg -> Alcotest.failf "generated trace rejected: %s" msg);
  (* The JSONL rendering has one object per line. *)
  let jsonl = Trace.to_jsonl events in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' jsonl)
  in
  check_int "jsonl line per event" (List.length events) (List.length lines)

let test_chrome_rejects_malformed () =
  let rejected s = Result.is_error (Trace.validate_chrome s) in
  check "empty input" true (rejected "");
  check "top-level array" true (rejected "[]");
  check "traceEvents not an array" true (rejected {|{"traceEvents": 3}|});
  check "event missing name" true
    (rejected {|{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}|});
  check "negative dur on X event" true
    (rejected
       {|{"traceEvents": [{"name": "s", "ph": "X", "ts": 0, "dur": -5}]}|});
  check "trailing garbage" true (rejected {|{"traceEvents": []} extra|});
  check "minimal valid trace accepted" true
    (Trace.validate_chrome {|{"traceEvents": []}|} = Ok 0)

(* --- clock ----------------------------------------------------------------- *)

let test_clock_monotonic () =
  (* The previous gettimeofday clock could go backwards under NTP slew;
     the monotonic stub never may, and keeps a near-zero origin. *)
  let prev = ref (Clock.now_ns ()) in
  check "origin near zero" true (!prev >= 0);
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d -> %d" !prev t;
    prev := t
  done;
  let us = Clock.now_us () in
  check "now_us consistent with now_ns" true
    (Float.abs ((float_of_int (Clock.now_ns ()) /. 1e3) -. us) < 1e6)

(* --- Metrics.diff ---------------------------------------------------------- *)

let test_metrics_diff () =
  let before = [ ("a", Metrics.Counter 1); ("c", Metrics.Counter 5) ] in
  let after = [ ("a", Metrics.Counter 3); ("b", Metrics.Counter 2); ("c", Metrics.Counter 5) ] in
  (match Metrics.diff before after with
  | [ ("a", 1, 3); ("b", 0, 2) ] -> ()
  | d ->
    Alcotest.failf "unexpected diff (%d entries): %s" (List.length d)
      (String.concat "; "
         (List.map (fun (n, b, a) -> Printf.sprintf "%s %d->%d" n b a) d)));
  check "empty diff on identical snapshots" true (Metrics.diff before before = [])

(* --- Prof: GC/alloc probe --------------------------------------------------- *)

let with_prof f =
  Metrics.reset ();
  Prof.reset ();
  Metrics.set_enabled true;
  Prof.enable ();
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Fun.protect
    ~finally:(fun () ->
      Trace.clear ();
      Prof.disable ();
      Metrics.set_enabled false;
      Metrics.reset ();
      Prof.reset ())
    (fun () -> f sink)

let float_arg name e =
  List.find_map
    (fun (k, v) ->
      if k = name then match v with Trace.Float f -> Some f | _ -> None
      else None)
    e.Trace.args

let test_prof_gc_args_on_algorithm_spans () =
  (* The acceptance spans: Theorem 1's "thm1.color" and the conflict
     coloring's "dsatur" must both carry allocation deltas and
     self-time once the probe is on. *)
  let inst = random_nic_instance ~n:60 ~k:80 7 in
  let cg = Wl_core.Conflict_of.build inst in
  let events =
    with_prof (fun sink ->
        ignore (Theorem1.color inst);
        ignore (Wl_conflict.Coloring.dsatur cg);
        Trace.events sink)
  in
  List.iter
    (fun span ->
      match List.find_opt (fun e -> e.Trace.name = span) events with
      | None -> Alcotest.failf "no %s span emitted" span
      | Some e ->
        (match float_arg "gc.minor_w" e with
        | None -> Alcotest.failf "%s span without gc.minor_w" span
        | Some w ->
          if not (w > 0.) then
            Alcotest.failf "%s allocated %.0f minor words" span w);
        (match float_arg "self_us" e with
        | None -> Alcotest.failf "%s span without self_us" span
        | Some s ->
          check (span ^ " self time within duration") true
            (s >= 0. && s <= e.Trace.dur_us +. 1e-3)))
    [ "thm1.color"; "dsatur" ];
  (* The aggregation table and the Metrics mirror saw the same spans. *)
  ()

let test_prof_aggregates_and_mirror () =
  let inst = random_nic_instance ~n:40 ~k:50 11 in
  let rows, mirror =
    with_prof (fun _sink ->
        ignore (Theorem1.color inst);
        ignore (Theorem1.color inst);
        (Prof.snapshot (), Metrics.find_counter "prof.thm1.color.calls"))
  in
  (match List.find_opt (fun r -> r.Prof.span = "thm1.color") rows with
  | None -> Alcotest.fail "thm1.color not aggregated"
  | Some r ->
    check_int "two calls aggregated" 2 r.Prof.calls;
    check "aggregate minor words positive" true (r.Prof.gc.Prof.minor_words > 0.);
    check "self <= total" true (r.Prof.self_us <= r.Prof.total_us +. 1e-3));
  check "metrics mirror counted the calls" true (mirror = Some 2)

let test_prof_self_time_excludes_children () =
  let alloc_some () = ignore (Sys.opaque_identity (Array.make 2048 0.)) in
  let events =
    with_prof (fun sink ->
        Trace.with_span "parent" (fun () ->
            Trace.with_span "child" alloc_some);
        Trace.events sink)
  in
  let parent = List.find (fun e -> e.Trace.name = "parent") events in
  let child = List.find (fun e -> e.Trace.name = "child") events in
  let p_self = Option.get (float_arg "self_us" parent) in
  let c_self = Option.get (float_arg "self_us" child) in
  check "child self ~= child dur" true
    (Float.abs (c_self -. child.Trace.dur_us) < 1e-3);
  check "parent self excludes child" true
    (p_self <= parent.Trace.dur_us -. child.Trace.dur_us +. 1e-3)

(* --- zero-overhead disabled path ------------------------------------------ *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_counter_no_alloc () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.noalloc" in
  (* Warm up so the closure and any lazy state exist before measuring. *)
  Metrics.incr c;
  let words =
    minor_words_of (fun () ->
        for _ = 1 to 100_000 do
          Metrics.incr c
        done)
  in
  (* A single boxed float from Gc.minor_words itself is fine; anything
     per-iteration would show up as >= 200k words. *)
  check "disabled incr allocates nothing" true (words < 256.)

let test_disabled_obs_theorem1_deterministic_alloc () =
  (* With the null sink and metrics off, instrumentation must not change
     Theorem 1's allocation behaviour: two identical runs allocate
     identical minor words. *)
  Metrics.set_enabled false;
  Trace.clear ();
  let inst = random_nic_instance ~n:60 ~k:80 5 in
  ignore (Theorem1.color inst);
  let a = minor_words_of (fun () -> ignore (Theorem1.color inst)) in
  let b = minor_words_of (fun () -> ignore (Theorem1.color inst)) in
  check "identical allocation across runs" true (a = b)

(* --- end-to-end instrumentation ------------------------------------------- *)

let test_sweep_latency_histogram () =
  with_metrics (fun () ->
      let case = List.assoc "thm1" Sweeps.all in
      let failures = Sweeps.run ~seeds:10 case in
      check "sweep clean" true (failures = []);
      match Metrics.find_latency "sweep.thm1.ns" with
      | None -> Alcotest.fail "sweep.thm1.ns not populated"
      | Some s ->
        check_int "one latency sample per seed" 10 s.Wl_obs.Hdr.count;
        check "latencies positive" true (s.Wl_obs.Hdr.min > 0))

let test_solver_counters_and_provenance () =
  let inst = random_nic_instance ~n:24 ~k:16 3 in
  let report =
    with_metrics (fun () ->
        let report = Solver.solve inst in
        check "solver.solves counted" true
          (Metrics.find_counter "solver.solves" = Some 1);
        let arm =
          "solver.arm." ^ Solver.method_name report.Solver.method_used
        in
        check (arm ^ " counted") true (Metrics.find_counter arm = Some 1);
        report)
  in
  let render stats =
    Format.asprintf "%a" (Solver.pp_report ~stats) report
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  check "default report has no provenance" false
    (contains (render false) "(from ");
  check "stats report names the bound source" true
    (contains (render true) "(from ");
  check "stats report appends counters" true
    (contains (render true) "counters:")

(* --- parallel rollup --------------------------------------------------------- *)

let test_parallel_rollup_clamped () =
  (* Clock granularity can report zero-duration parallel sections (busy
     observed, wall = 0) and a 1-domain run books the caller's work as
     both wall and busy; either used to read as utilization > 100%.
     Synthesize both shapes straight into the parallel.* metrics. *)
  with_metrics (fun () ->
      let wall = Metrics.histogram "parallel.map_wall_ns" in
      let busy = Metrics.histogram "parallel.domain_busy_ns" in
      let workers = Metrics.counter "parallel.workers_spawned" in
      (* One map, one spawned worker, busy time far above wall * domains. *)
      Metrics.observe wall 10;
      Metrics.observe busy 10_000;
      Metrics.add workers 1;
      (match Prof.parallel_rollup () with
      | None -> Alcotest.fail "rollup missing"
      | Some r ->
        check "utilization clamped to <= 1" true (r.Prof.utilization <= 1.);
        check "utilization clamped to >= 0" true (r.Prof.utilization >= 0.));
      (* Zero-duration sections: wall sum 0 must read 0%, not infinity. *)
      Metrics.reset ();
      Metrics.observe wall 0;
      Metrics.observe busy 500;
      match Prof.parallel_rollup () with
      | None -> Alcotest.fail "rollup missing after reset"
      | Some r ->
        Alcotest.(check (float 0.)) "zero wall reads 0%" 0. r.Prof.utilization)

(* --- openmetrics ------------------------------------------------------------- *)

let test_openmetrics_render_validates () =
  with_metrics (fun () ->
      let c = Metrics.counter "om.test.solves" in
      let h = Metrics.histogram "om.test.flips" in
      let l = Metrics.latency "om.test.ns" in
      Metrics.add c 3;
      List.iter (Metrics.observe h) [ 1; 2; 500 ];
      List.iter (Metrics.observe_ns l) [ 100; 2000; 90_000 ];
      let doc =
        Wl_obs.Openmetrics.render
          ~gauges:[ ("om.test.sessions", 2.) ]
          ~latencies:[ ("om.test.extra.ns", Wl_obs.Hdr.snapshot (Wl_obs.Hdr.create ())) ]
          (Metrics.snapshot ())
      in
      match Wl_obs.Openmetrics.validate doc with
      | Error e -> Alcotest.fail ("rendered exposition rejected: " ^ e)
      | Ok st ->
        (* counter + histogram + latency + gauge + standalone latency *)
        check "families" true (st.Wl_obs.Openmetrics.families >= 5);
        check "samples" true (st.Wl_obs.Openmetrics.samples > 10))

let test_openmetrics_validator_rejects () =
  let reject doc why =
    match Wl_obs.Openmetrics.validate doc with
    | Ok _ -> Alcotest.fail ("accepted " ^ why)
    | Error _ -> ()
  in
  reject "wl_x_total 1\n# EOF\n" "a sample without a TYPE";
  reject "# TYPE wl_x counter\nwl_x_total 1\n" "a document without EOF";
  reject "# TYPE wl_x counter\nwl_x_total 1\n# EOF\ntrailing\n"
    "content after EOF";
  reject "# TYPE wl_x counter\nwl_x{quantile=\"0.5\"} 1\n# EOF\n"
    "a quantile sample on a counter";
  reject "# TYPE wl_x counter\n# TYPE wl_x counter\nwl_x_total 1\n# EOF\n"
    "a duplicate TYPE";
  match Wl_obs.Openmetrics.validate "# TYPE wl_x counter\nwl_x_total 1\n# EOF\n" with
  | Ok st -> check_int "minimal doc is one family" 1 st.Wl_obs.Openmetrics.families
  | Error e -> Alcotest.fail ("rejected a minimal valid doc: " ^ e)

let test_openmetrics_label_escaping () =
  (* Property: unescape_label inverts escape_label on adversarial
     inputs, and the escaped form never leaks a raw quote, backslash or
     newline — the three characters that would corrupt the exposition
     line format.  Then the same strings ride through a real [render] as
     label values and the full document still validates (the validator
     is what `wl metrics-check` runs). *)
  let module Om = Wl_obs.Openmetrics in
  let rng = Prng.create 2718 in
  let adversarial =
    [
      "";
      "plain";
      "\"";
      "\\";
      "\n";
      "\\\"";
      "\\\\\"\"\n\n";
      "a\"b\\c\nd";
      "ends with backslash \\";
      "tenant-0.region_eu";
    ]
    @ List.init 50 (fun _ ->
          String.init
            (1 + Prng.int rng 24)
            (fun _ ->
              match Prng.int rng 6 with
              | 0 -> '"'
              | 1 -> '\\'
              | 2 -> '\n'
              | _ -> Char.chr (32 + Prng.int rng 95)))
  in
  List.iter
    (fun s ->
      let e = Om.escape_label s in
      (match Om.unescape_label e with
      | Some s' when s' = s -> ()
      | Some _ -> Alcotest.failf "escape/unescape changed %S" s
      | None -> Alcotest.failf "escaped form of %S does not unescape" s);
      String.iter
        (fun c ->
          if c = '\n' then Alcotest.failf "raw newline survives in %S" s)
        e;
      (* Any raw quote would terminate the label value early. *)
      let rec scan i =
        if i < String.length e then
          if e.[i] = '\\' then scan (i + 2)
          else if e.[i] = '"' then Alcotest.failf "raw quote survives in %S" s
          else scan (i + 1)
      in
      scan 0)
    adversarial;
  (* Unknown or dangling escapes are rejected, not guessed at. *)
  check "dangling escape rejected" true (Om.unescape_label "a\\" = None);
  check "unknown escape rejected" true (Om.unescape_label "a\\x" = None);
  (* End to end: adversarial label values rendered as per-tenant rows
     still yield a document the wl metrics-check validator accepts. *)
  let rows = List.mapi (fun i s -> ([ ("tenant", s) ], float_of_int i)) adversarial in
  let doc = Om.render ~labeled:[ ("wld.tenant.paths", rows) ] [] in
  match Om.validate doc with
  | Ok st ->
    check "labeled family present" true (st.Om.families >= 1);
    check "one sample per adversarial row" true
      (st.Om.samples >= List.length adversarial)
  | Error e -> Alcotest.fail ("adversarial labels broke the exposition: " ^ e)

let test_openmetrics_exemplar_syntax () =
  (* A latency with a latched trace exemplar renders the OpenMetrics
     exemplar syntax on its _count sample, and the strict validator
     accepts it. *)
  let module Om = Wl_obs.Openmetrics in
  let h = Wl_obs.Hdr.create () in
  Wl_obs.Hdr.record_traced h 4200 ~trace:0xdeadbee;
  let doc =
    Om.render
      ~latencies:[ ("engine.session.add.ns", Wl_obs.Hdr.snapshot h) ]
      ~exemplars:[ ("engine.session.add.ns", Option.get (Wl_obs.Hdr.exemplar h)) ]
      []
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  check "exemplar trace id rendered in hex" true
    (contains doc (Printf.sprintf "trace_id=\"%s\"" (Wl_obs.Ctx.hex 0xdeadbee)));
  check "exemplar syntax present" true (contains doc " # {trace_id=\"");
  (match Om.validate doc with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("exemplar-carrying doc rejected: " ^ e));
  (* No exemplar latched -> no exemplar syntax, still valid. *)
  let bare =
    Om.render ~latencies:[ ("engine.session.add.ns", Wl_obs.Hdr.snapshot h) ] []
  in
  check "no exemplar without a latch" false (contains bare "# {")

(* --- trace context ----------------------------------------------------------- *)

let test_ctx_generator_and_wire () =
  let module Ctx = Wl_obs.Ctx in
  (* Determinism: equal seeds yield equal id streams. *)
  let g1 = Ctx.generator 5 and g2 = Ctx.generator 5 in
  let r1 = Ctx.root g1 and r2 = Ctx.root g2 in
  check "equal seeds, equal roots" true (r1 = r2);
  check "root is real" false (Ctx.is_none r1);
  check "root has no parent" true (r1.Ctx.parent_id = 0);
  let c1 = Ctx.child g1 r1 in
  check "child keeps the trace id" true (c1.Ctx.trace_id = r1.Ctx.trace_id);
  check "child gets a fresh span id" false (c1.Ctx.span_id = r1.Ctx.span_id);
  check "child records its parent" true (c1.Ctx.parent_id = r1.Ctx.span_id);
  (* child of none is a fresh root. *)
  let orphan = Ctx.child g1 Ctx.none in
  check "child of none is a root" true
    (orphan.Ctx.parent_id = 0 && not (Ctx.is_none orphan));
  check "roots differ across draws" false (orphan.Ctx.trace_id = r1.Ctx.trace_id);
  (* Wire form round-trips; parent id deliberately not carried. *)
  (match Ctx.of_string (Ctx.to_string c1) with
  | None -> Alcotest.fail "wire form does not parse back"
  | Some c ->
    check "trace survives" true (c.Ctx.trace_id = c1.Ctx.trace_id);
    check "span survives" true (c.Ctx.span_id = c1.Ctx.span_id);
    check "parent not carried" true (c.Ctx.parent_id = 0));
  (* Strictness of the parser. *)
  List.iter
    (fun s -> check ("rejects " ^ s) true (Ctx.of_string s = None))
    [ ""; ":"; "1:"; ":1"; "0:5"; "zz:1"; "1:2:3"; "-1:2"; "1:+2";
      "12345678123456781:2"; "1 :2"; "0x1:2" ];
  check "uppercase hex accepted" true (Ctx.of_string "AB:CD" <> None)

let test_ctx_ambient () =
  let module Ctx = Wl_obs.Ctx in
  Ctx.clear ();
  check "clean slate" true (Ctx.is_none (Ctx.current ()));
  check_int "no ambient trace" 0 (Ctx.current_trace ());
  let g = Ctx.generator 9 in
  let c = Ctx.root g in
  Ctx.set c;
  Fun.protect ~finally:Ctx.clear (fun () ->
      check "ambient readable" true (Ctx.current () = c);
      check_int "current_trace matches" c.Ctx.trace_id (Ctx.current_trace ()));
  check "cleared" true (Ctx.is_none (Ctx.current ()))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
        Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
        Alcotest.test_case "counters under map_array" `Quick
          test_counters_under_map_array;
        Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
        Alcotest.test_case "disabled updates ignored" `Quick
          test_disabled_updates_ignored;
        Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_roundtrip;
        Alcotest.test_case "chrome validator rejects malformed" `Quick
          test_chrome_rejects_malformed;
        Alcotest.test_case "disabled counter allocates nothing" `Quick
          test_disabled_counter_no_alloc;
        Alcotest.test_case "theorem1 alloc unchanged when off" `Quick
          test_disabled_obs_theorem1_deterministic_alloc;
        Alcotest.test_case "sweep latency histogram" `Quick
          test_sweep_latency_histogram;
        Alcotest.test_case "solver counters and provenance" `Quick
          test_solver_counters_and_provenance;
        Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
        Alcotest.test_case "metrics diff" `Quick test_metrics_diff;
        Alcotest.test_case "prof: GC args on algorithm spans" `Quick
          test_prof_gc_args_on_algorithm_spans;
        Alcotest.test_case "prof: aggregates and metrics mirror" `Quick
          test_prof_aggregates_and_mirror;
        Alcotest.test_case "prof: self time excludes children" `Quick
          test_prof_self_time_excludes_children;
        Alcotest.test_case "prof: parallel rollup clamped" `Quick
          test_parallel_rollup_clamped;
        Alcotest.test_case "openmetrics render validates" `Quick
          test_openmetrics_render_validates;
        Alcotest.test_case "openmetrics validator rejects" `Quick
          test_openmetrics_validator_rejects;
        Alcotest.test_case "openmetrics label escaping" `Quick
          test_openmetrics_label_escaping;
        Alcotest.test_case "openmetrics exemplar syntax" `Quick
          test_openmetrics_exemplar_syntax;
        Alcotest.test_case "ctx generator and wire form" `Quick
          test_ctx_generator_and_wire;
        Alcotest.test_case "ctx ambient cell" `Quick test_ctx_ambient;
      ] );
  ]
