(* OpenMetrics text rendering + a strict-enough standalone parser.

   Everything here is cold reporting code: called once per scrape/dump,
   free to allocate.  The parser deliberately shares nothing with
   Wl_json — OpenMetrics is line-oriented — but follows the same
   dependency-free, total style. *)

type stats = { families : int; samples : int }

(* --- rendering -------------------------------------------------------------- *)

let sanitize name =
  let buf = Buffer.create (String.length name + 4) in
  if not (String.length name >= 3 && String.sub name 0 3 = "wl_") then
    Buffer.add_string buf "wl_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Exact inverse of {!escape_label}; [None] on a dangling or unknown
   escape.  Exists so the escaping property test is a genuine
   round-trip, not a re-implementation. *)
let unescape_label v =
  let n = String.length v in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if v.[i] = '\\' then
      if i + 1 >= n then None
      else begin
        (match v.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | 'n' -> Buffer.add_char buf '\n'
        | _ -> ());
        match v.[i + 1] with
        | '\\' | '"' | 'n' -> go (i + 2)
        | _ -> None
      end
    else begin
      Buffer.add_char buf v.[i];
      go (i + 1)
    end
  in
  go 0

let add_family buf ~name ~help ~typ body =
  Printf.bprintf buf "# HELP %s %s\n" name (escape_label help);
  Printf.bprintf buf "# TYPE %s %s\n" name typ;
  body buf

let add_counter buf name help v =
  add_family buf ~name ~help ~typ:"counter" (fun buf ->
      Printf.bprintf buf "%s_total %d\n" name v)

let add_gauge buf name help v =
  add_family buf ~name ~help ~typ:"gauge" (fun buf ->
      Printf.bprintf buf "%s %.6g\n" name v)

let add_histogram buf name help (s : Metrics.hist_snapshot) =
  add_family buf ~name ~help ~typ:"histogram" (fun buf ->
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          if ub = max_int then ()
          else Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" name ub !cum)
        s.buckets;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name s.count;
      Printf.bprintf buf "%s_sum %d\n" name s.sum;
      Printf.bprintf buf "%s_count %d\n" name s.count)

let add_summary ?exemplar buf name help (s : Hdr.snapshot) =
  add_family buf ~name ~help ~typ:"summary" (fun buf ->
      Printf.bprintf buf "%s{quantile=\"0.5\"} %d\n" name s.Hdr.p50;
      Printf.bprintf buf "%s{quantile=\"0.9\"} %d\n" name s.Hdr.p90;
      Printf.bprintf buf "%s{quantile=\"0.99\"} %d\n" name s.Hdr.p99;
      Printf.bprintf buf "%s{quantile=\"0.999\"} %d\n" name s.Hdr.p999;
      Printf.bprintf buf "%s_sum %d\n" name s.Hdr.sum;
      Printf.bprintf buf "%s_count %d" name s.Hdr.count;
      (* OpenMetrics exemplar syntax: the worst traced sample, linking
         the tail figure to a concrete distributed trace. *)
      (match exemplar with
      | Some (v, trace) when trace <> 0 ->
        Printf.bprintf buf " # {trace_id=\"%x\"} %d" trace v
      | _ -> ());
      Buffer.add_char buf '\n')

let add_labeled_gauge buf name help rows =
  add_family buf ~name ~help ~typ:"gauge" (fun buf ->
      List.iter
        (fun (labels, v) ->
          if labels = [] then Printf.bprintf buf "%s %.6g\n" name v
          else begin
            Printf.bprintf buf "%s{" name;
            List.iteri
              (fun i (k, lv) ->
                if i > 0 then Buffer.add_char buf ',';
                Printf.bprintf buf "%s=\"%s\"" k (escape_label lv))
              labels;
            Printf.bprintf buf "} %.6g\n" v
          end)
        rows)

let render ?(gauges = []) ?(labeled = []) ?(latencies = []) ?(exemplars = [])
    snapshot =
  let items =
    List.map
      (fun (raw, inst) -> (sanitize raw, raw, `Inst inst))
      snapshot
    @ List.map (fun (raw, v) -> (sanitize raw, raw, `Gauge v)) gauges
    @ List.map (fun (raw, rows) -> (sanitize raw, raw, `Labeled rows)) labeled
    @ List.map (fun (raw, s) -> (sanitize raw, raw, `Hdr s)) latencies
  in
  let items =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) items
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, raw, v) ->
      let exemplar = List.assoc_opt raw exemplars in
      match v with
      | `Inst (Metrics.Counter c) -> add_counter buf name raw c
      | `Inst (Metrics.Histogram s) -> add_histogram buf name raw s
      | `Inst (Metrics.Latency s) -> add_summary ?exemplar buf name raw s
      | `Gauge g -> add_gauge buf name raw g
      | `Labeled rows -> add_labeled_gauge buf name raw rows
      | `Hdr s -> add_summary ?exemplar buf name raw s)
    items;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* --- validation ------------------------------------------------------------- *)

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_name s =
  String.length s > 0
  && (match s.[0] with '0' .. '9' -> false | c -> is_name_char c)
  && String.for_all is_name_char s

exception Bad of string

let split_sample line =
  (* name[{labels}] value [timestamp | # {labels} value [timestamp]] *)
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then raise (Bad "invalid metric name");
  let parse_label_set () =
    (* [!i] is at '{' on entry, past '}' on exit *)
    incr i;
    let fin = ref false in
    while not !fin do
      if !i >= n then raise (Bad "unterminated label set");
      if line.[!i] = '}' then begin
        incr i;
        fin := true
      end
      else begin
        (* label name *)
        let s = !i in
        while !i < n && is_name_char line.[!i] do
          incr i
        done;
        if !i = s then raise (Bad "empty label name");
        if !i >= n || line.[!i] <> '=' then raise (Bad "label without =");
        incr i;
        if !i >= n || line.[!i] <> '"' then raise (Bad "unquoted label value");
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated label value");
          (match line.[!i] with
          | '\\' -> incr i (* skip escaped char *)
          | '"' -> closed := true
          | _ -> ());
          incr i
        done;
        if !i < n && line.[!i] = ',' then incr i
      end
    done
  in
  let parse_float_token what =
    let s = !i in
    while !i < n && line.[!i] <> ' ' do
      incr i
    done;
    let tok = String.sub line s (!i - s) in
    match float_of_string_opt tok with
    | Some _ -> ()
    | None -> raise (Bad (Printf.sprintf "unparseable %s %s" what tok))
  in
  if !i < n && line.[!i] = '{' then parse_label_set ();
  if !i >= n || line.[!i] <> ' ' then raise (Bad "missing value");
  incr i;
  parse_float_token "sample value";
  if !i < n then begin
    incr i (* the space after the value *);
    if !i < n && line.[!i] = '#' then begin
      (* OpenMetrics exemplar: "# {labels} value [timestamp]" *)
      incr i;
      if !i >= n || line.[!i] <> ' ' then raise (Bad "malformed exemplar");
      incr i;
      if !i >= n || line.[!i] <> '{' then raise (Bad "exemplar without labels");
      parse_label_set ();
      if !i >= n || line.[!i] <> ' ' then raise (Bad "exemplar without value");
      incr i;
      parse_float_token "exemplar value";
      if !i < n then begin
        incr i;
        if !i >= n then raise (Bad "trailing space after exemplar");
        parse_float_token "exemplar timestamp";
        if !i <> n then raise (Bad "garbage after exemplar timestamp")
      end
    end
    else begin
      if !i >= n then raise (Bad "trailing space after value");
      parse_float_token "timestamp";
      if !i <> n then raise (Bad "garbage after timestamp")
    end
  end;
  name

let suffixes = [ "_total"; "_bucket"; "_sum"; "_count"; "_created" ]

let strip_suffix name suf =
  let n = String.length name and m = String.length suf in
  if n > m && String.sub name (n - m) m = suf then
    Some (String.sub name 0 (n - m))
  else None

let validate doc =
  let lines = String.split_on_char '\n' doc in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let samples = ref 0 in
  let saw_eof = ref false in
  let err lineno msg = Printf.sprintf "line %d: %s" lineno msg in
  let rec go lineno = function
    | [] -> if !saw_eof then Ok () else Error "missing # EOF terminator"
    | line :: rest ->
      if !saw_eof then
        if line = "" && rest = [] then Ok ()
        else Error (err lineno "content after # EOF")
      else if line = "" then Error (err lineno "blank line")
      else if line = "# EOF" then begin
        saw_eof := true;
        go (lineno + 1) rest
      end
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: kw :: name :: _ when kw = "HELP" || kw = "UNIT" ->
          if valid_name name then go (lineno + 1) rest
          else Error (err lineno ("bad metric name in " ^ kw))
        | "#" :: "TYPE" :: name :: [ typ ] ->
          if not (valid_name name) then
            Error (err lineno "bad metric name in TYPE")
          else if
            not
              (List.mem typ
                 [ "counter"; "gauge"; "histogram"; "summary"; "unknown"; "info" ])
          then Error (err lineno ("unknown type " ^ typ))
          else if Hashtbl.mem types name then
            Error (err lineno ("duplicate TYPE for " ^ name))
          else if Hashtbl.mem sampled name then
            Error (err lineno ("TYPE after samples for " ^ name))
          else begin
            Hashtbl.add types name typ;
            go (lineno + 1) rest
          end
        | _ -> Error (err lineno "malformed comment line")
      end
      else begin
        match split_sample line with
        | exception Bad msg -> Error (err lineno msg)
        | name -> (
          let family =
            match
              List.find_map
                (fun suf ->
                  match strip_suffix name suf with
                  | Some base when Hashtbl.mem types base -> Some (base, suf)
                  | _ -> None)
                suffixes
            with
            | Some (base, suf) -> Some (base, suf)
            | None -> if Hashtbl.mem types name then Some (name, "") else None
          in
          match family with
          | None -> Error (err lineno ("sample without # TYPE: " ^ name))
          | Some (base, suf) ->
            let typ = Hashtbl.find types base in
            let legal =
              match typ with
              | "counter" -> suf = "_total" || suf = "_created"
              | "histogram" -> suf = "_bucket" || suf = "_sum" || suf = "_count"
              | "summary" -> suf = "" || suf = "_sum" || suf = "_count"
              | _ -> suf = ""
            in
            if not legal then
              Error
                (err lineno
                   (Printf.sprintf "sample %s illegal for %s family %s" name
                      typ base))
            else begin
              Hashtbl.replace sampled base ();
              incr samples;
              go (lineno + 1) rest
            end)
      end
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> Ok { families = Hashtbl.length types; samples = !samples }
