lib/util/saturating.mli: Format
